package experiments

import (
	"strings"
	"testing"
)

func TestVirtualServersOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("five 1000-node configurations")
	}
	cells, err := VirtualServers(Options{Trials: 1, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 5 {
		t.Fatalf("cells = %d", len(cells))
	}
	// More static vnodes monotonically improve the static rows.
	for i := 1; i < 4; i++ {
		if cells[i].Stat.Mean >= cells[i-1].Stat.Mean {
			t.Errorf("static k ordering violated: %v then %v",
				cells[i-1].Stat.Mean, cells[i].Stat.Mean)
		}
	}
	// The dynamic row beats every static row.
	dyn := cells[4].Stat.Mean
	for _, c := range cells[:4] {
		if dyn >= c.Stat.Mean {
			t.Errorf("dynamic (%v) must beat %q (%v)", dyn, c.Name, c.Stat.Mean)
		}
	}
}

func TestChurnCurveShape(t *testing.T) {
	if testing.Short() {
		t.Skip("eight churn rates on 1000 nodes")
	}
	tbl, err := ChurnCurve(Options{Trials: 1, Seed: 18})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 8 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	first := parseF(t, tbl.Row(0)[1])
	last := parseF(t, tbl.Row(tbl.NumRows() - 1)[1])
	if last >= first {
		t.Errorf("factor must fall from rate 0 (%v) to 0.1 (%v)", first, last)
	}
	// Message cost grows with the rate.
	if m0 := parseF(t, tbl.Row(0)[3]); m0 != 0 {
		t.Errorf("zero churn must cost zero turnover messages, got %v", m0)
	}
	if mLast := parseF(t, tbl.Row(tbl.NumRows() - 1)[3]); mLast < 100 {
		t.Errorf("high churn message load %v implausibly small", mLast)
	}
}

func TestAblationWorkloadSkewFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("Zipf runs are long")
	}
	// Restrict to the cheap uniform rows plus one skewed pair by calling
	// the full function once at 1 trial; assert the skew floor claim.
	cells, err := AblationWorkloadSkew(Options{Trials: 1, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, c := range cells {
		byName[c.Name] = c.Stat.Mean
	}
	if byName["none, zipf s=1.1, 10k objects"] <= byName["none, uniform"] {
		t.Errorf("skew must raise the baseline factor: %v", byName)
	}
	// Under heavy skew the strategies cannot rescue the factor: random
	// stays within 15%% of none.
	skewNone := byName["none, zipf s=1.1, 10k objects"]
	skewRand := byName["random, zipf s=1.1, 10k objects"]
	if skewRand < skewNone*0.8 {
		t.Errorf("hot-key floor violated: random %v vs none %v", skewRand, skewNone)
	}
	if !strings.Contains(cells[0].Note, "hot objects") {
		t.Error("note lost")
	}
}

func TestAblationStreamingRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("four 1000-node runs")
	}
	cells, err := AblationStreaming(Options{Trials: 1, Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d", len(cells))
	}
	for _, c := range cells {
		if c.Stat.Mean < 1 {
			t.Errorf("%s: factor %v < 1", c.Name, c.Stat.Mean)
		}
	}
}
