package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestWorkSeriesShape(t *testing.T) {
	tbl, err := WorkSeries(10, Options{Trials: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 10 {
		t.Fatalf("rows = %d, want 10", tbl.NumRows())
	}
	// Tick 1: every strategy completes close to 1000 tasks (one per
	// non-idle host out of 1000).
	row := tbl.Row(0)
	if row[0] != "1" {
		t.Errorf("first tick label = %q", row[0])
	}
	for i := 1; i < len(row); i++ {
		if !strings.HasPrefix(row[i], "9") && !strings.HasPrefix(row[i], "10") {
			t.Errorf("tick-1 work %q implausible for 1000 hosts", row[i])
		}
	}
}

func TestChordHopsLogarithmic(t *testing.T) {
	tbl, err := ChordHops(Options{Trials: 50, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 4 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	// Hop counts grow with network size but stay below log2(n).
	var prev float64
	for i := 0; i < tbl.NumRows(); i++ {
		row := tbl.Row(i)
		mean := parseF(t, row[1])
		logn := parseF(t, row[3])
		if mean > logn {
			t.Errorf("n=%s: mean hops %v exceeds log2(n) %v", row[0], mean, logn)
		}
		if mean < prev-0.5 {
			t.Errorf("hops shrank with network size: %v after %v", mean, prev)
		}
		prev = mean
	}
}

func TestTrafficTable(t *testing.T) {
	if testing.Short() {
		t.Skip("seven 1000-node runs")
	}
	tbl, err := Traffic(Options{Trials: 1, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 7 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	perTask := map[string]float64{}
	for i := 0; i < tbl.NumRows(); i++ {
		row := tbl.Row(i)
		perTask[row[0]] = parseF(t, row[5])
	}
	if perTask["none"] != 0 {
		t.Error("baseline must cost nothing")
	}
	// §VI-D: invitation is reactive and uses less bandwidth than the
	// proactive strategies.
	if perTask["invitation"] >= perTask["random"] ||
		perTask["invitation"] >= perTask["smart-neighbor"] {
		t.Errorf("invitation must be cheapest of the Sybil strategies: %v", perTask)
	}
	// §VI-C: estimation (neighbor) needs fewer messages than probing
	// (smart-neighbor).
	if perTask["neighbor"] >= perTask["smart-neighbor"] {
		t.Errorf("estimation must beat probing on traffic: %v", perTask)
	}
}

func TestResilienceStaircase(t *testing.T) {
	tbl, err := Resilience(Options{Trials: 1, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 20 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	for i := 0; i < tbl.NumRows(); i++ {
		row := tbl.Row(i)
		replicas := int(parseF(t, row[0]))
		failures := int(parseF(t, row[1]))
		loss := parseF(t, row[3])
		if failures <= replicas && loss > 0 {
			t.Errorf("r=%d f=%d: loss %v, replication must cover f <= r",
				replicas, failures, loss)
		}
	}
}

func TestArcTable(t *testing.T) {
	tbl, err := ArcTable(Options{Trials: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 4 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	// SHA-1 rows: median/mean near ln2; even row: exactly 1.
	for i := 0; i < 3; i++ {
		mm := parseF(t, tbl.Row(i)[2])
		if mm < 0.6 || mm > 0.8 {
			t.Errorf("row %d median/mean = %v, want ~0.693", i, mm)
		}
	}
	if mm := parseF(t, tbl.Row(3)[2]); mm != 1 {
		t.Errorf("even median/mean = %v", mm)
	}
}

func TestStrengthShareConfirmsHypothesis(t *testing.T) {
	if testing.Short() {
		t.Skip("several 1000-node heterogeneous runs")
	}
	tbl, err := StrengthShare(Options{Trials: 1, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 15 { // 3 strategies x 5 classes
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	// Row 0 is random/class-1: the weak class must be a net stealer
	// (work share above capacity share) — the §VII hypothesis.
	row := tbl.Row(0)
	capShare := parseF(t, row[3])
	workShare := parseF(t, row[4])
	if workShare <= capShare {
		t.Errorf("class 1 work share %v <= capacity share %v: hypothesis not visible",
			workShare, capShare)
	}
	// And the strongest class must cede work.
	row = tbl.Row(4)
	if parseF(t, row[4]) >= parseF(t, row[3]) {
		t.Errorf("class 5 should cede work: %v vs %v", row[4], row[3])
	}
}

func TestAblationChurnModelRuns(t *testing.T) {
	// Shrink via a tiny spec by reusing the machinery directly is not
	// possible (specs are fixed); just verify it runs with 1 trial.
	if testing.Short() {
		t.Skip("four 1000-node runs")
	}
	cells, err := AblationChurnModel(Options{Trials: 1, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d", len(cells))
	}
	for _, c := range cells {
		if c.Stat.Mean < 1 {
			t.Errorf("%s: factor %v < 1", c.Name, c.Stat.Mean)
		}
	}
}

func TestExtensionsSummaryTargetedBeatsSmart(t *testing.T) {
	if testing.Short() {
		t.Skip("six 1000-node runs")
	}
	cells, err := ExtensionsSummary(Options{Trials: 2, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]TrialStat{}
	for _, c := range cells {
		byName[c.Name] = c.Stat
	}
	smart := byName["smart-neighbor homogeneous (baseline)"]
	targeted := byName["targeted homogeneous (§VII chosen IDs)"]
	if targeted.Mean >= smart.Mean+0.3 {
		t.Errorf("targeted (%v) should not lose badly to smart (%v)",
			targeted.Mean, smart.Mean)
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return f
}
