package experiments

import (
	"fmt"
	"testing"
)

// renderSybilwar flattens cells into a byte-comparable string covering
// every aggregated field.
func renderSybilwar(t *testing.T, opt Options) string {
	t.Helper()
	cells, err := Sybilwar(opt)
	if err != nil {
		t.Fatal(err)
	}
	s := ""
	for _, c := range cells {
		s += fmt.Sprintf("%s probe=%.9f ecl=%.9f±%.9f f=%.9f±%.9f fe=%.9f g=%.9f→%.9f done=%d\n",
			c.Name, c.EclipseProbe.Mean, c.Eclipse.Mean, c.Eclipse.CI95,
			c.Factor.Mean, c.Factor.CI95,
			c.FalseEvict.Mean, c.GiniStart.Mean, c.GiniEnd.Mean, c.Completed)
	}
	return s
}

// TestSybilwarSerialParallelIdentical is the hostile half of the
// driver-equivalence guarantee: the sybilwar sweep must produce
// byte-identical cells whether trials run on one worker or many, and
// with intra-trial sharding on top.
func TestSybilwarSerialParallelIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep grid in -short mode")
	}
	opt := Options{Trials: 2, Seed: 11}
	serial := renderSybilwar(t, opt)
	opt.Workers = 4
	par := renderSybilwar(t, opt)
	opt.Shards = 2
	opt.ShardWorkers = 2
	sharded := renderSybilwar(t, opt)
	if serial != par || serial != sharded {
		t.Errorf("serial, parallel, and sharded sybilwar runs differ:\n%s\n%s\n%s", serial, par, sharded)
	}
	if serial == "" {
		t.Fatal("sybilwar experiment produced no cells")
	}
}

// TestSybilwarHeadlineContrast pins the experiment's headline shape at
// the common probe tick: undefended attack cells achieve nonzero
// eclipse success, the pinned detection threshold achieves strictly
// less, and honest cells report no eclipse at all. It also pins the
// stall contrast: an undefended eclipse blackholes keys and runs into
// the tick cap, while detection recovers them and the job completes.
func TestSybilwarHeadlineContrast(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep grid in -short mode")
	}
	cells, err := Sybilwar(Options{Trials: 2, Seed: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]SybilwarCell, len(cells))
	for _, c := range cells {
		byName[c.Name] = c
		if c.Budget == 0 && (c.Eclipse.Mean != 0 || c.EclipseProbe.Mean != 0) {
			t.Errorf("%s: eclipse %.3f/%.3f with no attacker", c.Name, c.EclipseProbe.Mean, c.Eclipse.Mean)
		}
	}
	undef, ok := byName["budget=24 puzzle=0 thr=off"]
	if !ok {
		t.Fatal("undefended attack cell missing from grid")
	}
	if undef.EclipseProbe.Mean <= 0 {
		t.Fatalf("undefended attack achieved no eclipse at the probe tick: %+v", undef.EclipseProbe)
	}
	if undef.Completed != 0 {
		t.Errorf("undefended eclipse should blackhole keys and stall, but %d/%d trials completed",
			undef.Completed, undef.Trials)
	}
	detect, ok := byName["budget=24 puzzle=0 thr=4"]
	if !ok {
		t.Fatal("detection cell missing from grid")
	}
	if detect.Completed != detect.Trials {
		t.Errorf("detection should recover blackholed keys, but only %d/%d trials completed",
			detect.Completed, detect.Trials)
	}
	strict, ok := byName["budget=24 puzzle=8 thr=4"]
	if !ok {
		t.Fatal("attack-defeating cell missing from grid")
	}
	if strict.EclipseProbe.Mean >= undef.EclipseProbe.Mean {
		t.Errorf("attack-defeating dose did not reduce probe-tick eclipse: defended %.3f >= undefended %.3f",
			strict.EclipseProbe.Mean, undef.EclipseProbe.Mean)
	}
}
