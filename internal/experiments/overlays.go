package experiments

import (
	"fmt"

	"chordbalance/internal/chord"
	"chordbalance/internal/ids"
	"chordbalance/internal/keys"
	"chordbalance/internal/report"
	"chordbalance/internal/stats"
	"chordbalance/internal/symphony"
	"chordbalance/internal/xrand"
)

// OverlayHops substantiates the paper's §II positioning — that Chord
// offers stronger routing guarantees than the loosely-structured
// alternatives behind competing systems (Lee et al.'s MapReduce runs on
// Symphony) — by routing identical lookups over both overlays built from
// the same node IDs. Chord pays O(log n) routing state for ~½log₂n hops;
// Symphony holds a constant k long links and pays O(log²n/k) hops.
func OverlayHops(opt Options) (*report.Table, error) {
	opt = opt.withDefaults(200) // lookups per overlay
	t := report.NewTable(
		"Chord vs Symphony: same node IDs, same lookups",
		"nodes", "chord hops", "chord state", "symphony k=4 hops", "symphony state", "symphony k=1 hops")
	for ci, n := range []int{32, 64, 128, 256} {
		g := keys.NewGenerator(trialSeed(opt.Seed, ci, 0))
		nodeIDs := g.NodeIDs(n)

		// Chord overlay over these IDs.
		cnw := chord.NewNetwork(chord.Config{})
		entry, err := cnw.Create(nodeIDs[0])
		if err != nil {
			return nil, err
		}
		for _, id := range nodeIDs[1:] {
			if _, err := cnw.Join(id, entry); err != nil {
				return nil, err
			}
			cnw.StabilizeAll()
		}
		if _, ok := cnw.StabilizeUntilConverged(4 * n); !ok {
			return nil, fmt.Errorf("overlayhops: chord %d-ring did not converge", n)
		}
		cnw.FixAllFingers()

		// Symphony overlays over the same IDs.
		sy4, err := symphony.Build(nodeIDs, symphony.Config{LongLinks: 4},
			xrand.New(trialSeed(opt.Seed, ci, 1)))
		if err != nil {
			return nil, err
		}
		sy1, err := symphony.Build(nodeIDs, symphony.Config{LongLinks: 1},
			xrand.New(trialSeed(opt.Seed, ci, 2)))
		if err != nil {
			return nil, err
		}

		rng := xrand.New(trialSeed(opt.Seed, ci, 3))
		var ch, s4, s1 stats.Online
		for i := 0; i < opt.Trials; i++ {
			key := ids.Random(rng)
			start := nodeIDs[rng.Intn(len(nodeIDs))]
			cOwner, hops, err := cnw.Node(start).Lookup(key)
			if err != nil {
				return nil, err
			}
			ch.Add(float64(hops))
			sOwner, hops4, err := sy4.Lookup(start, key)
			if err != nil {
				return nil, err
			}
			s4.Add(float64(hops4))
			if sOwner != cOwner.ID() {
				return nil, fmt.Errorf("overlayhops: owners disagree for %s", key.Short())
			}
			_, hops1, err := sy1.Lookup(start, key)
			if err != nil {
				return nil, err
			}
			s1.Add(float64(hops1))
		}
		// Chord routing state: fingers (distinct entries ~log n) plus the
		// successor list; report the classic log2(n) + r figure.
		chordState := log2f(n) + 8
		t.AddRowf(n, ch.Mean(), chordState, s4.Mean(), sy4.RoutingState(), s1.Mean())
	}
	return t, nil
}
