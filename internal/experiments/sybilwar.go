package experiments

// The sybilwar experiment measures the paper's open question from the
// hostile side: the same Sybil mechanism the balancing strategies use
// cooperatively, pointed at one arc of the keyspace as an eclipse
// attack, against the two defenses internal/adversary supplies (puzzle
// admission and density detection). The sweep crosses puzzle cost ×
// adversary budget × detection threshold and reports eclipse success,
// runtime factor, the Gini trajectory, and the honest false-eviction
// rate — i.e. how much each defense dose degrades Sybil-based
// *balancing* before it defeats Sybil-based *attacking*. See
// docs/ADVERSARY.md for the threat model and a worked session.

import (
	"fmt"

	"chordbalance/internal/adversary"
	"chordbalance/internal/parallel"
	"chordbalance/internal/report"
	"chordbalance/internal/sim"
	"chordbalance/internal/stats"
	"chordbalance/internal/strategy"
)

// SybilwarCell is one sweep cell: a (budget, puzzle, threshold) triple
// with the aggregated outcome over trials.
type SybilwarCell struct {
	Name       string
	Budget     int
	PuzzleBits int
	Threshold  float64

	// EclipseProbe is the eclipsed fraction at the fixed probe tick
	// (eclipseProbeTick), the headline attack-success metric: comparing
	// at a common tick avoids conflating defense effect with run length
	// (final eclipse erodes on long runs because the honest balancer
	// floods the hot arc with its own Sybils).
	EclipseProbe TrialStat
	// Eclipse is the final eclipsed fraction of the target arc.
	Eclipse TrialStat
	// Factor is the runtime factor; attacked runs that never finish hit
	// the tick cap, so the factor doubles as the stall signal.
	Factor TrialStat
	// FalseEvict is the defense's false-eviction rate (honest identities
	// evicted / all evictions).
	FalseEvict TrialStat
	// GiniStart and GiniEnd bracket the host-workload Gini trajectory
	// (first and last snapshot).
	GiniStart TrialStat
	GiniEnd   TrialStat
	// Completed counts trials that finished before the tick cap; an
	// un-evicted eclipse blackholes keys, so stalls are expected.
	Completed int
	Trials    int
}

// eclipseProbeTick is the common sample point for the headline eclipse
// metric. It is scan-aligned (a multiple of the default ScanEvery), so
// defended cells are probed right after an eviction pass, and it sits
// well before any cell's completion time.
const eclipseProbeTick = 100

// sybilwarCells is the sweep grid: adversary budget off/on crossed with
// escalating defense doses. The dose ladder is chosen to expose the
// whole trade-off curve: detection alone (eviction is free to undo —
// the attacker re-mints instantly, and clearing honest diluters out of
// the arc can even help it), a moderate puzzle (cost 16 per identity:
// throttles minting without halting the balancer's Sybil churn), the
// combination, and the attack-defeating dose (cost 256 outruns the
// attacker's work rate between scans — and buries honest strength-1
// joiners, the headline collateral).
func sybilwarCells() []SybilwarCell {
	doses := []struct {
		bits int
		thr  float64
	}{
		{0, 0}, // undefended
		{0, 4}, // detection only
		{4, 0}, // puzzle only
		{4, 4}, // moderate combined
		{8, 4}, // attack-defeating combined
	}
	var out []SybilwarCell
	for _, budget := range []int{0, 24} {
		for _, d := range doses {
			name := fmt.Sprintf("budget=%d puzzle=%d", budget, d.bits)
			if d.thr > 0 {
				name += fmt.Sprintf(" thr=%g", d.thr)
			} else {
				name += " thr=off"
			}
			out = append(out, SybilwarCell{
				Name: name, Budget: budget, PuzzleBits: d.bits, Threshold: d.thr,
			})
		}
	}
	return out
}

// sybilwarConfig builds one trial of one cell: the paper's headline
// random strategy balancing under churn, with the cell's attack and
// defense doses applied. MaxTicks is explicit because an un-defended
// eclipse never lets the job finish; the snapshot ladder feeds the Gini
// and eclipse trajectories.
func sybilwarConfig(c *SybilwarCell, seed uint64) sim.Config {
	st, ok := strategy.ByName("random")
	if !ok {
		panic("experiments: random strategy missing")
	}
	cfg := sim.Config{
		Nodes:         150,
		Tasks:         12000,
		Strategy:      st,
		ChurnRate:     0.01,
		Seed:          seed,
		MaxTicks:      2000,
		SnapshotTicks: []int{0, 100, 400, 1200, 2000},
	}
	if c.Budget > 0 {
		cfg.Attack = adversary.AttackConfig{
			Budget:      c.Budget,
			MintEvery:   2,
			TargetStart: 0.2,
			TargetWidth: 1.0 / 16,
			WorkRate:    16,
		}
	}
	cfg.Defense = adversary.DefenseConfig{PuzzleBits: c.PuzzleBits, Threshold: c.Threshold}
	return cfg
}

// Sybilwar runs the attack/defense grid. Unlike FactorStat it does not
// require completion: a stalled run *is* the attack succeeding, and the
// tick-capped factor reports its cost.
func Sybilwar(opt Options) ([]SybilwarCell, error) {
	opt = opt.withDefaults(5)
	cells := sybilwarCells()
	for ci := range cells {
		c := &cells[ci]
		type outcome struct {
			probe, eclipse, factor, falseEvict, gini0, giniEnd float64
			completed                                          bool
		}
		results, err := parallel.MapErr(opt.Trials, opt.Workers, func(i int) (outcome, error) {
			cfg := sybilwarConfig(c, trialSeed(opt.Seed, ci, i))
			if opt.Shards != 0 && cfg.Shards == 0 {
				cfg.Shards = opt.Shards
				cfg.ShardWorkers = opt.ShardWorkers
			}
			res, err := sim.Run(cfg)
			if err != nil {
				return outcome{}, err
			}
			o := outcome{
				probe:      eclipseAtOrBefore(res.Adversary.EclipseSamples, eclipseProbeTick),
				eclipse:    res.Adversary.FinalEclipse,
				factor:     res.RuntimeFactor,
				falseEvict: res.Adversary.FalseEvictionRate(),
				completed:  res.Completed,
			}
			if n := len(res.Snapshots); n > 0 {
				o.gini0 = stats.GiniInts(res.Snapshots[0].HostWorkloads)
				o.giniEnd = stats.GiniInts(res.Snapshots[n-1].HostWorkloads)
			}
			return o, nil
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.Name, err)
		}
		var p, e, f, fe, g0, g1 stats.Online
		for _, r := range results {
			p.Add(r.probe)
			e.Add(r.eclipse)
			f.Add(r.factor)
			fe.Add(r.falseEvict)
			g0.Add(r.gini0)
			g1.Add(r.giniEnd)
			if r.completed {
				c.Completed++
			}
		}
		c.Trials = opt.Trials
		c.EclipseProbe = onlineStat(p)
		c.Eclipse = onlineStat(e)
		c.Factor = onlineStat(f)
		c.FalseEvict = onlineStat(fe)
		c.GiniStart = onlineStat(g0)
		c.GiniEnd = onlineStat(g1)
	}
	return cells, nil
}

// eclipseAtOrBefore returns the latest trajectory sample no later than
// tick (0 when the run has no samples by then — e.g. no attacker).
func eclipseAtOrBefore(samples []sim.EclipseSample, tick int) float64 {
	f := 0.0
	for _, s := range samples {
		if s.Tick > tick {
			break
		}
		f = s.Fraction
	}
	return f
}

// SybilwarReport renders the sweep as a table.
func SybilwarReport(cells []SybilwarCell) *report.Table {
	t := report.NewTable("Sybilwar: eclipse attack vs puzzle + density defenses",
		fmt.Sprintf("cell (probe t=%d)", eclipseProbeTick),
		"eclipse@probe", "eclipse@end", "factor", "±95%", "gini 0→end", "false evict", "completed")
	for _, c := range cells {
		t.AddRow(c.Name,
			fmt.Sprintf("%.3f", c.EclipseProbe.Mean),
			fmt.Sprintf("%.3f", c.Eclipse.Mean),
			fmt.Sprintf("%.3f", c.Factor.Mean),
			fmt.Sprintf("%.3f", c.Factor.CI95),
			fmt.Sprintf("%.3f→%.3f", c.GiniStart.Mean, c.GiniEnd.Mean),
			fmt.Sprintf("%.3f", c.FalseEvict.Mean),
			fmt.Sprintf("%d/%d", c.Completed, c.Trials))
	}
	return t
}
