package experiments

import (
	"fmt"

	"chordbalance/internal/chord"
	"chordbalance/internal/ids"
	"chordbalance/internal/keys"
	"chordbalance/internal/report"
	"chordbalance/internal/sim"
	"chordbalance/internal/stats"
	"chordbalance/internal/xrand"
)

// ExtensionsSummary measures the §VII future-work strategies implemented
// in internal/strategy/extensions.go against their baselines:
// strength-aware invitation and random injection on the heterogeneous
// networks where the paper saw its negative result, and chosen-ID
// targeted injection on the homogeneous reference network.
func ExtensionsSummary(opt Options) ([]SummaryCell, error) {
	opt = opt.withDefaults(5)
	hetero := func(name string) Spec {
		return Spec{Nodes: 1000, Tasks: 100000, StrategyName: name,
			Heterogeneous: true, WorkByStrength: true}
	}
	cells := []SummaryCell{
		{
			Name: "invitation hetero (baseline)",
			Note: "the §VII problem: balanced but slow",
			Spec: hetero("invitation"),
		},
		{
			Name: "strength-invitation hetero (§VII)",
			Note: "strongest qualifying predecessor helps",
			Spec: hetero("strength-invitation"),
		},
		{
			Name: "random hetero (baseline)",
			Spec: hetero("random"),
		},
		{
			Name: "strength-random hetero (§VII)",
			Note: "weak hosts act with probability strength/max",
			Spec: hetero("strength-random"),
		},
		{
			Name: "smart-neighbor homogeneous (baseline)",
			Spec: Spec{Nodes: 1000, Tasks: 100000, StrategyName: "smart-neighbor"},
		},
		{
			Name: "targeted homogeneous (§VII chosen IDs)",
			Note: "Sybil lands on the exact median remaining key",
			Spec: Spec{Nodes: 1000, Tasks: 100000, StrategyName: "targeted"},
		},
		{
			Name: "random homogeneous (paper's best)",
			Spec: Spec{Nodes: 1000, Tasks: 100000, StrategyName: "random"},
		},
		{
			Name: "oracle homogeneous (global upper bound)",
			Note: "omniscient rebalancer; not decentralized",
			Spec: Spec{Nodes: 1000, Tasks: 100000, StrategyName: "oracle"},
		},
	}
	return runSummary(cells, opt)
}

// ChurnCurve reproduces the paper's footnote 2: a wider sweep of churn
// rates on the 1000-node/100k-task network, showing the diminishing
// returns past 0.01 — and, unlike the paper's simulation, putting a
// number on the maintenance cost that makes high churn "prohibitively
// expensive" (the estimated per-tick message load from joins/leaves).
func ChurnCurve(opt Options) (*report.Table, error) {
	opt = opt.withDefaults(5)
	rates := []float64{0, 0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1}
	t := report.NewTable(
		"Churn-rate curve, 1000 nodes / 100k tasks (paper footnote 2)",
		"churn rate", "factor", "±95%", "turnover msgs/tick")
	for ci, rate := range rates {
		spec := Spec{Nodes: 1000, Tasks: 100000, ChurnRate: rate}
		st, err := SpecFactor(spec, ci, opt)
		if err != nil {
			return nil, err
		}
		// One extra instrumented run for the message estimate.
		res, err := sim.Run(spec.Config(trialSeed(opt.Seed, ci, 1000)))
		if err != nil {
			return nil, err
		}
		perTick := float64(res.Messages.LookupMessages) / float64(res.Ticks)
		t.AddRowf(fmt.Sprintf("%g", rate), st.Mean, st.CI95, perTick)
	}
	return t, nil
}

// StrengthShare measures the §VII hypothesis directly: in a heterogeneous
// strength-consuming network, what fraction of the job does each strength
// class complete, against its fair share of total capacity? Classes doing
// *more* than their capacity share are net work-stealers; the paper
// suspects the weak classes are, which is exactly what slows the job.
func StrengthShare(opt Options) (*report.Table, error) {
	opt = opt.withDefaults(5)
	t := report.NewTable(
		"Work share by strength class: hetero 1000n/100k, strength consumption",
		"strategy", "class", "hosts", "capacity share", "work share", "stealing?")
	for ci, strat := range []string{"random", "invitation", "strength-invitation"} {
		hostsBy := map[int]int{}
		doneBy := map[int]int{}
		for trial := 0; trial < opt.Trials; trial++ {
			cfg := (Spec{Nodes: 1000, Tasks: 100000, StrategyName: strat,
				Heterogeneous: true, WorkByStrength: true}).Config(trialSeed(opt.Seed, ci, trial))
			res, err := sim.Run(cfg)
			if err != nil {
				return nil, err
			}
			if !res.Completed {
				return nil, fmt.Errorf("strengthshare: %s trial %d incomplete", strat, trial)
			}
			for class, n := range res.CompletedByStrength {
				doneBy[class] += n
			}
			for class, n := range res.HostsByStrength {
				hostsBy[class] += n
			}
		}
		totalDone, totalCap := 0, 0
		for class, n := range hostsBy {
			totalCap += n * class
		}
		for _, n := range doneBy {
			totalDone += n
		}
		for class := 1; class <= 5; class++ {
			capShare := float64(hostsBy[class]*class) / float64(totalCap)
			workShare := float64(doneBy[class]) / float64(totalDone)
			verdict := ""
			if workShare > capShare*1.05 {
				verdict = "yes (net stealer)"
			} else if workShare < capShare*0.95 {
				verdict = "no (cedes work)"
			}
			t.AddRowf(strat, class, hostsBy[class], capShare, workShare, verdict)
		}
	}
	return t, nil
}

// AblationChurnModel compares the paper's constant-churn assumption with
// bursty churn of the same average rate (correlated joins/leaves, flash
// crowds) on the Table II reference network.
func AblationChurnModel(opt Options) ([]SummaryCell, error) {
	opt = opt.withDefaults(5)
	models := []struct {
		name  string
		model sim.ChurnModel
	}{{"constant", sim.ChurnConstant}, {"bursty p=50 duty=0.2", sim.ChurnBursty}}
	var out []SummaryCell
	cell := 0
	for _, m := range models {
		for _, rate := range []float64{0.001, 0.01} {
			spec := Spec{Nodes: 1000, Tasks: 100000, ChurnRate: rate}
			model := m.model
			fn := func(seed uint64) sim.Config {
				cfg := spec.Config(seed)
				cfg.ChurnModel = model
				return cfg
			}
			st, err := FactorStat(fn, cell, opt)
			if err != nil {
				return nil, fmt.Errorf("churn model %s rate %g: %w", m.name, rate, err)
			}
			out = append(out, SummaryCell{
				Name: fmt.Sprintf("churn %g, %s", rate, m.name),
				Note: "same average turnover, different arrival pattern",
				Spec: spec,
				Stat: st,
			})
			cell++
		}
	}
	return out, nil
}

// WorkSeries captures the paper's §V-C "average work per tick" output:
// tasks completed per tick over the first `ticks` ticks for each named
// strategy on the reference network, averaged over trials.
func WorkSeries(ticks int, opt Options) (*report.Table, error) {
	opt = opt.withDefaults(3)
	if ticks <= 0 {
		ticks = 50
	}
	strategies := []struct {
		label string
		spec  Spec
	}{
		{"none", Spec{Nodes: 1000, Tasks: 100000}},
		{"churn-0.01", Spec{Nodes: 1000, Tasks: 100000, ChurnRate: 0.01}},
		{"random", Spec{Nodes: 1000, Tasks: 100000, StrategyName: "random"}},
		{"smart-neighbor", Spec{Nodes: 1000, Tasks: 100000, StrategyName: "smart-neighbor"}},
		{"invitation", Spec{Nodes: 1000, Tasks: 100000, StrategyName: "invitation"}},
	}
	series := make([][]float64, len(strategies))
	for si, s := range strategies {
		sums := make([]float64, ticks)
		for trial := 0; trial < opt.Trials; trial++ {
			cfg := s.spec.Config(trialSeed(opt.Seed, si, trial))
			cfg.RecordWorkPerTick = true
			cfg.MaxTicks = ticks
			res, err := sim.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("work series %s: %w", s.label, err)
			}
			for i, w := range res.WorkPerTick {
				if i < ticks {
					sums[i] += float64(w)
				}
			}
		}
		for i := range sums {
			sums[i] /= float64(opt.Trials)
		}
		series[si] = sums
	}
	headers := []string{"tick"}
	for _, s := range strategies {
		headers = append(headers, s.label)
	}
	t := report.NewTable(
		fmt.Sprintf("Average work per tick, first %d ticks (1000 nodes / 100k tasks)", ticks),
		headers...)
	for i := 0; i < ticks; i++ {
		row := []any{i + 1}
		for _, s := range series {
			row = append(row, s[i])
		}
		t.AddRowf(row...)
	}
	return t, nil
}

// ChordHops validates the O(log n) lookup-cost model the tick simulator
// charges for joins and Sybil placements, by building real overlays and
// measuring routed hop counts.
func ChordHops(opt Options) (*report.Table, error) {
	opt = opt.withDefaults(200) // trials = lookups per overlay here
	t := report.NewTable("Chord lookup hops vs network size (fingers fixed)",
		"nodes", "mean hops", "max hops", "log2(n)", "messages/join")
	for ci, n := range []int{16, 32, 64, 128} {
		nw := chord.NewNetwork(chord.Config{})
		g := keys.NewGenerator(trialSeed(opt.Seed, ci, 0))
		entry, err := nw.Create(g.Next())
		if err != nil {
			return nil, err
		}
		for i := 1; i < n; i++ {
			if _, err := nw.Join(g.Next(), entry); err != nil {
				return nil, err
			}
			nw.StabilizeAll()
		}
		if _, ok := nw.StabilizeUntilConverged(4 * n); !ok {
			return nil, fmt.Errorf("chordhops: %d-node ring did not converge", n)
		}
		joinMsgs := nw.TotalMessages()
		nw.FixAllFingers()
		rng := xrand.New(trialSeed(opt.Seed, ci, 1))
		var hops stats.Online
		maxHops := 0
		for i := 0; i < opt.Trials; i++ {
			_, h, err := entry.Lookup(ids.Random(rng))
			if err != nil {
				return nil, err
			}
			hops.Add(float64(h))
			if h > maxHops {
				maxHops = h
			}
		}
		t.AddRowf(n, hops.Mean(), maxHops, log2f(n), float64(joinMsgs)/float64(n))
	}
	return t, nil
}

// Traffic compares the strategies on the axis §VI-C/D argue about:
// protocol overhead. For each strategy it reports the runtime factor
// next to the estimated message counts (Sybil-placement lookups,
// workload queries, invitations) and the overhead per completed task —
// making the paper's qualitative claims ("estimation requires fewer
// messages", "invitation... uses less bandwidth", "reactive, rather
// than proactive") quantitative.
func Traffic(opt Options) (*report.Table, error) {
	opt = opt.withDefaults(5)
	t := report.NewTable(
		"Strategy traffic on 1000n/100k (maintenance excluded; per-trial means)",
		"strategy", "factor", "sybils", "lookup msgs", "query msgs", "msgs/task")
	strategies := []string{"none", "churn", "random", "neighbor", "smart-neighbor", "invitation", "targeted"}
	for ci, name := range strategies {
		spec := Spec{Nodes: 1000, Tasks: 100000, StrategyName: name}
		if name == "churn" {
			spec.ChurnRate = 0.01
		}
		var factor, sybils, lookups, queries stats.Online
		for trial := 0; trial < opt.Trials; trial++ {
			res, err := sim.Run(spec.Config(trialSeed(opt.Seed, ci, trial)))
			if err != nil {
				return nil, err
			}
			if !res.Completed {
				return nil, fmt.Errorf("traffic: %s trial %d incomplete", name, trial)
			}
			factor.Add(res.RuntimeFactor)
			sybils.Add(float64(res.Messages.SybilsCreated))
			lookups.Add(float64(res.Messages.LookupMessages))
			q := 0
			for _, n := range res.Messages.Strategy {
				q += n
			}
			queries.Add(float64(q))
		}
		perTask := (lookups.Mean() + queries.Mean()) / float64(spec.Tasks)
		t.AddRowf(name, factor.Mean(), sybils.Mean(), lookups.Mean(),
			queries.Mean(), perTask)
	}
	return t, nil
}

// Resilience quantifies the paper's active-backup assumption (§V): how
// many stored keys survive f *adjacent* node failures under r replicas.
// Adjacent failures are the worst case — they wipe a contiguous run of
// the ring, which is exactly where one key's replicas live. The paper
// asserts recovery from "quite catastrophic failures"; this table shows
// where that holds (f <= r) and where it cannot (f > r).
func Resilience(opt Options) (*report.Table, error) {
	opt = opt.withDefaults(3)
	t := report.NewTable(
		"Replication resilience: 24-node overlay, 120 keys, adjacent failures",
		"replicas", "failures", "keys lost", "loss rate")
	cell := 0
	for _, replicas := range []int{1, 2, 3, 4} {
		for _, failures := range []int{1, 2, 3, 4, 5} {
			lost, total := 0, 0
			for trial := 0; trial < opt.Trials; trial++ {
				l, n, err := resilienceTrial(replicas, failures,
					trialSeed(opt.Seed, cell, trial))
				if err != nil {
					return nil, err
				}
				lost += l
				total += n
			}
			t.AddRowf(replicas, failures, lost, float64(lost)/float64(total))
			cell++
		}
	}
	return t, nil
}

func resilienceTrial(replicas, failures int, seed uint64) (lost, total int, err error) {
	nw := chord.NewNetwork(chord.Config{Replicas: replicas})
	g := keys.NewGenerator(seed)
	entry, err := nw.Create(g.Next())
	if err != nil {
		return 0, 0, err
	}
	const nodes = 24
	for i := 1; i < nodes; i++ {
		if _, err := nw.Join(g.Next(), entry); err != nil {
			return 0, 0, err
		}
		nw.StabilizeAll()
	}
	if _, ok := nw.StabilizeUntilConverged(4 * nodes); !ok {
		return 0, 0, fmt.Errorf("resilience: overlay did not converge")
	}
	nw.FixAllFingers()
	stored := make(map[ids.ID]string)
	for i := 0; i < 120; i++ {
		k := g.Next()
		v := fmt.Sprintf("v%d", i)
		if err := entry.Put(k, v); err != nil {
			return 0, 0, err
		}
		stored[k] = v
	}
	nw.StabilizeAll() // replica repair
	// Kill `failures` ADJACENT nodes, starting away from the entry node.
	alive := nw.AliveIDs()
	start := 0
	for i, id := range alive {
		if id == entry.ID() {
			start = (i + 1 + failures) % len(alive) // keep entry alive
			break
		}
	}
	for i := 0; i < failures; i++ {
		victim := alive[(start+i)%len(alive)]
		if victim == entry.ID() {
			victim = alive[(start+failures+1)%len(alive)]
		}
		nw.Kill(victim)
	}
	nw.StabilizeUntilConverged(400)
	total = len(stored)
	for k, want := range stored {
		got, err := entry.Get(k)
		if err != nil || got != want {
			lost++
		}
	}
	return lost, total, nil
}

// ArcTable reports the §III arc-length analysis: SHA-1 placement versus
// even placement, against the exponential model's predictions.
func ArcTable(opt Options) (*report.Table, error) {
	opt = opt.withDefaults(5)
	t := report.NewTable("Arc-length analysis (median/mean -> ln 2 = 0.693 under SHA-1)",
		"placement", "nodes", "median/mean", "max/mean", "predicted max/mean", "KS vs exponential")
	for ci, n := range []int{100, 1000, 10000} {
		var med, max, ks stats.Online
		for i := 0; i < opt.Trials; i++ {
			g := keys.NewGenerator(trialSeed(opt.Seed, ci, i))
			a := keys.AnalyzeArcs(g.NodeIDs(n))
			med.Add(a.MedianToMean)
			max.Add(a.MaxToMean)
			ks.Add(a.KSStatistic)
		}
		t.AddRowf("sha1", n, med.Mean(), max.Mean(), keys.ExpectedMaxToMean(n), ks.Mean())
	}
	even := keys.AnalyzeArcs(keys.EvenIDs(1000, ids.Zero))
	t.AddRowf("even", 1000, even.MedianToMean, even.MaxToMean, 1.0, even.KSStatistic)
	return t, nil
}

func log2f(n int) float64 {
	f := 0.0
	for v := 1; v < n; v *= 2 {
		f++
	}
	return f
}
