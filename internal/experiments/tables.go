package experiments

import (
	"fmt"

	"chordbalance/internal/keys"
	"chordbalance/internal/parallel"
	"chordbalance/internal/report"
	"chordbalance/internal/stats"
)

// Table1Cell is one row of Table I: the median workload and its standard
// deviation for a fresh SHA-1 network, averaged over trials.
type Table1Cell struct {
	Nodes, Tasks            int
	MedianMean, SigmaMean   float64
	PaperMedian, PaperSigma float64
}

// Table1Configs are the nine (nodes, tasks) combinations of Table I with
// the paper's reported values.
var Table1Configs = []Table1Cell{
	{Nodes: 1000, Tasks: 100000, PaperMedian: 69.410, PaperSigma: 137.27},
	{Nodes: 1000, Tasks: 500000, PaperMedian: 346.570, PaperSigma: 499.169},
	{Nodes: 1000, Tasks: 1000000, PaperMedian: 692.300, PaperSigma: 996.982},
	{Nodes: 5000, Tasks: 100000, PaperMedian: 13.810, PaperSigma: 20.477},
	{Nodes: 5000, Tasks: 500000, PaperMedian: 69.280, PaperSigma: 100.344},
	{Nodes: 5000, Tasks: 1000000, PaperMedian: 138.360, PaperSigma: 200.564},
	{Nodes: 10000, Tasks: 100000, PaperMedian: 7.000, PaperSigma: 10.492},
	{Nodes: 10000, Tasks: 500000, PaperMedian: 34.550, PaperSigma: 50.366},
	{Nodes: 10000, Tasks: 1000000, PaperMedian: 69.180, PaperSigma: 100.319},
}

// Table1 reproduces Table I: the median distribution of tasks among nodes
// (the paper averaged 100 trials per row).
func Table1(opt Options) ([]Table1Cell, error) {
	opt = opt.withDefaults(20)
	out := make([]Table1Cell, len(Table1Configs))
	for c, cell := range Table1Configs {
		medians := parallel.Map(opt.Trials, opt.Workers, func(i int) [2]float64 {
			r := keys.AnalyzeDistribution(cell.Nodes, cell.Tasks, trialSeed(opt.Seed, c, i))
			return [2]float64{r.MedianWorkload, r.StdDev}
		})
		var med, sig stats.Online
		for _, m := range medians {
			med.Add(m[0])
			sig.Add(m[1])
		}
		cell.MedianMean = med.Mean()
		cell.SigmaMean = sig.Mean()
		out[c] = cell
	}
	return out, nil
}

// Table1Report renders Table I with paper-vs-measured columns.
func Table1Report(cells []Table1Cell) *report.Table {
	t := report.NewTable("Table I: median distribution of tasks among nodes",
		"nodes", "tasks", "median", "paper median", "sigma", "paper sigma")
	for _, c := range cells {
		t.AddRowf(c.Nodes, c.Tasks, c.MedianMean, c.PaperMedian, c.SigmaMean, c.PaperSigma)
	}
	return t
}

// Table2Cell is one cell of Table II: the mean runtime factor of the
// churn strategy for one (rate, network) pair.
type Table2Cell struct {
	ChurnRate    float64
	Nodes, Tasks int
	Stat         TrialStat
	Paper        float64
}

// Table2Rates and Table2Networks define the grid of Table II.
var (
	Table2Rates    = []float64{0, 0.0001, 0.001, 0.01}
	Table2Networks = []struct{ Nodes, Tasks int }{
		{1000, 100000},
		{1000, 1000000},
		{100, 10000},
		{100, 100000},
		{100, 1000000},
	}
	// table2Paper[rateIdx][netIdx] are the paper's reported factors.
	table2Paper = [4][5]float64{
		{7.476, 7.467, 5.043, 5.022, 5.016},
		{7.122, 5.732, 4.934, 4.362, 3.077},
		{6.047, 3.674, 4.391, 3.019, 1.863},
		{3.721, 2.104, 3.076, 1.873, 1.309},
	}
)

// Table2 reproduces Table II: runtime factors under the Churn strategy
// across churn rates and network shapes (paper: 100 trials per cell,
// homogeneous, one task per tick).
func Table2(opt Options) ([]Table2Cell, error) {
	opt = opt.withDefaults(5)
	var out []Table2Cell
	cell := 0
	for ri, rate := range Table2Rates {
		for ni, net := range Table2Networks {
			sp := Spec{
				Nodes:     net.Nodes,
				Tasks:     net.Tasks,
				ChurnRate: rate,
			}
			st, err := SpecFactor(sp, cell, opt)
			if err != nil {
				return nil, fmt.Errorf("table2 rate=%v net=%d/%d: %w", rate, net.Nodes, net.Tasks, err)
			}
			out = append(out, Table2Cell{
				ChurnRate: rate, Nodes: net.Nodes, Tasks: net.Tasks,
				Stat: st, Paper: table2Paper[ri][ni],
			})
			cell++
		}
	}
	return out, nil
}

// Table2Report renders Table II in the paper's layout (one row per churn
// rate, one column pair per network).
func Table2Report(cells []Table2Cell) *report.Table {
	headers := []string{"churn rate"}
	for _, net := range Table2Networks {
		label := fmt.Sprintf("%dn/%dk tasks", net.Nodes, net.Tasks/1000)
		headers = append(headers, label, "paper")
	}
	t := report.NewTable("Table II: runtime factor under the Churn strategy", headers...)
	byKey := map[string]Table2Cell{}
	for _, c := range cells {
		byKey[fmt.Sprintf("%v/%d/%d", c.ChurnRate, c.Nodes, c.Tasks)] = c
	}
	for _, rate := range Table2Rates {
		row := []any{fmt.Sprintf("%g", rate)}
		for _, net := range Table2Networks {
			c := byKey[fmt.Sprintf("%v/%d/%d", rate, net.Nodes, net.Tasks)]
			row = append(row, c.Stat.Mean, c.Paper)
		}
		t.AddRowf(row...)
	}
	return t
}
