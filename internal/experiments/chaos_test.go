package experiments

import (
	"fmt"
	"testing"
)

// TestChaosSerialParallelIdentical is the fault-layer half of the
// driver-equivalence guarantee: the chaos experiment must produce
// byte-identical cells whether trials run on one worker or many.
func TestChaosSerialParallelIdentical(t *testing.T) {
	render := func(workers int) string {
		cells, err := Chaos(Options{Trials: 3, Seed: 11, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		s := ""
		for _, c := range cells {
			s += fmt.Sprintf("%s f=%.9f±%.9f lost=%.9f mttr=%.9f done=%d\n",
				c.Name, c.Factor.Mean, c.Factor.CI95, c.KeysLost.Mean,
				c.MTTR.Mean, c.Completed)
		}
		return s
	}
	serial := render(1)
	par := render(4)
	if serial != par {
		t.Errorf("serial and parallel chaos runs differ:\n%s\n%s", serial, par)
	}
	if serial == "" {
		t.Fatal("chaos experiment produced no cells")
	}
}

// TestChaosReplicationContrast pins the experiment's headline contrast:
// replicated cells lose nothing, unreplicated cells lose keys.
func TestChaosReplicationContrast(t *testing.T) {
	cells, err := Chaos(Options{Trials: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if c.Replicas >= 0 && c.KeysLost.Mean != 0 {
			t.Errorf("%s: replicated cell lost %.1f keys", c.Name, c.KeysLost.Mean)
		}
		if c.Replicas < 0 && c.KeysLost.Mean == 0 {
			t.Errorf("%s: unreplicated cell lost no keys", c.Name)
		}
		if c.Completed != c.Trials {
			t.Errorf("%s: only %d/%d trials completed", c.Name, c.Completed, c.Trials)
		}
	}
}
