package experiments

import (
	"fmt"

	"chordbalance/internal/ring"
	"chordbalance/internal/sim"
)

// AblationSybilThreshold studies §VI-B-1: the sybilThreshold's effect on
// random injection in homogeneous networks (where the paper saw a >= 0.1
// factor reduction at the smaller task ratio and none at the larger).
func AblationSybilThreshold(opt Options) ([]SummaryCell, error) {
	opt = opt.withDefaults(5)
	var cells []SummaryCell
	for _, net := range []struct{ n, t int }{{1000, 100000}, {1000, 1000000}} {
		for _, thr := range []int{0, 5, 20} {
			cells = append(cells, SummaryCell{
				Name: fmt.Sprintf("random %dn/%dk thr=%d", net.n, net.t/1000, thr),
				Note: "paper: threshold helps only at 100 tasks/node",
				Spec: Spec{Nodes: net.n, Tasks: net.t, StrategyName: "random",
					SybilThreshold: thr},
			})
		}
	}
	return runSummary(cells, opt)
}

// AblationMaxSybils studies §VI-B-1: larger maxSybils hurting
// heterogeneous networks (strength disparity grows with the cap).
func AblationMaxSybils(opt Options) ([]SummaryCell, error) {
	opt = opt.withDefaults(5)
	var cells []SummaryCell
	for _, cap := range []int{5, 10} {
		cells = append(cells, SummaryCell{
			Name: fmt.Sprintf("random hetero 1000n/100k maxSybils=%d", cap),
			Note: "paper: 1..10 strengths perform worse than 1..5",
			Spec: Spec{Nodes: 1000, Tasks: 100000, StrategyName: "random",
				Heterogeneous: true, WorkByStrength: true, MaxSybils: cap},
		})
		cells = append(cells, SummaryCell{
			Name: fmt.Sprintf("random hetero 1000n/1M maxSybils=%d", cap),
			Note: "paper: increase ~0.3-0.4 at 1000 tasks/node",
			Spec: Spec{Nodes: 1000, Tasks: 1000000, StrategyName: "random",
				Heterogeneous: true, WorkByStrength: true, MaxSybils: cap},
		})
	}
	return runSummary(cells, opt)
}

// AblationChurnOnRandom studies §VI-B-1: churn adds nothing (and slightly
// hurts) once random injection is balancing the network.
func AblationChurnOnRandom(opt Options) ([]SummaryCell, error) {
	opt = opt.withDefaults(5)
	var cells []SummaryCell
	for _, rate := range []float64{0, 0.001, 0.01} {
		cells = append(cells, SummaryCell{
			Name: fmt.Sprintf("random 1000n/100k churn=%g", rate),
			Note: "paper: churn adds ~+0.06 at 0.01, never helps",
			Spec: Spec{Nodes: 1000, Tasks: 100000, StrategyName: "random",
				ChurnRate: rate},
		})
	}
	return runSummary(cells, opt)
}

// AblationConsumeMode measures the design choice DESIGN.md §3 documents:
// how the order nodes work through their arcs changes each strategy's
// effectiveness. Front consumption (remaining keys cluster at the arc's
// far edge) reproduces the paper's weak neighbor/invitation results;
// alternate consumption (keys stay spread) makes mid-arc splits far more
// effective.
func AblationConsumeMode(opt Options) ([]SummaryCell, error) {
	opt = opt.withDefaults(5)
	modes := []struct {
		name string
		mode ring.ConsumeMode
	}{{"front", ring.ConsumeFront}, {"alternate", ring.ConsumeAlternate}}
	var out []SummaryCell
	cell := 0
	for _, m := range modes {
		for _, strat := range []string{"random", "neighbor", "smart-neighbor", "invitation"} {
			spec := Spec{Nodes: 1000, Tasks: 100000, StrategyName: strat}
			mode := m.mode
			fn := func(seed uint64) sim.Config {
				cfg := spec.Config(seed)
				cfg.ConsumeMode = mode
				return cfg
			}
			st, err := FactorStat(fn, cell, opt)
			if err != nil {
				return nil, fmt.Errorf("%s consume=%s: %w", strat, m.name, err)
			}
			out = append(out, SummaryCell{
				Name: fmt.Sprintf("%s, consume=%s", strat, m.name),
				Spec: spec,
				Stat: st,
			})
			cell++
		}
	}
	return out, nil
}

// AblationDecisionCadence varies how often the strategies run their
// decision pass (the paper fixes it at 5 ticks without justification).
func AblationDecisionCadence(opt Options) ([]SummaryCell, error) {
	opt = opt.withDefaults(5)
	var cells []SummaryCell
	cadences := []int{1, 5, 10, 25}
	for _, every := range cadences {
		cells = append(cells, SummaryCell{
			Name: fmt.Sprintf("random 1000n/100k decide-every=%d", every),
			Spec: Spec{Nodes: 1000, Tasks: 100000, StrategyName: "random"},
		})
	}
	out := make([]SummaryCell, len(cells))
	for i, c := range cells {
		every := cadences[i]
		spec := c.Spec
		fn := func(seed uint64) sim.Config {
			cfg := spec.Config(seed)
			cfg.DecisionEvery = every
			return cfg
		}
		st, err := FactorStat(fn, i, opt)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.Name, err)
		}
		c.Stat = st
		out[i] = c
	}
	return out, nil
}

// AblationAvoidRepeats measures §IV-C's suggested refinement of marking
// arcs that yielded no work as invalid for future Sybil injection.
func AblationAvoidRepeats(opt Options) ([]SummaryCell, error) {
	opt = opt.withDefaults(5)
	settings := []bool{false, true}
	out := make([]SummaryCell, len(settings))
	for i, avoid := range settings {
		c := SummaryCell{
			Name: fmt.Sprintf("neighbor 1000n/100k avoid-repeats=%v", avoid),
			Note: "paper: suggested but not evaluated",
			Spec: Spec{Nodes: 1000, Tasks: 100000, StrategyName: "neighbor"},
		}
		avoidRepeats := avoid
		spec := c.Spec
		fn := func(seed uint64) sim.Config {
			cfg := spec.Config(seed)
			cfg.AvoidRepeats = avoidRepeats
			return cfg
		}
		st, err := FactorStat(fn, i, opt)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.Name, err)
		}
		c.Stat = st
		out[i] = c
	}
	return out, nil
}
