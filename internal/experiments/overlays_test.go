package experiments

import "testing"

func TestOverlayHopsComparison(t *testing.T) {
	tbl, err := OverlayHops(Options{Trials: 100, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 4 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	for i := 0; i < tbl.NumRows(); i++ {
		row := tbl.Row(i)
		chordHops := parseF(t, row[1])
		sym4 := parseF(t, row[3])
		sym1 := parseF(t, row[5])
		symState := parseF(t, row[4])
		chordState := parseF(t, row[2])
		// More long links always help Symphony.
		if sym4 >= sym1 {
			t.Errorf("n=%s: k=4 (%v) must beat k=1 (%v)", row[0], sym4, sym1)
		}
		// Chord's extra routing state buys at least parity with k=1
		// Symphony and (at scale) fewer hops.
		if chordHops > sym1 {
			t.Errorf("n=%s: chord (%v hops) lost to symphony k=1 (%v)", row[0], chordHops, sym1)
		}
		if symState >= chordState {
			t.Errorf("n=%s: symphony state %v must undercut chord %v", row[0], symState, chordState)
		}
	}
	// The gap widens with n: at 256 nodes chord must clearly beat k=1.
	last := tbl.Row(tbl.NumRows() - 1)
	if parseF(t, last[1])*2 > parseF(t, last[5]) {
		t.Errorf("at n=256 chord (%v) should be at least 2x better than symphony k=1 (%v)",
			last[1], last[5])
	}
}
