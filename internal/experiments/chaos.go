package experiments

// The chaos experiment quantifies the paper's §V claim that "active,
// aggressive" replication makes failures cheap: the same strategy and
// job are run under deterministic crash-stop fault plans of increasing
// harshness, with replication on and off, and the runtime factor is
// reported alongside the keys lost and the modeled repair latency. See
// docs/FAULTS.md for the fault model.

import (
	"fmt"

	"chordbalance/internal/faults"
	"chordbalance/internal/parallel"
	"chordbalance/internal/report"
	"chordbalance/internal/sim"
	"chordbalance/internal/stats"
)

// ChaosCell is one row of the chaos experiment: a named fault plan and
// replication degree, with the aggregated outcome over trials.
type ChaosCell struct {
	Name     string
	Spec     Spec
	Plan     faults.Plan
	Replicas int

	Factor   TrialStat
	KeysLost TrialStat
	MTTR     TrialStat
	// Completed counts trials that finished before the tick cap.
	Completed int
	Trials    int
}

// chaosCells is the experiment grid: steady crash churn, correlated
// bursts, and a partition-then-heal episode, each with replication on
// (default degree) and off.
func chaosCells() []ChaosCell {
	base := Spec{Nodes: 200, Tasks: 20000, StrategyName: "random"}
	plans := []struct {
		name string
		plan faults.Plan
	}{
		{"steady crashes 0.2%", faults.Plan{CrashRate: 0.002}},
		{"crash bursts 3/25t", faults.Plan{BurstEvery: 25, BurstSize: 3}},
		{"partition 30% t10-60 + crashes", faults.Plan{
			CrashRate: 0.001, PartitionFrac: 0.3, PartitionStart: 10, PartitionHeal: 60}},
	}
	var out []ChaosCell
	for _, p := range plans {
		for _, replicas := range []int{0, -1} {
			mode := "replicated"
			if replicas < 0 {
				mode = "no replication"
			}
			out = append(out, ChaosCell{
				Name:     fmt.Sprintf("%s, %s", p.name, mode),
				Spec:     base,
				Plan:     p.plan,
				Replicas: replicas,
			})
		}
	}
	return out
}

// Chaos runs the fault-plan grid and aggregates runtime factor, keys
// lost, and mean time-to-repair per cell.
func Chaos(opt Options) ([]ChaosCell, error) {
	opt = opt.withDefaults(5)
	cells := chaosCells()
	for ci := range cells {
		c := &cells[ci]
		cfg := func(seed uint64) sim.Config {
			s := c.Spec.Config(seed)
			s.Replicas = c.Replicas
			s.Faults = c.Plan
			s.Faults.Seed = seed ^ 0xc4ce5adcf623d983
			return s
		}
		type outcome struct {
			factor, lost, mttr float64
			completed          bool
		}
		results, err := parallel.MapErr(opt.Trials, opt.Workers, func(i int) (outcome, error) {
			res, err := sim.Run(cfg(trialSeed(opt.Seed, ci, i)))
			if err != nil {
				return outcome{}, err
			}
			return outcome{
				factor:    res.RuntimeFactor,
				lost:      float64(res.Faults.KeysLost),
				mttr:      res.Faults.MeanTimeToRepair(),
				completed: res.Completed,
			}, nil
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.Name, err)
		}
		var f, l, m stats.Online
		for _, r := range results {
			f.Add(r.factor)
			l.Add(r.lost)
			m.Add(r.mttr)
			if r.completed {
				c.Completed++
			}
		}
		c.Trials = opt.Trials
		c.Factor = onlineStat(f)
		c.KeysLost = onlineStat(l)
		c.MTTR = onlineStat(m)
	}
	return cells, nil
}

func onlineStat(o stats.Online) TrialStat {
	return TrialStat{
		N:    o.N(),
		Mean: o.Mean(),
		CI95: o.ConfidenceInterval95(),
		Min:  o.Min(),
		Max:  o.Max(),
	}
}

// ChaosReport renders the chaos cells as a table.
func ChaosReport(cells []ChaosCell) *report.Table {
	t := report.NewTable("Chaos: runtime under deterministic fault plans",
		"fault plan", "factor", "±95%", "keys lost", "mttr (ticks)", "completed")
	for _, c := range cells {
		t.AddRow(c.Name,
			fmt.Sprintf("%.3f", c.Factor.Mean),
			fmt.Sprintf("%.3f", c.Factor.CI95),
			fmt.Sprintf("%.1f", c.KeysLost.Mean),
			fmt.Sprintf("%.2f", c.MTTR.Mean),
			fmt.Sprintf("%d/%d", c.Completed, c.Trials))
	}
	return t
}
