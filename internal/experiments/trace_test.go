package experiments

import (
	"sync"
	"testing"

	"chordbalance/internal/obs"
	"chordbalance/internal/sim"
)

// TestSweepTraceSerialMatchesParallel: per-trial tracers are exclusive
// to their trial, so a parallel sweep must produce byte-identical traces
// to the same sweep run serially — worker scheduling cannot leak into
// the records.
func TestSweepTraceSerialMatchesParallel(t *testing.T) {
	fn := func(seed uint64) sim.Config {
		return sim.Config{Nodes: 40, Tasks: 1200, ChurnRate: 0.02, Seed: seed}
	}
	const trials = 6
	sweep := func(workers int) []string {
		sinks := make([]*obs.MemSink, trials)
		var mu sync.Mutex
		opt := Options{
			Trials:  trials,
			Workers: workers,
			Seed:    11,
			Trace: func(cell, trial int) *obs.Tracer {
				s := &obs.MemSink{}
				mu.Lock()
				sinks[trial] = s
				mu.Unlock()
				return obs.New(s)
			},
		}
		if _, err := FactorStat(fn, 3, opt); err != nil {
			t.Fatal(err)
		}
		out := make([]string, trials)
		for i, s := range sinks {
			if s == nil || len(s.Bytes()) == 0 {
				t.Fatalf("trial %d produced no trace", i)
			}
			out[i] = s.String()
		}
		return out
	}

	serial, par := sweep(1), sweep(4)
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatalf("trial %d: serial and parallel sweeps produced different trace bytes", i)
		}
	}
}

// TestSweepUntracedMatchesTraced: threading tracers through FactorStat
// must not change the aggregated statistics.
func TestSweepUntracedMatchesTraced(t *testing.T) {
	fn := func(seed uint64) sim.Config {
		return sim.Config{Nodes: 40, Tasks: 1200, Seed: seed}
	}
	base := Options{Trials: 4, Workers: 2, Seed: 5}
	plain, err := FactorStat(fn, 0, base)
	if err != nil {
		t.Fatal(err)
	}
	traced := base
	traced.Trace = func(cell, trial int) *obs.Tracer {
		return obs.New(&obs.MemSink{})
	}
	got, err := FactorStat(fn, 0, traced)
	if err != nil {
		t.Fatal(err)
	}
	if plain != got {
		t.Fatalf("tracing changed the sweep statistics: %+v vs %+v", plain, got)
	}
}
