package experiments

import (
	"fmt"

	"chordbalance/internal/report"
)

// SummaryCell is one row of a §VI text-result reproduction: a named
// configuration, its measured factor, and what the paper reports (0 when
// the paper gives only a qualitative statement).
type SummaryCell struct {
	Name  string
	Spec  Spec
	Stat  TrialStat
	Paper float64
	Note  string
}

func runSummary(cellsIn []SummaryCell, opt Options) ([]SummaryCell, error) {
	out := make([]SummaryCell, len(cellsIn))
	for i, c := range cellsIn {
		st, err := SpecFactor(c.Spec, i, opt)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.Name, err)
		}
		c.Stat = st
		out[i] = c
	}
	return out, nil
}

// SummaryReport renders summary cells as a table.
func SummaryReport(title string, cells []SummaryCell) *report.Table {
	t := report.NewTable(title, "configuration", "factor", "±95%", "paper", "note")
	for _, c := range cells {
		paper := ""
		if c.Paper != 0 {
			paper = fmt.Sprintf("%.3f", c.Paper)
		}
		t.AddRow(c.Name, fmt.Sprintf("%.3f", c.Stat.Mean),
			fmt.Sprintf("%.3f", c.Stat.CI95), paper, c.Note)
	}
	return t
}

// RandomSummary reproduces the §VI-B text results for random injection:
// factors on the reference networks, the task-ratio effect, and
// heterogeneity.
func RandomSummary(opt Options) ([]SummaryCell, error) {
	opt = opt.withDefaults(5)
	cells := []SummaryCell{
		{
			Name: "random 1000n/100k", Paper: 1.7,
			Note: "paper: mean never above 1.7, as low as 1.36",
			Spec: Spec{Nodes: 1000, Tasks: 100000, StrategyName: "random"},
		},
		{
			Name: "random 1000n/1M", Paper: 1.25,
			Note: "paper: 1.12-1.25; ~0.8 below the 100k network",
			Spec: Spec{Nodes: 1000, Tasks: 1000000, StrategyName: "random"},
		},
		{
			Name: "random 100n/100k", Paper: 0,
			Note: "paper: same ratio as 1000n/1M, slightly faster (-0.086)",
			Spec: Spec{Nodes: 100, Tasks: 100000, StrategyName: "random"},
		},
		{
			Name: "random hetero 1000n/100k (strength work)", Paper: 4.052,
			Note: "paper: worst hetero mean 4.052 at 100 tasks/node",
			Spec: Spec{Nodes: 1000, Tasks: 100000, StrategyName: "random",
				Heterogeneous: true, WorkByStrength: true},
		},
		{
			Name: "random hetero 1000n/1M (strength work)", Paper: 1.955,
			Note: "paper: worst hetero mean 1.955 at 1000 tasks/node",
			Spec: Spec{Nodes: 1000, Tasks: 1000000, StrategyName: "random",
				Heterogeneous: true, WorkByStrength: true},
		},
	}
	return runSummary(cells, opt)
}

// NeighborSummary reproduces the §VI-C text results for the neighbor and
// smart-neighbor strategies.
func NeighborSummary(opt Options) ([]SummaryCell, error) {
	opt = opt.withDefaults(5)
	cells := []SummaryCell{
		{
			Name: "neighbor 1000n/100k", Paper: 5.033,
			Note: "paper: 2.4 below no-strategy (7.476)",
			Spec: Spec{Nodes: 1000, Tasks: 100000, StrategyName: "neighbor"},
		},
		{
			Name: "neighbor 100n/10k", Paper: 3.006,
			Note: "paper: 2 below no-strategy (5.043)",
			Spec: Spec{Nodes: 100, Tasks: 10000, StrategyName: "neighbor"},
		},
		{
			Name: "smart-neighbor 1000n/100k", Paper: 0,
			Note: "paper: probing improves the factor by ~1.2 on average",
			Spec: Spec{Nodes: 1000, Tasks: 100000, StrategyName: "smart-neighbor"},
		},
		{
			Name: "neighbor 1000n/100k, 10 successors", Paper: 0,
			Note: "paper: larger successor list improves by ~0.3",
			Spec: Spec{Nodes: 1000, Tasks: 100000, StrategyName: "neighbor", NumSuccessors: 10},
		},
		{
			Name: "neighbor hetero 1000n/100k (strength work)", Paper: 0,
			Note: "paper: heterogeneous base runtime is worse",
			Spec: Spec{Nodes: 1000, Tasks: 100000, StrategyName: "neighbor",
				Heterogeneous: true, WorkByStrength: true},
		},
		{
			Name: "neighbor hetero 1000n/100k (single-task work)", Paper: 0,
			Note: "paper footnote 3: fine when only Sybil counts differ",
			Spec: Spec{Nodes: 1000, Tasks: 100000, StrategyName: "neighbor",
				Heterogeneous: true},
		},
	}
	return runSummary(cells, opt)
}

// InvitationSummary reproduces the §VI-D text results.
func InvitationSummary(opt Options) ([]SummaryCell, error) {
	opt = opt.withDefaults(5)
	cells := []SummaryCell{
		{
			Name: "invitation 100n/100k", Paper: 3.749,
			Spec: Spec{Nodes: 100, Tasks: 100000, StrategyName: "invitation"},
		},
		{
			Name: "invitation 1000n/100k", Paper: 5.673,
			Spec: Spec{Nodes: 1000, Tasks: 100000, StrategyName: "invitation"},
		},
		{
			Name: "invitation hetero 1000n/100k (strength work)", Paper: 6.097,
			Note: "paper: strength-consumption heterogeneity fares much worse",
			Spec: Spec{Nodes: 1000, Tasks: 100000, StrategyName: "invitation",
				Heterogeneous: true, WorkByStrength: true},
		},
	}
	return runSummary(cells, opt)
}

// BaselineSummary measures the no-strategy factors the §VI comparisons
// refer back to.
func BaselineSummary(opt Options) ([]SummaryCell, error) {
	opt = opt.withDefaults(5)
	cells := []SummaryCell{
		{Name: "none 1000n/100k", Paper: 7.476, Spec: Spec{Nodes: 1000, Tasks: 100000}},
		{Name: "none 100n/10k", Paper: 5.043, Spec: Spec{Nodes: 100, Tasks: 10000}},
		{Name: "none 100n/100k", Paper: 5.022, Spec: Spec{Nodes: 100, Tasks: 100000}},
		// §VI-A: "The runtime for heterogeneous versus homogeneous
		// networks had no significant differences" (churn strategy,
		// single-task consumption).
		{
			Name: "churn 0.01 homogeneous 1000n/100k", Paper: 3.721,
			Spec: Spec{Nodes: 1000, Tasks: 100000, ChurnRate: 0.01},
		},
		{
			Name: "churn 0.01 heterogeneous 1000n/100k", Paper: 3.721,
			Note: "paper: no significant difference vs homogeneous",
			Spec: Spec{Nodes: 1000, Tasks: 100000, ChurnRate: 0.01, Heterogeneous: true},
		},
	}
	return runSummary(cells, opt)
}
