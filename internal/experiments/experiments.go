// Package experiments defines one reproducible constructor per table and
// figure in the paper's evaluation (§III table I, §VI tables and figures),
// plus the §VI text results and the ablations DESIGN.md calls out. Each
// experiment runs deterministic seeded trials — optionally in parallel —
// and returns both structured results and render-ready tables.
package experiments

import (
	"fmt"

	"chordbalance/internal/obs"
	"chordbalance/internal/parallel"
	"chordbalance/internal/sim"
	"chordbalance/internal/stats"
	"chordbalance/internal/strategy"
)

// Options control an experiment run.
type Options struct {
	// Trials per configuration cell. 0 uses the experiment's default
	// (chosen to finish in seconds on a laptop; the paper used 100).
	Trials int
	// Workers bounds trial parallelism; 0 uses GOMAXPROCS.
	Workers int
	// Shards enables intra-trial parallelism: every trial's engine runs
	// its tick phases across this many shards (sim.Config.Shards). It
	// composes with Workers — trials in parallel, each trial itself
	// parallel — and, like the engine knob, cannot affect any result
	// byte. A ConfigFn that sets its own Shards wins. 0 leaves configs
	// untouched.
	Shards int
	// ShardWorkers bounds each trial's intra-trial goroutines
	// (sim.Config.ShardWorkers); 0 uses GOMAXPROCS. Keep Workers ×
	// ShardWorkers near the core count when combining both.
	ShardWorkers int
	// Seed is the base seed; trial i of cell c uses a deterministic
	// stream derived from (Seed, c, i).
	Seed uint64
	// Trace, when non-nil, supplies one tracer per (cell, trial) —
	// typically obs.New over a per-trial file or memory sink. Each trial
	// owns its tracer exclusively, so parallel sweeps need no locking,
	// and the tracer is closed when its trial's run returns. nil (the
	// default) disables tracing entirely. A trial whose hook returns nil
	// runs untraced.
	Trace func(cell, trial int) *obs.Tracer
}

func (o Options) withDefaults(defaultTrials int) Options {
	if o.Trials == 0 {
		o.Trials = defaultTrials
	}
	return o
}

// trialSeed derives the seed for one trial of one cell, keeping cells and
// trials statistically independent but reproducible.
func trialSeed(base uint64, cell, trial int) uint64 {
	x := base ^ 0x9e3779b97f4a7c15*uint64(cell+1) ^ 0xbf58476d1ce4e5b9*uint64(trial+1)
	// One SplitMix64-style finalization round.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return x
}

// TrialStat aggregates one cell's runtime factors across trials.
type TrialStat struct {
	N    int
	Mean float64
	CI95 float64
	Min  float64
	Max  float64
}

// String renders the stat as "mean ±ci95 [n trials]" for table cells.
func (s TrialStat) String() string {
	return fmt.Sprintf("%.3f ±%.3f [%d trials]", s.Mean, s.CI95, s.N)
}

// ConfigFn builds the simulation configuration for one trial. It must
// return a fresh strategy instance each call: strategies carry per-run
// state.
type ConfigFn func(seed uint64) sim.Config

// Spec names one experiment cell: the paper's variables that matter for
// reporting.
type Spec struct {
	Name           string
	Nodes          int
	Tasks          int
	StrategyName   string // for strategy.ByName; "" means none
	ChurnRate      float64
	Heterogeneous  bool
	WorkByStrength bool
	MaxSybils      int
	SybilThreshold int
	NumSuccessors  int
}

// Config builds the sim configuration for one trial of this spec.
func (sp Spec) Config(seed uint64) sim.Config {
	var strat strategy.Strategy
	if sp.StrategyName != "" {
		s, ok := strategy.ByName(sp.StrategyName)
		if !ok {
			panic(fmt.Sprintf("experiments: unknown strategy %q", sp.StrategyName))
		}
		strat = s
	}
	return sim.Config{
		Nodes:          sp.Nodes,
		Tasks:          sp.Tasks,
		Strategy:       strat,
		ChurnRate:      sp.ChurnRate,
		Heterogeneous:  sp.Heterogeneous,
		WorkByStrength: sp.WorkByStrength,
		MaxSybils:      sp.MaxSybils,
		SybilThreshold: sp.SybilThreshold,
		NumSuccessors:  sp.NumSuccessors,
		Seed:           seed,
	}
}

// FactorStat runs trials of one cell and aggregates the runtime factor.
func FactorStat(fn ConfigFn, cell int, opt Options) (TrialStat, error) {
	results, err := parallel.MapErr(opt.Trials, opt.Workers, func(i int) (float64, error) {
		cfg := fn(trialSeed(opt.Seed, cell, i))
		if opt.Trace != nil {
			cfg.Trace = opt.Trace(cell, i)
		}
		if opt.Shards != 0 && cfg.Shards == 0 {
			cfg.Shards = opt.Shards
			cfg.ShardWorkers = opt.ShardWorkers
		}
		res, err := sim.Run(cfg)
		if cerr := cfg.Trace.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("experiments: closing trial %d trace: %w", i, cerr)
		}
		if err != nil {
			return 0, err
		}
		if !res.Completed {
			return 0, fmt.Errorf("experiments: trial %d did not complete in %d ticks", i, res.Ticks)
		}
		return res.RuntimeFactor, nil
	})
	if err != nil {
		return TrialStat{}, err
	}
	var o stats.Online
	for _, f := range results {
		o.Add(f)
	}
	return TrialStat{
		N:    o.N(),
		Mean: o.Mean(),
		CI95: o.ConfidenceInterval95(),
		Min:  o.Min(),
		Max:  o.Max(),
	}, nil
}

// SpecFactor is FactorStat for a Spec.
func SpecFactor(sp Spec, cell int, opt Options) (TrialStat, error) {
	return FactorStat(sp.Config, cell, opt)
}
