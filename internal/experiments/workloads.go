package experiments

import (
	"fmt"

	"chordbalance/internal/sim"
)

// AblationWorkloadSkew replaces the paper's uniform task keys with
// Zipf-popular object references (the workload BitTorrent/IPFS-style
// deployments actually see, §I) and measures how each strategy copes.
// Tasks for one object share a ring position, so no strategy can split a
// single hot object across nodes — skew sets a floor on the achievable
// factor.
func AblationWorkloadSkew(opt Options) ([]SummaryCell, error) {
	opt = opt.withDefaults(5)
	var out []SummaryCell
	cell := 0
	for _, wl := range []struct {
		name    string
		objects int
		s       float64
	}{
		{"uniform", 0, 0},
		{"zipf s=0.8, 10k objects", 10000, 0.8},
		{"zipf s=1.1, 10k objects", 10000, 1.1},
	} {
		for _, strat := range []string{"", "random"} {
			label := strat
			if label == "" {
				label = "none"
			}
			spec := Spec{Nodes: 1000, Tasks: 100000, StrategyName: strat}
			objects, s := wl.objects, wl.s
			fn := func(seed uint64) sim.Config {
				cfg := spec.Config(seed)
				cfg.ZipfObjects = objects
				cfg.ZipfExponent = s
				return cfg
			}
			st, err := FactorStat(fn, cell, opt)
			if err != nil {
				return nil, fmt.Errorf("skew %s/%s: %w", wl.name, label, err)
			}
			out = append(out, SummaryCell{
				Name: fmt.Sprintf("%s, %s", label, wl.name),
				Note: "hot objects cannot be split across nodes",
				Spec: spec,
				Stat: st,
			})
			cell++
		}
	}
	return out, nil
}

// VirtualServers compares the literature's classic static remedy — every
// host running k permanent virtual servers (Chord's own suggestion) —
// against the paper's dynamic Sybil strategies on the reference network.
// Static virtual servers smooth the arc distribution up front but cannot
// react to where the work actually is, and they multiply every host's
// maintenance load for the entire lifetime of the network.
func VirtualServers(opt Options) ([]SummaryCell, error) {
	opt = opt.withDefaults(5)
	var out []SummaryCell
	cell := 0
	addStatic := func(k int) error {
		spec := Spec{Nodes: 1000, Tasks: 100000}
		fn := func(seed uint64) sim.Config {
			cfg := spec.Config(seed)
			cfg.StaticVNodes = k
			return cfg
		}
		st, err := FactorStat(fn, cell, opt)
		if err != nil {
			return err
		}
		out = append(out, SummaryCell{
			Name: fmt.Sprintf("static virtual servers k=%d", k),
			Note: fmt.Sprintf("%d permanent vnodes/host, no dynamics", k+1),
			Spec: spec,
			Stat: st,
		})
		cell++
		return nil
	}
	for _, k := range []int{0, 2, 5, 10} {
		if err := addStatic(k); err != nil {
			return nil, err
		}
	}
	dyn := Spec{Nodes: 1000, Tasks: 100000, StrategyName: "random"}
	st, err := SpecFactor(dyn, cell, opt)
	if err != nil {
		return nil, err
	}
	out = append(out, SummaryCell{
		Name: "dynamic random injection (paper)",
		Note: "at most 5 Sybils/host, only while needed",
		Spec: dyn,
		Stat: st,
	})
	return out, nil
}

// AblationStreaming compares the paper's static job (all tasks present
// at tick 0) with tasks arriving over time at the ideal consumption
// rate, for the baseline and random injection. Streaming smooths the
// imbalance by itself — each arrival wave lands on whatever arcs exist
// then — so strategies gain less, and the measurement shows how much of
// the paper's speedup depends on the static-job assumption.
func AblationStreaming(opt Options) ([]SummaryCell, error) {
	opt = opt.withDefaults(5)
	var out []SummaryCell
	cell := 0
	for _, mode := range []struct {
		name         string
		stream, rate int
		tasks        int
	}{
		{"static job", 0, 0, 100000},
		{"streaming 1000/tick", 90000, 1000, 10000},
	} {
		for _, strat := range []string{"", "random"} {
			label := strat
			if label == "" {
				label = "none"
			}
			spec := Spec{Nodes: 1000, Tasks: mode.tasks, StrategyName: strat}
			stream, rate := mode.stream, mode.rate
			fn := func(seed uint64) sim.Config {
				cfg := spec.Config(seed)
				cfg.StreamTasks = stream
				cfg.StreamRate = rate
				return cfg
			}
			st, err := FactorStat(fn, cell, opt)
			if err != nil {
				return nil, fmt.Errorf("streaming %s/%s: %w", mode.name, label, err)
			}
			out = append(out, SummaryCell{
				Name: fmt.Sprintf("%s, %s", label, mode.name),
				Note: "100k total tasks either way",
				Spec: spec,
				Stat: st,
			})
			cell++
		}
	}
	return out, nil
}
