package experiments

import (
	"fmt"

	"chordbalance/internal/ids"
	"chordbalance/internal/keys"
	"chordbalance/internal/report"
	"chordbalance/internal/sim"
	"chordbalance/internal/stats"
)

// histMax is the top edge of the figures' workload histograms; workloads
// above it land in the overflow bin (Figure 1 shows a handful of nodes
// past 10,000 tasks).
const histMax = 100000

// newWorkloadHistogram builds the log-binned histogram shape shared by
// every workload figure.
func newWorkloadHistogram() *stats.Histogram {
	return stats.NewLogHistogram(histMax, 3)
}

// Figure1 reproduces the workload probability distribution of a fresh
// 1000-node / 1,000,000-task network (Figure 1): the returned histogram
// holds per-node workload counts; the median is returned alongside.
func Figure1(opt Options) (*stats.Histogram, float64, error) {
	opt = opt.withDefaults(5)
	h := newWorkloadHistogram()
	var medians stats.Online
	for i := 0; i < opt.Trials; i++ {
		g := keys.NewGenerator(trialSeed(opt.Seed, 0, i))
		nodeIDs := g.NodeIDs(1000)
		loads := keys.Assign(nodeIDs, g.TaskKeys(1000000))
		for _, l := range loads {
			h.AddInt(l)
		}
		medians.Add(stats.SummarizeInts(loads).Median)
	}
	return h, medians.Mean(), nil
}

// RingFigure produces the unit-circle embedding of Figures 2 (SHA-1 node
// placement) and 3 (evenly spaced nodes): 10 nodes and 100 tasks.
func RingFigure(even bool, seed uint64) []report.Point {
	g := keys.NewGenerator(seed)
	var nodeIDs []ids.ID
	if even {
		nodeIDs = keys.EvenIDs(10, ids.Zero)
	} else {
		nodeIDs = g.NodeIDs(10)
	}
	taskKeys := g.TaskKeys(100)
	pts := make([]report.Point, 0, len(nodeIDs)+len(taskKeys))
	for _, id := range nodeIDs {
		x, y := id.XY()
		pts = append(pts, report.Point{X: x, Y: y, Kind: "node"})
	}
	for _, k := range taskKeys {
		x, y := k.XY()
		pts = append(pts, report.Point{X: x, Y: y, Kind: "task"})
	}
	return pts
}

// WorkloadFigure describes one of the paper's histogram figures (4-14):
// two networks with identical starting configurations compared at a tick.
type WorkloadFigure struct {
	Number int
	Tick   int
	LabelA string
	SpecA  Spec
	LabelB string
	SpecB  Spec
}

// wlSpec builds the 1000-node/100k-task spec every histogram figure uses.
func wlSpec(strategyName string, churn float64, hetero bool) Spec {
	return Spec{
		Nodes: 1000, Tasks: 100000,
		StrategyName: strategyName, ChurnRate: churn, Heterogeneous: hetero,
	}
}

// Figures indexes the paper's workload-distribution figures by number.
var Figures = map[int]WorkloadFigure{
	4:  {Number: 4, Tick: 0, LabelA: "no strategy", SpecA: wlSpec("", 0, false), LabelB: "churn 0.01", SpecB: wlSpec("", 0.01, false)},
	5:  {Number: 5, Tick: 5, LabelA: "no strategy", SpecA: wlSpec("", 0, false), LabelB: "churn 0.01", SpecB: wlSpec("", 0.01, false)},
	6:  {Number: 6, Tick: 35, LabelA: "no strategy", SpecA: wlSpec("", 0, false), LabelB: "churn 0.01", SpecB: wlSpec("", 0.01, false)},
	7:  {Number: 7, Tick: 5, LabelA: "no strategy", SpecA: wlSpec("", 0, false), LabelB: "random injection", SpecB: wlSpec("random", 0, false)},
	8:  {Number: 8, Tick: 35, LabelA: "no strategy", SpecA: wlSpec("", 0, false), LabelB: "random injection", SpecB: wlSpec("random", 0, false)},
	9:  {Number: 9, Tick: 35, LabelA: "churn 0.01", SpecA: wlSpec("", 0.01, false), LabelB: "random injection", SpecB: wlSpec("random", 0, false)},
	10: {Number: 10, Tick: 35, LabelA: "hetero, no strategy", SpecA: wlSpec("", 0, true), LabelB: "hetero, random injection", SpecB: wlSpec("random", 0, true)},
	11: {Number: 11, Tick: 35, LabelA: "no strategy", SpecA: wlSpec("", 0, false), LabelB: "neighbor injection", SpecB: wlSpec("neighbor", 0, false)},
	12: {Number: 12, Tick: 35, LabelA: "no strategy", SpecA: wlSpec("", 0, false), LabelB: "smart neighbor", SpecB: wlSpec("smart-neighbor", 0, false)},
	13: {Number: 13, Tick: 35, LabelA: "no strategy", SpecA: wlSpec("", 0, false), LabelB: "invitation", SpecB: wlSpec("invitation", 0, false)},
	14: {Number: 14, Tick: 35, LabelA: "smart neighbor", SpecA: wlSpec("smart-neighbor", 0, false), LabelB: "invitation", SpecB: wlSpec("invitation", 0, false)},
}

// FigureResult holds the two histograms of one workload figure plus the
// snapshot summary statistics.
type FigureResult struct {
	Figure         WorkloadFigure
	HistA, HistB   *stats.Histogram
	IdleA, IdleB   int
	MaxA, MaxB     int
	AliveA, AliveB int
}

// RunWorkloadFigure executes the two networks of a figure with matched
// seeds and returns the host-workload histograms at the figure's tick.
// Trials are aggregated into the same histogram (the paper plots a single
// run; more trials smooth the picture without changing its shape).
func RunWorkloadFigure(fig WorkloadFigure, opt Options) (*FigureResult, error) {
	opt = opt.withDefaults(3)
	res := &FigureResult{
		Figure: fig,
		HistA:  newWorkloadHistogram(),
		HistB:  newWorkloadHistogram(),
	}
	run := func(sp Spec, h *stats.Histogram, idle, max, alive *int, cell int) error {
		for i := 0; i < opt.Trials; i++ {
			cfg := sp.Config(trialSeed(opt.Seed, cell, i))
			cfg.SnapshotTicks = []int{fig.Tick}
			cfg.MaxTicks = fig.Tick + 1 // only the snapshot matters
			r, err := sim.Run(cfg)
			if err != nil {
				return err
			}
			if len(r.Snapshots) != 1 {
				return fmt.Errorf("experiments: figure %d expected 1 snapshot, got %d (run ended at tick %d)",
					fig.Number, len(r.Snapshots), r.Ticks)
			}
			snap := r.Snapshots[0]
			*alive += snap.AliveHosts
			for _, w := range snap.HostWorkloads {
				h.AddInt(w)
				if w == 0 {
					*idle++
				}
				if w > *max {
					*max = w
				}
			}
		}
		return nil
	}
	// Matched seeds: both sides of a figure start from the same network
	// (the paper: "identical starting configurations").
	if err := run(fig.SpecA, res.HistA, &res.IdleA, &res.MaxA, &res.AliveA, 0); err != nil {
		return nil, err
	}
	if err := run(fig.SpecB, res.HistB, &res.IdleB, &res.MaxB, &res.AliveB, 0); err != nil {
		return nil, err
	}
	return res, nil
}

// Summary renders the headline comparison the paper's captions make:
// idle-node counts and maximum workloads on each side.
func (fr *FigureResult) Summary() string {
	return fmt.Sprintf(
		"Figure %d (tick %d): %s — idle %d, max %d | %s — idle %d, max %d",
		fr.Figure.Number, fr.Figure.Tick,
		fr.Figure.LabelA, fr.IdleA, fr.MaxA,
		fr.Figure.LabelB, fr.IdleB, fr.MaxB)
}
