package experiments

import (
	"strings"
	"testing"

	"chordbalance/internal/sim"
)

func TestTrialSeedIndependence(t *testing.T) {
	seen := map[uint64]bool{}
	for cell := 0; cell < 10; cell++ {
		for trial := 0; trial < 10; trial++ {
			s := trialSeed(42, cell, trial)
			if seen[s] {
				t.Fatalf("duplicate seed for cell=%d trial=%d", cell, trial)
			}
			seen[s] = true
		}
	}
	if trialSeed(1, 0, 0) == trialSeed(2, 0, 0) {
		t.Error("base seed must matter")
	}
	if trialSeed(1, 0, 0) != trialSeed(1, 0, 0) {
		t.Error("seeds must be deterministic")
	}
}

func TestSpecConfig(t *testing.T) {
	sp := Spec{Nodes: 10, Tasks: 100, StrategyName: "random", ChurnRate: 0.5,
		Heterogeneous: true, WorkByStrength: true, MaxSybils: 7,
		SybilThreshold: 3, NumSuccessors: 9}
	cfg := sp.Config(99)
	if cfg.Nodes != 10 || cfg.Tasks != 100 || cfg.Seed != 99 ||
		cfg.ChurnRate != 0.5 || !cfg.Heterogeneous || !cfg.WorkByStrength ||
		cfg.MaxSybils != 7 || cfg.SybilThreshold != 3 || cfg.NumSuccessors != 9 {
		t.Errorf("config = %+v", cfg)
	}
	if cfg.Strategy == nil || cfg.Strategy.Name() != "random" {
		t.Error("strategy not constructed")
	}
	// Fresh instances per call (observable for stateful strategies, which
	// are pointer-typed; stateless ones are value types and compare equal).
	nsp := Spec{Nodes: 1, Tasks: 1, StrategyName: "neighbor"}
	if nsp.Config(1).Strategy == nsp.Config(1).Strategy {
		t.Error("Config must build fresh strategy instances")
	}
	if (Spec{Nodes: 1, Tasks: 1}).Config(0).Strategy != nil {
		t.Error("empty strategy name must mean nil (baseline)")
	}
}

func TestSpecConfigUnknownStrategyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown strategy must panic")
		}
	}()
	Spec{Nodes: 1, Tasks: 1, StrategyName: "bogus"}.Config(0)
}

func TestFactorStat(t *testing.T) {
	sp := Spec{Nodes: 50, Tasks: 2500} // deterministic baseline
	st, err := SpecFactor(sp, 0, Options{Trials: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if st.N != 4 {
		t.Errorf("N = %d", st.N)
	}
	if st.Mean < 1 {
		t.Errorf("mean factor %v < 1 is impossible", st.Mean)
	}
	if st.Min > st.Mean || st.Max < st.Mean {
		t.Errorf("ordering broken: %+v", st)
	}
	if !strings.Contains(st.String(), "trials") {
		t.Errorf("String() = %q", st.String())
	}
	// Same options reproduce exactly.
	st2, err := SpecFactor(sp, 0, Options{Trials: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if st != st2 {
		t.Errorf("stat not reproducible: %+v vs %+v", st, st2)
	}
}

func TestFactorStatFailurePropagates(t *testing.T) {
	fn := func(seed uint64) sim.Config {
		// MaxTicks too small to finish: every trial fails.
		return sim.Config{Nodes: 1, Tasks: 100, MaxTicks: 1, Seed: seed}
	}
	if _, err := FactorStat(fn, 0, Options{Trials: 2}); err == nil {
		t.Error("incomplete trials must surface as errors")
	}
}

func TestTable1SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("table 1 full grid is slow")
	}
	cells, err := Table1(Options{Trials: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 9 {
		t.Fatalf("cells = %d", len(cells))
	}
	for _, c := range cells {
		// Medians land in the right ballpark: between 40% and 100% of the
		// paper's value is impossible to miss with correct assignment
		// (the paper's own numbers are ~69% of the mean).
		lo, hi := c.PaperMedian*0.7, c.PaperMedian*1.3
		if c.MedianMean < lo || c.MedianMean > hi {
			t.Errorf("%d/%d: median %v outside [%v, %v]",
				c.Nodes, c.Tasks, c.MedianMean, lo, hi)
		}
		if c.SigmaMean < c.PaperSigma*0.6 || c.SigmaMean > c.PaperSigma*1.4 {
			t.Errorf("%d/%d: sigma %v vs paper %v", c.Nodes, c.Tasks, c.SigmaMean, c.PaperSigma)
		}
	}
	out := Table1Report(cells).String()
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "69.410") {
		t.Errorf("report missing content:\n%s", out)
	}
}

func TestTable2TinyGrid(t *testing.T) {
	// Shrink the grid so the test runs in seconds; restore afterwards.
	oldRates, oldNets := Table2Rates, Table2Networks
	defer func() { Table2Rates, Table2Networks = oldRates, oldNets }()
	Table2Rates = []float64{0, 0.01}
	Table2Networks = Table2Networks[2:3] // 100 nodes / 10k tasks

	cells, err := Table2(Options{Trials: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
	if cells[0].ChurnRate != 0 || cells[1].ChurnRate != 0.01 {
		t.Errorf("rates wrong: %+v", cells)
	}
	if cells[1].Stat.Mean >= cells[0].Stat.Mean {
		t.Errorf("churn must reduce the factor: %v -> %v",
			cells[0].Stat.Mean, cells[1].Stat.Mean)
	}
	out := Table2Report(cells).String()
	if !strings.Contains(out, "churn rate") {
		t.Errorf("report:\n%s", out)
	}
}

func TestFigure1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-task assignment is slow")
	}
	h, median, err := Figure1(Options{Trials: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 1000 {
		t.Fatalf("histogram total = %d, want 1000 nodes", h.Total())
	}
	// Paper: median ~692 for mean 1000; the bulk below 1000, a tail past
	// 10000.
	if median < 550 || median > 850 {
		t.Errorf("median = %v, want ~692", median)
	}
}

func TestRingFigure(t *testing.T) {
	pts := RingFigure(false, 4)
	if len(pts) != 110 {
		t.Fatalf("points = %d, want 10 nodes + 100 tasks", len(pts))
	}
	nodes, tasks := 0, 0
	for _, p := range pts {
		r := p.X*p.X + p.Y*p.Y
		if r < 0.99 || r > 1.01 {
			t.Fatalf("point off the unit circle: %+v", p)
		}
		switch p.Kind {
		case "node":
			nodes++
		case "task":
			tasks++
		}
	}
	if nodes != 10 || tasks != 100 {
		t.Errorf("nodes=%d tasks=%d", nodes, tasks)
	}
	// Even placement must differ from hashed placement.
	even := RingFigure(true, 4)
	if even[0] == pts[0] && even[1] == pts[1] {
		t.Error("even and hashed layouts coincide")
	}
}

func TestRunWorkloadFigureEarlyTick(t *testing.T) {
	fig := Figures[5] // tick 5: cheap
	res, err := RunWorkloadFigure(fig, Options{Trials: 1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.HistA.Total() == 0 || res.HistB.Total() == 0 {
		t.Fatal("empty histograms")
	}
	// Churn at tick 5 barely changes the picture, but both sides must
	// account every live host exactly once.
	if res.HistA.Total() != res.AliveA || res.HistB.Total() != res.AliveB {
		t.Errorf("histogram totals %d/%d vs alive %d/%d",
			res.HistA.Total(), res.HistB.Total(), res.AliveA, res.AliveB)
	}
	if !strings.Contains(res.Summary(), "Figure 5") {
		t.Errorf("summary = %q", res.Summary())
	}
}

func TestRunWorkloadFigure8RandomBeatsNone(t *testing.T) {
	res, err := RunWorkloadFigure(Figures[8], Options{Trials: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's claim: at tick 35 random injection has far fewer idle
	// hosts than no strategy.
	if res.IdleB >= res.IdleA {
		t.Errorf("random injection idle %d, none idle %d: balancing failed",
			res.IdleB, res.IdleA)
	}
	// And its maximum workload is no worse.
	if res.MaxB > res.MaxA {
		t.Errorf("random injection max %d exceeds baseline max %d", res.MaxB, res.MaxA)
	}
}

func TestFiguresIndexComplete(t *testing.T) {
	for n := 4; n <= 14; n++ {
		fig, ok := Figures[n]
		if !ok {
			t.Errorf("figure %d missing", n)
			continue
		}
		if fig.Number != n {
			t.Errorf("figure %d numbered %d", n, fig.Number)
		}
		if fig.SpecA.Nodes != 1000 || fig.SpecA.Tasks != 100000 {
			t.Errorf("figure %d wrong network", n)
		}
	}
}

func TestSummaryMachinery(t *testing.T) {
	cells := []SummaryCell{
		{Name: "tiny baseline", Spec: Spec{Nodes: 50, Tasks: 2500}, Paper: 5.0},
		{Name: "tiny random", Spec: Spec{Nodes: 50, Tasks: 2500, StrategyName: "random"}},
	}
	out, err := runSummary(cells, Options{Trials: 3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if out[1].Stat.Mean >= out[0].Stat.Mean {
		t.Errorf("random (%v) must beat baseline (%v)", out[1].Stat.Mean, out[0].Stat.Mean)
	}
	rep := SummaryReport("demo", out).String()
	if !strings.Contains(rep, "tiny baseline") || !strings.Contains(rep, "5.000") {
		t.Errorf("report:\n%s", rep)
	}
	// Cells without paper values render an empty paper column, not 0.000.
	if strings.Count(rep, "5.000") != 1 {
		t.Errorf("unexpected paper values:\n%s", rep)
	}
}
