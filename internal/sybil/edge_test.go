package sybil

// Edge-case tests for degenerate strength distributions: the adversary
// subsystem reuses this package (standalone hosts back hostile virtual
// nodes), and the boundaries — all-equal strengths, a single-host ring,
// a zero-budget mint cap — were previously uncovered.

import (
	"testing"

	"chordbalance/internal/xrand"
)

// TestAllEqualStrengths pins the homogeneous boundary: every host at
// the same strength, where the heterogeneous bookkeeping must collapse
// to the paper's homogeneous model exactly.
func TestAllEqualStrengths(t *testing.T) {
	p := NewPool(PoolConfig{Hosts: 8, WaitingHosts: 8, MaxSybils: 5}, nil)
	for i := 0; i < p.Len(); i++ {
		h := p.Host(i)
		if h.Strength() != 1 {
			t.Fatalf("host %d strength %d, want 1", i, h.Strength())
		}
		if h.MaxSybils() != 5 {
			t.Fatalf("host %d cap %d, want 5", i, h.MaxSybils())
		}
		// Work is strength-independent in the homogeneous model whichever
		// measurement rule is active.
		if h.WorkPerTick(false) != 1 || h.WorkPerTick(true) != 1 {
			t.Fatalf("host %d work %d/%d, want 1/1", i, h.WorkPerTick(false), h.WorkPerTick(true))
		}
	}
	if got := p.TotalStrength(true); got != 8 {
		t.Errorf("TotalStrength(byStrength) = %d, want 8 (alive hosts only)", got)
	}
	if got := p.TotalStrength(false); got != 8 {
		t.Errorf("TotalStrength(flat) = %d, want 8", got)
	}

	// A heterogeneous draw can also come out all-equal (MaxSybils 1
	// forces it); strength and cap must both collapse to 1.
	het := NewPool(PoolConfig{Hosts: 4, WaitingHosts: 0, Heterogeneous: true, MaxSybils: 1}, xrand.New(3))
	for i := 0; i < het.Len(); i++ {
		h := het.Host(i)
		if h.Strength() != 1 || h.MaxSybils() != 1 {
			t.Fatalf("degenerate heterogeneous host %d: strength %d cap %d, want 1/1",
				i, h.Strength(), h.MaxSybils())
		}
	}
}

// TestSingleHostRing pins the smallest possible network: one live host,
// no waiting pool. Every aggregate must behave, and the lone host must
// still be able to mint up to its cap.
func TestSingleHostRing(t *testing.T) {
	p := NewPool(PoolConfig{Hosts: 1, WaitingHosts: 0, MaxSybils: 2}, nil)
	if p.Len() != 1 || p.AliveCount() != 1 {
		t.Fatalf("len=%d alive=%d, want 1/1", p.Len(), p.AliveCount())
	}
	if got := len(p.Waiting()); got != 0 {
		t.Fatalf("waiting pool has %d hosts, want 0", got)
	}
	h := p.Host(0)
	for i := 0; i < 2; i++ {
		if !h.CanCreateSybil() {
			t.Fatalf("mint %d refused below the cap", i)
		}
		h.CreatedSybil()
	}
	if h.CanCreateSybil() {
		t.Fatal("mint allowed past the cap")
	}
	// Leaving a single-host network resets its Sybils like any other
	// departure; the ring-must-not-empty rule lives in the engine, not
	// here.
	h.SetAlive(false)
	if h.SybilCount() != 0 {
		t.Errorf("departure kept %d Sybils", h.SybilCount())
	}
	if got := p.TotalStrength(true); got != 0 {
		t.Errorf("empty network TotalStrength = %d, want 0", got)
	}
	if got := len(p.Alive()); got != 0 {
		t.Errorf("empty network Alive() has %d hosts", got)
	}
}

// TestZeroBudgetMint pins the cap-0 boundary the adversary depends on:
// a standalone host with no Sybil budget must never report mint
// capacity, so strategies that probe CanCreateSybil leave it alone.
func TestZeroBudgetMint(t *testing.T) {
	h := NewStandalone(100, 1, 0)
	if h.Index() != 100 || !h.Alive() {
		t.Fatalf("standalone host index=%d alive=%v, want 100/true", h.Index(), h.Alive())
	}
	if h.CanCreateSybil() {
		t.Fatal("zero-budget host reported mint capacity")
	}
	defer func() {
		if recover() == nil {
			t.Error("CreatedSybil past a zero cap did not panic")
		}
	}()
	h.CreatedSybil()
}

// TestStandaloneValidation pins NewStandalone's constructor contract.
func TestStandaloneValidation(t *testing.T) {
	h := NewStandalone(3, 2, 4)
	if h.Strength() != 2 || h.MaxSybils() != 4 {
		t.Fatalf("standalone strength %d cap %d, want 2/4", h.Strength(), h.MaxSybils())
	}
	if !h.CanCreateSybil() {
		t.Fatal("standalone host under cap refused a mint")
	}
	defer func() {
		if recover() == nil {
			t.Error("negative strength did not panic")
		}
	}()
	NewStandalone(0, -1, 0)
}

// TestDroppedSybilUnderflow pins the accounting guard the defense's
// eviction path relies on: dropping a Sybil a host does not have is a
// programming error, not silent corruption.
func TestDroppedSybilUnderflow(t *testing.T) {
	h := NewStandalone(0, 1, 1)
	defer func() {
		if recover() == nil {
			t.Error("DroppedSybil underflow did not panic")
		}
	}()
	h.DroppedSybil()
}
