// Package sybil tracks the physical machines ("hosts") behind the virtual
// nodes on the ring and enforces the paper's Sybil-attack bookkeeping: how
// many virtual identities a host may project, how strong it is, and how
// much work it can consume per tick.
//
// In the paper's terminology a host's first identity is its real node; any
// additional identities are Sybils. A homogeneous network caps every host
// at maxSybils Sybils and strength 1; a heterogeneous network draws
// strength uniformly from {1..maxSybils} and caps Sybils at the strength
// (§V-B, "Homogeneity").
package sybil

import (
	"fmt"

	"chordbalance/internal/xrand"
)

// Host is one physical participant. Fields are managed by the Pool and the
// simulation engine; strategies observe hosts through read methods only.
type Host struct {
	index    int
	strength int
	maxSybil int
	sybils   int
	alive    bool
}

// Index returns the host's stable identity within its pool.
func (h *Host) Index() int { return h.index }

// Strength returns the host's compute strength (1 in homogeneous networks).
func (h *Host) Strength() int { return h.strength }

// Alive reports whether the host is currently in the network (as opposed
// to sitting in the churn waiting pool).
func (h *Host) Alive() bool { return h.alive }

// SybilCount returns how many Sybil identities the host currently projects
// (not counting its primary identity).
func (h *Host) SybilCount() int { return h.sybils }

// MaxSybils returns the host's Sybil cap.
func (h *Host) MaxSybils() int { return h.maxSybil }

// CanCreateSybil reports whether the host may project one more Sybil.
func (h *Host) CanCreateSybil() bool { return h.alive && h.sybils < h.maxSybil }

// CreatedSybil records a new Sybil identity. It panics when called past
// the cap: the engine must check CanCreateSybil first.
func (h *Host) CreatedSybil() {
	if !h.CanCreateSybil() {
		panic(fmt.Sprintf("sybil: host %d exceeded cap %d", h.index, h.maxSybil))
	}
	h.sybils++
}

// DroppedSybil records a Sybil leaving the ring.
func (h *Host) DroppedSybil() {
	if h.sybils == 0 {
		panic(fmt.Sprintf("sybil: host %d dropped a Sybil it does not have", h.index))
	}
	h.sybils--
}

// SetAlive moves the host in or out of the network. Leaving resets the
// Sybil count (all of a departing host's identities leave with it).
func (h *Host) SetAlive(alive bool) {
	h.alive = alive
	if !alive {
		h.sybils = 0
	}
}

// WorkPerTick returns how many tasks the host completes each tick under
// the given work-measurement rule (§V-B "Work Measurement").
func (h *Host) WorkPerTick(byStrength bool) int {
	if byStrength {
		return h.strength
	}
	return 1
}

// NewStandalone builds a host outside any Pool, for callers that manage
// identity accounting themselves — the simulator's adversary backs its
// hostile virtual nodes with one. The host starts alive; a cap of 0
// means it can never mint a (tracked) Sybil, which keeps standalone
// hosts out of strategies' CanCreateSybil reach. Panics on a negative
// strength or cap, matching NewPool's contract that accounting state is
// valid by construction.
func NewStandalone(index, strength, maxSybil int) *Host {
	if strength < 0 || maxSybil < 0 {
		panic(fmt.Sprintf("sybil: standalone host %d with negative strength %d or cap %d",
			index, strength, maxSybil))
	}
	return &Host{index: index, strength: strength, maxSybil: maxSybil, alive: true}
}

// PoolConfig describes how to build a host population.
type PoolConfig struct {
	// Hosts is the number of machines initially in the network.
	Hosts int
	// WaitingHosts is the size of the churn waiting pool (the paper starts
	// it equal to Hosts).
	WaitingHosts int
	// Heterogeneous draws strengths from U{1..MaxSybils} when true.
	Heterogeneous bool
	// MaxSybils is the Sybil cap (and the strength ceiling when
	// heterogeneous). The paper's default is 5.
	MaxSybils int
}

// Pool owns every host in an experiment: the live network plus the churn
// waiting pool.
type Pool struct {
	hosts []*Host
	cfg   PoolConfig
}

// NewPool builds the host population. rng drives heterogeneous strength
// draws; it may be nil for homogeneous pools.
func NewPool(cfg PoolConfig, rng *xrand.Rand) *Pool {
	if cfg.MaxSybils < 1 {
		panic("sybil: MaxSybils must be >= 1")
	}
	if cfg.Heterogeneous && rng == nil {
		panic("sybil: heterogeneous pool needs an RNG")
	}
	total := cfg.Hosts + cfg.WaitingHosts
	p := &Pool{hosts: make([]*Host, total), cfg: cfg}
	for i := range p.hosts {
		strength, cap := 1, cfg.MaxSybils
		if cfg.Heterogeneous {
			strength = rng.IntRange(1, cfg.MaxSybils)
			cap = strength
		}
		p.hosts[i] = &Host{
			index:    i,
			strength: strength,
			maxSybil: cap,
			alive:    i < cfg.Hosts,
		}
	}
	return p
}

// Len returns the total number of hosts (live + waiting).
func (p *Pool) Len() int { return len(p.hosts) }

// Host returns the i-th host.
func (p *Pool) Host(i int) *Host { return p.hosts[i] }

// Alive returns the hosts currently in the network, in index order.
// The slice is freshly allocated; callers may keep it across mutations at
// the price of staleness.
func (p *Pool) Alive() []*Host {
	out := make([]*Host, 0, p.cfg.Hosts)
	for _, h := range p.hosts {
		if h.alive {
			out = append(out, h)
		}
	}
	return out
}

// Waiting returns the hosts in the churn pool, in index order.
func (p *Pool) Waiting() []*Host {
	out := make([]*Host, 0, p.cfg.WaitingHosts)
	for _, h := range p.hosts {
		if !h.alive {
			out = append(out, h)
		}
	}
	return out
}

// AliveCount returns how many hosts are in the network.
func (p *Pool) AliveCount() int {
	n := 0
	for _, h := range p.hosts {
		if h.alive {
			n++
		}
	}
	return n
}

// TotalStrength sums WorkPerTick over the live hosts; the denominator of
// the paper's ideal runtime.
func (p *Pool) TotalStrength(byStrength bool) int {
	sum := 0
	for _, h := range p.hosts {
		if h.alive {
			sum += h.WorkPerTick(byStrength)
		}
	}
	return sum
}
