package sybil_test

import (
	"fmt"

	"chordbalance/internal/sybil"
)

// Example shows the host bookkeeping behind the Sybil strategies.
func Example() {
	pool := sybil.NewPool(sybil.PoolConfig{
		Hosts:        3,
		WaitingHosts: 3,
		MaxSybils:    2,
	}, nil)

	h := pool.Host(0)
	fmt.Println("can create:", h.CanCreateSybil())
	h.CreatedSybil()
	h.CreatedSybil()
	fmt.Println("at cap:", !h.CanCreateSybil(), "- sybils:", h.SybilCount())

	// Leaving the network withdraws every Sybil identity.
	h.SetAlive(false)
	fmt.Println("after leave:", h.SybilCount(), "sybils,", pool.AliveCount(), "hosts alive")
	// Output:
	// can create: true
	// at cap: true - sybils: 2
	// after leave: 0 sybils, 2 hosts alive
}
