package sybil

import (
	"testing"

	"chordbalance/internal/xrand"
)

func TestHostSybilAccounting(t *testing.T) {
	h := &Host{index: 3, strength: 1, maxSybil: 2, alive: true}
	if !h.CanCreateSybil() {
		t.Fatal("fresh host must allow Sybils")
	}
	h.CreatedSybil()
	h.CreatedSybil()
	if h.CanCreateSybil() {
		t.Error("host at cap must refuse")
	}
	if h.SybilCount() != 2 {
		t.Errorf("count = %d", h.SybilCount())
	}
	h.DroppedSybil()
	if h.SybilCount() != 1 || !h.CanCreateSybil() {
		t.Error("drop must free capacity")
	}
}

func TestHostCreatePastCapPanics(t *testing.T) {
	h := &Host{maxSybil: 1, alive: true}
	h.CreatedSybil()
	defer func() {
		if recover() == nil {
			t.Error("expected panic past cap")
		}
	}()
	h.CreatedSybil()
}

func TestHostDropBelowZeroPanics(t *testing.T) {
	h := &Host{maxSybil: 1, alive: true}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on dropping absent Sybil")
		}
	}()
	h.DroppedSybil()
}

func TestDeadHostCannotCreate(t *testing.T) {
	h := &Host{maxSybil: 5, alive: false}
	if h.CanCreateSybil() {
		t.Error("waiting-pool host must not create Sybils")
	}
}

func TestSetAliveResetsSybils(t *testing.T) {
	h := &Host{maxSybil: 3, alive: true}
	h.CreatedSybil()
	h.CreatedSybil()
	h.SetAlive(false)
	if h.SybilCount() != 0 {
		t.Error("leaving must drop all Sybil identities")
	}
	h.SetAlive(true)
	if !h.Alive() || h.SybilCount() != 0 {
		t.Error("rejoin state wrong")
	}
}

func TestWorkPerTick(t *testing.T) {
	h := &Host{strength: 4}
	if h.WorkPerTick(false) != 1 {
		t.Error("single-task mode must be 1")
	}
	if h.WorkPerTick(true) != 4 {
		t.Error("strength mode must be strength")
	}
}

func TestNewPoolHomogeneous(t *testing.T) {
	p := NewPool(PoolConfig{Hosts: 10, WaitingHosts: 10, MaxSybils: 5}, nil)
	if p.Len() != 20 {
		t.Fatalf("Len = %d", p.Len())
	}
	if p.AliveCount() != 10 || len(p.Alive()) != 10 || len(p.Waiting()) != 10 {
		t.Error("alive/waiting split wrong")
	}
	for i := 0; i < p.Len(); i++ {
		h := p.Host(i)
		if h.Strength() != 1 || h.MaxSybils() != 5 {
			t.Fatalf("host %d: strength %d cap %d", i, h.Strength(), h.MaxSybils())
		}
		if h.Index() != i {
			t.Fatalf("index mismatch")
		}
	}
	if p.TotalStrength(false) != 10 || p.TotalStrength(true) != 10 {
		t.Error("homogeneous total strength must equal live hosts")
	}
}

func TestNewPoolHeterogeneous(t *testing.T) {
	rng := xrand.New(42)
	p := NewPool(PoolConfig{Hosts: 1000, WaitingHosts: 0, Heterogeneous: true, MaxSybils: 5}, rng)
	counts := map[int]int{}
	for i := 0; i < p.Len(); i++ {
		h := p.Host(i)
		if h.Strength() < 1 || h.Strength() > 5 {
			t.Fatalf("strength %d out of range", h.Strength())
		}
		if h.MaxSybils() != h.Strength() {
			t.Fatal("heterogeneous cap must equal strength")
		}
		counts[h.Strength()]++
	}
	for s := 1; s <= 5; s++ {
		if counts[s] < 120 || counts[s] > 280 {
			t.Errorf("strength %d count %d, want ~200", s, counts[s])
		}
	}
	if ts := p.TotalStrength(true); ts < 2500 || ts > 3500 {
		t.Errorf("total strength = %d, want ~3000", ts)
	}
}

func TestNewPoolPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewPool(PoolConfig{Hosts: 1, MaxSybils: 0}, nil) },
		func() { NewPool(PoolConfig{Hosts: 1, MaxSybils: 5, Heterogeneous: true}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
