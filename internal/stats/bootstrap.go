package stats

import "sort"

// BootstrapSource is the randomness the bootstrap needs; *xrand.Rand
// satisfies it.
type BootstrapSource interface {
	Intn(n int) int
}

// BootstrapCI estimates a percentile confidence interval for an arbitrary
// statistic by case resampling: it draws `resamples` bootstrap samples
// from xs (with replacement), applies stat to each, and returns the
// (alpha/2, 1-alpha/2) quantiles of the resulting distribution. The
// harness uses it for Table I's median, where the normal approximation
// behind Online.ConfidenceInterval95 does not apply.
//
// It panics on an empty sample, resamples < 1, or alpha outside (0, 1).
func BootstrapCI(xs []float64, stat func([]float64) float64, resamples int, alpha float64, src BootstrapSource) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: BootstrapCI of empty sample")
	}
	if resamples < 1 {
		panic("stats: BootstrapCI needs resamples >= 1")
	}
	if alpha <= 0 || alpha >= 1 {
		panic("stats: BootstrapCI alpha outside (0,1)")
	}
	estimates := make([]float64, resamples)
	scratch := make([]float64, len(xs))
	for r := range estimates {
		for i := range scratch {
			scratch[i] = xs[src.Intn(len(xs))]
		}
		estimates[r] = stat(scratch)
	}
	sort.Float64s(estimates)
	return quantileSorted(estimates, alpha/2), quantileSorted(estimates, 1-alpha/2)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := q * float64(len(sorted)-1)
	lo := int(rank)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Median is a convenience statistic for BootstrapCI.
func Median(xs []float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return medianSorted(sorted)
}

// Mean is a convenience statistic for BootstrapCI.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
