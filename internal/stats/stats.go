// Package stats provides the descriptive statistics and histogram tooling
// the experiment harness uses to reproduce the paper's tables and figures:
// median/σ summaries (Table I), runtime-factor aggregation over 100-trial
// batches (Table II), and log-binned workload histograms (Figures 1, 4-14).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the moments and order statistics of one sample.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	StdDev float64 // population standard deviation, as in the paper's σ
	Min    float64
	Max    float64
	Sum    float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[s.N-1]
	for _, x := range sorted {
		s.Sum += x
	}
	s.Mean = s.Sum / float64(s.N)
	var ss float64
	for _, x := range sorted {
		d := x - s.Mean
		ss += d * d
	}
	s.StdDev = math.Sqrt(ss / float64(s.N))
	s.Median = medianSorted(sorted)
	return s
}

func medianSorted(sorted []float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// SummarizeInts converts and summarizes an integer sample.
func SummarizeInts(xs []int) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It panics on an empty sample or an
// out-of-range p.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty sample")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: Percentile %v out of [0,100]", p))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Gini returns the Gini coefficient of a non-negative sample: 0 for a
// perfectly even distribution, approaching 1 as all mass concentrates on a
// single element. The paper's "imbalance" maps naturally onto this.
func Gini(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var cum, total float64
	for i, x := range sorted {
		cum += float64(i+1) * x
		total += x
	}
	if total == 0 {
		return 0
	}
	nf := float64(n)
	return (2*cum)/(nf*total) - (nf+1)/nf
}

// GiniInts is Gini over an integer sample.
func GiniInts(xs []int) float64 {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Gini(fs)
}

// Online accumulates a running mean and variance using Welford's algorithm.
// It lets the sweep harness aggregate 100-trial batches without retaining
// every sample.
type Online struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add feeds one observation into the accumulator.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of observations seen.
func (o *Online) N() int { return o.n }

// Mean returns the running mean (0 for an empty accumulator).
func (o *Online) Mean() float64 { return o.mean }

// Variance returns the running population variance.
func (o *Online) Variance() float64 {
	if o.n == 0 {
		return 0
	}
	return o.m2 / float64(o.n)
}

// StdDev returns the running population standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Min returns the smallest observation (0 for an empty accumulator).
func (o *Online) Min() float64 { return o.min }

// Max returns the largest observation (0 for an empty accumulator).
func (o *Online) Max() float64 { return o.max }

// Merge folds another accumulator into this one (parallel reduction).
func (o *Online) Merge(p *Online) {
	if p.n == 0 {
		return
	}
	if o.n == 0 {
		*o = *p
		return
	}
	n := o.n + p.n
	d := p.mean - o.mean
	mean := o.mean + d*float64(p.n)/float64(n)
	m2 := o.m2 + p.m2 + d*d*float64(o.n)*float64(p.n)/float64(n)
	min, max := o.min, o.max
	if p.min < min {
		min = p.min
	}
	if p.max > max {
		max = p.max
	}
	*o = Online{n: n, mean: mean, m2: m2, min: min, max: max}
}

// ConfidenceInterval95 returns the half-width of the 95% confidence
// interval of the mean, using the normal approximation appropriate for the
// 100-trial batches the paper reports.
func (o *Online) ConfidenceInterval95() float64 {
	if o.n < 2 {
		return 0
	}
	// Sample (not population) standard error.
	s := math.Sqrt(o.m2 / float64(o.n-1))
	return 1.96 * s / math.Sqrt(float64(o.n))
}
