package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewLogHistogramEdges(t *testing.T) {
	h := NewLogHistogram(1000, 1)
	want := []float64{1, 10, 100, 1000}
	if len(h.Edges) != len(want) {
		t.Fatalf("edges = %v", h.Edges)
	}
	for i, e := range want {
		if !almostEqual(h.Edges[i], e, 1e-9) {
			t.Errorf("edge %d = %v, want %v", i, h.Edges[i], e)
		}
	}
	if len(h.Counts) != 3 {
		t.Errorf("bins = %d, want 3", len(h.Counts))
	}
}

func TestNewLogHistogramSubdivided(t *testing.T) {
	h := NewLogHistogram(100, 2)
	if len(h.Counts) != 4 {
		t.Fatalf("bins = %d, want 4", len(h.Counts))
	}
	if !almostEqual(h.Edges[1], math.Sqrt(10), 1e-9) {
		t.Errorf("half-decade edge = %v", h.Edges[1])
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewLogHistogram(0.5, 1) },
		func() { NewLogHistogram(10, 0) },
		func() { NewLinearHistogram(5, 5, 3) },
		func() { NewLinearHistogram(0, 10, 0) },
		func() { NewLogHistogram(10, 1).Add(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewLogHistogram(1000, 1) // bins [1,10) [10,100) [100,1000)
	h.Add(0)
	h.AddInt(1)
	h.Add(9.99)
	h.Add(10)
	h.Add(99)
	h.Add(100)
	h.Add(999)
	h.Add(1000) // overflow
	h.Add(5000) // overflow
	if h.ZeroCount != 1 {
		t.Errorf("zero = %d", h.ZeroCount)
	}
	if h.Counts[0] != 2 || h.Counts[1] != 2 || h.Counts[2] != 2 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.OverCount != 2 {
		t.Errorf("over = %d", h.OverCount)
	}
	if h.Total() != 9 {
		t.Errorf("total = %d", h.Total())
	}
}

func TestHistogramMassConservation(t *testing.T) {
	f := func(raw []uint16) bool {
		h := NewLogHistogram(10000, 3)
		for _, v := range raw {
			h.AddInt(int(v))
		}
		sum := h.ZeroCount + h.OverCount
		for _, c := range h.Counts {
			sum += c
		}
		return sum == len(raw) && h.Total() == len(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramFractions(t *testing.T) {
	h := NewLogHistogram(100, 1)
	if h.Fractions() != nil {
		t.Error("empty histogram fractions must be nil")
	}
	h.Add(0)
	h.Add(5)
	h.Add(50)
	h.Add(500)
	fr := h.Fractions()
	var sum float64
	for _, f := range fr {
		sum += f
	}
	if !almostEqual(sum, 1, 1e-12) {
		t.Errorf("fractions sum to %v", sum)
	}
	if fr[0] != 0.25 || fr[len(fr)-1] != 0.25 {
		t.Errorf("zero/over fractions = %v", fr)
	}
}

func TestLinearHistogram(t *testing.T) {
	h := NewLinearHistogram(0, 100, 4)
	for _, v := range []float64{0, 10, 30, 55, 80, 99, 100} {
		h.Add(v)
	}
	// 0 goes to zero bucket (first edge nudged above 0).
	if h.ZeroCount != 1 {
		t.Errorf("zero = %d", h.ZeroCount)
	}
	if h.Counts[0] != 1 || h.Counts[1] != 1 || h.Counts[2] != 1 || h.Counts[3] != 2 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.OverCount != 1 {
		t.Errorf("over = %d", h.OverCount)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewLogHistogram(100, 1)
	b := NewLogHistogram(100, 1)
	a.Add(5)
	b.Add(0)
	b.Add(50)
	b.Add(5000)
	a.Merge(b)
	if a.Total() != 4 || a.ZeroCount != 1 || a.OverCount != 1 {
		t.Errorf("merged: %+v", a)
	}
	if a.Counts[0] != 1 || a.Counts[1] != 1 {
		t.Errorf("merged counts: %v", a.Counts)
	}
}

func TestHistogramMergeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on shape mismatch")
		}
	}()
	NewLogHistogram(100, 1).Merge(NewLogHistogram(1000, 1))
}

func TestBinLabels(t *testing.T) {
	h := NewLogHistogram(100, 1)
	if got := h.BinLabel(-1); got != "0 (idle)" {
		t.Errorf("zero label = %q", got)
	}
	if got := h.BinLabel(0); got != "[1,10)" {
		t.Errorf("bin 0 label = %q", got)
	}
	if got := h.BinLabel(len(h.Counts)); got != ">=100" {
		t.Errorf("over label = %q", got)
	}
}

func TestASCII(t *testing.T) {
	h := NewLogHistogram(100, 1)
	if out := h.ASCII(10); !strings.Contains(out, "empty") {
		t.Errorf("empty ASCII = %q", out)
	}
	h.Add(0)
	h.Add(0)
	h.Add(5)
	out := h.ASCII(10)
	if !strings.Contains(out, "0 (idle)") || !strings.Contains(out, "##") {
		t.Errorf("ASCII output missing content:\n%s", out)
	}
	// Zero width falls back to a sane default rather than dividing by zero.
	if out := h.ASCII(0); out == "" {
		t.Error("ASCII(0) empty")
	}
}
