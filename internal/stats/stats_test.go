package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Median != 0 {
		t.Errorf("empty summary not zero: %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || s.StdDev != 2 {
		t.Errorf("got %+v, want mean 5 stddev 2", s)
	}
	if s.Median != 4.5 {
		t.Errorf("median = %v, want 4.5", s.Median)
	}
	if s.Min != 2 || s.Max != 9 || s.Sum != 40 {
		t.Errorf("min/max/sum wrong: %+v", s)
	}
}

func TestSummarizeOddMedian(t *testing.T) {
	s := Summarize([]float64{9, 1, 5})
	if s.Median != 5 {
		t.Errorf("median = %v, want 5", s.Median)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Summarize mutated its input")
	}
}

func TestSummarizeInts(t *testing.T) {
	s := SummarizeInts([]int{1, 2, 3})
	if s.Mean != 2 || s.Median != 2 {
		t.Errorf("got %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {75, 40}, {40, 29},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile([]float64{7}, 50); got != 7 {
		t.Errorf("single-element percentile = %v", got)
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Percentile(nil, 50) },
		func() { Percentile([]float64{1}, -1) },
		func() { Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestGini(t *testing.T) {
	if g := Gini([]float64{5, 5, 5, 5}); !almostEqual(g, 0, 1e-12) {
		t.Errorf("uniform Gini = %v", g)
	}
	// All mass on one of n elements: G = (n-1)/n.
	if g := Gini([]float64{0, 0, 0, 100}); !almostEqual(g, 0.75, 1e-12) {
		t.Errorf("concentrated Gini = %v, want 0.75", g)
	}
	if g := Gini(nil); g != 0 {
		t.Errorf("empty Gini = %v", g)
	}
	if g := Gini([]float64{0, 0}); g != 0 {
		t.Errorf("all-zero Gini = %v", g)
	}
	if g := GiniInts([]int{1, 1, 1}); !almostEqual(g, 0, 1e-12) {
		t.Errorf("GiniInts uniform = %v", g)
	}
}

func TestGiniRangeProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		g := Gini(xs)
		return g >= -1e-9 && g < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOnlineMatchesSummarize(t *testing.T) {
	xs := []float64{3, 7, 7, 19, 24, 1, 0.5}
	var o Online
	for _, x := range xs {
		o.Add(x)
	}
	s := Summarize(xs)
	if o.N() != s.N {
		t.Errorf("N = %d, want %d", o.N(), s.N)
	}
	if !almostEqual(o.Mean(), s.Mean, 1e-9) {
		t.Errorf("mean %v vs %v", o.Mean(), s.Mean)
	}
	if !almostEqual(o.StdDev(), s.StdDev, 1e-9) {
		t.Errorf("stddev %v vs %v", o.StdDev(), s.StdDev)
	}
	if o.Min() != s.Min || o.Max() != s.Max {
		t.Errorf("min/max %v/%v vs %v/%v", o.Min(), o.Max(), s.Min, s.Max)
	}
}

func TestOnlineEmpty(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.Variance() != 0 || o.ConfidenceInterval95() != 0 {
		t.Error("empty Online accumulator must report zeros")
	}
}

func TestOnlineMerge(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	var whole, left, right Online
	for i, x := range xs {
		whole.Add(x)
		if i < 3 {
			left.Add(x)
		} else {
			right.Add(x)
		}
	}
	left.Merge(&right)
	if left.N() != whole.N() || !almostEqual(left.Mean(), whole.Mean(), 1e-9) ||
		!almostEqual(left.Variance(), whole.Variance(), 1e-9) {
		t.Errorf("merged %+v != whole %+v", left, whole)
	}
	if left.Min() != 1 || left.Max() != 8 {
		t.Errorf("merged min/max = %v/%v", left.Min(), left.Max())
	}
	// Merging an empty accumulator is a no-op; merging into empty copies.
	var empty Online
	before := left
	left.Merge(&empty)
	if left != before {
		t.Error("merging empty changed state")
	}
	empty.Merge(&whole)
	if empty != whole {
		t.Error("merging into empty must copy")
	}
}

func TestConfidenceInterval(t *testing.T) {
	var o Online
	for i := 0; i < 100; i++ {
		o.Add(float64(i % 2)) // variance 0.25, sample sd ~0.5025
	}
	ci := o.ConfidenceInterval95()
	if ci <= 0 || ci > 0.2 {
		t.Errorf("CI = %v, want small positive", ci)
	}
	var single Online
	single.Add(5)
	if single.ConfidenceInterval95() != 0 {
		t.Error("CI of one observation must be 0")
	}
}
