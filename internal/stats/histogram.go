package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-bin histogram over non-negative values. The paper's
// workload figures use logarithmically spaced bins (workloads span 0 to
// >10,000 tasks), with a dedicated underflow bin for exactly-zero workloads
// ("idle nodes"), which the figures call out separately.
type Histogram struct {
	// Edges holds the bin boundaries: bin i covers [Edges[i], Edges[i+1]).
	// The first edge is always > 0; values of exactly 0 land in ZeroCount.
	Edges []float64
	// Counts[i] is the number of observations in bin i.
	Counts []int
	// ZeroCount is the number of observations equal to zero.
	ZeroCount int
	// OverCount is the number of observations >= the last edge.
	OverCount int
	total     int
}

// NewLogHistogram builds a histogram with binsPerDecade log-spaced bins per
// decade covering [1, max]. It panics if max < 1 or binsPerDecade < 1.
func NewLogHistogram(max float64, binsPerDecade int) *Histogram {
	if max < 1 || binsPerDecade < 1 {
		panic("stats: invalid log histogram parameters")
	}
	decades := math.Ceil(math.Log10(max))
	if decades < 1 {
		decades = 1
	}
	n := int(decades) * binsPerDecade
	edges := make([]float64, n+1)
	for i := range edges {
		edges[i] = math.Pow(10, float64(i)/float64(binsPerDecade))
	}
	return &Histogram{Edges: edges, Counts: make([]int, n)}
}

// NewLinearHistogram builds a histogram with n equal-width bins over
// [lo, hi). It panics on invalid parameters.
func NewLinearHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 || hi <= lo || lo < 0 {
		panic("stats: invalid linear histogram parameters")
	}
	edges := make([]float64, n+1)
	for i := range edges {
		edges[i] = lo + (hi-lo)*float64(i)/float64(n)
	}
	if edges[0] == 0 {
		edges[0] = math.SmallestNonzeroFloat64
	}
	return &Histogram{Edges: edges, Counts: make([]int, n)}
}

// Add records one observation. Negative values panic: workloads are counts.
func (h *Histogram) Add(x float64) {
	if x < 0 {
		panic("stats: negative observation")
	}
	h.total++
	if x == 0 {
		h.ZeroCount++
		return
	}
	if x < h.Edges[0] {
		// Sub-unit positive values share the zero/idle bucket; workloads
		// are integral so this only triggers for fractional test inputs.
		h.ZeroCount++
		return
	}
	if x >= h.Edges[len(h.Edges)-1] {
		h.OverCount++
		return
	}
	// Binary search for the bin with Edges[i] <= x < Edges[i+1].
	lo, hi := 0, len(h.Counts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if h.Edges[mid] <= x {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	h.Counts[lo]++
}

// AddInt records an integer observation.
func (h *Histogram) AddInt(x int) { h.Add(float64(x)) }

// Total returns the number of observations recorded.
func (h *Histogram) Total() int { return h.total }

// Fractions returns each bin's share of all observations, preceded by the
// zero bin and followed by the overflow bin; the slice therefore has
// len(Counts)+2 entries. It returns nil for an empty histogram.
func (h *Histogram) Fractions() []float64 {
	if h.total == 0 {
		return nil
	}
	out := make([]float64, len(h.Counts)+2)
	out[0] = float64(h.ZeroCount) / float64(h.total)
	for i, c := range h.Counts {
		out[i+1] = float64(c) / float64(h.total)
	}
	out[len(out)-1] = float64(h.OverCount) / float64(h.total)
	return out
}

// Merge adds the counts of another histogram with identical edges.
// Histograms with different shapes panic: merging them is a logic error.
func (h *Histogram) Merge(o *Histogram) {
	if len(h.Edges) != len(o.Edges) {
		panic("stats: merging histograms with different binning")
	}
	for i, e := range h.Edges {
		if e != o.Edges[i] {
			panic("stats: merging histograms with different binning")
		}
	}
	h.ZeroCount += o.ZeroCount
	h.OverCount += o.OverCount
	h.total += o.total
	for i := range h.Counts {
		h.Counts[i] += o.Counts[i]
	}
}

// BinLabel renders a human-readable range label for bin i, with i == -1
// denoting the zero bin and i == len(Counts) the overflow bin.
func (h *Histogram) BinLabel(i int) string {
	switch {
	case i == -1:
		return "0 (idle)"
	case i == len(h.Counts):
		return fmt.Sprintf(">=%s", trimFloat(h.Edges[len(h.Edges)-1]))
	default:
		return fmt.Sprintf("[%s,%s)", trimFloat(h.Edges[i]), trimFloat(h.Edges[i+1]))
	}
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%.1f", f)
	s = strings.TrimSuffix(s, ".0")
	return s
}

// ASCII renders the histogram as a bar chart suitable for terminal output,
// one row per non-empty bin plus the zero and overflow rows. width is the
// number of characters for the largest bar.
func (h *Histogram) ASCII(width int) string {
	if width < 1 {
		width = 40
	}
	maxCount := h.ZeroCount
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if h.OverCount > maxCount {
		maxCount = h.OverCount
	}
	if maxCount == 0 {
		return "(empty histogram)\n"
	}
	var b strings.Builder
	row := func(label string, count int) {
		bar := strings.Repeat("#", count*width/maxCount)
		fmt.Fprintf(&b, "%16s |%-*s %d\n", label, width, bar, count)
	}
	row(h.BinLabel(-1), h.ZeroCount)
	for i, c := range h.Counts {
		if c > 0 {
			row(h.BinLabel(i), c)
		}
	}
	if h.OverCount > 0 {
		row(h.BinLabel(len(h.Counts)), h.OverCount)
	}
	return b.String()
}
