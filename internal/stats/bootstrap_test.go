package stats

import (
	"testing"

	"chordbalance/internal/xrand"
)

func TestBootstrapCIMeanCoversTruth(t *testing.T) {
	rng := xrand.New(1)
	// Sample of 200 from a distribution with mean 10.
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 10 + rng.NormFloat64()
	}
	lo, hi := BootstrapCI(xs, Mean, 500, 0.05, rng)
	if lo > 10 || hi < 10 {
		t.Errorf("95%% CI [%v, %v] misses the true mean 10", lo, hi)
	}
	if hi-lo > 1 {
		t.Errorf("CI width %v implausibly wide for n=200, sd=1", hi-lo)
	}
	if lo >= hi {
		t.Errorf("degenerate CI [%v, %v]", lo, hi)
	}
}

func TestBootstrapCIMedian(t *testing.T) {
	rng := xrand.New(2)
	xs := make([]float64, 301)
	for i := range xs {
		xs[i] = float64(i) // median exactly 150
	}
	lo, hi := BootstrapCI(xs, Median, 400, 0.05, rng)
	if lo > 150 || hi < 150 {
		t.Errorf("median CI [%v, %v] misses 150", lo, hi)
	}
}

func TestBootstrapCIPanics(t *testing.T) {
	rng := xrand.New(3)
	for _, f := range []func(){
		func() { BootstrapCI(nil, Mean, 10, 0.05, rng) },
		func() { BootstrapCI([]float64{1}, Mean, 0, 0.05, rng) },
		func() { BootstrapCI([]float64{1}, Mean, 10, 0, rng) },
		func() { BootstrapCI([]float64{1}, Mean, 10, 1, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestBootstrapCISingleValue(t *testing.T) {
	rng := xrand.New(4)
	lo, hi := BootstrapCI([]float64{7}, Mean, 50, 0.05, rng)
	if lo != 7 || hi != 7 {
		t.Errorf("constant sample CI = [%v, %v], want [7, 7]", lo, hi)
	}
}

func TestMeanMedianHelpers(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean wrong")
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Error("Median wrong")
	}
	xs := []float64{5, 1}
	if Median(xs) != 3 {
		t.Error("even median wrong")
	}
	if xs[0] != 5 {
		t.Error("Median mutated input")
	}
}

func TestQuantileSorted(t *testing.T) {
	xs := []float64{0, 10, 20, 30, 40}
	cases := []struct{ q, want float64 }{
		{0, 0}, {1, 40}, {0.5, 20}, {0.25, 10}, {0.125, 5},
	}
	for _, c := range cases {
		if got := quantileSorted(xs, c.q); got != c.want {
			t.Errorf("quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}
