// Package ids implements arithmetic on the 160-bit circular identifier
// space used by Chord-style distributed hash tables.
//
// Identifiers are 160-bit unsigned integers represented big-endian in a
// fixed [20]byte array, matching the output width of SHA-1 (the hash
// function the paper and most Chord deployments use for node and key IDs).
// All arithmetic is modulo 2^160; the space is treated as a ring that wraps
// from the maximum ID back to zero.
//
// The package is allocation-free on the hot paths (Compare, Between, Add,
// Sub) so it can sit at the core of large simulations.
package ids

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
)

// Bits is the width of the identifier space in bits.
const Bits = 160

// Bytes is the width of the identifier space in bytes.
const Bytes = Bits / 8

// ID is a 160-bit identifier on the Chord ring, stored big-endian.
// The zero value is the identifier 0.
type ID [Bytes]byte

// Zero is the identifier 0.
var Zero ID

// Max is the largest identifier, 2^160 - 1.
var Max = ID{
	0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
	0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
}

// FromBytes builds an ID from a big-endian byte slice. Slices shorter than
// 20 bytes are left-padded with zeros; longer slices keep only the low-order
// 20 bytes (the tail), matching the usual truncation of oversized hashes.
func FromBytes(b []byte) ID {
	var id ID
	if len(b) >= Bytes {
		copy(id[:], b[len(b)-Bytes:])
	} else {
		copy(id[Bytes-len(b):], b)
	}
	return id
}

// FromUint64 builds an ID whose low 64 bits are v and whose high bits are 0.
func FromUint64(v uint64) ID {
	var id ID
	binary.BigEndian.PutUint64(id[Bytes-8:], v)
	return id
}

// FromHex parses a hexadecimal string (with or without leading zeros) into
// an ID. It returns an error if the string is not valid hex or encodes more
// than 160 bits.
func FromHex(s string) (ID, error) {
	if len(s) > 2*Bytes {
		return Zero, fmt.Errorf("ids: hex string %q longer than 160 bits", s)
	}
	if len(s)%2 == 1 {
		s = "0" + s
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return Zero, fmt.Errorf("ids: %w", err)
	}
	return FromBytes(b), nil
}

// MustHex is FromHex that panics on error; intended for constants in tests
// and examples.
func MustHex(s string) ID {
	id, err := FromHex(s)
	if err != nil {
		panic(err)
	}
	return id
}

// String renders the ID as 40 lowercase hex digits.
func (a ID) String() string { return hex.EncodeToString(a[:]) }

// Short renders the first 8 hex digits, handy for logs and diagrams.
func (a ID) Short() string { return hex.EncodeToString(a[:4]) }

// Compare returns -1, 0, or 1 according to the linear (non-circular)
// ordering of a and b as 160-bit unsigned integers.
func (a ID) Compare(b ID) int { return bytes.Compare(a[:], b[:]) }

// Less reports whether a < b in the linear ordering.
func (a ID) Less(b ID) bool { return bytes.Compare(a[:], b[:]) < 0 }

// Equal reports whether a == b.
func (a ID) Equal(b ID) bool { return a == b }

// IsZero reports whether the ID is 0.
func (a ID) IsZero() bool { return a == Zero }

// Add returns (a + b) mod 2^160.
func (a ID) Add(b ID) ID {
	var out ID
	var carry uint16
	for i := Bytes - 1; i >= 0; i-- {
		s := uint16(a[i]) + uint16(b[i]) + carry
		out[i] = byte(s)
		carry = s >> 8
	}
	return out
}

// Sub returns (a - b) mod 2^160.
func (a ID) Sub(b ID) ID {
	var out ID
	var borrow int16
	for i := Bytes - 1; i >= 0; i-- {
		d := int16(a[i]) - int16(b[i]) - borrow
		if d < 0 {
			d += 256
			borrow = 1
		} else {
			borrow = 0
		}
		out[i] = byte(d)
	}
	return out
}

// AddUint64 returns (a + v) mod 2^160.
func (a ID) AddUint64(v uint64) ID { return a.Add(FromUint64(v)) }

// Succ returns a + 1 mod 2^160.
func (a ID) Succ() ID { return a.AddUint64(1) }

// Pred returns a - 1 mod 2^160.
func (a ID) Pred() ID { return a.Sub(FromUint64(1)) }

// Distance returns the clockwise distance from a to b on the ring, i.e. the
// number of steps needed to walk from a forward (increasing IDs, wrapping)
// until b is reached: (b - a) mod 2^160.
func (a ID) Distance(b ID) ID { return b.Sub(a) }

// Half returns a / 2 (logical shift right by one bit).
func (a ID) Half() ID {
	var out ID
	var carry byte
	for i := 0; i < Bytes; i++ {
		out[i] = a[i]>>1 | carry<<7
		carry = a[i] & 1
	}
	return out
}

// Double returns (a * 2) mod 2^160.
func (a ID) Double() ID { return a.Add(a) }

// PowerOfTwo returns 2^k as an ID. It panics if k is outside [0, 159];
// finger-table construction is the only intended caller.
func PowerOfTwo(k int) ID {
	if k < 0 || k >= Bits {
		panic(fmt.Sprintf("ids: PowerOfTwo(%d) out of range [0,%d)", k, Bits))
	}
	var id ID
	id[Bytes-1-k/8] = 1 << (k % 8)
	return id
}

// Between reports whether x lies in the open interval (a, b) walking
// clockwise from a to b. If a == b the interval is the whole ring minus
// {a}, matching Chord's convention for a ring with a single node.
func Between(x, a, b ID) bool {
	if a == b {
		return x != a
	}
	if a.Less(b) {
		return a.Less(x) && x.Less(b)
	}
	return a.Less(x) || x.Less(b)
}

// BetweenRightIncl reports whether x ∈ (a, b] clockwise. This is the key
// ownership test in Chord: node b owns exactly the keys in
// (predecessor(b), b].
func BetweenRightIncl(x, a, b ID) bool {
	if a == b {
		return true // single node owns the whole ring
	}
	if x == b {
		return true
	}
	return Between(x, a, b)
}

// BetweenLeftIncl reports whether x ∈ [a, b) clockwise.
func BetweenLeftIncl(x, a, b ID) bool {
	if a == b {
		return true
	}
	if x == a {
		return true
	}
	return Between(x, a, b)
}

// Midpoint returns the identifier halfway along the clockwise arc from a to
// b, i.e. a + (b-a)/2 mod 2^160. For a == b (the full ring) it returns the
// antipode of a. The result always satisfies BetweenRightIncl(mid, a, b)
// when the arc contains at least two points.
func Midpoint(a, b ID) ID {
	return a.Add(a.Distance(b).Half())
}

// ArcFraction returns the length of the clockwise arc (a, b] as a float64
// fraction of the whole ring, in [0, 1]. An arc of zero width (a == b)
// is the full ring and returns 1.
func ArcFraction(a, b ID) float64 {
	if a == b {
		return 1
	}
	d := a.Distance(b)
	// Use the top 53 bits of the distance for the mantissa.
	hi := binary.BigEndian.Uint64(d[:8])
	f := float64(hi) / math.Exp2(64)
	if f == 0 {
		// Extremely small arc: fall back to the next 64 bits.
		lo := binary.BigEndian.Uint64(d[8:16])
		f = float64(lo) / math.Exp2(128)
	}
	return f
}

// Float64 maps the ID to [0, 1) by dividing by 2^160, using the top 64 bits.
func (a ID) Float64() float64 {
	return float64(binary.BigEndian.Uint64(a[:8])) / math.Exp2(64)
}

// Angle returns the position of the ID on the unit circle in radians,
// measured clockwise from the top as in the paper's Figures 2-3:
// theta = 2*pi*id / 2^160.
func (a ID) Angle() float64 { return 2 * math.Pi * a.Float64() }

// XY returns the paper's unit-circle embedding of the ID:
// x = sin(theta), y = cos(theta).
func (a ID) XY() (x, y float64) {
	t := a.Angle()
	return math.Sin(t), math.Cos(t)
}

// MarshalText implements encoding.TextMarshaler (hex form).
func (a ID) MarshalText() ([]byte, error) {
	return []byte(a.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (a *ID) UnmarshalText(text []byte) error {
	id, err := FromHex(string(text))
	if err != nil {
		return err
	}
	*a = id
	return nil
}

// ErrEmptyRange is returned by UniformInRange when the requested open
// interval contains no identifiers.
var ErrEmptyRange = errors.New("ids: empty range")

// Source is the randomness interface the package needs; *xrand.Rand and
// math/rand.Rand both satisfy it.
type Source interface {
	Uint64() uint64
}

// Random draws a uniformly distributed ID from src.
func Random(src Source) ID {
	var id ID
	binary.BigEndian.PutUint64(id[0:8], src.Uint64())
	binary.BigEndian.PutUint64(id[8:16], src.Uint64())
	binary.BigEndian.PutUint32(id[16:20], uint32(src.Uint64()))
	return id
}

// UniformInRange draws an ID uniformly from the open clockwise interval
// (a, b). It returns ErrEmptyRange when the interval is empty (b == a+1).
// Sampling is by scaled offset, which is exact enough for simulation use:
// offset = 1 + (r mod (width-1)) has negligible modulo bias for the
// 160-bit widths encountered in practice.
func UniformInRange(src Source, a, b ID) (ID, error) {
	width := a.Distance(b)
	if width == Zero {
		// Full ring: anything but a.
		for {
			id := Random(src)
			if id != a {
				return id, nil
			}
		}
	}
	one := FromUint64(1)
	if width == one {
		return Zero, ErrEmptyRange
	}
	// interior width = width - 1 identifiers strictly between a and b.
	interior := width.Sub(one)
	off := modID(Random(src), interior) // in [0, interior)
	return a.Add(off).Add(one), nil     // a + 1 + off ∈ (a, b)
}

// modID computes x mod m for 160-bit values using schoolbook long division
// over bits. m must be nonzero.
func modID(x, m ID) ID {
	if m == Zero {
		panic("ids: modID by zero")
	}
	var r ID
	for i := 0; i < Bits; i++ {
		// r = r*2 + bit_i(x)
		r = r.Double()
		byteIdx := i / 8
		bit := (x[byteIdx] >> (7 - i%8)) & 1
		if bit == 1 {
			r = r.Add(FromUint64(1))
		}
		if r.Compare(m) >= 0 {
			r = r.Sub(m)
		}
	}
	return r
}
