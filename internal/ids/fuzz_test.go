package ids

import (
	"bytes"
	"testing"
)

func FuzzFromHexRoundTrip(f *testing.F) {
	f.Add("deadbeef")
	f.Add("")
	f.Add("0")
	f.Add("ffffffffffffffffffffffffffffffffffffffff")
	f.Add("not hex at all")
	f.Fuzz(func(t *testing.T, s string) {
		id, err := FromHex(s)
		if err != nil {
			return // invalid input is fine; it just must not panic
		}
		back, err := FromHex(id.String())
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", id.String(), err)
		}
		if back != id {
			t.Fatalf("round trip changed value: %v -> %v", id, back)
		}
	})
}

func FuzzArithmeticLaws(f *testing.F) {
	f.Add([]byte{1}, []byte{2})
	f.Add(bytes.Repeat([]byte{0xff}, 20), []byte{1})
	f.Add([]byte{}, bytes.Repeat([]byte{0xaa}, 25))
	f.Fuzz(func(t *testing.T, araw, braw []byte) {
		a, b := FromBytes(araw), FromBytes(braw)
		if a.Add(b).Sub(b) != a {
			t.Fatal("Add/Sub not inverse")
		}
		if a.Add(b) != b.Add(a) {
			t.Fatal("Add not commutative")
		}
		if a.Distance(b) != b.Sub(a) {
			t.Fatal("Distance definition violated")
		}
		// Between complement law for distinct points.
		if a != b {
			x := Midpoint(a, b)
			if x != a && x != b {
				if Between(x, a, b) == Between(x, b, a) {
					t.Fatal("Between complement violated")
				}
			}
		}
	})
}

func FuzzUniformInRange(f *testing.F) {
	f.Add([]byte{10}, []byte{20}, uint64(1))
	f.Add(bytes.Repeat([]byte{0xff}, 20), []byte{5}, uint64(2))
	f.Fuzz(func(t *testing.T, araw, braw []byte, seed uint64) {
		a, b := FromBytes(araw), FromBytes(braw)
		src := &fuzzSource{state: seed}
		x, err := UniformInRange(src, a, b)
		if err == ErrEmptyRange {
			if a.Distance(b) != FromUint64(1) {
				t.Fatal("ErrEmptyRange on non-empty range")
			}
			return
		}
		if err != nil {
			t.Fatal(err)
		}
		if !Between(x, a, b) {
			t.Fatalf("draw %v outside (%v, %v)", x, a, b)
		}
	})
}

type fuzzSource struct{ state uint64 }

func (s *fuzzSource) Uint64() uint64 {
	s.state = s.state*6364136223846793005 + 1442695040888963407
	return s.state
}
