package ids

import (
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"

	"chordbalance/internal/xrand"
)

func idFrom2(hi, lo uint64) ID {
	var id ID
	binary.BigEndian.PutUint64(id[4:12], hi)
	binary.BigEndian.PutUint64(id[12:20], lo)
	return id
}

func TestFromBytes(t *testing.T) {
	cases := []struct {
		name string
		in   []byte
		want ID
	}{
		{"empty", nil, Zero},
		{"short", []byte{0xab}, FromUint64(0xab)},
		{"exact", make([]byte, 20), Zero},
		{"long keeps tail", append(make([]byte, 5), Max[:]...), Max},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := FromBytes(c.in); got != c.want {
				t.Errorf("FromBytes(%x) = %v, want %v", c.in, got, c.want)
			}
		})
	}
}

func TestHexRoundTrip(t *testing.T) {
	ids := []ID{Zero, Max, FromUint64(1), FromUint64(0xdeadbeef), MustHex("ffee")}
	for _, id := range ids {
		got, err := FromHex(id.String())
		if err != nil {
			t.Fatalf("FromHex(%q): %v", id.String(), err)
		}
		if got != id {
			t.Errorf("round trip %v -> %v", id, got)
		}
	}
}

func TestFromHexErrors(t *testing.T) {
	if _, err := FromHex("zz"); err == nil {
		t.Error("expected error for non-hex input")
	}
	if _, err := FromHex(string(make([]byte, 41))); err == nil {
		t.Error("expected error for oversized input")
	}
	// Odd-length strings are zero-padded, not rejected.
	got, err := FromHex("f")
	if err != nil || got != FromUint64(0xf) {
		t.Errorf("FromHex(\"f\") = %v, %v; want 0xf", got, err)
	}
}

func TestAddSubBasics(t *testing.T) {
	one := FromUint64(1)
	if got := Max.Add(one); got != Zero {
		t.Errorf("Max+1 = %v, want 0", got)
	}
	if got := Zero.Sub(one); got != Max {
		t.Errorf("0-1 = %v, want Max", got)
	}
	a := FromUint64(math.MaxUint64)
	want := MustHex("10000000000000000") // 2^64
	if got := a.Add(one); got != want {
		t.Errorf("carry across word: %v, want %v", got, want)
	}
	if got := want.Sub(one); got != a {
		t.Errorf("borrow across word: %v, want %v", got, a)
	}
}

func TestSuccPred(t *testing.T) {
	if Zero.Pred() != Max || Max.Succ() != Zero {
		t.Error("Succ/Pred must wrap around the ring")
	}
	x := FromUint64(42)
	if x.Succ().Pred() != x {
		t.Error("Succ then Pred must be identity")
	}
}

func TestAddSubInverseProperty(t *testing.T) {
	f := func(ahi, alo, bhi, blo uint64) bool {
		a, b := idFrom2(ahi, alo), idFrom2(bhi, blo)
		return a.Add(b).Sub(b) == a && a.Sub(b).Add(b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddCommutativeProperty(t *testing.T) {
	f := func(ahi, alo, bhi, blo uint64) bool {
		a, b := idFrom2(ahi, alo), idFrom2(bhi, blo)
		return a.Add(b) == b.Add(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistance(t *testing.T) {
	a, b := FromUint64(10), FromUint64(3)
	if got := b.Distance(a); got != FromUint64(7) {
		t.Errorf("Distance(3->10) = %v, want 7", got)
	}
	// Wrapping distance: from 10 clockwise to 3 goes the long way.
	want := Max.Sub(FromUint64(6)) // 2^160 - 7
	if got := a.Distance(b); got != want {
		t.Errorf("Distance(10->3) = %v, want %v", got, want)
	}
	if got := a.Distance(a); got != Zero {
		t.Errorf("Distance(a,a) = %v, want 0", got)
	}
}

func TestHalfDouble(t *testing.T) {
	if got := FromUint64(7).Half(); got != FromUint64(3) {
		t.Errorf("7/2 = %v, want 3", got)
	}
	if got := Max.Half().Double(); got != Max.Sub(FromUint64(1)) {
		t.Errorf("(Max/2)*2 = %v", got)
	}
	f := func(hi, lo uint64) bool {
		a := idFrom2(hi, lo)
		// doubling then halving loses only the top bit
		h := a.Half()
		return h.Double().Half() == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPowerOfTwo(t *testing.T) {
	if PowerOfTwo(0) != FromUint64(1) {
		t.Error("2^0 != 1")
	}
	if PowerOfTwo(64) != MustHex("10000000000000000") {
		t.Error("2^64 wrong")
	}
	if PowerOfTwo(159).Double() != Zero {
		t.Error("2^159 * 2 must wrap to 0")
	}
	for _, k := range []int{-1, 160} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PowerOfTwo(%d) must panic", k)
				}
			}()
			PowerOfTwo(k)
		}()
	}
}

func TestBetween(t *testing.T) {
	a, b := FromUint64(10), FromUint64(20)
	cases := []struct {
		x        uint64
		between  bool
		rightInc bool
		leftInc  bool
	}{
		{9, false, false, false},
		{10, false, false, true},
		{11, true, true, true},
		{19, true, true, true},
		{20, false, true, false},
		{21, false, false, false},
	}
	for _, c := range cases {
		x := FromUint64(c.x)
		if got := Between(x, a, b); got != c.between {
			t.Errorf("Between(%d,10,20) = %v", c.x, got)
		}
		if got := BetweenRightIncl(x, a, b); got != c.rightInc {
			t.Errorf("BetweenRightIncl(%d,10,20) = %v", c.x, got)
		}
		if got := BetweenLeftIncl(x, a, b); got != c.leftInc {
			t.Errorf("BetweenLeftIncl(%d,10,20) = %v", c.x, got)
		}
	}
}

func TestBetweenWrapping(t *testing.T) {
	// Interval (2^160-5, 5) wraps through zero.
	a := Max.Sub(FromUint64(4))
	b := FromUint64(5)
	for _, x := range []ID{Max, Zero, FromUint64(4)} {
		if !Between(x, a, b) {
			t.Errorf("Between(%v, %v, %v) = false, want true", x, a, b)
		}
	}
	for _, x := range []ID{a, b, FromUint64(6), Max.Sub(FromUint64(5))} {
		if Between(x, a, b) {
			t.Errorf("Between(%v, %v, %v) = true, want false", x, a, b)
		}
	}
}

func TestBetweenDegenerate(t *testing.T) {
	a := FromUint64(7)
	if Between(a, a, a) {
		t.Error("x == a must be excluded from the full-ring interval")
	}
	if !Between(FromUint64(8), a, a) {
		t.Error("any other point lies in (a, a)")
	}
	if !BetweenRightIncl(FromUint64(123), a, a) {
		t.Error("single-node ring owns every key")
	}
}

func TestBetweenComplementProperty(t *testing.T) {
	// For distinct a, b: every x != a, b is in exactly one of (a,b), (b,a).
	f := func(xlo, alo, blo uint64) bool {
		x, a, b := FromUint64(xlo), FromUint64(alo), FromUint64(blo)
		if a == b || x == a || x == b {
			return true
		}
		return Between(x, a, b) != Between(x, b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMidpoint(t *testing.T) {
	if got := Midpoint(FromUint64(10), FromUint64(20)); got != FromUint64(15) {
		t.Errorf("Midpoint(10,20) = %v, want 15", got)
	}
	// Wrapping arc from Max-1 to 3 has width 5; midpoint = Max-1+2 = 0.
	a := Max.Sub(FromUint64(1))
	if got := Midpoint(a, FromUint64(3)); got != Zero.Add(FromUint64(0)) {
		t.Errorf("wrapped midpoint = %v, want 0", got)
	}
}

func TestMidpointContainmentProperty(t *testing.T) {
	f := func(ahi, alo, bhi, blo uint64) bool {
		a, b := idFrom2(ahi, alo), idFrom2(bhi, blo)
		if a.Distance(b).Compare(FromUint64(2)) < 0 {
			return true // arcs narrower than 2 have no interior midpoint
		}
		return BetweenRightIncl(Midpoint(a, b), a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArcFraction(t *testing.T) {
	half := PowerOfTwo(159)
	if got := ArcFraction(Zero, half); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("half ring fraction = %v", got)
	}
	if got := ArcFraction(Zero, Zero); got != 1 {
		t.Errorf("full ring fraction = %v, want 1", got)
	}
	quarter := PowerOfTwo(158)
	if got := ArcFraction(half, half.Add(quarter)); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("quarter arc = %v", got)
	}
}

func TestFloat64AndAngle(t *testing.T) {
	if Zero.Float64() != 0 {
		t.Error("Zero must map to 0.0")
	}
	if got := PowerOfTwo(159).Float64(); got != 0.5 {
		t.Errorf("2^159 -> %v, want 0.5", got)
	}
	x, y := Zero.XY()
	if math.Abs(x) > 1e-12 || math.Abs(y-1) > 1e-12 {
		t.Errorf("Zero.XY() = (%v,%v), want (0,1)", x, y)
	}
	x, y = PowerOfTwo(158).XY() // quarter turn
	if math.Abs(x-1) > 1e-12 || math.Abs(y) > 1e-12 {
		t.Errorf("quarter.XY() = (%v,%v), want (1,0)", x, y)
	}
}

func TestTextMarshaling(t *testing.T) {
	id := MustHex("0123456789abcdef0123456789abcdef01234567")
	b, err := id.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var got ID
	if err := got.UnmarshalText(b); err != nil {
		t.Fatal(err)
	}
	if got != id {
		t.Errorf("text round trip: %v != %v", got, id)
	}
	if err := got.UnmarshalText([]byte("not hex")); err == nil {
		t.Error("expected unmarshal error")
	}
}

func TestRandomUniform(t *testing.T) {
	src := xrand.New(1)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += Random(src).Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean of uniform IDs = %v, want ~0.5", mean)
	}
}

func TestUniformInRange(t *testing.T) {
	src := xrand.New(7)
	a, b := FromUint64(100), FromUint64(200)
	for i := 0; i < 1000; i++ {
		x, err := UniformInRange(src, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !Between(x, a, b) {
			t.Fatalf("UniformInRange produced %v outside (%v,%v)", x, a, b)
		}
	}
}

func TestUniformInRangeWrapping(t *testing.T) {
	src := xrand.New(9)
	a := Max.Sub(FromUint64(2))
	b := FromUint64(3)
	seen := map[ID]bool{}
	for i := 0; i < 500; i++ {
		x, err := UniformInRange(src, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !Between(x, a, b) {
			t.Fatalf("%v outside wrapped range", x)
		}
		seen[x] = true
	}
	// The wrapped interval (Max-2, 3) = {Max-1, Max, 0, 1, 2}: 5 values.
	if len(seen) != 5 {
		t.Errorf("saw %d distinct values, want 5", len(seen))
	}
}

func TestUniformInRangeEmpty(t *testing.T) {
	src := xrand.New(3)
	a := FromUint64(5)
	if _, err := UniformInRange(src, a, a.Succ()); err != ErrEmptyRange {
		t.Errorf("expected ErrEmptyRange, got %v", err)
	}
}

func TestUniformInRangeFullRing(t *testing.T) {
	src := xrand.New(4)
	a := FromUint64(5)
	for i := 0; i < 100; i++ {
		x, err := UniformInRange(src, a, a)
		if err != nil {
			t.Fatal(err)
		}
		if x == a {
			t.Fatal("full-ring draw returned the excluded endpoint")
		}
	}
}

func TestModID(t *testing.T) {
	cases := []struct{ x, m, want uint64 }{
		{17, 5, 2},
		{5, 17, 5},
		{0, 3, 0},
		{math.MaxUint64, 10, math.MaxUint64 % 10},
	}
	for _, c := range cases {
		if got := modID(FromUint64(c.x), FromUint64(c.m)); got != FromUint64(c.want) {
			t.Errorf("modID(%d,%d) = %v, want %d", c.x, c.m, got, c.want)
		}
	}
	// Property over wide operands: result < m and (x - result) divisible
	// check via repeated subtraction identity x mod m == (x+m) mod m.
	f := func(xhi, xlo, mlo uint64) bool {
		if mlo == 0 {
			return true
		}
		x, m := idFrom2(xhi, xlo), FromUint64(mlo)
		r := modID(x, m)
		return r.Compare(m) < 0 && modID(x.Add(m), m) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShort(t *testing.T) {
	if got := MustHex("deadbeef00000000000000000000000000000000").Short(); got != "deadbeef" {
		t.Errorf("Short = %q", got)
	}
}
