package ids_test

import (
	"fmt"

	"chordbalance/internal/ids"
)

func ExampleBetween() {
	a := ids.FromUint64(10)
	b := ids.FromUint64(20)
	fmt.Println(ids.Between(ids.FromUint64(15), a, b))
	// The interval wraps: (20, 10) covers everything outside (10, 20].
	fmt.Println(ids.Between(ids.FromUint64(15), b, a))
	fmt.Println(ids.Between(ids.FromUint64(25), b, a))
	// Output:
	// true
	// false
	// true
}

func ExampleMidpoint() {
	mid := ids.Midpoint(ids.FromUint64(100), ids.FromUint64(200))
	fmt.Println(mid.Equal(ids.FromUint64(150)))
	// Output: true
}

func ExampleID_Distance() {
	a := ids.FromUint64(250)
	b := ids.FromUint64(20)
	// Clockwise from 250 to 20 wraps through zero.
	d := a.Distance(b)
	fmt.Println(d.Equal(ids.Max.Sub(ids.FromUint64(229))))
	// Output: true
}
