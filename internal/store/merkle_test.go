package store

import (
	"fmt"
	"testing"

	"chordbalance/internal/ids"
	"chordbalance/internal/xrand"
)

// fill populates s with n deterministic keys drawn from rng.
func fill(t *testing.T, s *Store, rng *xrand.Rand, n int) []ids.ID {
	t.Helper()
	keys := make([]ids.ID, 0, n)
	for i := 0; i < n; i++ {
		key := ids.Random(rng)
		if _, err := s.Put(key, []byte(fmt.Sprintf("v-%s", key.Short()))); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, key)
	}
	return keys
}

func TestDigestEqualityAndSensitivity(t *testing.T) {
	a := open(t, "", Options{})
	b := open(t, "", Options{})
	rng := xrand.NewStream(3, 0)
	keys := fill(t, a, rng, 50)
	recs, err := a.ArcRecs(ids.Zero, ids.Zero, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.ApplyAll(recs); err != nil {
		t.Fatal(err)
	}
	da, na := a.Digest(ids.Zero, ids.Zero)
	db, nb := b.Digest(ids.Zero, ids.Zero)
	if da != db || na != nb || na != 50 {
		t.Fatalf("equal stores digest differently: %x/%d vs %x/%d", da, na, db, nb)
	}
	// Any single divergence — changed value, changed version, missing
	// key — must change the digest.
	if _, err := b.Put(keys[7], []byte("different")); err != nil {
		t.Fatal(err)
	}
	db2, _ := b.Digest(ids.Zero, ids.Zero)
	if db2 == da {
		t.Fatal("digest blind to changed value")
	}
	if _, _, err := b.Delete(keys[3]); err != nil {
		t.Fatal(err)
	}
	db3, nb3 := b.Digest(ids.Zero, ids.Zero)
	if db3 == db2 || nb3 != 49 {
		t.Fatal("digest blind to deleted key")
	}
}

func TestArcIterationWrapsAndSplits(t *testing.T) {
	s := open(t, "", Options{})
	rng := xrand.NewStream(4, 0)
	fill(t, s, rng, 64)

	// Splitting any arc at its midpoint partitions it exactly.
	cases := []struct{ lo, hi ids.ID }{
		{ids.Zero, ids.Zero}, // full ring
		{ids.FromUint64(1), ids.MustHex("8000000000000000000000000000000000000000")},
		// A wrapped arc crossing zero.
		{ids.MustHex("f000000000000000000000000000000000000000"), ids.FromUint64(10)},
	}
	for i, c := range cases {
		_, total := s.Digest(c.lo, c.hi)
		mid := ids.Midpoint(c.lo, c.hi)
		if mid == c.lo {
			// Midpoint(a, a) is a (zero distance); the full ring splits
			// at the antipode.
			mid = c.lo.Add(ids.PowerOfTwo(ids.Bits - 1))
		}
		_, left := s.Digest(c.lo, mid)
		_, right := s.Digest(mid, c.hi)
		if left+right != total {
			t.Errorf("case %d: split %d + %d != %d", i, left, right, total)
		}
		metas, n := s.Metas(c.lo, c.hi, 1<<20)
		if len(metas) != total || n != total {
			t.Errorf("case %d: metas %d/%d, digest count %d", i, len(metas), n, total)
		}
		// Metas arrive in clockwise order from lo and all lie in the
		// arc: each key sits strictly after its predecessor on the way
		// to hi.
		for j, m := range metas {
			if !ids.BetweenRightIncl(m.Key, c.lo, c.hi) {
				t.Errorf("case %d: meta %d outside arc", i, j)
			}
			if j > 0 && !ids.BetweenRightIncl(m.Key, metas[j-1].Key, c.hi) {
				t.Errorf("case %d: metas out of order at %d", i, j)
			}
		}
		// A capped Metas call still reports the true total.
		if total > 2 {
			capped, n2 := s.Metas(c.lo, c.hi, 2)
			if len(capped) != 2 || n2 != total {
				t.Errorf("case %d: capped metas %d/%d", i, len(capped), n2)
			}
		}
	}

	// ArcCount agrees with a brute-force membership scan.
	lo, hi := ids.FromUint64(999), ids.MustHex("c000000000000000000000000000000000000000")
	want := 0
	for _, k := range s.Keys() {
		if ids.BetweenRightIncl(k, lo, hi) {
			want++
		}
	}
	if got := s.ArcCount(lo, hi); got != want {
		t.Fatalf("ArcCount=%d want %d", got, want)
	}

	// ArcRecs honors its cap and returns only arc members.
	recs, err := s.ArcRecs(lo, hi, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) > 3 {
		t.Fatalf("ArcRecs cap ignored: %d", len(recs))
	}
	for _, r := range recs {
		if !ids.BetweenRightIncl(r.Key, lo, hi) {
			t.Fatalf("ArcRecs returned %s outside arc", r.Key.Short())
		}
	}
}

func TestMetaWins(t *testing.T) {
	base := Meta{Ver: 5, Sum: [32]byte{1}}
	if !(Meta{Ver: 6}).Wins(base) {
		t.Error("higher version must win")
	}
	if (Meta{Ver: 4, Sum: [32]byte{9}}).Wins(base) {
		t.Error("lower version must lose")
	}
	if !(Meta{Ver: 5, Sum: [32]byte{2}}).Wins(base) {
		t.Error("equal version, larger sum must win")
	}
	if (Meta{Ver: 5, Sum: [32]byte{1}}).Wins(base) {
		t.Error("identical meta must not win (idempotence)")
	}
}
