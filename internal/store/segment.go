package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// backend is the byte storage under one segment. Both implementations
// use only positional I/O (ReadAt/WriteAt) so no lock is ever held
// across a method the concurrency linter classifies as blocking, and so
// concurrent readers never share a file offset with the appender.
type backend interface {
	io.ReaderAt
	io.WriterAt
	// Sync makes all written bytes durable (no-op for memory).
	Sync() error
	// Truncate discards bytes past size (torn-tail recovery).
	Truncate(size int64) error
	// Close releases the backend; reads after Close fail.
	Close() error
}

// fileBackend adapts *os.File; every method is positional or whole-file.
type fileBackend struct{ f *os.File }

func (fb fileBackend) ReadAt(p []byte, off int64) (int, error)  { return fb.f.ReadAt(p, off) }
func (fb fileBackend) WriteAt(p []byte, off int64) (int, error) { return fb.f.WriteAt(p, off) }
func (fb fileBackend) Sync() error                              { return fb.f.Sync() }
func (fb fileBackend) Truncate(size int64) error                { return fb.f.Truncate(size) }
func (fb fileBackend) Close() error                             { return fb.f.Close() }

// memBackend is the in-memory segment used when the store is opened
// without a directory (tests, Sybil-heavy clusters where durability is
// not the point). It honors the same ReaderAt/WriterAt contract.
type memBackend struct {
	mu     sync.RWMutex
	b      []byte
	closed bool
}

func (mb *memBackend) ReadAt(p []byte, off int64) (int, error) {
	mb.mu.RLock()
	defer mb.mu.RUnlock()
	if mb.closed {
		return 0, os.ErrClosed
	}
	if off < 0 || off >= int64(len(mb.b)) {
		return 0, io.EOF
	}
	n := copy(p, mb.b[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (mb *memBackend) WriteAt(p []byte, off int64) (int, error) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return 0, os.ErrClosed
	}
	if off < 0 {
		return 0, fmt.Errorf("store: negative offset %d", off)
	}
	end := off + int64(len(p))
	if end > int64(len(mb.b)) {
		grown := make([]byte, end)
		copy(grown, mb.b)
		mb.b = grown
	}
	copy(mb.b[off:end], p)
	return len(p), nil
}

func (mb *memBackend) Sync() error { return nil }

func (mb *memBackend) Truncate(size int64) error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if size < 0 || size > int64(len(mb.b)) {
		return fmt.Errorf("store: truncate %d outside [0,%d]", size, len(mb.b))
	}
	mb.b = mb.b[:size]
	return nil
}

func (mb *memBackend) Close() error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.closed = true
	return nil
}

// segment is one append-only log file (or memory region). size is the
// number of valid bytes and is guarded by the store's append mutex for
// the active segment; frozen segments never change size.
type segment struct {
	id   uint64
	path string // "" for memory segments
	b    backend
	size int64
}

// segmentName formats the on-disk file name for segment id.
func segmentName(id uint64) string { return fmt.Sprintf("seg-%08d.log", id) }

// parseSegmentName inverts segmentName; ok is false for foreign files.
func parseSegmentName(name string) (uint64, bool) {
	var id uint64
	var tail string
	n, err := fmt.Sscanf(name, "seg-%d.log%s", &id, &tail)
	if n >= 1 && err == io.EOF && tail == "" && name == segmentName(id) {
		return id, true
	}
	return 0, false
}

// readAll returns the segment's valid bytes [0, size).
func (sg *segment) readAll() ([]byte, error) {
	buf := make([]byte, sg.size)
	if sg.size == 0 {
		return buf, nil
	}
	n, err := sg.b.ReadAt(buf, 0)
	if err != nil && !(err == io.EOF && int64(n) == sg.size) {
		return nil, fmt.Errorf("store: segment %d short read %d/%d: %w", sg.id, n, sg.size, err)
	}
	return buf, nil
}

// syncDir fsyncs a directory so segment creations and deletions are
// durable, best-effort on filesystems that reject directory fsync.
func syncDir(dir string) {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}
