// Package store is the durable storage engine under the networked
// Chord runtime (internal/netchord). Each node owns one Store: an
// append-only log of CRC-checked, length-prefixed records split across
// rotating segment files, plus an in-memory key index that is rebuilt
// deterministically by replaying the log on restart.
//
// The engine makes exactly three promises, and everything else is
// shaped around keeping them cheap to verify:
//
//  1. Acknowledged means durable. Put/Apply return only after the
//     record bytes are written — and, when Options.SyncWrites is set,
//     fsynced (group-committed: concurrent writers share one fsync).
//  2. Restart equals replay. Version conflicts are resolved
//     last-writer-wins BEFORE a record is appended, so the log never
//     contains a losing record out of order; replaying segments
//     oldest-first therefore rebuilds the exact pre-crash index, and a
//     torn tail (a partially written final record) is truncated, not
//     fatal.
//  3. Comparable by digest. The index keeps each value's SHA-256 sum,
//     so two replicas can compare whole key arcs by exchanging one
//     32-byte Merkle digest (merkle.go) without touching values.
//
// The locking is layered so that no mutex is ever held across a
// blocking syscall class the repo's linter tracks: wmu serializes
// version assignment and appends (positional WriteAt only), mu guards
// the index for readers, and syncMu serializes group-commit fsyncs.
// See docs/STORAGE.md for the record format and recovery walk-through.
package store

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"chordbalance/internal/ids"
)

// Engine errors.
var (
	// ErrClosed means the store has been closed.
	ErrClosed = errors.New("store: closed")
	// ErrCorrupt means bytes on disk are provably not a valid record.
	ErrCorrupt = errors.New("store: corrupt record")
	// ErrShortRecord means the bytes end before the record does (the
	// torn-tail case recovery truncates).
	ErrShortRecord = errors.New("store: short record")
	// ErrTooLarge means a value exceeds MaxValueLen.
	ErrTooLarge = errors.New("store: too large")
)

// Options tunes one Store; the zero value is usable.
type Options struct {
	// SyncWrites fsyncs before acknowledging each write (group
	// committed). Meaningless for memory-backed stores.
	SyncWrites bool
	// SegmentBytes rotates the active segment once it would exceed
	// this size (default 4 MiB).
	SegmentBytes int64
	// CompactMinBytes is the least dead bytes before MaybeCompact acts
	// (default 1 MiB).
	CompactMinBytes int64
	// CompactFrac is the dead/total byte fraction MaybeCompact requires
	// (default 0.5).
	CompactFrac float64
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.CompactMinBytes <= 0 {
		o.CompactMinBytes = 1 << 20
	}
	if o.CompactFrac <= 0 {
		o.CompactFrac = 0.5
	}
	return o
}

// entry locates one live key in the log.
type entry struct {
	ver  uint64
	sum  [sha256.Size]byte
	seg  uint64
	off  int64
	vlen uint32
	size int64 // full encoded record size
}

// Store is one node's durable key/value engine. All methods are safe
// for concurrent use.
type Store struct {
	dir  string
	opts Options

	// wmu serializes the append path: version assignment, record
	// writes, rotation, and compaction. It also guards scratch and the
	// active segment's size.
	wmu     sync.Mutex
	scratch []byte

	// appended is the sequence number of the last record written;
	// synced is the highest sequence number known durable.
	appended atomic.Uint64
	synced   atomic.Uint64
	// syncMu serializes group-commit fsyncs.
	syncMu sync.Mutex

	// mu guards the fields below for readers; writers hold wmu AND take
	// mu for the brief structural update.
	mu         sync.RWMutex
	index      map[ids.ID]entry
	keys       []ids.ID // sorted ascending; the arc-iteration order
	segs       []*segment
	active     *segment
	nextSeg    uint64
	closed     bool
	totalBytes int64
	deadBytes  int64

	stats struct {
		appends     atomic.Uint64
		appendBytes atomic.Uint64
		rejected    atomic.Uint64 // LWW losers not appended
		syncs       atomic.Uint64
		syncElided  atomic.Uint64 // group-commit riders
		gets        atomic.Uint64
		compactions atomic.Uint64
		replayed    atomic.Uint64
		truncated   atomic.Uint64 // torn tails cut at Open
		corrupt     atomic.Uint64 // non-final segments with bad tails
	}
}

// Stats is a point-in-time snapshot of the engine's counters.
type Stats struct {
	// Keys is the live key count, Segments the open segment count.
	Keys, Segments int
	// TotalBytes and DeadBytes describe the log; dead bytes are
	// reclaimed by compaction.
	TotalBytes, DeadBytes int64
	// Appends/AppendBytes count records written; Rejected counts
	// last-writer-wins losers that were never appended.
	Appends, AppendBytes, Rejected uint64
	// Syncs counts fsync calls; SyncElided counts writes that rode a
	// concurrent group commit.
	Syncs, SyncElided uint64
	// Gets counts value reads.
	Gets uint64
	// Compactions counts full log compactions.
	Compactions uint64
	// Replayed counts records applied at Open; TruncatedTails counts
	// torn final records cut off; CorruptSegments counts non-final
	// segments whose tail failed validation.
	Replayed, TruncatedTails, CorruptSegments uint64
}

// Open opens (or creates) a store rooted at dir, replaying any existing
// segments oldest-first to rebuild the index. An empty dir opens a
// memory-backed store with the same semantics minus durability.
func Open(dir string, opts Options) (*Store, error) {
	s := &Store{
		dir:   dir,
		opts:  opts.withDefaults(),
		index: make(map[ids.ID]entry),
	}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var segIDs []uint64
	for _, de := range names {
		if id, ok := parseSegmentName(de.Name()); ok {
			segIDs = append(segIDs, id)
		}
	}
	sort.Slice(segIDs, func(i, j int) bool { return segIDs[i] < segIDs[j] })
	for i, id := range segIDs {
		if err := s.replaySegment(id, i == len(segIDs)-1); err != nil {
			_ = s.Close()
			return nil, err
		}
	}
	if n := len(s.segs); n > 0 {
		s.active = s.segs[n-1]
		s.nextSeg = s.segs[n-1].id + 1
	}
	// Everything replayed is on disk already; start the durability
	// cursor past it.
	s.appended.Store(s.stats.replayed.Load())
	s.synced.Store(s.stats.replayed.Load())
	return s, nil
}

// replaySegment opens segment id and applies its valid record prefix to
// the index. The final segment's torn tail is truncated in place;
// earlier segments with invalid tails are kept (their valid prefix
// counts) and reported in Stats.
func (s *Store) replaySegment(id uint64, last bool) error {
	path := filepath.Join(s.dir, segmentName(id))
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return fmt.Errorf("store: %w", err)
	}
	sg := &segment{id: id, path: path, b: fileBackend{f}, size: fi.Size()}
	buf, err := sg.readAll()
	if err != nil {
		_ = f.Close()
		return err
	}
	valid := int64(0)
	for int64(len(buf)) > valid {
		rec, n, derr := DecodeRecord(buf[valid:])
		if derr != nil {
			// A torn or corrupt tail ends this segment's replay. Only
			// the last segment is truncated (the crash that tore it is
			// the only writer that could have); an earlier bad tail is
			// kept as evidence and skipped.
			if last {
				if terr := sg.b.Truncate(valid); terr != nil {
					_ = f.Close()
					return fmt.Errorf("store: truncating torn tail: %w", terr)
				}
				sg.size = valid
				s.stats.truncated.Add(1)
			} else {
				s.stats.corrupt.Add(1)
			}
			break
		}
		s.applyReplayed(rec, id, valid, int64(n))
		valid += int64(n)
		s.stats.replayed.Add(1)
	}
	s.totalBytes += sg.size
	s.segs = append(s.segs, sg)
	return nil
}

// applyReplayed applies one replayed record with the same
// last-writer-wins rule the live append path uses, so a reopened index
// is identical to the pre-crash one (Open is single-threaded; no locks).
func (s *Store) applyReplayed(rec Rec, seg uint64, off, size int64) {
	cur, ok := s.index[rec.Key]
	sum := sha256.Sum256(rec.Value)
	if ok && !wins(rec.Ver, sum, cur.ver, cur.sum) {
		s.deadBytes += size
		return
	}
	if ok {
		s.deadBytes += cur.size
	}
	if rec.Tombstone {
		if ok {
			delete(s.index, rec.Key)
			s.removeKey(rec.Key)
		}
		s.deadBytes += size
		return
	}
	s.index[rec.Key] = entry{
		ver: rec.Ver, sum: sum, seg: seg, off: off,
		vlen: uint32(len(rec.Value)), size: size,
	}
	if !ok {
		s.insertKey(rec.Key)
	}
}

// wins reports whether (ver, sum) supersedes (curVer, curSum): higher
// version wins, equal versions tie-break on the value sum so every
// replica converges to one winner without coordination.
func wins(ver uint64, sum [sha256.Size]byte, curVer uint64, curSum [sha256.Size]byte) bool {
	if ver != curVer {
		return ver > curVer
	}
	return bytes.Compare(sum[:], curSum[:]) > 0
}

// insertKey adds key to the sorted key slice (caller holds mu or is
// single-threaded replay).
func (s *Store) insertKey(key ids.ID) {
	i := sort.Search(len(s.keys), func(i int) bool { return !s.keys[i].Less(key) })
	s.keys = append(s.keys, ids.ID{})
	copy(s.keys[i+1:], s.keys[i:])
	s.keys[i] = key
}

// removeKey drops key from the sorted key slice.
func (s *Store) removeKey(key ids.ID) {
	i := sort.Search(len(s.keys), func(i int) bool { return !s.keys[i].Less(key) })
	if i < len(s.keys) && s.keys[i] == key {
		s.keys = append(s.keys[:i], s.keys[i+1:]...)
	}
}

// Put durably stores value under key at the next local version and
// returns the version assigned.
func (s *Store) Put(key ids.ID, value []byte) (uint64, error) {
	return s.PutAtLeast(key, 0, value)
}

// PutAtLeast stores value under key at a version that is both above the
// local version and at least minVer. Owners use minVer to re-assert a
// fresh write above a replica's newer history (see TReplicate in
// internal/wire) so an acknowledged write is never shadowed by an older
// record during anti-entropy.
func (s *Store) PutAtLeast(key ids.ID, minVer uint64, value []byte) (uint64, error) {
	sum := sha256.Sum256(value)
	s.wmu.Lock()
	cur, ok := s.lookup(key)
	ver := uint64(1)
	if ok {
		ver = cur.ver + 1
	}
	if ver < minVer {
		ver = minVer
	}
	asn, err := s.appendLocked(Rec{Key: key, Ver: ver, Value: value}, sum)
	s.wmu.Unlock()
	if err != nil {
		return 0, err
	}
	return ver, s.ackSync(asn)
}

// Apply merges one replicated record last-writer-wins. It returns
// whether the record was applied (false means the local state already
// supersedes — or equals — it) and the key's now-current version.
// Applied records are as durable as a local Put by return time.
func (s *Store) Apply(rec Rec) (bool, uint64, error) {
	sum := sha256.Sum256(rec.Value)
	s.wmu.Lock()
	cur, ok := s.lookup(rec.Key)
	if ok && !wins(rec.Ver, sum, cur.ver, cur.sum) {
		s.wmu.Unlock()
		s.stats.rejected.Add(1)
		return false, cur.ver, nil
	}
	if !ok && rec.Tombstone {
		s.wmu.Unlock()
		s.stats.rejected.Add(1)
		return false, 0, nil
	}
	asn, err := s.appendLocked(rec, sum)
	s.wmu.Unlock()
	if err != nil {
		return false, 0, err
	}
	return true, rec.Ver, s.ackSync(asn)
}

// ApplyAll merges a batch of records, returning how many applied. The
// batch shares one group commit.
func (s *Store) ApplyAll(recs []Rec) (int, error) {
	applied := 0
	var lastASN uint64
	for _, rec := range recs {
		sum := sha256.Sum256(rec.Value)
		s.wmu.Lock()
		cur, ok := s.lookup(rec.Key)
		if (ok && !wins(rec.Ver, sum, cur.ver, cur.sum)) || (!ok && rec.Tombstone) {
			s.wmu.Unlock()
			s.stats.rejected.Add(1)
			continue
		}
		asn, err := s.appendLocked(rec, sum)
		s.wmu.Unlock()
		if err != nil {
			return applied, err
		}
		applied++
		lastASN = asn
	}
	if applied == 0 {
		return 0, nil
	}
	return applied, s.ackSync(lastASN)
}

// Delete tombstones key at the next version. It reports whether the key
// was present and the tombstone's version.
func (s *Store) Delete(key ids.ID) (uint64, bool, error) {
	var empty [0]byte
	sum := sha256.Sum256(empty[:])
	s.wmu.Lock()
	cur, ok := s.lookup(key)
	if !ok {
		s.wmu.Unlock()
		return 0, false, nil
	}
	ver := cur.ver + 1
	asn, err := s.appendLocked(Rec{Key: key, Ver: ver, Tombstone: true}, sum)
	s.wmu.Unlock()
	if err != nil {
		return 0, false, err
	}
	return ver, true, s.ackSync(asn)
}

// lookup reads the current entry for key (any lock state).
func (s *Store) lookup(key ids.ID) (entry, bool) {
	s.mu.RLock()
	e, ok := s.index[key]
	s.mu.RUnlock()
	return e, ok
}

// appendLocked encodes rec, writes it at the active segment's tail, and
// publishes the index update. Caller holds wmu; the LWW decision has
// already been made, so the log only ever receives winning records in
// order — the property replay depends on.
func (s *Store) appendLocked(rec Rec, sum [sha256.Size]byte) (uint64, error) {
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return 0, ErrClosed
	}
	buf, err := AppendRecord(s.scratch[:0], rec)
	if err != nil {
		return 0, err
	}
	s.scratch = buf[:0]
	if s.active == nil || (s.active.size > 0 && s.active.size+int64(len(buf)) > s.opts.SegmentBytes) {
		if err := s.rotateLocked(); err != nil {
			return 0, err
		}
	}
	off := s.active.size
	if _, err := s.active.b.WriteAt(buf, off); err != nil {
		// size is not advanced: the next append overwrites the torn
		// bytes, and replay would cut them at the CRC anyway.
		return 0, fmt.Errorf("store: append: %w", err)
	}
	s.active.size += int64(len(buf))
	asn := s.appended.Add(1)
	s.stats.appends.Add(1)
	s.stats.appendBytes.Add(uint64(len(buf)))

	s.mu.Lock()
	old, had := s.index[rec.Key]
	if had {
		s.deadBytes += old.size
	}
	if rec.Tombstone {
		if had {
			delete(s.index, rec.Key)
			s.removeKey(rec.Key)
		}
		s.deadBytes += int64(len(buf))
	} else {
		s.index[rec.Key] = entry{
			ver: rec.Ver, sum: sum, seg: s.active.id, off: off,
			vlen: uint32(len(rec.Value)), size: int64(len(buf)),
		}
		if !had {
			s.insertKey(rec.Key)
		}
	}
	s.totalBytes += int64(len(buf))
	s.mu.Unlock()
	return asn, nil
}

// rotateLocked freezes the active segment (fsyncing it so group commits
// only ever need to sync the new active file) and installs a fresh one.
// Caller holds wmu.
func (s *Store) rotateLocked() error {
	if s.active != nil {
		if err := s.active.b.Sync(); err != nil {
			return fmt.Errorf("store: freezing segment %d: %w", s.active.id, err)
		}
	}
	id := s.nextSeg
	s.nextSeg++
	sg := &segment{id: id}
	if s.dir == "" {
		sg.b = &memBackend{}
	} else {
		sg.path = filepath.Join(s.dir, segmentName(id))
		f, err := os.OpenFile(sg.path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		sg.b = fileBackend{f}
		syncDir(s.dir)
	}
	s.mu.Lock()
	s.segs = append(s.segs, sg)
	s.active = sg
	s.mu.Unlock()
	return nil
}

// ackSync makes everything up to asn durable when SyncWrites is set.
// Concurrent writers group-commit: whoever holds syncMu syncs the
// furthest tail, and everyone whose asn that covered returns without
// touching the disk.
func (s *Store) ackSync(asn uint64) error {
	if !s.opts.SyncWrites || s.dir == "" {
		return nil
	}
	return s.syncTo(asn)
}

// Sync flushes every appended record to stable storage regardless of
// Options.SyncWrites.
func (s *Store) Sync() error {
	if s.dir == "" {
		return nil
	}
	return s.syncTo(s.appended.Load())
}

func (s *Store) syncTo(asn uint64) error {
	if s.synced.Load() >= asn {
		s.stats.syncElided.Add(1)
		return nil
	}
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	if s.synced.Load() >= asn {
		s.stats.syncElided.Add(1)
		return nil
	}
	// Everything at or below target is either in a frozen segment
	// (fsynced when it froze) or in the current active file, so one
	// fsync of the active file covers the whole range.
	target := s.appended.Load()
	s.mu.RLock()
	active := s.active
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	if active == nil {
		s.synced.Store(target)
		return nil
	}
	if err := active.b.Sync(); err != nil {
		return fmt.Errorf("store: sync: %w", err)
	}
	s.stats.syncs.Add(1)
	s.synced.Store(target)
	return nil
}

// Get returns the current value and version for key. ok is false when
// the key is absent. The returned slice is the caller's to keep.
func (s *Store) Get(key ids.ID) (value []byte, ver uint64, ok bool, err error) {
	s.stats.gets.Add(1)
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		s.mu.RLock()
		if s.closed {
			s.mu.RUnlock()
			return nil, 0, false, ErrClosed
		}
		e, have := s.index[key]
		var sg *segment
		if have {
			sg = s.segByIDLocked(e.seg)
		}
		s.mu.RUnlock()
		if !have {
			return nil, 0, false, nil
		}
		if sg == nil {
			// The entry moved during a compaction between the two
			// lock regions; re-read it.
			continue
		}
		buf := make([]byte, e.vlen)
		if e.vlen > 0 {
			if _, rerr := sg.b.ReadAt(buf, e.off+recValueOff); rerr != nil {
				// Compaction may have closed this segment after we
				// dropped mu; the retried lookup sees the new location.
				lastErr = rerr
				continue
			}
		}
		if sha256.Sum256(buf) != e.sum {
			lastErr = fmt.Errorf("%w: key %s value sum mismatch", ErrCorrupt, key.Short())
			continue
		}
		return buf, e.ver, true, nil
	}
	return nil, 0, false, fmt.Errorf("store: get: %w", lastErr)
}

// Ver returns the current version for key without reading the value.
func (s *Store) Ver(key ids.ID) (uint64, bool) {
	e, ok := s.lookup(key)
	return e.ver, ok
}

// Len returns the live key count.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.keys)
}

// Keys returns the live keys in ascending ring order (a copy).
func (s *Store) Keys() []ids.ID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]ids.ID(nil), s.keys...)
}

// segByIDLocked finds a segment by id; caller holds mu.
func (s *Store) segByIDLocked(id uint64) *segment {
	i := sort.Search(len(s.segs), func(i int) bool { return s.segs[i].id >= id })
	if i < len(s.segs) && s.segs[i].id == id {
		return s.segs[i]
	}
	return nil
}

// Stats snapshots the engine counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	st := Stats{
		Keys:       len(s.keys),
		Segments:   len(s.segs),
		TotalBytes: s.totalBytes,
		DeadBytes:  s.deadBytes,
	}
	s.mu.RUnlock()
	st.Appends = s.stats.appends.Load()
	st.AppendBytes = s.stats.appendBytes.Load()
	st.Rejected = s.stats.rejected.Load()
	st.Syncs = s.stats.syncs.Load()
	st.SyncElided = s.stats.syncElided.Load()
	st.Gets = s.stats.gets.Load()
	st.Compactions = s.stats.compactions.Load()
	st.Replayed = s.stats.replayed.Load()
	st.TruncatedTails = s.stats.truncated.Load()
	st.CorruptSegments = s.stats.corrupt.Load()
	return st
}

// Dir returns the store's directory ("" for memory-backed stores).
func (s *Store) Dir() string { return s.dir }

// Close flushes the active segment and closes every backend. The
// directory (and thus the data) is kept; see Destroy.
func (s *Store) Close() error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	segs := append([]*segment(nil), s.segs...)
	active := s.active
	s.mu.Unlock()
	var first error
	if active != nil {
		// A final flush so a graceful close is durable even with
		// SyncWrites off.
		if err := active.b.Sync(); err != nil && first == nil {
			first = err
		}
	}
	for _, sg := range segs {
		if err := sg.b.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Destroy closes the store and deletes its directory — the graceful
// leave path, where ownership has been handed off and keeping the log
// would resurrect stale replicas on an identity reuse.
func (s *Store) Destroy() error {
	err := s.Close()
	if s.dir != "" {
		if rerr := os.RemoveAll(s.dir); rerr != nil && err == nil {
			err = rerr
		}
	}
	return err
}
