package store

import (
	"fmt"
	"os"
)

// Compaction reclaims the log bytes shadowed by newer versions. The
// scheme needs no manifest and stays crash-safe by construction:
//
//  1. Rotate, so every record to reclaim lives in a frozen segment.
//  2. Scan the frozen segments oldest-first; re-append every record the
//     index still points at (same key, version, and bytes) through the
//     normal append path, which moves the index entry to the new tail.
//  3. fsync the copies, then delete the drained segment file.
//
// A crash at any point leaves either the original or both copies on
// disk; replay applies them in order with the same last-writer-wins
// rule as the runtime, so duplicates collapse and nothing is lost.

// MaybeCompact runs Compact when the dead-byte fraction crosses the
// configured thresholds; it reports whether a compaction ran.
func (s *Store) MaybeCompact() (bool, error) {
	s.mu.RLock()
	dead, total := s.deadBytes, s.totalBytes
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return false, ErrClosed
	}
	if dead < s.opts.CompactMinBytes || total == 0 ||
		float64(dead) < s.opts.CompactFrac*float64(total) {
		return false, nil
	}
	return true, s.Compact()
}

// Compact rewrites every live record out of the frozen segments and
// deletes them. Writers are blocked for the duration; readers are not.
func (s *Store) Compact() error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	// Freeze the current tail so the scan below covers every record
	// written so far; new appends (ours included) land in the fresh
	// active segment.
	if err := s.rotateLocked(); err != nil {
		return err
	}
	s.mu.RLock()
	frozen := append([]*segment(nil), s.segs[:len(s.segs)-1]...)
	s.mu.RUnlock()

	for _, sg := range frozen {
		if err := s.drainSegmentLocked(sg); err != nil {
			return err
		}
		// The copies must be durable before their source disappears.
		if s.dir != "" {
			if err := s.active.b.Sync(); err != nil {
				return fmt.Errorf("store: compaction sync: %w", err)
			}
		}
		s.mu.Lock()
		for i, other := range s.segs {
			if other == sg {
				s.segs = append(s.segs[:i], s.segs[i+1:]...)
				break
			}
		}
		s.totalBytes -= sg.size
		s.mu.Unlock()
		if err := sg.b.Close(); err != nil {
			return fmt.Errorf("store: compaction close: %w", err)
		}
		if sg.path != "" {
			if err := os.Remove(sg.path); err != nil {
				return fmt.Errorf("store: compaction remove: %w", err)
			}
			syncDir(s.dir)
		}
	}
	// Dead bytes now only exist in the active segment; recount them as
	// live bytes minus what the index references.
	s.mu.Lock()
	var live int64
	for _, key := range s.keys {
		live += s.index[key].size
	}
	s.deadBytes = s.totalBytes - live
	s.mu.Unlock()
	s.stats.compactions.Add(1)
	return nil
}

// drainSegmentLocked re-appends every record of sg the index still
// points at. Caller holds wmu.
func (s *Store) drainSegmentLocked(sg *segment) error {
	buf, err := sg.readAll()
	if err != nil {
		return err
	}
	off := int64(0)
	for int64(len(buf)) > off {
		rec, n, derr := DecodeRecord(buf[off:])
		if derr != nil {
			// The segment's valid prefix was all replay ever used; the
			// tail past it carries no live records by construction.
			return nil
		}
		s.mu.RLock()
		e, live := s.index[rec.Key]
		s.mu.RUnlock()
		if live && e.seg == sg.id && e.off == off {
			sum := e.sum
			if _, err := s.appendLocked(rec, sum); err != nil {
				return err
			}
		}
		off += int64(n)
	}
	return nil
}
