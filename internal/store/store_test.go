package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"chordbalance/internal/ids"
	"chordbalance/internal/xrand"
)

// open is a test helper: file-backed when dir != "", fatal on error.
func open(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%q): %v", dir, err)
	}
	return s
}

func TestRecordRoundTrip(t *testing.T) {
	cases := []Rec{
		{Key: ids.FromUint64(1), Ver: 1, Value: []byte("hello")},
		{Key: ids.FromUint64(2), Ver: 1 << 60, Value: nil},
		{Key: ids.MustHex("ffffffffffffffffffffffffffffffffffffffff"), Ver: 7, Value: bytes.Repeat([]byte{0xab}, MaxValueLen)},
		{Key: ids.FromUint64(3), Ver: 9, Tombstone: true},
	}
	for i, in := range cases {
		buf, err := AppendRecord(nil, in)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		out, n, err := DecodeRecord(buf)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if n != len(buf) {
			t.Fatalf("case %d: consumed %d of %d", i, n, len(buf))
		}
		if !reflect.DeepEqual(normalizeRec(in), normalizeRec(out)) {
			t.Errorf("case %d: mismatch\n in: %+v\nout: %+v", i, in, out)
		}
	}
	if _, err := AppendRecord(nil, Rec{Value: make([]byte, MaxValueLen+1)}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized value: %v", err)
	}
	if _, err := AppendRecord(nil, Rec{Tombstone: true, Value: []byte("x")}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("tombstone with value: %v", err)
	}
}

func normalizeRec(r Rec) Rec {
	if len(r.Value) == 0 {
		r.Value = nil
	}
	return r
}

func TestRecordRejectsCorruption(t *testing.T) {
	good, err := AppendRecord(nil, Rec{Key: ids.FromUint64(9), Ver: 3, Value: []byte("payload")})
	if err != nil {
		t.Fatal(err)
	}
	// Any single flipped bit must fail the CRC (or a bounds check) —
	// never decode to a different record.
	for i := 0; i < len(good)*8; i++ {
		b := append([]byte(nil), good...)
		b[i/8] ^= 1 << (i % 8)
		rec, _, derr := DecodeRecord(b)
		if derr == nil {
			t.Fatalf("bit %d: corrupt record decoded: %+v", i, rec)
		}
	}
	// A truncated record is short, not corrupt: replay treats it as a
	// torn tail.
	for cut := 0; cut < len(good); cut++ {
		_, _, derr := DecodeRecord(good[:cut])
		if derr == nil {
			t.Fatalf("prefix %d decoded", cut)
		}
	}
}

func TestPutGetDeleteBasics(t *testing.T) {
	for _, dir := range []string{"", t.TempDir()} {
		name := "mem"
		if dir != "" {
			name = "file"
		}
		t.Run(name, func(t *testing.T) {
			s := open(t, dir, Options{SyncWrites: dir != ""})
			defer func() { _ = s.Close() }()
			key := ids.FromUint64(42)
			if _, _, ok, err := s.Get(key); ok || err != nil {
				t.Fatalf("empty get: ok=%v err=%v", ok, err)
			}
			v1, err := s.Put(key, []byte("one"))
			if err != nil || v1 != 1 {
				t.Fatalf("put: ver=%d err=%v", v1, err)
			}
			v2, err := s.Put(key, []byte("two"))
			if err != nil || v2 != 2 {
				t.Fatalf("put2: ver=%d err=%v", v2, err)
			}
			got, ver, ok, err := s.Get(key)
			if err != nil || !ok || ver != 2 || string(got) != "two" {
				t.Fatalf("get: %q ver=%d ok=%v err=%v", got, ver, ok, err)
			}
			dver, had, err := s.Delete(key)
			if err != nil || !had || dver != 3 {
				t.Fatalf("delete: ver=%d had=%v err=%v", dver, had, err)
			}
			if _, _, ok, _ := s.Get(key); ok {
				t.Fatal("deleted key still present")
			}
			if _, had, err := s.Delete(key); had || err != nil {
				t.Fatalf("double delete: had=%v err=%v", had, err)
			}
			if s.Len() != 0 {
				t.Fatalf("Len=%d after delete", s.Len())
			}
		})
	}
}

func TestApplyLastWriterWins(t *testing.T) {
	s := open(t, "", Options{})
	key := ids.FromUint64(5)
	if applied, _, _ := s.Apply(Rec{Key: key, Ver: 3, Value: []byte("v3")}); !applied {
		t.Fatal("fresh apply rejected")
	}
	// Older version loses.
	if applied, cur, _ := s.Apply(Rec{Key: key, Ver: 2, Value: []byte("v2")}); applied || cur != 3 {
		t.Fatalf("old version applied=%v cur=%d", applied, cur)
	}
	// Same version, same bytes: idempotent no-op.
	if applied, _, _ := s.Apply(Rec{Key: key, Ver: 3, Value: []byte("v3")}); applied {
		t.Fatal("identical record re-applied")
	}
	// Same version, different bytes: the larger sum wins on every
	// replica, whichever order the records arrive in.
	a := Rec{Key: key, Ver: 4, Value: []byte("conflict-a")}
	b := Rec{Key: key, Ver: 4, Value: []byte("conflict-b")}
	s2 := open(t, "", Options{})
	for _, r := range []Rec{a, b} {
		if _, _, err := s.Apply(r); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []Rec{b, a} {
		if _, _, err := s2.Apply(r); err != nil {
			t.Fatal(err)
		}
	}
	g1, v1, _, _ := s.Get(key)
	g2, v2, _, _ := s2.Get(key)
	if v1 != v2 || !bytes.Equal(g1, g2) {
		t.Fatalf("replicas diverged: %q@%d vs %q@%d", g1, v1, g2, v2)
	}
	// A put after a conflicting history lands above it.
	ver, err := s.PutAtLeast(key, 9, []byte("fresh"))
	if err != nil || ver != 9 {
		t.Fatalf("PutAtLeast: ver=%d err=%v", ver, err)
	}
}

// TestRestartEqualsReplay is the recovery-determinism contract: after
// an arbitrary operation history, closing and reopening must rebuild an
// index identical to the pre-close one — and identical to a clean
// replay into a fresh memory store fed the same surviving log bytes.
func TestRestartEqualsReplay(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{SegmentBytes: 512}) // force many rotations
	rng := xrand.NewStream(11, 0)
	for i := 0; i < 500; i++ {
		key := ids.FromUint64(rng.Uint64() % 40)
		switch rng.Uint64() % 5 {
		case 0:
			if _, _, err := s.Delete(key); err != nil {
				t.Fatal(err)
			}
		case 1:
			rec := Rec{Key: key, Ver: rng.Uint64() % 8, Value: []byte(fmt.Sprintf("apply-%d", i))}
			if _, _, err := s.Apply(rec); err != nil {
				t.Fatal(err)
			}
		default:
			if _, err := s.Put(key, []byte(fmt.Sprintf("put-%d", i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	before := dumpState(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re := open(t, dir, Options{})
	defer func() { _ = re.Close() }()
	after := dumpState(t, re)
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("reopened state differs\nbefore: %v\nafter:  %v", before, after)
	}
	if st := re.Stats(); st.Replayed == 0 {
		t.Fatal("no records replayed")
	}
	// And the Merkle digest agrees, which is what replicas actually
	// compare.
	d1, n1 := re.Digest(ids.Zero, ids.Zero)
	s2 := open(t, "", Options{})
	recs, err := re.ArcRecs(ids.Zero, ids.Zero, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.ApplyAll(recs); err != nil {
		t.Fatal(err)
	}
	d2, n2 := s2.Digest(ids.Zero, ids.Zero)
	if d1 != d2 || n1 != n2 {
		t.Fatalf("digest mismatch after re-apply: %x/%d vs %x/%d", d1, n1, d2, n2)
	}
}

// dumpState flattens a store to a deterministic key → (ver, value)
// view.
func dumpState(t *testing.T, s *Store) map[ids.ID]string {
	t.Helper()
	out := make(map[ids.ID]string)
	for _, key := range s.Keys() {
		v, ver, ok, err := s.Get(key)
		if err != nil || !ok {
			t.Fatalf("dump %s: ok=%v err=%v", key.Short(), ok, err)
		}
		out[key] = fmt.Sprintf("%d:%q", ver, v)
	}
	return out
}

// TestTornTailTruncationSweep cuts a valid log at every possible byte
// boundary and asserts each prefix opens cleanly with exactly the
// records whose final byte survived — the crash model for a single
// torn append.
func TestTornTailTruncationSweep(t *testing.T) {
	master := t.TempDir()
	s := open(t, master, Options{})
	type kv struct {
		ver uint64
		val string
	}
	var ends []int64 // log length after each append
	want := make(map[ids.ID]kv)
	wantAt := make([]map[ids.ID]kv, 0, 9)
	for i := 0; i < 8; i++ {
		key := ids.FromUint64(uint64(i % 3))
		val := fmt.Sprintf("v%d", i)
		ver, err := s.Put(key, []byte(val))
		if err != nil {
			t.Fatal(err)
		}
		want[key] = kv{ver, val}
		snap := make(map[ids.ID]kv, len(want))
		for k, v := range want {
			snap[k] = v
		}
		wantAt = append(wantAt, snap)
		st := s.Stats()
		ends = append(ends, st.TotalBytes)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(master, segmentName(0))
	full, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(full)) != ends[len(ends)-1] {
		t.Fatalf("log %d bytes, want %d", len(full), ends[len(ends)-1])
	}

	for cut := 0; cut <= len(full); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(0)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		// Which records fully survive the cut?
		complete := -1
		for i, end := range ends {
			if int64(cut) >= end {
				complete = i
			}
		}
		wantState := map[ids.ID]kv{}
		if complete >= 0 {
			wantState = wantAt[complete]
		}
		if re.Len() != len(wantState) {
			t.Fatalf("cut %d: %d keys, want %d", cut, re.Len(), len(wantState))
		}
		for k, w := range wantState {
			v, ver, ok, err := re.Get(k)
			if err != nil || !ok || ver != w.ver || string(v) != w.val {
				t.Fatalf("cut %d key %s: %q@%d ok=%v err=%v want %q@%d",
					cut, k.Short(), v, ver, ok, err, w.val, w.ver)
			}
		}
		// The torn tail must actually be gone so the next append is
		// aligned.
		if partial := int64(cut) - logEndAt(ends, cut); partial > 0 {
			if st := re.Stats(); st.TruncatedTails != 1 {
				t.Fatalf("cut %d: TruncatedTails=%d", cut, st.TruncatedTails)
			}
		}
		// And the store must accept new writes cleanly.
		if _, err := re.Put(ids.FromUint64(99), []byte("after")); err != nil {
			t.Fatalf("cut %d: post-recovery put: %v", cut, err)
		}
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// logEndAt returns the largest record boundary <= cut.
func logEndAt(ends []int64, cut int) int64 {
	end := int64(0)
	for _, e := range ends {
		if int64(cut) >= e {
			end = e
		}
	}
	return end
}

func TestRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{SegmentBytes: 256, CompactMinBytes: 1, CompactFrac: 0.01})
	key := ids.FromUint64(7)
	// Overwrite one key many times: almost everything becomes dead.
	for i := 0; i < 200; i++ {
		if _, err := s.Put(key, []byte(fmt.Sprintf("value-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Put(ids.FromUint64(8), []byte("keep")); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected rotations, got %d segments", st.Segments)
	}
	ran, err := s.MaybeCompact()
	if err != nil || !ran {
		t.Fatalf("MaybeCompact: ran=%v err=%v", ran, err)
	}
	st2 := s.Stats()
	if st2.TotalBytes >= st.TotalBytes/4 {
		t.Fatalf("compaction reclaimed little: %d -> %d bytes", st.TotalBytes, st2.TotalBytes)
	}
	if got, ver, ok, err := s.Get(key); err != nil || !ok || ver != 200 || string(got) != "value-199" {
		t.Fatalf("after compact: %q@%d ok=%v err=%v", got, ver, ok, err)
	}
	// Files on disk match the surviving segments.
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != st2.Segments {
		t.Fatalf("%d files on disk, %d segments", len(names), st2.Segments)
	}
	// Restart after compaction replays to the same state.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re := open(t, dir, Options{})
	defer func() { _ = re.Close() }()
	if got, ver, ok, err := re.Get(key); err != nil || !ok || ver != 200 || string(got) != "value-199" {
		t.Fatalf("after reopen: %q@%d ok=%v err=%v", got, ver, ok, err)
	}
	if re.Len() != 2 {
		t.Fatalf("Len=%d after reopen", re.Len())
	}
}

func TestConcurrentWritersGroupCommit(t *testing.T) {
	s := open(t, t.TempDir(), Options{SyncWrites: true})
	defer func() { _ = s.Close() }()
	const writers, each = 8, 25
	var wg sync.WaitGroup
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				key := ids.FromUint64(uint64(w*1000 + i))
				if _, err := s.Put(key, []byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if _, _, ok, err := s.Get(key); !ok || err != nil {
					t.Errorf("read-your-write: ok=%v err=%v", ok, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != writers*each {
		t.Fatalf("Len=%d want %d", s.Len(), writers*each)
	}
	st := s.Stats()
	if st.Syncs == 0 {
		t.Fatal("no fsyncs with SyncWrites on")
	}
	t.Logf("group commit: %d appends, %d syncs, %d elided", st.Appends, st.Syncs, st.SyncElided)
}

func TestClosedStoreRefuses(t *testing.T) {
	s := open(t, "", Options{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(ids.FromUint64(1), []byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("put after close: %v", err)
	}
	if _, _, _, err := s.Get(ids.FromUint64(1)); !errors.Is(err, ErrClosed) {
		t.Errorf("get after close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestDestroyRemovesDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "node-x")
	s := open(t, dir, Options{})
	if _, err := s.Put(ids.FromUint64(1), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Destroy(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("dir survives Destroy: %v", err)
	}
}
