package store

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"chordbalance/internal/ids"
)

// TestCrashRecoverySIGKILL is the satellite crash test: a child process
// (this same test binary, re-executed) runs a write burst with
// SyncWrites on, journaling every acknowledged put to a side file; the
// parent SIGKILLs it mid-burst and then proves, from the surviving
// segment log, that
//
//  1. every journaled (acknowledged) write is present at >= its
//     acknowledged version, with the exact bytes when the version
//     matches (zero acknowledged-write loss);
//  2. recovery is deterministic: opening the log twice (original and a
//     byte-for-byte copy) yields identical indexes and Merkle digests;
//  3. a torn tail truncates instead of failing the open, and the store
//     accepts writes immediately afterwards.
func TestCrashRecoverySIGKILL(t *testing.T) {
	dir := os.Getenv("STORE_CRASH_DIR")
	if os.Getenv("STORE_CRASH_CHILD") == "1" {
		crashChild(dir)
		return
	}
	if testing.Short() {
		t.Skip("re-exec crash test skipped in -short")
	}
	dir = t.TempDir()
	journal := filepath.Join(dir, "acks.journal")
	cmd := exec.Command(os.Args[0], "-test.run=TestCrashRecoverySIGKILL$", "-test.v")
	cmd.Env = append(os.Environ(), "STORE_CRASH_CHILD=1", "STORE_CRASH_DIR="+dir)
	var childOut strings.Builder
	cmd.Stdout = &childOut
	cmd.Stderr = &childOut
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Kill mid-burst: as soon as a handful of acknowledged writes hit
	// the journal, the child dies without any shutdown path running.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if fi, err := os.Stat(journal); err == nil && fi.Size() > 2048 {
			break
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
			t.Fatalf("child made no progress; output:\n%s", childOut.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait() // the kill is the expected exit

	// Copy the surviving log before touching it, so the recovery can
	// run twice from identical bytes (the "clean replay" oracle).
	logDir := filepath.Join(dir, "log")
	copyDir := filepath.Join(dir, "log-copy")
	if err := os.MkdirAll(copyDir, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(logDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range entries {
		b, err := os.ReadFile(filepath.Join(logDir, de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(copyDir, de.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	recovered := open(t, logDir, Options{})
	defer func() { _ = recovered.Close() }()
	replayed := open(t, copyDir, Options{})
	defer func() { _ = replayed.Close() }()

	// (2) Determinism: crash recovery IS a clean replay.
	if a, b := dumpState(t, recovered), dumpState(t, replayed); !mapsEqual(a, b) {
		t.Fatalf("recovered state differs from clean replay\nrecovered: %v\nreplay:    %v", a, b)
	}
	da, na := recovered.Digest(ids.Zero, ids.Zero)
	db, nb := replayed.Digest(ids.Zero, ids.Zero)
	if da != db || na != nb {
		t.Fatalf("digest mismatch: %x/%d vs %x/%d", da, na, db, nb)
	}

	// (1) Zero acknowledged-write loss.
	jf, err := os.Open(journal)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = jf.Close() }()
	sc := bufio.NewScanner(jf)
	acked := 0
	for sc.Scan() {
		line := sc.Text()
		var keyIdx, i int
		var ver uint64
		if _, err := fmt.Sscanf(line, "%d %d %d", &keyIdx, &ver, &i); err != nil {
			// A torn final journal line is not an acknowledged write.
			continue
		}
		acked++
		key := crashKey(keyIdx)
		val, gotVer, ok, err := recovered.Get(key)
		if err != nil || !ok {
			t.Fatalf("acked write lost: key %d ver %d (ok=%v err=%v)", keyIdx, ver, ok, err)
		}
		if gotVer < ver {
			t.Fatalf("acked write regressed: key %d at ver %d < acked %d", keyIdx, gotVer, ver)
		}
		if gotVer == ver && string(val) != crashValue(keyIdx, i) {
			t.Fatalf("acked bytes lost: key %d ver %d holds %q want %q", keyIdx, ver, val, crashValue(keyIdx, i))
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if acked < 10 {
		t.Fatalf("only %d acknowledged writes before the kill; child output:\n%s", acked, childOut.String())
	}
	st := recovered.Stats()
	t.Logf("killed after %d acks: replayed %d records, %d torn tails truncated", acked, st.Replayed, st.TruncatedTails)

	// (3) The recovered store is immediately writable.
	if _, err := recovered.Put(crashKey(0), []byte("post-crash")); err != nil {
		t.Fatalf("post-recovery put: %v", err)
	}
}

func mapsEqual(a, b map[ids.ID]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func crashKey(i int) ids.ID { return ids.FromUint64(uint64(i)) }

func crashValue(keyIdx, i int) string {
	return fmt.Sprintf("crash-%d-%d-%s", keyIdx, i, strings.Repeat("x", 64))
}

// crashChild runs the write burst until it is killed. Every put uses
// SyncWrites (durable before return) and is then journaled with its own
// fsync, so the journal is always a subset of the acknowledged writes.
func crashChild(dir string) {
	logDir := filepath.Join(dir, "log")
	// Tiny segments so the kill lands across rotations too.
	s, err := Open(logDir, Options{SyncWrites: true, SegmentBytes: 4 << 10})
	if err != nil {
		fmt.Println("child open:", err)
		os.Exit(1)
	}
	jf, err := os.OpenFile(filepath.Join(dir, "acks.journal"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		fmt.Println("child journal:", err)
		os.Exit(1)
	}
	for i := 0; i < 1<<20; i++ {
		keyIdx := i % 37
		ver, err := s.Put(crashKey(keyIdx), []byte(crashValue(keyIdx, i)))
		if err != nil {
			fmt.Println("child put:", err)
			os.Exit(1)
		}
		if _, err := fmt.Fprintf(jf, "%d %d %d\n", keyIdx, ver, i); err != nil {
			fmt.Println("child journal write:", err)
			os.Exit(1)
		}
		if err := jf.Sync(); err != nil {
			fmt.Println("child journal sync:", err)
			os.Exit(1)
		}
	}
}
