package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"chordbalance/internal/ids"
)

// Segment-record geometry. One record on disk is
//
//	offset  size  field
//	0       4     body length (big endian, recFixedLen..recFixedLen+MaxValueLen)
//	4       4     CRC-32C of the body (Castagnoli)
//	8       1     flags (bit 0 = tombstone; other bits reserved, must be 0)
//	9       8     version (big endian)
//	17      20    key (ids.Bytes)
//	37      4     value length (big endian, must equal body length - recFixedLen)
//	41      n     value bytes
//
// The double length (body length in the header, value length in the
// body) is deliberate: the header length frames the record before the
// checksum is verified, and the body length is covered BY the checksum,
// so a corrupt header cannot silently re-frame valid bytes.
const (
	// RecordHeaderLen is the fixed per-record header: body length + CRC.
	RecordHeaderLen = 8
	// recFixedLen is the body size of a record with an empty value.
	recFixedLen = 1 + 8 + ids.Bytes + 4
	// recValueOff is the offset of the value bytes from the record start.
	recValueOff = RecordHeaderLen + recFixedLen
	// MaxValueLen caps one stored value; it matches wire.MaxValueLen so
	// any value that fits in a frame fits in the log and vice versa.
	MaxValueLen = 64 << 10
	// MaxRecordLen is the largest encoded record.
	MaxRecordLen = RecordHeaderLen + recFixedLen + MaxValueLen

	flagTombstone = 0x01
	flagsKnown    = flagTombstone
)

// castagnoli is the CRC-32C table used for record checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Rec is one logical record: a key, its last-writer-wins version, and
// the value bytes. Tombstone records mark a deletion at a version and
// carry no value.
type Rec struct {
	Key       ids.ID
	Ver       uint64
	Value     []byte
	Tombstone bool
}

// AppendRecord encodes r, appending the complete segment record to dst
// and returning the extended slice. It fails only on an oversized value
// or a tombstone carrying bytes; dst is returned unmodified on error.
func AppendRecord(dst []byte, r Rec) ([]byte, error) {
	if len(r.Value) > MaxValueLen {
		return dst, fmt.Errorf("%w: value %d > %d", ErrTooLarge, len(r.Value), MaxValueLen)
	}
	if r.Tombstone && len(r.Value) != 0 {
		return dst, fmt.Errorf("%w: tombstone with %d value bytes", ErrTooLarge, len(r.Value))
	}
	body := recFixedLen + len(r.Value)
	dst = binary.BigEndian.AppendUint32(dst, uint32(body))
	dst = append(dst, 0, 0, 0, 0) // CRC backpatched below
	bodyStart := len(dst)
	flags := byte(0)
	if r.Tombstone {
		flags = flagTombstone
	}
	dst = append(dst, flags)
	dst = binary.BigEndian.AppendUint64(dst, r.Ver)
	dst = append(dst, r.Key[:]...)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(r.Value)))
	dst = append(dst, r.Value...)
	crc := crc32.Checksum(dst[bodyStart:], castagnoli)
	binary.BigEndian.PutUint32(dst[bodyStart-4:bodyStart], crc)
	return dst, nil
}

// DecodeRecord parses one record from the front of b, returning the
// record and the number of bytes consumed. It returns ErrShortRecord
// when b holds a valid prefix of a record that simply ends early (the
// torn-tail case) and ErrCorrupt when the bytes present are provably
// not a record (bad length, CRC mismatch, inconsistent value length,
// unknown flags). The returned value does not alias b.
func DecodeRecord(b []byte) (Rec, int, error) {
	var r Rec
	if len(b) < RecordHeaderLen {
		return r, 0, ErrShortRecord
	}
	body := int(binary.BigEndian.Uint32(b[0:4]))
	if body < recFixedLen || body > recFixedLen+MaxValueLen {
		return r, 0, fmt.Errorf("%w: body length %d", ErrCorrupt, body)
	}
	total := RecordHeaderLen + body
	if len(b) < total {
		return r, 0, ErrShortRecord
	}
	crc := binary.BigEndian.Uint32(b[4:8])
	if crc32.Checksum(b[RecordHeaderLen:total], castagnoli) != crc {
		return r, 0, fmt.Errorf("%w: crc mismatch", ErrCorrupt)
	}
	flags := b[RecordHeaderLen]
	if flags&^flagsKnown != 0 {
		return r, 0, fmt.Errorf("%w: unknown flags %#x", ErrCorrupt, flags)
	}
	r.Tombstone = flags&flagTombstone != 0
	r.Ver = binary.BigEndian.Uint64(b[RecordHeaderLen+1 : RecordHeaderLen+9])
	r.Key = ids.FromBytes(b[RecordHeaderLen+9 : RecordHeaderLen+9+ids.Bytes])
	vlen := int(binary.BigEndian.Uint32(b[recValueOff-4 : recValueOff]))
	if vlen != body-recFixedLen {
		return r, 0, fmt.Errorf("%w: value length %d in body %d", ErrCorrupt, vlen, body)
	}
	if r.Tombstone && vlen != 0 {
		return r, 0, fmt.Errorf("%w: tombstone with %d value bytes", ErrCorrupt, vlen)
	}
	if vlen > 0 {
		r.Value = append([]byte(nil), b[recValueOff:recValueOff+vlen]...)
	}
	return r, total, nil
}
