package store

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"

	"chordbalance/internal/ids"
)

// Anti-entropy support: a replica pair compares a key arc by exchanging
// the SHA-256 digest of the arc's (key, version, value-sum) triples in
// clockwise order. Equal digests prove the replicas hold byte-identical
// state for the arc without moving a single value; a mismatch is
// narrowed by splitting the arc at its midpoint and recursing (see
// internal/netchord's sync loop and docs/STORAGE.md).

// Meta is one key's comparison metadata: enough to decide staleness
// (Ver, with Sum as the deterministic tie-break) without the value.
type Meta struct {
	Key ids.ID
	Ver uint64
	Sum [sha256.Size]byte
}

// Wins reports whether m supersedes other under the store's
// last-writer-wins rule.
func (m Meta) Wins(other Meta) bool {
	return wins(m.Ver, m.Sum, other.Ver, other.Sum)
}

// forArcLocked calls fn with the index position of every live key in
// the clockwise arc (lo, hi], starting from the first key after lo.
// lo == hi names the whole ring. fn returning false stops the walk.
// Caller holds mu.
func (s *Store) forArcLocked(lo, hi ids.ID, fn func(i int) bool) {
	n := len(s.keys)
	if n == 0 {
		return
	}
	start := sort.Search(n, func(i int) bool { return lo.Less(s.keys[i]) })
	for k := 0; k < n; k++ {
		j := (start + k) % n
		if !ids.BetweenRightIncl(s.keys[j], lo, hi) {
			return
		}
		if !fn(j) {
			return
		}
	}
}

// Digest returns the arc digest over (lo, hi] and the number of live
// keys it covers. Two stores return equal digests exactly when they
// hold the same keys at the same versions with the same value bytes.
func (s *Store) Digest(lo, hi ids.ID) ([sha256.Size]byte, int) {
	h := sha256.New()
	var leaf [ids.Bytes + 8 + sha256.Size]byte
	count := 0
	s.mu.RLock()
	s.forArcLocked(lo, hi, func(i int) bool {
		key := s.keys[i]
		e := s.index[key]
		copy(leaf[:ids.Bytes], key[:])
		binary.BigEndian.PutUint64(leaf[ids.Bytes:], e.ver)
		copy(leaf[ids.Bytes+8:], e.sum[:])
		_, _ = h.Write(leaf[:]) // sha256 writes never fail
		count++
		return true
	})
	s.mu.RUnlock()
	var d [sha256.Size]byte
	h.Sum(d[:0])
	return d, count
}

// Metas returns up to max per-key metadata entries for the arc
// (lo, hi] in clockwise order, plus the arc's true key count (which may
// exceed len of the returned slice when the arc is larger than max).
func (s *Store) Metas(lo, hi ids.ID, max int) ([]Meta, int) {
	var out []Meta
	total := 0
	s.mu.RLock()
	s.forArcLocked(lo, hi, func(i int) bool {
		total++
		if len(out) < max {
			key := s.keys[i]
			e := s.index[key]
			out = append(out, Meta{Key: key, Ver: e.ver, Sum: e.sum})
		}
		return true
	})
	s.mu.RUnlock()
	return out, total
}

// ArcCount returns the number of live keys in (lo, hi].
func (s *Store) ArcCount(lo, hi ids.ID) int {
	_, n := s.Metas(lo, hi, 0)
	return n
}

// ArcRecs reads up to max full records for the arc (lo, hi] in
// clockwise order — the bulk-transfer path for join gifts, graceful
// leave, and replica reconciliation. Keys that vanish between the index
// snapshot and the value read are skipped.
func (s *Store) ArcRecs(lo, hi ids.ID, max int) ([]Rec, error) {
	var arc []ids.ID
	s.mu.RLock()
	s.forArcLocked(lo, hi, func(i int) bool {
		if len(arc) >= max {
			return false
		}
		arc = append(arc, s.keys[i])
		return true
	})
	s.mu.RUnlock()
	recs := make([]Rec, 0, len(arc))
	for _, key := range arc {
		value, ver, ok, err := s.Get(key)
		if err != nil {
			return recs, err
		}
		if !ok {
			continue
		}
		recs = append(recs, Rec{Key: key, Ver: ver, Value: value})
	}
	return recs, nil
}
