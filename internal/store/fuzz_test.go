package store

import (
	"bytes"
	"testing"

	"chordbalance/internal/ids"
)

// FuzzStoreRecord locks in the segment-record codec's safety contract:
//
//  1. Round trip: any record AppendRecord accepts decodes back to the
//     identical record, consuming exactly its own bytes.
//  2. Arbitrary bytes never panic DecodeRecord, and whatever it does
//     decode re-encodes to the identical bytes (the CRC makes a decode
//     of corrupt input vanishingly unlikely, but if the bytes check
//     out they ARE a canonical record).
//  3. Flipping any byte of a valid record makes it undecodable —
//     corruption is rejected, never misread (the replay-safety
//     property torn-tail recovery depends on).
func FuzzStoreRecord(f *testing.F) {
	seed, err := AppendRecord(nil, Rec{Key: ids.FromUint64(7), Ver: 3, Value: []byte("seed")})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed, uint64(1), []byte("value"), false, byte(0))
	f.Add([]byte{0, 0, 0, 33}, uint64(0), []byte{}, true, byte(9))

	f.Fuzz(func(t *testing.T, raw []byte, ver uint64, val []byte, tomb bool, flip byte) {
		// Direction 1: decoding arbitrary bytes must never panic, and a
		// successful decode must be canonical.
		if rec, n, err := DecodeRecord(raw); err == nil {
			re, err := AppendRecord(nil, rec)
			if err != nil {
				t.Fatalf("decoded record failed to re-encode: %v", err)
			}
			if !bytes.Equal(re, raw[:n]) {
				t.Fatalf("re-encode mismatch:\n in: %x\nout: %x", raw[:n], re)
			}
		}

		// Direction 2: structured round trip.
		if len(val) > MaxValueLen {
			val = val[:MaxValueLen]
		}
		in := Rec{Key: ids.FromBytes(raw), Ver: ver, Value: val}
		if tomb {
			in.Tombstone = true
			in.Value = nil
		}
		frame, err := AppendRecord(nil, in)
		if err != nil {
			t.Fatalf("encode of in-bounds record failed: %v", err)
		}
		out, n, err := DecodeRecord(frame)
		if err != nil {
			t.Fatalf("decode of encoded record failed: %v", err)
		}
		if n != len(frame) {
			t.Fatalf("consumed %d of %d bytes", n, len(frame))
		}
		if out.Key != in.Key || out.Ver != in.Ver || out.Tombstone != in.Tombstone ||
			!bytes.Equal(out.Value, in.Value) {
			t.Fatalf("round trip mismatch\n in: %+v\nout: %+v", in, out)
		}

		// Direction 3: single-byte corruption is always rejected. The
		// flipped byte position is fuzz-chosen; flipping the length
		// header may re-frame, but then the CRC covers the new frame's
		// body and fails (or the bytes run short).
		pos := int(flip) % len(frame)
		frame[pos] ^= 0xff
		if rec, _, err := DecodeRecord(frame); err == nil {
			t.Fatalf("corrupt record decoded at flip %d: %+v", pos, rec)
		}

		// Trailing concatenation: a record followed by junk still
		// decodes to exactly itself.
		frame[pos] ^= 0xff // restore
		cat := append(frame, 0xde, 0xad)
		out2, n2, err := DecodeRecord(cat)
		if err != nil || n2 != len(frame) || out2.Ver != in.Ver {
			t.Fatalf("concatenated decode: n=%d err=%v", n2, err)
		}
	})
}
