package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical outputs", same)
	}
}

func TestStreamsIndependent(t *testing.T) {
	s0, s1 := NewStream(7, 0), NewStream(7, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if s0.Uint64() == s1.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("streams 0 and 1 collided %d times", same)
	}
	// Same (seed, index) must reproduce.
	a, b := NewStream(7, 3), NewStream(7, 3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("stream reproduction failed")
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(5)
	for _, n := range []uint64{1, 2, 3, 10, 1 << 20, 1<<63 + 12345} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Uint64n(0) must panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestUint64nUniform(t *testing.T) {
	r := New(99)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestIntRange(t *testing.T) {
	r := New(11)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.IntRange(3, 7)
		if v < 3 || v > 7 {
			t.Fatalf("IntRange(3,7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Errorf("IntRange(3,7) covered %d values, want 5", len(seen))
	}
	if r.IntRange(4, 4) != 4 {
		t.Error("degenerate range must return its endpoint")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(13)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.005 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestBool(t *testing.T) {
	r := New(17)
	if r.Bool(0) {
		t.Error("Bool(0) must be false")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) must be true")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) rate = %v", p)
	}
}

func TestPerm(t *testing.T) {
	r := New(19)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(23)
	f := func(seed uint64) bool {
		rr := New(seed)
		xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
		rr.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
		seen := make([]bool, len(xs))
		for _, v := range xs {
			if v < 0 || v >= len(xs) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	_ = r
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(29)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(31)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatal("exponential variate negative")
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v", mean)
	}
}

func TestBinomialSmall(t *testing.T) {
	r := New(37)
	if r.Binomial(0, 0.5) != 0 || r.Binomial(10, 0) != 0 {
		t.Error("degenerate binomials must be 0")
	}
	if r.Binomial(10, 1) != 10 {
		t.Error("Binomial(n,1) must be n")
	}
	const n, trials = 20, 50000
	var sum float64
	for i := 0; i < trials; i++ {
		k := r.Binomial(n, 0.25)
		if k < 0 || k > n {
			t.Fatalf("Binomial out of range: %d", k)
		}
		sum += float64(k)
	}
	if mean := sum / trials; math.Abs(mean-5) > 0.1 {
		t.Errorf("Binomial(20,0.25) mean = %v, want ~5", mean)
	}
}

func TestBinomialLargeApproximation(t *testing.T) {
	r := New(41)
	const n, trials = 1000, 20000
	p := 0.01
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		k := float64(r.Binomial(n, p))
		sum += k
		sumSq += k * k
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	if math.Abs(mean-10) > 0.3 {
		t.Errorf("large binomial mean = %v, want ~10", mean)
	}
	if math.Abs(variance-9.9) > 1.5 {
		t.Errorf("large binomial variance = %v, want ~9.9", variance)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Float64()
	}
}
