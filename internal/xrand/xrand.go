// Package xrand provides small, fast, deterministic pseudo-random number
// generators for simulation work.
//
// The simulator runs hundreds of independent trials in parallel; each trial
// owns a private *Rand seeded from the trial index, so results are exactly
// reproducible regardless of goroutine scheduling. The generator is
// xoshiro256** seeded through SplitMix64, the standard recipe from
// Blackman & Vigna; it is not cryptographically secure and must never be
// used for anything but simulation.
package xrand

import (
	"math"
	"math/bits"
)

// splitMix64 advances the SplitMix64 state and returns the next output.
// It is used only to expand a single seed into the xoshiro state.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a xoshiro256** generator. It is not safe for concurrent use;
// give each goroutine its own instance (see NewStream).
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from a single 64-bit seed. Distinct seeds
// give statistically independent streams.
func New(seed uint64) *Rand {
	var r Rand
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// xoshiro requires a nonzero state; SplitMix64 output of any seed is
	// astronomically unlikely to be all zero, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

// NewStream derives an independent generator for substream i of the given
// base seed. Use it to give each parallel trial its own deterministic RNG.
// It is Split restricted to int stream indices and produces the identical
// stream: NewStream(seed, i) == Split(seed, uint64(i)).
func NewStream(seed uint64, i int) *Rand {
	return Split(seed, uint64(i))
}

// Split derives an independent generator for the given 64-bit stream ID
// of the base seed. Distinct (seed, streamID) pairs give statistically
// independent streams, and the derivation is a pure function of its
// arguments — the sharded tick engine hands shard s the stream
// Split(trialSeed, s) so per-shard randomness is reproducible regardless
// of how many shards run or on how many cores.
func Split(seed, streamID uint64) *Rand {
	return New(SplitSeed(seed, streamID))
}

// SplitSeed returns the derived 64-bit seed Split expands into a
// generator. Use it directly when a substream needs a plain seed (for
// example to parameterize a config) rather than a *Rand.
func SplitSeed(seed, streamID uint64) uint64 {
	// Mix the stream ID through SplitMix64 so that adjacent IDs do not
	// produce correlated xoshiro states.
	sm := seed
	_ = splitMix64(&sm)
	sm ^= 0x6a09e667f3bcc909 * (streamID + 1)
	return splitMix64(&sm)
}

// Uint64 returns the next 64 uniformly distributed bits. The rotates go
// through math/bits so they compile to single instructions and the whole
// generator fits the compiler's inlining budget — the simulator draws one
// Bernoulli variate per host per tick, so call overhead here is a
// measurable fraction of churn cost.
func (r *Rand) Uint64() uint64 {
	s1 := r.s[1]
	result := bits.RotateLeft64(s1*5, 7) * 9
	r.s[2] ^= r.s[0]
	r.s[3] ^= s1
	r.s[1] = s1 ^ r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= s1 << 17
	r.s[3] = bits.RotateLeft64(r.s[3], 45)
	return result
}

// Uint64n returns a uniform integer in [0, n). It panics if n == 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n(0)")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	thresh := -n % n
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= thresh {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	ahi, alo := a>>32, a&mask
	bhi, blo := b>>32, b&mask
	t := ahi*blo + (alo*blo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += alo * bhi
	hi = ahi*bhi + w2 + (w1 >> 32)
	lo = a * b
	return
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// IntRange returns a uniform int in [lo, hi] inclusive. It panics if
// hi < lo.
func (r *Rand) IntRange(lo, hi int) int {
	if hi < lo {
		panic("xrand: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function (Fisher-Yates).
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a standard normal variate via the polar
// (Marsaglia) method.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Binomial returns a draw from Binomial(n, p). For small n it sums
// Bernoulli trials; for large n it uses a normal approximation with
// continuity correction, which is accurate to well under one part in a
// thousand for the n*p regimes this simulator uses (churn arrivals).
func (r *Rand) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n <= 64 {
		k := 0
		for i := 0; i < n; i++ {
			if r.Float64() < p {
				k++
			}
		}
		return k
	}
	mean := float64(n) * p
	sd := math.Sqrt(mean * (1 - p))
	k := int(math.Round(mean + sd*r.NormFloat64()))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}
