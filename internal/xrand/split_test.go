package xrand

import (
	"math"
	"math/bits"
	"testing"
)

func TestSplitDeterministic(t *testing.T) {
	a, b := Split(42, 7), Split(42, 7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same (seed, streamID) diverged at step %d", i)
		}
	}
}

func TestSplitMatchesNewStream(t *testing.T) {
	// NewStream is documented as Split restricted to int indices; the two
	// must produce identical streams so existing trial seeding (and every
	// golden that depends on it) is unchanged by the Split API.
	for _, i := range []int{0, 1, 2, 17, 4095, -1} {
		a, b := NewStream(99, i), Split(99, uint64(i))
		for j := 0; j < 64; j++ {
			if a.Uint64() != b.Uint64() {
				t.Fatalf("NewStream(99,%d) != Split(99,%d) at step %d", i, i, j)
			}
		}
	}
}

// TestSplitSeedRegression pins the derivation so a refactor cannot
// silently change every sharded stream (which would invalidate any
// recorded result keyed by (seed, shard)).
func TestSplitSeedRegression(t *testing.T) {
	cases := []struct {
		seed, streamID, want uint64
	}{
		{0, 0, 0x0fb1000633e9ec55},
		{0, 1, 0xcfb5edaa17e9b94b},
		{12345, 0, 0x4aba3cab69d2870e},
		{12345, 7, 0xd523a95c5a1043c2},
		{0xdeadbeef, 1 << 40, 0x7e4076de4250b05d},
	}
	for _, c := range cases {
		if got := SplitSeed(c.seed, c.streamID); got != c.want {
			t.Errorf("SplitSeed(%#x, %#x) = %#x, want %#x", c.seed, c.streamID, got, c.want)
		}
	}
}

func TestSplitStreamsDistinct(t *testing.T) {
	const streams = 256
	seen := make(map[uint64]uint64, streams+1)
	seen[New(31337).Uint64()] = math.MaxUint64 // the parent stream itself
	for id := uint64(0); id < streams; id++ {
		v := Split(31337, id).Uint64()
		if prev, dup := seen[v]; dup {
			t.Fatalf("streams %d and %d share first output %#x", prev, id, v)
		}
		seen[v] = id
	}
}

// TestSplitBitBalance checks each derived stream is individually
// unbiased: over many draws the fraction of set bits must sit near 1/2.
func TestSplitBitBalance(t *testing.T) {
	const (
		streams = 64
		draws   = 256
	)
	for id := uint64(0); id < streams; id++ {
		r := Split(1, id)
		ones := 0
		for i := 0; i < draws; i++ {
			ones += bits.OnesCount64(r.Uint64())
		}
		n := float64(draws * 64)
		frac := float64(ones) / n
		// Binomial(n, 1/2): sd of the fraction is 1/(2*sqrt(n)); allow 5
		// sigma so the fixed-seed test never flakes.
		if sigma := 1 / (2 * math.Sqrt(n)); math.Abs(frac-0.5) > 5*sigma {
			t.Errorf("stream %d bit fraction %.4f deviates from 0.5", id, frac)
		}
	}
}

// TestSplitCrossCorrelation checks sibling streams are pairwise
// decorrelated: aligned outputs of adjacent stream IDs (the worst case
// for a weak derivation) must agree on about half their bits.
func TestSplitCrossCorrelation(t *testing.T) {
	const (
		pairs = 64
		draws = 128
	)
	for id := uint64(0); id < pairs; id++ {
		a, b := Split(777, id), Split(777, id+1)
		agree := 0
		for i := 0; i < draws; i++ {
			agree += bits.OnesCount64(^(a.Uint64() ^ b.Uint64()))
		}
		n := float64(draws * 64)
		frac := float64(agree) / n
		if sigma := 1 / (2 * math.Sqrt(n)); math.Abs(frac-0.5) > 5*sigma {
			t.Errorf("streams %d and %d agree on %.4f of bits", id, id+1, frac)
		}
	}
}

// TestSplitSeedSensitivity checks the derivation avalanches: flipping
// one bit of either input flips about half the output bits.
func TestSplitSeedSensitivity(t *testing.T) {
	base := SplitSeed(0x0123456789abcdef, 42)
	for bit := 0; bit < 64; bit++ {
		d1 := bits.OnesCount64(base ^ SplitSeed(0x0123456789abcdef^(1<<bit), 42))
		d2 := bits.OnesCount64(base ^ SplitSeed(0x0123456789abcdef, 42^(1<<uint(bit))))
		if d1 < 10 || d1 > 54 || d2 < 10 || d2 > 54 {
			t.Errorf("bit %d: weak avalanche (seed flip %d, stream flip %d changed bits)", bit, d1, d2)
		}
	}
}
