// Package bench is the repository's performance-trajectory harness: it
// runs a fixed set of the paper's workloads at fixed seeds, measures
// ns/tick, allocs/tick and total wall time, and serializes the results
// as JSON (`BENCH_<pr>.json` at the repo root). Each perf-focused PR
// records a baseline (the numbers before its change) and a current
// section (after), so the repo carries an auditable speed trajectory and
// CI can fail any change that regresses ns/tick beyond a tolerance —
// see docs/PERFORMANCE.md.
//
// The package is stdlib-only and never reads the wall clock itself: the
// caller (cmd/dhtbench) injects a monotonic Clock, which keeps
// internal/ free of wall-clock reads (the dhtlint nowallclock rule) and
// makes the harness unit-testable with a fake clock.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"

	"chordbalance/internal/faults"
	"chordbalance/internal/sim"
	"chordbalance/internal/strategy"
)

// Schema is the BENCH_*.json schema version; bump it when the shape of
// Report changes incompatibly.
const Schema = 1

// Clock returns monotonic nanoseconds since an arbitrary origin. The
// harness only ever subtracts two readings.
type Clock func() int64

// Workload is one named, fully deterministic benchmark configuration.
type Workload struct {
	Name string
	Desc string
	// Config builds the simulation config for one trial. It must return
	// a fresh strategy instance per call (strategies carry per-run state).
	Config func(seed uint64) sim.Config
	// Trials, when non-zero, overrides the caller's trial count for this
	// workload. The scale-* workloads use it so a whole-suite recording
	// pays one trial each for the big worlds while the PR 3 workloads
	// keep their historical three.
	Trials int
}

// mustStrategy resolves a strategy name, panicking on typos — workload
// definitions are compile-time constants in spirit.
func mustStrategy(name string) strategy.Strategy {
	s, ok := strategy.ByName(name)
	if !ok {
		panic(fmt.Sprintf("bench: unknown strategy %q", name))
	}
	return s
}

// Workloads returns the paper-derived benchmark suite, in reporting
// order. The names are stable identifiers: BENCH_*.json files and the CI
// regression gate match measurements by them.
func Workloads() []Workload {
	return []Workload{
		{
			Name: "table2-churn-10k",
			Desc: "Table II churn workload at 10k nodes: 100k tasks, churn 0.01, no strategy",
			Config: func(seed uint64) sim.Config {
				return sim.Config{Nodes: 10000, Tasks: 100000, ChurnRate: 0.01, Seed: seed}
			},
		},
		{
			Name: "baseline-1k",
			Desc: "Table I headline network: 1k nodes, 100k tasks, no churn, no strategy",
			Config: func(seed uint64) sim.Config {
				return sim.Config{Nodes: 1000, Tasks: 100000, Seed: seed}
			},
		},
		{
			Name: "random-1k",
			Desc: "§VI-B random injection: 1k nodes, 100k tasks",
			Config: func(seed uint64) sim.Config {
				return sim.Config{Nodes: 1000, Tasks: 100000,
					Strategy: mustStrategy("random"), Seed: seed}
			},
		},
		{
			Name: "neighbor-churn-1k",
			Desc: "§VI-C neighbor injection under churn: 1k nodes, 100k tasks, churn 0.001",
			Config: func(seed uint64) sim.Config {
				return sim.Config{Nodes: 1000, Tasks: 100000, ChurnRate: 0.001,
					Strategy: mustStrategy("neighbor"), Seed: seed}
			},
		},
		{
			Name: "oracle-1k",
			Desc: "global oracle upper bound: 1k nodes, 100k tasks (stresses the full-sort path)",
			Config: func(seed uint64) sim.Config {
				return sim.Config{Nodes: 1000, Tasks: 100000,
					Strategy: mustStrategy("oracle"), Seed: seed}
			},
		},
		{
			Name: "zipf-stream-1k",
			Desc: "Zipf-skewed streaming arrivals: 1k nodes, 20k+80k tasks at 2k/tick (stresses Seed)",
			Config: func(seed uint64) sim.Config {
				return sim.Config{Nodes: 1000, Tasks: 20000,
					StreamTasks: 80000, StreamRate: 2000,
					ZipfObjects: 2000, Strategy: mustStrategy("random"), Seed: seed}
			},
		},
		{
			Name: "crash-faults-1k",
			Desc: "crash-stop churn with replication: 1k nodes, 50k tasks, churn 0.01, crash bursts",
			Config: func(seed uint64) sim.Config {
				return sim.Config{Nodes: 1000, Tasks: 50000, ChurnRate: 0.01,
					Strategy: mustStrategy("random"), Seed: seed,
					Faults: faults.Plan{Seed: seed, CrashRate: 0.001,
						BurstEvery: 25, BurstSize: 2}}
			},
		},
		{
			Name: "scale-100k",
			Desc: "sharded tick engine at 100k hosts: 2M tasks, churn 0.001, random strategy, 8 shards",
			Config: func(seed uint64) sim.Config {
				return sim.Config{Nodes: 100000, Tasks: 2000000, ChurnRate: 0.001,
					Strategy: mustStrategy("random"), Seed: seed,
					Shards: 8, ShardWorkers: 0}
			},
			Trials: 1,
		},
		{
			Name: "scale-1m",
			Desc: "sharded tick engine at 1M hosts: 4M tasks, churn 0.0001, 8 shards",
			Config: func(seed uint64) sim.Config {
				return sim.Config{Nodes: 1000000, Tasks: 4000000, ChurnRate: 0.0001,
					Seed: seed, Shards: 8, ShardWorkers: 0}
			},
			Trials: 1,
		},
	}
}

// Filter returns the workloads whose names are listed in csv (comma
// separated); an empty csv keeps everything. Unknown names error rather
// than silently measuring nothing.
func Filter(ws []Workload, csv string) ([]Workload, error) {
	if csv == "" {
		return ws, nil
	}
	byName := make(map[string]Workload, len(ws))
	for _, w := range ws {
		byName[w.Name] = w
	}
	var out []Workload
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		w, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("bench: unknown workload %q", name)
		}
		out = append(out, w)
	}
	return out, nil
}

// TrialSeed derives the seed for one trial, mirroring the SplitMix64
// finalization used by internal/experiments so trials stay independent
// but reproducible. Exported so dhtbench's untimed -trace capture mode
// can replay exactly the seed a timed trial would use.
func TrialSeed(base uint64, trial int) uint64 {
	x := base ^ 0xbf58476d1ce4e5b9*uint64(trial+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return x
}

// Measurement is the result of running one workload for a number of
// trials. Ticks is exact and deterministic for a given (seed, trials)
// pair — the regression gate uses it as a free determinism check; the
// timing fields are machine-dependent.
type Measurement struct {
	Workload  string `json:"workload"`
	Trials    int    `json:"trials"`
	Seed      uint64 `json:"seed"`
	Ticks     int64  `json:"ticks"`
	Completed bool   `json:"completed"`
	// WallNs covers everything a caller pays per trial: construction
	// (ring build + key seeding) plus the tick loop. NsPerTick is WallNs
	// amortized over simulated ticks.
	WallNs        int64   `json:"wall_ns"`
	NsPerTick     float64 `json:"ns_per_tick"`
	AllocsPerTick float64 `json:"allocs_per_tick"`
	BytesPerTick  float64 `json:"bytes_per_tick"`
}

// Measure runs one workload trials times, serially, and aggregates the
// wall time and allocation deltas around the whole loop. A workload with
// its own Trials override wins over the caller's count.
func Measure(w Workload, trials int, seed uint64, clock Clock) (Measurement, error) {
	if w.Trials > 0 {
		trials = w.Trials
	}
	m := Measurement{Workload: w.Name, Trials: trials, Seed: seed, Completed: true}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := clock()
	for t := 0; t < trials; t++ {
		res, err := sim.Run(w.Config(TrialSeed(seed, t)))
		if err != nil {
			return m, fmt.Errorf("bench: workload %s trial %d: %w", w.Name, t, err)
		}
		m.Ticks += int64(res.Ticks)
		if !res.Completed {
			m.Completed = false
		}
	}
	m.WallNs = clock() - start
	runtime.ReadMemStats(&after)
	if m.Ticks > 0 {
		m.NsPerTick = float64(m.WallNs) / float64(m.Ticks)
		m.AllocsPerTick = float64(after.Mallocs-before.Mallocs) / float64(m.Ticks)
		m.BytesPerTick = float64(after.TotalAlloc-before.TotalAlloc) / float64(m.Ticks)
	}
	return m, nil
}

// RunAll measures every workload in order. progress may be nil.
func RunAll(ws []Workload, trials int, seed uint64, clock Clock, progress func(Measurement)) ([]Measurement, error) {
	out := make([]Measurement, 0, len(ws))
	for _, w := range ws {
		m, err := Measure(w, trials, seed, clock)
		if err != nil {
			return nil, err
		}
		if progress != nil {
			progress(m)
		}
		out = append(out, m)
	}
	return out, nil
}

// Report is the on-disk shape of a BENCH_*.json file. Baseline holds the
// measurements taken on the code *before* the PR's change (on the same
// machine, same trials and seed); Current holds the measurements after.
// Future PRs gate against Current.
type Report struct {
	Schema   int           `json:"schema"`
	Label    string        `json:"label,omitempty"`
	Baseline []Measurement `json:"baseline,omitempty"`
	Current  []Measurement `json:"current"`
}

// find returns the measurement for a workload name, if present.
func find(ms []Measurement, name string) (Measurement, bool) {
	for _, m := range ms {
		if m.Workload == name {
			return m, true
		}
	}
	return Measurement{}, false
}

// Speedup returns baseline ns/tick divided by current ns/tick for one
// workload (values > 1 mean the change made it faster), and false when
// either side is missing.
func (r Report) Speedup(name string) (float64, bool) {
	b, okB := find(r.Baseline, name)
	c, okC := find(r.Current, name)
	if !okB || !okC || c.NsPerTick == 0 {
		return 0, false
	}
	return b.NsPerTick / c.NsPerTick, true
}

// Read parses a Report and validates its schema.
func Read(r io.Reader) (Report, error) {
	var rep Report
	dec := json.NewDecoder(r)
	if err := dec.Decode(&rep); err != nil {
		return rep, fmt.Errorf("bench: parsing report: %w", err)
	}
	if rep.Schema != Schema {
		return rep, fmt.Errorf("bench: report schema %d, this binary speaks %d", rep.Schema, Schema)
	}
	return rep, nil
}

// Write serializes a Report as indented JSON.
func Write(w io.Writer, rep Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Gate compares fresh measurements against the committed report's
// Current section and returns an error describing every violation:
//
//   - a tick-count mismatch at matching (trials, seed) is a determinism
//     regression — the engine's behavior drifted; this check is exact
//     and machine-independent;
//   - a workload whose fresh/committed ns/tick ratio exceeds the
//     leave-one-out median ratio of the other gated workloads by more
//     than the tolerance is a performance regression. Normalizing by
//     the median cancels uniform machine-speed differences, so the gate
//     is meaningful on hardware other than the recording machine (CI);
//     what it cannot catch is a change that slows *every* workload by
//     the same factor — the committed trajectory in BENCH_*.json and a
//     local `make bench-gate` on the recording machine cover that.
//     With a single gated workload the ratio has no peers, and the gate
//     falls back to the absolute committed number.
//
// Workloads present on only one side are ignored (suites may grow).
func Gate(committed Report, fresh []Measurement, tolerance float64) error {
	type pair struct {
		f, c  Measurement
		ratio float64
	}
	var (
		violations []string
		pairs      []pair
	)
	for _, f := range fresh {
		c, ok := find(committed.Current, f.Workload)
		if !ok {
			continue
		}
		if c.Trials == f.Trials && c.Seed == f.Seed && c.Ticks != f.Ticks {
			violations = append(violations, fmt.Sprintf(
				"%s: tick count drifted (committed %d, measured %d) — determinism regression",
				f.Workload, c.Ticks, f.Ticks))
			continue
		}
		if c.NsPerTick > 0 {
			pairs = append(pairs, pair{f: f, c: c, ratio: f.NsPerTick / c.NsPerTick})
		}
	}
	for i, p := range pairs {
		// Median ratio of the *other* workloads: the machine-speed
		// estimate this workload must not disproportionately exceed.
		others := make([]float64, 0, len(pairs)-1)
		for j, q := range pairs {
			if j != i {
				others = append(others, q.ratio)
			}
		}
		norm := median(others)
		if len(others) == 0 {
			norm = 1 // no peers: gate against the absolute committed number
		}
		limit := norm * (1 + tolerance)
		if p.ratio > limit {
			violations = append(violations, fmt.Sprintf(
				"%s: ns/tick %.0f exceeds committed %.0f by more than %.0f%% beyond the suite's median speed ratio %.2f (ratio %.2f, limit %.2f)",
				p.f.Workload, p.f.NsPerTick, p.c.NsPerTick, tolerance*100, norm, p.ratio, limit))
		}
	}
	if len(violations) > 0 {
		return fmt.Errorf("bench: regression gate failed:\n  %s", strings.Join(violations, "\n  "))
	}
	return nil
}

// median returns the middle value of s (mean of the middle two for even
// lengths) without mutating it; 0 for an empty slice.
func median(s []float64) float64 {
	if len(s) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s...)
	sort.Float64s(sorted)
	if n := len(sorted); n%2 == 1 {
		return sorted[n/2]
	} else {
		return (sorted[n/2-1] + sorted[n/2]) / 2
	}
}
