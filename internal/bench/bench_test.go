package bench

import (
	"bytes"
	"strings"
	"testing"

	"chordbalance/internal/sim"
)

// fakeClock advances a fixed step per reading, making timing fields
// deterministic in tests.
func fakeClock(step int64) Clock {
	var now int64
	return func() int64 {
		now += step
		return now
	}
}

// tinyWorkload finishes in well under a second.
func tinyWorkload() Workload {
	return Workload{
		Name: "tiny",
		Desc: "test workload",
		Config: func(seed uint64) sim.Config {
			return sim.Config{Nodes: 20, Tasks: 400, Seed: seed}
		},
	}
}

func TestWorkloadsAreValidAndUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, w := range Workloads() {
		if seen[w.Name] {
			t.Errorf("duplicate workload name %q", w.Name)
		}
		seen[w.Name] = true
		if w.Desc == "" {
			t.Errorf("workload %q has no description", w.Name)
		}
		if err := w.Config(1).Validate(); err != nil {
			t.Errorf("workload %q config invalid: %v", w.Name, err)
		}
	}
	if len(seen) < 5 {
		t.Errorf("suite has only %d workloads", len(seen))
	}
}

func TestFilter(t *testing.T) {
	ws := Workloads()
	got, err := Filter(ws, "baseline-1k, random-1k")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "baseline-1k" || got[1].Name != "random-1k" {
		t.Fatalf("filter returned %+v", got)
	}
	if _, err := Filter(ws, "no-such-workload"); err == nil {
		t.Fatal("unknown workload name must error")
	}
	all, err := Filter(ws, "")
	if err != nil || len(all) != len(ws) {
		t.Fatalf("empty filter must keep everything: %v", err)
	}
}

func TestTrialSeedsDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		s := TrialSeed(7, i)
		if seen[s] {
			t.Fatalf("trial %d repeats seed %d", i, s)
		}
		seen[s] = true
	}
}

func TestMeasureDeterministicTicks(t *testing.T) {
	w := tinyWorkload()
	m1, err := Measure(w, 2, 5, fakeClock(1000))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Measure(w, 2, 5, fakeClock(999999))
	if err != nil {
		t.Fatal(err)
	}
	if m1.Ticks == 0 || m1.Ticks != m2.Ticks {
		t.Errorf("ticks not deterministic: %d vs %d", m1.Ticks, m2.Ticks)
	}
	if !m1.Completed {
		t.Error("tiny workload must complete")
	}
	if m1.WallNs != 1000 { // exactly one clock delta with the fake
		t.Errorf("wall = %d, want 1000", m1.WallNs)
	}
	if m1.NsPerTick <= 0 || m1.AllocsPerTick < 0 {
		t.Errorf("bad rates: %+v", m1)
	}
}

func TestRunAllOrderAndProgress(t *testing.T) {
	ws := []Workload{tinyWorkload(), {
		Name: "tiny2", Desc: "d",
		Config: func(seed uint64) sim.Config {
			return sim.Config{Nodes: 10, Tasks: 100, Seed: seed}
		},
	}}
	var names []string
	ms, err := RunAll(ws, 1, 1, fakeClock(10), func(m Measurement) { names = append(names, m.Workload) })
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0].Workload != "tiny" || ms[1].Workload != "tiny2" {
		t.Fatalf("order not preserved: %+v", ms)
	}
	if len(names) != 2 {
		t.Fatalf("progress called %d times", len(names))
	}
}

func TestReportRoundTripAndSpeedup(t *testing.T) {
	rep := Report{
		Schema: Schema,
		Label:  "pr3",
		Baseline: []Measurement{
			{Workload: "w", Trials: 1, Seed: 1, Ticks: 100, NsPerTick: 2000, Completed: true},
		},
		Current: []Measurement{
			{Workload: "w", Trials: 1, Seed: 1, Ticks: 100, NsPerTick: 500, Completed: true},
		},
	}
	var buf bytes.Buffer
	if err := Write(&buf, rep); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sp, ok := got.Speedup("w"); !ok || sp != 4 {
		t.Errorf("speedup = %v,%v want 4,true", sp, ok)
	}
	if _, ok := got.Speedup("missing"); ok {
		t.Error("speedup for missing workload must be !ok")
	}
	// Wrong schema must be rejected.
	bad := strings.NewReader(`{"schema": 999, "current": []}`)
	if _, err := Read(bad); err == nil {
		t.Error("wrong schema accepted")
	}
}

func TestGate(t *testing.T) {
	committed := Report{Schema: Schema, Current: []Measurement{
		{Workload: "w", Trials: 1, Seed: 1, Ticks: 100, NsPerTick: 1000},
	}}
	// Within tolerance: ok.
	if err := Gate(committed, []Measurement{
		{Workload: "w", Trials: 1, Seed: 1, Ticks: 100, NsPerTick: 1100},
	}, 0.15); err != nil {
		t.Errorf("within tolerance flagged: %v", err)
	}
	// Beyond tolerance: regression.
	err := Gate(committed, []Measurement{
		{Workload: "w", Trials: 1, Seed: 1, Ticks: 100, NsPerTick: 1200},
	}, 0.15)
	if err == nil || !strings.Contains(err.Error(), "exceeds committed") {
		t.Errorf("regression not flagged: %v", err)
	}
	// Tick drift at matching trials/seed: determinism regression.
	err = Gate(committed, []Measurement{
		{Workload: "w", Trials: 1, Seed: 1, Ticks: 101, NsPerTick: 500},
	}, 0.15)
	if err == nil || !strings.Contains(err.Error(), "determinism") {
		t.Errorf("tick drift not flagged: %v", err)
	}
	// Different trials: tick compare skipped, timing still gated.
	if err := Gate(committed, []Measurement{
		{Workload: "w", Trials: 3, Seed: 1, Ticks: 300, NsPerTick: 900},
	}, 0.15); err != nil {
		t.Errorf("trial-count mismatch must skip tick compare: %v", err)
	}
	// Unknown workload ignored.
	if err := Gate(committed, []Measurement{
		{Workload: "new", Trials: 1, Seed: 1, Ticks: 5, NsPerTick: 1e9},
	}, 0.15); err != nil {
		t.Errorf("unknown workload must be ignored: %v", err)
	}
}

// TestGateMachineSpeedNormalization pins the cross-machine behavior: a
// uniform slowdown (slower CI hardware) passes, while one workload
// regressing disproportionately to the suite's median speed ratio fails
// even though the machine as a whole is slower.
func TestGateMachineSpeedNormalization(t *testing.T) {
	committed := Report{Schema: Schema, Current: []Measurement{
		{Workload: "a", Trials: 1, Seed: 1, Ticks: 100, NsPerTick: 1000},
		{Workload: "b", Trials: 1, Seed: 1, Ticks: 100, NsPerTick: 2000},
		{Workload: "c", Trials: 1, Seed: 1, Ticks: 100, NsPerTick: 4000},
	}}
	// Everything uniformly 2.5x slower: no violation.
	if err := Gate(committed, []Measurement{
		{Workload: "a", Trials: 1, Seed: 1, Ticks: 100, NsPerTick: 2500},
		{Workload: "b", Trials: 1, Seed: 1, Ticks: 100, NsPerTick: 5000},
		{Workload: "c", Trials: 1, Seed: 1, Ticks: 100, NsPerTick: 10000},
	}, 0.15); err != nil {
		t.Errorf("uniform machine slowdown flagged: %v", err)
	}
	// Workload c regresses 2x beyond the others' ratio: violation, and
	// only for c.
	err := Gate(committed, []Measurement{
		{Workload: "a", Trials: 1, Seed: 1, Ticks: 100, NsPerTick: 2500},
		{Workload: "b", Trials: 1, Seed: 1, Ticks: 100, NsPerTick: 5000},
		{Workload: "c", Trials: 1, Seed: 1, Ticks: 100, NsPerTick: 20000},
	}, 0.15)
	if err == nil || !strings.Contains(err.Error(), "c: ns/tick") {
		t.Errorf("disproportionate regression not flagged: %v", err)
	}
	if err != nil && strings.Contains(err.Error(), "a: ns/tick") {
		t.Errorf("well-behaved workload flagged alongside: %v", err)
	}
	// On a *faster* machine a workload that merely held still is a
	// relative regression: everything at 0.5x except b at parity.
	err = Gate(committed, []Measurement{
		{Workload: "a", Trials: 1, Seed: 1, Ticks: 100, NsPerTick: 500},
		{Workload: "b", Trials: 1, Seed: 1, Ticks: 100, NsPerTick: 2000},
		{Workload: "c", Trials: 1, Seed: 1, Ticks: 100, NsPerTick: 2000},
	}, 0.15)
	if err == nil || !strings.Contains(err.Error(), "b: ns/tick") {
		t.Errorf("relative regression on faster machine not flagged: %v", err)
	}
}
