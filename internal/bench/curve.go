package bench

import (
	"fmt"
	"io"
	"runtime"

	"chordbalance/internal/sim"
	"chordbalance/internal/xrand"
)

// Scaling-curve mode: run the same workload at the same seeds while
// varying only ShardWorkers (the intra-trial goroutine cap), and report
// ns/tick per core count plus the speedup relative to the single-worker
// point. Because Config.ShardWorkers cannot affect any result byte, the
// tick totals must agree exactly across the whole curve — MeasureCurve
// enforces that, so every curve doubles as a shard-determinism check on
// the machine that ran it.

// CurvePoint is one (workload, cores) cell of a scaling curve.
type CurvePoint struct {
	Workload  string  `json:"workload"`
	Cores     int     `json:"cores"` // ShardWorkers for this point
	Trials    int     `json:"trials"`
	Seed      uint64  `json:"seed"`
	Ticks     int64   `json:"ticks"`
	WallNs    int64   `json:"wall_ns"`
	NsPerTick float64 `json:"ns_per_tick"`
	// Speedup is the 1-worker point's ns/tick divided by this point's;
	// values > 1 mean the extra cores helped.
	Speedup float64 `json:"speedup"`
}

// CurveReport is the on-disk shape of a scaling-curve JSON file.
type CurveReport struct {
	Schema int    `json:"schema"`
	Label  string `json:"label,omitempty"`
	// NumCPU records the host's core count: a curve measured on fewer
	// cores than a point requests says nothing about scaling there.
	NumCPU int          `json:"num_cpu"`
	Points []CurvePoint `json:"points"`
}

// MeasureCurve measures every workload at every core count in order,
// holding the trial seeds fixed so only the goroutine fan-out varies.
// Curve trials derive their seeds via xrand.SplitSeed — a distinct
// stream family from the measurement path's TrialSeed, so curve runs
// and recorded measurements never share trial streams. It errors if any
// workload's tick total varies across core counts (a shard-determinism
// regression) and if a workload does not complete. progress may be nil.
func MeasureCurve(ws []Workload, cores []int, trials int, seed uint64,
	clock Clock, progress func(CurvePoint)) (CurveReport, error) {
	rep := CurveReport{Schema: Schema, NumCPU: runtime.NumCPU()}
	if len(cores) == 0 {
		return rep, fmt.Errorf("bench: curve needs at least one core count")
	}
	for _, w := range ws {
		n := trials
		if w.Trials > 0 {
			n = w.Trials
		}
		var base CurvePoint
		for ci, c := range cores {
			if c <= 0 {
				return rep, fmt.Errorf("bench: curve core count %d must be positive", c)
			}
			p := CurvePoint{Workload: w.Name, Cores: c, Trials: n, Seed: seed}
			start := clock()
			for t := 0; t < n; t++ {
				cfg := w.Config(xrand.SplitSeed(seed, uint64(t)))
				if cfg.Shards <= 1 {
					// A serial workload has no shard phases to spread; give
					// it one shard per requested core so the curve measures
					// something.
					cfg.Shards = maxInt(cores)
				}
				cfg.ShardWorkers = c
				res, err := sim.Run(cfg)
				if err != nil {
					return rep, fmt.Errorf("bench: curve %s @%d cores trial %d: %w", w.Name, c, t, err)
				}
				if !res.Completed {
					return rep, fmt.Errorf("bench: curve %s @%d cores trial %d did not complete in %d ticks",
						w.Name, c, t, res.Ticks)
				}
				p.Ticks += int64(res.Ticks)
			}
			p.WallNs = clock() - start
			if p.Ticks > 0 {
				p.NsPerTick = float64(p.WallNs) / float64(p.Ticks)
			}
			if ci == 0 {
				base = p
			}
			if p.Ticks != base.Ticks {
				return rep, fmt.Errorf(
					"bench: curve %s: tick total drifted across core counts (%d @%d cores, %d @%d cores) — shard-determinism regression",
					w.Name, base.Ticks, base.Cores, p.Ticks, c)
			}
			if p.NsPerTick > 0 {
				p.Speedup = base.NsPerTick / p.NsPerTick
			}
			if progress != nil {
				progress(p)
			}
			rep.Points = append(rep.Points, p)
		}
	}
	return rep, nil
}

// Speedup returns the measured speedup for one (workload, cores) point,
// and false when the curve has no such point.
func (r CurveReport) Speedup(workload string, cores int) (float64, bool) {
	for _, p := range r.Points {
		if p.Workload == workload && p.Cores == cores {
			return p.Speedup, true
		}
	}
	return 0, false
}

// WriteCurveMarkdown renders the curve as a Markdown table per workload,
// suitable for committing next to the JSON report.
func WriteCurveMarkdown(w io.Writer, rep CurveReport) error {
	if _, err := fmt.Fprintf(w, "# Shard scaling curve\n\nLabel: %s · host cores: %d\n",
		orDash(rep.Label), rep.NumCPU); err != nil {
		return err
	}
	var last string
	for _, p := range rep.Points {
		if p.Workload != last {
			last = p.Workload
			if _, err := fmt.Fprintf(w,
				"\n## %s\n\n| cores | ns/tick | speedup | ticks | wall |\n|---:|---:|---:|---:|---:|\n",
				p.Workload); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "| %d | %.0f | %.2fx | %d | %.2fs |\n",
			p.Cores, p.NsPerTick, p.Speedup, p.Ticks, float64(p.WallNs)/1e9); err != nil {
			return err
		}
	}
	return nil
}

func orDash(s string) string {
	if s == "" {
		return "(none)"
	}
	return s
}

// maxInt returns the largest element of s; 0 for an empty slice.
func maxInt(s []int) int {
	m := 0
	for _, v := range s {
		if v > m {
			m = v
		}
	}
	return m
}
