package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrCheckLite flags call statements that silently drop an error result
// when the callee is module-local or from io/os — the call sites where a
// swallowed error means lost keys, truncated reports, or a sim that
// diverges without anyone noticing. Explicitly assigning to _ is an
// accepted, greppable opt-out; simply not looking is not. Test files are
// exempt (failures surface through the test itself).
func ErrCheckLite(modulePath string) *Rule {
	inScope := func(path string) bool {
		switch path {
		case "io", "os", modulePath:
			return true
		}
		return strings.HasPrefix(path, modulePath+"/")
	}
	return &Rule{
		Name: "errcheck-lite",
		Doc:  "flag dropped error results from module-local and io/os calls",
		Skip: func(relFile string, isTest bool) bool { return isTest },
		Check: func(pkg *Package, file *ast.File, report ReportFunc) {
			check := func(call *ast.CallExpr, how string) {
				fn := calleeFunc(pkg, call.Fun)
				if fn == nil || fn.Pkg() == nil || !inScope(fn.Pkg().Path()) {
					return
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok {
					return
				}
				for i := 0; i < sig.Results().Len(); i++ {
					if types.Identical(sig.Results().At(i).Type(), types.Universe.Lookup("error").Type()) {
						report(call, "%s drops the error returned by %s.%s; handle it or assign to _ explicitly", how, fn.Pkg().Name(), fn.Name())
						return
					}
				}
			}
			ast.Inspect(file, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.ExprStmt:
					if call, ok := st.X.(*ast.CallExpr); ok {
						check(call, "call statement")
					}
				case *ast.DeferStmt:
					check(st.Call, "deferred call")
				case *ast.GoStmt:
					check(st.Call, "go statement")
				}
				return true
			})
		},
	}
}
