package lint

import (
	"go/ast"
	"strings"
)

// wallClockFuncs are the time-package entry points that read or wait on
// the wall clock. time.Duration values and arithmetic are fine — only
// observing real time is a determinism hazard in simulation code.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// NoWallClock forbids wall-clock reads under internal/: the simulator's
// tick counter is the only clock, so results can never depend on host
// speed or scheduling. Exemptions: cmd/ (wall-clock progress reporting
// is fine there, see cmd/dhtsweep), examples/, test files (which may
// sleep to exercise real concurrency), internal/netchord — the
// networked runtime is deliberately real-time (deadlines, tickers,
// backoff sleeps are its whole point; see docs/NETWORK.md), and it is
// import-isolated from the simulator so the tick-only guarantee there
// is untouched — and internal/streamload, whose real-time Engine plays
// sessions against a wall clock by design (docs/STREAMING.md; its
// deterministic sibling RunVirtual takes no wall-clock reads either
// way). Other deliberate real-time components (internal/chord's Driver)
// must carry a //lint:ignore with a reason.
func NoWallClock() *Rule {
	return &Rule{
		Name: "nowallclock",
		Doc:  "forbid time.Now/Since/Sleep and timers under internal/; ticks are the only clock",
		Skip: func(relFile string, isTest bool) bool {
			return isTest || !strings.HasPrefix(relFile, "internal/") ||
				strings.HasPrefix(relFile, "internal/netchord/") ||
				strings.HasPrefix(relFile, "internal/streamload/")
		},
		Check: func(pkg *Package, file *ast.File, report ReportFunc) {
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				ident, ok := sel.X.(*ast.Ident)
				if !ok || !wallClockFuncs[sel.Sel.Name] {
					return true
				}
				if path, ok := importedPkgName(pkg, file, ident); ok && path == "time" {
					report(sel, "time.%s reads the wall clock: simulation code under internal/ must be driven by ticks only (docs/LINTING.md)", sel.Sel.Name)
				}
				return true
			})
		},
	}
}
