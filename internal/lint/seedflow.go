package lint

import (
	"go/ast"
	"go/types"
)

// SeedFlow polices how xrand generators are seeded. A seed must be
// derivable from the experiment description alone — constants, config
// fields, trial indices. Seeds laundered through pointer values
// (uintptr/unsafe conversions), map lengths, or the wall clock are
// allocation- or schedule-dependent and quietly destroy reproducibility
// while still "looking random". Split/SplitSeed stream derivations are
// held to the same standard on both arguments: a hazardous stream ID
// corrupts the derived stream exactly as a hazardous seed does.
func SeedFlow() *Rule {
	return &Rule{
		Name: "seedflow",
		Doc:  "flag xrand.New/NewStream/Split/SplitSeed inputs derived from pointer values, map lengths, or the wall clock",
		Check: func(pkg *Package, file *ast.File, report ReportFunc) {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name := xrandConstructor(pkg, call)
				if name == "" || len(call.Args) == 0 {
					return true
				}
				for _, arg := range call.Args {
					seedHazards(pkg, arg, func(node ast.Node, what string) {
						report(node, "xrand.%s seeded from %s; derive seeds from constants, config, or trial indices only", name, what)
					})
				}
				return true
			})
		},
	}
}

// xrandConstructor returns the function name when call constructs or
// seeds an xrand generator — New, NewStream, Split, or SplitSeed —
// (qualified or, inside the xrand package itself, unqualified), else "".
func xrandConstructor(pkg *Package, call *ast.CallExpr) string {
	fn := calleeFunc(pkg, call.Fun)
	if fn == nil || !pkgPathSuffix(fn.Pkg(), "xrand") {
		return ""
	}
	switch fn.Name() {
	case "New", "NewStream", "Split", "SplitSeed":
		return fn.Name()
	}
	return ""
}

// seedHazards walks a seed expression and reports each nondeterministic
// source it is built from.
func seedHazards(pkg *Package, seed ast.Expr, emit func(node ast.Node, what string)) {
	ast.Inspect(seed, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// len(m) on a map: data-structure-dependent, impossible to pin.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "len" && len(call.Args) == 1 {
			obj := pkg.Info.Uses[id]
			if _, isBuiltin := obj.(*types.Builtin); isBuiltin || obj == nil {
				if t := pkg.Info.TypeOf(call.Args[0]); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						emit(call, "the length of a map (data-dependent, drifts as the structure evolves)")
					}
				}
			}
		}
		// uintptr(...) / unsafe.Pointer(...) conversions: pointer identity
		// varies per allocation and per run.
		if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
			switch t := tv.Type.(type) {
			case *types.Basic:
				if t.Kind() == types.Uintptr || t.Kind() == types.UnsafePointer {
					emit(call, "a pointer value (allocation addresses differ every run)")
				}
			}
		}
		// time.* package-level calls: the wall clock. (Methods like
		// UnixNano are reached only through such a call, so flagging the
		// package function alone avoids double reports.)
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			fn := calleeFunc(pkg, call.Fun)
			if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
					emit(sel, "the wall clock (time."+fn.Name()+")")
				}
			}
		}
		return true
	})
}
