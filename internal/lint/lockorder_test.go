package lint

import (
	"strings"
	"testing"
)

func TestLockOrderDirectInversion(t *testing.T) {
	src := `package fixture

import "sync"

var muA sync.Mutex
var muB sync.Mutex

func first() {
	muA.Lock()
	muB.Lock()
	muB.Unlock()
	muA.Unlock()
}

func second() {
	muB.Lock()
	muA.Lock()
	muA.Unlock()
	muB.Unlock()
}
`
	got := checkFixture(t, LockOrder(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "lockorder", 10)
	if !strings.Contains(got[0].Message, "first") || !strings.Contains(got[0].Message, "second") {
		t.Errorf("inversion message must carry both witness paths, got: %s", got[0].Message)
	}
}

func TestLockOrderInterproceduralInversion(t *testing.T) {
	src := `package fixture

import "sync"

var muA sync.Mutex
var muB sync.Mutex

func lockB() {
	muB.Lock()
	muB.Unlock()
}

func aThenB() {
	muA.Lock()
	lockB()
	muA.Unlock()
}

func bThenA() {
	muB.Lock()
	muA.Lock()
	muA.Unlock()
	muB.Unlock()
}
`
	got := checkFixture(t, LockOrder(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "lockorder", 15)
	if !strings.Contains(got[0].Message, "lockB") {
		t.Errorf("interprocedural witness must name the callee, got: %s", got[0].Message)
	}
}

func TestLockOrderSelfReacquire(t *testing.T) {
	src := `package fixture

import "sync"

var mu sync.Mutex

func double() {
	mu.Lock()
	mu.Lock()
	mu.Unlock()
	mu.Unlock()
}

func lockIt() {
	mu.Lock()
	mu.Unlock()
}

func reenter() {
	mu.Lock()
	lockIt()
	mu.Unlock()
}
`
	got := checkFixture(t, LockOrder(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "lockorder", 9, 21)
}

func TestLockOrderConsistentOrderClean(t *testing.T) {
	src := `package fixture

import "sync"

var muA sync.Mutex
var muB sync.Mutex

func one() {
	muA.Lock()
	muB.Lock()
	muB.Unlock()
	muA.Unlock()
}

func two() {
	muA.Lock()
	muB.Lock()
	muB.Unlock()
	muA.Unlock()
}
`
	got := checkFixture(t, LockOrder(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "lockorder")
}

func TestLockOrderRespectsIgnore(t *testing.T) {
	src := `package fixture

import "sync"

var muA sync.Mutex
var muB sync.Mutex

func first() {
	muA.Lock()
	//lint:ignore lockorder documented exception for the fixture
	muB.Lock()
	muB.Unlock()
	muA.Unlock()
}

func second() {
	muB.Lock()
	muA.Lock()
	muA.Unlock()
	muB.Unlock()
}
`
	got := checkFixture(t, LockOrder(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "lockorder")
}
