package lint

import (
	"strings"
	"testing"
)

func TestLockOrderDirectInversion(t *testing.T) {
	src := `package fixture

import "sync"

var muA sync.Mutex
var muB sync.Mutex

func first() {
	muA.Lock()
	muB.Lock()
	muB.Unlock()
	muA.Unlock()
}

func second() {
	muB.Lock()
	muA.Lock()
	muA.Unlock()
	muB.Unlock()
}
`
	got := checkFixture(t, LockOrder(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "lockorder", 10)
	if !strings.Contains(got[0].Message, "first") || !strings.Contains(got[0].Message, "second") {
		t.Errorf("inversion message must carry both witness paths, got: %s", got[0].Message)
	}
}

func TestLockOrderInterproceduralInversion(t *testing.T) {
	src := `package fixture

import "sync"

var muA sync.Mutex
var muB sync.Mutex

func lockB() {
	muB.Lock()
	muB.Unlock()
}

func aThenB() {
	muA.Lock()
	lockB()
	muA.Unlock()
}

func bThenA() {
	muB.Lock()
	muA.Lock()
	muA.Unlock()
	muB.Unlock()
}
`
	got := checkFixture(t, LockOrder(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "lockorder", 15)
	if !strings.Contains(got[0].Message, "lockB") {
		t.Errorf("interprocedural witness must name the callee, got: %s", got[0].Message)
	}
}

func TestLockOrderSelfReacquire(t *testing.T) {
	src := `package fixture

import "sync"

var mu sync.Mutex

func double() {
	mu.Lock()
	mu.Lock()
	mu.Unlock()
	mu.Unlock()
}

func lockIt() {
	mu.Lock()
	mu.Unlock()
}

func reenter() {
	mu.Lock()
	lockIt()
	mu.Unlock()
}
`
	got := checkFixture(t, LockOrder(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "lockorder", 9, 21)
}

// TestLockOrderShardMergePhase models the sharded tick engine's
// phase/merge shape. The clean half mirrors the real engine: shard
// workers write disjoint per-shard scratch with no locks at all, and
// the merge runs strictly after the fan-out returns — nothing to flag.
// The dirty half is the design the engine deliberately avoids: shard
// workers taking a shared stats lock while the coordinator holds the
// engine lock, with the merge path acquiring the same pair inverted.
func TestLockOrderShardMergePhase(t *testing.T) {
	src := `package fixture

import "sync"

var engineMu sync.Mutex
var statsMu sync.Mutex

type shard struct{ consumed int }

// Clean: per-shard scratch, barrier, lock-free shard-order merge.
func tickSharded(shards []shard) int {
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			sh.consumed++
		}(&shards[i])
	}
	wg.Wait()
	total := 0
	for i := range shards {
		total += shards[i].consumed
	}
	return total
}

// Dirty: coordinator holds engineMu while shard work takes statsMu...
func tickLocked() {
	engineMu.Lock()
	statsMu.Lock()
	statsMu.Unlock()
	engineMu.Unlock()
}

// ...and the merge path acquires the same pair in the opposite order.
func mergeLocked() {
	statsMu.Lock()
	engineMu.Lock()
	engineMu.Unlock()
	statsMu.Unlock()
}
`
	got := checkFixture(t, LockOrder(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "lockorder", 31)
	if !strings.Contains(got[0].Message, "tickLocked") || !strings.Contains(got[0].Message, "mergeLocked") {
		t.Errorf("inversion message must carry both witness paths, got: %s", got[0].Message)
	}
}

func TestLockOrderConsistentOrderClean(t *testing.T) {
	src := `package fixture

import "sync"

var muA sync.Mutex
var muB sync.Mutex

func one() {
	muA.Lock()
	muB.Lock()
	muB.Unlock()
	muA.Unlock()
}

func two() {
	muA.Lock()
	muB.Lock()
	muB.Unlock()
	muA.Unlock()
}
`
	got := checkFixture(t, LockOrder(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "lockorder")
}

func TestLockOrderRespectsIgnore(t *testing.T) {
	src := `package fixture

import "sync"

var muA sync.Mutex
var muB sync.Mutex

func first() {
	muA.Lock()
	//lint:ignore lockorder documented exception for the fixture
	muB.Lock()
	muB.Unlock()
	muA.Unlock()
}

func second() {
	muB.Lock()
	muA.Lock()
	muA.Unlock()
	muB.Unlock()
}
`
	got := checkFixture(t, LockOrder(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "lockorder")
}
