package lint

import "go/ast"

// ChanOwnership enforces the close-by-owner discipline: close(ch) is
// only safe from the channel's owner, because a second close or a send
// after close panics, and only the owner can order those events. A
// function owns a channel it made with make, a channel field of its own
// method receiver, a package-level channel, or a send-only (chan<-)
// parameter — the producer-closes convention. Closing a bidirectional
// parameter, a field of some other value, or a call result is reported.
// The rule also reports sends on known-unbuffered channels while a
// mutex is held: the send cannot complete until a receiver runs, and a
// receiver that needs the lock never will.
func ChanOwnership() *Rule {
	return &Rule{
		Name: "chanownership",
		Doc:  "flag close() of channels the function does not own, and sends on unbuffered channels under a held lock",
		Skip: func(relFile string, isTest bool) bool { return isTest },
		Check: func(pkg *Package, file *ast.File, report ReportFunc) {
			an := pkg.lockInfo()
			fname := pkg.Fset.Position(file.Package).Filename
			for _, fi := range an.funcs {
				if fi.filename != fname {
					continue
				}
				for _, c := range fi.closes {
					if c.owned {
						continue
					}
					report(c.node, "%s closes %s, %s — only the owner (creator, receiver holder, or chan<- taker) may close",
						fi.name, c.what, c.why)
				}
				for _, sn := range fi.sends {
					report(sn.node, "%s sends on unbuffered channel %s while holding %s — the send blocks until a receiver runs, and a receiver needing the lock deadlocks",
						fi.name, sn.what, heldLabels(sn.held))
				}
			}
		},
	}
}
