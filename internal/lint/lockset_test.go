package lint

import "testing"

// TestFixpointTerminatesOnMutualRecursion is a regression test for the
// call-graph fixpoint: ping and pong form a strongly connected
// component, and the iteration over it must reach a fixed point (it
// would previously be an easy place to loop forever if facts were not
// monotone). The blocking fact must also propagate through the cycle,
// so the caller holding a lock across the call is flagged.
func TestFixpointTerminatesOnMutualRecursion(t *testing.T) {
	src := `package fixture

import "sync"

var mu sync.Mutex
var ch = make(chan int)

func ping(n int) {
	if n > 0 {
		pong(n - 1)
	}
	<-ch
}

func pong(n int) {
	if n > 0 {
		ping(n - 1)
	}
}

func useUnderLock() {
	mu.Lock()
	pong(3)
	mu.Unlock()
}
`
	got := checkFixture(t, LockHeld(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "lockheld", 23)
}

// TestFixpointPropagatesAcquiresThroughRecursion checks the transitive-
// acquisition side of the fixpoint: recB acquires muY only via the
// mutually recursive recA, and the inversion against inv2's direct
// muY→muX ordering must still surface.
func TestFixpointPropagatesAcquiresThroughRecursion(t *testing.T) {
	src := `package fixture

import "sync"

var muX sync.Mutex
var muY sync.Mutex

func recA(n int) {
	if n > 0 {
		recB(n - 1)
	}
	muY.Lock()
	muY.Unlock()
}

func recB(n int) {
	if n > 0 {
		recA(n - 1)
	}
}

func inv1() {
	muX.Lock()
	recB(2)
	muX.Unlock()
}

func inv2() {
	muY.Lock()
	muX.Lock()
	muX.Unlock()
	muY.Unlock()
}
`
	got := checkFixture(t, LockOrder(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "lockorder", 24)
}

func TestStaleSuppressionAudit(t *testing.T) {
	src := `package fixture

//lint:ignore norand nothing here draws randomness anymore
const answer = 42
`
	findings, stale := runFixture(t, []*Rule{NoRand()}, map[string]string{"internal/fix/a.go": src})
	if len(findings) != 0 {
		t.Fatalf("unexpected findings:\n%s", renderFindings(findings))
	}
	if len(stale) != 1 {
		t.Fatalf("got %d stale reports, want 1:\n%s", len(stale), renderFindings(stale))
	}
	if stale[0].Rule != "lint-stale" || stale[0].Pos.Line != 3 {
		t.Errorf("stale report = %s, want lint-stale at line 3", stale[0])
	}
}

func TestUsedSuppressionNotStale(t *testing.T) {
	src := `package fixture

//lint:ignore norand fixture exercises the suppression path
import _ "math/rand"
`
	findings, stale := runFixture(t, []*Rule{NoRand()}, map[string]string{"internal/fix/a.go": src})
	if len(findings) != 0 {
		t.Fatalf("unexpected findings:\n%s", renderFindings(findings))
	}
	if len(stale) != 0 {
		t.Fatalf("used directive reported stale:\n%s", renderFindings(stale))
	}
}
