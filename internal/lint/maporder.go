package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ringSimMutators are methods that mutate ring/simulation state; calling
// them once per map entry applies the mutations in nondeterministic
// order, which changes which node wins ties, which keys move first, and
// therefore every downstream number.
var ringSimMutators = map[string]bool{
	"Insert":         true,
	"Remove":         true,
	"Seed":           true,
	"Consume":        true,
	"ConsumeN":       true,
	"SetConsumeMode": true,
	"CreateSybil":    true,
	"DropSybils":     true,
	"SetAlive":       true,
	"CreatedSybil":   true,
	"DroppedSybil":   true,
}

// MapOrder flags `range` over a map whose body is order-sensitive:
// drawing from an RNG (the stream order becomes schedule-dependent),
// appending to a slice that outlives the loop (contents end up in map
// order), mutating ring/sim state, or writing output. Pure reductions
// (summing values, filling another map) are order-independent and pass.
func MapOrder() *Rule {
	return &Rule{
		Name: "maporder",
		Doc:  "flag order-sensitive bodies inside range-over-map (RNG draws, escaping appends, ring/sim mutation, output)",
		Skip: func(relFile string, isTest bool) bool { return isTest },
		Check: func(pkg *Package, file *ast.File, report ReportFunc) {
			var stack []ast.Node
			ast.Inspect(file, func(n ast.Node) bool {
				if n == nil {
					stack = stack[:len(stack)-1]
					return true
				}
				stack = append(stack, n)
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pkg.Info.TypeOf(rng.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if reason := mapOrderHazard(pkg, rng, enclosingFunc(stack)); reason != "" {
					report(rng, "range over map: %s — map iteration order is nondeterministic; iterate a sorted key slice instead", reason)
				}
				return true
			})
		},
	}
}

// enclosingFunc returns the innermost function declaration or literal on
// the traversal stack, or nil.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// mapOrderHazard scans the body of a range-over-map for the first
// order-sensitive operation and describes it. Empty string means clean.
// fn is the enclosing function, used to excuse the canonical
// gather-keys-then-sort idiom.
func mapOrderHazard(pkg *Package, rng *ast.RangeStmt, fn ast.Node) string {
	var reason string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isEscapingAppend(pkg, call, rng, fn):
			reason = "body appends to a slice that outlives the loop"
		case isRNGCall(pkg, call):
			reason = "body draws from an RNG, making the random stream order map-dependent"
		case isRingSimMutation(pkg, call):
			reason = "body mutates ring/sim state once per entry"
		case isOutputCall(pkg, call):
			reason = "body writes output once per entry"
		}
		return reason == ""
	})
	return reason
}

// isEscapingAppend reports append(x, ...) where x is rooted outside the
// range statement, so the slice's final element order follows map order.
// The canonical remediation — gather keys, then sort them — is excused:
// an append target that is later passed to a sorting call in the same
// function is order-insensitive by construction.
func isEscapingAppend(pkg *Package, call *ast.CallExpr, rng *ast.RangeStmt, fn ast.Node) bool {
	ident, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || ident.Name != "append" || len(call.Args) == 0 {
		return false
	}
	if obj := pkg.Info.Uses[ident]; obj != nil {
		if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
			return false // locally shadowed append
		}
	}
	switch target := ast.Unparen(call.Args[0]).(type) {
	case *ast.Ident:
		obj := pkg.Info.Uses[target]
		if obj == nil {
			return true // unresolved: be conservative
		}
		if obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End() {
			return false // declared inside the loop; dies with it
		}
		return !sortedAfter(pkg, obj, rng.End(), fn)
	case *ast.SelectorExpr, *ast.IndexExpr:
		return true // field or element of an outer structure
	}
	return false
}

// sortedAfter reports whether obj is passed to a sorting call after pos
// within fn: sort.* / slices.Sort* from the stdlib, or any local helper
// whose name starts with "sort" (e.g. sortIDs).
func sortedAfter(pkg *Package, obj types.Object, pos token.Pos, fn ast.Node) bool {
	if fn == nil {
		return false
	}
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= pos {
			return true
		}
		if !isSortingCall(pkg, call) {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isSortingCall recognizes stdlib sort/slices calls and sort-named local
// helpers.
func isSortingCall(pkg *Package, call *ast.CallExpr) bool {
	if fn := calleeFunc(pkg, call.Fun); fn != nil {
		if fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "sort", "slices":
				return true
			}
		}
		return strings.HasPrefix(strings.ToLower(fn.Name()), "sort")
	}
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return strings.HasPrefix(strings.ToLower(f.Name), "sort")
	case *ast.SelectorExpr:
		return strings.HasPrefix(strings.ToLower(f.Sel.Name), "sort")
	}
	return false
}

// isRNGCall reports a call that advances a random stream: a method on
// xrand.Rand or any function from the xrand package.
func isRNGCall(pkg *Package, call *ast.CallExpr) bool {
	if named := methodRecvNamed(pkg, call.Fun); named != nil {
		if named.Obj().Name() == "Rand" && pkgPathSuffix(named.Obj().Pkg(), "xrand") {
			return true
		}
	}
	if fn := calleeFunc(pkg, call.Fun); fn != nil && pkgPathSuffix(fn.Pkg(), "xrand") {
		return true
	}
	return false
}

// isRingSimMutation reports a known mutator method called on a type from
// the ring or sim packages.
func isRingSimMutation(pkg *Package, call *ast.CallExpr) bool {
	named := methodRecvNamed(pkg, call.Fun)
	if named == nil {
		return false
	}
	p := named.Obj().Pkg()
	if !pkgPathSuffix(p, "ring") && !pkgPathSuffix(p, "sim") {
		return false
	}
	sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ringSimMutators[sel.Sel.Name]
}

// isOutputCall reports writes whose emission order would follow map
// order: fmt print functions, io.WriteString, and Write* methods.
func isOutputCall(pkg *Package, call *ast.CallExpr) bool {
	if fn := calleeFunc(pkg, call.Fun); fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "fmt":
			if strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint") {
				return true
			}
		case "io":
			if fn.Name() == "WriteString" {
				return true
			}
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if methodRecvNamed(pkg, call.Fun) != nil || pkg.Info.Selections[sel] != nil {
			switch sel.Sel.Name {
			case "Write", "WriteString", "WriteByte", "WriteRune":
				return true
			}
		}
	}
	return false
}
