package lint

import "testing"

func TestGoroLeakFires(t *testing.T) {
	src := `package fixture

import "sync"

type g struct {
	mu sync.Mutex
	ch chan int
}

func (s *g) underLock() {
	s.mu.Lock()
	go s.once()
	s.mu.Unlock()
}

func (s *g) once() {
	<-s.ch
}

func (s *g) leakyLit() {
	go func() {
		for {
			<-s.ch
		}
	}()
}

func (s *g) drain() {
	for {
		<-s.ch
	}
}

func (s *g) leakyNamed() {
	go s.drain()
}
`
	got := checkFixture(t, GoroLeak(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "goroleak", 12, 21, 35)
}

func TestGoroLeakCleanPatterns(t *testing.T) {
	src := `package fixture

import "sync"

type w struct {
	wg   sync.WaitGroup
	ch   chan int
	stop chan struct{}
}

func (s *w) okDone() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			<-s.ch
		}
	}()
}

func (s *w) okSelectStop() {
	go func() {
		for {
			select {
			case <-s.stop:
				return
			case <-s.ch:
			}
		}
	}()
}

func (s *w) okStopParam() {
	go pump(s.ch, s.stop)
}

func pump(ch chan int, stop chan struct{}) {
	for {
		<-ch
	}
}

func (s *w) okDeferClose(done chan struct{}) {
	go func() {
		defer close(done)
		for {
			<-s.ch
		}
	}()
}

func (s *w) okRange() {
	go func() {
		for v := range s.ch {
			_ = v
		}
	}()
}

func (s *w) okBounded() {
	go func() {
		s.ch <- 1
	}()
}

func (s *w) okAfterUnlock(mu *sync.Mutex) {
	mu.Lock()
	mu.Unlock()
	go func() {
		<-s.ch
	}()
}
`
	got := checkFixture(t, GoroLeak(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "goroleak")
}

func TestGoroLeakRespectsIgnore(t *testing.T) {
	src := `package fixture

type d struct {
	ch chan int
}

func (s *d) forever() {
	//lint:ignore goroleak drains for the process lifetime by design
	go func() {
		for {
			<-s.ch
		}
	}()
}
`
	got := checkFixture(t, GoroLeak(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "goroleak")
}
