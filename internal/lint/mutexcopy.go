package lint

import (
	"go/ast"
	"go/types"
)

// lockTypes are the sync types whose by-value copy silently forks their
// internal state: a copied mutex can be unlocked while the original is
// held, and a copied WaitGroup's counter diverges.
var lockTypes = map[string]bool{
	"Mutex":     true,
	"RWMutex":   true,
	"WaitGroup": true,
	"Once":      true,
	"Cond":      true,
}

// MutexCopy flags by-value copies of values whose type (transitively,
// through struct fields and arrays) contains a sync.Mutex, sync.RWMutex,
// sync.WaitGroup, sync.Once, or sync.Cond: assignments, var
// initializers, returns, and range value variables. Taking a pointer or
// constructing a fresh composite literal is fine; copying an existing
// value is not.
func MutexCopy() *Rule {
	return &Rule{
		Name: "mutexcopy",
		Doc:  "flag by-value copies of types containing sync.Mutex/RWMutex/WaitGroup/Once/Cond",
		Check: func(pkg *Package, file *ast.File, report ReportFunc) {
			seen := make(map[types.Type]bool)
			flag := func(expr ast.Expr, context string) {
				if !denotesExistingValue(pkg, expr) {
					return
				}
				t := pkg.Info.TypeOf(expr)
				if lock := lockPath(t, seen); lock != "" {
					report(expr, "%s copies %s, which contains %s; use a pointer", context, types.TypeString(t, nil), lock)
				}
			}
			ast.Inspect(file, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.AssignStmt:
					for i, rhs := range st.Rhs {
						// Assigning to _ discards the copy; harmless.
						if len(st.Lhs) == len(st.Rhs) && isBlank(st.Lhs[i]) {
							continue
						}
						flag(rhs, "assignment")
					}
				case *ast.ValueSpec:
					for _, v := range st.Values {
						flag(v, "variable initialization")
					}
				case *ast.ReturnStmt:
					for _, res := range st.Results {
						flag(res, "return")
					}
				case *ast.RangeStmt:
					if st.Value == nil || isBlank(st.Value) {
						return true
					}
					if elem := rangeElemType(pkg.Info.TypeOf(st.X)); elem != nil {
						if lock := lockPath(elem, seen); lock != "" {
							report(st.Value, "range value copies %s, which contains %s; range over indices or pointers", types.TypeString(elem, nil), lock)
						}
					}
				}
				return true
			})
		},
	}
}

func isBlank(expr ast.Expr) bool {
	id, ok := expr.(*ast.Ident)
	return ok && id.Name == "_"
}

// denotesExistingValue reports whether expr names an already-live value
// (so evaluating it copies): identifiers, field selections, derefs, and
// index expressions. Calls, conversions, and composite literals produce
// fresh values and pass.
func denotesExistingValue(pkg *Package, expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		_, isVar := pkg.Info.Uses[e].(*types.Var)
		return isVar
	case *ast.SelectorExpr:
		if s := pkg.Info.Selections[e]; s != nil {
			return s.Kind() == types.FieldVal
		}
		_, isVar := pkg.Info.Uses[e.Sel].(*types.Var)
		return isVar
	case *ast.StarExpr:
		return true
	case *ast.IndexExpr:
		// Indexing a map/slice/array yields a stored value; a generic
		// instantiation does not.
		t := pkg.Info.TypeOf(e.X)
		if t == nil {
			return false
		}
		switch t.Underlying().(type) {
		case *types.Map, *types.Slice, *types.Array, *types.Pointer:
			return true
		}
	}
	return false
}

// rangeElemType returns the per-iteration value type of ranging over t.
func rangeElemType(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return u.Elem()
	case *types.Array:
		return u.Elem()
	case *types.Map:
		return u.Elem()
	case *types.Pointer:
		if arr, ok := u.Elem().Underlying().(*types.Array); ok {
			return arr.Elem()
		}
	}
	return nil
}

// lockPath reports the sync type t transitively contains ("" if none),
// e.g. "sync.Mutex (via field mu)".
func lockPath(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	defer delete(seen, t)
	switch u := t.(type) {
	case *types.Named:
		obj := u.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && lockTypes[obj.Name()] {
			return "sync." + obj.Name()
		}
		return lockPath(u.Underlying(), seen)
	case *types.Alias:
		return lockPath(types.Unalias(u), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if lock := lockPath(f.Type(), seen); lock != "" {
				return lock + " (via field " + f.Name() + ")"
			}
		}
	case *types.Array:
		return lockPath(u.Elem(), seen)
	}
	return ""
}
