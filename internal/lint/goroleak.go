package lint

import "go/ast"

// GoroLeak reports two goroutine-hygiene hazards at `go` statements.
// First, launching a goroutine while holding a mutex: the goroutine
// inherits nothing, but the launch order suggests the author thought it
// did, and the new goroutine racing for the same lock is a classic
// source of startup nondeterminism. Second, goroutines with no visible
// termination path: the body (a literal, or a statically resolved
// package-local function) loops forever — a `for {}` with no reachable
// return, goto, panic, or loop-level break — and none of the recognized
// termination signals are present: a sync.WaitGroup.Done call, a
// deferred close of a channel, or a context/channel parameter acting as
// a stop signal. Dynamic targets (function values, cross-package calls)
// are skipped; see docs/LINTING.md for the false-negative list.
func GoroLeak() *Rule {
	return &Rule{
		Name: "goroleak",
		Doc:  "flag goroutines launched under a held lock and goroutines with no visible termination path",
		Skip: func(relFile string, isTest bool) bool { return isTest },
		Check: func(pkg *Package, file *ast.File, report ReportFunc) {
			an := pkg.lockInfo()
			fname := pkg.Fset.Position(file.Package).Filename
			for _, fi := range an.funcs {
				if fi.filename != fname {
					continue
				}
				for _, gs := range fi.gos {
					if len(gs.held) > 0 {
						report(gs.node, "%s launches a goroutine while holding %s — launch after releasing the lock, or the new goroutine races for it",
							fi.name, heldLabels(gs.held))
					}
					t := gs.target
					if t == nil {
						continue // dynamic target: cannot see the body
					}
					if t.endlessFor && !t.callsDone && !t.defersSignal && !t.stopParam {
						report(gs.node, "goroutine %s loops forever with no visible termination path (no WaitGroup.Done, no deferred close, no stop-channel or context parameter)",
							t.name)
					}
				}
			}
		},
	}
}
