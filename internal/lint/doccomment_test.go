package lint

import "testing"

func TestDocCommentExportedIdentifiers(t *testing.T) {
	src := `// Package fixture is documented.
package fixture

func Exported() {}

// Documented has a doc comment.
func Documented() {}

func unexported() {}

type Widget struct{}

// Gear is documented.
type Gear struct{}

func (w Widget) Spin() {}

// Turn is documented.
func (w Widget) Turn() {}

type hidden struct{}

func (h hidden) Visible() {} // method on unexported type: exempt

const Limit = 10

var Registry = 1

// Grouped blocks are covered by the block comment.
const (
	A = 1
	B = 2
)

var (
	C = 3 // trailing comments document single specs
	d = 4
)
`
	got := checkFixture(t, DocComment(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "doccomment", 4, 11, 16, 25, 27)
}

func TestDocCommentMissingPackageComment(t *testing.T) {
	srcA := `package fixture

// Documented is fine; only the package clause is flagged.
func Documented() {}
`
	srcB := `package fixture

// Also is fine.
func Also() {}
`
	got := checkFixture(t, DocComment(), map[string]string{
		"internal/fix/a.go": srcA,
		"internal/fix/b.go": srcB,
	})
	// Exactly one finding, anchored on the first file's package clause.
	wantFindings(t, got, "doccomment", 1)
	if got[0].Pos.Filename != "internal/fix/a.go" {
		t.Errorf("package finding anchored at %s, want internal/fix/a.go", got[0].Pos.Filename)
	}
}

func TestDocCommentPackageCommentAnywhere(t *testing.T) {
	srcA := `package fixture
`
	srcB := `// Package fixture is documented here, in its second file.
package fixture
`
	got := checkFixture(t, DocComment(), map[string]string{
		"internal/fix/a.go": srcA,
		"internal/fix/b.go": srcB,
	})
	wantFindings(t, got, "doccomment")
}

func TestDocCommentSkipsTests(t *testing.T) {
	src := `package fixture

func ExportedHelper(t int) {}
`
	got := checkFixture(t, DocComment(), map[string]string{"internal/fix/a_test.go": src})
	wantFindings(t, got, "doccomment")
}

func TestDocCommentSuppression(t *testing.T) {
	src := `// Package fixture is documented.
package fixture

//lint:ignore doccomment fixture exercises the suppression path
func Exported() {}
`
	got := checkFixture(t, DocComment(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "doccomment")
}
