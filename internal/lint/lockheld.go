package lint

import (
	"go/ast"
	"strings"
)

// LockHeld reports mutexes held across operations that can block the
// goroutine — channel sends and receives, selects without a default
// clause, sync.WaitGroup.Wait, timer waits, dials, and connection I/O —
// whether the blocking operation is in the function itself or reached
// through a chain of (package-local, statically resolved) callees. A
// goroutine that blocks while holding a lock stalls every goroutine
// that needs that lock; when the blocked operation itself needs a
// lock-holder to make progress (an RPC served by a handler that takes
// the same lock), it deadlocks. See docs/LINTING.md for the analysis
// model and its limits.
func LockHeld() *Rule {
	return &Rule{
		Name: "lockheld",
		Doc:  "forbid holding a mutex across blocking ops (channel ops, select, WaitGroup.Wait, timers, connection I/O), directly or via callees",
		Skip: func(relFile string, isTest bool) bool { return isTest },
		Check: func(pkg *Package, file *ast.File, report ReportFunc) {
			an := pkg.lockInfo()
			fname := pkg.Fset.Position(file.Package).Filename
			for _, fi := range an.funcs {
				if fi.filename != fname {
					continue
				}
				for _, b := range fi.blocks {
					if len(b.held) == 0 {
						continue
					}
					report(b.node, "%s holds %s across %s — a goroutine that needs the lock to let this complete deadlocks",
						fi.name, heldLabels(b.held), b.desc)
				}
				for _, cs := range fi.calls {
					if len(cs.held) == 0 || cs.extBlock != "" {
						continue // extBlock sites are already reported as block sites above
					}
					if cs.target == nil || !cs.target.mayBlock {
						continue
					}
					report(cs.node, "%s holds %s across a call to %s, which blocks: %s",
						fi.name, heldLabels(cs.held), cs.target.name, cs.target.blockWhy)
				}
			}
		},
	}
}

// heldLabels renders a held lockset for messages ("Node.mu" or
// "Node.mu+Host.mu").
func heldLabels(held []lockKey) string {
	labels := make([]string, len(held))
	for i, k := range held {
		labels[i] = k.label
	}
	return strings.Join(labels, "+")
}
