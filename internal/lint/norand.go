package lint

import (
	"go/ast"
	"strings"
)

// forbiddenRandImports lists randomness sources that break seed-stable
// reproduction. math/rand's global stream is shared across goroutines
// (schedule-dependent) and crypto/rand is unseedable by design; every
// simulation draw must flow through internal/xrand's per-trial streams.
var forbiddenRandImports = map[string]string{
	"math/rand":    "math/rand is not seed-stable across goroutines",
	"math/rand/v2": "math/rand/v2 is not seed-stable across goroutines",
	"crypto/rand":  "crypto/rand is unseedable and never reproducible",
}

// NoRand forbids importing math/rand (v1 and v2) and crypto/rand
// anywhere in the module. Exemption: fuzz harnesses (*fuzz_test.go),
// whose inputs come from the fuzzing engine and may legitimately mix in
// stdlib randomness.
func NoRand() *Rule {
	return &Rule{
		Name: "norand",
		Doc:  "forbid math/rand and crypto/rand; simulation randomness must come from internal/xrand",
		Skip: func(relFile string, isTest bool) bool {
			// Fuzz harnesses only; ordinary tests must be seed-stable too.
			return strings.HasSuffix(relFile, "fuzz_test.go")
		},
		Check: func(pkg *Package, file *ast.File, report ReportFunc) {
			for _, imp := range file.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if why, bad := forbiddenRandImports[path]; bad {
					report(imp, "import of %s: %s; use internal/xrand so trials stay reproducible", path, why)
				}
			}
		},
	}
}
