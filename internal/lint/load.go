package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks packages of one module using only the
// standard library: module-local imports are resolved recursively from
// the module tree, everything else is delegated to the stdlib source
// importer. Type errors never abort a load — rules run over whatever
// information resolved, so the linter stays useful on a tree that is
// mid-refactor — but they are recorded on the Package for diagnosis.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string
	ModulePath string

	std     types.Importer
	exports map[string]*types.Package
	loading map[string]bool
}

// NewLoader builds a loader for the module rooted at moduleRoot with the
// given module path (the `module` line of go.mod).
func NewLoader(moduleRoot, modulePath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleRoot: moduleRoot,
		ModulePath: modulePath,
		std:        importer.ForCompiler(fset, "source", nil),
		exports:    make(map[string]*types.Package),
		loading:    make(map[string]bool),
	}
}

// FindModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func FindModule(dir string) (root, modulePath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(abs, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return abs, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", abs)
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		abs = parent
	}
}

// Import implements types.Importer: module-local paths load from source
// under ModuleRoot, everything else (the standard library) goes through
// the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		return l.importModule(path)
	}
	return l.std.Import(path)
}

// importModule type-checks the export view (non-test files) of a
// module-local package, caching the result.
func (l *Loader) importModule(path string) (*types.Package, error) {
	if pkg, ok := l.exports[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
	files, err := l.parseDir(dir, func(name string) bool {
		return !strings.HasSuffix(name, "_test.go")
	})
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	conf := types.Config{Importer: l, Error: func(error) {}}
	pkg, _ := conf.Check(path, l.Fset, files, nil)
	if pkg == nil {
		return nil, fmt.Errorf("lint: type-checking %s produced no package", path)
	}
	l.exports[path] = pkg
	return pkg, nil
}

// parseDir parses every .go file in dir accepted by keep, in sorted
// order so diagnostics are deterministic.
func (l *Loader) parseDir(dir string, keep func(name string) bool) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || !keep(e.Name()) {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// newInfo allocates the types.Info maps the rules consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// check type-checks one lint unit (a set of parsed files forming a
// single package), tolerating type errors.
func (l *Loader) check(path string, files []*ast.File) *Package {
	pkg := &Package{
		Path:  path,
		Fset:  l.Fset,
		Files: files,
		Info:  newInfo(),
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, pkg.Info)
	pkg.Types = tpkg
	return pkg
}

// LoadDir parses and type-checks the package in dir, returning one lint
// unit for the package (non-test plus in-package test files) and, when
// present, a second unit for the external _test package.
func (l *Loader) LoadDir(dir string) ([]*Package, error) {
	files, err := l.parseDir(dir, func(string) bool { return true })
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, nil
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil {
		return nil, err
	}
	importPath := l.ModulePath
	if rel != "." {
		importPath = l.ModulePath + "/" + filepath.ToSlash(rel)
	}

	// Split into the base package and an external test package (pkg_test).
	byName := make(map[string][]*ast.File)
	var nameOrder []string
	for _, f := range files {
		name := f.Name.Name
		if _, seen := byName[name]; !seen {
			nameOrder = append(nameOrder, name)
		}
		byName[name] = append(byName[name], f)
	}
	sort.Slice(nameOrder, func(i, j int) bool {
		// Base package first, external test package second.
		return !strings.HasSuffix(nameOrder[i], "_test")
	})
	var out []*Package
	for _, name := range nameOrder {
		path := importPath
		if strings.HasSuffix(name, "_test") {
			path += "_test"
		}
		out = append(out, l.check(path, byName[name]))
	}
	return out, nil
}

// CheckSource type-checks in-memory sources (filename -> content) as a
// single package. It exists for fixture-driven rule tests; the synthetic
// filenames are used verbatim as the "module-relative" paths the rules'
// exemption logic sees.
func (l *Loader) CheckSource(importPath string, sources map[string]string) (*Package, error) {
	var names []string
	for name := range sources {
		names = append(names, name)
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, name, sources[name], parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return l.check(importPath, files), nil
}
