package lint

import "testing"

func TestSeedFlowMapLength(t *testing.T) {
	src := `package fixture

import "chordbalance/internal/xrand"

func f(m map[int]bool) *xrand.Rand {
	return xrand.New(uint64(len(m)))
}
`
	got := checkFixture(t, SeedFlow(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "seedflow", 6)
}

func TestSeedFlowPointerValue(t *testing.T) {
	src := `package fixture

import (
	"unsafe"

	"chordbalance/internal/xrand"
)

func f(p *int) *xrand.Rand {
	return xrand.New(uint64(uintptr(unsafe.Pointer(p))))
}
`
	got := checkFixture(t, SeedFlow(), map[string]string{"internal/fix/a.go": src})
	if len(got) < 1 {
		t.Fatalf("want at least one seedflow finding, got:\n%s", renderFindings(got))
	}
	for _, f := range got {
		if f.Rule != "seedflow" || f.Pos.Line != 10 {
			t.Errorf("unexpected finding: %s", f)
		}
	}
}

func TestSeedFlowWallClock(t *testing.T) {
	src := `package fixture

import (
	"time"

	"chordbalance/internal/xrand"
)

func f() *xrand.Rand {
	return xrand.New(uint64(time.Now().UnixNano()))
}
`
	got := checkFixture(t, SeedFlow(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "seedflow", 10)
}

func TestSeedFlowNewStream(t *testing.T) {
	src := `package fixture

import "chordbalance/internal/xrand"

func f(m map[int]int, i int) *xrand.Rand {
	return xrand.NewStream(uint64(len(m)), i)
}
`
	got := checkFixture(t, SeedFlow(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "seedflow", 6)
}

func TestSeedFlowSplitHazardousSeed(t *testing.T) {
	src := `package fixture

import "chordbalance/internal/xrand"

func f(m map[int]bool, shard uint64) *xrand.Rand {
	return xrand.Split(uint64(len(m)), shard)
}
`
	got := checkFixture(t, SeedFlow(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "seedflow", 6)
}

func TestSeedFlowSplitHazardousStreamID(t *testing.T) {
	// The stream ID is the second half of the derivation: a
	// schedule-dependent ID corrupts the derived stream just as surely as
	// a bad seed, so both arguments are checked.
	src := `package fixture

import (
	"time"

	"chordbalance/internal/xrand"
)

func f(seed uint64) uint64 {
	return xrand.SplitSeed(seed, uint64(time.Now().UnixNano()))
}
`
	got := checkFixture(t, SeedFlow(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "seedflow", 10)
}

func TestSeedFlowCleanSeeds(t *testing.T) {
	src := `package fixture

import "chordbalance/internal/xrand"

const base = 0x9e3779b97f4a7c15

type cfg struct{ Seed uint64 }

func f(c cfg, trial int, shard uint64, ks []int) *xrand.Rand {
	_ = xrand.New(1)
	_ = xrand.New(c.Seed ^ base)
	_ = xrand.NewStream(c.Seed, trial)
	_ = xrand.Split(c.Seed, shard)
	_ = xrand.SplitSeed(c.Seed, uint64(trial))
	// len of a slice is deterministic and allowed.
	return xrand.New(uint64(len(ks)))
}
`
	got := checkFixture(t, SeedFlow(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "seedflow")
}

func TestSeedFlowRespectsIgnore(t *testing.T) {
	src := `package fixture

import "chordbalance/internal/xrand"

func f(m map[int]bool) *xrand.Rand {
	//lint:ignore seedflow documented: this generator is non-reproducible on purpose
	return xrand.New(uint64(len(m)))
}
`
	got := checkFixture(t, SeedFlow(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "seedflow")
}
