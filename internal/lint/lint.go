// Package lint is a stdlib-only static-analysis framework enforcing the
// determinism and concurrency discipline this reproduction depends on:
// every trial must be exactly reproducible from its seed, regardless of
// goroutine scheduling, worker count, or map iteration order.
//
// It is built on go/ast, go/parser, go/token, and go/types alone — no
// golang.org/x/tools — preserving the repository's no-external-deps
// constraint. Rules are registered by name, carry per-path exemption
// logic, and individual findings can be suppressed with a
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// comment on the offending line or on the line directly above it. The
// reason is mandatory: a suppression without a documented reason is
// itself reported. See docs/LINTING.md for the rule catalog.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one diagnostic, rendered as "file:line:col [rule] message".
type Finding struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the finding in the canonical file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Message)
}

// Package is one type-checked lint unit.
type Package struct {
	// Path is the unit's import path ("chordbalance/internal/sim";
	// external test packages carry a "_test" suffix).
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checker diagnostics. Rules still run on
	// partial information; the driver can surface these for debugging.
	TypeErrors []error

	// lockan caches the package-wide lockset/call-graph analysis shared
	// by the concurrency rules (see lockset.go).
	lockan *lockAnalysis
}

// ReportFunc emits one finding anchored at node.
type ReportFunc func(node ast.Node, format string, args ...any)

// Rule is one named analyzer.
type Rule struct {
	// Name identifies the rule in findings and //lint:ignore directives.
	Name string
	// Doc is a one-line description for -list output.
	Doc string
	// Skip reports whether the rule is exempt for the given
	// module-relative file path. It encodes the rule's per-path policy
	// (e.g. nowallclock applies only under internal/ and never to tests).
	Skip func(relFile string, isTest bool) bool
	// Check analyzes one file of pkg, reporting findings.
	Check func(pkg *Package, file *ast.File, report ReportFunc)
}

// DefaultRules returns the full registry. modulePath scopes the rules
// that distinguish module-local packages from the rest of the world
// (errcheck-lite).
func DefaultRules(modulePath string) []*Rule {
	return []*Rule{
		NoRand(),
		NoWallClock(),
		MapOrder(),
		MutexCopy(),
		SeedFlow(),
		ErrCheckLite(modulePath),
		DocComment(),
		LockHeld(),
		LockOrder(),
		GoroLeak(),
		ChanOwnership(),
	}
}

// Runner applies a rule set to packages, honoring exemptions and
// //lint:ignore suppressions.
type Runner struct {
	Rules []*Rule
	// ModuleRoot, when set, trims absolute file names in findings and
	// exemption checks down to module-relative paths.
	ModuleRoot string
}

// relFile maps an absolute source path to a module-relative one (with
// forward slashes); already-relative synthetic fixture names pass
// through unchanged.
func (r *Runner) relFile(filename string) string {
	if r.ModuleRoot != "" && filepath.IsAbs(filename) {
		if rel, err := filepath.Rel(r.ModuleRoot, filename); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(filename)
}

// Check runs every rule over every file of the given packages and
// returns the surviving findings in file/line order.
func (r *Runner) Check(pkgs ...*Package) []Finding {
	findings, _ := r.Run(pkgs...)
	return findings
}

// Run is Check plus a stale-suppression audit: the second return value
// lists //lint:ignore directives that suppressed nothing during this
// run — either the code they excused is gone, or the named rule no
// longer fires there. Stale directives are reported under the
// "lint-stale" pseudo-rule so `dhtlint -suppressions` can surface them.
// A directive is only meaningfully audited when the rules it names
// actually ran, so the audit should be driven with the full registry.
func (r *Runner) Run(pkgs ...*Package) (findings, stale []Finding) {
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			rel := r.relFile(pkg.Fset.Position(file.Package).Filename)
			isTest := strings.HasSuffix(rel, "_test.go")
			ig, malformed := parseIgnores(pkg.Fset, file)
			for _, f := range malformed {
				f.Pos.Filename = r.relFile(f.Pos.Filename)
				findings = append(findings, f)
			}
			for _, rule := range r.Rules {
				if rule.Skip != nil && rule.Skip(rel, isTest) {
					continue
				}
				rule.Check(pkg, file, func(node ast.Node, format string, args ...any) {
					pos := pkg.Fset.Position(node.Pos())
					if ig.suppressed(rule.Name, pos.Line) {
						return
					}
					pos.Filename = r.relFile(pos.Filename)
					findings = append(findings, Finding{Pos: pos, Rule: rule.Name, Message: fmt.Sprintf(format, args...)})
				})
			}
			for _, d := range ig.directives {
				if d.used {
					continue
				}
				pos := d.pos
				pos.Filename = r.relFile(pos.Filename)
				stale = append(stale, Finding{
					Pos:     pos,
					Rule:    "lint-stale",
					Message: fmt.Sprintf("//lint:ignore %s suppresses nothing — the finding it excused is gone; remove the directive", strings.Join(d.rules, ",")),
				})
			}
		}
	}
	sortFindings(findings)
	sortFindings(stale)
	return findings, stale
}

// sortFindings orders findings by file, line, column, then rule.
func sortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}

// ignoreDirective is one parsed //lint:ignore comment, with a usage mark
// for the stale-suppression audit.
type ignoreDirective struct {
	pos   token.Position
	rules []string
	used  bool
}

// ignoreSet indexes a file's directives by source line.
type ignoreSet struct {
	byLine     map[int][]*ignoreDirective
	directives []*ignoreDirective // parse order, for deterministic stale reports
}

// suppressed reports whether rule is ignored at line, marking the
// matching directive as used: a directive applies to its own line
// (trailing comment) and to the next line (comment above the statement).
func (ig *ignoreSet) suppressed(rule string, line int) bool {
	for _, l := range [2]int{line, line - 1} {
		for _, d := range ig.byLine[l] {
			for _, name := range d.rules {
				if name == rule || name == "all" {
					d.used = true
					return true
				}
			}
		}
	}
	return false
}

const ignorePrefix = "//lint:ignore"

// parseIgnores scans a file's comments for //lint:ignore directives.
// Malformed directives (missing rule list or missing reason) are
// returned as findings so suppressions can never silently rot.
func parseIgnores(fset *token.FileSet, file *ast.File) (*ignoreSet, []Finding) {
	ig := &ignoreSet{byLine: make(map[int][]*ignoreDirective)}
	var malformed []Finding
	for _, group := range file.Comments {
		for _, c := range group.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, ignorePrefix)
			fields := strings.Fields(rest)
			pos := fset.Position(c.Pos())
			if len(fields) < 2 {
				malformed = append(malformed, Finding{
					Pos:     pos,
					Rule:    "lint-directive",
					Message: "malformed //lint:ignore: want \"//lint:ignore <rule>[,<rule>...] <reason>\" — the reason is mandatory",
				})
				continue
			}
			d := &ignoreDirective{pos: pos, rules: strings.Split(fields[0], ",")}
			ig.byLine[pos.Line] = append(ig.byLine[pos.Line], d)
			ig.directives = append(ig.directives, d)
		}
	}
	return ig, malformed
}

// --- shared type-query helpers used by the rules ---

// importedPkgName resolves ident to the package it names in this file,
// returning the import path. Falls back to matching the file's import
// table when type information is incomplete.
func importedPkgName(pkg *Package, file *ast.File, ident *ast.Ident) (string, bool) {
	if obj := pkg.Info.Uses[ident]; obj != nil {
		pn, ok := obj.(*types.PkgName)
		if !ok {
			return "", false // shadowed by a local identifier
		}
		return pn.Imported().Path(), true
	}
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path[strings.LastIndex(path, "/")+1:]
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == ident.Name {
			return path, true
		}
	}
	return "", false
}

// calleeFunc resolves a call expression's static callee, if any.
func calleeFunc(pkg *Package, fun ast.Expr) *types.Func {
	switch f := ast.Unparen(fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[f].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := pkg.Info.Uses[f.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.IndexExpr: // generic instantiation f[T](...)
		return calleeFunc(pkg, f.X)
	case *ast.IndexListExpr:
		return calleeFunc(pkg, f.X)
	}
	return nil
}

// methodRecvNamed returns the named type of a method call's receiver
// (through one pointer), or nil.
func methodRecvNamed(pkg *Package, fun ast.Expr) *types.Named {
	sel, ok := ast.Unparen(fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s := pkg.Info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return nil
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// pkgPathSuffix reports whether p's import path is path itself or ends
// with "/"+path — so "xrand" matches both "chordbalance/internal/xrand"
// and a fixture's stand-in package.
func pkgPathSuffix(p *types.Package, suffix string) bool {
	if p == nil {
		return false
	}
	return p.Path() == suffix || strings.HasSuffix(p.Path(), "/"+suffix)
}
