package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// DocComment enforces the godoc discipline the documentation pass
// established (docs/OBSERVABILITY.md grew out of it): every package has
// a package comment, and every exported top-level identifier — func,
// method, type, const, var — carries a doc comment. Groups documented
// on the enclosing const/var/type block are fine; so are trailing
// line comments on single specs. Methods on unexported receiver types
// are exempt (they are not reachable through the public API surface),
// as are test files, which godoc never renders.
//
// The missing-package-comment finding is reported once per package, on
// the first non-test file, so multi-file packages do not drown the
// report in duplicates.
func DocComment() *Rule {
	return &Rule{
		Name: "doccomment",
		Doc:  "require doc comments on package clauses and exported top-level identifiers",
		Skip: func(relFile string, isTest bool) bool { return isTest },
		Check: func(pkg *Package, file *ast.File, report ReportFunc) {
			if file == firstNonTestFile(pkg) && !packageDocumented(pkg) {
				report(file.Name, "package %s has no package comment; add one above the package clause of one file", file.Name.Name)
			}
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					checkFuncDoc(d, report)
				case *ast.GenDecl:
					checkGenDoc(d, report)
				}
			}
		},
	}
}

// firstNonTestFile returns the unit's first non-test file (the anchor
// for the once-per-package missing-package-comment finding), or nil if
// the unit is all tests (external _test packages).
func firstNonTestFile(pkg *Package) *ast.File {
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Package).Filename
		if !strings.HasSuffix(name, "_test.go") {
			return f
		}
	}
	return nil
}

// packageDocumented reports whether any non-test file carries a package
// comment — godoc takes the package synopsis from whichever file has
// one.
func packageDocumented(pkg *Package) bool {
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		if f.Doc != nil {
			return true
		}
	}
	return false
}

// checkFuncDoc flags exported funcs and methods without doc comments.
// Methods whose receiver type is unexported are skipped: godoc hides
// them, and documenting them is the type's internal concern.
func checkFuncDoc(d *ast.FuncDecl, report ReportFunc) {
	if d.Doc != nil || !d.Name.IsExported() {
		return
	}
	if d.Recv != nil {
		recv := receiverTypeName(d.Recv)
		if recv == "" || !token.IsExported(recv) {
			return
		}
		report(d.Name, "exported method %s.%s has no doc comment", recv, d.Name.Name)
		return
	}
	report(d.Name, "exported function %s has no doc comment", d.Name.Name)
}

// checkGenDoc flags exported consts, vars, and types in undocumented
// declarations. A doc comment on the enclosing block documents every
// spec inside it; otherwise each exported spec needs its own doc or
// trailing comment.
func checkGenDoc(d *ast.GenDecl, report ReportFunc) {
	if d.Doc != nil || d.Tok == token.IMPORT {
		return
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
				report(s.Name, "exported type %s has no doc comment", s.Name.Name)
			}
		case *ast.ValueSpec:
			if s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, n := range s.Names {
				if n.IsExported() {
					report(n, "exported %s %s has no doc comment", d.Tok, n.Name)
				}
			}
		}
	}
}

// receiverTypeName extracts the receiver's base type name, unwrapping
// pointers and generic instantiations ((*T), T[P], ...).
func receiverTypeName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.ParenExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}
