package lint

import "testing"

func TestMapOrderEscapingAppend(t *testing.T) {
	src := `package fixture

func f(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
`
	got := checkFixture(t, MapOrder(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "maporder", 5)
}

func TestMapOrderLocalAppendClean(t *testing.T) {
	src := `package fixture

func f(m map[int][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}
`
	got := checkFixture(t, MapOrder(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "maporder")
}

func TestMapOrderGatherThenSortClean(t *testing.T) {
	src := `package fixture

import "sort"

func f(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortInts(xs []int) { sort.Ints(xs) }

func g(m map[int]bool) []int {
	var xs []int
	for k := range m {
		xs = append(xs, k)
	}
	sortInts(xs)
	return xs
}
`
	got := checkFixture(t, MapOrder(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "maporder")
}

func TestMapOrderRNGDraw(t *testing.T) {
	src := `package fixture

import "chordbalance/internal/xrand"

func f(m map[int]bool, rng *xrand.Rand) int {
	n := 0
	for k := range m {
		n += k + rng.Intn(10)
	}
	return n
}
`
	got := checkFixture(t, MapOrder(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "maporder", 7)
}

func TestMapOrderRingMutation(t *testing.T) {
	src := `package fixture

import (
	"chordbalance/internal/ids"
	"chordbalance/internal/ring"
)

func f(r *ring.Ring[int], m map[uint64]int) {
	for raw, v := range m {
		r.Insert(ids.FromUint64(raw), v)
	}
}
`
	got := checkFixture(t, MapOrder(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "maporder", 9)
}

func TestMapOrderOutput(t *testing.T) {
	src := `package fixture

import "fmt"

func f(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v)
	}
}
`
	got := checkFixture(t, MapOrder(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "maporder", 6)
}

func TestMapOrderPureReductionClean(t *testing.T) {
	src := `package fixture

func f(m map[int]int) (int, map[int]int) {
	total := 0
	inverted := make(map[int]int)
	for k, v := range m {
		total += v
		inverted[v] = k
	}
	return total, inverted
}
`
	got := checkFixture(t, MapOrder(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "maporder")
}

func TestMapOrderSliceRangeClean(t *testing.T) {
	src := `package fixture

import "fmt"

func f(s []int) {
	for _, v := range s {
		fmt.Println(v)
	}
}
`
	got := checkFixture(t, MapOrder(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "maporder")
}

func TestMapOrderExemptsTests(t *testing.T) {
	src := `package fixture

import "fmt"

func f(m map[string]int) {
	for k := range m {
		fmt.Println(k)
	}
}
`
	got := checkFixture(t, MapOrder(), map[string]string{"internal/fix/a_test.go": src})
	wantFindings(t, got, "maporder")
}

func TestMapOrderRespectsIgnore(t *testing.T) {
	src := `package fixture

import "fmt"

func f(m map[string]int) {
	//lint:ignore maporder output order validated downstream by sorting
	for k := range m {
		fmt.Println(k)
	}
}
`
	got := checkFixture(t, MapOrder(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "maporder")
}
