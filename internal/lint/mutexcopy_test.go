package lint

import "testing"

func TestMutexCopyAssignment(t *testing.T) {
	src := `package fixture

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func f(g guarded) guarded {
	h := g
	return h
}
`
	got := checkFixture(t, MutexCopy(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "mutexcopy", 11, 12)
}

func TestMutexCopyWaitGroupAndDeref(t *testing.T) {
	src := `package fixture

import "sync"

func f(wg *sync.WaitGroup) {
	w := *wg
	w.Wait()
}
`
	got := checkFixture(t, MutexCopy(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "mutexcopy", 6)
}

func TestMutexCopyRangeValue(t *testing.T) {
	src := `package fixture

import "sync"

type guarded struct {
	mu sync.RWMutex
}

func f(gs []guarded) {
	for _, g := range gs {
		_ = g
	}
}
`
	got := checkFixture(t, MutexCopy(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "mutexcopy", 10)
}

func TestMutexCopyPointerAndLiteralClean(t *testing.T) {
	src := `package fixture

import "sync"

type guarded struct {
	mu sync.Mutex
}

func f() *guarded {
	g := &guarded{}
	fresh := guarded{}
	_ = fresh
	p := g
	return p
}

func g(gs []guarded) {
	for i := range gs {
		gs[i].mu.Lock()
		gs[i].mu.Unlock()
	}
}
`
	got := checkFixture(t, MutexCopy(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "mutexcopy")
}

func TestMutexCopyNestedField(t *testing.T) {
	src := `package fixture

import "sync"

type inner struct{ wg sync.WaitGroup }

type outer struct {
	in  inner
	arr [2]inner
}

func f(o *outer) inner {
	return o.in
}
`
	got := checkFixture(t, MutexCopy(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "mutexcopy", 13)
}

func TestMutexCopyRespectsIgnore(t *testing.T) {
	src := `package fixture

import "sync"

type guarded struct{ mu sync.Mutex }

func f(g guarded) {
	//lint:ignore mutexcopy snapshot taken before any goroutine can lock it
	h := g
	_ = h
}
`
	got := checkFixture(t, MutexCopy(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "mutexcopy")
}
