package lint

import "testing"

func TestNoWallClockFires(t *testing.T) {
	src := `package fixture

import "time"

func f() time.Duration {
	start := time.Now()
	time.Sleep(time.Millisecond)
	_ = time.NewTicker(time.Second)
	return time.Since(start)
}
`
	got := checkFixture(t, NoWallClock(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "nowallclock", 6, 7, 8, 9)
}

func TestNoWallClockAllowsDurations(t *testing.T) {
	src := `package fixture

import "time"

const tick = 50 * time.Millisecond

func f(d time.Duration) time.Duration { return d.Round(time.Second) }
`
	got := checkFixture(t, NoWallClock(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "nowallclock")
}

func TestNoWallClockExemptsCmdAndTests(t *testing.T) {
	src := `package fixture

import "time"

var t0 = time.Now()
`
	got := checkFixture(t, NoWallClock(), map[string]string{"cmd/fix/a.go": src})
	wantFindings(t, got, "nowallclock")
	got = checkFixture(t, NoWallClock(), map[string]string{"internal/fix/a_test.go": src})
	wantFindings(t, got, "nowallclock")
}

func TestNoWallClockExemptsNetchord(t *testing.T) {
	// internal/netchord is the deliberately real-time networked runtime:
	// deadlines, tickers, and backoff sleeps are the point there, and it
	// is import-isolated from the simulator.
	src := `package fixture

import "time"

var t0 = time.Now()
`
	got := checkFixture(t, NoWallClock(), map[string]string{"internal/netchord/a.go": src})
	wantFindings(t, got, "nowallclock")
}

func TestNoWallClockRenamedImport(t *testing.T) {
	src := `package fixture

import clock "time"

var t0 = clock.Now()
`
	got := checkFixture(t, NoWallClock(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "nowallclock", 5)
}

func TestNoWallClockShadowedIdent(t *testing.T) {
	src := `package fixture

type fake struct{}

func (fake) Now() int { return 0 }

func f() int {
	time := fake{}
	return time.Now()
}
`
	got := checkFixture(t, NoWallClock(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "nowallclock")
}

func TestNoWallClockRespectsIgnore(t *testing.T) {
	src := `package fixture

import "time"

//lint:ignore nowallclock this component is deliberately real-time
var t0 = time.Now()
`
	got := checkFixture(t, NoWallClock(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "nowallclock")
}
