package lint

import (
	"strings"
	"sync"
	"testing"
)

// sharedLoader amortizes stdlib source type-checking across all fixture
// tests in this package; a Loader is safe here because the tests run its
// methods sequentially per call site via loaderOnce.
var (
	loaderOnce sync.Once
	loaderMu   sync.Mutex
	shared     *Loader
)

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, modPath, err := FindModule(".")
		if err != nil {
			t.Fatalf("FindModule: %v", err)
		}
		shared = NewLoader(root, modPath)
	})
	if shared == nil {
		t.Skip("loader unavailable")
	}
	return shared
}

// checkFixture type-checks the given sources as one synthetic package
// and runs a single rule over it, returning the findings.
func checkFixture(t *testing.T, rule *Rule, sources map[string]string) []Finding {
	t.Helper()
	findings, _ := runFixture(t, []*Rule{rule}, sources)
	return findings
}

// runFixture is checkFixture for multiple rules, also returning the
// stale-suppression audit.
func runFixture(t *testing.T, rules []*Rule, sources map[string]string) (findings, stale []Finding) {
	t.Helper()
	loaderMu.Lock()
	defer loaderMu.Unlock()
	l := fixtureLoader(t)
	pkg, err := l.CheckSource("chordbalance/internal/lintfixture", sources)
	if err != nil {
		t.Fatalf("CheckSource: %v", err)
	}
	runner := &Runner{Rules: rules}
	return runner.Run(pkg)
}

// wantFindings asserts the findings hit exactly the given lines (in any
// file of the fixture).
func wantFindings(t *testing.T, got []Finding, rule string, lines ...int) {
	t.Helper()
	if len(got) != len(lines) {
		t.Fatalf("got %d findings, want %d:\n%s", len(got), len(lines), renderFindings(got))
	}
	for i, f := range got {
		if f.Rule != rule {
			t.Errorf("finding %d rule = %q, want %q", i, f.Rule, rule)
		}
		if f.Pos.Line != lines[i] {
			t.Errorf("finding %d at line %d, want %d: %s", i, f.Pos.Line, lines[i], f)
		}
	}
}

func renderFindings(fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		b.WriteString("  " + f.String() + "\n")
	}
	return b.String()
}

func TestIgnoreDirectiveParsing(t *testing.T) {
	rule := NoRand()
	src := `package fixture

import _ "math/rand" //lint:ignore norand fixture exercises the suppression path
`
	got := checkFixture(t, rule, map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "norand")
}

func TestIgnoreDirectiveLineAbove(t *testing.T) {
	rule := NoRand()
	src := `package fixture

//lint:ignore norand reason documented here
import _ "math/rand"
`
	got := checkFixture(t, rule, map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "norand")
}

func TestIgnoreDirectiveWrongRule(t *testing.T) {
	src := `package fixture

//lint:ignore maporder wrong rule name does not suppress
import _ "math/rand"
`
	got := checkFixture(t, NoRand(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "norand", 4)
}

func TestIgnoreDirectiveAll(t *testing.T) {
	src := `package fixture

//lint:ignore all blanket suppression with a reason
import _ "math/rand"
`
	got := checkFixture(t, NoRand(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "norand")
}

func TestMalformedIgnoreDirective(t *testing.T) {
	src := `package fixture

//lint:ignore norand
import _ "math/rand"
`
	got := checkFixture(t, NoRand(), map[string]string{"internal/fix/a.go": src})
	if len(got) != 2 {
		t.Fatalf("want malformed-directive finding plus the unsuppressed norand finding, got:\n%s", renderFindings(got))
	}
	if got[0].Rule != "lint-directive" {
		t.Errorf("first finding rule = %q, want lint-directive", got[0].Rule)
	}
	if got[1].Rule != "norand" {
		t.Errorf("second finding rule = %q, want norand (reasonless directives must not suppress)", got[1].Rule)
	}
}

func TestFindingString(t *testing.T) {
	src := `package fixture

import _ "crypto/rand"
`
	got := checkFixture(t, NoRand(), map[string]string{"internal/fix/a.go": src})
	if len(got) != 1 {
		t.Fatalf("findings:\n%s", renderFindings(got))
	}
	s := got[0].String()
	if !strings.HasPrefix(s, "internal/fix/a.go:3:8 [norand] ") {
		t.Errorf("finding format = %q, want file:line:col [rule] message", s)
	}
}

func TestDefaultRulesRegistry(t *testing.T) {
	rules := DefaultRules("chordbalance")
	want := []string{
		"norand", "nowallclock", "maporder", "mutexcopy", "seedflow", "errcheck-lite", "doccomment",
		"lockheld", "lockorder", "goroleak", "chanownership",
	}
	if len(rules) != len(want) {
		t.Fatalf("registry has %d rules, want %d", len(rules), len(want))
	}
	for i, r := range rules {
		if r.Name != want[i] {
			t.Errorf("rule %d = %q, want %q", i, r.Name, want[i])
		}
		if r.Doc == "" {
			t.Errorf("rule %q has no doc line", r.Name)
		}
	}
}

func TestFindModule(t *testing.T) {
	root, path, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	if path != "chordbalance" {
		t.Errorf("module path = %q", path)
	}
	if root == "" {
		t.Error("empty module root")
	}
}
