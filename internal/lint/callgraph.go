package lint

// This file is the interprocedural half of the concurrency analysis: it
// stitches the per-function summaries produced by lockset.go into a
// package-level call graph, condenses it with Tarjan's SCC algorithm,
// and runs a deterministic fixpoint in reverse topological order
// (callees before callers) that propagates two monotone facts:
//
//   - mayBlock: the function can block its goroutine, with a
//     human-readable chain (blockWhy) explaining the shortest discovered
//     reason — either a direct blocking operation or a call into a
//     function that blocks.
//   - transAcq: the set of lock keys the function may (transitively)
//     acquire, each with a chain explaining the path.
//
// Both facts are set-once: a function's blockWhy and a transAcq entry's
// chain never change after first discovery, so the fixpoint terminates
// even on mutually recursive functions (the sets only grow, and they are
// bounded by the package's locks). Processing functions in declaration
// order and map keys in sorted order keeps every output deterministic.

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
)

// runFixpoint resolves call and go targets and propagates mayBlock and
// transAcq over the condensation of the call graph.
func runFixpoint(an *lockAnalysis) {
	// Resolve static targets within this package.
	for _, fi := range an.funcs {
		for i := range fi.calls {
			fi.calls[i].target = an.byObj[fi.calls[i].callee]
		}
		for i := range fi.gos {
			if gs := &fi.gos[i]; gs.target == nil && gs.callee != nil {
				gs.target = an.byObj[gs.callee]
			}
		}
		fi.transAcq = make(map[string]transAcquire)
	}

	// Seed the local facts.
	for _, fi := range an.funcs {
		if len(fi.blocks) > 0 {
			b := fi.blocks[0]
			fi.mayBlock = true
			fi.blockWhy = fmt.Sprintf("%s at %s", b.desc, shortPos(an, b.node))
		} else {
			for _, cs := range fi.calls {
				if cs.extBlock != "" {
					fi.mayBlock = true
					fi.blockWhy = fmt.Sprintf("%s at %s", cs.extBlock, shortPos(an, cs.node))
					break
				}
			}
		}
		for _, acq := range fi.acquires {
			if _, ok := fi.transAcq[acq.key.id]; !ok {
				fi.transAcq[acq.key.id] = transAcquire{
					key:   acq.key,
					chain: fmt.Sprintf("acquires %s at %s", acq.key.label, shortPos(an, acq.node)),
				}
			}
		}
	}

	// Condense and propagate, callees first. Tarjan emits each SCC only
	// after every SCC reachable from it, so iterating components in
	// emission order visits callees before callers.
	for _, scc := range tarjanSCCs(an) {
		for changed := true; changed; {
			changed = false
			for _, fi := range scc {
				if propagateOne(an, fi) {
					changed = true
				}
			}
		}
	}
}

// propagateOne pulls facts from fi's resolved callees; it reports
// whether anything new was learned.
func propagateOne(an *lockAnalysis, fi *funcInfo) bool {
	changed := false
	for _, cs := range fi.calls {
		t := cs.target
		if t == nil || t == fi {
			continue
		}
		if t.mayBlock && !fi.mayBlock {
			fi.mayBlock = true
			fi.blockWhy = fmt.Sprintf("calls %s at %s, which blocks: %s", t.name, shortPos(an, cs.node), t.blockWhy)
			changed = true
		}
		ids := make([]string, 0, len(t.transAcq))
		for id := range t.transAcq {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			if _, ok := fi.transAcq[id]; ok {
				continue
			}
			ta := t.transAcq[id]
			fi.transAcq[id] = transAcquire{
				key:   ta.key,
				chain: fmt.Sprintf("calls %s at %s, which %s", t.name, shortPos(an, cs.node), ta.chain),
			}
			changed = true
		}
	}
	return changed
}

// shortPos renders a node position as "file.go:line" for chain text.
func shortPos(an *lockAnalysis, node ast.Node) string {
	pos := an.fset.Position(node.Pos())
	return fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
}

// nodePosition resolves a node's full position through the analysis'
// file set.
func nodePosition(an *lockAnalysis, node ast.Node) token.Position {
	return an.fset.Position(node.Pos())
}

// tarjanSCCs computes strongly connected components of the call graph
// in emission order (every SCC after all SCCs it can reach).
func tarjanSCCs(an *lockAnalysis) [][]*funcInfo {
	index := make(map[*funcInfo]int)
	low := make(map[*funcInfo]int)
	onStack := make(map[*funcInfo]bool)
	var stack []*funcInfo
	var sccs [][]*funcInfo
	next := 0

	var strongconnect func(fi *funcInfo)
	strongconnect = func(fi *funcInfo) {
		index[fi] = next
		low[fi] = next
		next++
		stack = append(stack, fi)
		onStack[fi] = true
		for _, cs := range fi.calls {
			t := cs.target
			if t == nil {
				continue
			}
			if _, seen := index[t]; !seen {
				strongconnect(t)
				if low[t] < low[fi] {
					low[fi] = low[t]
				}
			} else if onStack[t] && index[t] < low[fi] {
				low[fi] = index[t]
			}
		}
		if low[fi] == index[fi] {
			var scc []*funcInfo
			for {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[top] = false
				scc = append(scc, top)
				if top == fi {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, fi := range an.funcs {
		if _, seen := index[fi]; !seen {
			strongconnect(fi)
		}
	}
	return sccs
}

// orderEdge is one observed acquisition ordering: "to was acquired while
// from was held", with the first witness found.
type orderEdge struct {
	from, to lockKey
	node     ast.Node
	filename string
	witness  string
}

// computeLockOrder derives the package's lock-ordering findings: for
// every ordered pair of locks acquired in both orders somewhere in the
// package, one inversion finding carrying both witness paths; and for
// every reacquisition of a lock already held (directly or through a
// callee), a self-deadlock finding.
func computeLockOrder(an *lockAnalysis) []orderFinding {
	edges := make(map[string]*orderEdge) // "fromID\x00toID" -> first witness
	var order []string                   // insertion order of edge keys, for determinism
	addEdge := func(from, to lockKey, node ast.Node, fi *funcInfo, witness string) {
		k := from.id + "\x00" + to.id
		if _, ok := edges[k]; ok {
			return
		}
		edges[k] = &orderEdge{from: from, to: to, node: node, filename: fi.filename, witness: witness}
		order = append(order, k)
	}

	var findings []orderFinding
	for _, fi := range an.funcs {
		for _, acq := range fi.acquires {
			for _, h := range acq.held {
				if h.id == acq.key.id {
					findings = append(findings, orderFinding{
						node:     acq.node,
						filename: fi.filename,
						msg: fmt.Sprintf("%s reacquires %s while already holding it (sync mutexes are not reentrant; this self-deadlocks)",
							fi.name, acq.key.label),
					})
					continue
				}
				addEdge(h, acq.key, acq.node, fi,
					fmt.Sprintf("%s acquires %s at %s while holding %s",
						fi.name, acq.key.label, shortPos(an, acq.node), h.label))
			}
		}
		for _, cs := range fi.calls {
			if cs.target == nil || len(cs.held) == 0 {
				continue
			}
			ids := make([]string, 0, len(cs.target.transAcq))
			for id := range cs.target.transAcq {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			for _, id := range ids {
				ta := cs.target.transAcq[id]
				for _, h := range cs.held {
					if h.id == id {
						findings = append(findings, orderFinding{
							node:     cs.node,
							filename: fi.filename,
							msg: fmt.Sprintf("%s calls %s while holding %s, and the callee %s (reacquiring a held sync mutex self-deadlocks)",
								fi.name, cs.target.name, h.label, ta.chain),
						})
						continue
					}
					addEdge(h, ta.key, cs.node, fi,
						fmt.Sprintf("%s, while holding %s, calls %s at %s, which %s",
							fi.name, h.label, cs.target.name, shortPos(an, cs.node), ta.chain))
				}
			}
		}
	}

	// Report each inverted pair once, anchored at the lexicographically
	// first direction's witness.
	for _, k := range order {
		e := edges[k]
		if e.from.id >= e.to.id {
			continue
		}
		rev, ok := edges[e.to.id+"\x00"+e.from.id]
		if !ok {
			continue
		}
		findings = append(findings, orderFinding{
			node:     e.node,
			filename: e.filename,
			msg: fmt.Sprintf("lock order inversion between %s and %s: one path %s; another path %s — two goroutines taking these in opposite orders deadlock",
				e.from.label, e.to.label, e.witness, rev.witness),
		})
	}
	return findings
}
