package lint

import "testing"

func TestNoRandFiresOnImports(t *testing.T) {
	src := `package fixture

import (
	_ "crypto/rand"
	_ "math/rand"
	_ "math/rand/v2"
)
`
	got := checkFixture(t, NoRand(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "norand", 4, 5, 6)
}

func TestNoRandAppliesToOrdinaryTests(t *testing.T) {
	src := `package fixture

import _ "math/rand"
`
	got := checkFixture(t, NoRand(), map[string]string{"internal/fix/a_test.go": src})
	wantFindings(t, got, "norand", 3)
}

func TestNoRandExemptsFuzzHarnesses(t *testing.T) {
	src := `package fixture

import _ "math/rand"
`
	got := checkFixture(t, NoRand(), map[string]string{"internal/fix/fuzz_test.go": src})
	wantFindings(t, got, "norand")
}

func TestNoRandRespectsIgnore(t *testing.T) {
	src := `package fixture

//lint:ignore norand documented reason for this exception
import _ "math/rand"

import _ "crypto/rand"
`
	got := checkFixture(t, NoRand(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "norand", 6)
}

func TestNoRandCleanFile(t *testing.T) {
	src := `package fixture

import _ "chordbalance/internal/xrand"
`
	got := checkFixture(t, NoRand(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "norand")
}
