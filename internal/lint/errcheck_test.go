package lint

import "testing"

func TestErrCheckLiteDroppedModuleError(t *testing.T) {
	src := `package fixture

import (
	"chordbalance/internal/ids"
	"chordbalance/internal/ring"
)

func f(r *ring.Ring[int]) {
	r.Seed([]ids.ID{ids.FromUint64(1)})
}
`
	got := checkFixture(t, ErrCheckLite("chordbalance"), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "errcheck-lite", 9)
}

func TestErrCheckLiteDroppedOSError(t *testing.T) {
	src := `package fixture

import "os"

func f() {
	os.Remove("/tmp/x")
	defer os.Remove("/tmp/y")
}
`
	got := checkFixture(t, ErrCheckLite("chordbalance"), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "errcheck-lite", 6, 7)
}

func TestErrCheckLiteIoWriterMethod(t *testing.T) {
	src := `package fixture

import "io"

func f(w io.Writer) {
	w.Write([]byte("x"))
}
`
	got := checkFixture(t, ErrCheckLite("chordbalance"), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "errcheck-lite", 6)
}

func TestErrCheckLiteHandledAndBlankClean(t *testing.T) {
	src := `package fixture

import (
	"fmt"
	"os"

	"chordbalance/internal/ids"
	"chordbalance/internal/ring"
)

func f(r *ring.Ring[int]) error {
	if err := r.Seed(nil); err != nil {
		return err
	}
	_ = os.Remove("/tmp/x")
	// fmt is outside the rule's scope: stdlib noise stays quiet.
	fmt.Println("ok")
	_ = ids.Zero
	return nil
}
`
	got := checkFixture(t, ErrCheckLite("chordbalance"), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "errcheck-lite")
}

func TestErrCheckLiteExemptsTests(t *testing.T) {
	src := `package fixture

import "os"

func f() {
	os.Remove("/tmp/x")
}
`
	got := checkFixture(t, ErrCheckLite("chordbalance"), map[string]string{"internal/fix/a_test.go": src})
	wantFindings(t, got, "errcheck-lite")
}

func TestErrCheckLiteRespectsIgnore(t *testing.T) {
	src := `package fixture

import "os"

func f() {
	//lint:ignore errcheck-lite best-effort cleanup, failure is acceptable here
	os.Remove("/tmp/x")
}
`
	got := checkFixture(t, ErrCheckLite("chordbalance"), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "errcheck-lite")
}
