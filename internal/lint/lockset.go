package lint

// This file is the per-function half of the interprocedural concurrency
// analysis behind the lockheld, lockorder, goroleak, and chanownership
// rules: a small abstract interpreter that walks each function body once,
// tracking the set of mutexes that may be held at every statement, and
// records the sites later passes care about — lock acquisitions, blocking
// operations, calls, `go` statements, channel closes, and channel sends.
// The call-graph fixpoint that stitches the summaries together lives in
// callgraph.go.
//
// Mutexes are keyed instance-insensitively: `n.mu` where n is a *Node
// becomes the key "Node.mu" regardless of which Node instance is locked.
// That is exactly what lock-ordering arguments are about (the discipline
// is per lock *role*, not per instance) and it keeps the analysis
// flow-insensitive about aliasing. Local mutex variables are keyed by
// their declaration position instead, so two different locals never
// collapse into one key.
//
// The interpreter is deliberately may-analysis shaped: at a control-flow
// join the held set is the union of the incoming branches (branches that
// provably terminated — return, panic, break — are excluded), so a lock
// released on only one path still counts as held afterwards. That
// overapproximates, which is the right direction for every rule built on
// it: "may be held across a blocking call" is the thing worth reporting.
//
// Known false negatives (documented in docs/LINTING.md): function values
// called through variables, dynamic dispatch through interfaces with no
// static callee, cross-package call edges, and locks reached through
// maps or slices.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// lockKey identifies one mutex role. id is the stable comparison key
// (fully qualified); label is the short human-readable form used in
// messages ("Node.mu").
type lockKey struct {
	id    string
	label string
}

// acquireSite is one Lock/RLock call, with the locks already held when
// it executes.
type acquireSite struct {
	key  lockKey
	node ast.Node
	held []lockKey
}

// blockSite is one operation that can block the goroutine: a channel
// send/receive, a select without default, WaitGroup.Wait, a timer wait,
// or network I/O.
type blockSite struct {
	desc string
	node ast.Node
	held []lockKey
}

// callSite is one statically resolved call. target is filled in by the
// fixpoint when the callee is defined in the same package; extBlock is
// non-empty when the callee is an external function known to block.
type callSite struct {
	callee   *types.Func
	target   *funcInfo
	node     ast.Node
	held     []lockKey
	extBlock string
}

// goSite is one `go` statement. Exactly one of target (a function
// literal, analyzed as its own synthetic funcInfo) and callee (a named
// function, resolved by the fixpoint) is set when resolution succeeded;
// both nil means the target was dynamic.
type goSite struct {
	node   ast.Node
	held   []lockKey
	target *funcInfo
	callee *types.Func
}

// closeSite is one close(ch) call with the ownership verdict for ch.
type closeSite struct {
	node  ast.Node
	owned bool
	what  string // rendering of the channel expression
	why   string // non-owned: why the closer does not own it
}

// sendSite is a send on a known-unbuffered channel while a lock is held.
type sendSite struct {
	node ast.Node
	held []lockKey
	what string
}

// transAcquire records that a function (transitively) acquires key, with
// a human-readable chain explaining how.
type transAcquire struct {
	key   lockKey
	chain string
}

// funcInfo is the per-function summary. One exists for every FuncDecl
// with a body and for every function literal that escapes synchronous
// control flow (go/defer targets, stored literals, callback arguments).
type funcInfo struct {
	name     string
	decl     ast.Node // *ast.FuncDecl or *ast.FuncLit
	obj      *types.Func
	filename string

	acquires []acquireSite
	blocks   []blockSite
	calls    []callSite
	gos      []goSite
	closes   []closeSite
	sends    []sendSite

	// Termination signals for goroleak.
	callsDone    bool // calls (*sync.WaitGroup).Done, deferred or not
	defersSignal bool // defers a close(ch) (directly or via a deferred literal)
	stopParam    bool // has a context.Context or channel parameter
	endlessFor   bool // contains a `for {}` with no reachable return/break

	// Fixpoint outputs (callgraph.go).
	mayBlock bool
	blockWhy string
	transAcq map[string]transAcquire
}

// lockAnalysis is the package-wide result, cached on the Package.
type lockAnalysis struct {
	fset  *token.FileSet
	funcs []*funcInfo
	byObj map[*types.Func]*funcInfo
	// inversions and selfCycles are the lockorder findings, precomputed
	// once per package (the rule filters them per file).
	inversions []orderFinding
}

// orderFinding is one lockorder diagnostic anchored at a node.
type orderFinding struct {
	node     ast.Node
	filename string
	msg      string
}

// lockInfo returns the package's lockset analysis, computing it on first
// use. The Runner is single-goroutine, so a plain nil check suffices.
func (p *Package) lockInfo() *lockAnalysis {
	if p.lockan == nil {
		p.lockan = computeLockAnalysis(p)
	}
	return p.lockan
}

// computeLockAnalysis walks every function body in the package and runs
// the call-graph fixpoint over the summaries.
func computeLockAnalysis(pkg *Package) *lockAnalysis {
	an := &lockAnalysis{fset: pkg.Fset, byObj: make(map[*types.Func]*funcInfo)}
	for _, file := range pkg.Files {
		fname := pkg.Fset.Position(file.Package).Filename
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fi := &funcInfo{name: funcDisplayName(fd), decl: fd, filename: fname}
			if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				fi.obj = obj
				an.byObj[obj] = fi
			}
			an.funcs = append(an.funcs, fi)
			w := &funcWalker{
				pkg:   pkg,
				an:    an,
				fn:    fi,
				owned: make(map[types.Object]bool),
				unbuf: make(map[types.Object]bool),
			}
			if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
				w.recv = pkg.Info.Defs[fd.Recv.List[0].Names[0]]
			}
			w.noteParams(fd.Type)
			w.walkStmtList(&lockState{}, fd.Body.List)
		}
	}
	runFixpoint(an)
	an.inversions = computeLockOrder(an)
	return an
}

// funcDisplayName renders a FuncDecl's name with its receiver type, e.g.
// "(*Node).stabilizeOnce" or "NewHost".
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	var b strings.Builder
	b.WriteString("(")
	writeTypeExpr(&b, recv)
	b.WriteString(").")
	b.WriteString(fd.Name.Name)
	return b.String()
}

// writeTypeExpr renders the small subset of type expressions receivers
// use (idents, pointers, generic instantiations).
func writeTypeExpr(b *strings.Builder, e ast.Expr) {
	switch e := e.(type) {
	case *ast.Ident:
		b.WriteString(e.Name)
	case *ast.StarExpr:
		b.WriteString("*")
		writeTypeExpr(b, e.X)
	case *ast.IndexExpr:
		writeTypeExpr(b, e.X)
	case *ast.IndexListExpr:
		writeTypeExpr(b, e.X)
	default:
		b.WriteString("?")
	}
}

// lockState is the abstract state at one program point: the ordered set
// of locks that may be held, and whether this path has terminated.
type lockState struct {
	held []lockKey
	dead bool
}

// holds reports whether id is in the held set.
func (st *lockState) holds(id string) bool {
	for _, k := range st.held {
		if k.id == id {
			return true
		}
	}
	return false
}

// acquire adds key to the held set (idempotent).
func (st *lockState) acquire(key lockKey) {
	if !st.holds(key.id) {
		st.held = append(st.held, key)
	}
}

// release removes key from the held set.
func (st *lockState) release(id string) {
	for i, k := range st.held {
		if k.id == id {
			st.held = append(st.held[:i:i], st.held[i+1:]...)
			return
		}
	}
}

// clone copies the state for a branch.
func (st *lockState) clone() *lockState {
	return &lockState{held: append([]lockKey(nil), st.held...), dead: st.dead}
}

// mergeInto unions other's held set into st (may-held join). Dead
// branches are the caller's responsibility to exclude.
func (st *lockState) mergeInto(other *lockState) {
	for _, k := range other.held {
		st.acquire(k)
	}
}

// heldCopy snapshots the held set for a site record.
func heldCopy(st *lockState) []lockKey {
	if len(st.held) == 0 {
		return nil
	}
	return append([]lockKey(nil), st.held...)
}

// funcWalker drives the abstract interpretation of one function body.
// Synthetic walkers for escaping function literals share the analysis,
// the receiver object, and the channel-ownership maps (a literal may
// close a channel its enclosing function created).
type funcWalker struct {
	pkg  *Package
	an   *lockAnalysis
	fn   *funcInfo
	recv types.Object

	owned map[types.Object]bool // channels created here (make) or owned by convention
	unbuf map[types.Object]bool // channels known to be unbuffered

	// noBlocks suppresses block-site recording while interpreting select
	// comm clauses (their channel ops belong to the select itself).
	noBlocks bool
}

// noteParams records termination-signal and ownership facts carried by
// the parameter list: a context or channel parameter is a stop signal
// for goroleak, and a send-only channel parameter is owned by convention
// (the producer-closes idiom).
func (w *funcWalker) noteParams(ft *ast.FuncType) {
	if ft == nil || ft.Params == nil {
		return
	}
	for _, field := range ft.Params.List {
		t := w.pkg.Info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if ch, ok := t.Underlying().(*types.Chan); ok {
			w.fn.stopParam = true
			if ch.Dir() == types.SendOnly {
				for _, name := range field.Names {
					if obj := w.pkg.Info.Defs[name]; obj != nil {
						w.owned[obj] = true
					}
				}
			}
			continue
		}
		if named, ok := t.(*types.Named); ok &&
			named.Obj().Name() == "Context" && pkgPathSuffix(named.Obj().Pkg(), "context") {
			w.fn.stopParam = true
		}
	}
}

// walkStmtList interprets a statement sequence in order.
func (w *funcWalker) walkStmtList(st *lockState, list []ast.Stmt) {
	for _, s := range list {
		if st.dead {
			return
		}
		w.walkStmt(st, s)
	}
}

// walkStmt interprets one statement, updating st in place.
func (w *funcWalker) walkStmt(st *lockState, s ast.Stmt) {
	if s == nil || st.dead {
		return
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.walkStmtList(st, s.List)

	case *ast.ExprStmt:
		w.walkExpr(st, s.X)

	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.walkExpr(st, rhs)
		}
		w.noteChanMakes(s.Lhs, s.Rhs)
		for _, lhs := range s.Lhs {
			if _, ok := lhs.(*ast.Ident); !ok {
				w.walkExpr(st, lhs)
			}
		}

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.walkExpr(st, v)
					}
					lhs := make([]ast.Expr, len(vs.Names))
					for i, n := range vs.Names {
						lhs[i] = n
					}
					w.noteChanMakes(lhs, vs.Values)
				}
			}
		}

	case *ast.IfStmt:
		w.walkStmt(st, s.Init)
		w.walkExpr(st, s.Cond)
		then := st.clone()
		w.walkStmt(then, s.Body)
		els := st.clone()
		if s.Else != nil {
			w.walkStmt(els, s.Else)
		}
		st.held = nil
		st.dead = then.dead && els.dead
		if !then.dead {
			st.mergeInto(then)
		}
		if !els.dead {
			st.mergeInto(els)
		}
		if st.dead {
			// Keep the union anyway so a dead-end state is still sane if
			// consulted; nothing after it runs.
			st.mergeInto(then)
			st.mergeInto(els)
		}

	case *ast.ForStmt:
		w.walkStmt(st, s.Init)
		w.walkExpr(st, s.Cond)
		body := st.clone()
		w.walkStmt(body, s.Body)
		w.walkStmt(body, s.Post)
		if !body.dead {
			st.mergeInto(body)
		}
		if s.Cond == nil && !loopExits(s.Body) {
			w.fn.endlessFor = true
			st.dead = true
		}

	case *ast.RangeStmt:
		w.walkExpr(st, s.X)
		if t := w.pkg.Info.TypeOf(s.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				w.block(st, s, "range over channel (blocking receive)")
			}
		}
		body := st.clone()
		w.walkStmt(body, s.Body)
		if !body.dead {
			st.mergeInto(body)
		}

	case *ast.SwitchStmt:
		w.walkStmt(st, s.Init)
		w.walkExpr(st, s.Tag)
		w.walkCaseClauses(st, s.Body)

	case *ast.TypeSwitchStmt:
		w.walkStmt(st, s.Init)
		w.walkStmt(st, s.Assign)
		w.walkCaseClauses(st, s.Body)

	case *ast.SelectStmt:
		w.walkSelect(st, s)

	case *ast.SendStmt:
		w.walkExpr(st, s.Value)
		w.walkExpr(st, s.Chan)
		w.block(st, s, "channel send")
		w.noteUnbufferedSend(st, s)

	case *ast.GoStmt:
		w.walkGo(st, s)

	case *ast.DeferStmt:
		w.walkDefer(st, s)

	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.walkExpr(st, r)
		}
		st.dead = true

	case *ast.BranchStmt:
		if s.Tok == token.BREAK || s.Tok == token.CONTINUE || s.Tok == token.GOTO {
			st.dead = true
		}

	case *ast.LabeledStmt:
		w.walkStmt(st, s.Stmt)

	case *ast.IncDecStmt:
		w.walkExpr(st, s.X)
	}
}

// walkCaseClauses interprets a switch body: every clause starts from the
// pre-switch state; the post state is the union of the non-terminated
// clauses (plus the entry state when there is no default clause, since
// the switch may match nothing).
func (w *funcWalker) walkCaseClauses(st *lockState, body *ast.BlockStmt) {
	entry := st.clone()
	hasDefault := false
	var exits []*lockState
	for _, clause := range body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		cs := entry.clone()
		for _, e := range cc.List {
			w.walkExpr(cs, e)
		}
		w.walkStmtList(cs, cc.Body)
		exits = append(exits, cs)
	}
	w.joinBranches(st, entry, exits, hasDefault)
}

// walkSelect interprets a select statement: without a default clause the
// select itself blocks; channel operations in the comm clauses are part
// of the select's wait rather than independent blocking sites, so they
// are interpreted with blocking recording suppressed.
func (w *funcWalker) walkSelect(st *lockState, s *ast.SelectStmt) {
	entry := st.clone()
	hasDefault := false
	var exits []*lockState
	for _, clause := range s.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			hasDefault = true
		}
		cs := entry.clone()
		w.suppressBlocks(func() {
			w.walkStmt(cs, cc.Comm)
		})
		w.walkStmtList(cs, cc.Body)
		exits = append(exits, cs)
	}
	if !hasDefault {
		w.block(st, s, "select without default")
	}
	w.joinBranches(st, entry, exits, hasDefault)
}

// joinBranches merges clause exit states into st. exhaustive means one
// clause always runs (a default exists), so the entry state is excluded
// from the join.
func (w *funcWalker) joinBranches(st *lockState, entry *lockState, exits []*lockState, exhaustive bool) {
	st.held = nil
	live := false
	if !exhaustive {
		st.mergeInto(entry)
		live = true
	}
	for _, e := range exits {
		if !e.dead {
			st.mergeInto(e)
			live = true
		}
	}
	if !live {
		for _, e := range exits {
			st.mergeInto(e)
		}
		st.dead = true
	}
}

// suppressBlocks runs fn with block-site recording disabled (used for
// select comm clauses, whose channel ops belong to the select itself).
func (w *funcWalker) suppressBlocks(fn func()) {
	saved := w.noBlocks
	w.noBlocks = true
	fn()
	w.noBlocks = saved
}

// block records one blocking operation (unless suppressed).
func (w *funcWalker) block(st *lockState, node ast.Node, desc string) {
	if w.noBlocks {
		return
	}
	w.fn.blocks = append(w.fn.blocks, blockSite{desc: desc, node: node, held: heldCopy(st)})
}

// walkExpr interprets one expression.
func (w *funcWalker) walkExpr(st *lockState, e ast.Expr) {
	if e == nil || st.dead {
		return
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		w.walkCall(st, e)
	case *ast.UnaryExpr:
		w.walkExpr(st, e.X)
		if e.Op == token.ARROW {
			w.block(st, e, "channel receive")
		}
	case *ast.BinaryExpr:
		w.walkExpr(st, e.X)
		w.walkExpr(st, e.Y)
	case *ast.ParenExpr:
		w.walkExpr(st, e.X)
	case *ast.StarExpr:
		w.walkExpr(st, e.X)
	case *ast.SelectorExpr:
		w.walkExpr(st, e.X)
	case *ast.IndexExpr:
		w.walkExpr(st, e.X)
		w.walkExpr(st, e.Index)
	case *ast.IndexListExpr:
		w.walkExpr(st, e.X)
	case *ast.SliceExpr:
		w.walkExpr(st, e.X)
		w.walkExpr(st, e.Low)
		w.walkExpr(st, e.High)
		w.walkExpr(st, e.Max)
	case *ast.TypeAssertExpr:
		w.walkExpr(st, e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.walkExpr(st, el)
		}
	case *ast.KeyValueExpr:
		w.walkExpr(st, e.Value)
	case *ast.FuncLit:
		// A literal reaching here escapes synchronous control flow (it is
		// stored or passed as a value): analyze it as its own function
		// with an empty lockset, since we cannot tell when it runs.
		w.spawnLit(e, "func literal")
	}
}

// walkCall interprets one call expression: lock operations, builtins,
// inlined literals, blocking classification, and call-edge recording.
func (w *funcWalker) walkCall(st *lockState, call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)

	// Immediately invoked literal: runs here, under the current lockset.
	if lit, ok := fun.(*ast.FuncLit); ok {
		for _, a := range call.Args {
			w.walkArg(st, a)
		}
		w.walkStmtList(st, lit.Body.List)
		return
	}

	// close(ch).
	if id, ok := fun.(*ast.Ident); ok && id.Name == "close" && len(call.Args) == 1 && w.isBuiltin(id) {
		w.walkArg(st, call.Args[0])
		w.recordClose(call, call.Args[0])
		return
	}

	// Lock/Unlock on a sync mutex.
	if key, acquire, ok := w.lockOp(call); ok {
		if sel, selOK := fun.(*ast.SelectorExpr); selOK {
			w.walkExpr(st, sel.X)
		}
		if acquire {
			w.fn.acquires = append(w.fn.acquires, acquireSite{key: key, node: call, held: heldCopy(st)})
			st.acquire(key)
		} else {
			st.release(key.id)
		}
		return
	}

	callee := calleeFunc(w.pkg, call.Fun)

	// sync.Once.Do(f): f runs synchronously under the current lockset.
	if callee != nil && callee.Name() == "Do" && isSyncType(methodRecvNamed(w.pkg, call.Fun), "Once") && len(call.Args) == 1 {
		if lit, ok := ast.Unparen(call.Args[0]).(*ast.FuncLit); ok {
			w.walkStmtList(st, lit.Body.List)
		} else {
			w.walkArg(st, call.Args[0])
		}
		return
	}

	// Evaluate the receiver/fun expression and arguments.
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		w.walkExpr(st, sel.X)
	}
	for _, a := range call.Args {
		w.walkArg(st, a)
	}

	if callee != nil {
		if callee.Name() == "Done" && isSyncType(methodRecvNamed(w.pkg, call.Fun), "WaitGroup") {
			w.fn.callsDone = true
		}
		ext := w.extBlocking(call, callee)
		if ext != "" {
			w.block(st, call, ext)
		}
		w.fn.calls = append(w.fn.calls, callSite{callee: callee, node: call, held: heldCopy(st), extBlock: ext})
	}
}

// walkArg interprets a call argument. Function literals passed as
// arguments may run at any later time, so they are analyzed as separate
// functions with an empty lockset rather than inline.
func (w *funcWalker) walkArg(st *lockState, a ast.Expr) {
	if lit, ok := ast.Unparen(a).(*ast.FuncLit); ok {
		w.spawnLit(lit, "func literal")
		return
	}
	w.walkExpr(st, a)
}

// walkGo records a `go` statement: arguments evaluate in the caller, the
// body runs on a fresh goroutine with an empty lockset.
func (w *funcWalker) walkGo(st *lockState, s *ast.GoStmt) {
	call := s.Call
	fun := ast.Unparen(call.Fun)
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		w.walkExpr(st, sel.X)
	}
	for _, a := range call.Args {
		w.walkArg(st, a)
	}
	gs := goSite{node: s, held: heldCopy(st)}
	if lit, ok := fun.(*ast.FuncLit); ok {
		gs.target = w.spawnLit(lit, "go literal")
	} else {
		gs.callee = calleeFunc(w.pkg, call.Fun)
	}
	w.fn.gos = append(w.fn.gos, gs)
}

// walkDefer interprets a defer statement. A deferred Unlock is the
// canonical release-at-return idiom: the lock stays held for the rest of
// the body, which is exactly what leaving the state untouched models. A
// deferred close or WaitGroup.Done is a termination signal. Other
// deferred calls are recorded against the current lockset: in the
// dominant `mu.Lock(); defer mu.Unlock(); defer f()` ordering, f runs
// before the unlock, so the approximation errs conservatively.
func (w *funcWalker) walkDefer(st *lockState, s *ast.DeferStmt) {
	call := s.Call
	fun := ast.Unparen(call.Fun)

	if _, _, ok := w.lockOp(call); ok {
		return // deferred Lock is nonsense; deferred Unlock keeps the body's held state
	}
	if id, ok := fun.(*ast.Ident); ok && id.Name == "close" && len(call.Args) == 1 && w.isBuiltin(id) {
		w.fn.defersSignal = true
		w.recordClose(call, call.Args[0])
		return
	}
	if lit, ok := fun.(*ast.FuncLit); ok {
		for _, a := range call.Args {
			w.walkArg(st, a)
		}
		// The deferred literal runs at return; interpret it against an
		// empty lockset but within this function's summary so closes and
		// Done calls count as this function's signals.
		w.scanDeferredLit(lit)
		w.walkStmtList(&lockState{}, lit.Body.List)
		return
	}
	for _, a := range call.Args {
		w.walkArg(st, a)
	}
	if callee := calleeFunc(w.pkg, call.Fun); callee != nil {
		if callee.Name() == "Done" && isSyncType(methodRecvNamed(w.pkg, call.Fun), "WaitGroup") {
			w.fn.callsDone = true
			return
		}
		ext := w.extBlocking(call, callee)
		if ext != "" {
			w.block(st, call, ext+" (deferred)")
		}
		w.fn.calls = append(w.fn.calls, callSite{callee: callee, node: call, held: heldCopy(st), extBlock: ext})
	}
}

// scanDeferredLit marks termination signals carried by a deferred
// literal's body (close/Done anywhere inside it).
func (w *funcWalker) scanDeferredLit(lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" && w.isBuiltin(id) {
			w.fn.defersSignal = true
		}
		if callee := calleeFunc(w.pkg, call.Fun); callee != nil &&
			callee.Name() == "Done" && isSyncType(methodRecvNamed(w.pkg, call.Fun), "WaitGroup") {
			w.fn.callsDone = true
		}
		return true
	})
}

// spawnLit analyzes an escaping function literal as its own synthetic
// funcInfo, inheriting the receiver and channel-ownership maps (captured
// variables keep their ownership) but starting from an empty lockset.
func (w *funcWalker) spawnLit(lit *ast.FuncLit, kind string) *funcInfo {
	pos := w.pkg.Fset.Position(lit.Pos())
	fi := &funcInfo{
		name:     fmt.Sprintf("%s (%s at %s:%d)", w.fn.name, kind, filepath.Base(pos.Filename), pos.Line),
		decl:     lit,
		filename: w.fn.filename,
	}
	w.an.funcs = append(w.an.funcs, fi)
	w2 := &funcWalker{pkg: w.pkg, an: w.an, fn: fi, recv: w.recv, owned: w.owned, unbuf: w.unbuf}
	w2.noteParams(lit.Type)
	w2.walkStmtList(&lockState{}, lit.Body.List)
	return fi
}

// noteChanMakes records channel ownership facts from an assignment:
// x := make(chan T[, n]) makes x owned here, and unbuffered when n is
// absent or a constant zero.
func (w *funcWalker) noteChanMakes(lhs, rhs []ast.Expr) {
	if len(lhs) != len(rhs) {
		return
	}
	for i, r := range rhs {
		call, ok := ast.Unparen(r).(*ast.CallExpr)
		if !ok {
			continue
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "make" || !w.isBuiltin(id) || len(call.Args) == 0 {
			continue
		}
		t := w.pkg.Info.TypeOf(call.Args[0])
		if t == nil {
			continue
		}
		if _, isChan := t.Underlying().(*types.Chan); !isChan {
			continue
		}
		target, ok := ast.Unparen(lhs[i]).(*ast.Ident)
		if !ok {
			continue
		}
		obj := w.pkg.Info.Defs[target]
		if obj == nil {
			obj = w.pkg.Info.Uses[target]
		}
		if obj == nil {
			continue
		}
		w.owned[obj] = true
		if len(call.Args) == 1 {
			w.unbuf[obj] = true
		} else if tv, ok := w.pkg.Info.Types[call.Args[1]]; ok && tv.Value != nil && tv.Value.String() == "0" {
			w.unbuf[obj] = true
		}
	}
}

// noteUnbufferedSend records a send on a known-unbuffered channel while
// a lock is held (the chanownership rule's second trigger: the sender
// cannot make progress until a receiver runs, and the receiver may need
// the lock).
func (w *funcWalker) noteUnbufferedSend(st *lockState, s *ast.SendStmt) {
	if len(st.held) == 0 {
		return
	}
	id, ok := ast.Unparen(s.Chan).(*ast.Ident)
	if !ok {
		return
	}
	obj := w.pkg.Info.Uses[id]
	if obj == nil || !w.unbuf[obj] {
		return
	}
	w.fn.sends = append(w.fn.sends, sendSite{node: s, held: heldCopy(st), what: id.Name})
}

// recordClose classifies one close(ch) call's ownership. A function owns
// a channel it made, a channel field of its own receiver, a send-only
// channel parameter (the producer-closes convention), or a package-level
// channel. Everything else — bidirectional parameters, fields of other
// values, call results — is closing someone else's channel.
func (w *funcWalker) recordClose(call *ast.CallExpr, ch ast.Expr) {
	owned, what, why := w.chanOwnership(ch)
	w.fn.closes = append(w.fn.closes, closeSite{node: call, owned: owned, what: what, why: why})
}

// chanOwnership decides whether this function owns the channel denoted
// by e; when it does not, why explains the verdict.
func (w *funcWalker) chanOwnership(e ast.Expr) (owned bool, what, why string) {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		obj := w.pkg.Info.Uses[e]
		if obj == nil {
			obj = w.pkg.Info.Defs[e]
		}
		if obj == nil {
			return true, e.Name, "" // unresolved: give the benefit of the doubt
		}
		if w.owned[obj] {
			return true, e.Name, ""
		}
		if v, ok := obj.(*types.Var); ok && v.Parent() == w.pkg.Types.Scope() {
			return true, e.Name, "" // package-level channel
		}
		if w.isParam(obj) {
			return false, e.Name, "a channel received as a plain parameter; only a send-only (chan<-) parameter marks the callee as owner"
		}
		return false, e.Name, "a channel this function neither created nor received as owner"
	case *ast.SelectorExpr:
		what = exprIdentPath(e)
		if base, ok := ast.Unparen(e.X).(*ast.Ident); ok && w.recv != nil {
			if obj := w.pkg.Info.Uses[base]; obj != nil && obj == w.recv {
				return true, what, "" // field of the method's own receiver
			}
		}
		return false, what, "a channel field of a value this method does not own (not its receiver)"
	default:
		return false, "channel expression", "a channel reached through an arbitrary expression"
	}
}

// isParam reports whether obj is one of the current function's (or an
// enclosing literal's) parameters. Parameters are *types.Var whose
// declaration sits inside a parameter list; checking IsField excludes
// struct fields, and the owned map has already excused send-only ones.
func (w *funcWalker) isParam(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	var isParam bool
	ast.Inspect(w.fn.decl, func(n ast.Node) bool {
		var ft *ast.FuncType
		switch n := n.(type) {
		case *ast.FuncDecl:
			ft = n.Type
		case *ast.FuncLit:
			ft = n.Type
		default:
			return true
		}
		if ft.Params == nil {
			return true
		}
		for _, field := range ft.Params.List {
			for _, name := range field.Names {
				if w.pkg.Info.Defs[name] == obj {
					isParam = true
					return false
				}
			}
		}
		return true
	})
	return isParam
}

// exprIdentPath renders a dotted selector path ("n.closed") for
// messages.
func exprIdentPath(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprIdentPath(e.X) + "." + e.Sel.Name
	default:
		return "?"
	}
}

// isBuiltin reports whether id resolves to the universe-scope builtin of
// the same name (i.e. is not shadowed).
func (w *funcWalker) isBuiltin(id *ast.Ident) bool {
	obj := w.pkg.Info.Uses[id]
	if obj == nil {
		return true // unresolved: assume the builtin
	}
	_, ok := obj.(*types.Builtin)
	return ok
}

// lockOp recognizes Lock/RLock/Unlock/RUnlock calls on sync.Mutex or
// sync.RWMutex (including promoted methods of embedded mutexes) and
// computes the lock key. Read and write locks share a key: an RLock held
// across a blocking call or taken in inverted order is the same hazard
// once a writer queues up.
func (w *funcWalker) lockOp(call *ast.CallExpr) (key lockKey, acquire bool, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return lockKey{}, false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return lockKey{}, false, false
	}
	s := w.pkg.Info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return lockKey{}, false, false
	}
	fn, isFn := s.Obj().(*types.Func)
	if !isFn {
		return lockKey{}, false, false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return lockKey{}, false, false
	}
	recvNamed := derefNamed(sig.Recv().Type())
	if recvNamed == nil || !pkgPathSuffix(recvNamed.Obj().Pkg(), "sync") {
		return lockKey{}, false, false
	}
	if name := recvNamed.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return lockKey{}, false, false
	}
	return w.lockKeyFor(sel.X), acquire, true
}

// lockKeyFor computes the instance-insensitive key for the mutex denoted
// by e (the receiver expression of a Lock/Unlock call).
func (w *funcWalker) lockKeyFor(e ast.Expr) lockKey {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.SelectorExpr:
		// n.mu: key by the owning named type, not the instance.
		if named := derefNamed(w.pkg.Info.TypeOf(e.X)); named != nil {
			return lockKey{
				id:    named.String() + "." + e.Sel.Name,
				label: named.Obj().Name() + "." + e.Sel.Name,
			}
		}
		return w.posKey(e, exprIdentPath(e))
	case *ast.Ident:
		obj := w.pkg.Info.Uses[e]
		if obj == nil {
			obj = w.pkg.Info.Defs[e]
		}
		if v, ok := obj.(*types.Var); ok {
			if v.Parent() == w.pkg.Types.Scope() {
				pkgPath := ""
				if v.Pkg() != nil {
					pkgPath = v.Pkg().Path()
				}
				return lockKey{id: pkgPath + "." + v.Name(), label: v.Name()}
			}
			// A named type with an embedded mutex, locked through the
			// value itself (s.Lock()): key by the type.
			if named := derefNamed(v.Type()); named != nil && !pkgPathSuffix(named.Obj().Pkg(), "sync") {
				return lockKey{
					id:    named.String() + ".<embedded mutex>",
					label: named.Obj().Name() + ".Mutex",
				}
			}
			// A plain local mutex variable: key by declaration site.
			pos := w.pkg.Fset.Position(v.Pos())
			name := fmt.Sprintf("%s@%s:%d", v.Name(), filepath.Base(pos.Filename), pos.Line)
			return lockKey{id: name, label: v.Name()}
		}
		return w.posKey(e, e.Name)
	default:
		return w.posKey(e, "mutex expression")
	}
}

// posKey builds a position-unique fallback key for mutex expressions the
// abstraction cannot name (map elements, call results).
func (w *funcWalker) posKey(e ast.Expr, label string) lockKey {
	pos := w.pkg.Fset.Position(e.Pos())
	id := fmt.Sprintf("%s@%s:%d:%d", label, filepath.Base(pos.Filename), pos.Line, pos.Column)
	return lockKey{id: id, label: label}
}

// extBlocking classifies calls into external (or stdlib) functions that
// are known to block: WaitGroup.Wait, timer waits, dials, connection
// I/O, listener accepts, and the repo's wire codec. Plain io.Writer
// sinks (buffers, files used for traces) are deliberately not classified
// — only types that carry network deadlines count as connection I/O.
func (w *funcWalker) extBlocking(call *ast.CallExpr, callee *types.Func) string {
	name := callee.Name()
	if recv := methodRecvNamed(w.pkg, call.Fun); recv != nil {
		if isSyncType(recv, "WaitGroup") && name == "Wait" {
			return "sync.WaitGroup.Wait"
		}
	}
	if callee.Pkg() != nil && callee.Pkg().Path() == "time" && name == "Sleep" {
		return "time.Sleep"
	}
	if pkgPathSuffix(callee.Pkg(), "wire") && (name == "ReadMsg" || name == "WriteMsg") {
		return "wire." + name + " (connection I/O)"
	}
	if name == "Dial" || name == "DialTimeout" {
		return name + " (connection setup)"
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	recvType := sig.Recv().Type()
	switch name {
	case "Read", "Write":
		if hasMethod(recvType, "SetReadDeadline") {
			return "net.Conn " + name + " (connection I/O)"
		}
	case "Accept":
		if hasMethod(recvType, "Addr") {
			return "Listener.Accept"
		}
	case "Wait":
		if named := derefNamed(recvType); named != nil && isSyncType(named, "Cond") {
			return "sync.Cond.Wait"
		}
	}
	return ""
}

// hasMethod reports whether t (or *t) has a method with the given name.
func hasMethod(t types.Type, name string) bool {
	if _, ok := t.Underlying().(*types.Pointer); !ok {
		if _, isIface := t.Underlying().(*types.Interface); !isIface {
			if _, isPtr := t.(*types.Pointer); !isPtr {
				t = types.NewPointer(t)
			}
		}
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
	_, ok := obj.(*types.Func)
	return ok
}

// isSyncType reports whether named is sync.<name>.
func isSyncType(named *types.Named, name string) bool {
	return named != nil && named.Obj().Name() == name && pkgPathSuffix(named.Obj().Pkg(), "sync")
}

// derefNamed unwraps pointers and aliases down to a named type, or nil.
func derefNamed(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	named, _ := t.(*types.Named)
	return named
}

// loopExits reports whether a `for {}` body contains a statement that
// can leave the loop: a return, a goto, a panic call, or a break that
// binds to this loop (breaks inside nested loops, switches, and selects
// bind to those instead).
func loopExits(body *ast.BlockStmt) bool {
	for _, s := range body.List {
		if stmtExitsLoop(s, true) {
			return true
		}
	}
	return false
}

// stmtExitsLoop is the recursive worker for loopExits. breakExits tracks
// whether an unlabeled break at this nesting level leaves the loop under
// inspection.
func stmtExitsLoop(s ast.Stmt, breakExits bool) bool {
	switch s := s.(type) {
	case nil:
		return false
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		if s.Tok == token.GOTO {
			return true
		}
		if s.Tok == token.BREAK && (breakExits || s.Label != nil) {
			return true
		}
		return false
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
		return false
	case *ast.BlockStmt:
		for _, inner := range s.List {
			if stmtExitsLoop(inner, breakExits) {
				return true
			}
		}
		return false
	case *ast.IfStmt:
		if stmtExitsLoop(s.Body, breakExits) {
			return true
		}
		return s.Else != nil && stmtExitsLoop(s.Else, breakExits)
	case *ast.LabeledStmt:
		return stmtExitsLoop(s.Stmt, breakExits)
	case *ast.ForStmt:
		return stmtExitsLoop(s.Body, false)
	case *ast.RangeStmt:
		return stmtExitsLoop(s.Body, false)
	case *ast.SwitchStmt:
		return caseBodiesExit(s.Body)
	case *ast.TypeSwitchStmt:
		return caseBodiesExit(s.Body)
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				for _, inner := range cc.Body {
					if stmtExitsLoop(inner, false) {
						return true
					}
				}
			}
		}
		return false
	default:
		return false
	}
}

// caseBodiesExit scans switch clauses for loop-exiting statements
// (unlabeled break binds to the switch, so it does not count).
func caseBodiesExit(body *ast.BlockStmt) bool {
	for _, clause := range body.List {
		if cc, ok := clause.(*ast.CaseClause); ok {
			for _, inner := range cc.Body {
				if stmtExitsLoop(inner, false) {
					return true
				}
			}
		}
	}
	return false
}
