package lint

import "testing"

func TestLockHeldFires(t *testing.T) {
	src := `package fixture

import (
	"sync"
	"time"
)

type server struct {
	mu sync.Mutex
	ch chan int
	wg sync.WaitGroup
}

func (s *server) badSend() {
	s.mu.Lock()
	s.ch <- 1
	s.mu.Unlock()
}

func (s *server) badRecv() {
	s.mu.Lock()
	defer s.mu.Unlock()
	<-s.ch
}

func (s *server) badWait() {
	s.mu.Lock()
	s.wg.Wait()
	s.mu.Unlock()
}

func (s *server) badSleep() {
	s.mu.Lock()
	time.Sleep(time.Millisecond)
	s.mu.Unlock()
}

func (s *server) badSelect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.ch:
	}
}

func (s *server) pump() {
	<-s.ch
}

func (s *server) badTransitive() {
	s.mu.Lock()
	s.pump()
	s.mu.Unlock()
}
`
	got := checkFixture(t, LockHeld(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "lockheld", 16, 23, 28, 34, 41, 52)
}

func TestLockHeldConnIO(t *testing.T) {
	// A conn-shaped type (Read/Write plus deadline methods) counts as
	// connection I/O; a plain writer does not.
	src := `package fixture

import (
	"sync"
	"time"
)

type fakeConn struct{}

func (fakeConn) Read(p []byte) (int, error)        { return 0, nil }
func (fakeConn) Write(p []byte) (int, error)       { return 0, nil }
func (fakeConn) SetReadDeadline(t time.Time) error { return nil }

type plainSink struct{}

func (plainSink) Write(p []byte) (int, error) { return 0, nil }

type wrap struct {
	mu   sync.Mutex
	conn fakeConn
	sink plainSink
}

func (w *wrap) badConnWrite(p []byte) {
	w.mu.Lock()
	defer w.mu.Unlock()
	_, _ = w.conn.Write(p)
}

func (w *wrap) okSinkWrite(p []byte) {
	w.mu.Lock()
	defer w.mu.Unlock()
	_, _ = w.sink.Write(p)
}
`
	got := checkFixture(t, LockHeld(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "lockheld", 27)
}

func TestLockHeldCleanPatterns(t *testing.T) {
	src := `package fixture

import "sync"

type box struct {
	mu sync.Mutex
	ch chan int
}

func (b *box) okReleased() {
	b.mu.Lock()
	b.mu.Unlock()
	<-b.ch
}

func (b *box) okSelectDefault() {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case v := <-b.ch:
		_ = v
	default:
	}
}

func (b *box) okBranchRelease(c bool) {
	b.mu.Lock()
	if c {
		b.mu.Unlock()
		<-b.ch
		return
	}
	b.mu.Unlock()
}

func (b *box) okComputeOnly() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.grow()
}

func (b *box) grow() { b.ch = make(chan int, 8) }
`
	got := checkFixture(t, LockHeld(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "lockheld")
}

func TestLockHeldBranchMayHold(t *testing.T) {
	// A lock released on only one branch may still be held at the join:
	// the analysis unions the branches, so the later receive is flagged.
	src := `package fixture

import "sync"

type half struct {
	mu sync.Mutex
	ch chan int
}

func (h *half) maybeHolds(c bool) {
	h.mu.Lock()
	if c {
		h.mu.Unlock()
	}
	<-h.ch
}
`
	got := checkFixture(t, LockHeld(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "lockheld", 15)
}

func TestLockHeldRespectsIgnore(t *testing.T) {
	src := `package fixture

import "sync"

type q struct {
	mu sync.Mutex
	ch chan int
}

func (s *q) waitUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:ignore lockheld the lock is the intended serializer here
	<-s.ch
}
`
	got := checkFixture(t, LockHeld(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "lockheld")
}
