package lint

import "go/ast"

// LockOrder reports lock-acquisition-order inversions across the
// package's call graph: if one code path acquires lock A and then
// (possibly through callees) lock B, while another path acquires B and
// then A, two goroutines running those paths concurrently can each hold
// one lock and wait forever for the other. Each inversion is reported
// once, with both witness paths spelled out. The rule also reports
// reacquisition of a lock already held — directly or through a callee —
// since sync mutexes are not reentrant and a self-reacquire deadlocks
// unconditionally. Locks are keyed by role (type + field), not by
// instance; see docs/LINTING.md.
func LockOrder() *Rule {
	return &Rule{
		Name: "lockorder",
		Doc:  "flag lock-acquisition-order inversions (A→B on one path, B→A on another) and reacquisition of held mutexes",
		Skip: func(relFile string, isTest bool) bool { return isTest },
		Check: func(pkg *Package, file *ast.File, report ReportFunc) {
			an := pkg.lockInfo()
			fname := pkg.Fset.Position(file.Package).Filename
			for _, inv := range an.inversions {
				if inv.filename != fname {
					continue
				}
				report(inv.node, "%s", inv.msg)
			}
		},
	}
}
