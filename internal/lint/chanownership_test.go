package lint

import "testing"

func TestChanOwnershipCloseFires(t *testing.T) {
	src := `package fixture

type peer struct {
	done chan struct{}
}

func badParam(ch chan int) {
	close(ch)
}

func badOtherField(p *peer) {
	close(p.done)
}

func newCh() chan int { return make(chan int) }

func badResult() {
	close(newCh())
}
`
	got := checkFixture(t, ChanOwnership(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "chanownership", 8, 12, 18)
}

func TestChanOwnershipUnbufferedSendUnderLock(t *testing.T) {
	src := `package fixture

import "sync"

type c struct {
	mu sync.Mutex
}

func (s *c) badUnbufSend() {
	ch := make(chan int)
	s.mu.Lock()
	ch <- 1
	s.mu.Unlock()
	close(ch)
}

func (s *c) okBufferedSend() {
	ch := make(chan int, 4)
	s.mu.Lock()
	ch <- 1
	s.mu.Unlock()
	close(ch)
}

func (s *c) okUnbufNoLock() {
	ch := make(chan int)
	go func() { <-ch }()
	ch <- 1
}
`
	got := checkFixture(t, ChanOwnership(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "chanownership", 12)
}

func TestChanOwnershipCleanPatterns(t *testing.T) {
	src := `package fixture

type s2 struct {
	closed chan struct{}
}

var global = make(chan int)

func (s *s2) okReceiverField() {
	close(s.closed)
}

func okLocal() {
	ch := make(chan int)
	close(ch)
}

func okProducer(out chan<- int) {
	defer close(out)
	out <- 1
}

func okGlobal() {
	close(global)
}

func okCaptured() {
	ch := make(chan int, 1)
	go func() {
		close(ch)
	}()
}
`
	got := checkFixture(t, ChanOwnership(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "chanownership")
}

func TestChanOwnershipRespectsIgnore(t *testing.T) {
	src := `package fixture

func shutdown(ch chan int) {
	//lint:ignore chanownership the caller hands over ownership at shutdown
	close(ch)
}
`
	got := checkFixture(t, ChanOwnership(), map[string]string{"internal/fix/a.go": src})
	wantFindings(t, got, "chanownership")
}
