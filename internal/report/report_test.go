package report

import (
	"strings"
	"testing"

	"chordbalance/internal/stats"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta", 2.5)
	out := tb.String()
	for _, want := range []string{"Demo", "name", "value", "alpha", "beta", "2.500", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
	if r := tb.Row(0); r[0] != "alpha" || r[1] != "1" {
		t.Errorf("Row(0) = %v", r)
	}
}

func TestTableRowOverflowAndUnderflow(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("1", "2", "3") // overflow dropped
	tb.AddRow("only")        // underflow padded
	out := tb.String()
	if strings.Contains(out, "3") {
		t.Error("overflow cell must be dropped")
	}
	if !strings.Contains(out, "only") {
		t.Error("short row lost")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("x,y", `say "hi"`)
	tb.AddRow("plain")
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "a,b\n\"x,y\",\"say \"\"hi\"\"\"\nplain,\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("Demo", "a", "b")
	tb.AddRow("x|y", "2")
	tb.AddRow("solo")
	var b strings.Builder
	if err := tb.WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"**Demo**", "| a | b |", "| --- | --- |", `x\|y`, "| solo |  |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramPair(t *testing.T) {
	a := stats.NewLogHistogram(100, 1)
	b := stats.NewLogHistogram(100, 1)
	a.Add(0)
	a.Add(5)
	a.Add(50)
	b.Add(500)
	b.Add(5)
	var sb strings.Builder
	if err := HistogramPair(&sb, "left", a, "right", b, 10); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"left", "right", "0 (idle)", "[1,10)", ">=100", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("pair output missing %q:\n%s", want, out)
		}
	}
}

func TestWritePointsCSV(t *testing.T) {
	var b strings.Builder
	err := WritePointsCSV(&b, []Point{{X: 0, Y: 1, Kind: "node"}, {X: 1, Y: 0, Kind: "task"}})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "x,y,kind\n") || !strings.Contains(out, "node") {
		t.Errorf("points CSV = %q", out)
	}
}

func TestAsciiRing(t *testing.T) {
	pts := []Point{{X: 0, Y: 1, Kind: "node"}, {X: 0, Y: -1, Kind: "task"}}
	out := AsciiRing(pts, 21)
	if !strings.Contains(out, "O") || !strings.Contains(out, "+") {
		t.Errorf("ring missing glyphs:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 21 {
		t.Errorf("grid height = %d", len(lines))
	}
	// Node collision beats task: same point twice.
	both := []Point{{X: 0, Y: 1, Kind: "task"}, {X: 0, Y: 1, Kind: "node"}}
	out = AsciiRing(both, 21)
	if !strings.Contains(out, "O") {
		t.Error("node must win collisions")
	}
	// Even sizes are rounded up; tiny sizes clamped.
	if AsciiRing(nil, 4) == "" {
		t.Error("degenerate size must still render")
	}
}

func TestAtoiSafe(t *testing.T) {
	if atoiSafe("123") != 123 || atoiSafe("x") != 0 || atoiSafe("") != 0 {
		t.Error("atoiSafe broken")
	}
}
