package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"chordbalance/internal/stats"
)

// This file renders the paper's figures as standalone SVG documents, so
// the harness can produce publication-style plots with no plotting
// dependency. Three renderers cover every figure type: paired workload
// histograms (Figures 1, 4-14), the unit-circle ring diagram (Figures
// 2-3), and line series (the work-per-tick observation).

const (
	svgColorA    = "#4878a8" // series A: muted blue
	svgColorB    = "#c8643c" // series B: muted orange
	svgColorGrid = "#d8d8d8"
	svgColorText = "#333333"
)

type svgBuilder struct {
	strings.Builder
	w, h int
}

func newSVG(w, h int) *svgBuilder {
	b := &svgBuilder{w: w, h: h}
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	return b
}

func (b *svgBuilder) text(x, y float64, size int, anchor, s string) {
	fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="%d" fill="%s" text-anchor="%s">%s</text>`+"\n",
		x, y, size, svgColorText, anchor, escapeXML(s))
}

func (b *svgBuilder) rect(x, y, w, h float64, fill string, opacity float64) {
	fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" fill-opacity="%.2f"/>`+"\n",
		x, y, w, h, fill, opacity)
}

func (b *svgBuilder) line(x1, y1, x2, y2 float64, stroke string, width float64) {
	fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"/>`+"\n",
		x1, y1, x2, y2, stroke, width)
}

func (b *svgBuilder) circle(cx, cy, r float64, fill string) {
	fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>`+"\n", cx, cy, r, fill)
}

func (b *svgBuilder) close() string {
	b.WriteString("</svg>\n")
	return b.String()
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// SVGHistogramPair renders two same-shaped histograms as grouped bars —
// the layout of the paper's Figures 4-14. Pass b == nil for a
// single-series plot (Figure 1).
func SVGHistogramPair(w io.Writer, title, labelA string, a *stats.Histogram, labelB string, b *stats.Histogram) error {
	if b != nil && len(b.Edges) != len(a.Edges) {
		return fmt.Errorf("report: histogram shapes differ")
	}
	type bin struct {
		label  string
		ca, cb int
	}
	bins := []bin{{a.BinLabel(-1), a.ZeroCount, zeroOr(b, func(h *stats.Histogram) int { return h.ZeroCount })}}
	for i := range a.Counts {
		cb := 0
		if b != nil {
			cb = b.Counts[i]
		}
		if a.Counts[i] == 0 && cb == 0 {
			continue
		}
		bins = append(bins, bin{a.BinLabel(i), a.Counts[i], cb})
	}
	if a.OverCount > 0 || (b != nil && b.OverCount > 0) {
		bins = append(bins, bin{a.BinLabel(len(a.Counts)), a.OverCount,
			zeroOr(b, func(h *stats.Histogram) int { return h.OverCount })})
	}
	maxCount := 1
	for _, bn := range bins {
		if bn.ca > maxCount {
			maxCount = bn.ca
		}
		if bn.cb > maxCount {
			maxCount = bn.cb
		}
	}

	const width, height = 720, 420
	const left, right, top, bottom = 60, 20, 50, 90
	plotW := float64(width - left - right)
	plotH := float64(height - top - bottom)
	sb := newSVG(width, height)
	sb.text(float64(width)/2, 24, 15, "middle", title)

	// Horizontal gridlines at quarters.
	for i := 0; i <= 4; i++ {
		y := top + plotH*float64(i)/4
		sb.line(left, y, float64(width-right), y, svgColorGrid, 1)
		sb.text(left-6, y+4, 11, "end", fmt.Sprint(maxCount-maxCount*i/4))
	}

	group := plotW / float64(len(bins))
	barW := group * 0.38
	if b == nil {
		barW = group * 0.75
	}
	for i, bn := range bins {
		x0 := left + group*float64(i)
		hA := plotH * float64(bn.ca) / float64(maxCount)
		if b == nil {
			sb.rect(x0+group*0.125, top+plotH-hA, barW, hA, svgColorA, 0.9)
		} else {
			hB := plotH * float64(bn.cb) / float64(maxCount)
			sb.rect(x0+group*0.08, top+plotH-hA, barW, hA, svgColorA, 0.9)
			sb.rect(x0+group*0.54, top+plotH-hB, barW, hB, svgColorB, 0.9)
		}
		// Rotated bin labels.
		fmt.Fprintf(sb, `<text x="0" y="0" font-family="sans-serif" font-size="10" fill="%s" text-anchor="end" transform="translate(%.1f,%.1f) rotate(-45)">%s</text>`+"\n",
			svgColorText, x0+group/2, top+plotH+14, escapeXML(bn.label))
	}
	sb.line(left, top+plotH, float64(width-right), top+plotH, svgColorText, 1.5)

	// Legend.
	sb.rect(left, float64(height)-26, 12, 12, svgColorA, 0.9)
	sb.text(left+18, float64(height)-16, 12, "start", labelA)
	if b != nil {
		lx := left + 18 + 8*len(labelA) + 30
		sb.rect(float64(lx), float64(height)-26, 12, 12, svgColorB, 0.9)
		sb.text(float64(lx)+18, float64(height)-16, 12, "start", labelB)
	}
	_, err := io.WriteString(w, sb.close())
	return err
}

func zeroOr(h *stats.Histogram, f func(*stats.Histogram) int) int {
	if h == nil {
		return 0
	}
	return f(h)
}

// SVGRing renders the unit-circle diagram of Figures 2-3: nodes as
// filled circles, tasks as small crosses, on the ring.
func SVGRing(w io.Writer, title string, points []Point) error {
	const size = 480
	c := float64(size) / 2
	r := c * 0.82
	sb := newSVG(size, size+30)
	sb.text(c, 24, 15, "middle", title)
	fmt.Fprintf(sb, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
		c, c+30, r, svgColorGrid)
	for _, p := range points {
		x := c + p.X*r
		y := c + 30 - p.Y*r
		if p.Kind == "node" {
			sb.circle(x, y, 7, svgColorB)
		} else {
			sb.line(x-4, y, x+4, y, svgColorA, 1.6)
			sb.line(x, y-4, x, y+4, svgColorA, 1.6)
		}
	}
	sb.circle(36, float64(size)+12, 7, svgColorB)
	sb.text(50, float64(size)+17, 12, "start", "node")
	sb.line(116, float64(size)+12, 124, float64(size)+12, svgColorA, 1.6)
	sb.line(120, float64(size)+8, 120, float64(size)+16, svgColorA, 1.6)
	sb.text(132, float64(size)+17, 12, "start", "task")
	_, err := io.WriteString(w, sb.close())
	return err
}

// SVGSeries renders one or more y-series against a shared integer x axis
// (used for the work-per-tick observation).
func SVGSeries(w io.Writer, title, xlabel string, labels []string, series [][]float64) error {
	if len(labels) != len(series) || len(series) == 0 {
		return fmt.Errorf("report: labels/series mismatch")
	}
	n := 0
	maxY := 1.0
	for _, s := range series {
		if len(s) > n {
			n = len(s)
		}
		for _, v := range s {
			if v > maxY {
				maxY = v
			}
		}
	}
	if n < 2 {
		return fmt.Errorf("report: series too short")
	}
	colors := []string{svgColorA, svgColorB, "#58985c", "#9058a8", "#a89038"}

	const width, height = 720, 400
	const left, right, top, bottom = 70, 20, 50, 60
	plotW := float64(width - left - right)
	plotH := float64(height - top - bottom)
	sb := newSVG(width, height)
	sb.text(float64(width)/2, 24, 15, "middle", title)
	for i := 0; i <= 4; i++ {
		y := top + plotH*float64(i)/4
		sb.line(left, y, float64(width-right), y, svgColorGrid, 1)
		sb.text(left-6, y+4, 11, "end", fmt.Sprintf("%.0f", maxY-maxY*float64(i)/4))
	}
	sb.line(left, top+plotH, float64(width-right), top+plotH, svgColorText, 1.5)
	sb.text(float64(width)/2, float64(height)-34, 12, "middle", xlabel)

	for si, s := range series {
		color := colors[si%len(colors)]
		var path strings.Builder
		for i, v := range s {
			x := left + plotW*float64(i)/float64(n-1)
			y := top + plotH*(1-v/maxY)
			if math.IsNaN(y) {
				continue
			}
			if i == 0 {
				fmt.Fprintf(&path, "M%.1f %.1f", x, y)
			} else {
				fmt.Fprintf(&path, " L%.1f %.1f", x, y)
			}
		}
		fmt.Fprintf(sb, `<path d="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n", path.String(), color)
		lx := left + float64(si)*130
		sb.line(lx, float64(height)-14, lx+22, float64(height)-14, color, 2)
		sb.text(lx+28, float64(height)-10, 12, "start", labels[si])
	}
	_, err := io.WriteString(w, sb.close())
	return err
}
