// Package report renders experiment results: aligned text tables for the
// paper's Tables I and II, CSV series for plotting, paired ASCII
// histograms for the workload-distribution figures, and the unit-circle
// coordinates of Figures 2-3.
package report

import (
	"fmt"
	"io"
	"strings"

	"chordbalance/internal/stats"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, and
// missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Headers) {
		cells = cells[:len(t.Headers)]
	}
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row of formatted values: each argument is rendered
// with %v except float64, which uses 3 decimal places like the paper.
func (t *Table) AddRowf(values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.3f", x)
		default:
			cells[i] = fmt.Sprint(x)
		}
	}
	t.AddRow(cells...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Row returns a copy of row i's cells.
func (t *Table) Row(i int) []string {
	return append([]string(nil), t.rows[i]...)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i := range t.Headers {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// WriteCSV emits the table as CSV (headers first). Cells containing
// commas or quotes are quoted.
func (t *Table) WriteCSV(w io.Writer) error {
	writeLine := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeLine(t.Headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		padded := make([]string, len(t.Headers))
		copy(padded, row)
		if err := writeLine(padded); err != nil {
			return err
		}
	}
	return nil
}

// WriteMarkdown emits the table as a GitHub-flavored Markdown table, the
// format EXPERIMENTS.md uses, so refreshed results can be pasted in
// directly.
func (t *Table) WriteMarkdown(w io.Writer) error {
	writeLine := func(cells []string) error {
		if _, err := io.WriteString(w, "|"); err != nil {
			return err
		}
		for _, c := range cells {
			if _, err := fmt.Fprintf(w, " %s |", strings.ReplaceAll(c, "|", "\\|")); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "**%s**\n\n", t.Title); err != nil {
			return err
		}
	}
	if err := writeLine(t.Headers); err != nil {
		return err
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	if err := writeLine(sep); err != nil {
		return err
	}
	for _, row := range t.rows {
		padded := make([]string, len(t.Headers))
		copy(padded, row)
		if err := writeLine(padded); err != nil {
			return err
		}
	}
	return nil
}

// HistogramPair renders two same-shaped histograms side by side — the
// format of the paper's Figures 4-14, which always compare one network
// against another at the same tick.
func HistogramPair(w io.Writer, labelA string, a *stats.Histogram, labelB string, b *stats.Histogram, width int) error {
	if width < 1 {
		width = 30
	}
	max := 1
	rows := make([][3]string, 0, len(a.Counts)+2)
	add := func(label string, ca, cb int) {
		if ca > max {
			max = ca
		}
		if cb > max {
			max = cb
		}
		rows = append(rows, [3]string{label, fmt.Sprint(ca), fmt.Sprint(cb)})
	}
	add(a.BinLabel(-1), a.ZeroCount, b.ZeroCount)
	for i := range a.Counts {
		if a.Counts[i] == 0 && b.Counts[i] == 0 {
			continue
		}
		add(a.BinLabel(i), a.Counts[i], b.Counts[i])
	}
	if a.OverCount > 0 || b.OverCount > 0 {
		add(a.BinLabel(len(a.Counts)), a.OverCount, b.OverCount)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%16s | %-*s | %-*s\n", "workload", width+7, labelA, width+7, labelB)
	fmt.Fprintf(&sb, "%s-+-%s-+-%s\n", strings.Repeat("-", 16),
		strings.Repeat("-", width+7), strings.Repeat("-", width+7))
	for _, r := range rows {
		ca := atoiSafe(r[1])
		cb := atoiSafe(r[2])
		fmt.Fprintf(&sb, "%16s | %-*s %6s | %-*s %6s\n",
			r[0],
			width, strings.Repeat("#", ca*width/max), r[1],
			width, strings.Repeat("#", cb*width/max), r[2])
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func atoiSafe(s string) int {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int(c-'0')
	}
	return n
}

// Point is one unit-circle coordinate of Figures 2-3.
type Point struct {
	X, Y float64
	Kind string // "node" or "task"
}

// WritePointsCSV emits points as x,y,kind rows with a header.
func WritePointsCSV(w io.Writer, points []Point) error {
	if _, err := io.WriteString(w, "x,y,kind\n"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%.6f,%.6f,%s\n", p.X, p.Y, p.Kind); err != nil {
			return err
		}
	}
	return nil
}

// AsciiRing draws a crude terminal rendering of the unit circle with
// nodes (O) and tasks (+), for eyeballing Figures 2-3 without a plotter.
func AsciiRing(points []Point, size int) string {
	if size < 11 {
		size = 21
	}
	if size%2 == 0 {
		size++
	}
	grid := make([][]byte, size)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", size))
	}
	c := size / 2
	for _, p := range points {
		// x right, y up; row 0 is the top.
		col := c + int(p.X*float64(c)*0.95)
		row := c - int(p.Y*float64(c)*0.95)
		if row < 0 || row >= size || col < 0 || col >= size {
			continue
		}
		ch := byte('+')
		if p.Kind == "node" {
			ch = 'O'
		}
		if grid[row][col] != 'O' { // nodes win collisions
			grid[row][col] = ch
		}
	}
	var b strings.Builder
	for _, row := range grid {
		b.Write(row)
		b.WriteString("\n")
	}
	return b.String()
}
