package report_test

import (
	"fmt"

	"chordbalance/internal/report"
)

// ExampleSparkline renders a decaying series — the shape of a
// sim.workload.max trace under a working strategy.
func ExampleSparkline() {
	series := []float64{120, 96, 80, 64, 50, 38, 27, 18, 10, 4, 1, 0}
	fmt.Println(report.Sparkline(series, 12))
	// Output:
	// █▆▅▄▃▃▂▂▁▁▁▁
}

// ExampleSparklineRow shows the labeled one-line view dhttrace prints
// for each metric series.
func ExampleSparklineRow() {
	series := []float64{0, 1, 4, 9, 16, 25}
	fmt.Println(report.SparklineRow("sim.tasks.done_total", series, 6))
	// Output:
	// sim.tasks.done_total         ▁▁▂▃▅█  [0..25]
}
