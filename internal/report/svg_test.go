package report

import (
	"strings"
	"testing"

	"chordbalance/internal/stats"
)

func validSVG(t *testing.T, s string) {
	t.Helper()
	if !strings.HasPrefix(s, "<svg ") || !strings.HasSuffix(s, "</svg>\n") {
		t.Fatalf("not a well-formed SVG envelope:\n%.120s...", s)
	}
	for _, tag := range []string{"<rect", "<text"} {
		if !strings.Contains(s, tag) {
			t.Errorf("SVG missing %s", tag)
		}
	}
	// Every opened tag family must balance at least structurally: no
	// stray unescaped & or <.
	if strings.Contains(s, "&&") {
		t.Error("unescaped ampersand")
	}
}

func TestSVGHistogramPair(t *testing.T) {
	a := stats.NewLogHistogram(1000, 1)
	b := stats.NewLogHistogram(1000, 1)
	a.Add(0)
	a.Add(5)
	a.Add(500)
	b.Add(50)
	b.Add(5000)
	var sb strings.Builder
	if err := SVGHistogramPair(&sb, "Figure X", "left & side", a, "right", b); err != nil {
		t.Fatal(err)
	}
	s := sb.String()
	validSVG(t, s)
	if !strings.Contains(s, "left &amp; side") {
		t.Error("legend label not escaped")
	}
	if !strings.Contains(s, svgColorB) {
		t.Error("second series color missing")
	}
}

func TestSVGHistogramSingle(t *testing.T) {
	a := stats.NewLogHistogram(100, 1)
	a.Add(3)
	var sb strings.Builder
	if err := SVGHistogramPair(&sb, "Figure 1", "workload", a, "", nil); err != nil {
		t.Fatal(err)
	}
	s := sb.String()
	validSVG(t, s)
	if strings.Contains(s, svgColorB) {
		t.Error("single-series plot must not draw series B")
	}
}

func TestSVGHistogramShapeMismatch(t *testing.T) {
	a := stats.NewLogHistogram(100, 1)
	b := stats.NewLogHistogram(1000, 1)
	var sb strings.Builder
	if err := SVGHistogramPair(&sb, "t", "a", a, "b", b); err == nil {
		t.Error("shape mismatch must fail")
	}
}

func TestSVGRing(t *testing.T) {
	pts := []Point{
		{X: 0, Y: 1, Kind: "node"},
		{X: 1, Y: 0, Kind: "task"},
		{X: -1, Y: 0, Kind: "task"},
	}
	var sb strings.Builder
	if err := SVGRing(&sb, "Figure 2", pts); err != nil {
		t.Fatal(err)
	}
	s := sb.String()
	validSVG(t, s)
	if strings.Count(s, "<circle") < 2 { // ring outline + 1 node + legend
		t.Error("missing circles")
	}
}

func TestSVGSeries(t *testing.T) {
	var sb strings.Builder
	err := SVGSeries(&sb, "Work per tick", "tick",
		[]string{"none", "churn"},
		[][]float64{{10, 9, 8, 7}, {10, 9.5, 9.2, 9}})
	if err != nil {
		t.Fatal(err)
	}
	s := sb.String()
	validSVG(t, s)
	if strings.Count(s, "<path") != 2 {
		t.Errorf("want 2 paths, got %d", strings.Count(s, "<path"))
	}
}

func TestSVGSeriesErrors(t *testing.T) {
	var sb strings.Builder
	if err := SVGSeries(&sb, "t", "x", []string{"a"}, nil); err == nil {
		t.Error("mismatch must fail")
	}
	if err := SVGSeries(&sb, "t", "x", []string{"a"}, [][]float64{{1}}); err == nil {
		t.Error("too-short series must fail")
	}
}

func TestEscapeXML(t *testing.T) {
	if got := escapeXML(`<a & "b">`); got != "&lt;a &amp; &quot;b&quot;&gt;" {
		t.Errorf("escapeXML = %q", got)
	}
}
