package report

import (
	"fmt"
	"math"
	"strings"
)

// sparkTicks are the eight block glyphs a sparkline is quantized onto.
var sparkTicks = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a numeric series as a fixed-width row of block
// glyphs, scaled to the series' own min..max range. Series longer than
// width are downsampled by bucket means (so spikes average, not vanish
// arbitrarily); shorter series render one glyph per value. A flat
// series renders as all-minimum glyphs, and an empty series as "".
// dhttrace uses it to eyeball a metric's shape without a plotter.
func Sparkline(values []float64, width int) string {
	if len(values) == 0 {
		return ""
	}
	if width < 1 {
		width = 60
	}
	if len(values) > width {
		values = downsample(values, width)
	}
	lo, hi := values[0], values[0]
	for _, v := range values[1:] {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkTicks)-1))
		}
		b.WriteRune(sparkTicks[idx])
	}
	return b.String()
}

// SparklineRow renders "label  spark  [min..max]" — the one-line series
// view dhttrace prints per metric.
func SparklineRow(label string, values []float64, width int) string {
	lo, hi := seriesRange(values)
	return fmt.Sprintf("%-28s %s  [%s..%s]", label, Sparkline(values, width),
		trimFloat(lo), trimFloat(hi))
}

// downsample reduces values to exactly width buckets of (near-)equal
// size, each replaced by its mean.
func downsample(values []float64, width int) []float64 {
	out := make([]float64, width)
	n := len(values)
	for i := 0; i < width; i++ {
		start := i * n / width
		end := (i + 1) * n / width
		if end <= start {
			end = start + 1
		}
		sum := 0.0
		for _, v := range values[start:end] {
			sum += v
		}
		out[i] = sum / float64(end-start)
	}
	return out
}

// seriesRange returns the min and max of values (0, 0 when empty).
func seriesRange(values []float64) (lo, hi float64) {
	if len(values) == 0 {
		return 0, 0
	}
	lo, hi = values[0], values[0]
	for _, v := range values[1:] {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return lo, hi
}

// trimFloat formats a float compactly: integers without a decimal
// point, everything else with up to three significant decimals.
func trimFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return fmt.Sprintf("%d", int64(f))
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", f), "0"), ".")
}
