package strategy

import (
	"testing"

	"chordbalance/internal/ids"
)

func TestStrengthInvitationPicksStrongest(t *testing.T) {
	w := newFakeWorld()
	w.params.InviteThreshold = 100
	_, v := w.addHost(0, 500, 5)
	v.workload = 500
	weakIdle := &fakeHost{index: 1, workload: 0, cap: 5, strength: 1}
	strongIdle := &fakeHost{index: 2, workload: 0, cap: 5, strength: 4}
	w.preds[0] = []VNode{
		&fakeVNode{id: ids.FromUint64(10), host: weakIdle},
		&fakeVNode{id: ids.FromUint64(20), host: strongIdle},
	}
	NewStrengthInvitation().Decide(w)
	if len(w.created) != 1 || w.created[0].host != 2 {
		t.Fatalf("strongest predecessor must help: %v", w.created)
	}
}

func TestStrengthInvitationTiesBreakOnWorkload(t *testing.T) {
	w := newFakeWorld()
	w.params.InviteThreshold = 100
	w.params.SybilThreshold = 10
	_, v := w.addHost(0, 500, 5)
	v.workload = 500
	busier := &fakeHost{index: 1, workload: 8, cap: 5, strength: 2}
	idler := &fakeHost{index: 2, workload: 1, cap: 5, strength: 2}
	w.preds[0] = []VNode{
		&fakeVNode{id: ids.FromUint64(10), host: busier},
		&fakeVNode{id: ids.FromUint64(20), host: idler},
	}
	NewStrengthInvitation().Decide(w)
	if len(w.created) != 1 || w.created[0].host != 2 {
		t.Fatalf("equal strength must fall back to least workload: %v", w.created)
	}
}

func TestStrengthInvitationRefusesLikeBase(t *testing.T) {
	w := newFakeWorld()
	w.params.InviteThreshold = 100
	_, v := w.addHost(0, 500, 5)
	v.workload = 500
	busy := &fakeHost{index: 1, workload: 50, cap: 5, strength: 9}
	w.preds[0] = []VNode{&fakeVNode{id: ids.FromUint64(10), host: busy}}
	NewStrengthInvitation().Decide(w)
	if len(w.created) != 0 {
		t.Error("busy predecessors must refuse regardless of strength")
	}
}

func TestStrengthAwareRandomStrongAlwaysActs(t *testing.T) {
	w := newFakeWorld()
	h, _ := w.addHost(0, 0, 5)
	h.strength = 3 // the maximum in this world: probability 1
	NewStrengthAwareRandom().Decide(w)
	if len(w.created) != 1 {
		t.Fatalf("strongest host must act every pass: %v", w.created)
	}
}

func TestStrengthAwareRandomWeakActsProportionally(t *testing.T) {
	w := newFakeWorld()
	weak, _ := w.addHost(0, 0, 50)
	weak.strength = 1
	strong, _ := w.addHost(1, 0, 50)
	strong.strength = 4
	s := NewStrengthAwareRandom()
	// Run many passes; the weak host should act in roughly 1/4 of them.
	weakCreations := 0
	const passes = 400
	for i := 0; i < passes; i++ {
		before := len(w.created)
		s.Decide(w)
		for _, c := range w.created[before:] {
			if c.host == 0 {
				weakCreations++
			}
		}
		// Reset capacity so the cap never binds.
		weak.sybils, strong.sybils = 0, 0
	}
	if weakCreations < passes/8 || weakCreations > passes/2 {
		t.Errorf("weak host created %d/%d, want ~%d", weakCreations, passes, passes/4)
	}
}

func TestStrengthAwareRandomDropsIdleSybils(t *testing.T) {
	w := newFakeWorld()
	h, _ := w.addHost(0, 0, 5)
	h.strength = 1
	h.sybils = 2
	NewStrengthAwareRandom().Decide(w)
	if len(w.dropped) != 1 {
		t.Error("workless sybils must be withdrawn")
	}
}

func TestTargetedInjectionUsesSplitPoint(t *testing.T) {
	w := newFakeWorld()
	w.addHost(0, 0, 5)
	victim := &fakeVNode{
		id: ids.FromUint64(5000), pred: ids.FromUint64(1000),
		workload: 40, host: &fakeHost{index: 1},
	}
	w.succs[0] = []VNode{victim}
	split := ids.FromUint64(3333)
	w.splitPoints = map[ids.ID]ids.ID{victim.id: split}
	NewTargetedInjection().Decide(w)
	if len(w.created) != 1 || w.created[0].id != split {
		t.Fatalf("sybil must land on the split point: %v", w.created)
	}
	if w.messages["workload-query"] == 0 || w.messages["split-query"] != 1 {
		t.Errorf("messages = %v", w.messages)
	}
}

func TestTargetedInjectionSkipsTinyVictims(t *testing.T) {
	w := newFakeWorld()
	w.addHost(0, 0, 5)
	victim := &fakeVNode{
		id: ids.FromUint64(5000), pred: ids.FromUint64(1000),
		workload: 1, host: &fakeHost{index: 1},
	}
	w.succs[0] = []VNode{victim}
	NewTargetedInjection().Decide(w)
	if len(w.created) != 0 {
		t.Error("a single remaining key is not worth splitting")
	}
}

func TestTargetedInjectionNoSplitPointAvailable(t *testing.T) {
	w := newFakeWorld()
	w.addHost(0, 0, 5)
	victim := &fakeVNode{
		id: ids.FromUint64(5000), pred: ids.FromUint64(1000),
		workload: 40, host: &fakeHost{index: 1},
	}
	w.succs[0] = []VNode{victim} // splitPoints map empty: not ok
	NewTargetedInjection().Decide(w)
	if len(w.created) != 0 {
		t.Error("no split point: no Sybil")
	}
}

func TestOraclePairsIdleWithHeaviest(t *testing.T) {
	w := newFakeWorld()
	_, idleV := w.addHost(0, 0, 5)
	_ = idleV
	_, heavyV := w.addHost(1, 400, 5)
	heavyV.workload = 400
	_, lightV := w.addHost(2, 10, 5)
	lightV.workload = 10
	split := ids.FromUint64(4242)
	w.splitPoints = map[ids.ID]ids.ID{heavyV.id: split}
	NewOracle().Decide(w)
	if len(w.created) != 1 || w.created[0].host != 0 || w.created[0].id != split {
		t.Fatalf("oracle must split the heaviest arc for the idle host: %v", w.created)
	}
}

func TestOracleSkipsOwnVNodes(t *testing.T) {
	w := newFakeWorld()
	h, v := w.addHost(0, 0, 5)
	_ = h
	// The only heavy vnode belongs to the idle host itself... except an
	// idle host has workload 0, so fake a second host with 1 key (below
	// the split threshold of 2).
	_, tiny := w.addHost(1, 1, 5)
	tiny.workload = 1
	NewOracle().Decide(w)
	if len(w.created) != 0 {
		t.Errorf("nothing worth splitting: %v", w.created)
	}
	_ = v
}

func TestOracleDropsIdleSybils(t *testing.T) {
	w := newFakeWorld()
	h, _ := w.addHost(0, 0, 5)
	h.sybils = 2
	NewOracle().Decide(w)
	if len(w.dropped) != 1 {
		t.Error("oracle must withdraw workless Sybils")
	}
}

func TestExtensionNamesAndByName(t *testing.T) {
	for _, name := range []string{"strength-invitation", "strength-random", "targeted", "oracle"} {
		s, ok := ByName(name)
		if !ok {
			t.Fatalf("ByName(%q) missing", name)
		}
		if s.Name() != name {
			t.Errorf("Name() = %q, want %q", s.Name(), name)
		}
	}
}
