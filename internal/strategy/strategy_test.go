package strategy

import (
	"testing"

	"chordbalance/internal/ids"
	"chordbalance/internal/xrand"
)

// --- mock world ---

type fakeHost struct {
	index    int
	workload int
	sybils   int
	cap      int
	strength int
}

func (h *fakeHost) Index() int           { return h.index }
func (h *fakeHost) Workload() int        { return h.workload }
func (h *fakeHost) SybilCount() int      { return h.sybils }
func (h *fakeHost) CanCreateSybil() bool { return h.sybils < h.cap }
func (h *fakeHost) Strength() int        { return h.strength }

type fakeVNode struct {
	id       ids.ID
	pred     ids.ID
	workload int
	host     *fakeHost
}

func (v *fakeVNode) ID() ids.ID     { return v.id }
func (v *fakeVNode) PredID() ids.ID { return v.pred }
func (v *fakeVNode) Workload() int  { return v.workload }
func (v *fakeVNode) Host() Host     { return v.host }

type creation struct {
	host int
	id   ids.ID
}

type fakeWorld struct {
	params    Params
	rng       *xrand.Rand
	hosts     []*fakeHost
	primaries []*fakeVNode
	succs     map[int][]VNode // keyed by host index of the asking vnode
	preds     map[int][]VNode
	created   []creation
	dropped   []int
	messages  map[string]int
	// acquireOnCreate is what CreateSybil reports as acquired work.
	acquireOnCreate int
	refuseCreate    bool
	// splitPoints maps a vnode ID to the split point SplitPoint reports.
	splitPoints map[ids.ID]ids.ID
}

func newFakeWorld() *fakeWorld {
	return &fakeWorld{
		params:   Params{NumSuccessors: 5, DecisionEvery: 5}.WithDefaults(),
		rng:      xrand.New(1),
		succs:    map[int][]VNode{},
		preds:    map[int][]VNode{},
		messages: map[string]int{},
	}
}

func (w *fakeWorld) Params() Params   { return w.params }
func (w *fakeWorld) RNG() *xrand.Rand { return w.rng }
func (w *fakeWorld) RandomID() ids.ID { return ids.Random(w.rng) }
func (w *fakeWorld) EachHost(fn func(Host, VNode)) {
	for i, h := range w.hosts {
		fn(h, w.primaries[i])
	}
}
func (w *fakeWorld) Successors(v VNode, k int) []VNode {
	return w.succs[v.Host().Index()]
}
func (w *fakeWorld) Predecessors(v VNode, k int) []VNode {
	return w.preds[v.Host().Index()]
}
func (w *fakeWorld) CreateSybil(h Host, id ids.ID) (int, bool) {
	if w.refuseCreate || !h.CanCreateSybil() {
		return 0, false
	}
	w.created = append(w.created, creation{h.Index(), id})
	h.(*fakeHost).sybils++
	return w.acquireOnCreate, true
}
func (w *fakeWorld) DropSybils(h Host) {
	w.dropped = append(w.dropped, h.Index())
	h.(*fakeHost).sybils = 0
}
func (w *fakeWorld) ChargeMessages(kind string, n int) { w.messages[kind] += n }
func (w *fakeWorld) SplitPoint(v VNode) (ids.ID, bool) {
	id, ok := w.splitPoints[v.ID()]
	return id, ok
}
func (w *fakeWorld) VNodesOf(h Host) []VNode {
	for i, fh := range w.hosts {
		if fh.index == h.Index() {
			return []VNode{w.primaries[i]}
		}
	}
	return nil
}

func (w *fakeWorld) addHost(index, workload, cap int) (*fakeHost, *fakeVNode) {
	h := &fakeHost{index: index, workload: workload, cap: cap, strength: 1}
	v := &fakeVNode{
		id:       ids.FromUint64(uint64(100 * (index + 1))),
		pred:     ids.FromUint64(uint64(100 * index)),
		workload: workload,
		host:     h,
	}
	w.hosts = append(w.hosts, h)
	w.primaries = append(w.primaries, v)
	return h, v
}

// --- tests ---

func TestParamsWithDefaults(t *testing.T) {
	p := Params{}.WithDefaults()
	if p.NumSuccessors != 5 || p.DecisionEvery != 5 {
		t.Errorf("defaults = %+v", p)
	}
	p = Params{NumSuccessors: 10, DecisionEvery: 3}.WithDefaults()
	if p.NumSuccessors != 10 || p.DecisionEvery != 3 {
		t.Error("explicit values must be preserved")
	}
}

func TestNoneDoesNothing(t *testing.T) {
	w := newFakeWorld()
	w.addHost(0, 0, 5)
	NewNone().Decide(w)
	if len(w.created) != 0 || len(w.dropped) != 0 {
		t.Error("None must not act")
	}
	if NewNone().Name() != "none" {
		t.Error("name")
	}
}

func TestRandomInjectionCreatesWhenIdle(t *testing.T) {
	w := newFakeWorld()
	w.addHost(0, 0, 5)  // idle: creates
	w.addHost(1, 10, 5) // busy: does not
	NewRandomInjection().Decide(w)
	if len(w.created) != 1 || w.created[0].host != 0 {
		t.Fatalf("created = %v", w.created)
	}
}

func TestRandomInjectionRespectsThreshold(t *testing.T) {
	w := newFakeWorld()
	w.params.SybilThreshold = 10
	w.addHost(0, 10, 5) // at threshold: creates
	w.addHost(1, 11, 5) // above: does not
	NewRandomInjection().Decide(w)
	if len(w.created) != 1 || w.created[0].host != 0 {
		t.Fatalf("created = %v", w.created)
	}
}

func TestRandomInjectionOneSybilPerPass(t *testing.T) {
	w := newFakeWorld()
	w.addHost(0, 0, 5)
	NewRandomInjection().Decide(w)
	if len(w.created) != 1 {
		t.Fatalf("a single pass must create at most one Sybil, got %d", len(w.created))
	}
}

func TestRandomInjectionDropsWorklessSybils(t *testing.T) {
	w := newFakeWorld()
	h, _ := w.addHost(0, 0, 5)
	h.sybils = 3
	NewRandomInjection().Decide(w)
	if len(w.dropped) != 1 || w.dropped[0] != 0 {
		t.Fatalf("dropped = %v", w.dropped)
	}
	// After dropping, the host is idle and under cap: it re-rolls.
	if len(w.created) != 1 {
		t.Errorf("expected a fresh Sybil after dropping, got %v", w.created)
	}
}

func TestRandomInjectionKeepsSybilsWithWork(t *testing.T) {
	w := newFakeWorld()
	h, _ := w.addHost(0, 4, 5)
	h.sybils = 2
	NewRandomInjection().Decide(w)
	if len(w.dropped) != 0 {
		t.Error("sybils with work must not be dropped")
	}
}

func TestRandomInjectionHonorsCap(t *testing.T) {
	w := newFakeWorld()
	h, _ := w.addHost(0, 1, 2) // small workload but > 0 so no drop
	w.params.SybilThreshold = 5
	h.sybils = 2 // at cap
	NewRandomInjection().Decide(w)
	if len(w.created) != 0 {
		t.Error("host at Sybil cap must not create")
	}
}

func TestNeighborInjectionPicksLargestArc(t *testing.T) {
	w := newFakeWorld()
	h, v := w.addHost(0, 0, 5)
	_ = h
	small := &fakeVNode{
		id:   ids.FromUint64(2000),
		pred: ids.FromUint64(1990), // arc width 10
		host: &fakeHost{index: 1},
	}
	big := &fakeVNode{
		id:   ids.FromUint64(5000),
		pred: ids.FromUint64(2000), // arc width 3000
		host: &fakeHost{index: 2},
	}
	w.succs[0] = []VNode{small, big}
	NewNeighborInjection().Decide(w)
	if len(w.created) != 1 {
		t.Fatalf("created = %v", w.created)
	}
	want := ids.Midpoint(big.pred, big.id)
	if w.created[0].id != want {
		t.Errorf("sybil at %v, want midpoint of big arc %v", w.created[0].id, want)
	}
	_ = v
}

func TestNeighborInjectionSkipsOwnVNodes(t *testing.T) {
	w := newFakeWorld()
	h, _ := w.addHost(0, 0, 5)
	ownSybil := &fakeVNode{
		id:   ids.FromUint64(9000),
		pred: ids.FromUint64(1000), // biggest arc, but it's ours
		host: h,
	}
	other := &fakeVNode{
		id:   ids.FromUint64(9500),
		pred: ids.FromUint64(9000),
		host: &fakeHost{index: 1},
	}
	w.succs[0] = []VNode{ownSybil, other}
	NewNeighborInjection().Decide(w)
	if len(w.created) != 1 || w.created[0].id != ids.Midpoint(other.pred, other.id) {
		t.Errorf("must skip own arcs: %v", w.created)
	}
}

func TestNeighborInjectionAvoidRepeats(t *testing.T) {
	w := newFakeWorld()
	w.params.AvoidRepeats = true
	w.addHost(0, 0, 5)
	big := &fakeVNode{
		id:   ids.FromUint64(5000),
		pred: ids.FromUint64(1000),
		host: &fakeHost{index: 1},
	}
	small := &fakeVNode{
		id:   ids.FromUint64(5100),
		pred: ids.FromUint64(5000),
		host: &fakeHost{index: 2},
	}
	w.succs[0] = []VNode{big, small}
	w.acquireOnCreate = 0 // the Sybil finds nothing
	s := NewNeighborInjection()
	s.Decide(w)
	if len(w.created) != 1 || w.created[0].id != ids.Midpoint(big.pred, big.id) {
		t.Fatalf("first pass must try the big arc: %v", w.created)
	}
	// Second pass: big arc is blacklisted, falls to the small one.
	s.Decide(w)
	if len(w.created) != 2 || w.created[1].id != ids.Midpoint(small.pred, small.id) {
		t.Fatalf("second pass must avoid the failed arc: %v", w.created)
	}
}

func TestNeighborInjectionNoCandidates(t *testing.T) {
	w := newFakeWorld()
	h, _ := w.addHost(0, 0, 5)
	own := &fakeVNode{id: ids.FromUint64(1), pred: ids.FromUint64(0), host: h}
	w.succs[0] = []VNode{own}
	NewNeighborInjection().Decide(w)
	if len(w.created) != 0 {
		t.Error("no foreign successors: nothing to do")
	}
}

func TestSmartNeighborPicksMostLoaded(t *testing.T) {
	w := newFakeWorld()
	w.addHost(0, 0, 5)
	light := &fakeVNode{
		id: ids.FromUint64(3000), pred: ids.FromUint64(1000), // huge arc
		workload: 2, host: &fakeHost{index: 1},
	}
	heavy := &fakeVNode{
		id: ids.FromUint64(3010), pred: ids.FromUint64(3000), // tiny arc
		workload: 50, host: &fakeHost{index: 2},
	}
	w.succs[0] = []VNode{light, heavy}
	NewSmartNeighbor().Decide(w)
	if len(w.created) != 1 || w.created[0].id != ids.Midpoint(heavy.pred, heavy.id) {
		t.Errorf("smart must split the most-loaded arc: %v", w.created)
	}
	if w.messages["workload-query"] != 2 {
		t.Errorf("queries = %d, want one per successor", w.messages["workload-query"])
	}
}

func TestSmartNeighborSkipsEmptyNeighborhood(t *testing.T) {
	w := newFakeWorld()
	w.addHost(0, 0, 5)
	idle := &fakeVNode{
		id: ids.FromUint64(3000), pred: ids.FromUint64(1000),
		workload: 0, host: &fakeHost{index: 1},
	}
	w.succs[0] = []VNode{idle}
	NewSmartNeighbor().Decide(w)
	if len(w.created) != 0 {
		t.Error("no work in neighborhood: must not create a Sybil")
	}
}

func TestInvitationHelpsOverloaded(t *testing.T) {
	w := newFakeWorld()
	w.params.InviteThreshold = 100
	_, overloaded := w.addHost(0, 500, 5)
	overloaded.workload = 500
	helperBusy := &fakeHost{index: 1, workload: 50, cap: 5}
	helperIdle := &fakeHost{index: 2, workload: 0, cap: 5}
	w.preds[0] = []VNode{
		&fakeVNode{id: ids.FromUint64(10), host: helperBusy},
		&fakeVNode{id: ids.FromUint64(20), host: helperIdle},
	}
	NewInvitation().Decide(w)
	if len(w.created) != 1 || w.created[0].host != 2 {
		t.Fatalf("the idle predecessor must help: %v", w.created)
	}
	want := ids.Midpoint(overloaded.pred, overloaded.id)
	if w.created[0].id != want {
		t.Errorf("sybil at %v, want inviter's arc midpoint %v", w.created[0].id, want)
	}
	if w.messages["invitation"] != 2 {
		t.Errorf("announcement messages = %d", w.messages["invitation"])
	}
}

func TestInvitationRefusedWhenNoIdlePred(t *testing.T) {
	w := newFakeWorld()
	w.params.InviteThreshold = 100
	_, v := w.addHost(0, 500, 5)
	v.workload = 500
	busy := &fakeHost{index: 1, workload: 50, cap: 5}
	w.preds[0] = []VNode{&fakeVNode{id: ids.FromUint64(10), host: busy}}
	NewInvitation().Decide(w)
	if len(w.created) != 0 {
		t.Error("invitation must be refused when no predecessor qualifies")
	}
}

func TestInvitationRefusedWhenPredAtCap(t *testing.T) {
	w := newFakeWorld()
	w.params.InviteThreshold = 100
	_, v := w.addHost(0, 500, 5)
	v.workload = 500
	capped := &fakeHost{index: 1, workload: 0, cap: 2, sybils: 2}
	w.preds[0] = []VNode{&fakeVNode{id: ids.FromUint64(10), host: capped}}
	NewInvitation().Decide(w)
	if len(w.created) != 0 {
		t.Error("predecessor with too many Sybils must refuse")
	}
}

func TestInvitationNotTriggeredBelowThreshold(t *testing.T) {
	w := newFakeWorld()
	w.params.InviteThreshold = 100
	_, v := w.addHost(0, 100, 5) // exactly at threshold: not overloaded
	v.workload = 100
	w.preds[0] = []VNode{&fakeVNode{id: ids.FromUint64(10), host: &fakeHost{index: 1, cap: 5}}}
	NewInvitation().Decide(w)
	if len(w.created) != 0 {
		t.Error("threshold is strict")
	}
}

func TestInvitationHelperUsedOncePerPass(t *testing.T) {
	w := newFakeWorld()
	w.params.InviteThreshold = 10
	_, v0 := w.addHost(0, 100, 5)
	v0.workload = 100
	_, v1 := w.addHost(1, 100, 5)
	v1.workload = 100
	helper := &fakeHost{index: 9, workload: 0, cap: 5}
	w.preds[0] = []VNode{&fakeVNode{id: ids.FromUint64(10), host: helper}}
	w.preds[1] = []VNode{&fakeVNode{id: ids.FromUint64(10), host: helper}}
	NewInvitation().Decide(w)
	if len(w.created) != 1 {
		t.Errorf("one helper must help at most once per pass, created %d", len(w.created))
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"none", "churn", "random", "neighbor", "smart-neighbor", "smart", "invitation"} {
		if _, ok := ByName(name); !ok {
			t.Errorf("ByName(%q) not found", name)
		}
	}
	if _, ok := ByName("bogus"); ok {
		t.Error("unknown name must fail")
	}
	// Fresh instances each call: neighbor carries state.
	a, _ := ByName("neighbor")
	b, _ := ByName("neighbor")
	if a == b {
		t.Error("ByName must return fresh instances")
	}
}

func TestStrategyNames(t *testing.T) {
	cases := map[string]Strategy{
		"random":         NewRandomInjection(),
		"neighbor":       NewNeighborInjection(),
		"smart-neighbor": NewSmartNeighbor(),
		"invitation":     NewInvitation(),
	}
	for want, s := range cases {
		if s.Name() != want {
			t.Errorf("Name() = %q, want %q", s.Name(), want)
		}
	}
}
