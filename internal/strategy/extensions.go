package strategy

import "chordbalance/internal/ids"

// This file implements the paper's §VII future-work directions as
// concrete strategies, so the repository can measure what the authors
// only conjecture:
//
//   - "An avenue for future work could consider the node strength as a
//     factor": StrengthInvitation and StrengthAwareRandom.
//   - "if we removed the assumption that nodes cannot choose their own
//     ID ... this presents even more strategies": TargetedInjection.

// StrengthInvitation is Invitation with the helper chosen by strength
// rather than by emptiness: among the qualifying predecessors (workload
// at or below the Sybil threshold, spare capacity) the *strongest* one
// answers the call, so work migrates toward machines that can actually
// chew through it — the fix §VII proposes for the heterogeneous slowdown.
type StrengthInvitation struct{}

// NewStrengthInvitation returns the strength-aware invitation strategy.
func NewStrengthInvitation() Strategy { return StrengthInvitation{} }

// Name implements Strategy.
func (StrengthInvitation) Name() string { return "strength-invitation" }

// Decide implements Strategy.
func (StrengthInvitation) Decide(w World) {
	p := w.Params()
	helped := make(map[int]bool)
	w.EachHost(func(h Host, primary VNode) {
		if primary.Workload() <= p.InviteThreshold {
			return
		}
		preds := w.Predecessors(primary, p.NumSuccessors)
		w.ChargeMessages("invitation", len(preds))
		var helper Host
		for _, v := range preds {
			cand := v.Host()
			if cand.Index() == h.Index() || helped[cand.Index()] {
				continue
			}
			if cand.Workload() > p.SybilThreshold || !cand.CanCreateSybil() {
				continue
			}
			if helper == nil ||
				cand.Strength() > helper.Strength() ||
				(cand.Strength() == helper.Strength() && cand.Workload() < helper.Workload()) {
				helper = cand
			}
		}
		if helper == nil {
			return
		}
		if _, ok := w.CreateSybil(helper, ids.Midpoint(primary.PredID(), primary.ID())); ok {
			helped[helper.Index()] = true
		}
	})
}

// StrengthAwareRandom is random injection with strength-proportional
// eagerness: a weak machine sometimes skips its turn, so strong machines
// collect proportionally more of the floating work. In homogeneous
// networks it degenerates to plain random injection.
type StrengthAwareRandom struct {
	// maxStrength is discovered lazily from observed hosts; strengths
	// are static for a run.
	maxStrength int
}

// NewStrengthAwareRandom returns the strength-weighted random strategy.
func NewStrengthAwareRandom() Strategy { return &StrengthAwareRandom{} }

// Name implements Strategy.
func (*StrengthAwareRandom) Name() string { return "strength-random" }

// Decide implements Strategy.
func (s *StrengthAwareRandom) Decide(w World) {
	p := w.Params()
	if s.maxStrength == 0 {
		w.EachHost(func(h Host, _ VNode) {
			if h.Strength() > s.maxStrength {
				s.maxStrength = h.Strength()
			}
		})
		if s.maxStrength == 0 {
			return // no live hosts at all
		}
	}
	w.EachHost(func(h Host, primary VNode) {
		if h.Workload() == 0 && h.SybilCount() > 0 {
			w.DropSybils(h)
		}
		if h.Workload() > p.SybilThreshold || !h.CanCreateSybil() {
			return
		}
		// Create with probability strength/maxStrength: the strongest
		// hosts act every pass, a strength-1 host only 1/max of the time.
		if w.RNG().Float64()*float64(s.maxStrength) < float64(h.Strength()) {
			w.CreateSybil(h, w.RandomID())
		}
	})
}

// TargetedInjection drops the paper's no-ID-choice assumption (§V, §VII):
// an idle host queries its successors' workloads like SmartNeighbor, but
// places its Sybil at the exact identifier that splits the most-loaded
// successor's *remaining* keys in half — the best possible single
// placement given local information.
type TargetedInjection struct{}

// NewTargetedInjection returns the chosen-ID injection strategy.
func NewTargetedInjection() Strategy { return TargetedInjection{} }

// Name implements Strategy.
func (TargetedInjection) Name() string { return "targeted" }

// Decide implements Strategy.
func (TargetedInjection) Decide(w World) {
	p := w.Params()
	w.EachHost(func(h Host, primary VNode) {
		if h.Workload() == 0 && h.SybilCount() > 0 {
			w.DropSybils(h)
		}
		if h.Workload() > p.SybilThreshold || !h.CanCreateSybil() {
			return
		}
		succs := w.Successors(primary, p.NumSuccessors)
		w.ChargeMessages("workload-query", len(succs))
		var best VNode
		for _, v := range succs {
			if v.Host().Index() == h.Index() {
				continue
			}
			if best == nil || v.Workload() > best.Workload() {
				best = v
			}
		}
		if best == nil || best.Workload() < 2 {
			return
		}
		// One more message: ask the victim for its exact split point.
		w.ChargeMessages("split-query", 1)
		if id, ok := w.SplitPoint(best); ok {
			w.CreateSybil(h, id)
		}
	})
}
