// Package strategy implements the paper's four autonomous load-balancing
// strategies (plus the "smart" neighbor-injection variant of §VI-C). Each
// strategy makes purely local decisions: a host sees only its own workload
// and the successor/predecessor windows its virtual nodes already maintain,
// never any global state — the decentralization requirement of §I.
//
// Strategies act through the World interface, implemented by the
// simulation engine in internal/sim. A Strategy instance may carry
// per-run state (the neighbor strategy's retry blacklist), so build a
// fresh instance per simulation run and do not share instances across
// concurrently running simulations.
package strategy

import (
	"chordbalance/internal/ids"
	"chordbalance/internal/xrand"
)

// Params are the strategy-relevant knobs of §V-B.
type Params struct {
	// SybilThreshold is the residual workload at or below which a host
	// tries to acquire work by creating a Sybil. Paper default: 0.
	SybilThreshold int
	// InviteThreshold is the workload strictly above which a node using
	// the Invitation strategy announces that it needs help. The engine
	// derives the default (twice the initial fair share) when it is 0;
	// see DESIGN.md §3.
	InviteThreshold int
	// NumSuccessors is how many successors (and predecessors) each node
	// tracks. Paper default: 5.
	NumSuccessors int
	// DecisionEvery is the cadence of decision passes in ticks. Paper: 5.
	DecisionEvery int
	// AvoidRepeats makes neighbor injection skip arcs where a previous
	// Sybil acquired no work (the "mark that range as invalid" refinement
	// of §IV-C).
	AvoidRepeats bool
}

// WithDefaults fills unset fields with the paper's defaults.
func (p Params) WithDefaults() Params {
	if p.NumSuccessors == 0 {
		p.NumSuccessors = 5
	}
	if p.DecisionEvery == 0 {
		p.DecisionEvery = 5
	}
	return p
}

// Host is a read-only view of one physical machine.
type Host interface {
	// Index is the host's stable identity.
	Index() int
	// Workload is the residual task count across all the host's virtual
	// nodes — information a real host has locally (§V: nodes can examine
	// the amount of work they have).
	Workload() int
	// SybilCount is the number of live Sybil identities.
	SybilCount() int
	// CanCreateSybil reports whether the host is below its Sybil cap.
	CanCreateSybil() bool
	// Strength is the host's compute strength.
	Strength() int
}

// VNode is a read-only view of one virtual node on the ring.
type VNode interface {
	ID() ids.ID
	// PredID is the current predecessor's ID; (PredID, ID] is the arc the
	// node is responsible for.
	PredID() ids.ID
	// Workload is this virtual node's own residual task count.
	Workload() int
	// Host is the machine projecting this virtual node.
	Host() Host
}

// World is the mutable simulation surface a strategy acts through during
// one decision pass.
type World interface {
	Params() Params
	RNG() *xrand.Rand
	// EachHost calls fn for every live host along with its primary
	// virtual node, in stable host order.
	EachHost(fn func(h Host, primary VNode))
	// VNodesOf returns all of h's virtual nodes, primary first. A host
	// always knows its own identities; strategies that enumerate OTHER
	// hosts' vnodes through EachHost+VNodesOf are using global knowledge
	// and must say so (see Oracle).
	VNodesOf(h Host) []VNode
	// Successors returns up to k immediate successors of v clockwise,
	// nearest first (the node's successor list).
	Successors(v VNode, k int) []VNode
	// Predecessors returns up to k immediate predecessors of v
	// counterclockwise, nearest first.
	Predecessors(v VNode, k int) []VNode
	// CreateSybil inserts a new Sybil for h at id. acquired is the number
	// of task keys the Sybil took over; ok is false when the ID is
	// occupied or the host is at capacity (the Sybil is then not created).
	CreateSybil(h Host, id ids.ID) (acquired int, ok bool)
	// DropSybils removes all of h's Sybil identities from the ring.
	DropSybils(h Host)
	// RandomID draws a uniformly random currently-unoccupied ring ID.
	RandomID() ids.ID
	// SplitPoint returns the identifier that would split v's remaining
	// keys exactly in half, and false when v holds fewer than two keys.
	// Only the §VII extension strategies use it: it presumes nodes may
	// choose Sybil IDs freely, which base Chord does not allow.
	SplitPoint(v VNode) (ids.ID, bool)
	// ChargeMessages accounts the protocol traffic a deployment would
	// incur for this decision activity (workload queries, invitations).
	ChargeMessages(kind string, n int)
}

// Strategy is one autonomous load-balancing policy. Decide runs one
// decision pass; the engine calls it every Params.DecisionEvery ticks.
type Strategy interface {
	Name() string
	Decide(w World)
}

// None is the baseline: no Sybils, no reaction. With a nonzero churn rate
// it is the paper's Induced Churn strategy (churn is an engine-level
// process, not a decision rule).
type None struct{}

// NewNone returns the do-nothing strategy.
func NewNone() Strategy { return None{} }

// Name implements Strategy.
func (None) Name() string { return "none" }

// Decide implements Strategy; it does nothing.
func (None) Decide(World) {}

// RandomInjection is §IV-B: under-utilized hosts project a Sybil at a
// uniformly random identifier; hosts whose Sybils found no work withdraw
// them and re-roll on a later pass.
type RandomInjection struct{}

// NewRandomInjection returns the random-injection strategy.
func NewRandomInjection() Strategy { return RandomInjection{} }

// Name implements Strategy.
func (RandomInjection) Name() string { return "random" }

// Decide implements Strategy.
func (RandomInjection) Decide(w World) {
	p := w.Params()
	w.EachHost(func(h Host, primary VNode) {
		if h.Workload() == 0 && h.SybilCount() > 0 {
			// The Sybils acquired nothing (or it was all consumed):
			// withdraw them so a later pass can try fresh locations.
			w.DropSybils(h)
		}
		if h.Workload() <= p.SybilThreshold && h.CanCreateSybil() {
			// One Sybil per decision to avoid overwhelming the network
			// (§IV-B).
			w.CreateSybil(h, w.RandomID())
		}
	})
}

// NeighborInjection is §IV-C: an under-utilized host injects a Sybil into
// the largest arc among its successors — an estimate, requiring no
// workload queries — splitting that arc at its midpoint.
type NeighborInjection struct {
	// tried[host] records arc-owner IDs where this host's Sybil acquired
	// nothing, so AvoidRepeats can skip them. Cleared when the host
	// acquires work.
	tried map[int]map[ids.ID]struct{}
}

// NewNeighborInjection returns the estimate-based neighbor strategy.
func NewNeighborInjection() Strategy {
	return &NeighborInjection{tried: make(map[int]map[ids.ID]struct{})}
}

// Name implements Strategy.
func (*NeighborInjection) Name() string { return "neighbor" }

// Decide implements Strategy.
func (s *NeighborInjection) Decide(w World) {
	p := w.Params()
	w.EachHost(func(h Host, primary VNode) {
		if h.Workload() > p.SybilThreshold || !h.CanCreateSybil() {
			if h.Workload() > p.SybilThreshold {
				delete(s.tried, h.Index()) // acquired work: forget failures
			}
			return
		}
		succs := w.Successors(primary, p.NumSuccessors)
		var best VNode
		var bestArc ids.ID
		for _, v := range succs {
			if v.Host().Index() == h.Index() {
				continue // never steal from ourselves
			}
			if p.AvoidRepeats {
				if _, bad := s.tried[h.Index()][v.ID()]; bad {
					continue
				}
			}
			arc := v.PredID().Distance(v.ID())
			if best == nil || arc.Compare(bestArc) > 0 {
				best, bestArc = v, arc
			}
		}
		if best == nil {
			return
		}
		mid := ids.Midpoint(best.PredID(), best.ID())
		acquired, ok := w.CreateSybil(h, mid)
		if ok && acquired == 0 && p.AvoidRepeats {
			m := s.tried[h.Index()]
			if m == nil {
				m = make(map[ids.ID]struct{})
				s.tried[h.Index()] = m
			}
			m[best.ID()] = struct{}{}
		}
	})
}

// SmartNeighbor is the §VI-C refinement: instead of estimating by arc
// size, the host queries each successor's actual workload (costing
// NumSuccessors messages) and splits the most-loaded successor's arc.
type SmartNeighbor struct{}

// NewSmartNeighbor returns the query-based neighbor strategy.
func NewSmartNeighbor() Strategy { return SmartNeighbor{} }

// Name implements Strategy.
func (SmartNeighbor) Name() string { return "smart-neighbor" }

// Decide implements Strategy.
func (SmartNeighbor) Decide(w World) {
	p := w.Params()
	w.EachHost(func(h Host, primary VNode) {
		if h.Workload() > p.SybilThreshold || !h.CanCreateSybil() {
			return
		}
		succs := w.Successors(primary, p.NumSuccessors)
		w.ChargeMessages("workload-query", len(succs))
		var best VNode
		for _, v := range succs {
			if v.Host().Index() == h.Index() {
				continue
			}
			if best == nil || v.Workload() > best.Workload() {
				best = v
			}
		}
		if best == nil || best.Workload() == 0 {
			return // nothing worth stealing in the neighborhood
		}
		w.CreateSybil(h, ids.Midpoint(best.PredID(), best.ID()))
	})
}

// Invitation is §IV-D: the reactive strategy. An overloaded node announces
// to its predecessors that it needs help; the least-loaded predecessor at
// or below the Sybil threshold (with spare Sybil capacity) injects a Sybil
// into the overloaded node's arc. Invitations are refused when no
// predecessor qualifies.
type Invitation struct{}

// NewInvitation returns the invitation strategy.
func NewInvitation() Strategy { return Invitation{} }

// Name implements Strategy.
func (Invitation) Name() string { return "invitation" }

// Decide implements Strategy.
func (Invitation) Decide(w World) {
	p := w.Params()
	// A host helps at most once per pass, even if several of its
	// successors invite it.
	helped := make(map[int]bool)
	w.EachHost(func(h Host, primary VNode) {
		if primary.Workload() <= p.InviteThreshold {
			return
		}
		preds := w.Predecessors(primary, p.NumSuccessors)
		w.ChargeMessages("invitation", len(preds))
		var helper Host
		for _, v := range preds {
			cand := v.Host()
			if cand.Index() == h.Index() || helped[cand.Index()] {
				continue
			}
			if cand.Workload() > p.SybilThreshold || !cand.CanCreateSybil() {
				continue
			}
			if helper == nil || cand.Workload() < helper.Workload() {
				helper = cand
			}
		}
		if helper == nil {
			return // invitation refused
		}
		if _, ok := w.CreateSybil(helper, ids.Midpoint(primary.PredID(), primary.ID())); ok {
			helped[helper.Index()] = true
		}
	})
}

// ByName returns a fresh strategy instance for a harness-facing name.
// Recognized names: none, churn (an alias of none — churn is an engine
// parameter), random, neighbor, smart-neighbor, invitation, the §VII
// extensions strength-invitation, strength-random, and targeted, and the
// non-decentralized upper bound oracle.
func ByName(name string) (Strategy, bool) {
	switch name {
	case "none", "churn":
		return NewNone(), true
	case "random":
		return NewRandomInjection(), true
	case "neighbor":
		return NewNeighborInjection(), true
	case "smart-neighbor", "smart":
		return NewSmartNeighbor(), true
	case "invitation":
		return NewInvitation(), true
	case "strength-invitation":
		return NewStrengthInvitation(), true
	case "strength-random":
		return NewStrengthAwareRandom(), true
	case "targeted":
		return NewTargetedInjection(), true
	case "oracle":
		return NewOracle(), true
	}
	return nil, false
}
