package strategy

import "sort"

// Oracle is an omniscient rebalancer: every decision pass it ranks all
// virtual nodes by residual workload globally and has the idlest hosts
// split the heaviest arcs at their exact key medians. It violates the
// paper's decentralization requirement on purpose — it exists as an
// upper bound, showing how much headroom the local strategies leave on
// the table (compare `dhtsweep -exp extensions`).
type Oracle struct{}

// NewOracle returns the global upper-bound strategy.
func NewOracle() Strategy { return Oracle{} }

// Name implements Strategy.
func (Oracle) Name() string { return "oracle" }

// Decide implements Strategy.
func (Oracle) Decide(w World) {
	p := w.Params()
	var idle []Host
	var all []VNode
	w.EachHost(func(h Host, primary VNode) {
		if h.Workload() == 0 && h.SybilCount() > 0 {
			w.DropSybils(h)
		}
		if h.Workload() <= p.SybilThreshold && h.CanCreateSybil() {
			idle = append(idle, h)
		}
		all = append(all, w.VNodesOf(h)...)
	})
	if len(idle) == 0 || len(all) == 0 {
		return
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Workload() > all[j].Workload() })

	vi := 0
	for _, h := range idle {
		// Advance past victims not worth splitting or owned by the
		// helper itself.
		for vi < len(all) && (all[vi].Workload() < 2 || all[vi].Host().Index() == h.Index()) {
			vi++
		}
		if vi >= len(all) {
			return
		}
		if id, ok := w.SplitPoint(all[vi]); ok {
			w.CreateSybil(h, id)
		}
		vi++
	}
}
