package strategy

import "sort"

// Oracle is an omniscient rebalancer: every decision pass it ranks all
// virtual nodes by residual workload globally and has the idlest hosts
// split the heaviest arcs at their exact key medians. It violates the
// paper's decentralization requirement on purpose — it exists as an
// upper bound, showing how much headroom the local strategies leave on
// the table (compare `dhtsweep -exp extensions`).
type Oracle struct{}

// NewOracle returns the global upper-bound strategy.
func NewOracle() Strategy { return Oracle{} }

// Name implements Strategy.
func (Oracle) Name() string { return "oracle" }

// loaded pairs a virtual node with its workload at ranking time, so the
// global sort compares plain ints instead of making two interface calls
// per comparison.
type loaded struct {
	v VNode
	w int
}

// Decide implements Strategy.
func (Oracle) Decide(w World) {
	p := w.Params()
	var idle []Host
	var all []loaded
	w.EachHost(func(h Host, primary VNode) {
		if h.Workload() == 0 && h.SybilCount() > 0 {
			w.DropSybils(h)
		}
		if h.Workload() <= p.SybilThreshold && h.CanCreateSybil() {
			idle = append(idle, h)
		}
		for _, v := range w.VNodesOf(h) {
			all = append(all, loaded{v: v})
		}
	})
	if len(idle) == 0 || len(all) == 0 {
		return
	}
	// Workloads are read once, after the EachHost pass (DropSybils above
	// may still move keys mid-scan) and before any splits below. That
	// matches what the old live-read sort observed, and the advance loop
	// stays exact too: a CreateSybil split drains only the vnode being
	// split, which the loop skips immediately afterwards — every later
	// cached value is still the live value. The comparator's outcomes
	// are unchanged, so sort.Slice produces the identical permutation.
	for i := range all {
		all[i].w = all[i].v.Workload()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].w > all[j].w })

	vi := 0
	for _, h := range idle {
		// Advance past victims not worth splitting or owned by the
		// helper itself.
		for vi < len(all) && (all[vi].w < 2 || all[vi].v.Host().Index() == h.Index()) {
			vi++
		}
		if vi >= len(all) {
			return
		}
		if id, ok := w.SplitPoint(all[vi].v); ok {
			w.CreateSybil(h, id)
		}
		vi++
	}
}
