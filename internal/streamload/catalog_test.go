package streamload

import (
	"errors"
	"sync"
	"testing"

	"chordbalance/internal/ids"
)

func TestCatalogKeysDistinctAndDeterministic(t *testing.T) {
	cat := &Catalog{Objects: 8, ObjectChunks: 32, ChunkBytes: 256, Salt: 7}
	if err := cat.Validate(); err != nil {
		t.Fatal(err)
	}
	seen := make(map[ids.ID]bool)
	for obj := 0; obj < cat.Objects; obj++ {
		for c := 0; c < cat.ObjectChunks; c++ {
			k := cat.ChunkKey(obj, c)
			if seen[k] {
				t.Fatalf("duplicate key for object %d chunk %d", obj, c)
			}
			seen[k] = true
		}
	}
	other := &Catalog{Objects: 8, ObjectChunks: 32, ChunkBytes: 256, Salt: 7}
	if cat.ChunkKey(3, 9) != other.ChunkKey(3, 9) {
		t.Fatal("same-parameter catalogs disagree on keys")
	}
	salted := &Catalog{Objects: 8, ObjectChunks: 32, ChunkBytes: 256, Salt: 8}
	if cat.ChunkKey(3, 9) == salted.ChunkKey(3, 9) {
		t.Fatal("different salts produced the same key")
	}
}

func TestCatalogHotArcContainsEveryKey(t *testing.T) {
	arcLow := ids.MustHex("8000000000000000000000000000000000000000")
	cat := &Catalog{Objects: 4, ObjectChunks: 64, ChunkBytes: 64, Salt: 3, HotBits: 4, ArcLow: arcLow}
	span := ids.PowerOfTwo(ids.Bits - cat.HotBits)
	for obj := 0; obj < cat.Objects; obj++ {
		for c := 0; c < cat.ObjectChunks; c++ {
			off := cat.ChunkKey(obj, c).Sub(arcLow)
			if !off.Less(span) {
				t.Fatalf("object %d chunk %d landed outside the hot arc", obj, c)
			}
		}
	}
	// The skew knob must actually move keys: an unskewed catalog puts
	// some key outside the arc.
	flat := &Catalog{Objects: 4, ObjectChunks: 64, ChunkBytes: 64, Salt: 3}
	outside := false
	for c := 0; c < flat.ObjectChunks && !outside; c++ {
		outside = !flat.ChunkKey(0, c).Sub(arcLow).Less(span)
	}
	if !outside {
		t.Fatal("uniform keys all fell in one sixteenth of the ring; hot mapping untestable")
	}
}

func TestCatalogPayloadSizesAndVerify(t *testing.T) {
	cat := &Catalog{Objects: 2, ObjectChunks: 5, ChunkBytes: 100, TailBytes: 37, Salt: 11}
	if got := len(cat.ChunkPayload(0, 0)); got != 100 {
		t.Fatalf("full chunk payload %d bytes, want 100", got)
	}
	if got := len(cat.ChunkPayload(0, 4)); got != 37 {
		t.Fatalf("tail chunk payload %d bytes, want 37", got)
	}
	if want, got := int64(2*(4*100+37)), cat.TotalBytes(); got != want {
		t.Fatalf("TotalBytes = %d, want %d", got, want)
	}
	if !cat.VerifyChunk(1, 2, cat.ChunkPayload(1, 2)) {
		t.Fatal("payload failed to verify against itself")
	}
	bad := cat.ChunkPayload(1, 2)
	bad[0] ^= 1
	if cat.VerifyChunk(1, 2, bad) {
		t.Fatal("corrupted payload verified")
	}
	if cat.VerifyChunk(1, 2, cat.ChunkPayload(1, 3)) {
		t.Fatal("wrong chunk's payload verified")
	}
}

func TestCatalogValidate(t *testing.T) {
	bad := []Catalog{
		{Objects: 0, ObjectChunks: 1, ChunkBytes: 1},
		{Objects: 1, ObjectChunks: 0, ChunkBytes: 1},
		{Objects: 1, ObjectChunks: 1, ChunkBytes: 0},
		{Objects: 1, ObjectChunks: 1, ChunkBytes: 8, TailBytes: 9},
		{Objects: 1, ObjectChunks: 1, ChunkBytes: 8, HotBits: ids.Bits},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid catalog passed validation", i)
		}
	}
}

// countPutter records puts and can fail a specific key.
type countPutter struct {
	mu   sync.Mutex
	n    int
	fail ids.ID
}

func (p *countPutter) Put(key ids.ID, value []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if key == p.fail {
		return errors.New("injected put failure")
	}
	p.n++
	return nil
}

func TestIngestStoresEveryChunk(t *testing.T) {
	cat := &Catalog{Objects: 3, ObjectChunks: 7, ChunkBytes: 16, Salt: 2}
	p := &countPutter{}
	if err := Ingest(p, cat, 4); err != nil {
		t.Fatal(err)
	}
	if p.n != cat.TotalChunks() {
		t.Fatalf("ingested %d chunks, want %d", p.n, cat.TotalChunks())
	}
	bad := &countPutter{fail: cat.ChunkKey(1, 3)}
	if err := Ingest(bad, cat, 4); err == nil {
		t.Fatal("ingest swallowed a put failure")
	}
}
