package streamload

import (
	"sync"
	"sync/atomic"

	"chordbalance/internal/ids"
	"chordbalance/internal/wire"
)

// KV is the read slice of a netchord client that a CachedFetcher
// drives: a direct fetch from a believed owner, and a lookup to
// (re-)resolve ownership. *netchord.Client satisfies it.
type KV interface {
	GetFrom(owner wire.NodeRef, key ids.ID) ([]byte, uint64, error)
	Owner(key ids.ID) (wire.NodeRef, error)
}

// CachedFetcher fetches chunks over the wire with a route cache: the
// resolved owner of each key is remembered, so the steady state is one
// round trip per chunk instead of a multi-hop lookup plus a fetch. Any
// error on a cached route drops the entry and re-resolves — churn and
// Sybil injection move ownership under a running stream, and this is
// the recovery discipline. Optionally it verifies every payload against
// the catalog, the check the soak test uses to prove zero acked-chunk
// loss. Safe for concurrent use.
type CachedFetcher struct {
	kv     KV
	cat    *Catalog
	verify bool

	mu     sync.Mutex
	routes map[ids.ID]wire.NodeRef

	hits    atomic.Uint64
	lookups atomic.Uint64
	corrupt atomic.Uint64
}

// NewCachedFetcher wraps kv. With verify set, every delivered chunk is
// compared byte-for-byte against cat's deterministic payload.
func NewCachedFetcher(kv KV, cat *Catalog, verify bool) *CachedFetcher {
	return &CachedFetcher{kv: kv, cat: cat, verify: verify, routes: make(map[ids.ID]wire.NodeRef)}
}

// route returns the cached owner of key, if any.
func (cf *CachedFetcher) route(key ids.ID) (wire.NodeRef, bool) {
	cf.mu.Lock()
	owner, ok := cf.routes[key]
	cf.mu.Unlock()
	return owner, ok
}

// remember caches key's resolved owner.
func (cf *CachedFetcher) remember(key ids.ID, owner wire.NodeRef) {
	cf.mu.Lock()
	cf.routes[key] = owner
	cf.mu.Unlock()
}

// forget drops a stale route.
func (cf *CachedFetcher) forget(key ids.ID) {
	cf.mu.Lock()
	delete(cf.routes, key)
	cf.mu.Unlock()
}

// Fetch implements Fetcher: cached route first, then resolve-and-fetch.
func (cf *CachedFetcher) Fetch(obj, chunk int, key ids.ID) (int, error) {
	if owner, ok := cf.route(key); ok {
		if v, _, err := cf.kv.GetFrom(owner, key); err == nil {
			cf.hits.Add(1)
			return cf.deliver(obj, chunk, v)
		}
		cf.forget(key)
	}
	cf.lookups.Add(1)
	owner, err := cf.kv.Owner(key)
	if err != nil {
		return 0, err
	}
	v, _, err := cf.kv.GetFrom(owner, key)
	if err != nil {
		return 0, err
	}
	cf.remember(key, owner)
	return cf.deliver(obj, chunk, v)
}

// deliver verifies (when enabled) and sizes a fetched payload.
func (cf *CachedFetcher) deliver(obj, chunk int, v []byte) (int, error) {
	if cf.verify && !cf.cat.VerifyChunk(obj, chunk, v) {
		cf.corrupt.Add(1)
	}
	return len(v), nil
}

// RouteStats returns cache hits (direct fetches off a cached route)
// and lookups (full resolutions, on both cold keys and dropped
// routes).
func (cf *CachedFetcher) RouteStats() (hits, lookups uint64) {
	return cf.hits.Load(), cf.lookups.Load()
}

// Corrupt returns the number of delivered chunks whose bytes did not
// match the catalog. Nonzero on a verifying run means acked data was
// lost or damaged.
func (cf *CachedFetcher) Corrupt() uint64 { return cf.corrupt.Load() }
