package streamload

import "chordbalance/internal/stats"

// Totals is the monotone counter snapshot a driver exposes while
// running — the four numbers a collector report carries
// (wire.TStreamReport), cheap enough to poll from a reporter loop.
type Totals struct {
	// Chunks is chunks delivered so far.
	Chunks uint64
	// DeadlineMiss is chunks that arrived after their playback
	// deadline.
	DeadlineMiss uint64
	// Rebuffers is playhead stalls so far.
	Rebuffers uint64
	// Bytes is payload bytes delivered so far.
	Bytes uint64
}

// Result is the outcome of one streaming run, identical in shape for
// the real-time Engine and the virtual driver so the two are directly
// comparable (and a virtual run's JSON is byte-reproducible).
type Result struct {
	// Viewers is the concurrent viewer count the run was configured
	// with.
	Viewers int `json:"viewers"`
	// Sessions is completed playback sessions (viewer-object pairs).
	Sessions int `json:"sessions"`
	// Chunks is total chunks delivered.
	Chunks uint64 `json:"chunks"`
	// Bytes is total payload bytes delivered.
	Bytes uint64 `json:"bytes"`
	// FetchErrors is failed fetch attempts (each retried).
	FetchErrors uint64 `json:"fetch_errors"`
	// DeadlineMiss is chunks that arrived after their playback
	// deadline.
	DeadlineMiss uint64 `json:"deadline_miss"`
	// Rebuffers is playhead stalls across all sessions.
	Rebuffers uint64 `json:"rebuffers"`
	// SLOMiss is chunks whose fetch latency exceeded the configured
	// SLO (0 when no SLO is set).
	SLOMiss uint64 `json:"slo_miss"`
	// DeadlineMissRate is DeadlineMiss / Chunks.
	DeadlineMissRate float64 `json:"deadline_miss_rate"`
	// RebufferRate is Rebuffers / Chunks — stalls per delivered chunk,
	// the headline quality-of-experience metric.
	RebufferRate float64 `json:"rebuffer_rate"`
	// StallNs is total playhead stall time across all sessions.
	StallNs int64 `json:"stall_ns"`
	// DurationNs is the run length: wall time for the Engine, final
	// event time for the virtual driver.
	DurationNs int64 `json:"duration_ns"`
	// FetchP50us, FetchP90us, and FetchP99us are per-chunk fetch
	// latency percentiles in microseconds.
	FetchP50us float64 `json:"fetch_p50_us"`
	// FetchP90us is the 90th-percentile fetch latency in microseconds.
	FetchP90us float64 `json:"fetch_p90_us"`
	// FetchP99us is the 99th-percentile fetch latency in microseconds —
	// the tail the paper's strategies are supposed to cut on hot
	// objects.
	FetchP99us float64 `json:"fetch_p99_us"`
	// StartupP50us is the median time to fill the startup buffer, in
	// microseconds.
	StartupP50us float64 `json:"startup_p50_us"`
	// StartupP99us is the 99th-percentile startup time in microseconds.
	StartupP99us float64 `json:"startup_p99_us"`
	// LatsUs holds every per-chunk fetch latency in microseconds, for
	// feeding obs histograms; excluded from JSON (it can be millions of
	// entries).
	LatsUs []float64 `json:"-"`
}

// finalize fills the derived fields of r from the raw latency and
// startup samples (nanoseconds).
func (r *Result) finalize(latNs, startupNs []int64) {
	if r.Chunks > 0 {
		r.RebufferRate = float64(r.Rebuffers) / float64(r.Chunks)
		r.DeadlineMissRate = float64(r.DeadlineMiss) / float64(r.Chunks)
	}
	if len(latNs) > 0 {
		us := make([]float64, len(latNs))
		for i, v := range latNs {
			us[i] = float64(v) / 1e3
		}
		r.LatsUs = us
		r.FetchP50us = stats.Percentile(us, 50)
		r.FetchP90us = stats.Percentile(us, 90)
		r.FetchP99us = stats.Percentile(us, 99)
	}
	if len(startupNs) > 0 {
		us := make([]float64, len(startupNs))
		for i, v := range startupNs {
			us[i] = float64(v) / 1e3
		}
		r.StartupP50us = stats.Percentile(us, 50)
		r.StartupP99us = stats.Percentile(us, 99)
	}
}
