package streamload

import (
	"time"

	"chordbalance/internal/keys"
	"chordbalance/internal/xrand"
)

// VirtualConfig parameterizes the discrete-event driver: the shared
// workload knobs plus a synthetic latency model standing in for the
// network.
type VirtualConfig struct {
	Config
	// BaseLatency is the fixed component of every simulated fetch.
	// Default 1ms.
	BaseLatency time.Duration
	// JitterLatency scales an exponentially distributed jitter added to
	// BaseLatency (0 = constant latency).
	JitterLatency time.Duration
	// LossProb is the per-fetch failure probability, exercising the
	// viewer's retry/backoff path deterministically.
	LossProb float64
}

// vEvent is one scheduled occurrence in virtual time. Ordering is
// (at, seq): seq is the push order, so ties break deterministically and
// the whole run is a pure function of the config.
type vEvent struct {
	at     int64
	seq    uint64
	viewer int
	gen    int // session generation, so stale events are dropped
	wake   bool
	fail   bool
	chunk  int
	bytes  uint64
	lat    int64
}

// before is the heap ordering.
func (a vEvent) before(b vEvent) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// vHeap is a plain binary min-heap of events.
type vHeap []vEvent

// push adds an event, restoring the heap invariant.
func (h *vHeap) push(ev vEvent) {
	*h = append(*h, ev)
	s := *h
	for i := len(s) - 1; i > 0; {
		p := (i - 1) / 2
		if !s[i].before(s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

// pop removes and returns the earliest event.
func (h *vHeap) pop() vEvent {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(s) && s[l].before(s[min]) {
			min = l
		}
		if r < len(s) && s[r].before(s[min]) {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	*h = s
	return top
}

// vSession is one viewer's live session state in the virtual run.
type vSession struct {
	v    *Viewer
	obj  int
	gen  int
	prev ViewerStats
}

// RunVirtual plays the streaming workload under a discrete-event clock:
// no goroutines, no wall time, every fetch completing at a latency
// drawn from per-viewer seeded streams. Two runs with the same config
// produce identical Results bit for bit — the determinism anchor the
// real-time Engine (same Viewer state machine, real network) cannot
// give, used by tests and for fast workload iteration.
func RunVirtual(cfg VirtualConfig) (Result, error) {
	cfg.Config = cfg.Config.withDefaults()
	if err := cfg.Config.validate(); err != nil {
		return Result{}, err
	}
	if cfg.BaseLatency <= 0 {
		cfg.BaseLatency = time.Millisecond
	}
	cat := cfg.Catalog
	zipf := keys.NewZipf(cat.Objects, cfg.ZipfS)

	// Two streams per viewer: one for workload choices (object, join
	// offset), one for the network model (latency, loss), so changing
	// the latency model never perturbs which objects get watched.
	objRng := make([]*xrand.Rand, cfg.Viewers)
	netRng := make([]*xrand.Rand, cfg.Viewers)
	for i := range objRng {
		objRng[i] = xrand.Split(cfg.Seed, uint64(i))
		netRng[i] = xrand.Split(cfg.Seed, 1<<32|uint64(i))
	}

	var (
		h         vHeap
		seq       uint64
		sess      = make([]vSession, cfg.Viewers)
		res       Result
		latNs     []int64
		startupNs []int64
	)
	push := func(ev vEvent) {
		ev.seq = seq
		seq++
		h.push(ev)
	}
	sloNs, backoff := int64(cfg.SLO), int64(cfg.RetryBackoff)

	// pump dispatches every fetch the viewer allows right now, then
	// schedules a wake if only the clock (not a delivery) can move the
	// session forward.
	pump := func(i int, now int64) {
		s := &sess[i]
		for {
			chunk, ok := s.v.Next(now)
			if !ok {
				break
			}
			lat := int64(cfg.BaseLatency)
			if cfg.JitterLatency > 0 {
				lat += int64(netRng[i].ExpFloat64() * float64(cfg.JitterLatency))
			}
			fail := cfg.LossProb > 0 && netRng[i].Bool(cfg.LossProb)
			push(vEvent{at: now + lat, viewer: i, gen: s.gen, fail: fail,
				chunk: chunk, bytes: uint64(cat.ChunkSize(chunk)), lat: lat})
		}
		if s.v.InFlight() == 0 && !s.v.Done() {
			if at, ok := s.v.NextWake(now); ok {
				push(vEvent{at: at, viewer: i, gen: s.gen, wake: true})
			}
		}
	}

	start := func(i int, now int64) {
		s := &sess[i]
		startChunk := 0
		s.obj = zipf.Rank(objRng[i]) - 1
		if cfg.MidJoinProb > 0 && cat.ObjectChunks > 1 && objRng[i].Bool(cfg.MidJoinProb) {
			startChunk = objRng[i].IntRange(1, cat.ObjectChunks-1)
		}
		s.v = NewViewer(ViewerConfig{
			Chunks:        cat.ObjectChunks,
			StartChunk:    startChunk,
			ChunkDur:      int64(cfg.ChunkDur),
			StartupChunks: cfg.StartupChunks,
			Window:        cfg.Window,
			MaxInFlight:   cfg.MaxInFlight,
		}, now)
		s.prev = ViewerStats{}
		pump(i, now)
	}

	for i := 0; i < cfg.Viewers; i++ {
		start(i, 0)
	}
	now := int64(0)
	for len(h) > 0 {
		ev := h.pop()
		now = ev.at
		s := &sess[ev.viewer]
		if s.v == nil || ev.gen != s.gen {
			continue
		}
		if ev.wake {
			pump(ev.viewer, now)
			continue
		}
		if ev.fail {
			res.FetchErrors++
			s.v.Fail(now, ev.chunk, backoff)
		} else {
			s.v.Deliver(now, ev.chunk)
			res.Bytes += ev.bytes
			latNs = append(latNs, ev.lat)
			if sloNs > 0 && ev.lat > sloNs {
				res.SLOMiss++
			}
		}
		st := s.v.Stats(now)
		res.Chunks += uint64(st.Delivered - s.prev.Delivered)
		res.DeadlineMiss += uint64(st.DeadlineMiss - s.prev.DeadlineMiss)
		res.Rebuffers += uint64(st.Rebuffers - s.prev.Rebuffers)
		s.prev = st
		if s.v.Done() {
			res.StallNs += st.StallNs
			if st.Started {
				startupNs = append(startupNs, st.StartupNs)
			}
			res.Sessions++
			s.v = nil
			s.gen++
			if cfg.TargetChunks > 0 && res.Chunks < cfg.TargetChunks {
				start(ev.viewer, now)
			}
		} else {
			pump(ev.viewer, now)
		}
	}
	res.Viewers = cfg.Viewers
	res.DurationNs = now
	res.finalize(latNs, startupNs)
	return res, nil
}
