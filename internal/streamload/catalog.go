// Package streamload is the streaming content-delivery workload for the
// networked runtime: chunked objects stored in the DHT, fetched by
// viewers that play them back in sequence against a real-time clock.
//
// The paper's workload model is write-heavy — tasks are injected and
// consumed — but the deployments that motivate it (§I's file-sharing
// networks) are read-heavy: a popular object is fetched by thousands of
// peers while stored exactly once. This package renders that workload:
// an object is split into fixed-size chunks, chunk c of object o is
// stored under SHA1(objectName || "#" || c), and a viewer fetches chunks
// sequentially through a bounded prefetch window while a playback clock
// consumes them at the object's bitrate. Two chunk-level SLOs fall out:
// a rebuffer (the playhead reached a chunk that had not arrived) and a
// deadline miss (a chunk arrived after the playhead's schedule said it
// was needed).
//
// The read path couples back to the paper's strategies through
// netchord's Config.ReadWorkUnits: every served fetch charges the owner
// task units, so a viral object registers as workload the strategies
// can shed by splitting its arc among Sybil identities. The engine here
// is deliberately transport-agnostic: it drives any Fetcher, and the
// same Viewer state machine runs under the real-time Engine (goroutines
// against a live cluster, cmd/dhtload -stream) and the discrete-event
// virtual driver (RunVirtual), whose runs are bit-for-bit reproducible.
// See docs/STREAMING.md for the model and a worked session.
package streamload

import (
	"fmt"

	"chordbalance/internal/ids"
	"chordbalance/internal/keys"
	"chordbalance/internal/xrand"
)

// Catalog describes the stored content: Objects objects of ObjectChunks
// chunks each, with deterministic names, keys, and payloads, so any
// party that knows the catalog parameters can generate, fetch, or
// verify any chunk independently.
type Catalog struct {
	// Objects is the number of distinct objects.
	Objects int
	// ObjectChunks is the number of chunks per object.
	ObjectChunks int
	// ChunkBytes is the payload size of every chunk except possibly the
	// last one of each object.
	ChunkBytes int
	// TailBytes is the size of each object's final chunk; 0 means the
	// final chunk is full (ChunkBytes). Real objects are rarely an exact
	// multiple of the chunk size, and the short tail is a classic
	// off-by-one trap for prefetch windows, so the catalog models it.
	TailBytes int
	// Salt seeds object naming and payload generation; two catalogs
	// with the same parameters and salt are byte-identical.
	Salt uint64
	// HotBits, when positive, maps every chunk key into one arc
	// spanning 2^(ids.Bits-HotBits) identifiers starting at ArcLow —
	// the same skew knob as dhtload's -hot-bits, so the streaming
	// workload can concentrate on the arc a strategy must shed.
	HotBits int
	// ArcLow is the start of the hot arc (only read when HotBits > 0).
	ArcLow ids.ID
}

// Validate reports the first nonsensical catalog parameter.
func (c *Catalog) Validate() error {
	switch {
	case c.Objects < 1:
		return fmt.Errorf("streamload: catalog needs at least 1 object, got %d", c.Objects)
	case c.ObjectChunks < 1:
		return fmt.Errorf("streamload: catalog needs at least 1 chunk per object, got %d", c.ObjectChunks)
	case c.ChunkBytes < 1:
		return fmt.Errorf("streamload: catalog needs positive chunk size, got %d", c.ChunkBytes)
	case c.TailBytes < 0 || c.TailBytes > c.ChunkBytes:
		return fmt.Errorf("streamload: tail size %d outside [0, %d]", c.TailBytes, c.ChunkBytes)
	case c.HotBits < 0 || c.HotBits >= ids.Bits:
		return fmt.Errorf("streamload: hot bits %d outside [0, %d)", c.HotBits, ids.Bits)
	}
	return nil
}

// TotalChunks is the number of stored chunks across all objects.
func (c *Catalog) TotalChunks() int { return c.Objects * c.ObjectChunks }

// TotalBytes is the stored payload volume across all objects.
func (c *Catalog) TotalBytes() int64 {
	perObject := int64(c.ObjectChunks-1)*int64(c.ChunkBytes) + int64(c.ChunkSize(c.ObjectChunks-1))
	return int64(c.Objects) * perObject
}

// ChunkSize returns the payload size of chunk index chunk (the tail
// chunk may be short).
func (c *Catalog) ChunkSize(chunk int) int {
	if chunk == c.ObjectChunks-1 && c.TailBytes > 0 {
		return c.TailBytes
	}
	return c.ChunkBytes
}

// ObjectName returns the textual name of object obj — the value hashed
// (with the chunk index) into ring keys, mirroring how file-sharing
// DHTs key content by name.
func (c *Catalog) ObjectName(obj int) string {
	return fmt.Sprintf("stream/%016x/%d", c.Salt, obj)
}

// ChunkKey returns the ring key of chunk index chunk of object obj:
// SHA1(objectName || "#" || chunk), optionally folded into the hot arc.
func (c *Catalog) ChunkKey(obj, chunk int) ids.ID {
	id := keys.HashString(fmt.Sprintf("%s#%d", c.ObjectName(obj), chunk))
	if c.HotBits <= 0 {
		return id
	}
	// Zero the top HotBits bits, collapsing the hash into
	// [0, 2^(Bits-HotBits)), then translate to the arc's start. The low
	// bits keep their SHA-1 spread, so chunks still scatter across every
	// node inside the arc.
	full, rem := c.HotBits/8, c.HotBits%8
	for i := 0; i < full; i++ {
		id[i] = 0
	}
	if rem > 0 {
		id[full] &= 0xff >> rem
	}
	return c.ArcLow.Add(id)
}

// ChunkPayload returns the deterministic payload bytes of chunk index
// chunk of object obj. Payloads are pseudo-random (so they do not
// compress or dedup accidentally) and reproducible from the catalog
// alone, which is what lets a soak test prove zero acked-chunk loss: a
// fetched chunk must equal ChunkPayload exactly or something was lost.
func (c *Catalog) ChunkPayload(obj, chunk int) []byte {
	n := c.ChunkSize(chunk)
	buf := make([]byte, n)
	r := xrand.Split(c.Salt, uint64(obj)<<24|uint64(chunk))
	for i := 0; i < n; i += 8 {
		v := r.Uint64()
		for j := 0; j < 8 && i+j < n; j++ {
			buf[i+j] = byte(v >> (8 * j))
		}
	}
	return buf
}

// VerifyChunk reports whether got is exactly the payload of (obj,
// chunk). A mismatch on an acked chunk is data loss.
func (c *Catalog) VerifyChunk(obj, chunk int, got []byte) bool {
	want := c.ChunkPayload(obj, chunk)
	if len(got) != len(want) {
		return false
	}
	for i := range want {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// Putter is the write half a catalog ingest needs; *netchord.Client
// satisfies it.
type Putter interface {
	Put(key ids.ID, value []byte) error
}

// Ingest stores every chunk of the catalog through p, fanning out over
// workers concurrent writers (p must be safe for concurrent use, as
// netchord clients are). A nil error means every chunk in the catalog
// was durably acknowledged.
func Ingest(p Putter, cat *Catalog, workers int) error {
	if err := cat.Validate(); err != nil {
		return err
	}
	if workers < 1 {
		workers = 1
	}
	total := cat.TotalChunks()
	if workers > total {
		workers = total
	}
	jobs := make(chan int, workers)
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			var first error
			for idx := range jobs {
				if first != nil {
					continue // keep draining so the feeder never blocks
				}
				obj, chunk := idx/cat.ObjectChunks, idx%cat.ObjectChunks
				if err := p.Put(cat.ChunkKey(obj, chunk), cat.ChunkPayload(obj, chunk)); err != nil {
					first = fmt.Errorf("streamload: ingest object %d chunk %d: %w", obj, chunk, err)
				}
			}
			errs <- first
		}()
	}
	for idx := 0; idx < total; idx++ {
		jobs <- idx
	}
	close(jobs)
	var first error
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}
