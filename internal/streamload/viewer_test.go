package streamload

import "testing"

// mustNext asserts Next returns the given chunk.
func mustNext(t *testing.T, v *Viewer, now int64, want int) {
	t.Helper()
	got, ok := v.Next(now)
	if !ok || got != want {
		t.Fatalf("Next(%d) = (%d, %v), want (%d, true)", now, got, ok, want)
	}
}

// mustIdle asserts Next has nothing to fetch.
func mustIdle(t *testing.T, v *Viewer, now int64) {
	t.Helper()
	if got, ok := v.Next(now); ok {
		t.Fatalf("Next(%d) = (%d, true), want nothing fetchable", now, got)
	}
}

func TestViewerScoresLateChunkOnce(t *testing.T) {
	v := NewViewer(ViewerConfig{Chunks: 4, ChunkDur: 100, StartupChunks: 2, MaxInFlight: 2}, 0)
	mustNext(t, v, 0, 0)
	mustNext(t, v, 0, 1)
	mustIdle(t, v, 0) // pipeline full: no duplicates, no overshoot

	v.Deliver(10, 0)
	if v.Stats(10).Started {
		t.Fatal("playback started before the startup buffer filled")
	}
	v.Deliver(20, 1)
	st := v.Stats(20)
	if !st.Started || st.StartupNs != 20 {
		t.Fatalf("startup = (%v, %d), want (true, 20)", st.Started, st.StartupNs)
	}

	mustNext(t, v, 20, 2)
	mustNext(t, v, 20, 3)
	v.Deliver(50, 2)  // deadline 220: on time
	v.Deliver(500, 3) // deadline 320: the playhead stalled on it at 320

	if !v.Done() {
		t.Fatal("all chunks delivered but not Done")
	}
	st = v.Stats(500)
	want := ViewerStats{Delivered: 4, DeadlineMiss: 1, Rebuffers: 1, StallNs: 180, StartupNs: 20, Started: true}
	if st != want {
		t.Fatalf("stats = %+v, want %+v", st, want)
	}
}

func TestViewerDeliveryAtExactDeadlineIsOnTime(t *testing.T) {
	v := NewViewer(ViewerConfig{Chunks: 3, ChunkDur: 100, StartupChunks: 1, MaxInFlight: 3}, 0)
	mustNext(t, v, 0, 0)
	mustNext(t, v, 0, 1)
	mustNext(t, v, 0, 2)
	v.Deliver(0, 0)   // playback starts, base 0
	v.Deliver(100, 1) // exactly at its deadline
	v.Deliver(150, 2) // deadline 200: early
	st := v.Stats(300)
	if st.Rebuffers != 0 || st.DeadlineMiss != 0 || st.StallNs != 0 {
		t.Fatalf("on-time playback scored %+v", st)
	}
}

func TestViewerWindowLargerThanObject(t *testing.T) {
	v := NewViewer(ViewerConfig{Chunks: 5, ChunkDur: 100, StartupChunks: 1, Window: 100, MaxInFlight: 16}, 0)
	for want := 0; want < 5; want++ {
		mustNext(t, v, 0, want)
	}
	mustIdle(t, v, 0) // window clamped to the object: nothing past the end
	for c := 0; c < 5; c++ {
		v.Deliver(int64(c+1), c)
	}
	if !v.Done() {
		t.Fatal("short object with huge window never finished")
	}
}

func TestViewerMidObjectJoin(t *testing.T) {
	j := NewViewer(ViewerConfig{Chunks: 6, StartChunk: 3, ChunkDur: 100, StartupChunks: 2, MaxInFlight: 8}, 0)
	mustNext(t, j, 0, 3)
	mustNext(t, j, 0, 4)
	mustNext(t, j, 0, 5)
	mustIdle(t, j, 0) // chunks before the join point are never fetched
	j.Deliver(5, 3)
	j.Deliver(6, 4)
	j.Deliver(7, 5)
	if !j.Done() {
		t.Fatal("mid-object join never completed")
	}
	if st := j.Stats(10); st.Delivered != 3 || !st.Started {
		t.Fatalf("join session stats = %+v, want 3 delivered and started", st)
	}
}

func TestViewerStartupClampNearObjectEnd(t *testing.T) {
	// Joining at the last chunk with a startup buffer larger than what
	// remains: the buffer clamps to the object end and playback starts.
	v := NewViewer(ViewerConfig{Chunks: 4, StartChunk: 3, ChunkDur: 100, StartupChunks: 10, MaxInFlight: 2}, 0)
	mustNext(t, v, 0, 3)
	mustIdle(t, v, 0)
	v.Deliver(5, 3)
	if !v.Done() {
		t.Fatal("single-chunk tail session never completed")
	}
	if st := v.Stats(5); !st.Started || st.Delivered != 1 {
		t.Fatalf("stats = %+v, want started with 1 delivered", st)
	}
}

func TestViewerFailBacksOffThenRetries(t *testing.T) {
	v := NewViewer(ViewerConfig{Chunks: 2, ChunkDur: 100, StartupChunks: 1, Window: 1, MaxInFlight: 1}, 0)
	mustNext(t, v, 0, 0)
	mustIdle(t, v, 0)
	v.Fail(10, 0, 100)
	mustIdle(t, v, 50) // backing off until 110
	if at, ok := v.NextWake(50); !ok || at != 110 {
		t.Fatalf("NextWake(50) = (%d, %v), want (110, true)", at, ok)
	}
	mustNext(t, v, 110, 0) // retry eligible
	v.Deliver(120, 0)
	// Window 1 keeps chunk 1 unfetchable until the playhead reaches it.
	mustIdle(t, v, 120)
	mustNext(t, v, 300, 1) // playhead crossed at 220, stalling on chunk 1
	v.Deliver(310, 1)
	st := v.Stats(310)
	if st.Rebuffers != 1 || st.DeadlineMiss != 1 {
		t.Fatalf("stats = %+v, want 1 rebuffer and 1 miss from the window stall", st)
	}
	if !v.Done() {
		t.Fatal("session never completed after retry")
	}
}

func TestViewerDuplicateDeliverIgnored(t *testing.T) {
	v := NewViewer(ViewerConfig{Chunks: 2, ChunkDur: 100, StartupChunks: 1, MaxInFlight: 2}, 0)
	mustNext(t, v, 0, 0)
	mustNext(t, v, 0, 1)
	v.Deliver(10, 0)
	v.Deliver(11, 0) // duplicate
	v.Deliver(12, 7) // out of range
	if st := v.Stats(12); st.Delivered != 1 {
		t.Fatalf("delivered = %d after duplicate/out-of-range, want 1", st.Delivered)
	}
	if v.InFlight() != 1 {
		t.Fatalf("in-flight = %d, want 1 (chunk 1 still out)", v.InFlight())
	}
}
