package streamload

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"chordbalance/internal/ids"
	"chordbalance/internal/wire"
)

// memFetcher serves chunks from the catalog with a fixed delay and an
// injected failure every failEvery-th call.
type memFetcher struct {
	cat       *Catalog
	delay     time.Duration
	failEvery uint64
	calls     atomic.Uint64
}

func (m *memFetcher) Fetch(obj, chunk int, key ids.ID) (int, error) {
	n := m.calls.Add(1)
	if m.delay > 0 {
		time.Sleep(m.delay)
	}
	if m.failEvery > 0 && n%m.failEvery == 0 {
		return 0, errors.New("injected fetch failure")
	}
	return m.cat.ChunkSize(chunk), nil
}

func TestEngineDeliversTargetUnderRace(t *testing.T) {
	cat := &Catalog{Objects: 8, ObjectChunks: 16, ChunkBytes: 128, TailBytes: 50, Salt: 4}
	eng, err := NewEngine(Config{
		Catalog:       cat,
		Viewers:       8,
		Seed:          21,
		ZipfS:         0.8,
		ChunkDur:      500 * time.Microsecond,
		StartupChunks: 2,
		Window:        8,
		MaxInFlight:   4,
		MidJoinProb:   0.2,
		TargetChunks:  1500,
		SLO:           2 * time.Millisecond,
		RetryBackoff:  200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	f := &memFetcher{cat: cat, delay: 100 * time.Microsecond, failEvery: 97}
	res := eng.Run(ctx, f)
	if res.Chunks < 1500 {
		t.Fatalf("delivered %d chunks, want >= 1500", res.Chunks)
	}
	if res.Sessions == 0 || res.FetchErrors == 0 {
		t.Fatalf("implausible result: %+v", res)
	}
	tot := eng.Totals()
	if tot.Chunks != res.Chunks || tot.Bytes != res.Bytes ||
		tot.DeadlineMiss != res.DeadlineMiss || tot.Rebuffers != res.Rebuffers {
		t.Fatalf("Totals %+v disagree with Result %+v", tot, res)
	}
	if res.Bytes == 0 || len(res.LatsUs) == 0 || res.FetchP50us <= 0 {
		t.Fatalf("latency accounting missing: %+v", res)
	}
}

func TestEngineCancelDrainsCleanly(t *testing.T) {
	cat := &Catalog{Objects: 2, ObjectChunks: 64, ChunkBytes: 64, Salt: 6}
	eng, err := NewEngine(Config{
		Catalog:      cat,
		Viewers:      4,
		Seed:         3,
		ChunkDur:     10 * time.Millisecond,
		MaxInFlight:  4,
		TargetChunks: 1 << 40, // far out of reach: only cancel ends the run
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	res := eng.Run(ctx, &memFetcher{cat: cat, delay: 2 * time.Millisecond})
	// Run returned: every fetch goroutine was drained. The exact chunk
	// count depends on scheduling; it only has to be self-consistent.
	if res.Chunks != eng.Totals().Chunks {
		t.Fatalf("result chunks %d != totals %d", res.Chunks, eng.Totals().Chunks)
	}
}

// flakyKV is an in-memory KV whose reads through a designated owner
// fail until healed, exercising the route-cache drop/re-resolve path.
type flakyKV struct {
	cat *Catalog

	mu      sync.Mutex
	rev     map[ids.ID][2]int // key -> (obj, chunk)
	badAddr string
	owner   wire.NodeRef
}

func newFlakyKV(cat *Catalog, owner wire.NodeRef) *flakyKV {
	kv := &flakyKV{cat: cat, rev: make(map[ids.ID][2]int), owner: owner}
	for obj := 0; obj < cat.Objects; obj++ {
		for c := 0; c < cat.ObjectChunks; c++ {
			kv.rev[cat.ChunkKey(obj, c)] = [2]int{obj, c}
		}
	}
	return kv
}

func (kv *flakyKV) setOwner(o wire.NodeRef, badAddr string) {
	kv.mu.Lock()
	kv.owner, kv.badAddr = o, badAddr
	kv.mu.Unlock()
}

func (kv *flakyKV) GetFrom(owner wire.NodeRef, key ids.ID) ([]byte, uint64, error) {
	kv.mu.Lock()
	bad := kv.badAddr
	oc, ok := kv.rev[key]
	kv.mu.Unlock()
	if owner.Addr == bad {
		return nil, 0, errors.New("owner unreachable")
	}
	if !ok {
		return nil, 0, errors.New("no such key")
	}
	return kv.cat.ChunkPayload(oc[0], oc[1]), 1, nil
}

func (kv *flakyKV) Owner(key ids.ID) (wire.NodeRef, error) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return kv.owner, nil
}

func TestCachedFetcherDropsStaleRoutes(t *testing.T) {
	cat := &Catalog{Objects: 1, ObjectChunks: 4, ChunkBytes: 32, Salt: 8}
	ownerA := wire.NodeRef{Addr: "a"}
	ownerB := wire.NodeRef{Addr: "b"}
	kv := newFlakyKV(cat, ownerA)
	cf := NewCachedFetcher(kv, cat, true)

	key := cat.ChunkKey(0, 0)
	if n, err := cf.Fetch(0, 0, key); err != nil || n != 32 {
		t.Fatalf("cold fetch = (%d, %v), want (32, nil)", n, err)
	}
	if n, err := cf.Fetch(0, 0, key); err != nil || n != 32 {
		t.Fatalf("warm fetch = (%d, %v)", n, err)
	}
	hits, lookups := cf.RouteStats()
	if hits != 1 || lookups != 1 {
		t.Fatalf("route stats = (%d hits, %d lookups), want (1, 1)", hits, lookups)
	}

	// Ownership moves: the cached route to A goes dead, B takes over.
	kv.setOwner(ownerB, "a")
	if n, err := cf.Fetch(0, 0, key); err != nil || n != 32 {
		t.Fatalf("post-churn fetch = (%d, %v), want recovery via re-resolve", n, err)
	}
	hits, lookups = cf.RouteStats()
	if hits != 1 || lookups != 2 {
		t.Fatalf("route stats after churn = (%d, %d), want (1, 2)", hits, lookups)
	}
	if cf.Corrupt() != 0 {
		t.Fatalf("verification flagged %d good chunks", cf.Corrupt())
	}
}
