package streamload

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

// virtCfg is a workload with every stochastic feature on: Zipf skew,
// mid-object joins, latency jitter, loss-driven retries.
func virtCfg(seed uint64) VirtualConfig {
	return VirtualConfig{
		Config: Config{
			Catalog:       &Catalog{Objects: 16, ObjectChunks: 24, ChunkBytes: 512, TailBytes: 100, Salt: 5},
			Viewers:       8,
			Seed:          seed,
			ZipfS:         0.9,
			ChunkDur:      2 * time.Millisecond,
			StartupChunks: 2,
			Window:        8,
			MaxInFlight:   4,
			MidJoinProb:   0.25,
			TargetChunks:  2000,
			SLO:           4 * time.Millisecond,
		},
		BaseLatency:   time.Millisecond,
		JitterLatency: 2 * time.Millisecond,
		LossProb:      0.02,
	}
}

func TestVirtualSameSeedBitIdentical(t *testing.T) {
	a, err := RunVirtual(virtCfg(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunVirtual(virtCfg(42))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed virtual runs diverged:\n%+v\n%+v", a, b)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("same-seed JSON differs:\n%s\n%s", ja, jb)
	}
	c, err := RunVirtual(virtCfg(43))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical runs; the seed is not flowing")
	}
	if a.Chunks < 2000 {
		t.Fatalf("delivered %d chunks, want >= target 2000", a.Chunks)
	}
	if a.FetchErrors == 0 {
		t.Fatal("2% loss produced zero fetch errors; the retry path went unexercised")
	}
	if a.Sessions == 0 || a.FetchP99us <= 0 {
		t.Fatalf("implausible result: %+v", a)
	}
}

func TestVirtualFastNetworkNeverRebuffers(t *testing.T) {
	// Latency well under the chunk duration with pipelining: after the
	// startup buffer, delivery always beats the playhead.
	res, err := RunVirtual(VirtualConfig{
		Config: Config{
			Catalog:       &Catalog{Objects: 4, ObjectChunks: 32, ChunkBytes: 256, Salt: 1},
			Viewers:       4,
			Seed:          7,
			ChunkDur:      4 * time.Millisecond,
			StartupChunks: 2,
			Window:        8,
			MaxInFlight:   4,
		},
		BaseLatency: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sessions != 4 {
		t.Fatalf("sessions = %d, want one per viewer", res.Sessions)
	}
	if want := uint64(4 * 32); res.Chunks != want {
		t.Fatalf("chunks = %d, want %d", res.Chunks, want)
	}
	if res.Rebuffers != 0 || res.DeadlineMiss != 0 || res.StallNs != 0 {
		t.Fatalf("fast network still stalled: %+v", res)
	}
}

func TestVirtualSlowNetworkRebuffers(t *testing.T) {
	// One fetch at a time, each slower than a chunk's playback: the
	// playhead must outrun delivery and stall on (nearly) every chunk.
	res, err := RunVirtual(VirtualConfig{
		Config: Config{
			Catalog:       &Catalog{Objects: 2, ObjectChunks: 16, ChunkBytes: 256, Salt: 2},
			Viewers:       2,
			Seed:          9,
			ChunkDur:      time.Millisecond,
			StartupChunks: 1,
			Window:        2,
			MaxInFlight:   1,
		},
		BaseLatency: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rebuffers == 0 || res.DeadlineMiss == 0 || res.StallNs == 0 {
		t.Fatalf("slow serial network never stalled: %+v", res)
	}
	if res.RebufferRate <= 0 || res.RebufferRate > 1 {
		t.Fatalf("rebuffer rate %v outside (0, 1]", res.RebufferRate)
	}
}

func TestVirtualHeavyLossStillCompletes(t *testing.T) {
	res, err := RunVirtual(VirtualConfig{
		Config: Config{
			Catalog:      &Catalog{Objects: 2, ObjectChunks: 8, ChunkBytes: 64, Salt: 3},
			Viewers:      2,
			Seed:         11,
			ChunkDur:     time.Millisecond,
			MaxInFlight:  2,
			RetryBackoff: 500 * time.Microsecond,
		},
		BaseLatency: 200 * time.Microsecond,
		LossProb:    0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sessions != 2 || res.Chunks != 16 {
		t.Fatalf("lossy run incomplete: %+v", res)
	}
	if res.FetchErrors == 0 {
		t.Fatal("50% loss produced zero errors")
	}
}
