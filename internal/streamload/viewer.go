package streamload

import "fmt"

// ViewerConfig shapes one playback session. Times are nanoseconds on
// whatever clock the driver uses — wall time for the Engine, virtual
// time for RunVirtual; the Viewer never reads a clock itself.
type ViewerConfig struct {
	// Chunks is the length of the object being watched.
	Chunks int
	// StartChunk is where playback joins: 0 for the beginning, higher
	// for a mid-object join (a seek, or a live stream joined late).
	// Chunks before StartChunk are never fetched.
	StartChunk int
	// ChunkDur is the playback duration of one chunk in nanoseconds
	// (chunk bytes * 8 / bitrate). Playback consumes exactly one chunk
	// per ChunkDur once started.
	ChunkDur int64
	// StartupChunks is the buffer needed before playback starts: the
	// first StartupChunks chunks (from StartChunk) must all be
	// delivered. Minimum 1.
	StartupChunks int
	// Window bounds prefetch: only chunks within Window of the playhead
	// may be requested. 0 means unbounded. A window smaller than the
	// startup buffer could never start playback, so it is raised to
	// StartupChunks.
	Window int
	// MaxInFlight bounds pipelined concurrent fetches. Minimum 1.
	MaxInFlight int
}

// ViewerStats is one session's outcome counters.
type ViewerStats struct {
	// Delivered counts chunks received (each chunk exactly once).
	Delivered int
	// DeadlineMiss counts chunks that arrived after the playhead's
	// schedule needed them.
	DeadlineMiss int
	// Rebuffers counts stalls: the playhead reached a chunk boundary
	// whose chunk had not been delivered.
	Rebuffers int
	// StallNs is total time spent stalled.
	StallNs int64
	// StartupNs is the time from session creation to playback start
	// (the startup buffer filling); meaningful only once Started.
	StartupNs int64
	// Started reports whether playback ever began.
	Started bool
}

// Viewer is the per-session playback state machine: it decides which
// chunk to fetch next (sequential within a bounded window, pipelined up
// to MaxInFlight, never the same chunk twice concurrently) and scores
// deliveries against a playback clock. It is passive and purely
// deterministic: all time enters through the now arguments, so the same
// event sequence always produces the same stats — the property the
// virtual driver's byte-identical runs rest on. Not safe for concurrent
// use; each session owns one Viewer.
type Viewer struct {
	cfg       ViewerConfig
	delivered []bool
	requested []bool
	notBefore []int64 // retry backoff per chunk, set by Fail
	inFlight  int
	remaining int // undelivered chunks in [StartChunk, Chunks)

	created   int64
	started   bool
	base      int64 // playback origin: deadline(c) = base + (c-StartChunk)*ChunkDur
	cur       int   // chunk the playhead is on (valid once started)
	stalled   bool
	stallFrom int64 // when the current stall began
	st        ViewerStats
}

// NewViewer starts a session at time now. It panics on a config with no
// valid rendering (non-positive Chunks or ChunkDur, StartChunk outside
// the object) and normalizes the rest: StartupChunks and MaxInFlight
// are raised to 1, Window to StartupChunks.
func NewViewer(cfg ViewerConfig, now int64) *Viewer {
	if cfg.Chunks < 1 {
		panic(fmt.Sprintf("streamload: viewer needs at least 1 chunk, got %d", cfg.Chunks))
	}
	if cfg.ChunkDur < 1 {
		panic(fmt.Sprintf("streamload: viewer needs positive chunk duration, got %d", cfg.ChunkDur))
	}
	if cfg.StartChunk < 0 || cfg.StartChunk >= cfg.Chunks {
		panic(fmt.Sprintf("streamload: start chunk %d outside object of %d chunks", cfg.StartChunk, cfg.Chunks))
	}
	if cfg.StartupChunks < 1 {
		cfg.StartupChunks = 1
	}
	if cfg.MaxInFlight < 1 {
		cfg.MaxInFlight = 1
	}
	if cfg.Window > 0 && cfg.Window < cfg.StartupChunks {
		cfg.Window = cfg.StartupChunks
	}
	return &Viewer{
		cfg:       cfg,
		delivered: make([]bool, cfg.Chunks),
		requested: make([]bool, cfg.Chunks),
		notBefore: make([]int64, cfg.Chunks),
		remaining: cfg.Chunks - cfg.StartChunk,
		created:   now,
	}
}

// deadline is when the playhead's schedule consumes chunk c.
func (v *Viewer) deadline(c int) int64 {
	return v.base + int64(c-v.cfg.StartChunk)*v.cfg.ChunkDur
}

// advance replays the playback clock up to now: starting playback once
// the startup buffer fills, walking the playhead across delivered
// chunks, and charging rebuffers and stall time where the playhead
// outran delivery. Counting is retroactive — a delivery that arrives
// late is scored against the boundary the playhead actually hit, so
// drivers need not tick the clock at every boundary.
func (v *Viewer) advance(now int64) {
	if !v.started {
		end := v.cfg.StartChunk + v.cfg.StartupChunks
		if end > v.cfg.Chunks {
			end = v.cfg.Chunks
		}
		for i := v.cfg.StartChunk; i < end; i++ {
			if !v.delivered[i] {
				return
			}
		}
		v.started = true
		v.st.Started = true
		v.st.StartupNs = now - v.created
		v.base = now
		v.cur = v.cfg.StartChunk
	}
	for {
		if v.stalled {
			if !v.delivered[v.cur] {
				return
			}
			// The awaited chunk arrived (at some point up to now): the
			// stall ends and every later deadline shifts by its length,
			// so one slow chunk costs one rebuffer, not a cascade.
			v.st.StallNs += now - v.stallFrom
			v.base += now - v.stallFrom
			v.stalled = false
			continue
		}
		if v.cur >= v.cfg.Chunks-1 {
			return // playhead on the last chunk: nothing left to reach
		}
		// Strictly after the boundary: a chunk delivered at the exact
		// instant the playhead needs it is on time, never a stall.
		boundary := v.deadline(v.cur + 1)
		if now <= boundary {
			return
		}
		v.cur++
		if !v.delivered[v.cur] {
			v.stalled = true
			v.stallFrom = boundary
			v.st.Rebuffers++
		}
	}
}

// Next returns the next chunk to fetch at time now, marking it in
// flight, or ok=false when nothing is currently fetchable (pipeline
// full, window exhausted, retries backing off, or all chunks
// requested). A chunk is returned at most once until Fail releases it,
// which is the duplicate-fetch suppression pipelined drivers rely on.
func (v *Viewer) Next(now int64) (chunk int, ok bool) {
	v.advance(now)
	if v.inFlight >= v.cfg.MaxInFlight {
		return 0, false
	}
	lo := v.cfg.StartChunk
	if v.started && v.cur > lo {
		lo = v.cur
	}
	hi := v.cfg.Chunks
	if v.cfg.Window > 0 && lo+v.cfg.Window < hi {
		hi = lo + v.cfg.Window
	}
	for i := lo; i < hi; i++ {
		if !v.requested[i] && !v.delivered[i] && now >= v.notBefore[i] {
			v.requested[i] = true
			v.inFlight++
			return i, true
		}
	}
	return 0, false
}

// Deliver records that chunk arrived at time now, scoring it against
// the playback schedule. Chunks outside the session's range or already
// delivered are ignored.
func (v *Viewer) Deliver(now int64, chunk int) {
	if chunk < v.cfg.StartChunk || chunk >= v.cfg.Chunks || v.delivered[chunk] {
		return
	}
	// Replay the playhead up to now with the chunk still missing, so a
	// stall this delivery is about to end gets counted first.
	v.advance(now)
	// A miss is a chunk the playhead beat: either it is the chunk the
	// playhead is stalled waiting on right now, or it arrived past its
	// schedule while playback was running. During a stall on an earlier
	// chunk the clock is effectively frozen, so later chunks arriving
	// then are not misses — their deadlines will shift with the stall.
	if v.started && ((v.stalled && chunk == v.cur) || (!v.stalled && now > v.deadline(chunk))) {
		v.st.DeadlineMiss++
	}
	if v.requested[chunk] {
		v.inFlight--
	}
	v.requested[chunk] = true
	v.delivered[chunk] = true
	v.remaining--
	v.st.Delivered++
	v.advance(now)
}

// Fail releases an in-flight chunk after a fetch error so Next can
// re-issue it, but not before now+backoff — the retry discipline that
// keeps a dead owner from being hammered in a tight loop.
func (v *Viewer) Fail(now int64, chunk int, backoff int64) {
	if chunk < v.cfg.StartChunk || chunk >= v.cfg.Chunks || v.delivered[chunk] || !v.requested[chunk] {
		return
	}
	v.requested[chunk] = false
	v.inFlight--
	v.notBefore[chunk] = now + backoff
}

// Done reports whether every chunk from StartChunk on has been
// delivered.
func (v *Viewer) Done() bool { return v.remaining == 0 }

// InFlight returns the number of chunks currently being fetched.
func (v *Viewer) InFlight() int { return v.inFlight }

// NextWake returns the next time advance can change state without a
// delivery — the upcoming playhead boundary, or the earliest retry
// becoming eligible — and ok=false when only a delivery can move things
// forward. Drivers use it to sleep exactly as long as is safe.
func (v *Viewer) NextWake(now int64) (at int64, ok bool) {
	if v.started && !v.stalled && v.cur < v.cfg.Chunks-1 {
		// +1 because boundary crossing is strict: waking exactly at the
		// boundary would change nothing and loop.
		at, ok = v.deadline(v.cur+1)+1, true
	}
	for i := v.cfg.StartChunk; i < v.cfg.Chunks; i++ {
		if !v.requested[i] && !v.delivered[i] && v.notBefore[i] > now {
			if !ok || v.notBefore[i] < at {
				at, ok = v.notBefore[i], true
			}
		}
	}
	return at, ok
}

// Stats advances the playback clock to now and snapshots the session
// counters, folding any still-open stall into StallNs.
func (v *Viewer) Stats(now int64) ViewerStats {
	v.advance(now)
	s := v.st
	if v.stalled {
		s.StallNs += now - v.stallFrom
	}
	return s
}
