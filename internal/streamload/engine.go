package streamload

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"chordbalance/internal/ids"
	"chordbalance/internal/keys"
	"chordbalance/internal/xrand"
)

// Fetcher retrieves one chunk and returns its payload size. Fetch
// blocks for the full round trip (the Engine pipelines calls from many
// goroutines, so implementations must be safe for concurrent use) and
// must eventually return — a fetch that can hang forever would wedge a
// viewer's pipeline slot. CachedFetcher adapts a netchord client; the
// virtual driver synthesizes fetches from a latency model instead.
type Fetcher interface {
	Fetch(obj, chunk int, key ids.ID) (int, error)
}

// Config shapes a streaming run — shared between the real-time Engine
// and the virtual driver so one flag set drives both.
type Config struct {
	// Catalog is the stored content being streamed.
	Catalog *Catalog
	// Viewers is the number of concurrent playback sessions.
	Viewers int
	// Seed makes every random choice (object popularity, join offsets,
	// virtual latencies) reproducible; each viewer gets Split streams.
	Seed uint64
	// ZipfS is the popularity exponent over catalog objects: 0 for
	// uniform, ~1 for the heavy skew of file-sharing measurement
	// studies, where a few viral objects dominate fetch volume.
	ZipfS float64
	// ChunkDur is the playback duration of one chunk (chunk bytes * 8 /
	// bitrate).
	ChunkDur time.Duration
	// StartupChunks is the buffer filled before playback starts.
	// Default 2.
	StartupChunks int
	// Window bounds prefetch to this many chunks ahead of the playhead
	// (0 = unbounded).
	Window int
	// MaxInFlight bounds pipelined concurrent fetches per viewer.
	// Default 4.
	MaxInFlight int
	// MidJoinProb is the probability a session joins mid-object instead
	// of at chunk 0.
	MidJoinProb float64
	// TargetChunks stops the run once this many chunks have been
	// delivered in total (sessions in flight complete). 0 means each
	// viewer plays exactly one session.
	TargetChunks uint64
	// SLO is the per-chunk fetch latency objective; fetches slower than
	// this count as SLOMiss. 0 disables the count.
	SLO time.Duration
	// RetryBackoff is how long a failed chunk waits before re-fetch.
	// Default ChunkDur.
	RetryBackoff time.Duration
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.StartupChunks < 1 {
		c.StartupChunks = 2
	}
	if c.MaxInFlight < 1 {
		c.MaxInFlight = 4
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = c.ChunkDur
	}
	return c
}

// validate reports the first nonsensical field.
func (c Config) validate() error {
	if c.Catalog == nil {
		return fmt.Errorf("streamload: config needs a catalog")
	}
	if err := c.Catalog.Validate(); err != nil {
		return err
	}
	switch {
	case c.Viewers < 1:
		return fmt.Errorf("streamload: config needs at least 1 viewer, got %d", c.Viewers)
	case c.ChunkDur <= 0:
		return fmt.Errorf("streamload: config needs positive chunk duration, got %v", c.ChunkDur)
	case c.ZipfS < 0:
		return fmt.Errorf("streamload: negative zipf exponent %v", c.ZipfS)
	case c.MidJoinProb < 0 || c.MidJoinProb > 1:
		return fmt.Errorf("streamload: mid-join probability %v outside [0,1]", c.MidJoinProb)
	}
	return nil
}

// Engine drives Viewers concurrent playback sessions against a live
// Fetcher in real time: one goroutine per viewer runs the session loop,
// plus one short-lived goroutine per in-flight fetch. Monotone counters
// are exposed through Totals for a reporter loop; everything else is
// folded into the Result when Run returns.
type Engine struct {
	cfg  Config
	zipf *keys.Zipf

	start time.Time

	chunks atomic.Uint64
	misses atomic.Uint64
	rebufs atomic.Uint64
	bytes  atomic.Uint64

	mu          sync.Mutex
	latNs       []int64
	startupNs   []int64
	sessions    int
	fetchErrors uint64
	sloMiss     uint64
	stallNs     int64
}

// NewEngine validates cfg and returns a ready engine; call Run exactly
// once.
func NewEngine(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg, zipf: keys.NewZipf(cfg.Catalog.Objects, cfg.ZipfS)}, nil
}

// Totals snapshots the monotone delivery counters, safe to call from a
// reporter goroutine while Run is in flight.
func (e *Engine) Totals() Totals {
	return Totals{
		Chunks:       e.chunks.Load(),
		DeadlineMiss: e.misses.Load(),
		Rebuffers:    e.rebufs.Load(),
		Bytes:        e.bytes.Load(),
	}
}

// clock is nanoseconds since Run started (monotonic).
func (e *Engine) clock() int64 { return time.Since(e.start).Nanoseconds() }

// Run plays sessions until the chunk target is reached (or one session
// per viewer when no target is set), or ctx is canceled; in-flight
// fetches are always drained before it returns.
func (e *Engine) Run(ctx context.Context, f Fetcher) Result {
	e.start = time.Now()
	var wg sync.WaitGroup
	for i := 0; i < e.cfg.Viewers; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			e.viewerLoop(ctx, f, idx)
		}(i)
	}
	wg.Wait()

	r := Result{
		Viewers:      e.cfg.Viewers,
		Chunks:       e.chunks.Load(),
		DeadlineMiss: e.misses.Load(),
		Rebuffers:    e.rebufs.Load(),
		Bytes:        e.bytes.Load(),
		DurationNs:   e.clock(),
	}
	e.mu.Lock()
	r.Sessions = e.sessions
	r.FetchErrors = e.fetchErrors
	r.SLOMiss = e.sloMiss
	r.StallNs = e.stallNs
	latNs, startupNs := e.latNs, e.startupNs
	e.mu.Unlock()
	r.finalize(latNs, startupNs)
	return r
}

// viewerLoop runs back-to-back sessions for one viewer until the run's
// chunk target is met.
func (e *Engine) viewerLoop(ctx context.Context, f Fetcher, idx int) {
	rng := xrand.Split(e.cfg.Seed, uint64(idx))
	for {
		if ctx.Err() != nil {
			return
		}
		obj := e.zipf.Rank(rng) - 1
		start := 0
		if e.cfg.MidJoinProb > 0 && e.cfg.Catalog.ObjectChunks > 1 && rng.Bool(e.cfg.MidJoinProb) {
			start = rng.IntRange(1, e.cfg.Catalog.ObjectChunks-1)
		}
		e.session(ctx, f, obj, start)
		if e.cfg.TargetChunks == 0 || e.chunks.Load() >= e.cfg.TargetChunks {
			return
		}
	}
}

// fetchResult carries one completed fetch back to its session loop.
type fetchResult struct {
	chunk int
	bytes uint64
	latNs int64
	err   error
}

// session plays object obj from chunk start to the end, pipelining
// fetches through the viewer's window.
func (e *Engine) session(ctx context.Context, f Fetcher, obj, start int) {
	cat := e.cfg.Catalog
	now := e.clock()
	v := NewViewer(ViewerConfig{
		Chunks:        cat.ObjectChunks,
		StartChunk:    start,
		ChunkDur:      int64(e.cfg.ChunkDur),
		StartupChunks: e.cfg.StartupChunks,
		Window:        e.cfg.Window,
		MaxInFlight:   e.cfg.MaxInFlight,
	}, now)
	// Capacity MaxInFlight and at most MaxInFlight outstanding fetches:
	// sends below can never block, so fetch goroutines always finish.
	results := make(chan fetchResult, e.cfg.MaxInFlight)
	timer := time.NewTimer(e.cfg.ChunkDur)
	defer timer.Stop()

	var prev ViewerStats
	var lat []int64
	var fetchErrs, sloMiss uint64
	sloNs := int64(e.cfg.SLO)
	backoff := int64(e.cfg.RetryBackoff)

	apply := func(r fetchResult) {
		now = e.clock()
		if r.err != nil {
			fetchErrs++
			v.Fail(now, r.chunk, backoff)
			return
		}
		v.Deliver(now, r.chunk)
		e.bytes.Add(r.bytes)
		lat = append(lat, r.latNs)
		if sloNs > 0 && r.latNs > sloNs {
			sloMiss++
		}
		st := v.Stats(now)
		e.chunks.Add(uint64(st.Delivered - prev.Delivered))
		e.misses.Add(uint64(st.DeadlineMiss - prev.DeadlineMiss))
		e.rebufs.Add(uint64(st.Rebuffers - prev.Rebuffers))
		prev = st
	}

	for !v.Done() && ctx.Err() == nil {
		now = e.clock()
		for {
			chunk, ok := v.Next(now)
			if !ok {
				break
			}
			go e.fetch(f, obj, chunk, results)
		}
		// Sleep until something can change state: a delivery, the next
		// playhead boundary, or a retry becoming eligible. The ChunkDur
		// fallback guards the (unreachable by construction) case of no
		// wake source with nothing in flight.
		wake, wok := v.NextWake(now)
		wait := time.Duration(-1)
		if wok {
			wait = time.Duration(wake - now)
		} else if v.InFlight() == 0 {
			wait = e.cfg.ChunkDur
		}
		if wait >= 0 {
			if wait < 50*time.Microsecond {
				wait = 50 * time.Microsecond
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(wait)
			select {
			case r := <-results:
				apply(r)
			case <-timer.C:
			case <-ctx.Done():
			}
		} else {
			select {
			case r := <-results:
				apply(r)
			case <-ctx.Done():
			}
		}
	}
	// Drain in-flight fetches (bounded by their own RPC timeouts) so no
	// goroutine outlives the session.
	for v.InFlight() > 0 {
		apply(<-results)
	}

	now = e.clock()
	st := v.Stats(now)
	e.chunks.Add(uint64(st.Delivered - prev.Delivered))
	e.misses.Add(uint64(st.DeadlineMiss - prev.DeadlineMiss))
	e.rebufs.Add(uint64(st.Rebuffers - prev.Rebuffers))
	e.mu.Lock()
	e.sessions++
	e.latNs = append(e.latNs, lat...)
	if st.Started {
		e.startupNs = append(e.startupNs, st.StartupNs)
	}
	e.fetchErrors += fetchErrs
	e.sloMiss += sloMiss
	e.stallNs += st.StallNs
	e.mu.Unlock()
}

// fetch performs one blocking fetch and reports the timed outcome.
func (e *Engine) fetch(f Fetcher, obj, chunk int, results chan<- fetchResult) {
	t0 := e.clock()
	n, err := f.Fetch(obj, chunk, e.cfg.Catalog.ChunkKey(obj, chunk))
	results <- fetchResult{chunk: chunk, bytes: uint64(n), latNs: e.clock() - t0, err: err}
}
