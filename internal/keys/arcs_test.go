package keys

import (
	"math"
	"testing"

	"chordbalance/internal/ids"
)

func TestAnalyzeArcsEmpty(t *testing.T) {
	a := AnalyzeArcs(nil)
	if a.Nodes != 0 || a.MeanFraction != 0 {
		t.Errorf("empty analysis: %+v", a)
	}
}

func TestAnalyzeArcsSingleNode(t *testing.T) {
	a := AnalyzeArcs([]ids.ID{ids.FromUint64(7)})
	if a.Nodes != 1 || a.MeanFraction != 1 || a.MedianToMean != 1 {
		t.Errorf("single node: %+v", a)
	}
}

func TestAnalyzeArcsEvenPlacement(t *testing.T) {
	a := AnalyzeArcs(EvenIDs(64, ids.Zero))
	if math.Abs(a.MeanFraction-1.0/64) > 1e-9 {
		t.Errorf("mean = %v", a.MeanFraction)
	}
	if math.Abs(a.MedianToMean-1) > 1e-6 || math.Abs(a.MaxToMean-1) > 1e-6 {
		t.Errorf("even arcs must be uniform: %+v", a)
	}
	// Uniform arcs are maximally far from exponential: KS near 1-1/e.
	if a.KSStatistic < 0.4 {
		t.Errorf("KS for even placement = %v, want large", a.KSStatistic)
	}
}

func TestAnalyzeArcsSHA1MatchesExponential(t *testing.T) {
	g := NewGenerator(123)
	a := AnalyzeArcs(g.NodeIDs(2000))
	if math.Abs(a.MeanFraction-1.0/2000) > 1e-7 {
		t.Errorf("mean fraction = %v", a.MeanFraction)
	}
	// Median/mean must sit near ln 2 — the Table I phenomenon.
	if math.Abs(a.MedianToMean-ExpectedMedianToMean()) > 0.08 {
		t.Errorf("median/mean = %v, want ~%v", a.MedianToMean, ExpectedMedianToMean())
	}
	// Max/mean near ln n + gamma.
	want := ExpectedMaxToMean(2000)
	if a.MaxToMean < want*0.6 || a.MaxToMean > want*1.6 {
		t.Errorf("max/mean = %v, want ~%v", a.MaxToMean, want)
	}
	// KS consistent with the exponential model (5% critical value
	// 1.36/sqrt(n) ≈ 0.0304; allow slack for the asymptotic approximation).
	if a.KSStatistic > 0.05 {
		t.Errorf("KS = %v, SHA-1 arcs should look exponential", a.KSStatistic)
	}
}

func TestExpectedMaxToMean(t *testing.T) {
	if ExpectedMaxToMean(0) != 0 {
		t.Error("n=0 must be 0")
	}
	// ln(1000)+gamma ~ 7.485: the paper's no-strategy factor for 1000
	// nodes (Table II: 7.476).
	if got := ExpectedMaxToMean(1000); math.Abs(got-7.485) > 0.01 {
		t.Errorf("ExpectedMaxToMean(1000) = %v", got)
	}
}
