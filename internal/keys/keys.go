// Package keys generates node identifiers and task keys the way the paper
// does: by feeding (pseudo-)random inputs through SHA-1, "a favorite for
// many distributed hash tables" (§III). It also provides the arc-length and
// workload analyses behind Table I and Figure 1.
package keys

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
	"sort"

	"chordbalance/internal/ids"
	"chordbalance/internal/stats"
)

// HashUint64 returns SHA1(v) as a ring identifier, with v encoded
// big-endian — the paper's "feeding random numbers into the SHA1 hash
// function".
func HashUint64(v uint64) ids.ID {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	sum := sha1.Sum(buf[:])
	return ids.FromBytes(sum[:])
}

// HashString returns SHA1(s) as a ring identifier, the scheme used for
// filenames and other textual keys.
func HashString(s string) ids.ID {
	sum := sha1.Sum([]byte(s))
	return ids.FromBytes(sum[:])
}

// Generator produces streams of SHA-1 identifiers from a deterministic
// counter with a per-generator salt, so separate generators (node IDs vs
// task keys, trial 17 vs trial 18) never collide on inputs.
type Generator struct {
	salt uint64
	next uint64
}

// NewGenerator returns a Generator whose stream is determined by salt.
func NewGenerator(salt uint64) *Generator {
	return &Generator{salt: salt}
}

// Next returns the next identifier in the stream.
func (g *Generator) Next() ids.ID {
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], g.salt)
	binary.BigEndian.PutUint64(buf[8:], g.next)
	g.next++
	sum := sha1.Sum(buf[:])
	return ids.FromBytes(sum[:])
}

// NodeIDs returns n distinct SHA-1 node identifiers.
func (g *Generator) NodeIDs(n int) []ids.ID {
	out := make([]ids.ID, 0, n)
	seen := make(map[ids.ID]struct{}, n)
	for len(out) < n {
		id := g.Next()
		if _, dup := seen[id]; dup {
			continue // SHA-1 collisions are absurdly unlikely, but be exact
		}
		seen[id] = struct{}{}
		out = append(out, id)
	}
	return out
}

// TaskKeys returns n task keys (duplicates allowed, as for real file
// chunks; SHA-1 makes them vanishingly rare anyway).
func (g *Generator) TaskKeys(n int) []ids.ID {
	out := make([]ids.ID, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// EvenIDs returns n identifiers spaced exactly evenly around the ring,
// starting at offset — the idealized placement of Figure 3.
func EvenIDs(n int, offset ids.ID) []ids.ID {
	if n <= 0 {
		return nil
	}
	out := make([]ids.ID, n)
	// step = 2^160 / n computed as repeated addition of floor plus
	// distribution of the remainder via scaled index arithmetic: use
	// id_i = offset + floor(i * 2^160 / n) by long multiplication on the
	// fraction i/n in 160-bit fixed point.
	for i := range out {
		out[i] = offset.Add(fraction(uint64(i), uint64(n)))
	}
	return out
}

// fraction returns floor(num/den * 2^160) as an ID, for 0 <= num < den.
func fraction(num, den uint64) ids.ID {
	if num == 0 {
		return ids.Zero
	}
	// Long division: compute num * 2^160 / den digit by digit, byte-wise.
	var out ids.ID
	rem := num
	for i := 0; i < ids.Bytes; i++ {
		rem <<= 8
		out[i] = byte(rem / den)
		rem %= den
	}
	return out
}

// Assign counts how many task keys each node owns. Nodes are identified by
// their position in nodeIDs; the returned slice is parallel to nodeIDs.
// Ownership follows Chord: node n owns keys in (pred(n), n].
func Assign(nodeIDs, taskKeys []ids.ID) []int {
	if len(nodeIDs) == 0 {
		return nil
	}
	sorted := append([]ids.ID(nil), nodeIDs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	counts := make(map[ids.ID]int, len(sorted))
	for _, k := range taskKeys {
		counts[ownerOf(sorted, k)]++
	}
	out := make([]int, len(nodeIDs))
	for i, id := range nodeIDs {
		out[i] = counts[id]
	}
	return out
}

// ownerOf returns the ID in sorted (ascending) that owns key k: the first
// node clockwise at or after k, wrapping to sorted[0].
func ownerOf(sorted []ids.ID, k ids.ID) ids.ID {
	i := sort.Search(len(sorted), func(i int) bool {
		return k.Compare(sorted[i]) <= 0
	})
	if i == len(sorted) {
		i = 0
	}
	return sorted[i]
}

// DistributionReport captures the Table I statistics for one configuration.
type DistributionReport struct {
	Nodes, Tasks   int
	MedianWorkload float64
	StdDev         float64
	Mean           float64
	Gini           float64
}

// String renders the report as a Table I row.
func (r DistributionReport) String() string {
	return fmt.Sprintf("%6d nodes %8d tasks  median=%8.3f  sigma=%9.3f  mean=%8.3f  gini=%.3f",
		r.Nodes, r.Tasks, r.MedianWorkload, r.StdDev, r.Mean, r.Gini)
}

// AnalyzeDistribution builds Table I statistics for a fresh SHA-1 network.
// salt seeds the generator so trials are independent but reproducible.
func AnalyzeDistribution(nodes, tasks int, salt uint64) DistributionReport {
	g := NewGenerator(salt)
	nodeIDs := g.NodeIDs(nodes)
	loads := Assign(nodeIDs, g.TaskKeys(tasks))
	s := stats.SummarizeInts(loads)
	return DistributionReport{
		Nodes:          nodes,
		Tasks:          tasks,
		MedianWorkload: s.Median,
		StdDev:         s.StdDev,
		Mean:           s.Mean,
		Gini:           stats.GiniInts(loads),
	}
}

// ArcFractions returns each node's share of the ring (the fraction of the
// key space it owns), parallel to nodeIDs.
func ArcFractions(nodeIDs []ids.ID) []float64 {
	if len(nodeIDs) == 0 {
		return nil
	}
	sorted := append([]ids.ID(nil), nodeIDs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	frac := make(map[ids.ID]float64, len(sorted))
	for i, id := range sorted {
		pred := sorted[(i+len(sorted)-1)%len(sorted)]
		if len(sorted) == 1 {
			frac[id] = 1
		} else {
			frac[id] = ids.ArcFraction(pred, id)
		}
	}
	out := make([]float64, len(nodeIDs))
	for i, id := range nodeIDs {
		out[i] = frac[id]
	}
	return out
}
