package keys

import (
	"math"
	"sort"

	"chordbalance/internal/ids"
)

// ArcAnalysis quantifies §III's claim about how SHA-1 placement skews
// ownership. For n uniform node IDs the arc lengths follow (asymptotically)
// an exponential distribution with mean 1/n, which makes each node's
// expected workload share exponential too: the median arc is ln 2 ≈ 0.693
// of the mean — exactly the ~69% median-to-mean ratio of Table I — and the
// workload histogram takes the heavy-tailed shape of Figure 1 (the paper
// informally calls it Zipf-like).
type ArcAnalysis struct {
	Nodes int
	// MeanFraction and MedianFraction describe the arc-length sample.
	MeanFraction   float64
	MedianFraction float64
	// MedianToMean is MedianFraction/MeanFraction; exponential arcs give
	// ln 2 ≈ 0.693.
	MedianToMean float64
	// MaxToMean is the largest arc over the mean; extreme-value theory
	// for exponentials gives ≈ ln n + γ.
	MaxToMean float64
	// KSStatistic is the Kolmogorov-Smirnov distance between the
	// empirical arc distribution and Exponential(mean). Values well under
	// ~1.36/sqrt(n) are consistent with the exponential model at the 5%
	// level.
	KSStatistic float64
}

// AnalyzeArcs measures the arc-length distribution of the given node IDs.
func AnalyzeArcs(nodeIDs []ids.ID) ArcAnalysis {
	fr := ArcFractions(nodeIDs)
	n := len(fr)
	a := ArcAnalysis{Nodes: n}
	if n == 0 {
		return a
	}
	sorted := append([]float64(nil), fr...)
	sort.Float64s(sorted)
	var sum float64
	for _, f := range sorted {
		sum += f
	}
	a.MeanFraction = sum / float64(n)
	if n%2 == 1 {
		a.MedianFraction = sorted[n/2]
	} else {
		a.MedianFraction = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	if a.MeanFraction > 0 {
		a.MedianToMean = a.MedianFraction / a.MeanFraction
		a.MaxToMean = sorted[n-1] / a.MeanFraction
	}
	// One-sample KS against Exponential(rate = 1/mean).
	rate := 1 / a.MeanFraction
	var ks float64
	for i, x := range sorted {
		cdf := 1 - math.Exp(-rate*x)
		lo := math.Abs(cdf - float64(i)/float64(n))
		hi := math.Abs(cdf - float64(i+1)/float64(n))
		if lo > ks {
			ks = lo
		}
		if hi > ks {
			ks = hi
		}
	}
	a.KSStatistic = ks
	return a
}

// ExpectedMedianToMean is the exponential model's prediction for the
// median workload over the mean workload: ln 2.
func ExpectedMedianToMean() float64 { return math.Ln2 }

// ExpectedMaxToMean predicts the largest arc relative to the mean for n
// nodes: ln n + γ (Euler-Mascheroni). This is also the no-strategy,
// no-churn runtime factor the simulator measures, since the job finishes
// only when the most-loaded node does.
func ExpectedMaxToMean(n int) float64 {
	const eulerGamma = 0.5772156649015329
	if n < 1 {
		return 0
	}
	return math.Log(float64(n)) + eulerGamma
}
