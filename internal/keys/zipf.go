package keys

import (
	"math"
	"sort"

	"chordbalance/internal/ids"
)

// FloatSource is the randomness needed by the samplers in this file;
// *xrand.Rand satisfies it.
type FloatSource interface {
	Float64() float64
}

// Zipf samples object ranks 1..N with probability proportional to
// 1/rank^s, by inverse-CDF lookup over a precomputed table. The paper's
// workloads use uniformly random task keys; file-sharing workloads (the
// BitTorrent/IPFS deployments of §I) are strongly Zipf-distributed, so
// the skewed-workload ablation uses this sampler to key tasks by object
// popularity instead.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a sampler over n objects with exponent s. It panics for
// n < 1 or s < 0: both would be meaningless configurations.
func NewZipf(n int, s float64) *Zipf {
	if n < 1 {
		panic("keys: Zipf needs n >= 1")
	}
	if s < 0 {
		panic("keys: Zipf needs s >= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf}
}

// N returns the number of objects.
func (z *Zipf) N() int { return len(z.cdf) }

// Rank draws an object rank in [1, N], rank 1 being the most popular.
func (z *Zipf) Rank(src FloatSource) int {
	u := src.Float64()
	return sort.SearchFloat64s(z.cdf, u) + 1
}

// ZipfKeys generates nTasks task keys referencing nObjects distinct
// objects with Zipf(s) popularity. Tasks for the same object share a key
// (they hash the same object name), so popular objects concentrate many
// tasks on a single ring position — a far harsher imbalance than the
// paper's uniform keys.
func ZipfKeys(src FloatSource, salt uint64, nTasks, nObjects int, s float64) []ids.ID {
	z := NewZipf(nObjects, s)
	g := NewGenerator(salt)
	objects := make([]ids.ID, nObjects)
	for i := range objects {
		objects[i] = g.Next()
	}
	out := make([]ids.ID, nTasks)
	for i := range out {
		out[i] = objects[z.Rank(src)-1]
	}
	return out
}
