package keys

import (
	"crypto/sha1"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"chordbalance/internal/ids"
)

func TestHashUint64MatchesSHA1(t *testing.T) {
	want := sha1.Sum([]byte{0, 0, 0, 0, 0, 0, 0, 42})
	if got := HashUint64(42); got != ids.FromBytes(want[:]) {
		t.Errorf("HashUint64(42) = %v", got)
	}
}

func TestHashString(t *testing.T) {
	want := sha1.Sum([]byte("hello"))
	if got := HashString("hello"); got != ids.FromBytes(want[:]) {
		t.Errorf("HashString mismatch")
	}
	if HashString("a") == HashString("b") {
		t.Error("distinct strings hashed identically")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a, b := NewGenerator(5), NewGenerator(5)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same salt diverged")
		}
	}
	c := NewGenerator(6)
	if NewGenerator(5).Next() == c.Next() {
		t.Error("different salts collided on first output")
	}
}

func TestNodeIDsDistinct(t *testing.T) {
	g := NewGenerator(1)
	idsOut := g.NodeIDs(1000)
	if len(idsOut) != 1000 {
		t.Fatalf("got %d ids", len(idsOut))
	}
	seen := map[ids.ID]bool{}
	for _, id := range idsOut {
		if seen[id] {
			t.Fatal("duplicate node ID")
		}
		seen[id] = true
	}
}

func TestTaskKeysCount(t *testing.T) {
	if got := NewGenerator(2).TaskKeys(500); len(got) != 500 {
		t.Errorf("TaskKeys(500) length %d", len(got))
	}
}

func TestEvenIDsSpacing(t *testing.T) {
	out := EvenIDs(4, ids.Zero)
	if len(out) != 4 {
		t.Fatalf("len = %d", len(out))
	}
	if out[0] != ids.Zero {
		t.Errorf("first = %v", out[0])
	}
	if out[2] != ids.PowerOfTwo(159) {
		t.Errorf("half-way id = %v, want 2^159", out[2])
	}
	// All gaps within one unit of each other.
	fr := ArcFractions(out)
	for _, f := range fr {
		if math.Abs(f-0.25) > 1e-9 {
			t.Errorf("even arc fraction = %v, want 0.25", f)
		}
	}
	if EvenIDs(0, ids.Zero) != nil {
		t.Error("EvenIDs(0) must be nil")
	}
}

func TestEvenIDsOffset(t *testing.T) {
	off := ids.FromUint64(12345)
	out := EvenIDs(3, off)
	if out[0] != off {
		t.Errorf("offset not applied: %v", out[0])
	}
}

func TestFraction(t *testing.T) {
	if fraction(0, 7) != ids.Zero {
		t.Error("fraction(0,n) != 0")
	}
	if got := fraction(1, 2); got != ids.PowerOfTwo(159) {
		t.Errorf("1/2 of ring = %v", got)
	}
	if got := fraction(1, 4); got != ids.PowerOfTwo(158) {
		t.Errorf("1/4 of ring = %v", got)
	}
}

func TestAssignSimple(t *testing.T) {
	nodes := []ids.ID{ids.FromUint64(100), ids.FromUint64(200)}
	tasks := []ids.ID{
		ids.FromUint64(50),  // (200, 100] wrapping -> node 100
		ids.FromUint64(100), // own key inclusive -> node 100
		ids.FromUint64(150), // (100, 200] -> node 200
		ids.FromUint64(250), // wraps -> node 100
	}
	got := Assign(nodes, tasks)
	if got[0] != 3 || got[1] != 1 {
		t.Errorf("Assign = %v, want [3 1]", got)
	}
}

func TestAssignEmpty(t *testing.T) {
	if Assign(nil, []ids.ID{ids.Zero}) != nil {
		t.Error("no nodes must yield nil")
	}
	got := Assign([]ids.ID{ids.FromUint64(5)}, nil)
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("no tasks: %v", got)
	}
}

func TestAssignSingleNodeOwnsAll(t *testing.T) {
	g := NewGenerator(3)
	tasks := g.TaskKeys(100)
	got := Assign([]ids.ID{ids.FromUint64(777)}, tasks)
	if got[0] != 100 {
		t.Errorf("single node owns %d, want 100", got[0])
	}
}

func TestAssignConservation(t *testing.T) {
	f := func(seed uint64, nNodes, nTasks uint8) bool {
		n := int(nNodes%50) + 1
		m := int(nTasks)
		g := NewGenerator(seed)
		loads := Assign(g.NodeIDs(n), g.TaskKeys(m))
		sum := 0
		for _, l := range loads {
			if l < 0 {
				return false
			}
			sum += l
		}
		return sum == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestOwnerOfBoundaries(t *testing.T) {
	sorted := []ids.ID{ids.FromUint64(10), ids.FromUint64(20), ids.FromUint64(30)}
	cases := []struct{ key, want uint64 }{
		{10, 10}, {11, 20}, {20, 20}, {25, 30}, {30, 30}, {31, 10}, {5, 10},
	}
	for _, c := range cases {
		if got := ownerOf(sorted, ids.FromUint64(c.key)); got != ids.FromUint64(c.want) {
			t.Errorf("ownerOf(%d) = %v, want %d", c.key, got, c.want)
		}
	}
}

func TestArcFractionsSumToOne(t *testing.T) {
	g := NewGenerator(11)
	fr := ArcFractions(g.NodeIDs(100))
	var sum float64
	for _, f := range fr {
		if f < 0 {
			t.Fatal("negative arc")
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("arc fractions sum = %v", sum)
	}
	if ArcFractions(nil) != nil {
		t.Error("empty input must be nil")
	}
	single := ArcFractions([]ids.ID{ids.FromUint64(3)})
	if len(single) != 1 || single[0] != 1 {
		t.Errorf("single node fraction = %v", single)
	}
}

// TestAnalyzeDistributionTable1Shape verifies the core Table I claim: the
// median workload is far below the mean (tasks/nodes) and σ is on the order
// of the mean, because SHA-1 arcs follow an exponential distribution.
func TestAnalyzeDistributionTable1Shape(t *testing.T) {
	r := AnalyzeDistribution(1000, 100000, 42)
	if r.Mean != 100 {
		t.Fatalf("mean = %v, want exactly tasks/nodes = 100", r.Mean)
	}
	// Paper: median 69.4, σ 137. Allow generous slack for a single trial.
	if r.MedianWorkload < 50 || r.MedianWorkload > 90 {
		t.Errorf("median = %v, want ~69", r.MedianWorkload)
	}
	if r.StdDev < 80 || r.StdDev > 200 {
		t.Errorf("sigma = %v, want ~100-140", r.StdDev)
	}
	if r.Gini < 0.3 || r.Gini > 0.7 {
		t.Errorf("gini = %v, want ~0.5 for exponential arcs", r.Gini)
	}
}

func TestDistributionReportString(t *testing.T) {
	r := DistributionReport{Nodes: 10, Tasks: 100, MedianWorkload: 7, StdDev: 10.5, Mean: 10, Gini: 0.5}
	if s := r.String(); s == "" || !sort.StringsAreSorted([]string{s}) {
		t.Errorf("String() = %q", s)
	}
}
