package keys

import (
	"math"
	"testing"

	"chordbalance/internal/ids"
	"chordbalance/internal/xrand"
)

func TestNewZipfPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewZipf(0, 1) },
		func() { NewZipf(10, -0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z := NewZipf(10, 0)
	rng := xrand.New(1)
	counts := make([]int, 11)
	const draws = 50000
	for i := 0; i < draws; i++ {
		r := z.Rank(rng)
		if r < 1 || r > 10 {
			t.Fatalf("rank %d out of range", r)
		}
		counts[r]++
	}
	for r := 1; r <= 10; r++ {
		if math.Abs(float64(counts[r])-draws/10) > 5*math.Sqrt(draws/10) {
			t.Errorf("s=0 rank %d count %d, want ~%d", r, counts[r], draws/10)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(1000, 1.0)
	rng := xrand.New(2)
	counts := map[int]int{}
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[z.Rank(rng)]++
	}
	// Harmonic sum H_1000 ≈ 7.485; P(rank 1) ≈ 1/7.485 ≈ 0.1336.
	p1 := float64(counts[1]) / draws
	if math.Abs(p1-0.1336) > 0.01 {
		t.Errorf("P(rank 1) = %v, want ~0.134", p1)
	}
	// Rank 2 is half as likely as rank 1.
	ratio := float64(counts[1]) / float64(counts[2])
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("rank1/rank2 = %v, want ~2", ratio)
	}
	if z.N() != 1000 {
		t.Errorf("N = %d", z.N())
	}
}

func TestZipfKeysShareObjects(t *testing.T) {
	rng := xrand.New(3)
	out := ZipfKeys(rng, 7, 10000, 100, 1.2)
	if len(out) != 10000 {
		t.Fatalf("len = %d", len(out))
	}
	distinct := map[ids.ID]int{}
	for _, k := range out {
		distinct[k]++
	}
	if len(distinct) > 100 {
		t.Fatalf("more distinct keys (%d) than objects (100)", len(distinct))
	}
	// The most popular object dominates.
	max := 0
	for _, c := range distinct {
		if c > max {
			max = c
		}
	}
	if max < 1500 {
		t.Errorf("top object has %d tasks, want heavy concentration", max)
	}
}

func TestZipfKeysDeterministic(t *testing.T) {
	a := ZipfKeys(xrand.New(4), 9, 100, 10, 1)
	b := ZipfKeys(xrand.New(4), 9, 100, 10, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
}
