package chordreduce

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"chordbalance/internal/chord"
	"chordbalance/internal/keys"
)

func buildOverlay(t testing.TB, n int, seed uint64) (*chord.Network, *chord.Node) {
	t.Helper()
	nw := chord.NewNetwork(chord.Config{})
	g := keys.NewGenerator(seed)
	entry, err := nw.Create(g.Next())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		if _, err := nw.Join(g.Next(), entry); err != nil {
			t.Fatal(err)
		}
		nw.StabilizeAll()
	}
	if _, ok := nw.StabilizeUntilConverged(4 * n); !ok {
		t.Fatalf("overlay did not converge: %v", nw.VerifyRing())
	}
	nw.FixAllFingers()
	return nw, entry
}

var docs = map[string]string{
	"doc1": "the quick brown fox jumps over the lazy dog",
	"doc2": "the dog barks and the fox runs",
	"doc3": "quick quick slow",
}

func TestWordCountMatchesSequential(t *testing.T) {
	nw, entry := buildOverlay(t, 12, 1)
	job := WordCount(docs)
	res, err := NewRunner(nw, entry, job).Run()
	if err != nil {
		t.Fatal(err)
	}
	want := Sequential(job)
	if len(res.Output) != len(want) {
		t.Fatalf("output size %d, want %d", len(res.Output), len(want))
	}
	for k, v := range want {
		if res.Output[k] != v {
			t.Errorf("count[%q] = %q, want %q", k, res.Output[k], v)
		}
	}
	if res.Output["the"] != "4" || res.Output["quick"] != "3" {
		t.Errorf("spot checks failed: the=%q quick=%q", res.Output["the"], res.Output["quick"])
	}
	if res.MapExecutions != len(docs) {
		t.Errorf("map executions = %d, want %d (no failures)", res.MapExecutions, len(docs))
	}
	if res.Messages == 0 {
		t.Error("job must consume messages")
	}
}

func TestOutputsStoredInDHT(t *testing.T) {
	nw, entry := buildOverlay(t, 8, 2)
	r := NewRunner(nw, entry, WordCount(docs))
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	got, err := r.FetchOutput("fox")
	if err != nil || got != "2" {
		t.Errorf("FetchOutput(fox) = %q, %v", got, err)
	}
}

func TestMapperCrashReexecutes(t *testing.T) {
	nw, entry := buildOverlay(t, 12, 3)
	job := WordCount(docs)
	r := NewRunner(nw, entry, job)
	r.FailNextMaps = 2
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.MapExecutions != len(docs)+2 {
		t.Errorf("map executions = %d, want %d", res.MapExecutions, len(docs)+2)
	}
	want := Sequential(job)
	for k, v := range want {
		if res.Output[k] != v {
			t.Errorf("after re-execution count[%q] = %q, want %q", k, res.Output[k], v)
		}
	}
}

func TestNodeFailuresDuringJob(t *testing.T) {
	nw, entry := buildOverlay(t, 20, 4)
	job := WordCount(docs)
	r := NewRunner(nw, entry, job)
	killed := 0
	r.Hook = func(phase string, step int) {
		// Kill a node after the first map task and another mid-reduce,
		// never the entry node.
		if (phase == "map" && step == 0) || (phase == "reduce" && step == 2) {
			for _, id := range nw.AliveIDs() {
				if id != entry.ID() {
					nw.Kill(id)
					killed++
					break
				}
			}
			nw.StabilizeUntilConverged(200)
		}
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if killed != 2 {
		t.Fatalf("hook killed %d nodes", killed)
	}
	want := Sequential(job)
	for k, v := range want {
		if res.Output[k] != v {
			t.Errorf("under churn count[%q] = %q, want %q", k, res.Output[k], v)
		}
	}
}

func TestLargerJobManyChunks(t *testing.T) {
	inputs := map[string]string{}
	for i := 0; i < 40; i++ {
		inputs[fmt.Sprintf("part-%02d", i)] = strings.Repeat(fmt.Sprintf("w%d ", i%7), 5)
	}
	nw, entry := buildOverlay(t, 16, 5)
	job := WordCount(inputs)
	res, err := NewRunner(nw, entry, job).Run()
	if err != nil {
		t.Fatal(err)
	}
	want := Sequential(job)
	for k, v := range want {
		if res.Output[k] != v {
			t.Fatalf("count[%q] = %q, want %q", k, res.Output[k], v)
		}
	}
	// 7 distinct words, 40 chunks x 5 repeats... verify one exactly:
	// words w0..w6; chunk i contributes 5 of w(i%7). Count chunks per word.
	n0 := 0
	for i := 0; i < 40; i++ {
		if i%7 == 0 {
			n0++
		}
	}
	if res.Output["w0"] != strconv.Itoa(n0*5) {
		t.Errorf("w0 = %q, want %d", res.Output["w0"], n0*5)
	}
}

func TestCustomJob(t *testing.T) {
	// Max-temperature by city: exercises non-wordcount map/reduce.
	job := Job{
		Inputs: map[string]string{
			"s1": "nyc:31 sf:18 nyc:25",
			"s2": "sf:22 nyc:29",
		},
		Map: func(_, content string) []KV {
			var out []KV
			for _, tok := range strings.Fields(content) {
				parts := strings.SplitN(tok, ":", 2)
				out = append(out, KV{Key: parts[0], Value: parts[1]})
			}
			return out
		},
		Reduce: func(_ string, values []string) string {
			max := -1 << 31
			for _, v := range values {
				n, _ := strconv.Atoi(v)
				if n > max {
					max = n
				}
			}
			return strconv.Itoa(max)
		},
	}
	nw, entry := buildOverlay(t, 6, 6)
	res, err := NewRunner(nw, entry, job).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Output["nyc"] != "31" || res.Output["sf"] != "22" {
		t.Errorf("output = %v", res.Output)
	}
}

func TestValueSeparatorRejected(t *testing.T) {
	job := Job{
		Inputs: map[string]string{"c": "x"},
		Map: func(_, _ string) []KV {
			return []KV{{Key: "k", Value: "bad\x1fvalue"}}
		},
		Reduce: func(_ string, v []string) string { return "" },
	}
	nw, entry := buildOverlay(t, 4, 7)
	if _, err := NewRunner(nw, entry, job).Run(); err != ErrValueSeparator {
		t.Errorf("err = %v, want ErrValueSeparator", err)
	}
}

func TestSequentialWordCount(t *testing.T) {
	out := Sequential(WordCount(docs))
	if out["the"] != "4" || out["dog"] != "2" || out["slow"] != "1" {
		t.Errorf("sequential output = %v", out)
	}
}

func TestEmptyJob(t *testing.T) {
	nw, entry := buildOverlay(t, 4, 8)
	res, err := NewRunner(nw, entry, WordCount(nil)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 0 || res.MapExecutions != 0 {
		t.Errorf("empty job: %+v", res)
	}
}
