package chordreduce_test

import (
	"fmt"
	"log"

	"chordbalance/internal/chord"
	"chordbalance/internal/chordreduce"
	"chordbalance/internal/keys"
)

// Example runs a word count over a small Chord overlay.
func Example() {
	nw := chord.NewNetwork(chord.Config{})
	g := keys.NewGenerator(99)
	entry, err := nw.Create(g.Next())
	if err != nil {
		log.Fatal(err)
	}
	for i := 1; i < 8; i++ {
		if _, err := nw.Join(g.Next(), entry); err != nil {
			log.Fatal(err)
		}
		nw.StabilizeAll()
	}
	nw.StabilizeUntilConverged(64)
	nw.FixAllFingers()

	job := chordreduce.WordCount(map[string]string{
		"doc1": "to be or not to be",
		"doc2": "to see or not to see",
	})
	res, err := chordreduce.NewRunner(nw, entry, job).Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("to =", res.Output["to"])
	fmt.Println("be =", res.Output["be"])
	fmt.Println("map executions:", res.MapExecutions)
	// Output:
	// to = 4
	// be = 2
	// map executions: 2
}
