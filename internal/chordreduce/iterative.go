package chordreduce

import (
	"fmt"

	"chordbalance/internal/chord"
)

// Iterate chains MapReduce rounds: buildJob turns the current state into
// a Job, the round runs on the overlay, and its output becomes the next
// state. done (optional) inspects consecutive states and stops early —
// the standard fixed-point loop of iterative dataflows (PageRank,
// connected components, k-means), here running entirely over the DHT so
// every round inherits ChordReduce's churn tolerance.
//
// It returns the final state, the per-round results, and the first error.
func Iterate(
	nw *chord.Network,
	entry *chord.Node,
	initial map[string]string,
	maxRounds int,
	buildJob func(state map[string]string) Job,
	done func(prev, next map[string]string) bool,
) (map[string]string, []*Result, error) {
	if maxRounds < 1 {
		return nil, nil, fmt.Errorf("chordreduce: maxRounds must be >= 1, got %d", maxRounds)
	}
	state := initial
	var results []*Result
	for round := 0; round < maxRounds; round++ {
		job := buildJob(state)
		res, err := NewRunner(nw, entry, job).Run()
		if err != nil {
			return state, results, fmt.Errorf("chordreduce: round %d: %w", round, err)
		}
		results = append(results, res)
		if done != nil && done(state, res.Output) {
			return res.Output, results, nil
		}
		state = res.Output
	}
	return state, results, nil
}
