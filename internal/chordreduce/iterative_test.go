package chordreduce

import (
	"strconv"
	"testing"
)

// counterJob doubles every value each round.
func counterJob(state map[string]string) Job {
	inputs := map[string]string{}
	for k, v := range state {
		inputs[k] = k + "=" + v
	}
	return Job{
		Inputs: inputs,
		Map: func(_, content string) []KV {
			// content is "key=value".
			var k string
			var v int
			for i := 0; i < len(content); i++ {
				if content[i] == '=' {
					k = content[:i]
					v, _ = strconv.Atoi(content[i+1:])
					break
				}
			}
			return []KV{{Key: k, Value: strconv.Itoa(v * 2)}}
		},
		Reduce: func(_ string, values []string) string { return values[0] },
	}
}

func TestIterateDoubling(t *testing.T) {
	nw, entry := buildOverlay(t, 8, 20)
	initial := map[string]string{"a": "1", "b": "3"}
	final, results, err := Iterate(nw, entry, initial, 4, counterJob, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("rounds = %d", len(results))
	}
	if final["a"] != "16" || final["b"] != "48" {
		t.Errorf("final = %v, want a=16 b=48", final)
	}
}

func TestIterateEarlyStop(t *testing.T) {
	nw, entry := buildOverlay(t, 6, 21)
	initial := map[string]string{"x": "1"}
	stopAfter := 2
	calls := 0
	final, results, err := Iterate(nw, entry, initial, 10, counterJob,
		func(prev, next map[string]string) bool {
			calls++
			return calls >= stopAfter
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Errorf("rounds = %d, want early stop at 2", len(results))
	}
	if final["x"] != "4" {
		t.Errorf("final x = %q, want 4", final["x"])
	}
}

func TestIterateValidation(t *testing.T) {
	nw, entry := buildOverlay(t, 4, 22)
	if _, _, err := Iterate(nw, entry, nil, 0, counterJob, nil); err == nil {
		t.Error("maxRounds 0 must fail")
	}
}

func TestIterateErrorPropagates(t *testing.T) {
	nw, entry := buildOverlay(t, 4, 23)
	bad := func(map[string]string) Job {
		return Job{
			Inputs: map[string]string{"c": "x"},
			Map: func(_, _ string) []KV {
				return []KV{{Key: "k", Value: "bad\x1fsep"}}
			},
			Reduce: func(_ string, v []string) string { return "" },
		}
	}
	_, _, err := Iterate(nw, entry, map[string]string{"c": "x"}, 3, bad, nil)
	if err == nil {
		t.Error("round error must propagate")
	}
}
