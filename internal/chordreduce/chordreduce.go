// Package chordreduce reimplements the essence of ChordReduce (Rosen et
// al., ICA CON 2014), the authors' MapReduce framework over a Chord DHT
// and the system whose churn behavior motivated this paper: input chunks,
// intermediate results, and outputs all live in the DHT with active
// replication, so the job survives node failures by re-executing work on
// whichever node has become responsible for it.
//
// Execution is deterministic and phase-structured. The runner drives map
// tasks in ring order and lets the caller inject failures between steps
// through a hook, then proves the job still produces exactly the
// sequential result.
package chordreduce

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"chordbalance/internal/chord"
	"chordbalance/internal/ids"
	"chordbalance/internal/keys"
)

// KV is one intermediate key/value pair emitted by a map function.
type KV struct {
	Key   string
	Value string
}

// MapFunc transforms one input chunk into intermediate pairs.
type MapFunc func(chunkName, content string) []KV

// ReduceFunc folds all values of one intermediate key into a final value.
type ReduceFunc func(key string, values []string) string

// Job describes a complete MapReduce computation.
type Job struct {
	Map    MapFunc
	Reduce ReduceFunc
	// Combine, when non-nil, pre-aggregates one chunk's values for a key
	// before they are stored in the DHT — Hadoop's combiner. It must be
	// semantically compatible with Reduce (Reduce(Combine(v)) ==
	// Reduce(v)); word count's "sum the ones" is the classic case. It
	// cuts the intermediate data volume, which the runner reports as
	// BytesStored.
	Combine func(key string, values []string) []string
	// Inputs maps chunk names to their contents.
	Inputs map[string]string
}

// valueSep joins multiple values inside one DHT entry. Map values must
// not contain it; Validate enforces this at emission time.
const valueSep = "\x1f"

// ErrValueSeparator is returned when a map function emits a value
// containing the reserved separator byte.
var ErrValueSeparator = errors.New("chordreduce: map value contains reserved separator 0x1f")

// ErrDataLost is returned when a required DHT entry cannot be recovered
// even after stabilization — more adjacent failures than replicas.
var ErrDataLost = errors.New("chordreduce: data lost from the DHT")

// StepHook is called after each completed unit of work with the phase
// name ("distribute", "map", "reduce") and step index; tests use it to
// inject failures mid-job.
type StepHook func(phase string, step int)

// Result is the outcome of a run.
type Result struct {
	// Output is the reduced result per intermediate key.
	Output map[string]string
	// MapExecutions counts map-task executions; it exceeds the number of
	// chunks exactly when failures forced re-execution.
	MapExecutions int
	// Messages is the DHT message total consumed by the job.
	Messages int
	// BytesStored is the total payload volume written to the DHT
	// (chunks, intermediates, outputs, markers). A Combine function
	// shrinks the intermediate share.
	BytesStored int
}

// Runner executes a Job on a chord overlay.
type Runner struct {
	nw    *chord.Network
	entry *chord.Node
	job   Job
	// Hook, when non-nil, is invoked after every completed step.
	Hook StepHook
	// FailNextMaps makes the next n map-task executions crash mid-task:
	// only part of their intermediate output is written and no completion
	// marker is stored, exactly as if the mapper died partway through.
	// The chunk is then re-executed (by its new owner) on a later round.
	FailNextMaps int

	// chunkID maps each input chunk to its DHT key.
	chunkID map[string]ids.ID
	// mapExecs counts map-task executions, including crashed ones.
	mapExecs int
	// bytes accumulates payload volume written through putRetry.
	bytes int
}

// NewRunner prepares a job against the overlay reachable through entry.
func NewRunner(nw *chord.Network, entry *chord.Node, job Job) *Runner {
	return &Runner{nw: nw, entry: entry, job: job, chunkID: make(map[string]ids.ID)}
}

// Run executes distribute → map → reduce and returns the result.
func (r *Runner) Run() (*Result, error) {
	before := r.nw.TotalMessages()
	if err := r.Distribute(); err != nil {
		return nil, err
	}
	index, err := r.MapPhase()
	if err != nil {
		return nil, err
	}
	out, err := r.ReducePhase(index)
	if err != nil {
		return nil, err
	}
	return &Result{
		Output:        out,
		MapExecutions: r.mapExecs,
		Messages:      r.nw.TotalMessages() - before,
		BytesStored:   r.bytes,
	}, nil
}

// Distribute stores every input chunk in the DHT under SHA1(chunkName),
// replicated to the owner's successors.
func (r *Runner) Distribute() error {
	step := 0
	for _, name := range r.sortedChunks() {
		id := keys.HashString("chunk:" + name)
		r.chunkID[name] = id
		if err := r.putRetry(id, r.job.Inputs[name]); err != nil {
			return fmt.Errorf("chordreduce: distribute %q: %w", name, err)
		}
		r.hook("distribute", step)
		step++
	}
	return nil
}

// imIndex records where each (intermediate key, chunk) contribution lives.
type imIndex map[string]map[string]ids.ID // interKey -> chunk -> DHT id

// MapPhase runs every map task on the node currently responsible for its
// chunk, storing intermediate contributions in the DHT. Chunks whose
// completion marker is missing (because the responsible node died before
// finishing) are re-executed by the new owner; contributions are keyed by
// (interKey, chunk), so re-execution overwrites rather than duplicates.
func (r *Runner) MapPhase() (imIndex, error) {
	index := make(imIndex)
	pending := r.sortedChunks()
	step := 0
	for round := 0; len(pending) > 0; round++ {
		if round > len(r.job.Inputs)+10 {
			return nil, ErrDataLost
		}
		var still []string
		for _, name := range pending {
			content, err := r.getRetry(r.chunkID[name])
			if err != nil {
				return nil, fmt.Errorf("chordreduce: chunk %q: %w", name, err)
			}
			kvs := r.job.Map(name, content)
			r.mapExecs++
			grouped := map[string][]string{}
			for _, kv := range kvs {
				if strings.Contains(kv.Value, valueSep) {
					return nil, ErrValueSeparator
				}
				grouped[kv.Key] = append(grouped[kv.Key], kv.Value)
			}
			if r.job.Combine != nil {
				for ik, vs := range grouped {
					combined := r.job.Combine(ik, vs)
					for _, v := range combined {
						if strings.Contains(v, valueSep) {
							return nil, ErrValueSeparator
						}
					}
					grouped[ik] = combined
				}
			}
			crashAfter := -1
			if r.FailNextMaps > 0 {
				r.FailNextMaps--
				crashAfter = len(grouped) / 2
			}
			failed := false
			for i, ik := range sortedKeys(grouped) {
				if i == crashAfter {
					failed = true // mapper died mid-task
					break
				}
				id := keys.HashString("im:" + name + ":" + ik)
				if err := r.putRetry(id, strings.Join(grouped[ik], valueSep)); err != nil {
					failed = true
					break
				}
				m := index[ik]
				if m == nil {
					m = make(map[string]ids.ID)
					index[ik] = m
				}
				m[name] = id
			}
			if failed {
				still = append(still, name)
				continue
			}
			// Completion marker: replicated like any other key, so the
			// new owner of a crashed mapper's range can see the chunk
			// finished.
			marker := keys.HashString("done:" + name)
			if err := r.putRetry(marker, "1"); err != nil {
				still = append(still, name)
				continue
			}
			r.hook("map", step)
			step++
			// The hook may have killed nodes; verify the marker
			// survived. If not, the chunk is re-executed next round —
			// the heart of ChordReduce's fault tolerance.
			if _, err := r.getRetry(marker); err != nil {
				still = append(still, name)
			}
		}
		pending = still
	}
	return index, nil
}

// ReducePhase folds every intermediate key's contributions and stores the
// outputs back into the DHT under SHA1("out:"+key).
func (r *Runner) ReducePhase(index imIndex) (map[string]string, error) {
	out := make(map[string]string, len(index))
	step := 0
	for _, ik := range sortedKeys(index) {
		var values []string
		for _, chunk := range sortedKeys(index[ik]) {
			blob, err := r.getRetry(index[ik][chunk])
			if err != nil {
				return nil, fmt.Errorf("chordreduce: intermediate %q/%q: %w", ik, chunk, err)
			}
			values = append(values, strings.Split(blob, valueSep)...)
		}
		v := r.job.Reduce(ik, values)
		if err := r.putRetry(keys.HashString("out:"+ik), v); err != nil {
			return nil, fmt.Errorf("chordreduce: output %q: %w", ik, err)
		}
		out[ik] = v
		r.hook("reduce", step)
		step++
	}
	return out, nil
}

// FetchOutput reads a reduced value back out of the DHT.
func (r *Runner) FetchOutput(key string) (string, error) {
	return r.getRetry(keys.HashString("out:" + key))
}

func (r *Runner) hook(phase string, step int) {
	if r.Hook != nil {
		r.Hook(phase, step)
	}
}

// putRetry stores a key, healing the ring and retrying when routing is
// mid-repair after failures.
func (r *Runner) putRetry(id ids.ID, value string) error {
	var err error
	for attempt := 0; attempt < 4; attempt++ {
		if err = r.entry.Put(id, value); err == nil {
			r.bytes += len(value)
			return nil
		}
		r.nw.StabilizeUntilConverged(64)
	}
	return err
}

// getRetry fetches a key with the same healing behavior. A value that is
// still missing on a converged ring is genuinely lost.
func (r *Runner) getRetry(id ids.ID) (string, error) {
	for attempt := 0; attempt < 4; attempt++ {
		v, err := r.entry.Get(id)
		if err == nil {
			return v, nil
		}
		r.nw.StabilizeUntilConverged(64)
		if err == chord.ErrNotFound {
			if v, err2 := r.entry.Get(id); err2 == nil {
				return v, nil
			}
			return "", ErrDataLost
		}
	}
	return "", ErrDataLost
}

func (r *Runner) sortedChunks() []string {
	names := make([]string, 0, len(r.job.Inputs))
	for name := range r.job.Inputs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Sequential runs the job without any DHT, for verifying distributed
// results.
func Sequential(job Job) map[string]string {
	grouped := map[string][]string{}
	names := make([]string, 0, len(job.Inputs))
	for name := range job.Inputs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, kv := range job.Map(name, job.Inputs[name]) {
			grouped[kv.Key] = append(grouped[kv.Key], kv.Value)
		}
	}
	out := make(map[string]string, len(grouped))
	for k, vs := range grouped {
		out[k] = job.Reduce(k, vs)
	}
	return out
}

// WordCount is the canonical example job over the given documents.
func WordCount(docs map[string]string) Job {
	return Job{
		Inputs: docs,
		Map: func(_, content string) []KV {
			var out []KV
			for _, w := range strings.Fields(content) {
				w = strings.ToLower(strings.Trim(w, ".,;:!?\"'()"))
				if w != "" {
					out = append(out, KV{Key: w, Value: "1"})
				}
			}
			return out
		},
		Reduce: func(_ string, values []string) string {
			return fmt.Sprintf("%d", len(values))
		},
	}
}
