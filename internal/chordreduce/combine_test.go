package chordreduce

import (
	"strconv"
	"testing"
)

// summingWordCount is WordCount with a combiner that pre-sums each
// chunk's counts.
func summingWordCount(docs map[string]string) Job {
	job := WordCount(docs)
	sum := func(values []string) int {
		total := 0
		for _, v := range values {
			n, _ := strconv.Atoi(v)
			total += n
		}
		return total
	}
	job.Combine = func(_ string, values []string) []string {
		return []string{strconv.Itoa(sum(values))}
	}
	// Reduce must now sum values rather than count them.
	job.Reduce = func(_ string, values []string) string {
		return strconv.Itoa(sum(values))
	}
	return job
}

func TestCombinerSameResultFewerBytes(t *testing.T) {
	docs := map[string]string{}
	for i := 0; i < 6; i++ {
		docs["doc"+strconv.Itoa(i)] = "spam spam spam spam spam eggs spam spam spam spam"
	}
	nw, entry := buildOverlay(t, 10, 40)
	plain := WordCount(docs)
	// Make plain's reduce sum-compatible for comparison.
	plainRes, err := NewRunner(nw, entry, plain).Run()
	if err != nil {
		t.Fatal(err)
	}

	nw2, entry2 := buildOverlay(t, 10, 40)
	combRes, err := NewRunner(nw2, entry2, summingWordCount(docs)).Run()
	if err != nil {
		t.Fatal(err)
	}

	if combRes.Output["spam"] != plainRes.Output["spam"] ||
		combRes.Output["eggs"] != plainRes.Output["eggs"] {
		t.Errorf("combiner changed results: %v vs %v", combRes.Output, plainRes.Output)
	}
	if combRes.BytesStored >= plainRes.BytesStored {
		t.Errorf("combiner must shrink stored bytes: %d vs %d",
			combRes.BytesStored, plainRes.BytesStored)
	}
	if plainRes.BytesStored == 0 {
		t.Error("byte accounting missing")
	}
}

func TestCombinerSeparatorRejected(t *testing.T) {
	job := Job{
		Inputs: map[string]string{"c": "x"},
		Map: func(_, _ string) []KV {
			return []KV{{Key: "k", Value: "1"}}
		},
		Combine: func(_ string, _ []string) []string {
			return []string{"bad\x1fvalue"}
		},
		Reduce: func(_ string, v []string) string { return "" },
	}
	nw, entry := buildOverlay(t, 4, 41)
	if _, err := NewRunner(nw, entry, job).Run(); err != ErrValueSeparator {
		t.Errorf("err = %v, want ErrValueSeparator", err)
	}
}
