// Package parallel provides the small worker-pool primitives the
// experiment harness uses to spread independent simulation trials across
// CPU cores. Trials are seeded deterministically by index, so results are
// identical regardless of worker count or scheduling.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n) using up to workers goroutines
// (0 means GOMAXPROCS). It blocks until all iterations finish. fn must be
// safe for concurrent invocation with distinct indices.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Map runs fn over [0, n) in parallel and collects the results in index
// order.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// MapErr is Map for fallible work: it returns the first error encountered
// (by index order) along with the results computed so far. All iterations
// run regardless; short-circuiting would make trial batches
// schedule-dependent.
func MapErr[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	ForEach(n, workers, func(i int) {
		out[i], errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
