package parallel

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAll(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		const n = 200
		var hits [n]atomic.Int32
		ForEach(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, got)
			}
		}
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	ForEach(-5, 4, func(int) { called = true })
	if called {
		t.Error("fn must not be called for n <= 0")
	}
}

func TestMapOrder(t *testing.T) {
	out := Map(50, 8, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapErrFirstByIndex(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	_, err := MapErr(10, 4, func(i int) (int, error) {
		switch i {
		case 7:
			return 0, errB
		case 3:
			return 0, errA
		}
		return i, nil
	})
	if err != errA {
		t.Errorf("err = %v, want first-by-index errA", err)
	}
	out, err := MapErr(5, 2, func(i int) (int, error) { return i + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	if out[4] != 5 {
		t.Errorf("out = %v", out)
	}
}

func TestDeterministicUnderConcurrency(t *testing.T) {
	// Results must not depend on worker count.
	f := func(i int) int { return i * 31 }
	a := Map(100, 1, f)
	b := Map(100, 16, f)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("results differ by worker count")
		}
	}
}
