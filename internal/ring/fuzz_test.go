package ring

import (
	"encoding/binary"
	"testing"

	"chordbalance/internal/ids"
)

// FuzzOperationSequences drives the ring through arbitrary operation
// sequences decoded from fuzz input and checks the structural invariants
// after every step. Each input byte pair is (op, operand).
func FuzzOperationSequences(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 1, 0, 2, 0, 3, 1})
	f.Add([]byte{0, 5, 3, 9, 1, 0, 1, 1, 1, 2, 2, 7})
	f.Fuzz(func(t *testing.T, program []byte) {
		r := New[int]()
		r.SetConsumeMode(ConsumeMode(len(program) % 3))
		expectedKeys := 0
		for i := 0; i+1 < len(program) && i < 400; i += 2 {
			op, arg := program[i]%4, program[i+1]
			switch op {
			case 0: // insert at a derived ID
				id := derivedID(arg, i)
				if _, err := r.Insert(id, i); err != nil && err != ErrOccupied {
					t.Fatalf("insert: %v", err)
				}
			case 1: // remove an existing node
				if r.Len() > 1 {
					n := r.At(int(arg) % r.Len())
					if err := r.Remove(n); err != nil {
						t.Fatalf("remove: %v", err)
					}
				}
			case 2: // seed a batch of keys
				if r.Len() > 0 {
					batch := make([]ids.ID, int(arg)%8)
					for j := range batch {
						batch[j] = derivedID(arg+byte(j), i+1000)
					}
					if err := r.Seed(batch); err != nil {
						t.Fatalf("seed: %v", err)
					}
					expectedKeys += len(batch)
				}
			case 3: // consume
				if r.Len() > 0 {
					n := r.At(int(arg) % r.Len())
					if _, ok := n.Consume(); ok {
						expectedKeys--
					}
				}
			}
			if err := r.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", i/2, err)
			}
		}
		if r.TotalKeys() != expectedKeys {
			t.Fatalf("key accounting drifted: ring %d, expected %d",
				r.TotalKeys(), expectedKeys)
		}
	})
}

// derivedID spreads fuzz operands across the ring deterministically.
func derivedID(arg byte, salt int) ids.ID {
	var raw [20]byte
	binary.BigEndian.PutUint64(raw[:8], uint64(arg)*0x9e3779b97f4a7c15+uint64(salt))
	binary.BigEndian.PutUint64(raw[8:16], uint64(salt)*0xbf58476d1ce4e5b9+uint64(arg))
	return ids.FromBytes(raw[:])
}
