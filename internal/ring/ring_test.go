package ring

import (
	"testing"
	"testing/quick"

	"chordbalance/internal/ids"
	"chordbalance/internal/keys"
	"chordbalance/internal/xrand"
)

func u(v uint64) ids.ID { return ids.FromUint64(v) }

func mustInsert(t *testing.T, r *Ring[int], id uint64) *Node[int] {
	t.Helper()
	n, err := r.Insert(u(id), int(id))
	if err != nil {
		t.Fatalf("Insert(%d): %v", id, err)
	}
	return n
}

// TestArcsCoverRingOrder pins the ArcView contract: for any k, the arcs
// are disjoint and their concatenation in arc order is exactly ring
// order — on a bulk-built multi-segment ring, after churn, and on an
// incrementally built single-segment ring.
func TestArcsCoverRingOrder(t *testing.T) {
	rng := xrand.New(11)
	mk := func(n int) *Ring[int] {
		idsIn := make([]ids.ID, n)
		data := make([]int, n)
		for i := range idsIn {
			idsIn[i] = ids.FromUint64(rng.Uint64())
		}
		r := New[int]()
		if _, err := r.Build(idsIn, data); err != nil {
			t.Fatal(err)
		}
		return r
	}
	check := func(r *Ring[int]) {
		t.Helper()
		for _, k := range []int{1, 2, 3, 8, 64, r.Segments() + 5} {
			arcs := r.Arcs(k)
			if len(arcs) > k || len(arcs) > r.Segments() {
				t.Fatalf("Arcs(%d) returned %d arcs on %d segments", k, len(arcs), r.Segments())
			}
			var got []ids.ID
			total := 0
			for _, a := range arcs {
				total += a.Len()
				a.Each(func(n *Node[int]) { got = append(got, n.ID()) })
			}
			if total != r.Len() || len(got) != r.Len() {
				t.Fatalf("Arcs(%d): covered %d/%d nodes (Len sum %d)", k, len(got), r.Len(), total)
			}
			for i, id := range got {
				if want := r.At(i).ID(); id != want {
					t.Fatalf("Arcs(%d): position %d = %v, ring order has %v", k, i, id, want)
				}
			}
		}
	}

	big := mk(3000) // multi-segment geometry
	if big.Segments() < 2 {
		t.Fatalf("3000-node built ring has %d segments, want several", big.Segments())
	}
	check(big)

	// Churn the built ring and re-check: splices must not break coverage.
	for i := 0; i < 500; i++ {
		big.Remove(big.At(int(rng.Uint64() % uint64(big.Len()))))
		if _, err := big.Insert(ids.FromUint64(rng.Uint64()), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := big.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	check(big)

	small := New[int]()
	for i := 0; i < 40; i++ {
		mustInsert(t, small, rng.Uint64())
	}
	if small.Segments() != 1 {
		t.Fatalf("incremental ring has %d segments, want 1", small.Segments())
	}
	check(small)
}

func TestEmptyRing(t *testing.T) {
	r := New[int]()
	if r.Len() != 0 || r.TotalKeys() != 0 {
		t.Error("fresh ring not empty")
	}
	if r.Owner(u(5)) != nil {
		t.Error("Owner on empty ring must be nil")
	}
	if err := r.Seed([]ids.ID{u(1)}); err != ErrEmpty {
		t.Errorf("Seed on empty ring: %v", err)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestInsertOrderAndGet(t *testing.T) {
	r := New[int]()
	for _, v := range []uint64{50, 10, 30} {
		mustInsert(t, r, v)
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	for i, want := range []uint64{10, 30, 50} {
		if got := r.At(i).ID(); got != u(want) {
			t.Errorf("At(%d) = %v, want %d", i, got, want)
		}
	}
	n, ok := r.Get(u(30))
	if !ok || n.Data != 30 {
		t.Errorf("Get(30) = %v, %v", n, ok)
	}
	if _, ok := r.Get(u(31)); ok {
		t.Error("Get(31) found phantom node")
	}
}

func TestInsertDuplicate(t *testing.T) {
	r := New[int]()
	mustInsert(t, r, 10)
	if _, err := r.Insert(u(10), 0); err != ErrOccupied {
		t.Errorf("duplicate insert: %v", err)
	}
}

func TestOwner(t *testing.T) {
	r := New[int]()
	mustInsert(t, r, 10)
	mustInsert(t, r, 20)
	cases := []struct{ key, owner uint64 }{
		{10, 10}, {15, 20}, {20, 20}, {25, 10}, {5, 10},
	}
	for _, c := range cases {
		if got := r.Owner(u(c.key)); got.ID() != u(c.owner) {
			t.Errorf("Owner(%d) = %v, want %d", c.key, got.ID(), c.owner)
		}
	}
}

func TestSuccPred(t *testing.T) {
	r := New[int]()
	a := mustInsert(t, r, 10)
	b := mustInsert(t, r, 20)
	c := mustInsert(t, r, 30)
	if r.Succ(a, 1) != b || r.Succ(a, 2) != c || r.Succ(a, 3) != a {
		t.Error("Succ wrong")
	}
	if r.Pred(a, 1) != c || r.Pred(a, 2) != b {
		t.Error("Pred wrong")
	}
	if r.Succ(b, 0) != b {
		t.Error("Succ(n,0) must be n")
	}
	if a.PredID() != u(30) || b.PredID() != u(10) {
		t.Error("PredID wrong")
	}
}

func TestSingleNodeOwnsEverything(t *testing.T) {
	r := New[int]()
	n := mustInsert(t, r, 100)
	if n.PredID() != u(100) {
		t.Error("lone node must be its own predecessor")
	}
	if err := r.Seed([]ids.ID{u(1), u(100), u(200)}); err != nil {
		t.Fatal(err)
	}
	if n.Workload() != 3 || r.TotalKeys() != 3 {
		t.Errorf("workload = %d", n.Workload())
	}
}

func TestSeedOwnership(t *testing.T) {
	r := New[int]()
	mustInsert(t, r, 10)
	mustInsert(t, r, 20)
	mustInsert(t, r, 30)
	seed := []ids.ID{u(5), u(10), u(11), u(20), u(25), u(31), u(200)}
	if err := r.Seed(seed); err != nil {
		t.Fatal(err)
	}
	n10, _ := r.Get(u(10))
	n20, _ := r.Get(u(20))
	n30, _ := r.Get(u(30))
	// node 10 owns (30, 10]: keys 5, 10, 31, 200
	if n10.Workload() != 4 {
		t.Errorf("node10 = %d keys: %v", n10.Workload(), n10.Keys())
	}
	if n20.Workload() != 2 || n30.Workload() != 1 {
		t.Errorf("node20 = %d, node30 = %d", n20.Workload(), n30.Workload())
	}
	if err := r.CheckInvariants(); err != nil {
		t.Error(err)
	}
	// Ring order for node 10 starts after its predecessor (30).
	ks := n10.Keys()
	want := []uint64{31, 200, 5, 10}
	for i, w := range want {
		if ks[i] != u(w) {
			t.Fatalf("node10 keys order = %v, want %v", ks, want)
		}
	}
}

func TestInsertSplitsKeys(t *testing.T) {
	r := New[int]()
	mustInsert(t, r, 100)
	if err := r.Seed([]ids.ID{u(10), u(20), u(30), u(40), u(90)}); err != nil {
		t.Fatal(err)
	}
	// New node at 25 takes keys in (100, 25] = {10, 20, 25? no 25 absent} -> {10, 20}.
	n25, err := r.Insert(u(25), 0)
	if err != nil {
		t.Fatal(err)
	}
	if n25.Workload() != 2 {
		t.Errorf("n25 workload = %d, want 2 (%v)", n25.Workload(), n25.Keys())
	}
	n100, _ := r.Get(u(100))
	if n100.Workload() != 3 {
		t.Errorf("n100 workload = %d, want 3", n100.Workload())
	}
	if r.TotalKeys() != 5 {
		t.Errorf("total = %d", r.TotalKeys())
	}
	if err := r.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRemoveMergesKeys(t *testing.T) {
	r := New[int]()
	mustInsert(t, r, 10)
	mustInsert(t, r, 20)
	mustInsert(t, r, 30)
	if err := r.Seed([]ids.ID{u(5), u(15), u(16), u(25)}); err != nil {
		t.Fatal(err)
	}
	n20, _ := r.Get(u(20))
	if err := r.Remove(n20); err != nil {
		t.Fatal(err)
	}
	if n20.OnRing() {
		t.Error("removed node still claims to be on ring")
	}
	n30, _ := r.Get(u(30))
	// 30 now owns (10, 30]: keys 15, 16, 25.
	if n30.Workload() != 3 {
		t.Errorf("n30 workload = %d (%v)", n30.Workload(), n30.Keys())
	}
	if r.TotalKeys() != 4 || r.Len() != 2 {
		t.Errorf("total=%d len=%d", r.TotalKeys(), r.Len())
	}
	if err := r.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if err := r.Remove(n20); err != ErrRemoved {
		t.Errorf("double remove: %v", err)
	}
}

func TestRemoveLastNode(t *testing.T) {
	r := New[int]()
	n := mustInsert(t, r, 10)
	if err := r.Seed([]ids.ID{u(1)}); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove(n); err != ErrLastNode {
		t.Errorf("removing last node with keys: %v", err)
	}
	n.Consume()
	if err := r.Remove(n); err != nil {
		t.Errorf("removing idle last node: %v", err)
	}
	if r.Len() != 0 {
		t.Error("ring not empty")
	}
}

func TestConsume(t *testing.T) {
	r := New[int]()
	n := mustInsert(t, r, 100)
	if _, ok := n.Consume(); ok {
		t.Error("consume on empty node succeeded")
	}
	if err := r.Seed([]ids.ID{u(10), u(20), u(30), u(40)}); err != nil {
		t.Fatal(err)
	}
	seen := map[ids.ID]bool{}
	for i := 0; i < 4; i++ {
		k, ok := n.Consume()
		if !ok {
			t.Fatalf("consume %d failed", i)
		}
		if seen[k] {
			t.Fatalf("key %v consumed twice", k)
		}
		seen[k] = true
	}
	if n.Workload() != 0 || r.TotalKeys() != 0 {
		t.Error("keys remain after full consumption")
	}
}

func TestConsumeModes(t *testing.T) {
	setup := func(mode ConsumeMode) *Node[int] {
		r := New[int]()
		r.SetConsumeMode(mode)
		n, err := r.Insert(u(100), 0)
		if err != nil {
			t.Fatal(err)
		}
		// Keys in ring order from pred(=self): 101..110 wrapping.
		var seed []ids.ID
		for v := uint64(101); v <= 110; v++ {
			seed = append(seed, u(v))
		}
		if err := r.Seed(seed); err != nil {
			t.Fatal(err)
		}
		return n
	}

	n := setup(ConsumeFront)
	k1, _ := n.Consume()
	k2, _ := n.Consume()
	if k1 != u(101) || k2 != u(102) {
		t.Errorf("front mode got %v, %v", k1, k2)
	}

	n = setup(ConsumeBack)
	k1, _ = n.Consume()
	k2, _ = n.Consume()
	if k1 != u(110) || k2 != u(109) {
		t.Errorf("back mode got %v, %v", k1, k2)
	}

	n = setup(ConsumeAlternate)
	k1, _ = n.Consume()
	k2, _ = n.Consume()
	if k1 != u(101) || k2 != u(110) {
		t.Errorf("alternate mode got %v, %v", k1, k2)
	}
}

func TestConsumeModeSetting(t *testing.T) {
	r := New[int]()
	if r.ConsumeModeSetting() != ConsumeFront {
		t.Error("default mode must be ConsumeFront")
	}
	r.SetConsumeMode(ConsumeAlternate)
	if r.ConsumeModeSetting() != ConsumeAlternate {
		t.Error("SetConsumeMode did not stick")
	}
}

func TestConsumeN(t *testing.T) {
	r := New[int]()
	n := mustInsert(t, r, 100)
	if err := r.Seed([]ids.ID{u(1), u(2), u(3)}); err != nil {
		t.Fatal(err)
	}
	if got := n.ConsumeN(2); got != 2 {
		t.Errorf("ConsumeN(2) = %d", got)
	}
	if got := n.ConsumeN(5); got != 1 {
		t.Errorf("ConsumeN(5) on 1 remaining = %d", got)
	}
	if got := n.ConsumeN(5); got != 0 {
		t.Errorf("ConsumeN on empty = %d", got)
	}
}

func TestWorkloadsSnapshot(t *testing.T) {
	r := New[int]()
	mustInsert(t, r, 10)
	mustInsert(t, r, 20)
	if err := r.Seed([]ids.ID{u(15), u(16), u(5)}); err != nil {
		t.Fatal(err)
	}
	ws := r.Workloads()
	if len(ws) != 2 || ws[0] != 1 || ws[1] != 2 {
		t.Errorf("Workloads = %v", ws)
	}
}

// TestKeyConservationUnderChurn is the central property: arbitrary
// interleavings of joins, leaves, and consumption never lose or duplicate
// keys, and ownership stays exactly (pred, self].
func TestKeyConservationUnderChurn(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(uint64(seed))
		r := New[int]()
		g := keys.NewGenerator(uint64(seed))
		for i := 0; i < 20; i++ {
			if _, err := r.Insert(g.Next(), i); err != nil {
				return false
			}
		}
		taskKeys := g.TaskKeys(500)
		if err := r.Seed(taskKeys); err != nil {
			return false
		}
		consumed := 0
		for step := 0; step < 300; step++ {
			switch rng.Intn(3) {
			case 0: // join at random ID
				if _, err := r.Insert(ids.Random(rng), 99); err != nil && err != ErrOccupied {
					return false
				}
			case 1: // leave random node (never the last)
				if r.Len() > 1 {
					n := r.At(rng.Intn(r.Len()))
					if err := r.Remove(n); err != nil {
						return false
					}
				}
			case 2: // random node consumes
				n := r.At(rng.Intn(r.Len()))
				if _, ok := n.Consume(); ok {
					consumed++
				}
			}
		}
		if err := r.CheckInvariants(); err != nil {
			t.Logf("invariant: %v", err)
			return false
		}
		return r.TotalKeys() == len(taskKeys)-consumed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestSplitExactness verifies a join acquires exactly the keys in its arc,
// for many random configurations.
func TestSplitExactness(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(uint64(seed))
		r := New[int]()
		g := keys.NewGenerator(uint64(seed) ^ 0xabcd)
		for i := 0; i < 5; i++ {
			if _, err := r.Insert(g.Next(), i); err != nil {
				return false
			}
		}
		if err := r.Seed(g.TaskKeys(200)); err != nil {
			return false
		}
		id := ids.Random(rng)
		owner := r.Owner(id)
		beforeKeys := owner.Keys()
		pred := owner.PredID()
		wantMine := 0
		for _, k := range beforeKeys {
			if ids.BetweenRightIncl(k, pred, id) {
				wantMine++
			}
		}
		n, err := r.Insert(id, 9)
		if err == ErrOccupied {
			return true
		}
		if err != nil {
			return false
		}
		return n.Workload() == wantMine &&
			owner.Workload() == len(beforeKeys)-wantMine &&
			r.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRemoveWrapAroundMerge(t *testing.T) {
	// Removing the highest node merges into the lowest (wrap).
	r := New[int]()
	mustInsert(t, r, 10)
	mustInsert(t, r, 200)
	if err := r.Seed([]ids.ID{u(150), u(190), u(5)}); err != nil {
		t.Fatal(err)
	}
	n200, _ := r.Get(u(200))
	if n200.Workload() != 2 {
		t.Fatalf("setup: n200 has %d", n200.Workload())
	}
	if err := r.Remove(n200); err != nil {
		t.Fatal(err)
	}
	n10, _ := r.Get(u(10))
	if n10.Workload() != 3 {
		t.Errorf("n10 workload = %d, want all 3", n10.Workload())
	}
	if err := r.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestSeedTwiceMerges(t *testing.T) {
	r := New[int]()
	n := mustInsert(t, r, 100)
	if err := r.Seed([]ids.ID{u(1), u(3)}); err != nil {
		t.Fatal(err)
	}
	if err := r.Seed([]ids.ID{u(2)}); err != nil {
		t.Fatal(err)
	}
	if n.Workload() != 3 || r.TotalKeys() != 3 {
		t.Errorf("workload = %d", n.Workload())
	}
	if err := r.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestSplitKey(t *testing.T) {
	r := New[int]()
	n := mustInsert(t, r, 1000)
	if _, ok := n.SplitKey(); ok {
		t.Error("empty node must have no split key")
	}
	if err := r.Seed([]ids.ID{u(10)}); err != nil {
		t.Fatal(err)
	}
	if _, ok := n.SplitKey(); ok {
		t.Error("single-key node must have no split key")
	}
	if err := r.Seed([]ids.ID{u(20), u(30), u(40)}); err != nil {
		t.Fatal(err)
	}
	// Keys 10,20,30,40: split at index (4-1)/2 = 1 -> key 20.
	id, ok := n.SplitKey()
	if !ok || id != u(20) {
		t.Fatalf("SplitKey = %v, %v; want 20", id, ok)
	}
	// Inserting at the split key takes exactly half the keys.
	m, err := r.Insert(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Workload() != 2 || n.Workload() != 2 {
		t.Errorf("split workloads = %d/%d, want 2/2", m.Workload(), n.Workload())
	}
}

func TestSplitKeyOddCount(t *testing.T) {
	r := New[int]()
	n := mustInsert(t, r, 1000)
	if err := r.Seed([]ids.ID{u(10), u(20), u(30), u(40), u(50)}); err != nil {
		t.Fatal(err)
	}
	id, ok := n.SplitKey()
	if !ok || id != u(30) {
		t.Fatalf("SplitKey = %v, want 30", id)
	}
	m, err := r.Insert(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Workload() != 3 || n.Workload() != 2 {
		t.Errorf("odd split = %d/%d, want 3/2", m.Workload(), n.Workload())
	}
}

func TestStaleNodePanics(t *testing.T) {
	r := New[int]()
	a := mustInsert(t, r, 10)
	mustInsert(t, r, 20)
	if err := r.Remove(a); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Succ on removed node must panic")
		}
	}()
	r.Succ(a, 1)
}

func BenchmarkInsertRemove(b *testing.B) {
	r := New[int]()
	g := keys.NewGenerator(1)
	for i := 0; i < 1000; i++ {
		if _, err := r.Insert(g.Next(), i); err != nil {
			b.Fatal(err)
		}
	}
	if err := r.Seed(g.TaskKeys(100000)); err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := ids.Random(rng)
		n, err := r.Insert(id, 0)
		if err != nil {
			continue
		}
		if err := r.Remove(n); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOwner(b *testing.B) {
	r := New[int]()
	g := keys.NewGenerator(3)
	for i := 0; i < 10000; i++ {
		if _, err := r.Insert(g.Next(), i); err != nil {
			b.Fatal(err)
		}
	}
	rng := xrand.New(4)
	probe := make([]ids.ID, 1024)
	for i := range probe {
		probe[i] = ids.Random(rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Owner(probe[i%len(probe)])
	}
}
