package ring

// Micro-benchmarks and allocation guards for the ring hot paths. The
// macro numbers live in cmd/dhtbench (whole-simulation ns/tick); these
// isolate the individual operations the O(1)-hot-path work targeted so a
// regression can be localized without re-profiling the full engine. The
// zero-alloc guards are ordinary tests, so `go test ./internal/ring`
// fails immediately if Succ, PredID, or Consume ever start allocating.

import (
	"testing"

	"chordbalance/internal/ids"
	"chordbalance/internal/keys"
)

// benchSink defeats dead-code elimination in the loops below.
var benchSink ids.ID

// buildRing returns a ring of n nodes with deterministic SHA-1 IDs and,
// when tasks > 0, that many task keys seeded onto it.
func buildRing(tb testing.TB, n, tasks int) (*Ring[int], []*Node[int]) {
	tb.Helper()
	g := keys.NewGenerator(1)
	nodeIDs := make([]ids.ID, n)
	data := make([]int, n)
	for i := range nodeIDs {
		nodeIDs[i] = g.Next()
		data[i] = i
	}
	r := New[int]()
	nodes, err := r.Build(nodeIDs, data)
	if err != nil {
		tb.Fatal(err)
	}
	if tasks > 0 {
		if err := r.Seed(g.TaskKeys(tasks)); err != nil {
			tb.Fatal(err)
		}
	}
	return r, nodes
}

// BenchmarkRingSucc measures the steady-state successor walk: with valid
// index hints every call is a bounds check plus a modular increment.
func BenchmarkRingSucc(b *testing.B) {
	r, nodes := buildRing(b, 10_000, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = r.Succ(nodes[i%len(nodes)], 1).ID()
	}
}

// benchWindow is how many timed Insert/Remove iterations run against one
// ring before it is rebuilt off the clock. Rebuilding keeps the ring size
// bounded, so the O(size) node-slice splice inside each operation stays
// constant instead of scaling with b.N.
const benchWindow = 4096

// BenchmarkRingInsert measures a join against a populated ring: one
// binary search for the slot, one for the key-window cut, one splice.
func BenchmarkRingInsert(b *testing.B) {
	g := keys.NewGenerator(2)
	joinIDs := make([]ids.ID, benchWindow)
	for i := range joinIDs {
		joinIDs[i] = g.Next()
	}
	var r *Ring[int]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%benchWindow == 0 {
			b.StopTimer()
			r, _ = buildRing(b, 1024, 16_384)
			b.StartTimer()
		}
		if _, err := r.Insert(joinIDs[i%benchWindow], i); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRingRemove measures a graceful leave with key hand-off to the
// successor. The ring is rebuilt off the clock with a window of spare
// nodes, so every timed iteration removes a node that is genuinely on a
// ring of bounded size.
func BenchmarkRingRemove(b *testing.B) {
	var (
		r     *Ring[int]
		nodes []*Node[int]
	)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%benchWindow == 0 {
			b.StopTimer()
			r, nodes = buildRing(b, benchWindow+1024, 16_384)
			b.StartTimer()
		}
		if err := r.Remove(nodes[i%benchWindow]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRingSeed measures routing a fresh batch of task keys onto a
// 1024-node ring: one radix-assisted sort of the batch plus one binary
// search per distinct owner. The per-iteration drain keeps the key
// population (and therefore the merge cost) constant across iterations.
func BenchmarkRingSeed(b *testing.B) {
	r, _ := buildRing(b, 1024, 0)
	g := keys.NewGenerator(3)
	batch := g.TaskKeys(8192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Seed(batch); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		for j := 0; j < r.Len(); j++ {
			r.At(j).ConsumeN(1 << 30)
		}
		b.StartTimer()
	}
}

// TestHotPathsZeroAlloc pins the allocation-free contract of the three
// per-tick hot calls. AllocsPerRun averages over many runs, so a single
// lazy index-hint repair (which allocates nothing anyway) cannot hide a
// real regression.
func TestHotPathsZeroAlloc(t *testing.T) {
	r, nodes := buildRing(t, 256, 50_000)
	// Warm every index hint so the runs below measure the steady state.
	for _, n := range nodes {
		benchSink = r.Succ(n, 1).ID()
	}
	heavy := nodes[0]
	for _, n := range nodes {
		if n.Workload() > heavy.Workload() {
			heavy = n
		}
	}
	cases := []struct {
		name string
		fn   func()
	}{
		{"Succ", func() { benchSink = r.Succ(nodes[17], 3).ID() }},
		{"PredID", func() { benchSink = nodes[42].PredID() }},
		{"Consume", func() {
			if k, ok := heavy.Consume(); ok {
				benchSink = k
			}
		}},
	}
	for _, c := range cases {
		if avg := testing.AllocsPerRun(100, c.fn); avg != 0 {
			t.Errorf("%s allocates %.2f times per call; want 0", c.name, avg)
		}
	}
}
