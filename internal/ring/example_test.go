package ring_test

import (
	"fmt"

	"chordbalance/internal/ids"
	"chordbalance/internal/ring"
)

// Example shows the core mechanics the simulator is built on: key
// ownership, a join splitting an arc, and a leave merging one.
func Example() {
	r := ring.New[string]()
	a, _ := r.Insert(ids.FromUint64(100), "a")
	b, _ := r.Insert(ids.FromUint64(200), "b")
	_ = a
	// Keys 150 and 180 fall in (100, 200]: node b owns them.
	if err := r.Seed([]ids.ID{ids.FromUint64(150), ids.FromUint64(180)}); err != nil {
		panic(err)
	}
	fmt.Println("b owns", b.Workload())

	// A node joining at 160 takes the keys in (100, 160].
	c, _ := r.Insert(ids.FromUint64(160), "c")
	fmt.Println("after join: b owns", b.Workload(), "- c owns", c.Workload())

	// When c leaves, its keys fall back to its successor b.
	if err := r.Remove(c); err != nil {
		panic(err)
	}
	fmt.Println("after leave: b owns", b.Workload())
	// Output:
	// b owns 2
	// after join: b owns 1 - c owns 1
	// after leave: b owns 2
}

func ExampleRing_Owner() {
	r := ring.New[int]()
	r.Insert(ids.FromUint64(10), 0)
	r.Insert(ids.FromUint64(20), 0)
	// Key 25 wraps past the highest node to the lowest.
	fmt.Println(r.Owner(ids.FromUint64(15)).ID().Equal(ids.FromUint64(20)))
	fmt.Println(r.Owner(ids.FromUint64(25)).ID().Equal(ids.FromUint64(10)))
	// Output:
	// true
	// true
}
