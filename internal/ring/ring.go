// Package ring implements the "oracle" Chord ring the simulator runs on:
// a totally ordered set of virtual nodes plus exact per-node task-key
// ownership, with the Chord invariant that a node owns the keys in
// (predecessor, self].
//
// The paper assumes nodes maintain perfectly fresh successor/predecessor
// lists through active, aggressive maintenance (§V); this package realizes
// that assumption directly, so joins and leaves move exactly the keys the
// protocol would move, without simulating the message exchange (the
// internal/chord package models the protocol itself and its costs).
//
// Key lists are kept in ring order ascending from the owner's predecessor.
// A join therefore splits a key list at a binary-searched index with zero
// copying (the two halves share the backing array, and owners only ever
// shrink their windows), and a leave concatenates the departing node's
// list onto its successor's.
package ring

import (
	"errors"
	"fmt"
	"sort"

	"chordbalance/internal/ids"
)

// Errors returned by ring mutations.
var (
	ErrOccupied = errors.New("ring: identifier already occupied")
	ErrLastNode = errors.New("ring: cannot remove the last node while keys remain")
	ErrRemoved  = errors.New("ring: node no longer on the ring")
	ErrEmpty    = errors.New("ring: empty ring")
)

// ConsumeMode selects which end of its arc a node consumes keys from.
// The choice is invisible to totals but decides where the *remaining* keys
// sit inside an arc, which in turn decides how much work a later join or
// Sybil split acquires — a first-order effect on the neighbor-injection
// and invitation strategies (see DESIGN.md §3 and the consumption-order
// ablation bench).
type ConsumeMode int

const (
	// ConsumeFront works through the arc in ring order starting at the
	// predecessor edge, so remaining keys cluster toward the node's own
	// ID. This matches the paper's observed behavior (§VI-C: Sybils
	// placed mid-arc often acquire no work) and is the default.
	ConsumeFront ConsumeMode = iota
	// ConsumeBack works from the node's own ID backwards.
	ConsumeBack
	// ConsumeAlternate alternates ends, keeping remaining keys spread
	// across the arc — the least-biased model of a node that executes
	// tasks in arbitrary order.
	ConsumeAlternate
)

// Ring is a set of virtual nodes ordered by identifier, each owning a
// contiguous arc of the key space. T is caller data attached to each node
// (the simulator stores its host bookkeeping there).
type Ring[T any] struct {
	nodes     []*Node[T] // ascending by ID
	totalKeys int
	mode      ConsumeMode
}

// SetConsumeMode selects the consumption order for all nodes on the ring.
func (r *Ring[T]) SetConsumeMode(m ConsumeMode) { r.mode = m }

// ConsumeModeSetting returns the ring's current consumption order.
func (r *Ring[T]) ConsumeModeSetting() ConsumeMode { return r.mode }

// Node is one virtual node on the ring. The zero value is not usable;
// nodes are created only by Ring.Insert.
type Node[T any] struct {
	id   ids.ID
	Data T

	// keys[head:] are the unconsumed task keys this node owns, in ring
	// order ascending from the node's predecessor. The window only ever
	// shrinks (consumption) or is split/replaced (join/leave), so windows
	// from a split may safely share a backing array.
	keys []ids.ID
	head int
	// fromBack alternates the consumption end so that remaining keys stay
	// spread across the arc instead of piling up at one edge, which would
	// bias every later split.
	fromBack bool

	r *Ring[T]
}

// New returns an empty ring.
func New[T any]() *Ring[T] { return &Ring[T]{} }

// Len returns the number of nodes on the ring.
func (r *Ring[T]) Len() int { return len(r.nodes) }

// TotalKeys returns the number of unconsumed keys across all nodes.
func (r *Ring[T]) TotalKeys() int { return r.totalKeys }

// At returns the i-th node in ascending ID order. It panics if i is out of
// range, mirroring slice indexing.
func (r *Ring[T]) At(i int) *Node[T] { return r.nodes[i] }

// Get returns the node with exactly the given ID, if present.
func (r *Ring[T]) Get(id ids.ID) (*Node[T], bool) {
	i := r.searchID(id)
	if i < len(r.nodes) && r.nodes[i].id == id {
		return r.nodes[i], true
	}
	return nil, false
}

// searchID returns the insertion index for id: the first position whose
// node ID is >= id.
func (r *Ring[T]) searchID(id ids.ID) int {
	return sort.Search(len(r.nodes), func(i int) bool {
		return id.Compare(r.nodes[i].id) <= 0
	})
}

// Owner returns the node responsible for key: the first node clockwise at
// or after the key. It returns nil on an empty ring.
func (r *Ring[T]) Owner(key ids.ID) *Node[T] {
	if len(r.nodes) == 0 {
		return nil
	}
	i := r.searchID(key)
	if i == len(r.nodes) {
		i = 0 // wraps past the highest ID to the lowest
	}
	return r.nodes[i]
}

// indexOf locates n on the ring. It panics if n was removed; the caller
// holding a stale node is a logic error worth failing loudly on.
func (r *Ring[T]) indexOf(n *Node[T]) int {
	if n.r != r {
		panic(ErrRemoved)
	}
	i := r.searchID(n.id)
	if i >= len(r.nodes) || r.nodes[i] != n {
		panic(fmt.Sprintf("ring: node %s not found at its index", n.id.Short()))
	}
	return i
}

// Succ returns the k-th successor of n clockwise (k >= 1 typical; k == 0
// returns n itself). Wraps around the ring.
func (r *Ring[T]) Succ(n *Node[T], k int) *Node[T] {
	i := r.indexOf(n)
	m := len(r.nodes)
	return r.nodes[((i+k)%m+m)%m]
}

// Pred returns the k-th predecessor of n counterclockwise.
func (r *Ring[T]) Pred(n *Node[T], k int) *Node[T] {
	return r.Succ(n, -k)
}

// Insert places a new node at id carrying data, splitting the key range of
// the current owner of id. It returns ErrOccupied if a node already has
// that ID.
func (r *Ring[T]) Insert(id ids.ID, data T) (*Node[T], error) {
	i := r.searchID(id)
	if i < len(r.nodes) && r.nodes[i].id == id {
		return nil, ErrOccupied
	}
	n := &Node[T]{id: id, Data: data, r: r}
	if len(r.nodes) == 0 {
		r.nodes = []*Node[T]{n}
		return n, nil
	}
	// The node that currently owns id (n's successor-to-be).
	si := i
	if si == len(r.nodes) {
		si = 0
	}
	succ := r.nodes[si]
	// n's predecessor is the node before the insertion point.
	pred := r.nodes[((i-1)%len(r.nodes)+len(r.nodes))%len(r.nodes)]

	// Split succ's keys: n takes those in (pred, id], i.e. the active
	// prefix whose ring distance from pred.id is <= dist(pred, id).
	active := succ.keys[succ.head:]
	limit := pred.id.Distance(id)
	cut := sort.Search(len(active), func(j int) bool {
		return pred.id.Distance(active[j]).Compare(limit) > 0
	})
	n.keys = active[:cut]
	succ.keys = active[cut:]
	succ.head = 0

	// Splice into the ordered slice.
	r.nodes = append(r.nodes, nil)
	copy(r.nodes[i+1:], r.nodes[i:])
	r.nodes[i] = n
	return n, nil
}

// Remove takes n off the ring, handing its unconsumed keys to its
// successor (Chord's failure/departure behavior under active backup).
// Removing the final node is only allowed once no keys remain.
func (r *Ring[T]) Remove(n *Node[T]) error {
	if n.r != r {
		return ErrRemoved
	}
	i := r.indexOf(n)
	if len(r.nodes) == 1 {
		if n.Workload() > 0 {
			return ErrLastNode
		}
		r.nodes = r.nodes[:0]
		n.r = nil
		return nil
	}
	succ := r.nodes[(i+1)%len(r.nodes)]
	if w := n.Workload(); w > 0 {
		// n's keys precede succ's in ring order from n's predecessor.
		merged := make([]ids.ID, 0, w+succ.Workload())
		merged = append(merged, n.keys[n.head:]...)
		merged = append(merged, succ.keys[succ.head:]...)
		succ.keys = merged
		succ.head = 0
	}
	copy(r.nodes[i:], r.nodes[i+1:])
	r.nodes = r.nodes[:len(r.nodes)-1]
	n.r = nil
	n.keys = nil
	return nil
}

// Seed distributes task keys to their owners. It may be called on a ring
// whose nodes already hold keys; new keys are merged in ring order. It
// returns ErrEmpty if the ring has no nodes.
func (r *Ring[T]) Seed(taskKeys []ids.ID) error {
	if len(r.nodes) == 0 {
		return ErrEmpty
	}
	buckets := make([][]ids.ID, len(r.nodes))
	for _, k := range taskKeys {
		i := r.searchID(k)
		if i == len(r.nodes) {
			i = 0
		}
		buckets[i] = append(buckets[i], k)
	}
	for i, b := range buckets {
		if len(b) == 0 {
			continue
		}
		n := r.nodes[i]
		pred := r.nodes[((i-1)%len(r.nodes)+len(r.nodes))%len(r.nodes)]
		all := append(b, n.keys[n.head:]...)
		sort.Slice(all, func(a, b int) bool {
			return pred.id.Distance(all[a]).Compare(pred.id.Distance(all[b])) < 0
		})
		n.keys = all
		n.head = 0
	}
	r.totalKeys += len(taskKeys)
	return nil
}

// Workloads returns every node's residual key count in ring order.
func (r *Ring[T]) Workloads() []int {
	out := make([]int, len(r.nodes))
	for i, n := range r.nodes {
		out[i] = n.Workload()
	}
	return out
}

// CheckInvariants verifies structural invariants; tests and the simulator's
// debug mode call it. It returns a descriptive error on the first
// violation found.
func (r *Ring[T]) CheckInvariants() error {
	total := 0
	for i, n := range r.nodes {
		if i > 0 && !r.nodes[i-1].id.Less(n.id) {
			return fmt.Errorf("ring: nodes out of order at %d", i)
		}
		if n.r != r {
			return fmt.Errorf("ring: node %s has stale ring pointer", n.id.Short())
		}
		pred := r.nodes[((i-1)%len(r.nodes)+len(r.nodes))%len(r.nodes)]
		var prev ids.ID
		for j, k := range n.keys[n.head:] {
			if len(r.nodes) > 1 && !ids.BetweenRightIncl(k, pred.id, n.id) {
				return fmt.Errorf("ring: node %s holds foreign key %s", n.id.Short(), k.Short())
			}
			d := pred.id.Distance(k)
			if j > 0 && d.Compare(prev) < 0 {
				return fmt.Errorf("ring: node %s keys out of ring order", n.id.Short())
			}
			prev = d
		}
		total += n.Workload()
	}
	if total != r.totalKeys {
		return fmt.Errorf("ring: key count drift: counted %d, tracked %d", total, r.totalKeys)
	}
	return nil
}

// ID returns the node's ring identifier.
func (n *Node[T]) ID() ids.ID { return n.id }

// OnRing reports whether the node is still part of its ring.
func (n *Node[T]) OnRing() bool { return n.r != nil }

// Workload returns the number of unconsumed keys the node owns.
func (n *Node[T]) Workload() int { return len(n.keys) - n.head }

// PredID returns the node's current predecessor ID (its own ID when it is
// alone on the ring). The arc (PredID, ID] is the node's responsibility.
func (n *Node[T]) PredID() ids.ID {
	i := n.r.indexOf(n)
	m := len(n.r.nodes)
	return n.r.nodes[((i-1)%m+m)%m].id
}

// Keys returns a copy of the node's unconsumed keys in ring order.
func (n *Node[T]) Keys() []ids.ID {
	return append([]ids.ID(nil), n.keys[n.head:]...)
}

// Consume removes and returns one task key from the end selected by the
// ring's ConsumeMode. ok is false when the node has no work.
func (n *Node[T]) Consume() (key ids.ID, ok bool) {
	if n.Workload() == 0 {
		return ids.Zero, false
	}
	back := false
	switch n.r.mode {
	case ConsumeBack:
		back = true
	case ConsumeAlternate:
		back = n.fromBack
		n.fromBack = !n.fromBack
	}
	if back {
		key = n.keys[len(n.keys)-1]
		n.keys = n.keys[:len(n.keys)-1]
	} else {
		key = n.keys[n.head]
		n.head++
	}
	n.r.totalKeys--
	return key, true
}

// SplitKey returns the identifier that splits the node's *remaining* keys
// exactly in half: a new node inserted at the returned ID takes over
// ceil(w/2) keys. ok is false when the node holds fewer than two keys.
// This powers the paper's §VII extension where nodes may choose Sybil IDs
// freely instead of estimating by arc size.
func (n *Node[T]) SplitKey() (id ids.ID, ok bool) {
	w := n.Workload()
	if w < 2 {
		return ids.Zero, false
	}
	// Keys are in ring order from the predecessor; the key at the median
	// position is the last key the new (earlier) node would own.
	return n.keys[n.head+(w-1)/2], true
}

// ConsumeN consumes up to max keys and returns how many were consumed.
func (n *Node[T]) ConsumeN(max int) int {
	done := 0
	for done < max {
		if _, ok := n.Consume(); !ok {
			break
		}
		done++
	}
	return done
}
