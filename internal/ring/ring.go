// Package ring implements the "oracle" Chord ring the simulator runs on:
// a totally ordered set of virtual nodes plus exact per-node task-key
// ownership, with the Chord invariant that a node owns the keys in
// (predecessor, self].
//
// The paper assumes nodes maintain perfectly fresh successor/predecessor
// lists through active, aggressive maintenance (§V); this package realizes
// that assumption directly, so joins and leaves move exactly the keys the
// protocol would move, without simulating the message exchange (the
// internal/chord package models the protocol itself and its costs).
//
// Key lists are kept in ring order ascending from the owner's predecessor.
// A join therefore splits a key list at a binary-searched index with zero
// copying (the two halves share the backing array, and owners only ever
// shrink their windows), and a leave concatenates the departing node's
// list onto its successor's.
//
// Hot-path performance (docs/PERFORMANCE.md): every node carries a
// self-repairing index hint, so Succ/Pred/PredID are O(1) between
// topology changes and never worse than one binary search after one;
// searches are inlined (no sort.Search closures, zero allocations); Seed
// sorts each incoming batch by identifier once (radix-assisted for large
// batches), hands every owner its contiguous segment — one binary search
// per distinct owner, not per key — and merges it with the node's
// residual keys in a single two-run pass; Remove reuses the successor's
// consumed front (or hands the whole window over) instead of allocating
// a merged slice whenever it can; and the ring order itself is an array
// of 4-byte slot indices into a stable node arena, so the splice a join
// or leave performs is a barrier-free memmove of half the bytes a
// pointer slice would move.
package ring

import (
	"errors"
	"fmt"
	"sort"

	"chordbalance/internal/ids"
)

// Errors returned by ring mutations.
var (
	ErrOccupied = errors.New("ring: identifier already occupied")
	ErrLastNode = errors.New("ring: cannot remove the last node while keys remain")
	ErrRemoved  = errors.New("ring: node no longer on the ring")
	ErrEmpty    = errors.New("ring: empty ring")
)

// ConsumeMode selects which end of its arc a node consumes keys from.
// The choice is invisible to totals but decides where the *remaining* keys
// sit inside an arc, which in turn decides how much work a later join or
// Sybil split acquires — a first-order effect on the neighbor-injection
// and invitation strategies (see DESIGN.md §3 and the consumption-order
// ablation bench).
type ConsumeMode int

const (
	// ConsumeFront works through the arc in ring order starting at the
	// predecessor edge, so remaining keys cluster toward the node's own
	// ID. This matches the paper's observed behavior (§VI-C: Sybils
	// placed mid-arc often acquire no work) and is the default.
	ConsumeFront ConsumeMode = iota
	// ConsumeBack works from the node's own ID backwards.
	ConsumeBack
	// ConsumeAlternate alternates ends, keeping remaining keys spread
	// across the arc — the least-biased model of a node that executes
	// tasks in arbitrary order.
	ConsumeAlternate
)

// Ring is a set of virtual nodes ordered by identifier, each owning a
// contiguous arc of the key space. T is caller data attached to each node
// (the simulator stores its host bookkeeping there).
type Ring[T any] struct {
	// The ring order lives in order: order[i] is the slot (index into the
	// stable slots arena) of the i-th node ascending by ID. Keeping the
	// spliced array as 4-byte integers instead of pointers makes every
	// join/leave splice a plain memmove of half the bytes with no GC
	// write barriers — under heavy churn on large rings that splice is
	// the single largest per-event cost. slots never moves an entry;
	// freed slots are recycled LIFO through free.
	slots     []*Node[T]
	free      []int32
	order     []int32
	totalKeys int
	mode      ConsumeMode

	// seedScratch holds the sorted copy of each Seed batch and is reused
	// across calls so streamed task arrivals do not allocate a routing
	// buffer every tick. wrapScratch assembles the wrapping node's
	// tail+head run when both segments are non-empty.
	seedScratch []ids.ID
	wrapScratch []ids.ID
	// radixCount and radixOut serve sortIDs's bucket pass; allocated on
	// the first large batch and reused afterwards.
	radixCount []int
	radixOut   []ids.ID
}

// radixMin is the batch size above which sortIDs switches from
// comparison sort to the two-byte radix scatter. Below it, the fixed
// cost of clearing 64Ki bucket counters outweighs the comparison
// savings (streamed per-tick seed batches stay under this).
const radixMin = 4096

// sortIDs sorts s ascending by identifier and returns the sorted slice
// (possibly a different backing array, with s recycled as the next
// scatter buffer). Large batches take an MSD radix pass on the first
// two ID bytes — uniform SHA-1 keys spread ~evenly over 64Ki buckets —
// followed by tiny per-bucket sorts, replacing O(k log k) 20-byte
// comparisons with one O(k) scatter. The result is the identical total
// order a pure comparison sort yields; equal keys are identical bytes,
// so bucket-internal tie order is unobservable.
func (r *Ring[T]) sortIDs(s []ids.ID) []ids.ID {
	if len(s) < radixMin {
		sort.Sort(idKeys(s))
		return s
	}
	if r.radixCount == nil {
		r.radixCount = make([]int, 1<<16)
	}
	count := r.radixCount
	for i := range count {
		count[i] = 0
	}
	for _, k := range s {
		count[int(k[0])<<8|int(k[1])]++
	}
	sum := 0
	for i := range count {
		c := count[i]
		count[i] = sum
		sum += c
	}
	out := r.radixOut
	if cap(out) < len(s) {
		out = make([]ids.ID, len(s))
	} else {
		out = out[:len(s)]
	}
	for _, k := range s {
		b := int(k[0])<<8 | int(k[1])
		out[count[b]] = k
		count[b]++
	}
	// count[b] is now the end offset of bucket b.
	start := 0
	for b := 0; b < 1<<16; b++ {
		end := count[b]
		if end-start > 1 {
			sortBucket(out[start:end])
		}
		start = end
	}
	r.radixOut = s[:0] // ping-pong the buffers
	return out
}

// sortBucket orders one radix bucket. Buckets are tiny for uniform keys
// (insertion sort); skewed workloads (Zipf duplicates) produce large
// buckets of mostly-identical keys, for which insertion sort is linear,
// but genuinely large mixed buckets fall back to the library sort.
func sortBucket(b []ids.ID) {
	if len(b) > 48 {
		sort.Sort(idKeys(b))
		return
	}
	for i := 1; i < len(b); i++ {
		k := b[i]
		j := i - 1
		for j >= 0 && k.Less(b[j]) {
			b[j+1] = b[j]
			j--
		}
		b[j+1] = k
	}
}

// SetConsumeMode selects the consumption order for all nodes on the ring.
func (r *Ring[T]) SetConsumeMode(m ConsumeMode) { r.mode = m }

// ConsumeModeSetting returns the ring's current consumption order.
func (r *Ring[T]) ConsumeModeSetting() ConsumeMode { return r.mode }

// Node is one virtual node on the ring. The zero value is not usable;
// nodes are created only by Ring.Insert and Ring.Build.
type Node[T any] struct {
	id   ids.ID
	Data T

	// keys[head:] are the unconsumed task keys this node owns, in ring
	// order ascending from the node's predecessor. The window only ever
	// shrinks (consumption) or is split/replaced (join/leave), so windows
	// from a split may safely share a backing array.
	keys []ids.ID
	head int
	// fromBack alternates the consumption end so that remaining keys stay
	// spread across the arc instead of piling up at one edge, which would
	// bias every later split.
	fromBack bool

	// idx is a self-repairing position hint: when r.order[idx] == slot it
	// is exact and indexOf is O(1). Insert/Remove shift positions without
	// eagerly rewriting every hint to their right (that would make each
	// splice strictly more expensive than its memmove); a stale hint is
	// detected by the identity check and repaired with one binary search
	// on first use. See docs/PERFORMANCE.md for the invariant. slot is
	// the node's fixed position in the ring's arena, assigned at insert
	// and never moved while the node is on the ring.
	idx  int
	slot int32

	r *Ring[T]
}

// New returns an empty ring.
func New[T any]() *Ring[T] { return &Ring[T]{} }

// Len returns the number of nodes on the ring.
func (r *Ring[T]) Len() int { return len(r.order) }

// TotalKeys returns the number of unconsumed keys across all nodes.
func (r *Ring[T]) TotalKeys() int { return r.totalKeys }

// at returns the i-th node in ascending ID order without bounds niceties;
// it is the internal hot accessor behind At/Succ/Seed and inlines to two
// loads.
func (r *Ring[T]) at(i int) *Node[T] { return r.slots[r.order[i]] }

// At returns the i-th node in ascending ID order. It panics if i is out of
// range, mirroring slice indexing.
func (r *Ring[T]) At(i int) *Node[T] { return r.at(i) }

// Get returns the node with exactly the given ID, if present.
func (r *Ring[T]) Get(id ids.ID) (*Node[T], bool) {
	i := r.searchID(id)
	if i < len(r.order) && r.at(i).id == id {
		return r.at(i), true
	}
	return nil, false
}

// searchID returns the insertion index for id: the first position whose
// node ID is >= id. The binary search is inlined (rather than using
// sort.Search) so the hot lookup paths stay allocation- and closure-free.
func (r *Ring[T]) searchID(id ids.ID) int {
	lo, hi := 0, len(r.order)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.at(mid).id.Less(id) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Owner returns the node responsible for key: the first node clockwise at
// or after the key. It returns nil on an empty ring.
func (r *Ring[T]) Owner(key ids.ID) *Node[T] {
	if len(r.order) == 0 {
		return nil
	}
	i := r.searchID(key)
	if i == len(r.order) {
		i = 0 // wraps past the highest ID to the lowest
	}
	return r.at(i)
}

// indexOf locates n on the ring: O(1) when n's hint is exact, one binary
// search (which also repairs the hint) when a splice has shifted it. It
// panics if n was removed; the caller holding a stale node is a logic
// error worth failing loudly on.
func (r *Ring[T]) indexOf(n *Node[T]) int {
	if n.r != r {
		panic(ErrRemoved)
	}
	if i := n.idx; i < len(r.order) && r.order[i] == n.slot {
		return i
	}
	i := r.searchID(n.id)
	if i >= len(r.order) || r.order[i] != n.slot {
		panic(fmt.Sprintf("ring: node %s not found at its index", n.id.Short()))
	}
	n.idx = i
	return i
}

// Succ returns the k-th successor of n clockwise (k >= 1 typical; k == 0
// returns n itself). Wraps around the ring.
func (r *Ring[T]) Succ(n *Node[T], k int) *Node[T] {
	i := r.indexOf(n)
	m := len(r.order)
	return r.at(((i + k) % m + m) % m)
}

// Pred returns the k-th predecessor of n counterclockwise.
func (r *Ring[T]) Pred(n *Node[T], k int) *Node[T] {
	return r.Succ(n, -k)
}

// Insert places a new node at id carrying data, splitting the key range of
// the current owner of id. It returns ErrOccupied if a node already has
// that ID.
func (r *Ring[T]) Insert(id ids.ID, data T) (*Node[T], error) {
	i := r.searchID(id)
	if i < len(r.order) && r.at(i).id == id {
		return nil, ErrOccupied
	}
	n := &Node[T]{id: id, Data: data, r: r}
	n.slot = r.alloc(n)
	if len(r.order) == 0 {
		r.order = append(r.order, n.slot)
		n.idx = 0
		return n, nil
	}
	// The node that currently owns id (n's successor-to-be).
	si := i
	if si == len(r.order) {
		si = 0
	}
	succ := r.at(si)
	// n's predecessor is the node before the insertion point.
	pred := r.at(((i - 1) % len(r.order) + len(r.order)) % len(r.order))

	// Split succ's keys: n takes those in (pred, id], i.e. the active
	// prefix whose ring distance from pred.id is <= dist(pred, id).
	active := succ.keys[succ.head:]
	limit := pred.id.Distance(id)
	lo, hi := 0, len(active)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pred.id.Distance(active[mid]).Compare(limit) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	cut := lo
	n.keys = active[:cut]
	succ.keys = active[cut:]
	succ.head = 0

	// Splice into the order array. Hints of the shifted nodes go stale
	// and self-repair on their next indexOf; the copy moves plain int32s,
	// so there is no write-barrier traffic.
	r.order = append(r.order, 0)
	copy(r.order[i+1:], r.order[i:])
	r.order[i] = n.slot
	n.idx = i
	return n, nil
}

// alloc places n in the slots arena, recycling a freed slot when one is
// available, and returns its slot index.
func (r *Ring[T]) alloc(n *Node[T]) int32 {
	if k := len(r.free); k > 0 {
		s := r.free[k-1]
		r.free = r.free[:k-1]
		r.slots[s] = n
		return s
	}
	r.slots = append(r.slots, n)
	return int32(len(r.slots) - 1)
}

// Build populates an empty ring with len(nodeIDs) nodes in one pass:
// O(n log n) total, versus O(n^2) for n sequential Inserts. data[i] is
// attached to the node at nodeIDs[i], and the returned slice is in input
// order (not ring order). The ring must be empty and the IDs unique; no
// keys move because there are none yet — callers seed keys afterwards.
func (r *Ring[T]) Build(nodeIDs []ids.ID, data []T) ([]*Node[T], error) {
	if len(r.order) != 0 {
		return nil, errors.New("ring: Build requires an empty ring")
	}
	if len(nodeIDs) != len(data) {
		return nil, fmt.Errorf("ring: Build got %d ids but %d data values", len(nodeIDs), len(data))
	}
	out := make([]*Node[T], len(nodeIDs))
	sorted := make([]*Node[T], len(nodeIDs))
	for i := range nodeIDs {
		n := &Node[T]{id: nodeIDs[i], Data: data[i], r: r}
		out[i] = n
		sorted[i] = n
	}
	sort.Sort(nodesByID[T](sorted))
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].id == sorted[i].id {
			for _, m := range out {
				m.r = nil
			}
			return nil, ErrOccupied
		}
	}
	r.slots = sorted
	r.free = r.free[:0]
	r.order = make([]int32, len(sorted))
	for i, n := range sorted {
		r.order[i] = int32(i)
		n.slot = int32(i)
		n.idx = i
	}
	return out, nil
}

// nodesByID sorts nodes ascending by identifier.
type nodesByID[T any] []*Node[T]

func (s nodesByID[T]) Len() int           { return len(s) }
func (s nodesByID[T]) Less(i, j int) bool { return s[i].id.Less(s[j].id) }
func (s nodesByID[T]) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

// Remove takes n off the ring, handing its unconsumed keys to its
// successor (Chord's failure/departure behavior under active backup).
// Removing the final node is only allowed once no keys remain.
func (r *Ring[T]) Remove(n *Node[T]) error {
	if n.r != r {
		return ErrRemoved
	}
	i := r.indexOf(n)
	if len(r.order) == 1 {
		if n.Workload() > 0 {
			return ErrLastNode
		}
		r.order = r.order[:0]
		r.release(n)
		return nil
	}
	succ := r.at((i + 1) % len(r.order))
	if w := n.Workload(); w > 0 {
		// n's keys precede succ's in ring order from n's predecessor.
		switch sw := succ.Workload(); {
		case sw == 0:
			// The successor is idle: hand the whole window over.
			succ.keys = n.keys
			succ.head = n.head
		case w <= succ.head:
			// The successor has consumed at least w keys off its front;
			// those slots belong exclusively to succ's window and are
			// dead, so n's keys slide in without allocating. (Windows
			// share backing arrays only via Insert splits, which keep
			// them disjoint; copy is memmove-safe regardless.)
			copy(succ.keys[succ.head-w:succ.head], n.keys[n.head:])
			succ.head -= w
		default:
			merged := make([]ids.ID, 0, w+sw)
			merged = append(merged, n.keys[n.head:]...)
			merged = append(merged, succ.keys[succ.head:]...)
			succ.keys = merged
			succ.head = 0
		}
	}
	copy(r.order[i:], r.order[i+1:])
	r.order = r.order[:len(r.order)-1]
	r.release(n)
	n.keys = nil
	return nil
}

// release detaches n from the ring and returns its arena slot to the
// free list, dropping the arena's reference so the node can be
// collected.
func (r *Ring[T]) release(n *Node[T]) {
	r.slots[n.slot] = nil
	r.free = append(r.free, n.slot)
	n.r = nil
}

// idKeys implements sort.Interface over raw identifiers without
// closures; ties are identical 20-byte values, so the unstable sort
// cannot produce an observable reordering.
type idKeys []ids.ID

func (s idKeys) Len() int           { return len(s) }
func (s idKeys) Less(i, j int) bool { return s[i].Less(s[j]) }
func (s idKeys) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

// Seed distributes task keys to their owners. It may be called on a ring
// whose nodes already hold keys; new keys are merged in ring order. It
// returns ErrEmpty if the ring has no nodes.
//
// The batch is sorted by absolute identifier once; every owner's bucket
// is then a contiguous segment, located with one binary search per
// *distinct* owner instead of one per key. The wrapping node (the first
// on the ring) owns two segments — keys above the last node and keys at
// or below itself — which concatenate, tail first, into exactly its
// ring-distance order from its predecessor. With a single node the two
// segments compose to the whole circle, so no special case is needed.
func (r *Ring[T]) Seed(taskKeys []ids.ID) error {
	if len(r.order) == 0 {
		return ErrEmpty
	}
	sorted := r.seedScratch[:0]
	sorted = append(sorted, taskKeys...)
	sorted = r.sortIDs(sorted)
	m := len(r.order)
	first, last := r.at(0), r.at(m-1)
	// headEnd: first sorted key strictly above the first node's ID.
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if first.id.Less(sorted[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	headEnd := lo
	// tailStart: first sorted key strictly above the last node's ID.
	lo, hi = headEnd, len(sorted)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if last.id.Less(sorted[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	tailStart := lo
	// Middle segments: each run of keys in (nodes[i-1], nodes[i]].
	for lo := headEnd; lo < tailStart; {
		i := r.searchID(sorted[lo]) // in [1, m-1]: key > first.id, <= last.id
		n := r.at(i)
		hi := lo + 1
		for hi < tailStart && !n.id.Less(sorted[hi]) {
			hi++
		}
		n.mergeSeed(r.at(i-1).id, sorted[lo:hi])
		lo = hi
	}
	// The wrapping node: tail segment (keys > last) precedes the head
	// segment (keys <= first) in ring order from its predecessor.
	if headEnd > 0 || tailStart < len(sorted) {
		run := sorted[tailStart:]
		switch {
		case len(run) == 0:
			run = sorted[:headEnd]
		case headEnd > 0:
			comb := append(r.wrapScratch[:0], run...)
			comb = append(comb, sorted[:headEnd]...)
			r.wrapScratch = comb
			run = comb
		}
		first.mergeSeed(last.id, run)
	}
	r.seedScratch = sorted[:0] // keep the routing buffer for the next Seed
	r.totalKeys += len(taskKeys)
	return nil
}

// mergeSeed merges the incoming run (ascending in ring distance from
// predID) with the node's residual keys (same order by invariant) into
// a fresh exactly-sized window.
func (n *Node[T]) mergeSeed(predID ids.ID, run []ids.ID) {
	res := n.keys[n.head:]
	if len(res) == 0 {
		// Fast path: no residual keys — the run is the new window. Copy:
		// run aliases a reusable scratch buffer.
		out := make([]ids.ID, len(run))
		copy(out, run)
		n.keys = out
		n.head = 0
		return
	}
	out := make([]ids.ID, 0, len(run)+len(res))
	i, j := 0, 0
	for i < len(run) && j < len(res) {
		if predID.Distance(run[i]).Compare(predID.Distance(res[j])) <= 0 {
			out = append(out, run[i])
			i++
		} else {
			out = append(out, res[j])
			j++
		}
	}
	out = append(out, run[i:]...)
	out = append(out, res[j:]...)
	n.keys = out
	n.head = 0
}

// Workloads returns every node's residual key count in ring order.
func (r *Ring[T]) Workloads() []int {
	out := make([]int, len(r.order))
	for i := range out {
		out[i] = r.at(i).Workload()
	}
	return out
}

// CheckInvariants verifies structural invariants; tests and the simulator's
// debug mode call it. It returns a descriptive error on the first
// violation found.
func (r *Ring[T]) CheckInvariants() error {
	total := 0
	for i := range r.order {
		n := r.at(i)
		if n == nil {
			return fmt.Errorf("ring: order entry %d points at a freed slot", i)
		}
		if int(n.slot) != int(r.order[i]) {
			return fmt.Errorf("ring: node %s slot field disagrees with order", n.id.Short())
		}
		if i > 0 && !r.at(i-1).id.Less(n.id) {
			return fmt.Errorf("ring: nodes out of order at %d", i)
		}
		if n.r != r {
			return fmt.Errorf("ring: node %s has stale ring pointer", n.id.Short())
		}
		if r.indexOf(n) != i {
			return fmt.Errorf("ring: node %s index hint does not repair to %d", n.id.Short(), i)
		}
		pred := r.at(((i - 1) % len(r.order) + len(r.order)) % len(r.order))
		var prev ids.ID
		for j, k := range n.keys[n.head:] {
			if len(r.order) > 1 && !ids.BetweenRightIncl(k, pred.id, n.id) {
				return fmt.Errorf("ring: node %s holds foreign key %s", n.id.Short(), k.Short())
			}
			d := pred.id.Distance(k)
			if j > 0 && d.Compare(prev) < 0 {
				return fmt.Errorf("ring: node %s keys out of ring order", n.id.Short())
			}
			prev = d
		}
		total += n.Workload()
	}
	if total != r.totalKeys {
		return fmt.Errorf("ring: key count drift: counted %d, tracked %d", total, r.totalKeys)
	}
	for _, s := range r.free {
		if r.slots[s] != nil {
			return fmt.Errorf("ring: free slot %d still holds a node", s)
		}
	}
	if live := len(r.slots) - len(r.free); live != len(r.order) {
		return fmt.Errorf("ring: arena holds %d live nodes but order lists %d", live, len(r.order))
	}
	return nil
}

// ID returns the node's ring identifier.
func (n *Node[T]) ID() ids.ID { return n.id }

// OnRing reports whether the node is still part of its ring.
func (n *Node[T]) OnRing() bool { return n.r != nil }

// Workload returns the number of unconsumed keys the node owns.
func (n *Node[T]) Workload() int { return len(n.keys) - n.head }

// PredID returns the node's current predecessor ID (its own ID when it is
// alone on the ring). The arc (PredID, ID] is the node's responsibility.
func (n *Node[T]) PredID() ids.ID {
	i := n.r.indexOf(n)
	m := len(n.r.order)
	return n.r.at(((i - 1) % m + m) % m).id
}

// Keys returns a copy of the node's unconsumed keys in ring order.
func (n *Node[T]) Keys() []ids.ID {
	return append([]ids.ID(nil), n.keys[n.head:]...)
}

// Consume removes and returns one task key from the end selected by the
// ring's ConsumeMode. ok is false when the node has no work.
func (n *Node[T]) Consume() (key ids.ID, ok bool) {
	if n.Workload() == 0 {
		return ids.Zero, false
	}
	back := false
	switch n.r.mode {
	case ConsumeBack:
		back = true
	case ConsumeAlternate:
		back = n.fromBack
		n.fromBack = !n.fromBack
	}
	if back {
		key = n.keys[len(n.keys)-1]
		n.keys = n.keys[:len(n.keys)-1]
	} else {
		key = n.keys[n.head]
		n.head++
	}
	n.r.totalKeys--
	return key, true
}

// SplitKey returns the identifier that splits the node's *remaining* keys
// exactly in half: a new node inserted at the returned ID takes over
// ceil(w/2) keys. ok is false when the node holds fewer than two keys.
// This powers the paper's §VII extension where nodes may choose Sybil IDs
// freely instead of estimating by arc size.
func (n *Node[T]) SplitKey() (id ids.ID, ok bool) {
	w := n.Workload()
	if w < 2 {
		return ids.Zero, false
	}
	// Keys are in ring order from the predecessor; the key at the median
	// position is the last key the new (earlier) node would own.
	return n.keys[n.head+(w-1)/2], true
}

// ConsumeN consumes up to max keys and returns how many were consumed.
// It is the batched form of Consume: the whole batch is a constant-time
// window adjustment, with the exact end state (head, tail, alternation
// parity, total-key count) the equivalent sequence of Consume calls
// would leave.
func (n *Node[T]) ConsumeN(max int) int {
	if w := n.Workload(); max > w {
		max = w
	}
	if max <= 0 {
		return 0
	}
	switch n.r.mode {
	case ConsumeBack:
		n.keys = n.keys[:len(n.keys)-max]
	case ConsumeAlternate:
		// Alternating draws split the batch across both ends, with the
		// current side taking the extra key when max is odd. Front and
		// back removals commute, so applying them as two bulk moves
		// leaves the identical surviving window.
		first := (max + 1) / 2
		second := max / 2
		front, back := first, second
		if n.fromBack {
			front, back = second, first
		}
		n.head += front
		n.keys = n.keys[:len(n.keys)-back]
		if max%2 == 1 {
			n.fromBack = !n.fromBack
		}
	default: // ConsumeFront
		n.head += max
	}
	n.r.totalKeys -= max
	return max
}
