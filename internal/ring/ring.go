// Package ring implements the "oracle" Chord ring the simulator runs on:
// a totally ordered set of virtual nodes plus exact per-node task-key
// ownership, with the Chord invariant that a node owns the keys in
// (predecessor, self].
//
// The paper assumes nodes maintain perfectly fresh successor/predecessor
// lists through active, aggressive maintenance (§V); this package realizes
// that assumption directly, so joins and leaves move exactly the keys the
// protocol would move, without simulating the message exchange (the
// internal/chord package models the protocol itself and its costs).
//
// Key lists are kept in ring order ascending from the owner's predecessor.
// A join therefore splits a key list at a binary-searched index with zero
// copying (the two halves share the backing array, and owners only ever
// shrink their windows), and a leave concatenates the departing node's
// list onto its successor's.
//
// Hot-path performance (docs/PERFORMANCE.md): every node carries a
// self-repairing position hint, so Succ/Pred/PredID are O(1) between
// topology changes and never worse than one segment-local binary search
// after one; searches are inlined (no sort.Search closures, zero
// allocations); Seed sorts each incoming batch by identifier once
// (radix-assisted for large batches), hands every owner its contiguous
// segment — one binary search per distinct owner, not per key — and
// merges it with the node's residual keys in a single two-run pass;
// Remove reuses the successor's consumed front (or hands the whole
// window over) instead of allocating a merged slice whenever it can.
//
// The ring order itself is stored as *segments* of 4-byte slot indices
// into a stable node arena. Build picks a power-of-two segment count
// sized to the population (~512 nodes per segment, a single segment for
// small rings) and routes each identifier to the segment addressed by
// its top 16 bits, so segment order concatenated is exactly ascending ID
// order. A join or leave then splices one segment — an O(n/S) barrier-
// free memmove instead of the O(n) splice a flat order array pays, which
// is the difference between quadratic and near-linear total churn cost
// on 100k–1M-node rings. Segments double as the shard-aware iteration
// surface (Arcs) the parallel tick engine in internal/sim scans.
package ring

import (
	"errors"
	"fmt"
	"sort"

	"chordbalance/internal/ids"
)

// Errors returned by ring mutations.
var (
	ErrOccupied = errors.New("ring: identifier already occupied")
	ErrLastNode = errors.New("ring: cannot remove the last node while keys remain")
	ErrRemoved  = errors.New("ring: node no longer on the ring")
	ErrEmpty    = errors.New("ring: empty ring")
)

// ConsumeMode selects which end of its arc a node consumes keys from.
// The choice is invisible to totals but decides where the *remaining* keys
// sit inside an arc, which in turn decides how much work a later join or
// Sybil split acquires — a first-order effect on the neighbor-injection
// and invitation strategies (see DESIGN.md §3 and the consumption-order
// ablation bench).
type ConsumeMode int

const (
	// ConsumeFront works through the arc in ring order starting at the
	// predecessor edge, so remaining keys cluster toward the node's own
	// ID. This matches the paper's observed behavior (§VI-C: Sybils
	// placed mid-arc often acquire no work) and is the default.
	ConsumeFront ConsumeMode = iota
	// ConsumeBack works from the node's own ID backwards.
	ConsumeBack
	// ConsumeAlternate alternates ends, keeping remaining keys spread
	// across the arc — the least-biased model of a node that executes
	// tasks in arbitrary order.
	ConsumeAlternate
)

// Segment geometry: Build aims for about segTarget nodes per segment and
// never exceeds 1<<segMaxBits segments (the segment address is the ID's
// top 16 bits right-shifted, so 12 bits leaves at least a 4-bit shift).
const (
	segTarget  = 512
	segMaxBits = 12
)

// Ring is a set of virtual nodes ordered by identifier, each owning a
// contiguous arc of the key space. T is caller data attached to each node
// (the simulator stores its host bookkeeping there).
type Ring[T any] struct {
	// The ring order lives in segs: segment s holds, ascending by ID, the
	// slots (indices into the stable slots arena) of every node whose
	// identifier's top 16 bits shifted right by segShift equal s. That
	// address is monotone in the ID, so iterating segments in index order
	// visits nodes in exactly ascending ID order. Keeping spliced arrays
	// as 4-byte integers instead of pointers makes every join/leave
	// splice a plain memmove with no GC write barriers, and segmenting
	// bounds each splice at one segment instead of the whole ring.
	// slots never moves an entry; freed slots are recycled LIFO through
	// free.
	slots    []*Node[T]
	free     []int32
	segs     [][]int32
	segShift uint
	count    int

	totalKeys int
	mode      ConsumeMode

	// seedScratch holds the sorted copy of each Seed batch and is reused
	// across calls so streamed task arrivals do not allocate a routing
	// buffer every tick. wrapScratch assembles the wrapping node's
	// tail+head run when both segments are non-empty.
	seedScratch []ids.ID
	wrapScratch []ids.ID
	// radixCount and radixOut serve sortIDs's bucket pass; allocated on
	// the first large batch and reused afterwards.
	radixCount []int
	radixOut   []ids.ID
}

// radixMin is the batch size above which sortIDs switches from
// comparison sort to the two-byte radix scatter. Below it, the fixed
// cost of clearing 64Ki bucket counters outweighs the comparison
// savings (streamed per-tick seed batches stay under this).
const radixMin = 4096

// sortIDs sorts s ascending by identifier and returns the sorted slice
// (possibly a different backing array, with s recycled as the next
// scatter buffer). Large batches take an MSD radix pass on the first
// two ID bytes — uniform SHA-1 keys spread ~evenly over 64Ki buckets —
// followed by tiny per-bucket sorts, replacing O(k log k) 20-byte
// comparisons with one O(k) scatter. The result is the identical total
// order a pure comparison sort yields; equal keys are identical bytes,
// so bucket-internal tie order is unobservable.
func (r *Ring[T]) sortIDs(s []ids.ID) []ids.ID {
	if len(s) < radixMin {
		sort.Sort(idKeys(s))
		return s
	}
	if r.radixCount == nil {
		r.radixCount = make([]int, 1<<16)
	}
	count := r.radixCount
	for i := range count {
		count[i] = 0
	}
	for _, k := range s {
		count[int(k[0])<<8|int(k[1])]++
	}
	sum := 0
	for i := range count {
		c := count[i]
		count[i] = sum
		sum += c
	}
	out := r.radixOut
	if cap(out) < len(s) {
		out = make([]ids.ID, len(s))
	} else {
		out = out[:len(s)]
	}
	for _, k := range s {
		b := int(k[0])<<8 | int(k[1])
		out[count[b]] = k
		count[b]++
	}
	// count[b] is now the end offset of bucket b.
	start := 0
	for b := 0; b < 1<<16; b++ {
		end := count[b]
		if end-start > 1 {
			sortBucket(out[start:end])
		}
		start = end
	}
	r.radixOut = s[:0] // ping-pong the buffers
	return out
}

// sortBucket orders one radix bucket. Buckets are tiny for uniform keys
// (insertion sort); skewed workloads (Zipf duplicates) produce large
// buckets of mostly-identical keys, for which insertion sort is linear,
// but genuinely large mixed buckets fall back to the library sort.
func sortBucket(b []ids.ID) {
	if len(b) > 48 {
		sort.Sort(idKeys(b))
		return
	}
	for i := 1; i < len(b); i++ {
		k := b[i]
		j := i - 1
		for j >= 0 && k.Less(b[j]) {
			b[j+1] = b[j]
			j--
		}
		b[j+1] = k
	}
}

// SetConsumeMode selects the consumption order for all nodes on the ring.
func (r *Ring[T]) SetConsumeMode(m ConsumeMode) { r.mode = m }

// ConsumeModeSetting returns the ring's current consumption order.
func (r *Ring[T]) ConsumeModeSetting() ConsumeMode { return r.mode }

// Node is one virtual node on the ring. The zero value is not usable;
// nodes are created only by Ring.Insert and Ring.Build.
type Node[T any] struct {
	id   ids.ID
	Data T

	// keys[head:] are the unconsumed task keys this node owns, in ring
	// order ascending from the node's predecessor. The window only ever
	// shrinks (consumption) or is split/replaced (join/leave), so windows
	// from a split may safely share a backing array.
	keys []ids.ID
	head int
	// fromBack alternates the consumption end so that remaining keys stay
	// spread across the arc instead of piling up at one edge, which would
	// bias every later split.
	fromBack bool

	// seg is the node's segment, fixed for its lifetime (it is a pure
	// function of the immutable ID and the ring's segment shift). off is
	// a self-repairing offset hint within that segment: when
	// segs[seg][off] == slot it is exact and posOf is O(1).
	// Insert/Remove shift offsets without eagerly rewriting every hint to
	// their right (that would make each splice strictly more expensive
	// than its memmove); a stale hint is detected by the identity check
	// and repaired with one segment-local binary search on first use. See
	// docs/PERFORMANCE.md for the invariant. slot is the node's fixed
	// position in the ring's arena, assigned at insert and never moved
	// while the node is on the ring.
	seg  int32
	off  int32
	slot int32

	r *Ring[T]
}

// New returns an empty ring.
func New[T any]() *Ring[T] {
	return &Ring[T]{segs: make([][]int32, 1), segShift: 16}
}

// Len returns the number of nodes on the ring.
func (r *Ring[T]) Len() int { return r.count }

// TotalKeys returns the number of unconsumed keys across all nodes.
func (r *Ring[T]) TotalKeys() int { return r.totalKeys }

// Segments returns the number of order segments the ring order is split
// across (a power of two; 1 for incrementally built rings).
func (r *Ring[T]) Segments() int { return len(r.segs) }

// segOf returns the segment addressed by id's top 16 bits.
func (r *Ring[T]) segOf(id ids.ID) int {
	return (int(id[0])<<8 | int(id[1])) >> r.segShift
}

// node returns the node stored at segment position (s, off).
func (r *Ring[T]) node(s, off int) *Node[T] { return r.slots[r.segs[s][off]] }

// searchIn returns the insertion offset for id within segment s: the
// first offset whose node ID is >= id. The binary search is inlined
// (rather than using sort.Search) so the hot lookup paths stay
// allocation- and closure-free.
func (r *Ring[T]) searchIn(s int, id ids.ID) int {
	seg := r.segs[s]
	lo, hi := 0, len(seg)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.slots[seg[mid]].id.Less(id) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// occupiedFrom resolves the possibly-virtual position (s, off) — off may
// equal len(segs[s]) — to the first occupied position at or after it,
// wrapping past the highest segment to the lowest. The ring must be
// non-empty.
func (r *Ring[T]) occupiedFrom(s, off int) (int, int) {
	for off >= len(r.segs[s]) {
		s++
		if s == len(r.segs) {
			s = 0
		}
		off = 0
	}
	return s, off
}

// occupiedBefore returns the last occupied position strictly before the
// possibly-virtual position (s, off), wrapping below the lowest segment
// to the highest. The ring must be non-empty.
func (r *Ring[T]) occupiedBefore(s, off int) (int, int) {
	for off == 0 {
		s--
		if s < 0 {
			s = len(r.segs) - 1
		}
		off = len(r.segs[s])
	}
	return s, off - 1
}

// stepNext advances one node clockwise from the occupied position (s, off).
func (r *Ring[T]) stepNext(s, off int) (int, int) {
	return r.occupiedFrom(s, off+1)
}

// firstPos returns the position of the lowest-ID node. The ring must be
// non-empty.
func (r *Ring[T]) firstPos() (int, int) { return r.occupiedFrom(0, 0) }

// lastPos returns the position of the highest-ID node. The ring must be
// non-empty.
func (r *Ring[T]) lastPos() (int, int) {
	s := len(r.segs) - 1
	return r.occupiedBefore(s, len(r.segs[s]))
}

// At returns the i-th node in ascending ID order. It panics if i is out
// of range, mirroring slice indexing. It walks the segment lengths
// (O(segments)); hot paths address nodes by *Node, not by rank.
func (r *Ring[T]) At(i int) *Node[T] {
	if i >= 0 {
		for _, seg := range r.segs {
			if i < len(seg) {
				return r.slots[seg[i]]
			}
			i -= len(seg)
		}
	}
	panic("ring: At index out of range")
}

// Get returns the node with exactly the given ID, if present.
func (r *Ring[T]) Get(id ids.ID) (*Node[T], bool) {
	s := r.segOf(id)
	off := r.searchIn(s, id)
	if off < len(r.segs[s]) {
		if n := r.node(s, off); n.id == id {
			return n, true
		}
	}
	return nil, false
}

// Owner returns the node responsible for key: the first node clockwise at
// or after the key. It returns nil on an empty ring.
func (r *Ring[T]) Owner(key ids.ID) *Node[T] {
	if r.count == 0 {
		return nil
	}
	s := r.segOf(key)
	s, off := r.occupiedFrom(s, r.searchIn(s, key)) // wraps past the highest ID to the lowest
	return r.node(s, off)
}

// posOf locates n on the ring: O(1) when n's offset hint is exact, one
// segment-local binary search (which also repairs the hint) when a
// splice has shifted it. It panics if n was removed; the caller holding
// a stale node is a logic error worth failing loudly on.
func (r *Ring[T]) posOf(n *Node[T]) (int, int) {
	if n.r != r {
		panic(ErrRemoved)
	}
	s := int(n.seg)
	if off := int(n.off); off < len(r.segs[s]) && r.segs[s][off] == n.slot {
		return s, off
	}
	off := r.searchIn(s, n.id)
	if off >= len(r.segs[s]) || r.segs[s][off] != n.slot {
		panic(fmt.Sprintf("ring: node %s not found at its position", n.id.Short()))
	}
	n.off = int32(off)
	return s, off
}

// Succ returns the k-th successor of n clockwise (k >= 1 typical; k == 0
// returns n itself). Wraps around the ring. Negative k walks
// counterclockwise; steps are taken along the shorter direction after
// reducing k modulo the ring size.
func (r *Ring[T]) Succ(n *Node[T], k int) *Node[T] {
	s, off := r.posOf(n)
	m := r.count
	k = ((k % m) + m) % m
	if 2*k > m {
		k -= m // walk the short way round
	}
	for ; k > 0; k-- {
		s, off = r.stepNext(s, off)
	}
	for ; k < 0; k++ {
		s, off = r.occupiedBefore(s, off)
	}
	return r.node(s, off)
}

// Pred returns the k-th predecessor of n counterclockwise.
func (r *Ring[T]) Pred(n *Node[T], k int) *Node[T] {
	return r.Succ(n, -k)
}

// Insert places a new node at id carrying data, splitting the key range of
// the current owner of id. It returns ErrOccupied if a node already has
// that ID.
func (r *Ring[T]) Insert(id ids.ID, data T) (*Node[T], error) {
	s := r.segOf(id)
	off := r.searchIn(s, id)
	if off < len(r.segs[s]) && r.node(s, off).id == id {
		return nil, ErrOccupied
	}
	n := &Node[T]{id: id, Data: data, r: r}
	n.slot = r.alloc(n)
	n.seg, n.off = int32(s), int32(off)
	if r.count == 0 {
		r.segs[s] = append(r.segs[s], n.slot)
		r.count = 1
		return n, nil
	}
	// The node that currently owns id (n's successor-to-be) and n's
	// predecessor, the node before the insertion point.
	ss, soff := r.occupiedFrom(s, off)
	succ := r.node(ss, soff)
	ps, poff := r.occupiedBefore(s, off)
	pred := r.node(ps, poff)

	// Split succ's keys: n takes those in (pred, id], i.e. the active
	// prefix whose ring distance from pred.id is <= dist(pred, id).
	active := succ.keys[succ.head:]
	limit := pred.id.Distance(id)
	lo, hi := 0, len(active)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pred.id.Distance(active[mid]).Compare(limit) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	cut := lo
	n.keys = active[:cut]
	succ.keys = active[cut:]
	succ.head = 0

	// Splice into the segment. Offset hints of the shifted nodes go
	// stale and self-repair on their next posOf; the copy moves plain
	// int32s within one segment, so there is no write-barrier traffic
	// and the move is bounded by the segment length, not the ring size.
	seg := append(r.segs[s], 0)
	copy(seg[off+1:], seg[off:])
	seg[off] = n.slot
	r.segs[s] = seg
	r.count++
	return n, nil
}

// alloc places n in the slots arena, recycling a freed slot when one is
// available, and returns its slot index.
func (r *Ring[T]) alloc(n *Node[T]) int32 {
	if k := len(r.free); k > 0 {
		s := r.free[k-1]
		r.free = r.free[:k-1]
		r.slots[s] = n
		return s
	}
	r.slots = append(r.slots, n)
	return int32(len(r.slots) - 1)
}

// Build populates an empty ring with len(nodeIDs) nodes in one pass:
// O(n log n) total, versus O(n^2) for n sequential Inserts. data[i] is
// attached to the node at nodeIDs[i], and the returned slice is in input
// order (not ring order). The ring must be empty and the IDs unique; no
// keys move because there are none yet — callers seed keys afterwards.
//
// Build also fixes the ring's segment geometry for the population:
// roughly segTarget nodes per segment, so later Insert/Remove splices
// touch one segment. Rings grown node-by-node from New keep a single
// segment, which is exactly the flat order array smaller rings want.
func (r *Ring[T]) Build(nodeIDs []ids.ID, data []T) ([]*Node[T], error) {
	if r.count != 0 {
		return nil, errors.New("ring: Build requires an empty ring")
	}
	if len(nodeIDs) != len(data) {
		return nil, fmt.Errorf("ring: Build got %d ids but %d data values", len(nodeIDs), len(data))
	}
	out := make([]*Node[T], len(nodeIDs))
	sorted := make([]*Node[T], len(nodeIDs))
	for i := range nodeIDs {
		n := &Node[T]{id: nodeIDs[i], Data: data[i], r: r}
		out[i] = n
		sorted[i] = n
	}
	sort.Sort(nodesByID[T](sorted))
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].id == sorted[i].id {
			for _, m := range out {
				m.r = nil
			}
			return nil, ErrOccupied
		}
	}
	bits := 0
	for len(sorted)>>bits > segTarget && bits < segMaxBits {
		bits++
	}
	r.segShift = uint(16 - bits)
	r.segs = make([][]int32, 1<<bits)
	r.slots = sorted
	r.free = r.free[:0]
	for i, n := range sorted {
		n.slot = int32(i)
		s := r.segOf(n.id)
		n.seg = int32(s)
		n.off = int32(len(r.segs[s]))
		r.segs[s] = append(r.segs[s], n.slot)
	}
	r.count = len(sorted)
	return out, nil
}

// nodesByID sorts nodes ascending by identifier.
type nodesByID[T any] []*Node[T]

func (s nodesByID[T]) Len() int           { return len(s) }
func (s nodesByID[T]) Less(i, j int) bool { return s[i].id.Less(s[j].id) }
func (s nodesByID[T]) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

// Remove takes n off the ring, handing its unconsumed keys to its
// successor (Chord's failure/departure behavior under active backup).
// The hand-off crosses segment boundaries transparently: the successor
// is found by the wrapping position walk, so a departure at the edge of
// one segment hands its keys to the first node of the next non-empty
// segment exactly as a flat order array would. Removing the final node
// is only allowed once no keys remain.
func (r *Ring[T]) Remove(n *Node[T]) error {
	if n.r != r {
		return ErrRemoved
	}
	s, off := r.posOf(n)
	if r.count == 1 {
		if n.Workload() > 0 {
			return ErrLastNode
		}
		r.segs[s] = r.segs[s][:0]
		r.count = 0
		r.release(n)
		return nil
	}
	ss, soff := r.stepNext(s, off)
	succ := r.node(ss, soff)
	if w := n.Workload(); w > 0 {
		// n's keys precede succ's in ring order from n's predecessor.
		switch sw := succ.Workload(); {
		case sw == 0:
			// The successor is idle: hand the whole window over.
			succ.keys = n.keys
			succ.head = n.head
		case w <= succ.head:
			// The successor has consumed at least w keys off its front;
			// those slots belong exclusively to succ's window and are
			// dead, so n's keys slide in without allocating. (Windows
			// share backing arrays only via Insert splits, which keep
			// them disjoint; copy is memmove-safe regardless.)
			copy(succ.keys[succ.head-w:succ.head], n.keys[n.head:])
			succ.head -= w
		default:
			merged := make([]ids.ID, 0, w+sw)
			merged = append(merged, n.keys[n.head:]...)
			merged = append(merged, succ.keys[succ.head:]...)
			succ.keys = merged
			succ.head = 0
		}
	}
	seg := r.segs[s]
	copy(seg[off:], seg[off+1:])
	r.segs[s] = seg[:len(seg)-1]
	r.count--
	r.release(n)
	n.keys = nil
	return nil
}

// release detaches n from the ring and returns its arena slot to the
// free list, dropping the arena's reference so the node can be
// collected.
func (r *Ring[T]) release(n *Node[T]) {
	r.slots[n.slot] = nil
	r.free = append(r.free, n.slot)
	n.r = nil
}

// idKeys implements sort.Interface over raw identifiers without
// closures; ties are identical 20-byte values, so the unstable sort
// cannot produce an observable reordering.
type idKeys []ids.ID

func (s idKeys) Len() int           { return len(s) }
func (s idKeys) Less(i, j int) bool { return s[i].Less(s[j]) }
func (s idKeys) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

// Seed distributes task keys to their owners. It may be called on a ring
// whose nodes already hold keys; new keys are merged in ring order. It
// returns ErrEmpty if the ring has no nodes.
//
// The batch is sorted by absolute identifier once; every owner's bucket
// is then a contiguous segment, located with one binary search per
// *distinct* owner instead of one per key. The wrapping node (the first
// on the ring) owns two segments — keys above the last node and keys at
// or below itself — which concatenate, tail first, into exactly its
// ring-distance order from its predecessor. With a single node the two
// segments compose to the whole circle, so no special case is needed.
func (r *Ring[T]) Seed(taskKeys []ids.ID) error {
	if r.count == 0 {
		return ErrEmpty
	}
	sorted := r.seedScratch[:0]
	sorted = append(sorted, taskKeys...)
	sorted = r.sortIDs(sorted)
	fs, foff := r.firstPos()
	ls, loff := r.lastPos()
	first, last := r.node(fs, foff), r.node(ls, loff)
	// headEnd: first sorted key strictly above the first node's ID.
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if first.id.Less(sorted[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	headEnd := lo
	// tailStart: first sorted key strictly above the last node's ID.
	lo, hi = headEnd, len(sorted)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if last.id.Less(sorted[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	tailStart := lo
	// Middle segments: each run of keys in (pred, owner].
	for lo := headEnd; lo < tailStart; {
		os := r.segOf(sorted[lo])
		// The owner exists without wrapping: sorted[lo] > first.id and
		// <= last.id.
		os, ooff := r.occupiedFrom(os, r.searchIn(os, sorted[lo]))
		n := r.node(os, ooff)
		ps, poff := r.occupiedBefore(os, ooff)
		predID := r.node(ps, poff).id
		hi := lo + 1
		for hi < tailStart && !n.id.Less(sorted[hi]) {
			hi++
		}
		n.mergeSeed(predID, sorted[lo:hi])
		lo = hi
	}
	// The wrapping node: tail segment (keys > last) precedes the head
	// segment (keys <= first) in ring order from its predecessor.
	if headEnd > 0 || tailStart < len(sorted) {
		run := sorted[tailStart:]
		switch {
		case len(run) == 0:
			run = sorted[:headEnd]
		case headEnd > 0:
			comb := append(r.wrapScratch[:0], run...)
			comb = append(comb, sorted[:headEnd]...)
			r.wrapScratch = comb
			run = comb
		}
		first.mergeSeed(last.id, run)
	}
	r.seedScratch = sorted[:0] // keep the routing buffer for the next Seed
	r.totalKeys += len(taskKeys)
	return nil
}

// mergeSeed merges the incoming run (ascending in ring distance from
// predID) with the node's residual keys (same order by invariant) into
// a fresh exactly-sized window.
func (n *Node[T]) mergeSeed(predID ids.ID, run []ids.ID) {
	res := n.keys[n.head:]
	if len(res) == 0 {
		// Fast path: no residual keys — the run is the new window. Copy:
		// run aliases a reusable scratch buffer.
		out := make([]ids.ID, len(run))
		copy(out, run)
		n.keys = out
		n.head = 0
		return
	}
	out := make([]ids.ID, 0, len(run)+len(res))
	i, j := 0, 0
	for i < len(run) && j < len(res) {
		if predID.Distance(run[i]).Compare(predID.Distance(res[j])) <= 0 {
			out = append(out, run[i])
			i++
		} else {
			out = append(out, res[j])
			j++
		}
	}
	out = append(out, run[i:]...)
	out = append(out, res[j:]...)
	n.keys = out
	n.head = 0
}

// Workloads returns every node's residual key count in ring order.
func (r *Ring[T]) Workloads() []int {
	out := make([]int, 0, r.count)
	for _, seg := range r.segs {
		for _, slot := range seg {
			out = append(out, r.slots[slot].Workload())
		}
	}
	return out
}

// ArcView is a read-only view of one contiguous run of order segments —
// the shard-aware iteration surface for parallel scans. Arc views from
// one Arcs call cover disjoint node sets whose concatenation in arc
// order is exactly ring order, so a per-arc scan merged arc-by-arc is
// indistinguishable from one serial pass. Callers may run Each on
// different arcs concurrently provided fn neither mutates ring topology
// nor touches nodes outside its arc.
type ArcView[T any] struct {
	r      *Ring[T]
	lo, hi int // segment range [lo, hi)
}

// Arcs partitions the ring order into at most k contiguous arcs of whole
// segments. Fewer than k arcs are returned when the ring has fewer
// segments than k.
func (r *Ring[T]) Arcs(k int) []ArcView[T] {
	if k < 1 {
		k = 1
	}
	if k > len(r.segs) {
		k = len(r.segs)
	}
	out := make([]ArcView[T], k)
	for i := range out {
		out[i] = ArcView[T]{r: r, lo: i * len(r.segs) / k, hi: (i + 1) * len(r.segs) / k}
	}
	return out
}

// Each visits the arc's nodes in ascending ID order.
func (a ArcView[T]) Each(fn func(*Node[T])) {
	for s := a.lo; s < a.hi; s++ {
		for _, slot := range a.r.segs[s] {
			fn(a.r.slots[slot])
		}
	}
}

// Len returns the number of nodes currently inside the arc.
func (a ArcView[T]) Len() int {
	n := 0
	for s := a.lo; s < a.hi; s++ {
		n += len(a.r.segs[s])
	}
	return n
}

// CheckInvariants verifies structural invariants; tests and the simulator's
// debug mode call it. It returns a descriptive error on the first
// violation found.
func (r *Ring[T]) CheckInvariants() error {
	total := 0
	seen := 0
	var prev *Node[T]
	if r.count > 0 {
		ls, loff := r.lastPos()
		prev = r.node(ls, loff) // the first node's predecessor wraps
	}
	for s, seg := range r.segs {
		for off, slot := range seg {
			n := r.slots[slot]
			if n == nil {
				return fmt.Errorf("ring: segment %d offset %d points at a freed slot", s, off)
			}
			if n.slot != slot {
				return fmt.Errorf("ring: node %s slot field disagrees with order", n.id.Short())
			}
			if r.segOf(n.id) != s {
				return fmt.Errorf("ring: node %s stored in segment %d, addressed to %d", n.id.Short(), s, r.segOf(n.id))
			}
			if seen > 0 && !prev.id.Less(n.id) {
				return fmt.Errorf("ring: nodes out of order at segment %d offset %d", s, off)
			}
			if n.r != r {
				return fmt.Errorf("ring: node %s has stale ring pointer", n.id.Short())
			}
			if ps, poff := r.posOf(n); ps != s || poff != off {
				return fmt.Errorf("ring: node %s position hint does not repair to (%d,%d)", n.id.Short(), s, off)
			}
			var prevDist ids.ID
			for j, k := range n.keys[n.head:] {
				if r.count > 1 && !ids.BetweenRightIncl(k, prev.id, n.id) {
					return fmt.Errorf("ring: node %s holds foreign key %s", n.id.Short(), k.Short())
				}
				d := prev.id.Distance(k)
				if j > 0 && d.Compare(prevDist) < 0 {
					return fmt.Errorf("ring: node %s keys out of ring order", n.id.Short())
				}
				prevDist = d
			}
			total += n.Workload()
			prev = n
			seen++
		}
	}
	if seen != r.count {
		return fmt.Errorf("ring: segments hold %d nodes but count says %d", seen, r.count)
	}
	if total != r.totalKeys {
		return fmt.Errorf("ring: key count drift: counted %d, tracked %d", total, r.totalKeys)
	}
	for _, s := range r.free {
		if r.slots[s] != nil {
			return fmt.Errorf("ring: free slot %d still holds a node", s)
		}
	}
	if live := len(r.slots) - len(r.free); live != r.count {
		return fmt.Errorf("ring: arena holds %d live nodes but order lists %d", live, r.count)
	}
	return nil
}

// ID returns the node's ring identifier.
func (n *Node[T]) ID() ids.ID { return n.id }

// OnRing reports whether the node is still part of its ring.
func (n *Node[T]) OnRing() bool { return n.r != nil }

// Workload returns the number of unconsumed keys the node owns.
func (n *Node[T]) Workload() int { return len(n.keys) - n.head }

// PredID returns the node's current predecessor ID (its own ID when it is
// alone on the ring). The arc (PredID, ID] is the node's responsibility.
func (n *Node[T]) PredID() ids.ID {
	s, off := n.r.posOf(n)
	ps, poff := n.r.occupiedBefore(s, off)
	return n.r.node(ps, poff).id
}

// Keys returns a copy of the node's unconsumed keys in ring order.
func (n *Node[T]) Keys() []ids.ID {
	return append([]ids.ID(nil), n.keys[n.head:]...)
}

// Consume removes and returns one task key from the end selected by the
// ring's ConsumeMode. ok is false when the node has no work.
func (n *Node[T]) Consume() (key ids.ID, ok bool) {
	if n.Workload() == 0 {
		return ids.Zero, false
	}
	back := false
	switch n.r.mode {
	case ConsumeBack:
		back = true
	case ConsumeAlternate:
		back = n.fromBack
		n.fromBack = !n.fromBack
	}
	if back {
		key = n.keys[len(n.keys)-1]
		n.keys = n.keys[:len(n.keys)-1]
	} else {
		key = n.keys[n.head]
		n.head++
	}
	n.r.totalKeys--
	return key, true
}

// SplitKey returns the identifier that splits the node's *remaining* keys
// exactly in half: a new node inserted at the returned ID takes over
// ceil(w/2) keys. ok is false when the node holds fewer than two keys.
// This powers the paper's §VII extension where nodes may choose Sybil IDs
// freely instead of estimating by arc size.
func (n *Node[T]) SplitKey() (id ids.ID, ok bool) {
	w := n.Workload()
	if w < 2 {
		return ids.Zero, false
	}
	// Keys are in ring order from the predecessor; the key at the median
	// position is the last key the new (earlier) node would own.
	return n.keys[n.head+(w-1)/2], true
}

// ConsumeN consumes up to max keys and returns how many were consumed.
// It is the batched form of Consume: the whole batch is a constant-time
// window adjustment, with the exact end state (head, tail, alternation
// parity, total-key count) the equivalent sequence of Consume calls
// would leave.
func (n *Node[T]) ConsumeN(max int) int {
	c := n.ConsumeNDeferred(max)
	n.r.totalKeys -= c
	return c
}

// ConsumeNDeferred is ConsumeN without the ring-level total-key update:
// the node's window moves exactly as ConsumeN moves it, but the caller
// owns reporting the count back through CommitConsumed. This is the
// shard-phase form — parallel workers consuming disjoint node sets
// would otherwise race on the shared total, so each shard sums its
// consumption locally and the merge phase commits once.
func (n *Node[T]) ConsumeNDeferred(max int) int {
	if w := n.Workload(); max > w {
		max = w
	}
	if max <= 0 {
		return 0
	}
	switch n.r.mode {
	case ConsumeBack:
		n.keys = n.keys[:len(n.keys)-max]
	case ConsumeAlternate:
		// Alternating draws split the batch across both ends, with the
		// current side taking the extra key when max is odd. Front and
		// back removals commute, so applying them as two bulk moves
		// leaves the identical surviving window.
		first := (max + 1) / 2
		second := max / 2
		front, back := first, second
		if n.fromBack {
			front, back = second, first
		}
		n.head += front
		n.keys = n.keys[:len(n.keys)-back]
		if max%2 == 1 {
			n.fromBack = !n.fromBack
		}
	default: // ConsumeFront
		n.head += max
	}
	return max
}

// CommitConsumed subtracts a batch of deferred consumption (the sum of
// ConsumeNDeferred returns) from the ring's total-key count. Call it
// once per parallel phase, after every worker has finished.
func (r *Ring[T]) CommitConsumed(consumed int) { r.totalKeys -= consumed }
