package wire

import (
	"bytes"
	"reflect"
	"testing"

	"chordbalance/internal/ids"
)

// FuzzWireRoundTrip locks in the codec's two safety properties:
//
//  1. Encode→Decode identity: any message assembled from fuzz inputs
//     that Encode accepts must decode back to exactly the same struct
//     (after masking to the type's field set, which Encode guarantees).
//  2. Decoding arbitrary bytes never panics and never over-allocates:
//     element storage allocated while decoding is bounded by the input
//     length, enforced structurally by reader.count.
//
// Both directions run on every input: the raw bytes go straight to
// Decode, and the structured inputs drive the round trip.
func FuzzWireRoundTrip(f *testing.F) {
	for ty := TPing; ty < typeCount; ty++ {
		frame, err := Encode(&Msg{Type: ty, Req: uint64(ty)})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame, byte(ty), uint64(1), []byte("value"), "addr:1", uint64(2), true)
	}
	f.Add([]byte{'C', 'B', Version, 1}, byte(TJoinOK), uint64(0), []byte{}, "", uint64(0), false)

	f.Fuzz(func(t *testing.T, raw []byte, ty byte, req uint64, val []byte, addr string, a uint64, flag bool) {
		// Direction 1: arbitrary bytes must never panic the decoder, and
		// a successful decode must re-encode to the identical frame
		// (canonical form: Decode∘Encode is the identity on valid frames).
		if m, n, err := Decode(raw); err == nil {
			re, err := Encode(m)
			if err != nil {
				t.Fatalf("decoded message failed to re-encode: %v", err)
			}
			if !bytes.Equal(re, raw[:n]) {
				t.Fatalf("re-encode mismatch:\n in: %x\nout: %x", raw[:n], re)
			}
		}
		// ReadMsg must agree with Decode on the same bytes.
		if _, err := ReadMsg(bytes.NewReader(raw)); err != nil {
			_ = err // any error is fine; only panics are bugs
		}

		// Direction 2: a structured message round-trips exactly.
		typ := Type(ty%byte(typeCount-1) + 1) // valid, non-TInvalid
		in := &Msg{Type: typ, Req: req}
		mask := Fields(typ)
		if mask&fKey != 0 {
			in.Key = ids.FromUint64(a)
		}
		if mask&fKey2 != 0 {
			in.Key2 = ids.FromUint64(a ^ 0x5a5a)
		}
		if len(addr) > MaxAddrLen {
			addr = addr[:MaxAddrLen]
		}
		if mask&fFrom != 0 {
			in.From = NodeRef{ID: ids.FromBytes(val), Addr: addr}
		}
		if mask&fNode != 0 {
			in.Node = NodeRef{ID: ids.FromUint64(req), Addr: addr}
		}
		if mask&fList != 0 && flag {
			in.List = []NodeRef{{ID: ids.FromUint64(a), Addr: addr}}
		}
		if mask&fRecs != 0 && len(val) <= MaxValueLen {
			in.Recs = []Rec{{Key: ids.FromUint64(a), Ver: req, Value: normalize(val)}}
		}
		if mask&fTasks != 0 {
			in.Tasks = []Task{{Key: ids.FromUint64(req), Units: a}}
		}
		if mask&fMetas != 0 {
			meta := Meta{Key: ids.FromUint64(a), Ver: req}
			copy(meta.Sum[:], val)
			in.Metas = []Meta{meta}
		}
		if mask&fValue != 0 && len(val) <= MaxValueLen {
			in.Value = normalize(val)
		}
		if mask&fA != 0 {
			in.A = a
		}
		if mask&fB != 0 {
			in.B = a ^ req
		}
		if mask&fC != 0 {
			in.C = a + req
		}
		if mask&fD != 0 {
			in.D = a - req
		}
		if mask&fFlag != 0 {
			in.Flag = flag
		}
		if mask&fText != 0 {
			text := addr
			if len(text) > MaxTextLen {
				text = text[:MaxTextLen]
			}
			in.Text = text
		}
		frame, err := Encode(in)
		if err != nil {
			t.Fatalf("encode of in-bounds message failed: %v", err)
		}
		out, n, err := Decode(frame)
		if err != nil {
			t.Fatalf("decode of encoded message failed: %v", err)
		}
		if n != len(frame) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(frame))
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round trip mismatch\n in: %+v\nout: %+v", in, out)
		}
	})
}

// normalize maps empty slices to nil, matching the decoder's convention
// so DeepEqual compares structurally identical messages.
func normalize(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	return append([]byte(nil), b...)
}
