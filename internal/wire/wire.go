// Package wire is the versioned, length-prefixed binary codec for the
// networked Chord runtime (internal/netchord). It frames the protocol's
// message set — find_successor routing steps, notify, get/put and task
// submission, versioned replica records and Merkle anti-entropy digest
// exchanges (internal/store), workload queries, the Sybil invite/inject
// strategy traffic, and consume reports — as self-describing records
// that can be written to any net.Conn with a single Write call.
//
// The format is deliberately tiny and strict:
//
//	offset  size  field
//	0       2     magic "CB"
//	2       1     version (currently 2)
//	3       1     message type
//	4       8     request id (big endian)
//	12      4     payload length (big endian, <= MaxPayload)
//	16      n     payload: the type's fields in fixed order
//
// Each message type carries a fixed subset of Msg's fields (see
// fieldsOf); fields not in the subset are never encoded and decode to
// their zero values, so Encode/Decode is an exact round trip for valid
// messages. Every length read from the wire is bounds-checked against
// both a hard cap and the bytes actually remaining in the payload, so a
// malicious or corrupt peer can neither panic the decoder nor make it
// over-allocate (FuzzWireRoundTrip locks both properties in).
//
// The codec is stdlib-only, allocation-light, and endian-explicit; see
// docs/NETWORK.md for the full wire-format table.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"chordbalance/internal/ids"
)

// Version is the current wire-format version; bump it when the frame
// header or any payload layout changes incompatibly. Version 2 replaced
// the unversioned KV bulk transfers of version 1 with versioned Rec
// records and added the anti-entropy digest exchange (TSync*). Version
// 3 added the admission-puzzle nonce to TJoin and the TEvict density
// eviction notice (docs/ADVERSARY.md).
const Version = 3

// Frame geometry and hard bounds. The caps are generous for the runtime's
// actual traffic but small enough that a hostile peer cannot force large
// allocations from a 16-byte header.
const (
	// HeaderLen is the fixed frame header size in bytes.
	HeaderLen = 16
	// MaxPayload caps one frame's payload.
	MaxPayload = 1 << 20
	// MaxValueLen caps one stored value.
	MaxValueLen = 64 << 10
	// MaxListLen caps a successor-list or candidate list.
	MaxListLen = 128
	// MaxRecs caps one bulk record transfer.
	MaxRecs = 8192
	// MaxTasks caps one bulk task transfer.
	MaxTasks = 8192
	// MaxMetas caps one anti-entropy key-metadata exchange.
	MaxMetas = 8192
	// SumLen is the byte length of a record's value checksum (SHA-256)
	// as carried in Meta entries.
	SumLen = 32
	// MaxAddrLen caps one node address string.
	MaxAddrLen = 256
	// MaxTextLen caps an error/text field.
	MaxTextLen = 1024
)

// Codec errors.
var (
	// ErrBadMagic means the frame did not start with "CB".
	ErrBadMagic = errors.New("wire: bad magic")
	// ErrBadVersion means the peer speaks an unknown format version.
	ErrBadVersion = errors.New("wire: unsupported version")
	// ErrBadType means the message type byte is outside the known set.
	ErrBadType = errors.New("wire: unknown message type")
	// ErrTooLarge means a declared length exceeded its cap.
	ErrTooLarge = errors.New("wire: length exceeds bound")
	// ErrTruncated means the payload ended before its declared fields.
	ErrTruncated = errors.New("wire: truncated payload")
	// ErrTrailing means the payload had bytes after the last field.
	ErrTrailing = errors.New("wire: trailing bytes after payload")
)

// Type identifies one message kind.
type Type uint8

// The message set. Requests and their replies are distinct types; TAck
// is the generic empty success reply and TError the generic failure.
const (
	// TInvalid is the zero Type and never valid on the wire.
	TInvalid Type = iota
	// TPing probes liveness.
	TPing
	// TPong answers TPing.
	TPong
	// TFindSuccessor asks one routing step toward Key (A = hops so far).
	TFindSuccessor
	// TFindSuccessorOK answers: Flag means Node is the owner (done);
	// otherwise Node is the next hop and List holds fallback candidates
	// (the answering node's successor list).
	TFindSuccessorOK
	// TGetPred asks for the predecessor pointer.
	TGetPred
	// TGetPredOK answers: Flag reports whether Node is set.
	TGetPredOK
	// TGetSuccList asks for the successor list.
	TGetSuccList
	// TSuccListOK answers with List.
	TSuccListOK
	// TNotify tells the callee that From may be its predecessor.
	TNotify
	// TJoin asks the callee (the joiner's successor) to admit From. A
	// carries the admission-puzzle nonce (adversary.SolvePuzzle over
	// From's ID; 0 when the ring runs puzzle-free — see Config
	// PuzzleBits in netchord).
	TJoin
	// TJoinOK answers with the callee's successor List plus the data
	// (Recs) and work (Tasks) the joiner now owns.
	TJoinOK
	// TGet fetches the value for Key from its owner.
	TGet
	// TGetOK answers: Flag reports whether Key was present, Value holds
	// the bytes, A the record's store version.
	TGetOK
	// TPut stores Value under Key at its owner. The owner replies TAck
	// only after the record is durable locally and on its replica set
	// (the acknowledged-write contract, docs/STORAGE.md).
	TPut
	// TTask submits A units of work under task key Key. B is the
	// sender's idempotency token: retries after a lost reply reuse it,
	// and receivers apply each token at most once so work units are
	// never double-counted (0 = no dedup).
	TTask
	// TReplicate pushes versioned replica Recs to a successor. The
	// receiver applies them last-writer-wins, makes them durable, and
	// replies TAck; when exactly one record is pushed the TAck's A slot
	// carries the receiver's now-current version for that key, letting a
	// version-behind owner re-assert a fresh write above it.
	TReplicate
	// TTransfer hands off Recs and Tasks (graceful leave, churn). A is
	// the sender's idempotency token, as in TTask: task moves must be
	// exactly-once even over an at-least-once RPC layer.
	TTransfer
	// TWorkloadQuery asks a node for its residual task units.
	TWorkloadQuery
	// TWorkloadOK answers with A = residual task units.
	TWorkloadOK
	// TInvite announces that From (with predecessor Node and workload A)
	// is overloaded and invites the callee to inject a Sybil into its
	// arc (the paper's Invitation strategy, §IV-D).
	TInvite
	// TInviteOK answers: Flag reports whether the callee will help.
	TInviteOK
	// TInject notifies the collector that host From injected Sybil Node
	// which acquired A task units.
	TInject
	// THello registers host From (capacity A) with the collector.
	THello
	// TConsumeReport reports host From's consumption: A = cumulative
	// units consumed, B = residual units, C = tick work first arrived,
	// D = tick of the last consume.
	TConsumeReport
	// TProgress asks the collector for cluster-wide workload progress.
	TProgress
	// TProgressOK answers: A = total consumed, B = total residual,
	// C = busy ticks of the slowest host, D = summed capacity.
	TProgressOK
	// TSyncDigest asks for the callee's Merkle digest over the key arc
	// (Key, Key2] (Key == Key2 means the whole ring).
	TSyncDigest
	// TSyncDigestOK answers: Value is the 32-byte arc digest, A the
	// number of live keys in the arc.
	TSyncDigestOK
	// TSyncKeys asks for per-key metadata over the arc (Key, Key2].
	TSyncKeys
	// TSyncKeysOK answers with Metas (capped at MaxMetas); A is the
	// true arc key count, which may exceed len(Metas).
	TSyncKeysOK
	// TSyncFetch asks for the current records of the keys named in
	// Metas (versions/sums in the request are advisory).
	TSyncFetch
	// TSyncFetchOK answers with the Recs the callee still holds.
	TSyncFetchOK
	// TStoreReport reports host From's storage-layer counters to the
	// collector: A = acknowledged writes, B = anti-entropy rounds,
	// C = anti-entropy bytes moved, D = anti-entropy repair nanoseconds.
	TStoreReport
	// TStreamReport reports a streaming client From's cumulative
	// read-path counters to the collector: A = chunks delivered,
	// B = chunk deadline misses, C = rebuffer events, D = value bytes
	// delivered. From carries the client's synthetic identity (a
	// streaming load generator occupies no ring position).
	TStreamReport
	// TStats asks the collector for the full cluster statistics blob —
	// everything TProgressOK's four slots cannot carry (storage and
	// streaming counters included).
	TStats
	// TStatsOK answers with Value = a packed Stats blob (AppendStats/
	// DecodeStats define the layout).
	TStatsOK
	// TEvict tells the callee that From's density scan flagged its ID as
	// part of a statistically improbable cluster and it should leave the
	// ring (docs/ADVERSARY.md). Advisory and acknowledged with TAck: a
	// hostile callee ignores it, so the sender's defense is refusing to
	// route around an identity that stays, not trusting compliance.
	TEvict
	// TAck is the generic success reply; A is an optional per-request
	// detail slot (0 when unused — see TReplicate).
	TAck
	// TError is the generic failure reply: Text explains, A is a
	// numeric code (see Err* codes in netchord).
	TError

	typeCount // sentinel: one past the last valid type
)

// TypeCount is one past the largest valid Type value; arrays indexed by
// Type (per-type counters, dispatch tables) use it as their length.
const TypeCount = int(typeCount)

// typeNames renders Type for logs and errors.
var typeNames = [typeCount]string{
	TInvalid: "invalid", TPing: "ping", TPong: "pong",
	TFindSuccessor: "find_successor", TFindSuccessorOK: "find_successor_ok",
	TGetPred: "get_pred", TGetPredOK: "get_pred_ok",
	TGetSuccList: "get_succ_list", TSuccListOK: "succ_list_ok",
	TNotify: "notify", TJoin: "join", TJoinOK: "join_ok",
	TGet: "get", TGetOK: "get_ok", TPut: "put", TTask: "task",
	TReplicate: "replicate", TTransfer: "transfer",
	TWorkloadQuery: "workload_query", TWorkloadOK: "workload_ok",
	TInvite: "invite", TInviteOK: "invite_ok", TInject: "inject",
	THello: "hello", TConsumeReport: "consume_report",
	TProgress: "progress", TProgressOK: "progress_ok",
	TSyncDigest: "sync_digest", TSyncDigestOK: "sync_digest_ok",
	TSyncKeys: "sync_keys", TSyncKeysOK: "sync_keys_ok",
	TSyncFetch: "sync_fetch", TSyncFetchOK: "sync_fetch_ok",
	TStoreReport: "store_report", TStreamReport: "stream_report",
	TStats: "stats", TStatsOK: "stats_ok",
	TEvict: "evict",
	TAck:   "ack", TError: "error",
}

// String names the type as used in metrics and docs.
func (t Type) String() string {
	if t < typeCount {
		return typeNames[t]
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Valid reports whether t is a known, encodable message type.
func (t Type) Valid() bool { return t > TInvalid && t < typeCount }

// NodeRef names one node: its ring identifier plus the address its
// server listens on. Refs travel in routing replies so that a peer
// learned by ID is immediately dialable.
type NodeRef struct {
	ID   ids.ID
	Addr string
}

// IsZero reports whether the ref is unset.
func (r NodeRef) IsZero() bool { return r.ID == ids.Zero && r.Addr == "" }

// Rec is one versioned stored record in a bulk transfer. Ver is the
// store's per-key last-writer-wins version (internal/store); receivers
// apply a Rec only when it wins against what they already hold, so
// replaying or duplicating a transfer is harmless.
type Rec struct {
	Key   ids.ID
	Ver   uint64
	Value []byte
}

// Meta is one key's anti-entropy metadata: its version and the SHA-256
// sum of its value. Two replicas holding equal (Ver, Sum) for a key are
// byte-identical for it without moving the value.
type Meta struct {
	Key ids.ID
	Ver uint64
	Sum [SumLen]byte
}

// Task is one unit-weighted work item in a bulk transfer.
type Task struct {
	Key   ids.ID
	Units uint64
}

// Msg is the decoded form of every message: one Type plus the union of
// all field slots. Each type uses the fixed subset listed in its
// constant's doc comment; Encode rejects nothing (it simply skips
// fields outside the subset) and Decode leaves them zero.
type Msg struct {
	Type Type
	// Req matches replies to requests on a pooled connection.
	Req uint64

	Key ids.ID
	// Key2 is the second arc boundary for the TSync* exchanges: the
	// pair names the half-open ring arc (Key, Key2].
	Key2  ids.ID
	From  NodeRef
	Node  NodeRef
	List  []NodeRef
	Recs  []Rec
	Tasks []Task
	Metas []Meta
	Value []byte
	// A–D are per-type numeric slots (hop counts, units, ticks...).
	A, B, C, D uint64
	Flag       bool
	Text       string
}

// Field presence bits, in encoding order.
const (
	fKey uint16 = 1 << iota
	fKey2
	fFrom
	fNode
	fList
	fRecs
	fTasks
	fMetas
	fValue
	fA
	fB
	fC
	fD
	fFlag
	fText
)

// fieldsOf maps each type to the fields it carries on the wire.
var fieldsOf = [typeCount]uint16{
	TPing:            0,
	TPong:            0,
	TFindSuccessor:   fKey | fA,
	TFindSuccessorOK: fNode | fList | fFlag,
	TGetPred:         0,
	TGetPredOK:       fNode | fFlag,
	TGetSuccList:     0,
	TSuccListOK:      fList,
	TNotify:          fFrom,
	TJoin:            fFrom | fA,
	TJoinOK:          fList | fRecs | fTasks,
	TGet:             fKey,
	TGetOK:           fValue | fFlag | fA,
	TPut:             fKey | fValue,
	TTask:            fKey | fA | fB,
	TReplicate:       fRecs,
	TTransfer:        fRecs | fTasks | fA,
	TWorkloadQuery:   0,
	TWorkloadOK:      fA,
	TInvite:          fFrom | fNode | fA,
	TInviteOK:        fFlag,
	TInject:          fFrom | fNode | fA,
	THello:           fFrom | fA,
	TConsumeReport:   fFrom | fA | fB | fC | fD,
	TProgress:        0,
	TProgressOK:      fA | fB | fC | fD,
	TSyncDigest:      fKey | fKey2,
	TSyncDigestOK:    fValue | fA,
	TSyncKeys:        fKey | fKey2,
	TSyncKeysOK:      fMetas | fA,
	TSyncFetch:       fMetas,
	TSyncFetchOK:     fRecs,
	TStoreReport:     fFrom | fA | fB | fC | fD,
	TStreamReport:    fFrom | fA | fB | fC | fD,
	TStats:           0,
	TStatsOK:         fValue,
	TEvict:           fFrom,
	TAck:             fA,
	TError:           fText | fA,
}

// Fields returns the field mask for t (0 for unknown types).
func Fields(t Type) uint16 {
	if t < typeCount {
		return fieldsOf[t]
	}
	return 0
}

// Append encodes m, appending the complete frame to dst and returning
// the extended slice. It returns an error when a field exceeds its cap
// or the type is unknown; dst is returned unmodified on error.
func Append(dst []byte, m *Msg) ([]byte, error) {
	if !m.Type.Valid() {
		return dst, fmt.Errorf("%w: %d", ErrBadType, uint8(m.Type))
	}
	if err := m.check(); err != nil {
		return dst, err
	}
	base := len(dst)
	dst = append(dst, 'C', 'B', Version, byte(m.Type))
	dst = binary.BigEndian.AppendUint64(dst, m.Req)
	dst = append(dst, 0, 0, 0, 0) // payload length backpatched below
	payloadStart := len(dst)

	mask := fieldsOf[m.Type]
	if mask&fKey != 0 {
		dst = append(dst, m.Key[:]...)
	}
	if mask&fKey2 != 0 {
		dst = append(dst, m.Key2[:]...)
	}
	if mask&fFrom != 0 {
		dst = appendRef(dst, m.From)
	}
	if mask&fNode != 0 {
		dst = appendRef(dst, m.Node)
	}
	if mask&fList != 0 {
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.List)))
		for _, r := range m.List {
			dst = appendRef(dst, r)
		}
	}
	if mask&fRecs != 0 {
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.Recs)))
		for _, rec := range m.Recs {
			dst = append(dst, rec.Key[:]...)
			dst = binary.BigEndian.AppendUint64(dst, rec.Ver)
			dst = binary.BigEndian.AppendUint32(dst, uint32(len(rec.Value)))
			dst = append(dst, rec.Value...)
		}
	}
	if mask&fTasks != 0 {
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.Tasks)))
		for _, tk := range m.Tasks {
			dst = append(dst, tk.Key[:]...)
			dst = binary.BigEndian.AppendUint64(dst, tk.Units)
		}
	}
	if mask&fMetas != 0 {
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.Metas)))
		for _, mt := range m.Metas {
			dst = append(dst, mt.Key[:]...)
			dst = binary.BigEndian.AppendUint64(dst, mt.Ver)
			dst = append(dst, mt.Sum[:]...)
		}
	}
	if mask&fValue != 0 {
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Value)))
		dst = append(dst, m.Value...)
	}
	for _, on := range [4]struct {
		bit uint16
		v   uint64
	}{{fA, m.A}, {fB, m.B}, {fC, m.C}, {fD, m.D}} {
		if mask&on.bit != 0 {
			dst = binary.BigEndian.AppendUint64(dst, on.v)
		}
	}
	if mask&fFlag != 0 {
		b := byte(0)
		if m.Flag {
			b = 1
		}
		dst = append(dst, b)
	}
	if mask&fText != 0 {
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.Text)))
		dst = append(dst, m.Text...)
	}

	payload := len(dst) - payloadStart
	if payload > MaxPayload {
		return dst[:base], fmt.Errorf("%w: payload %d > %d", ErrTooLarge, payload, MaxPayload)
	}
	binary.BigEndian.PutUint32(dst[payloadStart-4:payloadStart], uint32(payload))
	return dst, nil
}

// check validates field caps before encoding.
func (m *Msg) check() error {
	switch {
	case len(m.List) > MaxListLen:
		return fmt.Errorf("%w: list %d > %d", ErrTooLarge, len(m.List), MaxListLen)
	case len(m.Recs) > MaxRecs:
		return fmt.Errorf("%w: recs %d > %d", ErrTooLarge, len(m.Recs), MaxRecs)
	case len(m.Metas) > MaxMetas:
		return fmt.Errorf("%w: metas %d > %d", ErrTooLarge, len(m.Metas), MaxMetas)
	case len(m.Tasks) > MaxTasks:
		return fmt.Errorf("%w: tasks %d > %d", ErrTooLarge, len(m.Tasks), MaxTasks)
	case len(m.Value) > MaxValueLen:
		return fmt.Errorf("%w: value %d > %d", ErrTooLarge, len(m.Value), MaxValueLen)
	case len(m.Text) > MaxTextLen:
		return fmt.Errorf("%w: text %d > %d", ErrTooLarge, len(m.Text), MaxTextLen)
	case len(m.From.Addr) > MaxAddrLen || len(m.Node.Addr) > MaxAddrLen:
		return fmt.Errorf("%w: addr > %d", ErrTooLarge, MaxAddrLen)
	}
	for _, r := range m.List {
		if len(r.Addr) > MaxAddrLen {
			return fmt.Errorf("%w: addr > %d", ErrTooLarge, MaxAddrLen)
		}
	}
	for _, rec := range m.Recs {
		if len(rec.Value) > MaxValueLen {
			return fmt.Errorf("%w: rec value %d > %d", ErrTooLarge, len(rec.Value), MaxValueLen)
		}
	}
	return nil
}

func appendRef(dst []byte, r NodeRef) []byte {
	dst = append(dst, r.ID[:]...)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(r.Addr)))
	return append(dst, r.Addr...)
}

// Encode returns m as a freshly allocated frame.
func Encode(m *Msg) ([]byte, error) {
	return Append(make([]byte, 0, HeaderLen+64), m)
}

// reader walks one payload with bounds checks; all take methods return
// ErrTruncated once the payload is exhausted.
type reader struct {
	b   []byte
	off int
}

func (r *reader) remaining() int { return len(r.b) - r.off }

func (r *reader) take(n int) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, ErrTruncated
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out, nil
}

func (r *reader) takeID() (ids.ID, error) {
	b, err := r.take(ids.Bytes)
	if err != nil {
		return ids.Zero, err
	}
	return ids.FromBytes(b), nil
}

func (r *reader) takeU16() (uint16, error) {
	b, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(b), nil
}

func (r *reader) takeU32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

func (r *reader) takeU64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}

// takeBytes reads a u32 length then that many bytes, enforcing cap.
func (r *reader) takeBytes(cap int) ([]byte, error) {
	n, err := r.takeU32()
	if err != nil {
		return nil, err
	}
	if int(n) > cap {
		return nil, fmt.Errorf("%w: bytes %d > %d", ErrTooLarge, n, cap)
	}
	b, err := r.take(int(n))
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	// Copy out of the payload buffer so decoded messages do not alias
	// the (reused) read buffer.
	return append([]byte(nil), b...), nil
}

func (r *reader) takeRef() (NodeRef, error) {
	var ref NodeRef
	var err error
	if ref.ID, err = r.takeID(); err != nil {
		return ref, err
	}
	n, err := r.takeU16()
	if err != nil {
		return ref, err
	}
	if int(n) > MaxAddrLen {
		return ref, fmt.Errorf("%w: addr %d > %d", ErrTooLarge, n, MaxAddrLen)
	}
	b, err := r.take(int(n))
	if err != nil {
		return ref, err
	}
	ref.Addr = string(b)
	return ref, nil
}

// count reads a u16 element count, enforcing both the type cap and the
// structural lower bound: count*minElemSize must fit in the remaining
// payload, so a tiny frame can never cause a large allocation.
func (r *reader) count(cap, minElemSize int) (int, error) {
	n16, err := r.takeU16()
	if err != nil {
		return 0, err
	}
	n := int(n16)
	if n > cap {
		return 0, fmt.Errorf("%w: count %d > %d", ErrTooLarge, n, cap)
	}
	if n*minElemSize > r.remaining() {
		return 0, ErrTruncated
	}
	return n, nil
}

// Decode parses one complete frame. It returns the message, the number
// of bytes consumed, and an error for any malformed input; it never
// panics and never allocates more than the frame's own length in
// aggregate element storage.
func Decode(b []byte) (*Msg, int, error) {
	if len(b) < HeaderLen {
		return nil, 0, ErrTruncated
	}
	if b[0] != 'C' || b[1] != 'B' {
		return nil, 0, ErrBadMagic
	}
	if b[2] != Version {
		return nil, 0, fmt.Errorf("%w: %d", ErrBadVersion, b[2])
	}
	t := Type(b[3])
	if !t.Valid() {
		return nil, 0, fmt.Errorf("%w: %d", ErrBadType, b[3])
	}
	plen := binary.BigEndian.Uint32(b[12:16])
	if plen > MaxPayload {
		return nil, 0, fmt.Errorf("%w: payload %d > %d", ErrTooLarge, plen, MaxPayload)
	}
	total := HeaderLen + int(plen)
	if len(b) < total {
		return nil, 0, ErrTruncated
	}
	m := &Msg{Type: t, Req: binary.BigEndian.Uint64(b[4:12])}
	r := &reader{b: b[HeaderLen:total]}
	mask := fieldsOf[t]
	var err error
	if mask&fKey != 0 {
		if m.Key, err = r.takeID(); err != nil {
			return nil, 0, err
		}
	}
	if mask&fKey2 != 0 {
		if m.Key2, err = r.takeID(); err != nil {
			return nil, 0, err
		}
	}
	if mask&fFrom != 0 {
		if m.From, err = r.takeRef(); err != nil {
			return nil, 0, err
		}
	}
	if mask&fNode != 0 {
		if m.Node, err = r.takeRef(); err != nil {
			return nil, 0, err
		}
	}
	if mask&fList != 0 {
		n, err := r.count(MaxListLen, ids.Bytes+2)
		if err != nil {
			return nil, 0, err
		}
		if n > 0 {
			m.List = make([]NodeRef, n)
			for i := range m.List {
				if m.List[i], err = r.takeRef(); err != nil {
					return nil, 0, err
				}
			}
		}
	}
	if mask&fRecs != 0 {
		n, err := r.count(MaxRecs, ids.Bytes+8+4)
		if err != nil {
			return nil, 0, err
		}
		if n > 0 {
			m.Recs = make([]Rec, n)
			for i := range m.Recs {
				if m.Recs[i].Key, err = r.takeID(); err != nil {
					return nil, 0, err
				}
				if m.Recs[i].Ver, err = r.takeU64(); err != nil {
					return nil, 0, err
				}
				if m.Recs[i].Value, err = r.takeBytes(MaxValueLen); err != nil {
					return nil, 0, err
				}
			}
		}
	}
	if mask&fTasks != 0 {
		n, err := r.count(MaxTasks, ids.Bytes+8)
		if err != nil {
			return nil, 0, err
		}
		if n > 0 {
			m.Tasks = make([]Task, n)
			for i := range m.Tasks {
				if m.Tasks[i].Key, err = r.takeID(); err != nil {
					return nil, 0, err
				}
				if m.Tasks[i].Units, err = r.takeU64(); err != nil {
					return nil, 0, err
				}
			}
		}
	}
	if mask&fMetas != 0 {
		n, err := r.count(MaxMetas, ids.Bytes+8+SumLen)
		if err != nil {
			return nil, 0, err
		}
		if n > 0 {
			m.Metas = make([]Meta, n)
			for i := range m.Metas {
				if m.Metas[i].Key, err = r.takeID(); err != nil {
					return nil, 0, err
				}
				if m.Metas[i].Ver, err = r.takeU64(); err != nil {
					return nil, 0, err
				}
				sum, err := r.take(SumLen)
				if err != nil {
					return nil, 0, err
				}
				copy(m.Metas[i].Sum[:], sum)
			}
		}
	}
	if mask&fValue != 0 {
		if m.Value, err = r.takeBytes(MaxValueLen); err != nil {
			return nil, 0, err
		}
	}
	for _, slot := range [4]struct {
		bit uint16
		p   *uint64
	}{{fA, &m.A}, {fB, &m.B}, {fC, &m.C}, {fD, &m.D}} {
		if mask&slot.bit != 0 {
			if *slot.p, err = r.takeU64(); err != nil {
				return nil, 0, err
			}
		}
	}
	if mask&fFlag != 0 {
		b, err := r.take(1)
		if err != nil {
			return nil, 0, err
		}
		if b[0] > 1 {
			return nil, 0, fmt.Errorf("wire: flag byte %d not 0/1", b[0])
		}
		m.Flag = b[0] == 1
	}
	if mask&fText != 0 {
		n, err := r.count(MaxTextLen, 1)
		if err != nil {
			return nil, 0, err
		}
		tb, err := r.take(n)
		if err != nil {
			return nil, 0, err
		}
		m.Text = string(tb)
	}
	if r.remaining() != 0 {
		return nil, 0, fmt.Errorf("%w: %d bytes", ErrTrailing, r.remaining())
	}
	return m, total, nil
}

// WriteMsg encodes m and writes the complete frame with one Write call.
// A single Write per frame is a protocol invariant: the fault-injecting
// conn wrapper in internal/netchord treats each Write as one message
// when deciding drops and duplicates.
func WriteMsg(w io.Writer, m *Msg) error {
	frame, err := Encode(m)
	if err != nil {
		return err
	}
	_, err = w.Write(frame)
	return err
}

// ReadMsg reads exactly one frame from r. It tolerates any stream
// framing (io.ReadFull on the header, then the declared payload) and
// applies the same bounds checks as Decode.
func ReadMsg(r io.Reader) (*Msg, error) {
	var hdr [HeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	plen := binary.BigEndian.Uint32(hdr[12:16])
	if plen > MaxPayload {
		return nil, fmt.Errorf("%w: payload %d > %d", ErrTooLarge, plen, MaxPayload)
	}
	frame := make([]byte, HeaderLen+int(plen))
	copy(frame, hdr[:])
	if _, err := io.ReadFull(r, frame[HeaderLen:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	m, _, err := Decode(frame)
	return m, err
}
