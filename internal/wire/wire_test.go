package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"

	"chordbalance/internal/ids"
)

// sample returns one representative message per type, with every field
// the type carries populated.
func sample(t Type) *Msg {
	ref := func(b byte, addr string) NodeRef {
		return NodeRef{ID: ids.FromBytes([]byte{b, 2, 3}), Addr: addr}
	}
	m := &Msg{Type: t, Req: 42}
	mask := Fields(t)
	if mask&fKey != 0 {
		m.Key = ids.FromUint64(77)
	}
	if mask&fKey2 != 0 {
		m.Key2 = ids.FromUint64(78)
	}
	if mask&fFrom != 0 {
		m.From = ref(1, "127.0.0.1:9001")
	}
	if mask&fNode != 0 {
		m.Node = ref(2, "pipe:7")
	}
	if mask&fList != 0 {
		m.List = []NodeRef{ref(3, "a:1"), ref(4, ""), ref(5, "b:2")}
	}
	if mask&fRecs != 0 {
		m.Recs = []Rec{
			{Key: ids.FromUint64(1), Ver: 5, Value: []byte("hello")},
			{Key: ids.FromUint64(2), Ver: 1, Value: nil},
		}
	}
	if mask&fTasks != 0 {
		m.Tasks = []Task{{Key: ids.FromUint64(9), Units: 3}, {Key: ids.FromUint64(10), Units: 1}}
	}
	if mask&fMetas != 0 {
		sum := [SumLen]byte{0: 0xaa, 31: 0xbb}
		m.Metas = []Meta{
			{Key: ids.FromUint64(5), Ver: 2, Sum: sum},
			{Key: ids.FromUint64(6), Ver: 9},
		}
	}
	if mask&fValue != 0 {
		m.Value = []byte("payload bytes")
	}
	if mask&fA != 0 {
		m.A = 11
	}
	if mask&fB != 0 {
		m.B = 22
	}
	if mask&fC != 0 {
		m.C = 33
	}
	if mask&fD != 0 {
		m.D = 44
	}
	if mask&fFlag != 0 {
		m.Flag = true
	}
	if mask&fText != 0 {
		m.Text = "no route to key"
	}
	return m
}

func TestRoundTripEveryType(t *testing.T) {
	for ty := TPing; ty < typeCount; ty++ {
		in := sample(ty)
		frame, err := Encode(in)
		if err != nil {
			t.Fatalf("%v: encode: %v", ty, err)
		}
		out, n, err := Decode(frame)
		if err != nil {
			t.Fatalf("%v: decode: %v", ty, err)
		}
		if n != len(frame) {
			t.Fatalf("%v: consumed %d of %d", ty, n, len(frame))
		}
		if !reflect.DeepEqual(in, out) {
			t.Errorf("%v: round trip mismatch\n in: %+v\nout: %+v", ty, in, out)
		}
	}
}

func TestReadWriteStream(t *testing.T) {
	var buf bytes.Buffer
	msgs := []*Msg{sample(TFindSuccessor), sample(TJoinOK), sample(TConsumeReport)}
	for _, m := range msgs {
		if err := WriteMsg(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := ReadMsg(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("stream mismatch: %+v vs %+v", want, got)
		}
	}
	if _, err := ReadMsg(&buf); err != io.EOF {
		t.Errorf("empty stream: got %v, want EOF", err)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	good, err := Encode(sample(TPut))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{"short header", func(b []byte) []byte { return b[:HeaderLen-1] }, ErrTruncated},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, ErrBadMagic},
		{"bad version", func(b []byte) []byte { b[2] = 9; return b }, ErrBadVersion},
		{"bad type", func(b []byte) []byte { b[3] = 250; return b }, ErrBadType},
		{"zero type", func(b []byte) []byte { b[3] = 0; return b }, ErrBadType},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-1] }, ErrTruncated},
		{"oversized declared payload", func(b []byte) []byte {
			b[12], b[13], b[14], b[15] = 0xff, 0xff, 0xff, 0xff
			return b
		}, ErrTooLarge},
		{"trailing bytes", func(b []byte) []byte {
			b = append(b, 0)
			b[15]++ // declared payload covers the junk byte
			return b
		}, ErrTrailing},
	}
	for _, tc := range cases {
		b := append([]byte(nil), good...)
		b = tc.mutate(b)
		if _, _, err := Decode(b); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestDecodeBoundsListCount(t *testing.T) {
	// A TSuccListOK frame declaring 60000 refs in a 4-byte payload must
	// fail as truncated without allocating the declared list.
	m := &Msg{Type: TSuccListOK, Req: 1}
	frame, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	frame[HeaderLen] = 0xea // count = 0xea60 = 60000
	frame[HeaderLen+1] = 0x60
	if _, _, err := Decode(frame); err == nil {
		t.Fatal("oversized list count accepted")
	}
}

func TestEncodeRejectsOversizedFields(t *testing.T) {
	cases := []*Msg{
		{Type: TPut, Value: make([]byte, MaxValueLen+1)},
		{Type: TError, Text: strings.Repeat("x", MaxTextLen+1)},
		{Type: TNotify, From: NodeRef{Addr: strings.Repeat("a", MaxAddrLen+1)}},
		{Type: TSuccListOK, List: make([]NodeRef, MaxListLen+1)},
		{Type: TReplicate, Recs: make([]Rec, MaxRecs+1)},
		{Type: TSyncKeysOK, Metas: make([]Meta, MaxMetas+1)},
		{Type: TTransfer, Tasks: make([]Task, MaxTasks+1)},
	}
	for _, m := range cases {
		if _, err := Encode(m); !errors.Is(err, ErrTooLarge) {
			t.Errorf("%v: got %v, want ErrTooLarge", m.Type, err)
		}
	}
	if _, err := Encode(&Msg{Type: typeCount}); !errors.Is(err, ErrBadType) {
		t.Errorf("invalid type: got %v, want ErrBadType", err)
	}
}

func TestUnmaskedFieldsAreNotEncoded(t *testing.T) {
	// TPing carries no fields: junk in the struct must not leak onto the
	// wire, so the round trip normalizes to the empty message.
	in := &Msg{Type: TPing, Req: 7, Key: ids.FromUint64(1), Text: "junk", A: 9}
	frame, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) != HeaderLen {
		t.Fatalf("TPing frame %d bytes, want bare header", len(frame))
	}
	out, _, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	want := &Msg{Type: TPing, Req: 7}
	if !reflect.DeepEqual(out, want) {
		t.Errorf("junk leaked through: %+v", out)
	}
}

func TestTypeString(t *testing.T) {
	if got := TFindSuccessor.String(); got != "find_successor" {
		t.Errorf("TFindSuccessor.String() = %q", got)
	}
	if got := Type(200).String(); got != "type(200)" {
		t.Errorf("unknown type String() = %q", got)
	}
}
