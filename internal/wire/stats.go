package wire

import (
	"encoding/binary"
	"fmt"
)

// Stats is the collector's full cluster view as it travels in a
// TStatsOK reply. TProgressOK predates the storage and streaming
// layers and its four numeric slots cannot grow, so the complete
// statistics ride as one fixed-layout blob in the Value field:
//
//	offset  size  field
//	0       1     stats layout version (StatsVersion)
//	1       16*8  the uint64 fields below, big endian, in struct order
//
// The layout is versioned independently of the frame format: adding a
// field appends eight bytes and bumps StatsVersion, and DecodeStats
// rejects versions it does not know, so a mixed-version cluster fails
// loudly instead of misreading counters.
type Stats struct {
	// Hosts is how many hosts have said hello.
	Hosts uint64
	// Consumed is the summed cumulative task units consumed.
	Consumed uint64
	// Residual is the summed residual task units.
	Residual uint64
	// BusyTicks is the busy interval of the slowest host.
	BusyTicks uint64
	// Capacity is the summed per-tick consume capacity.
	Capacity uint64
	// Injections counts Sybil births reported.
	Injections uint64
	// InjectedUnits sums the task units Sybils acquired at birth.
	InjectedUnits uint64
	// Reports counts consume reports received.
	Reports uint64
	// StoreAcked is the summed durably acknowledged owner writes.
	StoreAcked uint64
	// AntiEntropyRounds is the summed anti-entropy passes started.
	AntiEntropyRounds uint64
	// AntiEntropyRepairs is the summed records repaired by anti-entropy.
	AntiEntropyRepairs uint64
	// AntiEntropyBytes is the summed value bytes anti-entropy moved.
	AntiEntropyBytes uint64
	// StreamChunks is the summed chunks delivered to streaming viewers.
	StreamChunks uint64
	// StreamDeadlineMiss is the summed chunk deadline misses.
	StreamDeadlineMiss uint64
	// StreamRebuffers is the summed viewer rebuffer events.
	StreamRebuffers uint64
	// StreamBytes is the summed value bytes delivered to viewers.
	StreamBytes uint64
}

// StatsVersion is the current Stats blob layout version.
const StatsVersion = 1

// statsFields is the number of uint64 fields in the version-1 layout.
const statsFields = 16

// StatsLen is the encoded length of a version-1 Stats blob.
const StatsLen = 1 + statsFields*8

// fieldList returns pointers to the blob's fields in layout order.
func (s *Stats) fieldList() [statsFields]*uint64 {
	return [statsFields]*uint64{
		&s.Hosts, &s.Consumed, &s.Residual, &s.BusyTicks,
		&s.Capacity, &s.Injections, &s.InjectedUnits, &s.Reports,
		&s.StoreAcked, &s.AntiEntropyRounds, &s.AntiEntropyRepairs, &s.AntiEntropyBytes,
		&s.StreamChunks, &s.StreamDeadlineMiss, &s.StreamRebuffers, &s.StreamBytes,
	}
}

// AppendStats encodes s, appending the versioned blob to dst.
func AppendStats(dst []byte, s *Stats) []byte {
	dst = append(dst, StatsVersion)
	for _, f := range s.fieldList() {
		dst = binary.BigEndian.AppendUint64(dst, *f)
	}
	return dst
}

// DecodeStats parses a blob produced by AppendStats. Like the frame
// decoder it never panics: a wrong version or length is an error.
func DecodeStats(b []byte) (Stats, error) {
	var s Stats
	if len(b) < 1 {
		return s, fmt.Errorf("%w: empty stats blob", ErrTruncated)
	}
	if b[0] != StatsVersion {
		return s, fmt.Errorf("%w: stats layout %d", ErrBadVersion, b[0])
	}
	if len(b) != StatsLen {
		return s, fmt.Errorf("%w: stats blob %d bytes, want %d", ErrTruncated, len(b), StatsLen)
	}
	off := 1
	for _, f := range s.fieldList() {
		*f = binary.BigEndian.Uint64(b[off : off+8])
		off += 8
	}
	return s, nil
}
