package wire

import (
	"errors"
	"testing"
)

func TestStatsRoundTrip(t *testing.T) {
	in := Stats{
		Hosts: 1, Consumed: 2, Residual: 3, BusyTicks: 4,
		Capacity: 5, Injections: 6, InjectedUnits: 7, Reports: 8,
		StoreAcked: 9, AntiEntropyRounds: 10, AntiEntropyRepairs: 11, AntiEntropyBytes: 12,
		StreamChunks: 13, StreamDeadlineMiss: 14, StreamRebuffers: 15, StreamBytes: 16,
	}
	blob := AppendStats(nil, &in)
	if len(blob) != StatsLen {
		t.Fatalf("blob length %d, want %d", len(blob), StatsLen)
	}
	out, err := DecodeStats(blob)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestStatsRoundTripThroughMsg(t *testing.T) {
	in := Stats{Hosts: 12, Consumed: 1 << 40, StreamChunks: 1_000_000, StreamBytes: 1 << 50}
	frame, err := Encode(&Msg{Type: TStatsOK, Req: 7, Value: AppendStats(nil, &in)})
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeStats(m.Value)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip through TStatsOK mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestDecodeStatsRejectsMalformed(t *testing.T) {
	if _, err := DecodeStats(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("empty blob: err = %v, want ErrTruncated", err)
	}
	blob := AppendStats(nil, &Stats{Hosts: 3})
	if _, err := DecodeStats(blob[:len(blob)-1]); !errors.Is(err, ErrTruncated) {
		t.Errorf("short blob: err = %v, want ErrTruncated", err)
	}
	if _, err := DecodeStats(append(blob, 0)); !errors.Is(err, ErrTruncated) {
		t.Errorf("long blob: err = %v, want ErrTruncated", err)
	}
	bad := append([]byte(nil), blob...)
	bad[0] = StatsVersion + 1
	if _, err := DecodeStats(bad); !errors.Is(err, ErrBadVersion) {
		t.Errorf("future layout: err = %v, want ErrBadVersion", err)
	}
}
