package chord

import (
	"errors"
	"fmt"
	"testing"

	"chordbalance/internal/faults"
	"chordbalance/internal/ids"
	"chordbalance/internal/keys"
)

func mustInjector(t testing.TB, p faults.Plan) *faults.Injector {
	t.Helper()
	inj, err := faults.New(p)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

// TestDeadSuccessorDropPath pins the successor-list failover that every
// repair metric depends on: when the working successor and the next
// backup both crash, the node must route to the first surviving backup
// and prune the dead entries from its list.
func TestDeadSuccessorDropPath(t *testing.T) {
	nw := buildRing(t, 24, 5)
	alive := nw.AliveIDs()
	n := nw.nodes[alive[0]]
	list := n.SuccessorList()
	if len(list) < 3 {
		t.Fatalf("successor list too short to test: %v", list)
	}
	// Kill the working successor and the mid-list backup behind it.
	nw.Kill(list[0])
	nw.Kill(list[1])
	succ := n.firstLiveSuccessor()
	if succ == nil {
		t.Fatal("no live successor found despite surviving backups")
	}
	if succ.id != list[2] {
		t.Errorf("failover chose %s, want backup %s", succ.id.Short(), list[2].Short())
	}
	for _, dead := range list[:2] {
		for _, s := range n.SuccessorList() {
			if s == dead {
				t.Errorf("dead successor %s not pruned from list %v", dead.Short(), n.SuccessorList())
			}
		}
	}
	// The drop path must leave the node routable: a lookup through it
	// still resolves.
	if _, _, err := n.Lookup(list[2]); err != nil {
		t.Errorf("lookup after failover: %v", err)
	}
}

// TestZeroPlanTransportInert proves the fault layer is inert when
// disabled: an overlay with a zero-plan injector produces byte-identical
// message accounting to one with no injector at all.
func TestZeroPlanTransportInert(t *testing.T) {
	build := func(inj *faults.Injector) map[string]int {
		nw := NewNetwork(Config{})
		nw.SetFaultInjector(inj)
		g := keys.NewGenerator(11)
		first, err := nw.Create(g.Next())
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < 16; i++ {
			if _, err := nw.Join(g.Next(), first); err != nil {
				t.Fatal(err)
			}
			nw.StabilizeAll()
		}
		kg := keys.NewGenerator(99)
		for i := 0; i < 40; i++ {
			if err := first.Put(kg.Next(), fmt.Sprintf("v%d", i)); err != nil {
				t.Fatal(err)
			}
		}
		nw.StabilizeAll()
		return nw.Messages()
	}
	bare := build(nil)
	zero := build(mustInjector(t, faults.Plan{Seed: 123}))
	if fmt.Sprint(bare) != fmt.Sprint(zero) {
		t.Errorf("zero plan changed message accounting:\n bare: %v\n zero: %v", bare, zero)
	}
}

// TestLossyLookupRetries drives lookups over a 30%-loss transport and
// checks that retries absorb the loss, backoff is accounted, and the
// whole schedule is a pure function of the plan seed.
func TestLossyLookupRetries(t *testing.T) {
	run := func() (TransportStats, int) {
		nw := buildRing(t, 32, 7)
		nw.SetFaultInjector(mustInjector(t, faults.Plan{Seed: 21, DropRate: 0.3}))
		before := nw.TransportStats()
		g := keys.NewGenerator(5)
		start := nw.nodes[nw.AliveIDs()[0]]
		okCount := 0
		for i := 0; i < 60; i++ {
			if _, _, err := start.Lookup(g.Next()); err == nil {
				okCount++
			}
		}
		st := nw.TransportStats()
		st.Lookups -= before.Lookups // ring construction counts too
		st.LookupFailures -= before.LookupFailures
		return st, okCount
	}
	st, ok := run()
	if st.Drops == 0 || st.Retries == 0 {
		t.Fatalf("30%% loss produced no drops/retries: %+v", st)
	}
	if st.BackoffTicks == 0 {
		t.Error("retries accounted no backoff ticks")
	}
	if ok == 0 {
		t.Error("every lookup failed despite a 3-retry budget over 30% loss")
	}
	if st.Lookups != 60 {
		t.Errorf("lookup attempts = %d, want 60", st.Lookups)
	}
	st2, ok2 := run()
	if st != st2 || ok != ok2 {
		t.Errorf("same seed, different transport outcome:\n %+v (%d ok)\n %+v (%d ok)", st, ok, st2, ok2)
	}
}

// TestTotalLossTimesOut: with DropRate 1 every RPC exhausts its retry
// budget and surfaces ErrTimeout.
func TestTotalLossTimesOut(t *testing.T) {
	nw := buildRing(t, 16, 3)
	nw.SetFaultInjector(mustInjector(t, faults.Plan{Seed: 1, DropRate: 1, MaxRetries: 2}))
	before := nw.TransportStats()
	start := nw.nodes[nw.AliveIDs()[0]]
	// A key owned by a remote node forces at least one hop.
	target := nw.AliveIDs()[8]
	_, _, err := start.Lookup(target)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("lookup error = %v, want ErrTimeout", err)
	}
	st := nw.TransportStats()
	if st.Timeouts == 0 {
		t.Error("no timeouts recorded")
	}
	// Each timed-out send is 1 original + MaxRetries retransmissions.
	if st.Retries != st.Timeouts*2 {
		t.Errorf("retries = %d, want 2 per timeout (%d timeouts)", st.Retries, st.Timeouts)
	}
	// Every lookup attempted under total loss failed (earlier fault-free
	// lookups from ring construction are excluded via the delta).
	if got, want := st.LookupFailures-before.LookupFailures, st.Lookups-before.Lookups; got != want {
		t.Errorf("lookup failures = %d, want every attempt (%d) to fail", got, want)
	}
}

// TestPartitionBlocksThenHeals: a forced two-sided partition makes
// cross-cut traffic fail without evicting anyone; healing restores full
// service with no merge protocol.
func TestPartitionBlocksThenHeals(t *testing.T) {
	nw := buildRing(t, 32, 9)
	inj := mustInjector(t, faults.Plan{Seed: 4})
	nw.SetFaultInjector(inj)
	// Store keys across the whole space first.
	start := nw.nodes[nw.AliveIDs()[0]]
	kg := keys.NewGenerator(77)
	stored := make([]ids.ID, 0, 30)
	for i := 0; i < 30; i++ {
		k := kg.Next()
		if err := start.Put(k, "v"); err != nil {
			t.Fatal(err)
		}
		stored = append(stored, k)
	}
	if err := inj.ForcePartition(0.5); err != nil {
		t.Fatal(err)
	}
	failures := 0
	for _, k := range stored {
		if _, err := start.Get(k); err != nil {
			failures++
		}
	}
	if failures == 0 {
		t.Fatal("no gets failed under a half-space partition")
	}
	if nw.TransportStats().PartitionRefusals == 0 {
		t.Error("no partition refusals recorded")
	}
	// Maintenance under partition must not destroy the ring: suspected
	// peers are skipped, not evicted.
	for i := 0; i < 8; i++ {
		nw.StabilizeAll()
	}
	inj.Heal()
	if _, ok := nw.StabilizeUntilConverged(64); !ok {
		t.Fatalf("ring did not reconverge after heal: %v", nw.VerifyRing())
	}
	for _, k := range stored {
		if _, err := start.Get(k); err != nil {
			t.Errorf("get %s after heal: %v", k.Short(), err)
		}
	}
}

// TestFailureWaveReplicationSavesKeys is the acceptance check at protocol
// level: with default replication a modest crash wave loses nothing and
// repairs in finite time; with replication disabled the same wave loses
// keys.
func TestFailureWaveReplicationSavesKeys(t *testing.T) {
	wave := func(replicas int) RepairReport {
		nw := NewNetwork(Config{Replicas: replicas})
		g := keys.NewGenerator(13)
		first, err := nw.Create(g.Next())
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < 40; i++ {
			if _, err := nw.Join(g.Next(), first); err != nil {
				t.Fatal(err)
			}
			nw.StabilizeAll()
		}
		if _, ok := nw.StabilizeUntilConverged(200); !ok {
			t.Fatal("ring did not converge")
		}
		nw.FixAllFingers()
		kg := keys.NewGenerator(55)
		for i := 0; i < 120; i++ {
			if err := first.Put(kg.Next(), fmt.Sprintf("v%d", i)); err != nil {
				t.Fatal(err)
			}
		}
		// Let replica repair settle, then crash every third node.
		nw.StabilizeAll()
		alive := nw.AliveIDs()
		var victims []ids.ID
		for i := 1; i < len(alive); i += 3 {
			victims = append(victims, alive[i])
		}
		return nw.FailureWave(victims, 400)
	}

	rep := wave(0) // default: 3 replicas
	if !rep.Converged {
		t.Fatalf("replicated overlay did not repair: %+v", rep)
	}
	if rep.Rounds <= 0 {
		t.Errorf("time-to-repair = %d rounds, want finite positive", rep.Rounds)
	}
	if rep.KeysLost != 0 || rep.ProbeFailures != 0 {
		t.Errorf("replication lost keys: %+v", rep)
	}
	if rep.KeysRecovered != rep.KeysTracked {
		t.Errorf("recovered %d of %d tracked keys", rep.KeysRecovered, rep.KeysTracked)
	}

	unrep := wave(-1) // replication disabled
	if unrep.KeysLost == 0 {
		t.Errorf("no replication but zero keys lost: %+v", unrep)
	}
	if unrep.KeysLost+unrep.KeysRecovered+unrep.ProbeFailures != unrep.KeysTracked {
		t.Errorf("audit does not partition tracked keys: %+v", unrep)
	}
}

// TestRunChaosDeterministic: the multi-tick chaos driver is a pure
// function of (overlay seed, fault plan).
func TestRunChaosDeterministic(t *testing.T) {
	run := func() ChaosReport {
		nw := buildRing(t, 24, 17)
		nw.FixAllFingers()
		kg := keys.NewGenerator(31)
		start := nw.nodes[nw.AliveIDs()[0]]
		for i := 0; i < 50; i++ {
			if err := start.Put(kg.Next(), "v"); err != nil {
				t.Fatal(err)
			}
		}
		nw.SetFaultInjector(mustInjector(t, faults.Plan{
			Seed: 6, CrashRate: 0.01, BurstEvery: 10, BurstSize: 2, DropRate: 0.05,
		}))
		return nw.RunChaos(40, 300)
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same plan, different chaos outcome:\n %+v\n %+v", a, b)
	}
	if a.Crashed == 0 || a.Waves == 0 {
		t.Fatalf("chaos run crashed nothing: %+v", a)
	}
	if a.MeanTimeToRepair() <= 0 {
		t.Errorf("mean time-to-repair = %v, want positive", a.MeanTimeToRepair())
	}
	if a.KeysTracked != 50 {
		t.Errorf("tracked keys = %d, want 50", a.KeysTracked)
	}
	// Default replication should carry most keys through this gentle
	// chaos; assert the audit at least accounts for every key.
	if a.KeysLost+a.KeysRecovered+a.ProbeFailures != a.KeysTracked {
		t.Errorf("audit does not partition tracked keys: %+v", a)
	}
}
