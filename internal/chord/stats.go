package chord

import (
	"fmt"
	"strings"

	"chordbalance/internal/ids"
)

// LookupTrace records the route one lookup took through the overlay.
type LookupTrace struct {
	Key   ids.ID
	Owner ids.ID
	// Path lists the node IDs visited, starting at the initiator and
	// ending at the owner's predecessor-side hop; len(Path)-1 == hops.
	Path []ids.ID
}

// String renders the trace as "a1b2c3d4 -> 5e6f7a8b -> ... => owner".
func (tr LookupTrace) String() string {
	var b strings.Builder
	for i, id := range tr.Path {
		if i > 0 {
			b.WriteString(" -> ")
		}
		b.WriteString(id.Short())
	}
	fmt.Fprintf(&b, " => %s", tr.Owner.Short())
	return b.String()
}

// LookupTraced is Lookup with the route recorded — for debugging overlays
// and for teaching, via cmd/chordnet's trace command.
func (n *Node) LookupTraced(key ids.ID) (LookupTrace, error) {
	tr, err := n.lookupTraced(key)
	n.nw.tstats.Lookups++
	if err != nil {
		n.nw.tstats.LookupFailures++
	}
	return tr, err
}

func (n *Node) lookupTraced(key ids.ID) (LookupTrace, error) {
	tr := LookupTrace{Key: key}
	if !n.alive {
		return tr, ErrDead
	}
	cur := n
	for hops := 0; hops <= n.nw.cfg.MaxHops; hops++ {
		tr.Path = append(tr.Path, cur.id)
		succ := cur.firstLiveSuccessor()
		if succ == nil {
			if cur.alive && len(cur.nw.AliveIDs()) == 1 {
				tr.Owner = cur.id
				return tr, nil
			}
			return tr, ErrIsolated
		}
		if ids.BetweenRightIncl(key, cur.id, succ.id) {
			tr.Owner = succ.id
			return tr, nil
		}
		next := cur.closestPreceding(key)
		if next == cur {
			next = succ
		}
		if err := n.nw.send("lookup", cur.id, next.id, false); err != nil {
			return tr, err
		}
		cur = next
	}
	return tr, ErrNoRoute
}

// OverlayStats summarizes the overlay's health.
type OverlayStats struct {
	AliveNodes int
	DeadNodes  int
	// TotalKeys counts stored entries including replicas.
	TotalKeys int
	// PrimaryKeys counts entries owned by their holder (in (pred, id]).
	PrimaryKeys int
	// MeanReplication is TotalKeys/PrimaryKeys: ~1+Replicas when repair
	// has caught up.
	MeanReplication float64
	// RingConsistent is true when VerifyRing passes.
	RingConsistent bool
	Messages       int
}

// Stats computes an OverlayStats snapshot.
func (nw *Network) Stats() OverlayStats {
	var s OverlayStats
	for _, n := range nw.nodes {
		if !n.alive {
			s.DeadNodes++
			continue
		}
		s.AliveNodes++
		s.TotalKeys += len(n.data)
		if n.hasPred {
			for k := range n.data {
				if ids.BetweenRightIncl(k, n.pred, n.id) {
					s.PrimaryKeys++
				}
			}
		}
	}
	if s.PrimaryKeys > 0 {
		s.MeanReplication = float64(s.TotalKeys) / float64(s.PrimaryKeys)
	}
	s.RingConsistent = nw.VerifyRing() == nil
	s.Messages = nw.TotalMessages()
	return s
}

// KeyDistribution returns how many primary keys each live node owns, in
// ring order — the protocol-level counterpart of Table I.
func (nw *Network) KeyDistribution() []int {
	alive := nw.AliveIDs()
	out := make([]int, len(alive))
	for i, id := range alive {
		n := nw.nodes[id]
		pred := alive[(i+len(alive)-1)%len(alive)]
		for k := range n.data {
			if len(alive) == 1 || ids.BetweenRightIncl(k, pred, id) {
				out[i]++
			}
		}
	}
	return out
}
