package chord

// Per-tick observability for the real-protocol overlay
// (docs/OBSERVABILITY.md). SetTracer attaches an obs.Tracer; every
// AdvanceTick then emits one JSONL tick record mirroring the overlay's
// message accounting, the transport fault layer (drops, retries,
// backoff, timeouts), and the repair instrumentation's cumulative key
// audit. Like the sim tracer, everything here is read-only and consumes
// no randomness, so a traced chaos run is byte-identical to the same
// seed untraced.

import (
	"sort"

	"chordbalance/internal/obs"
)

// chordMetrics holds the overlay's registered metric handles; nil when
// tracing is disabled.
type chordMetrics struct {
	t *obs.Tracer

	// Per-tick overlay shape.
	nodesAlive *obs.Gauge
	keysStored *obs.Gauge

	// Cumulative protocol messages, total plus per kind (created on
	// demand, iterated via a sorted cache).
	msgsTotal *obs.Counter
	msgsKind  map[string]*obs.Counter
	kindCache []string

	// Transport fault layer (mirrors TransportStats).
	sends      *obs.Counter
	drops      *obs.Counter
	retries    *obs.Counter
	duplicates *obs.Counter
	timeouts   *obs.Counter
	backoff    *obs.Counter
	delay      *obs.Counter
	refusals   *obs.Counter
	lookups    *obs.Counter
	lkFailures *obs.Counter
	lkSuccess  *obs.Gauge

	// Repair instrumentation (accumulated across FailureWave calls).
	waves        *obs.Counter
	killed       *obs.Counter
	repairRounds *obs.Counter
	unconverged  *obs.Counter
	keysRec      *obs.Counter
	keysLost     *obs.Counter
	probeFails   *obs.Counter
}

// SetTracer attaches (or, with nil, detaches) a tracer to the overlay.
// Attaching registers the metric catalog and writes the trace header
// (meta + schema); from then on every AdvanceTick emits one tick record
// describing the tick that just finished (so the first AdvanceTick
// emits the tick-0 initial state), and FlushTrace captures the final
// tick. With no tracer attached none of this code runs and the overlay
// behaves exactly as before.
func (nw *Network) SetTracer(t *obs.Tracer) {
	if t == nil {
		nw.obsm = nil
		return
	}
	reg := t.Registry()
	m := &chordMetrics{
		t: t,

		nodesAlive: reg.Gauge("chord.nodes.alive", "nodes", "live nodes in the overlay"),
		keysStored: reg.Gauge("chord.keys.tracked", "keys", "distinct keys ever stored via Put"),

		msgsTotal: reg.Counter("chord.msgs.total", "msgs", "protocol messages of every kind"),
		msgsKind:  make(map[string]*obs.Counter),

		sends:      reg.Counter("chord.rpc.sends", "msgs", "RPC first transmissions through the fault layer"),
		drops:      reg.Counter("chord.rpc.drops", "msgs", "transmissions lost (including retries)"),
		retries:    reg.Counter("chord.rpc.retries", "msgs", "re-transmissions after a drop"),
		duplicates: reg.Counter("chord.rpc.duplicates", "msgs", "spurious duplicate deliveries"),
		timeouts:   reg.Counter("chord.rpc.timeouts", "rpcs", "RPCs abandoned after the retry budget"),
		backoff:    reg.Counter("chord.rpc.backoff_ticks", "ticks", "deterministic exponential backoff spent between retries"),
		delay:      reg.Counter("chord.rpc.delay_ticks", "ticks", "in-flight delay imposed on delivered messages"),
		refusals:   reg.Counter("chord.rpc.partition_refusals", "msgs", "sends blocked by an active partition"),
		lookups:    reg.Counter("chord.rpc.lookups", "lookups", "end-to-end lookup attempts"),
		lkFailures: reg.Counter("chord.rpc.lookup_failures", "lookups", "lookups that did not resolve"),
		lkSuccess:  reg.Gauge("chord.rpc.lookup_success", "", "fraction of lookups that resolved (1 when none attempted)"),

		waves:        reg.Counter("chord.repair.waves", "waves", "failure waves repaired via FailureWave"),
		killed:       reg.Counter("chord.repair.killed", "nodes", "nodes crashed by failure waves"),
		repairRounds: reg.Counter("chord.repair.rounds", "rounds", "maintenance rounds spent repairing failure waves"),
		unconverged:  reg.Counter("chord.repair.unconverged", "waves", "waves still inconsistent after the round budget"),
		keysRec:      reg.Counter("chord.repair.keys_recovered", "keys", "post-repair probes that found their key"),
		keysLost:     reg.Counter("chord.repair.keys_lost", "keys", "post-repair probes whose key was gone"),
		probeFails:   reg.Counter("chord.repair.probe_failures", "keys", "post-repair probes that did not resolve at all"),
	}
	nw.obsm = m
	cfg := nw.cfg
	t.EmitMeta(
		obs.F{K: "source", V: "chord"},
		obs.F{K: "successors", V: cfg.SuccessorListLen},
		obs.F{K: "replicas", V: cfg.Replicas},
		obs.F{K: "faults", V: nw.faults != nil},
	)
	t.EmitSchema()
}

// FlushTrace emits a tick record for the overlay's current tick without
// advancing the clock — the end-of-run capture that AdvanceTick (which
// records the *previous* tick) would otherwise never write. No-op when
// no tracer is attached.
func (nw *Network) FlushTrace() {
	if nw.obsm != nil {
		nw.obsm.observe(nw)
	}
}

// observe gathers the overlay's current counters and emits one tick
// record. Read-only: counting live nodes is a commutative reduction over
// the node map, and the per-kind message iteration follows a sorted
// cached kind list, never map order.
func (m *chordMetrics) observe(nw *Network) {
	alive := 0
	for _, n := range nw.nodes {
		if n.alive {
			alive++
		}
	}
	m.nodesAlive.SetInt(int64(alive))
	m.keysStored.SetInt(int64(len(nw.registry)))
	m.msgsTotal.Set(int64(nw.TotalMessages()))

	if len(nw.msgs) != len(m.kindCache) {
		kinds := m.kindCache[:0]
		for kind := range nw.msgs {
			kinds = append(kinds, kind)
		}
		sort.Strings(kinds)
		m.kindCache = kinds
	}
	for _, kind := range m.kindCache {
		c, ok := m.msgsKind[kind]
		if !ok {
			c = m.t.Registry().Counter("chord.msgs."+kind, "msgs",
				"protocol messages of kind "+kind)
			m.msgsKind[kind] = c
		}
		c.Set(int64(nw.msgs[kind]))
	}

	ts := nw.tstats
	m.sends.Set(int64(ts.Sends))
	m.drops.Set(int64(ts.Drops))
	m.retries.Set(int64(ts.Retries))
	m.duplicates.Set(int64(ts.Duplicates))
	m.timeouts.Set(int64(ts.Timeouts))
	m.backoff.Set(int64(ts.BackoffTicks))
	m.delay.Set(int64(ts.DelayTicks))
	m.refusals.Set(int64(ts.PartitionRefusals))
	m.lookups.Set(int64(ts.Lookups))
	m.lkFailures.Set(int64(ts.LookupFailures))
	m.lkSuccess.Set(ts.LookupSuccessRate())

	m.t.EmitTick(nw.tick)
}

// recordWave folds one failure wave's shape into the cumulative repair
// counters; it surfaces in the next tick record. Used by both
// FailureWave and RunChaos's inline wave handling.
func (m *chordMetrics) recordWave(killed, rounds int, converged bool) {
	m.waves.Add(1)
	m.killed.Add(int64(killed))
	m.repairRounds.Add(int64(rounds))
	if !converged {
		m.unconverged.Add(1)
	}
}

// recordAudit publishes the latest key-audit outcome (FailureWave's
// per-wave probe, or RunChaos's final audit).
func (m *chordMetrics) recordAudit(recovered, lost, probeFailures int) {
	m.keysRec.Set(int64(recovered))
	m.keysLost.Set(int64(lost))
	m.probeFails.Set(int64(probeFailures))
}

// recordRepair folds one FailureWave report into the repair counters.
func (m *chordMetrics) recordRepair(rep RepairReport) {
	m.recordWave(rep.Killed, rep.Rounds, rep.Converged)
	m.recordAudit(rep.KeysRecovered, rep.KeysLost, rep.ProbeFailures)
}
