package chord

import (
	"chordbalance/internal/ids"
)

// Node is one Chord participant.
type Node struct {
	nw    *Network
	id    ids.ID
	alive bool

	// pred is the predecessor pointer maintained by notify; hasPred is
	// false until the first notify arrives.
	pred    ids.ID
	hasPred bool

	// succList is the r-entry successor list, nearest first. Entry 0 is
	// the working successor.
	succList []ids.ID

	// fingers[i] caches successor(id + 2^i); entries start unset (Zero
	// means "fall back to the successor").
	fingers    [ids.Bits]ids.ID
	nextFinger int

	// data holds every key/value this node stores, primary or replica;
	// responsibility is implied by ring position.
	data map[ids.ID]string
}

func newNode(nw *Network, id ids.ID) *Node {
	return &Node{nw: nw, id: id, alive: true, data: make(map[ids.ID]string)}
}

// ID returns the node's ring identifier.
func (n *Node) ID() ids.ID { return n.id }

// Alive reports whether the node is up.
func (n *Node) Alive() bool { return n.alive }

// Successor returns the node's working successor ID.
func (n *Node) Successor() ids.ID {
	if len(n.succList) == 0 {
		return n.id
	}
	return n.succList[0]
}

// SuccessorList returns a copy of the successor list.
func (n *Node) SuccessorList() []ids.ID {
	return append([]ids.ID(nil), n.succList...)
}

// Predecessor returns the predecessor pointer and whether it is set.
func (n *Node) Predecessor() (ids.ID, bool) { return n.pred, n.hasPred }

// KeyCount returns how many keys (primary + replica) the node stores.
func (n *Node) KeyCount() int { return len(n.data) }

// remote models an RPC to another node: the message goes through the
// fault-checking transport (drop/retry/backoff, partitions), and a dead
// callee fails the way a timeout would.
func (n *Node) remote(to ids.ID, kind string) (*Node, error) {
	if err := n.nw.send(kind, n.id, to, false); err != nil {
		return nil, err
	}
	t := n.nw.nodes[to]
	if t == nil || !t.alive {
		return nil, ErrDead
	}
	return t, nil
}

// firstLiveSuccessor walks the successor list past dead entries, pruning
// them, and returns the first live successor node (nil if none).
func (n *Node) firstLiveSuccessor() *Node {
	for len(n.succList) > 0 {
		t := n.nw.nodes[n.succList[0]]
		if t != nil && t.alive {
			return t
		}
		// Dead: drop and try the next backup (this is exactly what the
		// successor list exists for).
		n.succList = n.succList[1:]
	}
	return nil
}

// closestPreceding returns the live finger or successor-list entry that
// most closely precedes key, or n itself if none does.
func (n *Node) closestPreceding(key ids.ID) *Node {
	// Scan fingers from the farthest down, as in the Chord paper, but
	// skip entries that are unset or dead.
	for i := ids.Bits - 1; i >= 0; i-- {
		f := n.fingers[i]
		if f == ids.Zero || f == n.id {
			continue
		}
		if !ids.Between(f, n.id, key) {
			continue
		}
		t := n.nw.nodes[f]
		if t != nil && t.alive {
			return t
		}
		n.fingers[i] = ids.Zero // prune the dead finger
	}
	// Fall back on the successor list.
	var best *Node
	for _, s := range n.succList {
		if !ids.Between(s, n.id, key) {
			continue
		}
		t := n.nw.nodes[s]
		if t != nil && t.alive {
			best = t // entries are nearest-first; the last match is closest
		}
	}
	if best != nil {
		return best
	}
	return n
}

// Lookup finds the live node responsible for key using iterative routing.
// It returns the owner and the number of routing hops taken. Every hop is
// one RPC through the fault-checking transport: under message loss a hop
// is retried with exponential backoff, and a lookup whose next hop is
// unreachable (timed out or partitioned away) fails the whole query —
// exactly the availability cost the repair metrics measure.
func (n *Node) Lookup(key ids.ID) (*Node, int, error) {
	owner, hops, err := n.lookupIterative(key)
	n.nw.tstats.Lookups++
	if err != nil {
		n.nw.tstats.LookupFailures++
	}
	return owner, hops, err
}

func (n *Node) lookupIterative(key ids.ID) (*Node, int, error) {
	if !n.alive {
		return nil, 0, ErrDead
	}
	cur := n
	hops := 0
	for hops <= n.nw.cfg.MaxHops {
		succ := cur.firstLiveSuccessor()
		if succ == nil {
			if cur.alive && len(cur.nw.AliveIDs()) == 1 {
				return cur, hops, nil // alone on the ring
			}
			return nil, hops, ErrIsolated
		}
		if ids.BetweenRightIncl(key, cur.id, succ.id) {
			return succ, hops, nil
		}
		next := cur.closestPreceding(key)
		if next == cur {
			// No finger advances us; step to the successor.
			next = succ
		}
		if err := n.nw.send("lookup", cur.id, next.id, true); err != nil {
			return nil, hops, err
		}
		hops++
		cur = next
	}
	return nil, hops, ErrNoRoute
}

// LookupRecursive resolves key with recursive routing: each hop forwards
// the query onward instead of answering back to the initiator. Recursive
// routing needs the same number of forwarding hops but only one return
// message, so deployments with high per-message latency prefer it; the
// iterative Lookup is easier to make robust. Both are provided so the
// trade-off is measurable (messages are charged per forward).
func (n *Node) LookupRecursive(key ids.ID) (*Node, int, error) {
	n.nw.tstats.Lookups++
	if !n.alive {
		n.nw.tstats.LookupFailures++
		return nil, 0, ErrDead
	}
	owner, depth, err := n.lookupRecursive(key, 0)
	if err != nil {
		n.nw.tstats.LookupFailures++
	}
	return owner, depth, err
}

func (n *Node) lookupRecursive(key ids.ID, depth int) (*Node, int, error) {
	if depth > n.nw.cfg.MaxHops {
		return nil, depth, ErrNoRoute
	}
	succ := n.firstLiveSuccessor()
	if succ == nil {
		if n.alive && len(n.nw.AliveIDs()) == 1 {
			return n, depth, nil
		}
		return nil, depth, ErrIsolated
	}
	if ids.BetweenRightIncl(key, n.id, succ.id) {
		return succ, depth, nil
	}
	next := n.closestPreceding(key)
	if next == n {
		next = succ
	}
	if err := n.nw.send("lookup-recursive", n.id, next.id, false); err != nil {
		return nil, depth, err
	}
	return next.lookupRecursive(key, depth+1)
}

// stabilize is the classic Chord stabilization step: verify the working
// successor, adopt its predecessor if that node sits between us, notify,
// and refresh the successor list from the (possibly new) successor.
func (n *Node) stabilize() {
	if !n.alive {
		return
	}
	succ := n.firstLiveSuccessor()
	if succ == nil {
		return
	}
	// One RPC to the successor; if it is dropped or partitioned away,
	// skip this round and keep the current (possibly stale) pointers —
	// a suspected-but-not-evicted peer, so a healed partition restores
	// the ring without a merge protocol.
	if err := n.nw.send("stabilize", n.id, succ.id, false); err != nil {
		return
	}
	if succ.hasPred {
		x := n.nw.nodes[succ.pred]
		if x != nil && x.alive && x.id != n.id && ids.Between(x.id, n.id, succ.id) {
			succ = x
		}
	}
	// Rebuild the successor list: succ first, then its list shifted.
	list := make([]ids.ID, 0, n.nw.cfg.SuccessorListLen)
	list = append(list, succ.id)
	for _, s := range succ.succList {
		if len(list) >= n.nw.cfg.SuccessorListLen {
			break
		}
		if s != n.id && s != succ.id {
			list = append(list, s)
		}
	}
	n.succList = list
	if err := n.nw.send("notify", n.id, succ.id, false); err == nil {
		succ.notify(n)
	}
}

// notify tells the node that caller might be its predecessor. The caller
// has already paid for (and survived) the message via send.
func (n *Node) notify(caller *Node) {
	cur := n.nw.nodes[n.pred]
	predDead := !n.hasPred || cur == nil || !cur.alive
	if predDead || ids.Between(caller.id, n.pred, n.id) {
		n.pred = caller.id
		n.hasPred = true
	}
}

// fixNextFinger advances the round-robin finger repair by one entry.
func (n *Node) fixNextFinger() {
	n.fixFinger(n.nextFinger)
	n.nextFinger = (n.nextFinger + 1) % ids.Bits
}

func (n *Node) fixFinger(i int) {
	if !n.alive {
		return
	}
	target := n.id.Add(ids.PowerOfTwo(i))
	owner, _, err := n.Lookup(target)
	if err != nil {
		return // leave the stale entry; a later round will retry
	}
	n.fingers[i] = owner.id
}

// Put stores value under key at the responsible node and replicates it to
// the owner's successors.
func (n *Node) Put(key ids.ID, value string) error {
	owner, _, err := n.Lookup(key)
	if err != nil {
		return err
	}
	if err := n.nw.send("put", n.id, owner.id, false); err != nil {
		return err
	}
	owner.data[key] = value
	// Track the store so the repair instrumentation can audit, after a
	// failure wave, which keys replication saved and which were lost.
	n.nw.registry[key] = value
	owner.replicate(key, value)
	return nil
}

// Get fetches the value for key from the responsible node. Because
// replicas are promoted by ring position, a Get right after a crash
// succeeds as soon as routing has healed.
func (n *Node) Get(key ids.ID) (string, error) {
	owner, _, err := n.Lookup(key)
	if err != nil {
		return "", err
	}
	if err := n.nw.send("get", n.id, owner.id, false); err != nil {
		return "", err
	}
	if v, ok := owner.data[key]; ok {
		return v, nil
	}
	return "", ErrNotFound
}

// replicate pushes one key to the next Replicas live successors. A push
// lost in transit leaves that replica unplaced until a later
// repairReplicas round retries it.
func (n *Node) replicate(key ids.ID, value string) {
	count := 0
	cur := n
	for count < n.nw.cfg.Replicas {
		succ := cur.firstLiveSuccessor()
		if succ == nil || succ.id == n.id {
			return // wrapped around a small ring
		}
		if err := n.nw.send("replicate", cur.id, succ.id, false); err == nil {
			succ.data[key] = value
		}
		cur = succ
		count++
	}
}

// repairReplicas re-replicates the keys this node is primarily
// responsible for — the "active, aggressive" backup maintenance the paper
// assumes (§V). Responsibility is (pred, id].
func (n *Node) repairReplicas() {
	if !n.alive || !n.hasPred {
		return
	}
	// Sorted iteration: per-message fault decisions consume seeded
	// randomness and must not depend on map iteration order.
	for _, k := range sortedDataKeys(n.data) {
		if ids.BetweenRightIncl(k, n.pred, n.id) {
			n.replicate(k, n.data[k])
		}
	}
}

// transferTo hands the joining node newN every key in its new range
// (pred(n), newN.id]. The keys stay on n as replicas — exactly what the
// active-backup scheme would produce.
func (n *Node) transferTo(newN *Node) {
	low := n.pred
	if !n.hasPred {
		low = n.id
	}
	for _, k := range sortedDataKeys(n.data) {
		if ids.BetweenRightIncl(k, low, newN.id) {
			if err := n.nw.send("transfer", n.id, newN.id, false); err != nil {
				continue // lost transfer: the key stays only on n for now
			}
			newN.data[k] = n.data[k]
		}
	}
}
