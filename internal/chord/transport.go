package chord

import (
	"errors"

	"chordbalance/internal/faults"
	"chordbalance/internal/ids"
)

// Transport-level errors. Both behave like the timeouts a deployment
// would see: the caller cannot distinguish a dead peer from a lossy path
// or a partition except by how long the symptom lasts.
var (
	// ErrTimeout means every transmission attempt (original + retries)
	// of one RPC was dropped.
	ErrTimeout = errors.New("chord: rpc timed out after retries")
	// ErrPartitioned means the destination is on the other side of an
	// active network partition.
	ErrPartitioned = errors.New("chord: destination unreachable across partition")
)

// TransportStats counts fault-layer activity on one overlay. All counters
// are cumulative since the network was created; they stay zero until a
// fault injector is installed.
type TransportStats struct {
	// Sends counts RPC send attempts that passed through the fault
	// layer (first transmissions, not retries).
	Sends int
	// Drops counts individual transmissions lost (including retries).
	Drops int
	// Retries counts re-transmissions after a drop.
	Retries int
	// Duplicates counts spurious duplicate deliveries (charged as
	// messages; the protocol's operations are idempotent).
	Duplicates int
	// Timeouts counts RPCs abandoned after the retry budget.
	Timeouts int
	// BackoffTicks accumulates the deterministic exponential backoff
	// spent waiting between retries, in ticks.
	BackoffTicks int
	// DelayTicks accumulates in-flight delays imposed on delivered
	// messages, in ticks.
	DelayTicks int
	// PartitionRefusals counts sends blocked by an active partition.
	PartitionRefusals int
	// Lookups and LookupFailures measure end-to-end lookup availability:
	// every Lookup/LookupRecursive/LookupTraced call is an attempt, and
	// any error outcome (timeout, partition, no route, isolation) is a
	// failure. These are counted whether or not faults are installed.
	Lookups        int
	LookupFailures int
}

// LookupSuccessRate returns the fraction of lookups that resolved
// (1 when none were attempted).
func (s TransportStats) LookupSuccessRate() float64 {
	if s.Lookups == 0 {
		return 1
	}
	return 1 - float64(s.LookupFailures)/float64(s.Lookups)
}

// SetFaultInjector installs a fault injector on the overlay; nil removes
// it. With no injector (or a zero plan) every code path is byte-identical
// to the fault-free protocol: same messages charged, same outcomes.
func (nw *Network) SetFaultInjector(inj *faults.Injector) { nw.faults = inj }

// FaultInjector returns the installed injector (nil when none).
func (nw *Network) FaultInjector() *faults.Injector { return nw.faults }

// TransportStats returns the accumulated fault-layer counters.
func (nw *Network) TransportStats() TransportStats { return nw.tstats }

// Tick returns the overlay's logical time (advanced by AdvanceTick).
func (nw *Network) Tick() int { return nw.tick }

// AdvanceTick advances the overlay's logical clock by one tick and keeps
// the fault injector's schedule (partition windows, crash bursts) in
// step. Deployments would use wall time; the overlay uses ticks so every
// fault sequence is replayable.
func (nw *Network) AdvanceTick() {
	// A tracer observes the finished tick before the clock moves: the
	// first AdvanceTick therefore emits the tick-0 record (the overlay's
	// initial state), and callers flush the final tick with FlushTrace.
	if nw.obsm != nil {
		nw.obsm.observe(nw)
	}
	nw.tick++
	if nw.faults != nil {
		nw.faults.AdvanceTo(nw.tick)
	}
}

// send models one RPC transmission of the given kind from -> to through
// the fault layer: the message is charged, then an installed injector may
// block it at a partition or drop it, in which case the sender retries up
// to MaxRetries times with exponential backoff (each retry charged as a
// fresh message, each backoff accounted in ticks). withLatency routes the
// charge through the latency model, matching the fault-free accounting of
// the call site. A nil error means the message was delivered.
func (nw *Network) send(kind string, from, to ids.ID, withLatency bool) error {
	charge := func() {
		if withLatency {
			nw.chargeBetween(kind, from, to)
		} else {
			nw.charge(kind)
		}
	}
	charge()
	f := nw.faults
	if f == nil {
		return nil
	}
	nw.tstats.Sends++
	if !f.SameSide(from, to) {
		nw.tstats.PartitionRefusals++
		return ErrPartitioned
	}
	if !f.DropNow() {
		nw.delivered(charge, f)
		return nil
	}
	nw.tstats.Drops++
	maxRetries := f.Plan().MaxRetries
	for k := 1; k <= maxRetries; k++ {
		nw.tstats.Retries++
		nw.tstats.BackoffTicks += faults.Backoff(f.Plan().BackoffBase, k)
		charge()
		if !f.DropNow() {
			nw.delivered(charge, f)
			return nil
		}
		nw.tstats.Drops++
	}
	nw.tstats.Timeouts++
	return ErrTimeout
}

// delivered applies post-delivery faults: duplication (one extra charged
// message) and in-flight delay (accounted, not reordered).
func (nw *Network) delivered(charge func(), f *faults.Injector) {
	if f.DupNow() {
		nw.tstats.Duplicates++
		charge()
	}
	nw.tstats.DelayTicks += f.DelayNow()
}

// sortedDataKeys returns a map's keys in ascending ring order. Bulk key
// operations (transfers, replica repair, departures) iterate in this
// order so that per-message fault decisions — which consume seeded
// randomness — cannot depend on Go's randomized map iteration.
func sortedDataKeys(m map[ids.ID]string) []ids.ID {
	out := make([]ids.ID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sortIDs(out)
	return out
}
