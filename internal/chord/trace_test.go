package chord

import (
	"bytes"
	"testing"

	"chordbalance/internal/faults"
	"chordbalance/internal/keys"
	"chordbalance/internal/obs"
)

// tracedChaos builds a small overlay with stored keys and a fault plan,
// optionally attaches a tracer, and runs a short chaos schedule.
func tracedChaos(t *testing.T, tr *obs.Tracer) ChaosReport {
	t.Helper()
	nw := buildRing(t, 24, 17)
	nw.FixAllFingers()
	kg := keys.NewGenerator(31)
	start := nw.nodes[nw.AliveIDs()[0]]
	for i := 0; i < 50; i++ {
		if err := start.Put(kg.Next(), "v"); err != nil {
			t.Fatal(err)
		}
	}
	nw.SetFaultInjector(mustInjector(t, faults.Plan{
		Seed: 6, CrashRate: 0.01, BurstEvery: 10, BurstSize: 2, DropRate: 0.05,
	}))
	nw.SetTracer(tr)
	return nw.RunChaos(40, 300)
}

// TestChordTracedRunMatchesUntraced: attaching a tracer must not change
// the chaos outcome — observe() is read-only and draws no randomness.
func TestChordTracedRunMatchesUntraced(t *testing.T) {
	plain := tracedChaos(t, nil)
	var sink obs.MemSink
	tr := obs.New(&sink)
	traced := tracedChaos(t, tr)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if plain != traced {
		t.Fatalf("tracing perturbed the chaos run:\nuntraced: %+v\ntraced:   %+v", plain, traced)
	}

	dec, err := obs.ReadTrace(bytes.NewReader(sink.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Meta["source"] != "chord" {
		t.Fatalf("meta = %v", dec.Meta)
	}
	if len(dec.Ticks) != 41 { // tick 0 header record + 40 chaos ticks
		t.Fatalf("tick records = %d, want 41", len(dec.Ticks))
	}
	last := dec.Ticks[len(dec.Ticks)-1]
	if got := last.Counters["chord.repair.waves"]; got != int64(traced.Waves) {
		t.Errorf("repair.waves = %d, report says %d", got, traced.Waves)
	}
	if got := last.Counters["chord.repair.rounds"]; got != int64(traced.TotalRepairRounds) {
		t.Errorf("repair.rounds = %d, report says %d", got, traced.TotalRepairRounds)
	}
	if got := last.Counters["chord.rpc.drops"]; got != int64(traced.Transport.Drops) {
		t.Errorf("rpc.drops = %d, report says %d", got, traced.Transport.Drops)
	}
	if got := last.Counters["chord.msgs.total"]; got <= 0 {
		t.Errorf("msgs.total = %d, want > 0", got)
	}
}

// TestChordTraceByteDeterminism: same overlay seed and fault plan, same
// trace bytes.
func TestChordTraceByteDeterminism(t *testing.T) {
	emit := func() string {
		var sink obs.MemSink
		tr := obs.New(&sink)
		tracedChaos(t, tr)
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		return sink.String()
	}
	if a, b := emit(), emit(); a != b {
		t.Fatal("same seed produced different chord trace bytes")
	}
}
