package chord

// Repair instrumentation: the paper assumes "active and aggressive"
// replication makes failures free (§V). The helpers here measure, on the
// real protocol, exactly what that assumption costs and buys — how many
// maintenance rounds a failure wave takes to repair (time-to-repair), how
// many stored keys replication saved versus lost, and what fraction of
// lookups resolve while the overlay is degraded.

import (
	"chordbalance/internal/ids"
)

// RepairReport describes the overlay's recovery from one failure wave.
type RepairReport struct {
	// Killed is how many nodes the wave crashed.
	Killed int
	// Rounds is the number of maintenance rounds until the ring's
	// successor structure matched the surviving membership — the
	// time-to-repair, in rounds.
	Rounds int
	// Converged is false when the ring was still inconsistent after the
	// round budget.
	Converged bool
	// KeysTracked is how many distinct keys were ever stored via Put.
	KeysTracked int
	// KeysRecovered and KeysLost partition the tracked keys by whether a
	// post-repair probe found them on their (new) owner.
	KeysRecovered int
	KeysLost      int
	// ProbeFailures counts probes whose lookup did not resolve at all
	// (routing failure, timeout, partition); those keys may still exist
	// but are unavailable, and they are not counted recovered.
	ProbeFailures int
}

// LookupSuccessRate returns the fraction of post-repair probes that
// resolved (1 when nothing was tracked).
func (r RepairReport) LookupSuccessRate() float64 {
	if r.KeysTracked == 0 {
		return 1
	}
	return 1 - float64(r.ProbeFailures)/float64(r.KeysTracked)
}

// TrackedKeys returns how many distinct keys have ever been stored via
// Put on this overlay.
func (nw *Network) TrackedKeys() int { return len(nw.registry) }

// ProbeKeys audits every tracked key: it looks each one up from the first
// live node (in ascending ID order, so the audit is deterministic) and
// checks the resolved owner actually holds the value. Probes are charged
// as ordinary lookup traffic and, under an installed fault injector, are
// themselves subject to loss — a degraded overlay audits itself through
// its own degraded transport.
func (nw *Network) ProbeKeys() (recovered, lost, probeFailures int) {
	alive := nw.AliveIDs()
	if len(alive) == 0 {
		return 0, len(nw.registry), len(nw.registry)
	}
	start := nw.nodes[alive[0]]
	for _, k := range sortedDataKeys(nw.registry) {
		owner, _, err := start.Lookup(k)
		if err != nil {
			probeFailures++
			continue
		}
		if _, ok := owner.data[k]; ok {
			recovered++
		} else {
			lost++
		}
	}
	return recovered, lost, probeFailures
}

// FailureWave crashes the given nodes simultaneously, runs maintenance
// until the ring heals (or maxRounds passes), and audits every tracked
// key. It is the one-shot building block behind RunChaos and the
// chordnet chaos command.
func (nw *Network) FailureWave(victims []ids.ID, maxRounds int) RepairReport {
	for _, id := range victims {
		nw.Kill(id)
	}
	rounds, ok := nw.StabilizeUntilConverged(maxRounds)
	rec, lost, fails := nw.ProbeKeys()
	rep := RepairReport{
		Killed:        len(victims),
		Rounds:        rounds,
		Converged:     ok,
		KeysTracked:   len(nw.registry),
		KeysRecovered: rec,
		KeysLost:      lost,
		ProbeFailures: fails,
	}
	if nw.obsm != nil {
		nw.obsm.recordRepair(rep)
	}
	return rep
}

// ChaosReport aggregates a multi-tick chaos run.
type ChaosReport struct {
	Ticks   int
	Crashed int
	// Waves counts ticks on which at least one node crashed; each wave
	// is stabilized to convergence and its rounds recorded.
	Waves             int
	TotalRepairRounds int
	MaxRepairRounds   int
	Unconverged       int
	// Key audit after the final tick.
	KeysTracked   int
	KeysRecovered int
	KeysLost      int
	ProbeFailures int
	// Transport is the overlay's cumulative fault-layer activity.
	Transport TransportStats
}

// MeanTimeToRepair returns the average rounds-to-repair per wave (0 when
// no wave fired).
func (r ChaosReport) MeanTimeToRepair() float64 {
	if r.Waves == 0 {
		return 0
	}
	return float64(r.TotalRepairRounds) / float64(r.Waves)
}

// LookupSuccessRate returns the fraction of final-audit probes that
// resolved (1 when nothing was tracked).
func (r ChaosReport) LookupSuccessRate() float64 {
	if r.KeysTracked == 0 {
		return 1
	}
	return 1 - float64(r.ProbeFailures)/float64(r.KeysTracked)
}

// RunChaos advances the overlay through ticks of the installed fault
// plan: each tick the injector's crash draws and correlated bursts pick
// victims (always leaving at least one node alive), every failure wave is
// stabilized until the ring heals (bounded by maxRoundsPerWave), and
// quiet ticks run one ordinary maintenance round. The final tick is
// followed by a full key audit. Without an installed injector the run is
// just ticks of maintenance plus the audit.
func (nw *Network) RunChaos(ticks, maxRoundsPerWave int) ChaosReport {
	rep := ChaosReport{Ticks: ticks}
	for t := 0; t < ticks; t++ {
		nw.AdvanceTick()
		victims := nw.drawVictims()
		if len(victims) == 0 {
			nw.StabilizeAll()
			continue
		}
		for _, id := range victims {
			nw.Kill(id)
		}
		rep.Crashed += len(victims)
		rep.Waves++
		rounds, ok := nw.StabilizeUntilConverged(maxRoundsPerWave)
		rep.TotalRepairRounds += rounds
		if rounds > rep.MaxRepairRounds {
			rep.MaxRepairRounds = rounds
		}
		if !ok {
			rep.Unconverged++
		}
		if nw.obsm != nil {
			nw.obsm.recordWave(len(victims), rounds, ok)
		}
	}
	rep.KeysRecovered, rep.KeysLost, rep.ProbeFailures = nw.ProbeKeys()
	rep.KeysTracked = len(nw.registry)
	rep.Transport = nw.tstats
	if nw.obsm != nil {
		nw.obsm.recordAudit(rep.KeysRecovered, rep.KeysLost, rep.ProbeFailures)
	}
	nw.FlushTrace()
	return rep
}

// drawVictims asks the fault injector which live nodes crash this tick:
// one Bernoulli draw per live node in ascending ID order, plus the
// correlated burst quota. At least one node always survives.
func (nw *Network) drawVictims() []ids.ID {
	inj := nw.faults
	if inj == nil {
		return nil
	}
	alive := nw.AliveIDs()
	chosen := make(map[ids.ID]bool)
	var out []ids.ID
	for _, id := range alive {
		if len(alive)-len(out) <= 1 {
			break
		}
		if inj.CrashNow() {
			out = append(out, id)
			chosen[id] = true
		}
	}
	for n := inj.BurstNow(); n > 0 && len(alive)-len(out) > 1; n-- {
		// Pick an index and walk forward to the next unchosen live node,
		// so burst victims are distinct and the draw stays deterministic.
		i := inj.Pick(len(alive))
		for j := 0; j < len(alive); j++ {
			id := alive[(i+j)%len(alive)]
			if !chosen[id] {
				out = append(out, id)
				chosen[id] = true
				break
			}
		}
	}
	return out
}
