package chord

import (
	"sync"
	"time"

	"chordbalance/internal/faults"
	"chordbalance/internal/ids"
)

// Driver wraps a Network with a mutex and a background maintenance loop,
// giving concurrent clients the interface a deployed DHT would expose:
// Put/Get/Lookup from any goroutine while stabilization, finger repair,
// and replica refresh run on their own cadence — the paper's "active,
// aggressive" maintenance (§V) as an actual concurrent process rather
// than a simulation assumption.
//
// The zero value is not usable; construct with NewDriver.
type Driver struct {
	mu sync.Mutex
	nw *Network

	interval time.Duration
	stop     chan struct{}
	done     chan struct{}
	rounds   int
}

// NewDriver wraps nw. interval is the maintenance cadence; 0 means
// maintenance runs only when RunMaintenance is called explicitly.
func NewDriver(nw *Network, interval time.Duration) *Driver {
	return &Driver{nw: nw, interval: interval}
}

// Start launches the background maintenance loop. It panics if the
// driver was started twice without Stop, which is always a bug.
func (d *Driver) Start() {
	if d.stop != nil {
		panic("chord: Driver started twice")
	}
	if d.interval <= 0 {
		return
	}
	d.stop = make(chan struct{})
	d.done = make(chan struct{})
	go func() {
		defer close(d.done)
		// The driver is the one deliberately real-time component: it
		// paces background maintenance for live deployments and its
		// timing never feeds simulation state or results.
		//lint:ignore nowallclock driver paces real-time maintenance; never feeds sim results
		ticker := time.NewTicker(d.interval)
		defer ticker.Stop()
		for {
			select {
			case <-d.stop:
				return
			case <-ticker.C:
				d.RunMaintenance()
			}
		}
	}()
}

// Stop halts the maintenance loop and waits for it to exit. Safe to call
// when never started.
func (d *Driver) Stop() {
	if d.stop == nil {
		return
	}
	close(d.stop)
	<-d.done
	d.stop = nil
	d.done = nil
}

// RunMaintenance performs one synchronized maintenance round.
func (d *Driver) RunMaintenance() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nw.StabilizeAll()
	d.rounds++
}

// MaintenanceRounds reports how many rounds have run.
func (d *Driver) MaintenanceRounds() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.rounds
}

// Create bootstraps the overlay's first node.
func (d *Driver) Create(id ids.ID) (*Node, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.nw.Create(id)
}

// Join adds a node through the given bootstrap node's ID.
func (d *Driver) Join(id, bootstrap ids.ID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	b := d.nw.Node(bootstrap)
	if b == nil {
		return ErrDead
	}
	_, err := d.nw.Join(id, b)
	return err
}

// Kill crashes a node.
func (d *Driver) Kill(id ids.ID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nw.Kill(id)
}

// Leave removes a node gracefully.
func (d *Driver) Leave(id ids.ID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.nw.Leave(id)
}

// Put stores a key through any live node.
func (d *Driver) Put(key ids.ID, value string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	entry := d.anyLive()
	if entry == nil {
		return ErrIsolated
	}
	return entry.Put(key, value)
}

// Get fetches a key through any live node.
func (d *Driver) Get(key ids.ID) (string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	entry := d.anyLive()
	if entry == nil {
		return "", ErrIsolated
	}
	return entry.Get(key)
}

// Lookup resolves the owner of a key and the hops taken.
func (d *Driver) Lookup(key ids.ID) (ids.ID, int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	entry := d.anyLive()
	if entry == nil {
		return ids.Zero, 0, ErrIsolated
	}
	n, hops, err := entry.Lookup(key)
	if err != nil {
		return ids.Zero, hops, err
	}
	return n.ID(), hops, nil
}

// Trace resolves a key recording the route taken.
func (d *Driver) Trace(key ids.ID) (LookupTrace, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	entry := d.anyLive()
	if entry == nil {
		return LookupTrace{}, ErrIsolated
	}
	return entry.LookupTraced(key)
}

// Stats snapshots the overlay's health.
func (d *Driver) Stats() OverlayStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.nw.Stats()
}

// KeyDistribution returns primary-key counts per live node in ring order.
func (d *Driver) KeyDistribution() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.nw.KeyDistribution()
}

// AliveIDs returns the live node IDs in ring order.
func (d *Driver) AliveIDs() []ids.ID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.nw.AliveIDs()
}

// TotalMessages returns the overlay's message total.
func (d *Driver) TotalMessages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.nw.TotalMessages()
}

// VerifyRing checks ring consistency (nil when converged).
func (d *Driver) VerifyRing() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.nw.VerifyRing()
}

// SetFaultPlan installs (or, with a zero plan, effectively clears) the
// deterministic fault plan every RPC is threaded through.
func (d *Driver) SetFaultPlan(p faults.Plan) error {
	inj, err := faults.New(p)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nw.SetFaultInjector(inj)
	return nil
}

// FaultPlan returns the installed plan and whether one is installed.
func (d *Driver) FaultPlan() (faults.Plan, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	inj := d.nw.FaultInjector()
	if inj == nil {
		return faults.Plan{}, false
	}
	return inj.Plan(), true
}

// RunChaos drives ticks of the installed fault plan (see Network.RunChaos).
func (d *Driver) RunChaos(ticks, maxRoundsPerWave int) ChaosReport {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.nw.RunChaos(ticks, maxRoundsPerWave)
}

// Partition forces a two-sided partition at the given identifier-space
// fraction, installing a default injector if none is present.
func (d *Driver) Partition(frac float64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	inj := d.nw.FaultInjector()
	if inj == nil {
		var err error
		inj, err = faults.New(faults.Plan{})
		if err != nil {
			return err
		}
		d.nw.SetFaultInjector(inj)
	}
	return inj.ForcePartition(frac)
}

// HealPartition lifts any active partition. It reports whether a
// partition was actually active.
func (d *Driver) HealPartition() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	inj := d.nw.FaultInjector()
	if inj == nil {
		return false
	}
	active := inj.PartitionActive()
	inj.Heal()
	return active
}

// TransportStats snapshots the overlay's fault-layer counters.
func (d *Driver) TransportStats() TransportStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.nw.TransportStats()
}

// anyLive returns some live node; callers hold d.mu.
func (d *Driver) anyLive() *Node {
	for _, n := range d.nw.nodes {
		if n.alive {
			return n
		}
	}
	return nil
}
