package chord

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"chordbalance/internal/ids"
	"chordbalance/internal/keys"
	"chordbalance/internal/xrand"
)

func buildDriver(t *testing.T, n int, seed uint64, interval time.Duration) *Driver {
	t.Helper()
	d := NewDriver(NewNetwork(Config{}), interval)
	g := keys.NewGenerator(seed)
	first := g.Next()
	if _, err := d.Create(first); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		if err := d.Join(g.Next(), first); err != nil {
			t.Fatal(err)
		}
		d.RunMaintenance()
	}
	for i := 0; i < 4*n; i++ {
		d.RunMaintenance()
		if d.VerifyRing() == nil {
			return d
		}
	}
	t.Fatalf("driver ring did not converge: %v", d.VerifyRing())
	return nil
}

func TestDriverBasicOps(t *testing.T) {
	d := buildDriver(t, 10, 1, 0)
	k := keys.HashString("hello")
	if err := d.Put(k, "world"); err != nil {
		t.Fatal(err)
	}
	v, err := d.Get(k)
	if err != nil || v != "world" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	owner, hops, err := d.Lookup(k)
	if err != nil || owner == ids.Zero || hops < 0 {
		t.Fatalf("Lookup = %v, %d, %v", owner, hops, err)
	}
	if len(d.AliveIDs()) != 10 {
		t.Errorf("alive = %d", len(d.AliveIDs()))
	}
	if d.TotalMessages() == 0 {
		t.Error("no messages counted")
	}
}

func TestDriverJoinUnknownBootstrap(t *testing.T) {
	d := NewDriver(NewNetwork(Config{}), 0)
	if err := d.Join(ids.FromUint64(1), ids.FromUint64(2)); err != ErrDead {
		t.Errorf("join via unknown bootstrap: %v", err)
	}
}

func TestDriverEmptyOverlay(t *testing.T) {
	d := NewDriver(NewNetwork(Config{}), 0)
	if err := d.Put(ids.FromUint64(1), "x"); err != ErrIsolated {
		t.Errorf("Put on empty overlay: %v", err)
	}
	if _, err := d.Get(ids.FromUint64(1)); err != ErrIsolated {
		t.Errorf("Get on empty overlay: %v", err)
	}
	if _, _, err := d.Lookup(ids.FromUint64(1)); err != ErrIsolated {
		t.Errorf("Lookup on empty overlay: %v", err)
	}
}

func TestDriverStartStop(t *testing.T) {
	d := buildDriver(t, 4, 2, time.Millisecond)
	d.Start()
	deadline := time.After(2 * time.Second)
	for d.MaintenanceRounds() < 3 {
		select {
		case <-deadline:
			t.Fatal("maintenance loop never ran")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	d.Stop()
	rounds := d.MaintenanceRounds()
	time.Sleep(5 * time.Millisecond)
	if d.MaintenanceRounds() != rounds {
		t.Error("maintenance continued after Stop")
	}
	// Stop twice and restart are safe.
	d.Stop()
	d.Start()
	d.Stop()
}

func TestDriverDoubleStartPanics(t *testing.T) {
	d := NewDriver(NewNetwork(Config{}), time.Second)
	d.Start()
	defer d.Stop()
	defer func() {
		if recover() == nil {
			t.Error("second Start must panic")
		}
	}()
	d.Start()
}

func TestDriverZeroIntervalStartIsNoop(t *testing.T) {
	d := NewDriver(NewNetwork(Config{}), 0)
	d.Start() // must not spawn anything or panic
	d.Stop()
}

// TestDriverConcurrentClients hammers the overlay from many goroutines
// while the maintenance loop runs and nodes crash — the concurrency
// contract the Driver exists to provide. Run with -race.
func TestDriverConcurrentClients(t *testing.T) {
	d := buildDriver(t, 24, 3, 200*time.Microsecond)
	d.Start()
	defer d.Stop()

	alive := d.AliveIDs()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	const writers, reads = 4, 50
	// Writers store disjoint key sets, then read them back.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(uint64(w) + 10)
			for i := 0; i < reads; i++ {
				k := keys.HashString(fmt.Sprintf("w%d-k%d", w, i))
				val := fmt.Sprintf("v%d-%d", w, i)
				if err := d.Put(k, val); err != nil {
					errs <- fmt.Errorf("put: %w", err)
					return
				}
				got, err := d.Get(k)
				if err != nil || got != val {
					errs <- fmt.Errorf("get %q = %q, %v", val, got, err)
					return
				}
				_ = rng
			}
		}(w)
	}
	// A crasher takes down two non-bootstrap nodes mid-traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		d.Kill(alive[5])
		time.Sleep(time.Millisecond)
		d.Kill(alive[11])
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
