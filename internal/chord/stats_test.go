package chord

import (
	"strings"
	"testing"

	"chordbalance/internal/ids"
	"chordbalance/internal/keys"
	"chordbalance/internal/xrand"
)

func TestLookupTracedMatchesLookup(t *testing.T) {
	nw := buildRing(t, 24, 30)
	nw.FixAllFingers()
	entry := nw.Node(nw.AliveIDs()[0])
	rng := xrand.New(31)
	for i := 0; i < 50; i++ {
		key := ids.Random(rng)
		owner, hops, err := entry.Lookup(key)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := entry.LookupTraced(key)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Owner != owner.ID() {
			t.Fatalf("traced owner %s != %s", tr.Owner.Short(), owner.ID().Short())
		}
		if len(tr.Path)-1 != hops {
			t.Fatalf("traced hops %d != %d", len(tr.Path)-1, hops)
		}
		if tr.Path[0] != entry.ID() {
			t.Fatal("trace must start at the initiator")
		}
	}
}

func TestLookupTraceString(t *testing.T) {
	tr := LookupTrace{
		Owner: ids.FromUint64(3),
		Path:  []ids.ID{ids.FromUint64(1), ids.FromUint64(2)},
	}
	s := tr.String()
	if !strings.Contains(s, " -> ") || !strings.Contains(s, " => ") {
		t.Errorf("trace string = %q", s)
	}
}

func TestLookupTracedDeadNode(t *testing.T) {
	nw := buildRing(t, 4, 32)
	alive := nw.AliveIDs()
	n := nw.Node(alive[1])
	nw.Kill(alive[1])
	if _, err := n.LookupTraced(ids.FromUint64(1)); err != ErrDead {
		t.Errorf("dead initiator: %v", err)
	}
}

func TestStatsReplication(t *testing.T) {
	nw := buildRing(t, 12, 33)
	nw.FixAllFingers()
	entry := nw.Node(nw.AliveIDs()[0])
	g := keys.NewGenerator(34)
	for i := 0; i < 60; i++ {
		if err := entry.Put(g.Next(), "v"); err != nil {
			t.Fatal(err)
		}
	}
	nw.StabilizeAll() // replica repair pass
	s := nw.Stats()
	if s.AliveNodes != 12 || s.DeadNodes != 0 {
		t.Errorf("node counts: %+v", s)
	}
	if s.PrimaryKeys != 60 {
		t.Errorf("primary keys = %d, want 60", s.PrimaryKeys)
	}
	// Config.Replicas defaults to 3: each key on owner + 3 successors.
	if s.MeanReplication < 3.5 || s.MeanReplication > 4.5 {
		t.Errorf("mean replication = %v, want ~4", s.MeanReplication)
	}
	if !s.RingConsistent {
		t.Error("ring must be consistent")
	}
	if s.Messages == 0 {
		t.Error("messages must be counted")
	}
	nw.Kill(nw.AliveIDs()[3])
	s2 := nw.Stats()
	if s2.DeadNodes != 1 || s2.AliveNodes != 11 {
		t.Errorf("after kill: %+v", s2)
	}
}

func TestKeyDistributionConserves(t *testing.T) {
	nw := buildRing(t, 10, 35)
	nw.FixAllFingers()
	entry := nw.Node(nw.AliveIDs()[0])
	g := keys.NewGenerator(36)
	const stored = 80
	for i := 0; i < stored; i++ {
		if err := entry.Put(g.Next(), "v"); err != nil {
			t.Fatal(err)
		}
	}
	dist := nw.KeyDistribution()
	if len(dist) != 10 {
		t.Fatalf("dist len = %d", len(dist))
	}
	sum := 0
	for _, d := range dist {
		sum += d
	}
	if sum != stored {
		t.Errorf("primary keys sum = %d, want %d", sum, stored)
	}
}
