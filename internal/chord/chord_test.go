package chord

import (
	"fmt"
	"math"
	"testing"

	"chordbalance/internal/ids"
	"chordbalance/internal/keys"
	"chordbalance/internal/xrand"
)

// buildRing creates a converged n-node overlay with deterministic IDs.
func buildRing(t testing.TB, n int, seed uint64) *Network {
	t.Helper()
	nw := NewNetwork(Config{})
	g := keys.NewGenerator(seed)
	first, err := nw.Create(g.Next())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		if _, err := nw.Join(g.Next(), first); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		nw.StabilizeAll()
	}
	if _, ok := nw.StabilizeUntilConverged(4 * n); !ok {
		t.Fatalf("%d-node ring did not converge: %v", n, nw.VerifyRing())
	}
	return nw
}

func TestCreateSingleNode(t *testing.T) {
	nw := NewNetwork(Config{})
	n, err := nw.Create(ids.FromUint64(42))
	if err != nil {
		t.Fatal(err)
	}
	if n.Successor() != n.ID() {
		t.Error("lone node must be its own successor")
	}
	owner, hops, err := n.Lookup(ids.FromUint64(7))
	if err != nil || owner != n || hops != 0 {
		t.Errorf("lone lookup = %v, %d, %v", owner, hops, err)
	}
	if _, err := nw.Create(ids.FromUint64(42)); err != ErrDuplicate {
		t.Errorf("duplicate create: %v", err)
	}
}

func TestJoinConverges(t *testing.T) {
	nw := buildRing(t, 16, 1)
	if err := nw.VerifyRing(); err != nil {
		t.Fatal(err)
	}
	alive := nw.AliveIDs()
	if len(alive) != 16 {
		t.Fatalf("alive = %d", len(alive))
	}
	for i := 1; i < len(alive); i++ {
		if !alive[i-1].Less(alive[i]) {
			t.Fatal("AliveIDs not sorted")
		}
	}
}

func TestJoinDuplicateAndDeadBootstrap(t *testing.T) {
	nw := buildRing(t, 4, 2)
	alive := nw.AliveIDs()
	first := nw.Node(alive[0])
	if _, err := nw.Join(alive[1], first); err != ErrDuplicate {
		t.Errorf("duplicate join: %v", err)
	}
	nw.Kill(alive[0])
	if _, err := nw.Join(ids.FromUint64(1), first); err != ErrDead {
		t.Errorf("dead bootstrap: %v", err)
	}
}

func TestLookupMatchesOracle(t *testing.T) {
	nw := buildRing(t, 32, 3)
	nw.FixAllFingers()
	alive := nw.AliveIDs()
	start := nw.Node(alive[0])
	rng := xrand.New(99)
	for trial := 0; trial < 200; trial++ {
		key := ids.Random(rng)
		got, _, err := start.Lookup(key)
		if err != nil {
			t.Fatal(err)
		}
		want := oracleOwner(alive, key)
		if got.ID() != want {
			t.Fatalf("Lookup(%s) = %s, want %s", key.Short(), got.ID().Short(), want.Short())
		}
	}
}

func oracleOwner(sorted []ids.ID, key ids.ID) ids.ID {
	for _, id := range sorted {
		if key.Compare(id) <= 0 {
			return id
		}
	}
	return sorted[0]
}

func TestLookupHopsLogarithmic(t *testing.T) {
	if testing.Short() {
		t.Skip("ring construction is slow")
	}
	nw := buildRing(t, 64, 4)
	nw.FixAllFingers()
	alive := nw.AliveIDs()
	rng := xrand.New(5)
	totalHops := 0
	const trials = 300
	for i := 0; i < trials; i++ {
		start := nw.Node(alive[rng.Intn(len(alive))])
		_, hops, err := start.Lookup(ids.Random(rng))
		if err != nil {
			t.Fatal(err)
		}
		totalHops += hops
	}
	mean := float64(totalHops) / trials
	// Chord's bound is 1/2 log2 n = 3 for n=64; allow up to 2x slack.
	if limit := math.Log2(64); mean > limit {
		t.Errorf("mean hops = %.2f, want <= log2(n) = %.1f", mean, limit)
	}
	if mean == 0 {
		t.Error("zero mean hops is implausible for 64 nodes")
	}
}

func TestLookupRecursiveMatchesIterative(t *testing.T) {
	nw := buildRing(t, 32, 50)
	nw.FixAllFingers()
	entry := nw.Node(nw.AliveIDs()[0])
	rng := xrand.New(51)
	for i := 0; i < 100; i++ {
		key := ids.Random(rng)
		iterOwner, iterHops, err := entry.Lookup(key)
		if err != nil {
			t.Fatal(err)
		}
		recOwner, recHops, err := entry.LookupRecursive(key)
		if err != nil {
			t.Fatal(err)
		}
		if recOwner != iterOwner {
			t.Fatalf("recursive owner %s != iterative %s",
				recOwner.ID().Short(), iterOwner.ID().Short())
		}
		if recHops != iterHops {
			t.Fatalf("recursive hops %d != iterative %d", recHops, iterHops)
		}
	}
}

func TestLookupRecursiveDeadInitiator(t *testing.T) {
	nw := buildRing(t, 4, 52)
	alive := nw.AliveIDs()
	n := nw.Node(alive[1])
	nw.Kill(alive[1])
	if _, _, err := n.LookupRecursive(ids.FromUint64(1)); err != ErrDead {
		t.Errorf("dead initiator: %v", err)
	}
}

func TestPutGet(t *testing.T) {
	nw := buildRing(t, 10, 6)
	entry := nw.Node(nw.AliveIDs()[0])
	g := keys.NewGenerator(77)
	stored := map[ids.ID]string{}
	for i := 0; i < 50; i++ {
		k := g.Next()
		v := fmt.Sprintf("value-%d", i)
		if err := entry.Put(k, v); err != nil {
			t.Fatal(err)
		}
		stored[k] = v
	}
	for k, want := range stored {
		got, err := entry.Get(k)
		if err != nil || got != want {
			t.Fatalf("Get(%s) = %q, %v; want %q", k.Short(), got, err, want)
		}
	}
	if _, err := entry.Get(ids.FromUint64(12345)); err != ErrNotFound {
		t.Errorf("missing key: %v", err)
	}
}

func TestFailureRecoveryRouting(t *testing.T) {
	nw := buildRing(t, 20, 7)
	nw.FixAllFingers()
	alive := nw.AliveIDs()
	// Kill 5 spread-out nodes (never the entry node).
	for i := 1; i <= 5; i++ {
		nw.Kill(alive[i*3])
	}
	entry := nw.Node(alive[0])
	// Routing heals after stabilization rounds.
	if _, ok := nw.StabilizeUntilConverged(100); !ok {
		t.Fatalf("ring did not heal: %v", nw.VerifyRing())
	}
	rng := xrand.New(8)
	for i := 0; i < 100; i++ {
		key := ids.Random(rng)
		got, _, err := entry.Lookup(key)
		if err != nil {
			t.Fatal(err)
		}
		if want := oracleOwner(nw.AliveIDs(), key); got.ID() != want {
			t.Fatalf("post-failure lookup %s -> %s, want %s",
				key.Short(), got.ID().Short(), want.Short())
		}
	}
}

func TestDataSurvivesFailures(t *testing.T) {
	nw := buildRing(t, 20, 9)
	nw.FixAllFingers()
	alive := nw.AliveIDs()
	entry := nw.Node(alive[0])
	g := keys.NewGenerator(11)
	stored := map[ids.ID]string{}
	for i := 0; i < 100; i++ {
		k := g.Next()
		v := fmt.Sprintf("v%d", i)
		if err := entry.Put(k, v); err != nil {
			t.Fatal(err)
		}
		stored[k] = v
	}
	// Run replica repair so every primary has pushed to its successors.
	nw.StabilizeAll()
	// Crash 4 non-adjacent nodes (fewer than Replicas adjacent failures).
	nw.Kill(alive[2])
	nw.Kill(alive[7])
	nw.Kill(alive[12])
	nw.Kill(alive[17])
	if _, ok := nw.StabilizeUntilConverged(100); !ok {
		t.Fatalf("ring did not heal: %v", nw.VerifyRing())
	}
	lost := 0
	for k, want := range stored {
		got, err := entry.Get(k)
		if err != nil || got != want {
			lost++
		}
	}
	if lost > 0 {
		t.Errorf("lost %d/%d keys after 4 failures with 3 replicas", lost, len(stored))
	}
}

func TestGracefulLeave(t *testing.T) {
	nw := buildRing(t, 10, 12)
	alive := nw.AliveIDs()
	entry := nw.Node(alive[0])
	g := keys.NewGenerator(13)
	stored := map[ids.ID]string{}
	for i := 0; i < 40; i++ {
		k := g.Next()
		stored[k] = fmt.Sprintf("x%d", i)
		if err := entry.Put(k, stored[k]); err != nil {
			t.Fatal(err)
		}
	}
	if err := nw.Leave(alive[5]); err != nil {
		t.Fatal(err)
	}
	if err := nw.Leave(alive[5]); err != ErrDead {
		t.Errorf("double leave: %v", err)
	}
	if _, ok := nw.StabilizeUntilConverged(60); !ok {
		t.Fatalf("ring did not heal after leave: %v", nw.VerifyRing())
	}
	for k, want := range stored {
		got, err := entry.Get(k)
		if err != nil || got != want {
			t.Fatalf("key %s lost after graceful leave", k.Short())
		}
	}
}

func TestMessageAccounting(t *testing.T) {
	nw := buildRing(t, 8, 14)
	msgs := nw.Messages()
	for _, kind := range []string{"join", "stabilize", "notify"} {
		if msgs[kind] == 0 {
			t.Errorf("no %q messages recorded", kind)
		}
	}
	if nw.TotalMessages() == 0 {
		t.Error("total must be positive")
	}
	entry := nw.Node(nw.AliveIDs()[0])
	before := nw.TotalMessages()
	if err := entry.Put(ids.FromUint64(5), "v"); err != nil {
		t.Fatal(err)
	}
	if nw.TotalMessages() <= before {
		t.Error("Put must cost messages")
	}
}

func TestVerifyRingDetectsDamage(t *testing.T) {
	nw := buildRing(t, 6, 15)
	alive := nw.AliveIDs()
	// Corrupt one node's successor pointer.
	n := nw.Node(alive[0])
	n.succList = []ids.ID{alive[3]}
	if err := nw.VerifyRing(); err == nil {
		t.Error("VerifyRing must detect a wrong successor")
	}
}

func TestLookupFromDeadNode(t *testing.T) {
	nw := buildRing(t, 4, 16)
	alive := nw.AliveIDs()
	n := nw.Node(alive[1])
	nw.Kill(alive[1])
	if _, _, err := n.Lookup(ids.FromUint64(1)); err != ErrDead {
		t.Errorf("lookup from dead node: %v", err)
	}
}

func TestSortIDs(t *testing.T) {
	rng := xrand.New(55)
	for _, n := range []int{0, 1, 2, 11, 12, 13, 100, 500} {
		xs := make([]ids.ID, n)
		for i := range xs {
			xs[i] = ids.Random(rng)
		}
		sortIDs(xs)
		for i := 1; i < len(xs); i++ {
			if xs[i].Less(xs[i-1]) {
				t.Fatalf("n=%d not sorted at %d", n, i)
			}
		}
	}
}

func BenchmarkLookup64(b *testing.B) {
	nw := buildRing(b, 64, 20)
	nw.FixAllFingers()
	entry := nw.Node(nw.AliveIDs()[0])
	rng := xrand.New(21)
	probes := make([]ids.ID, 256)
	for i := range probes {
		probes[i] = ids.Random(rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := entry.Lookup(probes[i%len(probes)]); err != nil {
			b.Fatal(err)
		}
	}
}
