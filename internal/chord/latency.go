package chord

import (
	"crypto/sha1"
	"encoding/binary"
	"math"

	"chordbalance/internal/ids"
)

// LatencyModel maps a pair of node IDs to the one-way network latency of
// a message between them (arbitrary units; the plane model below is in
// unit-square distances). Chord's identifier space is deliberately blind
// to network proximity, so consecutive routing hops criss-cross the
// physical network — installing a model makes that cost visible.
type LatencyModel func(from, to ids.ID) float64

// SetLatencyModel installs a latency model; nil (the default) disables
// latency accounting. Call before driving traffic.
func (nw *Network) SetLatencyModel(m LatencyModel) { nw.latency = m }

// TotalLatency returns the accumulated latency of all charged messages
// since the overlay was created (0 when no model is installed).
func (nw *Network) TotalLatency() float64 { return nw.totalLatency }

// chargeBetween records a message with known endpoints.
func (nw *Network) chargeBetween(kind string, from, to ids.ID) {
	nw.charge(kind)
	if nw.latency != nil {
		nw.totalLatency += nw.latency(from, to)
	}
}

// UniformPlaneLatency places every node deterministically (by hashing
// its ID) at a point in the unit square and returns Euclidean distances:
// the standard synthetic stand-in for geographic spread. Two overlays
// built from the same node IDs therefore agree on every pairwise
// latency.
func UniformPlaneLatency() LatencyModel {
	coord := func(id ids.ID) (x, y float64) {
		sum := sha1.Sum(append([]byte("coord:"), id[:]...))
		x = float64(binary.BigEndian.Uint32(sum[0:4])) / float64(1<<32)
		y = float64(binary.BigEndian.Uint32(sum[4:8])) / float64(1<<32)
		return
	}
	return func(from, to ids.ID) float64 {
		x1, y1 := coord(from)
		x2, y2 := coord(to)
		return math.Hypot(x2-x1, y2-y1)
	}
}

// LookupWithLatency resolves key like Lookup and additionally returns the
// route's total latency under the installed model (0 without one).
func (n *Node) LookupWithLatency(key ids.ID) (owner *Node, hops int, latency float64, err error) {
	before := n.nw.totalLatency
	owner, hops, err = n.Lookup(key)
	return owner, hops, n.nw.totalLatency - before, err
}
