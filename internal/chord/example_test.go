package chord_test

import (
	"fmt"
	"log"

	"chordbalance/internal/chord"
	"chordbalance/internal/keys"
)

// Example builds a small overlay, stores a value, crashes a node, and
// shows the data surviving — the substrate behavior the paper's
// simulation assumes.
func Example() {
	nw := chord.NewNetwork(chord.Config{Replicas: 3})
	gen := keys.NewGenerator(7)
	entry, err := nw.Create(gen.Next())
	if err != nil {
		log.Fatal(err)
	}
	for i := 1; i < 12; i++ {
		if _, err := nw.Join(gen.Next(), entry); err != nil {
			log.Fatal(err)
		}
		nw.StabilizeAll()
	}
	nw.StabilizeUntilConverged(64)
	nw.FixAllFingers()

	key := keys.HashString("config")
	if err := entry.Put(key, "v1"); err != nil {
		log.Fatal(err)
	}
	nw.StabilizeAll() // replicate

	// Crash the key's owner; routing heals and a replica answers.
	owner, _, err := entry.Lookup(key)
	if err != nil {
		log.Fatal(err)
	}
	nw.Kill(owner.ID())
	nw.StabilizeUntilConverged(128)

	v, err := entry.Get(key)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after owner crash:", v)
	fmt.Println("ring consistent:", nw.VerifyRing() == nil)
	// Output:
	// after owner crash: v1
	// ring consistent: true
}
