package chord

import (
	"math"
	"testing"

	"chordbalance/internal/ids"
	"chordbalance/internal/xrand"
)

func TestUniformPlaneLatencyProperties(t *testing.T) {
	m := UniformPlaneLatency()
	a, b := ids.FromUint64(1), ids.FromUint64(2)
	if m(a, a) != 0 {
		t.Error("self latency must be 0")
	}
	if m(a, b) != m(b, a) {
		t.Error("latency must be symmetric")
	}
	if d := m(a, b); d <= 0 || d > math.Sqrt2 {
		t.Errorf("latency %v outside (0, sqrt2]", d)
	}
	// Deterministic across model instances.
	if UniformPlaneLatency()(a, b) != m(a, b) {
		t.Error("model must be deterministic")
	}
}

func TestLookupWithLatency(t *testing.T) {
	nw := buildRing(t, 32, 60)
	nw.FixAllFingers()
	nw.SetLatencyModel(UniformPlaneLatency())
	entry := nw.Node(nw.AliveIDs()[0])
	rng := xrand.New(61)
	var totalHops int
	var totalLat float64
	for i := 0; i < 100; i++ {
		_, hops, lat, err := entry.LookupWithLatency(ids.Random(rng))
		if err != nil {
			t.Fatal(err)
		}
		if hops == 0 && lat != 0 {
			t.Fatalf("zero hops but latency %v", lat)
		}
		if lat < 0 || lat > float64(hops)*math.Sqrt2 {
			t.Fatalf("latency %v inconsistent with %d hops", lat, hops)
		}
		totalHops += hops
		totalLat += lat
	}
	if totalLat <= 0 {
		t.Fatal("no latency accumulated")
	}
	// Mean per-hop latency of random points in the unit square is ~0.52;
	// accept a broad band.
	perHop := totalLat / float64(totalHops)
	if perHop < 0.3 || perHop > 0.8 {
		t.Errorf("mean per-hop latency %v, want ~0.52 (proximity-blind routing)", perHop)
	}
	if nw.TotalLatency() < totalLat {
		t.Error("network total must include lookup latency")
	}
}

func TestLatencyDisabledByDefault(t *testing.T) {
	nw := buildRing(t, 8, 62)
	entry := nw.Node(nw.AliveIDs()[0])
	if _, _, err := entry.Lookup(ids.FromUint64(5)); err != nil {
		t.Fatal(err)
	}
	if nw.TotalLatency() != 0 {
		t.Error("latency accounted without a model")
	}
}
