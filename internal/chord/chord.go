// Package chord implements the Chord distributed hash table protocol
// (Stoica et al., SIGCOMM 2001) that the paper's simulation assumes as its
// substrate: finger-table routing, iterative lookups, the stabilization
// protocol, successor lists for failure tolerance, and the active
// key-replication scheme of the authors' ChordReduce system.
//
// The network is simulated in-process: remote procedure calls are direct
// method calls that increment message counters, and node failures are
// modeled by marking nodes dead so that calls to them fail the way a
// timeout would. Execution is single-threaded and deterministic; the
// packages layered on top (internal/chordreduce) drive maintenance rounds
// explicitly.
//
// This package exists to validate — with measured hop counts, repair
// rounds, and message totals — the assumptions the tick simulator
// (internal/sim) charges for joins, Sybil placements, and maintenance.
package chord

import (
	"errors"
	"fmt"

	"chordbalance/internal/faults"
	"chordbalance/internal/ids"
)

// Errors surfaced by protocol operations.
var (
	ErrDead      = errors.New("chord: node is dead")
	ErrNoRoute   = errors.New("chord: lookup exceeded hop budget")
	ErrNotFound  = errors.New("chord: key not found")
	ErrDuplicate = errors.New("chord: node ID already present")
	ErrIsolated  = errors.New("chord: node has no live successor")
)

// Config tunes the protocol.
type Config struct {
	// SuccessorListLen is r in the Chord paper: the number of successors
	// each node tracks for failure tolerance. Default 8.
	SuccessorListLen int
	// Replicas is how many successors mirror each key (the paper's
	// "active and aggressive" backup assumption, §V). Default 3; a
	// negative value disables replication entirely, which is how the
	// fault experiments demonstrate that crash-stop failures lose keys
	// without it.
	Replicas int
	// MaxHops bounds a single lookup; lookups that exceed it return
	// ErrNoRoute. Default 3*160.
	MaxHops int
}

func (c Config) withDefaults() Config {
	if c.SuccessorListLen == 0 {
		c.SuccessorListLen = 8
	}
	if c.Replicas == 0 {
		c.Replicas = 3
	}
	if c.MaxHops == 0 {
		c.MaxHops = 3 * ids.Bits
	}
	return c
}

// Network is the in-process overlay: the node registry plus message
// accounting.
type Network struct {
	cfg   Config
	nodes map[ids.ID]*Node
	msgs  map[string]int

	latency      LatencyModel
	totalLatency float64

	// faults is the optional fault injector every RPC is threaded
	// through (see transport.go); tstats accumulates its activity and
	// tick is the overlay's logical clock.
	faults *faults.Injector
	tstats TransportStats
	tick   int

	// registry remembers every key ever stored via Put so the repair
	// instrumentation (repair.go) can audit what survived a failure.
	registry map[ids.ID]string

	// obsm holds the trace-metric handles registered by SetTracer; nil
	// when tracing is disabled (see trace.go).
	obsm *chordMetrics
}

// NewNetwork returns an empty overlay.
func NewNetwork(cfg Config) *Network {
	return &Network{
		cfg:      cfg.withDefaults(),
		nodes:    make(map[ids.ID]*Node),
		msgs:     make(map[string]int),
		registry: make(map[ids.ID]string),
	}
}

// Messages returns the per-kind message counts accumulated so far.
func (nw *Network) Messages() map[string]int {
	out := make(map[string]int, len(nw.msgs))
	for k, v := range nw.msgs {
		out[k] = v
	}
	return out
}

// TotalMessages sums all message counts.
func (nw *Network) TotalMessages() int {
	t := 0
	for _, v := range nw.msgs {
		t += v
	}
	return t
}

func (nw *Network) charge(kind string) { nw.msgs[kind]++ }

// Node returns the node with the given ID, alive or dead, or nil.
func (nw *Network) Node(id ids.ID) *Node { return nw.nodes[id] }

// AliveIDs returns the IDs of live nodes in ascending order.
func (nw *Network) AliveIDs() []ids.ID {
	out := make([]ids.ID, 0, len(nw.nodes))
	for id, n := range nw.nodes {
		if n.alive {
			out = append(out, id)
		}
	}
	sortIDs(out)
	return out
}

func sortIDs(xs []ids.ID) {
	// Insertion sort is fine for the test-scale rings this runs on, but
	// use a proper sort for larger overlays.
	quickSortIDs(xs, 0, len(xs)-1)
}

func quickSortIDs(xs []ids.ID, lo, hi int) {
	for lo < hi {
		if hi-lo < 12 {
			for i := lo + 1; i <= hi; i++ {
				for j := i; j > lo && xs[j].Less(xs[j-1]); j-- {
					xs[j], xs[j-1] = xs[j-1], xs[j]
				}
			}
			return
		}
		p := xs[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for xs[i].Less(p) {
				i++
			}
			for p.Less(xs[j]) {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		if j-lo < hi-i {
			quickSortIDs(xs, lo, j)
			lo = i
		} else {
			quickSortIDs(xs, i, hi)
			hi = j
		}
	}
}

// Create bootstraps the overlay with its first node.
func (nw *Network) Create(id ids.ID) (*Node, error) {
	if _, ok := nw.nodes[id]; ok {
		return nil, ErrDuplicate
	}
	n := newNode(nw, id)
	n.succList = []ids.ID{id}
	n.pred = id
	n.hasPred = true
	nw.nodes[id] = n
	return n, nil
}

// Join adds a node at id using bootstrap to find its place, transfers the
// keys it is now responsible for, and links it into the ring. The caller
// should drive a few StabilizeAll rounds afterwards to disseminate the
// change, exactly as a deployment's periodic timers would.
func (nw *Network) Join(id ids.ID, bootstrap *Node) (*Node, error) {
	if _, ok := nw.nodes[id]; ok {
		return nil, ErrDuplicate
	}
	if !bootstrap.alive {
		return nil, ErrDead
	}
	succ, _, err := bootstrap.Lookup(id)
	if err != nil {
		return nil, fmt.Errorf("chord: join lookup: %w", err)
	}
	// The join handshake is one RPC to the successor; under faults it can
	// time out, leaving the joiner outside the ring to try again later.
	if err := nw.send("join", id, succ.id, false); err != nil {
		return nil, fmt.Errorf("chord: join handshake: %w", err)
	}
	n := newNode(nw, id)
	nw.nodes[id] = n
	n.succList = append([]ids.ID{succ.id}, trim(succ.succList, nw.cfg.SuccessorListLen-1)...)
	// Acquire the keys in (pred(succ), id] immediately (§V: a joining
	// node "acquires all the work it is responsible for").
	succ.transferTo(n)
	n.stabilize()
	return n, nil
}

// Kill marks a node dead. Its state stays around (a crashed machine does
// not clean up after itself); the protocol must route and repair around it.
func (nw *Network) Kill(id ids.ID) {
	if n, ok := nw.nodes[id]; ok {
		n.alive = false
	}
}

// Leave removes a node gracefully: it pushes its keys to its successor
// before departing.
func (nw *Network) Leave(id ids.ID) error {
	n, ok := nw.nodes[id]
	if !ok || !n.alive {
		return ErrDead
	}
	succ := n.firstLiveSuccessor()
	if succ == nil {
		// Last node: nowhere to push keys; just die.
		n.alive = false
		delete(nw.nodes, id)
		return nil
	}
	// Push keys in sorted order so per-message fault decisions are
	// deterministic; a transfer lost in transit means the key departs
	// with the leaver (visible to ProbeKeys unless a replica survives).
	for _, k := range sortedDataKeys(n.data) {
		if err := nw.send("transfer", n.id, succ.id, false); err != nil {
			continue
		}
		succ.data[k] = n.data[k]
	}
	n.alive = false
	delete(nw.nodes, id)
	return nil
}

// StabilizeAll runs one maintenance round on every live node: stabilize,
// successor-list refresh, one finger fixed, and replica repair. Returns
// the number of live nodes touched.
func (nw *Network) StabilizeAll() int {
	count := 0
	for _, id := range nw.AliveIDs() {
		n := nw.nodes[id]
		n.stabilize()
		n.fixNextFinger()
		n.repairReplicas()
		count++
	}
	return count
}

// StabilizeUntilConverged runs maintenance rounds until the ring's
// successor pointers match the sorted live IDs or maxRounds passes.
// It reports the number of rounds used and whether the ring converged.
func (nw *Network) StabilizeUntilConverged(maxRounds int) (int, bool) {
	for r := 1; r <= maxRounds; r++ {
		nw.StabilizeAll()
		if nw.VerifyRing() == nil {
			return r, true
		}
	}
	return maxRounds, false
}

// VerifyRing checks that every live node's first live successor is the
// next live ID on the ring. It returns nil when the ring is perfect.
func (nw *Network) VerifyRing() error {
	alive := nw.AliveIDs()
	if len(alive) == 0 {
		return nil
	}
	for i, id := range alive {
		want := alive[(i+1)%len(alive)]
		n := nw.nodes[id]
		succ := n.firstLiveSuccessor()
		if succ == nil {
			return fmt.Errorf("chord: node %s isolated", id.Short())
		}
		if succ.id != want {
			return fmt.Errorf("chord: node %s successor %s, want %s",
				id.Short(), succ.id.Short(), want.Short())
		}
	}
	return nil
}

// FixAllFingers fully rebuilds every live node's finger table; tests use
// it to measure best-case lookup hops.
func (nw *Network) FixAllFingers() {
	for _, id := range nw.AliveIDs() {
		n := nw.nodes[id]
		for i := 0; i < ids.Bits; i++ {
			n.fixFinger(i)
		}
	}
}

func trim(xs []ids.ID, n int) []ids.ID {
	if len(xs) > n {
		xs = xs[:n]
	}
	return append([]ids.ID(nil), xs...)
}
