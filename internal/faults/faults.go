// Package faults defines a deterministic, seed-driven fault plan shared by
// the protocol layer (internal/chord) and the tick simulator (internal/sim).
//
// The paper evaluates its load-balancing strategies under *graceful* churn
// and leans on the "active and aggressive" replication assumption (§V) to
// claim no work is lost. Leslie's "Reliable Data Storage in Distributed
// Hash Tables" shows that replication maintenance cost and durability under
// failure are the real constraints, so this package supplies the missing
// adversity: crash-stop node failures, correlated failure bursts, message
// drop/duplication/delay, and two-sided ring partitions that later heal.
//
// Everything is denominated in abstract ticks and drawn from private
// xoshiro streams seeded by Plan.Seed, never from wall clocks or global
// randomness, so a run under any fault plan is exactly reproducible. A
// zero Plan is provably inert: no decision method consumes randomness
// until the corresponding rate is nonzero, which the determinism and
// golden regression suites depend on.
package faults

import (
	"encoding/binary"
	"fmt"
	"math"

	"chordbalance/internal/ids"
	"chordbalance/internal/xrand"
)

// Plan is a complete, declarative fault schedule. The zero value injects
// nothing. Probabilities are per message (Drop/Dup/Delay) or per node per
// tick (Crash); everything else is tick-denominated.
type Plan struct {
	// Seed drives every fault decision. Independent from the simulation
	// seed so the same workload can be replayed under different faults
	// (and vice versa).
	Seed uint64

	// DropRate is the probability that one RPC message is lost in
	// transit. Senders retry up to MaxRetries times with deterministic
	// exponential backoff before reporting a timeout.
	DropRate float64
	// DupRate is the probability a delivered message is duplicated (the
	// duplicate is charged but has no further effect — the protocol's
	// operations are idempotent).
	DupRate float64
	// DelayRate is the probability a delivered message is delayed; the
	// delay is uniform in [1, MaxDelayTicks] ticks and accounted, not
	// reordered (the in-process overlay stays sequentially consistent).
	DelayRate float64
	// MaxDelayTicks bounds one message delay. Default 4 (when DelayRate
	// is set).
	MaxDelayTicks int
	// MaxRetries bounds resends after a drop. Default 3.
	MaxRetries int
	// BackoffBase is the backoff before the first retry, in ticks;
	// retry k waits BackoffBase << (k-1). Default 1.
	BackoffBase int

	// CrashRate is each live node's per-tick probability of crash-stop
	// failure: the node disappears without handing off its keys.
	CrashRate float64
	// BurstEvery and BurstSize model correlated failures: every
	// BurstEvery ticks, BurstSize additional nodes crash at once (a rack
	// or AZ going dark). Both must be set for bursts to fire.
	BurstEvery int
	BurstSize  int

	// PartitionFrac splits the identifier space two ways: IDs whose
	// leading 64 bits fall below PartitionFrac of the space form the
	// minority side, and messages across the cut fail while the
	// partition is active.
	PartitionFrac float64
	// PartitionStart is the first tick the partition is active.
	PartitionStart int
	// PartitionHeal is the first tick the partition is healed again;
	// 0 means it never heals on its own (an Injector can still be healed
	// explicitly, e.g. by cmd/chordnet's heal command).
	PartitionHeal int
}

// Zero reports whether the plan injects nothing at all, i.e. running
// under it is byte-identical to running without a fault layer.
func (p Plan) Zero() bool {
	return p.DropRate == 0 && p.DupRate == 0 && p.DelayRate == 0 &&
		p.CrashRate == 0 && (p.BurstEvery == 0 || p.BurstSize == 0) &&
		p.PartitionFrac == 0
}

// Validate reports plan errors an injector would choke on.
func (p Plan) Validate() error {
	check01 := func(name string, v float64) error {
		if v < 0 || v > 1 || math.IsNaN(v) {
			return fmt.Errorf("faults: %s %v outside [0,1]", name, v)
		}
		return nil
	}
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"DropRate", p.DropRate},
		{"DupRate", p.DupRate},
		{"DelayRate", p.DelayRate},
		{"CrashRate", p.CrashRate},
		{"PartitionFrac", p.PartitionFrac},
	} {
		if err := check01(c.name, c.v); err != nil {
			return err
		}
	}
	switch {
	case p.MaxDelayTicks < 0:
		return fmt.Errorf("faults: MaxDelayTicks must be >= 0, got %d", p.MaxDelayTicks)
	case p.MaxRetries < 0:
		return fmt.Errorf("faults: MaxRetries must be >= 0, got %d", p.MaxRetries)
	case p.BackoffBase < 0:
		return fmt.Errorf("faults: BackoffBase must be >= 0, got %d", p.BackoffBase)
	case p.BurstEvery < 0:
		return fmt.Errorf("faults: BurstEvery must be >= 0, got %d", p.BurstEvery)
	case p.BurstSize < 0:
		return fmt.Errorf("faults: BurstSize must be >= 0, got %d", p.BurstSize)
	case p.PartitionStart < 0:
		return fmt.Errorf("faults: PartitionStart must be >= 0, got %d", p.PartitionStart)
	case p.PartitionHeal < 0:
		return fmt.Errorf("faults: PartitionHeal must be >= 0, got %d", p.PartitionHeal)
	case p.PartitionHeal > 0 && p.PartitionHeal <= p.PartitionStart:
		return fmt.Errorf("faults: PartitionHeal %d must be after PartitionStart %d",
			p.PartitionHeal, p.PartitionStart)
	}
	return nil
}

func (p Plan) withDefaults() Plan {
	if p.MaxRetries == 0 {
		p.MaxRetries = 3
	}
	if p.BackoffBase == 0 {
		p.BackoffBase = 1
	}
	if p.MaxDelayTicks == 0 {
		p.MaxDelayTicks = 4
	}
	return p
}

// Backoff returns the deterministic exponential backoff, in ticks, spent
// before retry attempt k (k = 1 is the first retry): base << (k-1),
// saturating so pathological retry counts cannot overflow.
func Backoff(base, k int) int {
	if base <= 0 {
		base = 1
	}
	if k < 1 {
		k = 1
	}
	shift := k - 1
	if shift > 20 { // 1M ticks: far beyond any bounded retry budget
		shift = 20
	}
	return base << shift
}

// Injector turns a Plan into per-decision answers. It keeps two private
// RNG streams — one for message-level faults, one for crash scheduling —
// so that, e.g., probing lookups (which consume message draws) can never
// perturb which nodes crash. Not safe for concurrent use; give each
// overlay or simulation its own instance.
type Injector struct {
	plan  Plan
	msg   *xrand.Rand
	crash *xrand.Rand
	tick  int

	// manual partition override (cmd/chordnet's partition/heal commands).
	manual     bool
	manualOn   bool
	manualFrac float64
}

// New validates the plan and returns an injector positioned at tick 0.
func New(p Plan) (*Injector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Injector{
		plan:  p.withDefaults(),
		msg:   xrand.New(p.Seed ^ 0xa2f267700a5a5a5a),
		crash: xrand.New(p.Seed ^ 0x5a5a5a0a0077f2a6),
	}, nil
}

// Plan returns the plan with defaults applied.
func (in *Injector) Plan() Plan { return in.plan }

// Zero reports whether the injector can ever fire (manual partitions
// included).
func (in *Injector) Zero() bool {
	if in.manual && in.manualOn {
		return false
	}
	return in.plan.Zero()
}

// Tick returns the injector's current logical time.
func (in *Injector) Tick() int { return in.tick }

// AdvanceTo moves logical time forward (never backward).
func (in *Injector) AdvanceTo(tick int) {
	if tick > in.tick {
		in.tick = tick
	}
}

// DropNow decides whether the next message transmission is lost. It
// consumes no randomness when DropRate is 0 or 1.
func (in *Injector) DropNow() bool { return in.msg.Bool(in.plan.DropRate) }

// DupNow decides whether a delivered message is duplicated.
func (in *Injector) DupNow() bool { return in.msg.Bool(in.plan.DupRate) }

// DelayNow returns the delay, in ticks, imposed on a delivered message
// (0 almost always; uniform in [1, MaxDelayTicks] when the delay fires).
func (in *Injector) DelayNow() int {
	if !in.msg.Bool(in.plan.DelayRate) {
		return 0
	}
	return 1 + in.msg.Intn(in.plan.MaxDelayTicks)
}

// CrashNow decides whether one live-node candidate crash-stops this tick.
// Callers must iterate candidates in a deterministic order.
func (in *Injector) CrashNow() bool { return in.crash.Bool(in.plan.CrashRate) }

// BurstNow returns how many additional correlated crashes fire this tick
// (0 on non-burst ticks).
func (in *Injector) BurstNow() int {
	if in.plan.BurstEvery <= 0 || in.plan.BurstSize <= 0 {
		return 0
	}
	if in.tick > 0 && in.tick%in.plan.BurstEvery == 0 {
		return in.plan.BurstSize
	}
	return 0
}

// BurstTick reports whether the current tick is a scheduled
// correlated-crash burst tick. Like BurstNow it consumes no randomness
// (the burst schedule is pure tick arithmetic), so tracers can tag
// burst ticks (docs/OBSERVABILITY.md) without perturbing the fault
// stream.
func (in *Injector) BurstTick() bool { return in.BurstNow() > 0 }

// Pick returns a deterministic victim index in [0, n) for burst
// selection. It panics if n <= 0.
func (in *Injector) Pick(n int) int { return in.crash.Intn(n) }

// ForcePartition activates a partition immediately with the given
// fraction, overriding the plan's schedule until Heal is called.
func (in *Injector) ForcePartition(frac float64) error {
	if frac <= 0 || frac >= 1 {
		return fmt.Errorf("faults: partition fraction %v outside (0,1)", frac)
	}
	in.manual = true
	in.manualOn = true
	in.manualFrac = frac
	return nil
}

// Heal deactivates any partition — manual or scheduled — from now on.
func (in *Injector) Heal() {
	in.manual = true
	in.manualOn = false
}

// PartitionActive reports whether a partition is in force at the current
// tick.
func (in *Injector) PartitionActive() bool {
	if in.manual {
		return in.manualOn
	}
	if in.plan.PartitionFrac == 0 {
		return false
	}
	if in.tick < in.plan.PartitionStart {
		return false
	}
	if in.plan.PartitionHeal > 0 && in.tick >= in.plan.PartitionHeal {
		return false
	}
	return true
}

func (in *Injector) partitionFrac() float64 {
	if in.manual && in.manualOn {
		return in.manualFrac
	}
	return in.plan.PartitionFrac
}

// MinoritySide reports which side of the cut id falls on: true when its
// leading 64 bits land in the first PartitionFrac of the identifier
// space. The mapping is a pure function of the ID, so both layers and
// both sides of the cut agree on it without coordination.
func (in *Injector) MinoritySide(id ids.ID) bool {
	u := binary.BigEndian.Uint64(id[:8])
	return float64(u)/float64(1<<32)/float64(1<<32) < in.partitionFrac()
}

// SameSide reports whether a message between the two IDs can cross the
// network at the current tick (always true with no active partition).
func (in *Injector) SameSide(a, b ids.ID) bool {
	if !in.PartitionActive() {
		return true
	}
	return in.MinoritySide(a) == in.MinoritySide(b)
}
