package faults

import (
	"fmt"
	"testing"

	"chordbalance/internal/ids"
	"chordbalance/internal/keys"
)

func TestValidate(t *testing.T) {
	bad := []Plan{
		{DropRate: -0.1},
		{DropRate: 1.5},
		{DupRate: 2},
		{DelayRate: -1},
		{CrashRate: -0.01},
		{CrashRate: 1.0001},
		{PartitionFrac: -0.2},
		{MaxRetries: -1},
		{BackoffBase: -2},
		{MaxDelayTicks: -1},
		{BurstEvery: -5},
		{BurstSize: -1},
		{PartitionStart: -1},
		{PartitionHeal: -3},
		{PartitionFrac: 0.5, PartitionStart: 10, PartitionHeal: 10},
		{PartitionFrac: 0.5, PartitionStart: 10, PartitionHeal: 4},
	}
	for i, p := range bad {
		if _, err := New(p); err == nil {
			t.Errorf("plan %d (%+v) must be rejected", i, p)
		}
	}
	good := []Plan{
		{},
		{DropRate: 0.1, DupRate: 0.05, DelayRate: 0.2, CrashRate: 0.01},
		{BurstEvery: 10, BurstSize: 3},
		{PartitionFrac: 0.3, PartitionStart: 5, PartitionHeal: 50},
		{PartitionFrac: 0.3}, // active from tick 0, never heals
	}
	for i, p := range good {
		if _, err := New(p); err != nil {
			t.Errorf("plan %d (%+v) wrongly rejected: %v", i, p, err)
		}
	}
}

func TestZero(t *testing.T) {
	zero := []Plan{
		{},
		{Seed: 99},          // a seed alone injects nothing
		{MaxRetries: 7},     // retry policy without faults is inert
		{BurstEvery: 10},    // burst with no size never fires
		{BurstSize: 3},      // size with no cadence never fires
		{PartitionStart: 5}, // schedule without a fraction is inert
		{MaxDelayTicks: 9, Seed: 1},
	}
	for i, p := range zero {
		if !p.Zero() {
			t.Errorf("plan %d (%+v) should be Zero", i, p)
		}
	}
	nonzero := []Plan{
		{DropRate: 0.01},
		{DupRate: 0.01},
		{DelayRate: 0.01},
		{CrashRate: 0.0001},
		{BurstEvery: 10, BurstSize: 1},
		{PartitionFrac: 0.5},
	}
	for i, p := range nonzero {
		if p.Zero() {
			t.Errorf("plan %d (%+v) should not be Zero", i, p)
		}
	}
}

// TestZeroRatesConsumeNoRandomness is the inertness guarantee: decision
// methods whose rate is zero must not advance either RNG stream, so a
// plan that only crashes produces the same crash schedule no matter how
// many message-fault questions were asked in between (and vice versa).
func TestZeroRatesConsumeNoRandomness(t *testing.T) {
	mk := func() *Injector {
		in, err := New(Plan{Seed: 7, CrashRate: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	a, b := mk(), mk()
	// Pepper a with message-level questions; its DropRate/DupRate/
	// DelayRate are all zero so they must not draw.
	for i := 0; i < 1000; i++ {
		if a.DropNow() || a.DupNow() || a.DelayNow() != 0 {
			t.Fatal("zero-rate decision fired")
		}
	}
	for i := 0; i < 64; i++ {
		if got, want := a.CrashNow(), b.CrashNow(); got != want {
			t.Fatalf("crash draw %d diverged after no-op message draws", i)
		}
	}
}

// TestSameSeedSameSequence pins determinism: two injectors built from the
// same plan answer every question identically.
func TestSameSeedSameSequence(t *testing.T) {
	plan := Plan{Seed: 42, DropRate: 0.3, DupRate: 0.1, DelayRate: 0.2,
		CrashRate: 0.05, BurstEvery: 10, BurstSize: 2}
	mk := func() *Injector {
		in, err := New(plan)
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	a, b := mk(), mk()
	var sa, sb string
	for tick := 1; tick <= 200; tick++ {
		a.AdvanceTo(tick)
		b.AdvanceTo(tick)
		sa += fmt.Sprintf("%v%v%d%v%d", a.DropNow(), a.DupNow(), a.DelayNow(), a.CrashNow(), a.BurstNow())
		sb += fmt.Sprintf("%v%v%d%v%d", b.DropNow(), b.DupNow(), b.DelayNow(), b.CrashNow(), b.BurstNow())
	}
	if sa != sb {
		t.Error("same plan, different decision sequences")
	}
}

func TestBackoff(t *testing.T) {
	cases := []struct{ base, k, want int }{
		{1, 1, 1}, {1, 2, 2}, {1, 3, 4}, {1, 4, 8},
		{2, 1, 2}, {2, 3, 8},
		{0, 1, 1},        // degenerate base treated as 1
		{1, 0, 1},        // degenerate attempt treated as 1
		{1, 64, 1 << 20}, // saturates
	}
	for _, c := range cases {
		if got := Backoff(c.base, c.k); got != c.want {
			t.Errorf("Backoff(%d,%d) = %d, want %d", c.base, c.k, got, c.want)
		}
	}
}

func TestPartitionSchedule(t *testing.T) {
	in, err := New(Plan{PartitionFrac: 0.4, PartitionStart: 10, PartitionHeal: 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		tick   int
		active bool
	}{{0, false}, {9, false}, {10, true}, {19, true}, {20, false}, {100, false}} {
		in.AdvanceTo(c.tick)
		if got := in.PartitionActive(); got != c.active {
			t.Errorf("tick %d: active = %v, want %v", c.tick, got, c.active)
		}
	}
}

func TestPartitionSidesAndHeal(t *testing.T) {
	in, err := New(Plan{PartitionFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !in.PartitionActive() {
		t.Fatal("frac without schedule should be active from tick 0")
	}
	// With frac 0.5, sides split on the top bit; generate IDs until we
	// have one on each side.
	g := keys.NewGenerator(3)
	var lo, hi ids.ID
	var haveLo, haveHi bool
	for i := 0; i < 64 && !(haveLo && haveHi); i++ {
		id := g.Next()
		if in.MinoritySide(id) {
			lo, haveLo = id, true
		} else {
			hi, haveHi = id, true
		}
	}
	if !haveLo || !haveHi {
		t.Fatal("could not find IDs on both sides")
	}
	if in.SameSide(lo, hi) {
		t.Error("cross-cut IDs reported same side")
	}
	if !in.SameSide(lo, lo) || !in.SameSide(hi, hi) {
		t.Error("same-side IDs reported cross-cut")
	}
	in.Heal()
	if in.PartitionActive() {
		t.Error("partition still active after Heal")
	}
	if !in.SameSide(lo, hi) {
		t.Error("healed network still blocks cross-cut messages")
	}
	if err := in.ForcePartition(0.5); err != nil {
		t.Fatal(err)
	}
	if !in.PartitionActive() || in.SameSide(lo, hi) {
		t.Error("ForcePartition did not re-split the network")
	}
	if err := in.ForcePartition(0); err == nil {
		t.Error("ForcePartition(0) must be rejected")
	}
}

// TestRatesRoughlyHold sanity-checks that decision frequencies track the
// configured probabilities (loose bounds; this is a smoke test, not a
// statistical one).
func TestRatesRoughlyHold(t *testing.T) {
	in, err := New(Plan{Seed: 9, DropRate: 0.25, CrashRate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	drops, crashes := 0, 0
	for i := 0; i < n; i++ {
		if in.DropNow() {
			drops++
		}
		if in.CrashNow() {
			crashes++
		}
	}
	if f := float64(drops) / n; f < 0.2 || f > 0.3 {
		t.Errorf("drop frequency %.3f far from 0.25", f)
	}
	if f := float64(crashes) / n; f < 0.07 || f > 0.13 {
		t.Errorf("crash frequency %.3f far from 0.1", f)
	}
}
