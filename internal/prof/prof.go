// Package prof wires the stdlib runtime/pprof profilers behind the
// -cpuprofile/-memprofile flags shared by cmd/dhtsim, cmd/dhtsweep and
// cmd/dhtbench, so perf PRs can attach evidence (EXPERIMENTS.md,
// docs/PERFORMANCE.md). It never reads the wall clock and is inert when
// both paths are empty.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling (when cpuPath != "") and arranges a heap
// snapshot on stop (when memPath != ""). The returned stop function must
// be called exactly once, typically via defer; it reports profile-write
// problems to stderr because by then the command's real output already
// happened.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			_ = f.Close() // best-effort cleanup; the profile error wins
			return nil, err
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}, nil
}
