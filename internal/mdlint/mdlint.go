// Package mdlint is a stdlib-only checker for the repository's Markdown
// documentation: it verifies that every relative link resolves to a file
// that exists and that every #fragment points at a real heading anchor
// (GitHub slug rules). External URLs (anything with a scheme) are never
// fetched — the checker is offline and deterministic, so `make lint` and
// CI can depend on it. cmd/mdcheck is the CLI front end; the doc-graph
// it protects is indexed in README.md's documentation map.
package mdlint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Finding is one broken link, rendered as "file:line: message".
type Finding struct {
	File   string // module-relative path of the file containing the link
	Line   int    // 1-based line number of the link
	Link   string // the raw link target as written
	Reason string // why it is broken
}

// String renders the finding in file:line form for grep-friendly output.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: link (%s): %s", f.File, f.Line, f.Link, f.Reason)
}

// linkRe matches inline Markdown links and images: [text](target) and
// ![alt](target), with an optional "title". Reference-style links are
// not used in this repository.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^()\s]+)(?:\s+"[^"]*")?\)`)

// codeSpanRe strips inline code spans so `[i]` in code is not parsed as
// a link.
var codeSpanRe = regexp.MustCompile("`[^`]*`")

// headingRe matches ATX headings (outside fenced code blocks).
var headingRe = regexp.MustCompile(`^(#{1,6})\s+(.*?)\s*#*\s*$`)

// schemeRe recognizes absolute URLs (http:, https:, mailto:, ...),
// which the offline checker skips.
var schemeRe = regexp.MustCompile(`^[a-zA-Z][a-zA-Z0-9+.-]*:`)

// CheckTree walks root for .md files (skipping .git and other dot
// directories) and checks every relative link in each. Findings are
// sorted by file, then line.
func CheckTree(root string) ([]Finding, error) {
	var files []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name != "." && strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(strings.ToLower(d.Name()), ".md") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	var out []Finding
	anchors := make(map[string]map[string]bool) // cached per target file
	for _, path := range files {
		fs, err := checkFile(root, path, anchors)
		if err != nil {
			return nil, err
		}
		out = append(out, fs...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out, nil
}

// checkFile validates every relative link in one Markdown file.
func checkFile(root, path string, anchors map[string]map[string]bool) ([]Finding, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(root, path)
	if err != nil {
		rel = path
	}
	rel = filepath.ToSlash(rel)
	var out []Finding
	inFence := false
	for i, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") || strings.HasPrefix(trimmed, "~~~") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		clean := codeSpanRe.ReplaceAllString(line, "``")
		for _, m := range linkRe.FindAllStringSubmatch(clean, -1) {
			target := m[1]
			if schemeRe.MatchString(target) {
				continue // external URL: offline checker never fetches
			}
			if reason := checkTarget(root, path, target, anchors); reason != "" {
				out = append(out, Finding{File: rel, Line: i + 1, Link: target, Reason: reason})
			}
		}
	}
	return out, nil
}

// checkTarget resolves one relative link target (path#fragment) from
// the linking file and explains what is broken ("" when the link is
// fine).
func checkTarget(root, from, target string, anchors map[string]map[string]bool) string {
	pathPart, frag, hasFrag := strings.Cut(target, "#")
	dest := from // bare "#fragment" links point into the linking file
	if pathPart != "" {
		if strings.HasPrefix(pathPart, "/") {
			// Root-relative, GitHub-style.
			dest = filepath.Join(root, filepath.FromSlash(pathPart))
		} else {
			dest = filepath.Join(filepath.Dir(from), filepath.FromSlash(pathPart))
		}
		info, err := os.Stat(dest)
		if err != nil {
			return "file does not exist"
		}
		if info.IsDir() {
			if hasFrag {
				return "fragment on a directory link"
			}
			return ""
		}
	}
	if !hasFrag {
		return ""
	}
	if !strings.HasSuffix(strings.ToLower(dest), ".md") {
		return "fragment on a non-Markdown file"
	}
	set, err := anchorsOf(dest, anchors)
	if err != nil {
		return "cannot read link target"
	}
	if !set[frag] {
		return fmt.Sprintf("no heading with anchor #%s", frag)
	}
	return ""
}

// anchorsOf returns (and caches) the set of GitHub heading slugs defined
// in the Markdown file at path.
func anchorsOf(path string, cache map[string]map[string]bool) (map[string]bool, error) {
	if set, ok := cache[path]; ok {
		return set, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	set := make(map[string]bool)
	seen := make(map[string]int)
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") || strings.HasPrefix(trimmed, "~~~") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		m := headingRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		slug := Slug(m[2])
		if n := seen[slug]; n > 0 {
			set[fmt.Sprintf("%s-%d", slug, n)] = true
		} else {
			set[slug] = true
		}
		seen[slug]++
	}
	cache[path] = set
	return set, nil
}

// inlineLinkTextRe rewrites [text](url) heading fragments to just text
// before slugging, matching GitHub's anchor generation.
var inlineLinkTextRe = regexp.MustCompile(`\[([^\]]*)\]\([^)]*\)`)

// Slug converts a heading's text to its GitHub anchor: markdown
// formatting stripped, lowercased, punctuation removed, spaces turned
// into hyphens.
func Slug(heading string) string {
	h := inlineLinkTextRe.ReplaceAllString(heading, "$1")
	h = strings.ReplaceAll(h, "`", "")
	h = strings.ToLower(h)
	var b strings.Builder
	for _, r := range h {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-' || r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteRune('-')
		}
	}
	return b.String()
}
