package mdlint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a map of relative path -> content under a
// temp dir and returns the root.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, content := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestCheckTreeCleanLinks(t *testing.T) {
	root := writeTree(t, map[string]string{
		"README.md": "# Top\n\n## Usage Notes\n\n[design](docs/DESIGN.md) " +
			"[anchor](docs/DESIGN.md#goals) [self](#usage-notes) " +
			"[ext](https://example.com/missing) [root](/docs/DESIGN.md)\n",
		"docs/DESIGN.md": "# Design\n\n## Goals\n\n[up](../README.md#top)\n",
	})
	got, err := CheckTree(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("clean tree produced findings: %v", got)
	}
}

func TestCheckTreeBrokenFileAndAnchor(t *testing.T) {
	root := writeTree(t, map[string]string{
		"README.md":      "# Top\n\n[gone](docs/MISSING.md)\n\n[bad](docs/DESIGN.md#nope)\n",
		"docs/DESIGN.md": "# Design\n",
	})
	got, err := CheckTree(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(got), got)
	}
	if got[0].Line != 3 || !strings.Contains(got[0].Reason, "does not exist") {
		t.Errorf("finding 0 = %v", got[0])
	}
	if got[1].Line != 5 || !strings.Contains(got[1].Reason, "#nope") {
		t.Errorf("finding 1 = %v", got[1])
	}
}

func TestCheckTreeSkipsCodeFencesAndSpans(t *testing.T) {
	root := writeTree(t, map[string]string{
		"README.md": "# Top\n\n```\n[not a link](missing.md)\n```\n\n" +
			"Use `[broken](missing.md)` in code spans.\n",
	})
	got, err := CheckTree(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("fenced/span links were checked: %v", got)
	}
}

func TestCheckTreeDuplicateHeadings(t *testing.T) {
	root := writeTree(t, map[string]string{
		"a.md": "# Results\n\n## Setup\n\n## Setup\n\n[one](#setup) [two](#setup-1) [three](#setup-2)\n",
	})
	got, err := CheckTree(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Link != "#setup-2" {
		t.Fatalf("got %v, want exactly #setup-2 flagged", got)
	}
}

func TestSlug(t *testing.T) {
	cases := map[string]string{
		"Usage Notes":            "usage-notes",
		"`dhttrace` CLI":         "dhttrace-cli",
		"Table 2: Churn (10k)":   "table-2-churn-10k",
		"[linked](x.md) heading": "linked-heading",
		"Mixed_Case-and Spaces":  "mixed_case-and-spaces",
	}
	for in, want := range cases {
		if got := Slug(in); got != want {
			t.Errorf("Slug(%q) = %q, want %q", in, got, want)
		}
	}
}
