// Package obs is the repository's deterministic observability layer: a
// tiny, stdlib-only metrics registry (counters, gauges, fixed-bucket
// histograms) plus a per-tick structured trace emitted as JSONL through a
// pluggable Sink. It turns the paper's end-of-run aggregates (runtime
// factor, message totals, tick-0/5/35 snapshots) into continuous
// time-series — per-tick workload imbalance, strategy action counts,
// fault and transport activity — that cmd/dhttrace can summarize, plot
// as ASCII sparklines/histograms, and diff tick-by-tick across runs.
//
// Two properties are load-bearing and guarded by tests:
//
//   - Seed determinism. A trace is a pure function of the traced run:
//     metric names are emitted in sorted order, floats are formatted with
//     strconv's shortest round-trip form, and nothing here reads clocks,
//     map iteration order, or global randomness. Two same-seed runs
//     produce byte-identical trace files, so `dhttrace diff` doubles as a
//     determinism check stronger than the sim goldens.
//
//   - Zero overhead when disabled. The disabled state is a nil *Tracer:
//     every method is nil-receiver safe and returns immediately, callers
//     guard their metric-gathering work with one pointer test, and the
//     engine's hot loop performs zero additional allocations (asserted
//     by AllocsPerRun guards and the dhtbench regression gate).
//
// See docs/OBSERVABILITY.md for the metric catalog and the trace schema.
package obs

import (
	"fmt"
	"math"
	"sort"
)

// Kind classifies a metric.
type Kind int

// Metric kinds. Counters are cumulative int64s, gauges are
// instantaneous float64s, histograms are fixed-bucket int64 counts.
const (
	KindCounter Kind = iota
	KindGauge
	KindHist
)

// String names the kind as it appears in trace schema records.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHist:
		return "hist"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// metric is one registered time series; exactly one of the value fields
// is live, selected by kind.
type metric struct {
	name string
	unit string
	help string
	kind Kind

	ival    int64     // KindCounter
	fval    float64   // KindGauge
	edges   []float64 // KindHist: bucket boundaries, strictly increasing
	buckets []int64   // KindHist: len(edges)+1 counts (under, bins..., over)
}

// Counter is a cumulative int64 metric.
type Counter struct{ m *metric }

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.m.ival += delta }

// Set overwrites the counter, for mirroring a cumulative count that is
// maintained elsewhere (e.g. sim.MessageStats).
func (c *Counter) Set(v int64) { c.m.ival = v }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.m.ival }

// Gauge is an instantaneous float64 metric.
type Gauge struct{ m *metric }

// Set overwrites the gauge.
func (g *Gauge) Set(v float64) { g.m.fval = v }

// SetInt overwrites the gauge with an integer value.
func (g *Gauge) SetInt(v int64) { g.m.fval = float64(v) }

// SetBool overwrites the gauge with 1 (true) or 0 (false).
func (g *Gauge) SetBool(v bool) {
	if v {
		g.m.fval = 1
	} else {
		g.m.fval = 0
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.m.fval }

// Histogram is a fixed-bucket histogram over float64 observations.
// Bucket 0 counts observations below the first edge (for workload
// histograms with edges starting at 1 this is the paper's "idle nodes"
// bin), bucket i counts [edges[i-1], edges[i]), and the final bucket
// counts observations at or above the last edge.
type Histogram struct{ m *metric }

// Observe records one observation.
func (h *Histogram) Observe(x float64) {
	edges := h.m.edges
	if x < edges[0] {
		h.m.buckets[0]++
		return
	}
	if x >= edges[len(edges)-1] {
		h.m.buckets[len(edges)]++
		return
	}
	// Binary search for the bucket with edges[i] <= x < edges[i+1].
	lo, hi := 0, len(edges)-2
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if edges[mid] <= x {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	h.m.buckets[lo+1]++
}

// ObserveInt records one integer observation.
func (h *Histogram) ObserveInt(x int) { h.Observe(float64(x)) }

// Reset zeroes every bucket; per-tick histograms are refilled each tick.
func (h *Histogram) Reset() {
	for i := range h.m.buckets {
		h.m.buckets[i] = 0
	}
}

// Counts returns the live bucket slice (len(Edges)+1: under, bins...,
// over). The caller must not mutate it.
func (h *Histogram) Counts() []int64 { return h.m.buckets }

// Edges returns the bucket boundaries. The caller must not mutate them.
func (h *Histogram) Edges() []float64 { return h.m.edges }

// LogEdges builds logarithmically spaced bucket edges with binsPerDecade
// edges per decade covering [1, max] — the shape of the paper's workload
// figures and of stats.NewLogHistogram, so trace histograms and dhtsim
// snapshot histograms bin identically. It panics if max < 1 or
// binsPerDecade < 1.
func LogEdges(max float64, binsPerDecade int) []float64 {
	if max < 1 || binsPerDecade < 1 {
		panic("obs: invalid log edge parameters")
	}
	decades := math.Ceil(math.Log10(max))
	if decades < 1 {
		decades = 1
	}
	n := int(decades) * binsPerDecade
	edges := make([]float64, n+1)
	for i := range edges {
		edges[i] = math.Pow(10, float64(i)/float64(binsPerDecade))
	}
	return edges
}

// Registry holds a run's metrics in sorted name order, so every registry
// dump — and therefore every trace record — is byte-deterministic.
// Registration is idempotent by (name, kind); registering an existing
// name under a different kind panics, because two subsystems disagreeing
// about a metric is a programming error.
//
// A Registry is not safe for concurrent use: each traced run owns its
// own registry, mirroring the engine's one-RNG-per-trial discipline.
type Registry struct {
	byName  map[string]*metric
	ordered []*metric // sorted by name
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// register adds (or finds) a metric, keeping ordered sorted by name.
func (r *Registry) register(name, unit, help string, kind Kind) *metric {
	if m, ok := r.byName[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, kind, m.kind))
		}
		return m
	}
	m := &metric{name: name, unit: unit, help: help, kind: kind}
	r.byName[name] = m
	i := sort.Search(len(r.ordered), func(i int) bool { return r.ordered[i].name >= name })
	r.ordered = append(r.ordered, nil)
	copy(r.ordered[i+1:], r.ordered[i:])
	r.ordered[i] = m
	return m
}

// Counter registers (or finds) a cumulative counter.
func (r *Registry) Counter(name, unit, help string) *Counter {
	return &Counter{m: r.register(name, unit, help, KindCounter)}
}

// Gauge registers (or finds) an instantaneous gauge.
func (r *Registry) Gauge(name, unit, help string) *Gauge {
	return &Gauge{m: r.register(name, unit, help, KindGauge)}
}

// Histogram registers (or finds) a fixed-bucket histogram. edges must be
// strictly increasing and non-empty; re-registering with different edges
// panics.
func (r *Registry) Histogram(name, unit, help string, edges []float64) *Histogram {
	if len(edges) == 0 {
		panic("obs: histogram needs at least one edge")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			panic("obs: histogram edges must be strictly increasing")
		}
	}
	m := r.register(name, unit, help, KindHist)
	if m.buckets == nil {
		m.edges = append([]float64(nil), edges...)
		m.buckets = make([]int64, len(edges)+1)
	} else if len(m.edges) != len(edges) {
		panic(fmt.Sprintf("obs: histogram %q re-registered with different edges", name))
	} else {
		for i, e := range edges {
			if m.edges[i] != e {
				panic(fmt.Sprintf("obs: histogram %q re-registered with different edges", name))
			}
		}
	}
	return &Histogram{m: m}
}

// Len returns the number of registered metrics.
func (r *Registry) Len() int { return len(r.ordered) }
