package obs

import (
	"math"
	"strconv"
)

// TraceSchema is the trace format version, written into every meta
// record; bump it when the record shape changes incompatibly.
const TraceSchema = 1

// F is one explicit key/value field of a meta-style trace record.
// Supported value types: string, bool, int, int64, uint64, float64,
// []float64 and []int64; anything else renders as a JSON string via
// fmt-free best effort (documented types only — keep to the list).
type F struct {
	K string
	V any
}

// Tracer serializes a Registry as one JSONL record per tick, plus
// explicit records (meta, schema, done) with caller-ordered fields.
//
// The nil *Tracer is the disabled state: every method is nil-receiver
// safe and returns immediately, so call sites need exactly one pointer
// test around their metric-gathering work and none around the emits.
// A Tracer is single-goroutine, like the run it traces; the first sink
// error is sticky and surfaces from Err and Close.
type Tracer struct {
	reg  *Registry
	sink Sink
	buf  []byte
	err  error
}

// New returns a tracer writing to sink. A nil sink yields a nil tracer —
// the disabled state — so callers can thread an optional sink straight
// through: obs.New(maybeNilSink).
func New(sink Sink) *Tracer {
	if sink == nil {
		return nil
	}
	return &Tracer{reg: NewRegistry(), sink: sink, buf: make([]byte, 0, 4096)}
}

// Registry returns the tracer's metric registry (nil for a nil tracer).
func (t *Tracer) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Err returns the first sink error encountered, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	return t.err
}

// Close closes the sink and returns the first error seen (sink write
// errors included). Safe on a nil tracer.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	cerr := t.sink.Close()
	if t.err == nil {
		t.err = cerr
	}
	return t.err
}

// write hands the assembled line to the sink, capturing the first error.
func (t *Tracer) write() {
	t.buf = append(t.buf, '\n')
	if err := t.sink.Write(t.buf); err != nil && t.err == nil {
		t.err = err
	}
}

// Emit writes one record of the given kind with the fields in the order
// given: {"kind":"<kind>","k1":v1,...}. Use it for run metadata
// ("meta") and end-of-run summaries ("done"); per-tick records come
// from EmitTick. No-op on a nil tracer.
func (t *Tracer) Emit(kind string, fields ...F) {
	if t == nil {
		return
	}
	t.buf = t.buf[:0]
	t.buf = append(t.buf, `{"kind":`...)
	t.buf = appendString(t.buf, kind)
	for _, f := range fields {
		t.buf = append(t.buf, ',')
		t.buf = appendString(t.buf, f.K)
		t.buf = append(t.buf, ':')
		t.buf = appendValue(t.buf, f.V)
	}
	t.buf = append(t.buf, '}')
	t.write()
}

// EmitMeta writes the standard meta record: trace schema version first,
// then the caller's fields. Call it once, before the first tick record.
func (t *Tracer) EmitMeta(fields ...F) {
	if t == nil {
		return
	}
	t.Emit("meta", append([]F{{K: "schema", V: TraceSchema}}, fields...)...)
}

// EmitSchema writes the metric catalog: one record listing every metric
// registered so far with its kind, unit, help text, and (for histograms)
// bucket edges. Metrics registered later (e.g. per-strategy counters
// that appear at the first decision pass) still emit values; they just
// have no catalog entry, which readers must tolerate.
func (t *Tracer) EmitSchema() {
	if t == nil {
		return
	}
	t.buf = t.buf[:0]
	t.buf = append(t.buf, `{"kind":"schema","metrics":[`...)
	for i, m := range t.reg.ordered {
		if i > 0 {
			t.buf = append(t.buf, ',')
		}
		t.buf = append(t.buf, `{"name":`...)
		t.buf = appendString(t.buf, m.name)
		t.buf = append(t.buf, `,"type":`...)
		t.buf = appendString(t.buf, m.kind.String())
		t.buf = append(t.buf, `,"unit":`...)
		t.buf = appendString(t.buf, m.unit)
		t.buf = append(t.buf, `,"help":`...)
		t.buf = appendString(t.buf, m.help)
		if m.kind == KindHist {
			t.buf = append(t.buf, `,"edges":`...)
			t.buf = appendFloats(t.buf, m.edges)
		}
		t.buf = append(t.buf, '}')
	}
	t.buf = append(t.buf, `]}`...)
	t.write()
}

// EmitTick serializes the full registry as one tick record:
//
//	{"kind":"tick","tick":N,"c":{...},"g":{...},"h":{...}}
//
// with counters (c), gauges (g) and histograms (h) each in sorted name
// order. The line buffer is reused across ticks, so steady-state
// emission allocates nothing beyond what the sink itself does. No-op on
// a nil tracer.
func (t *Tracer) EmitTick(tick int) {
	if t == nil {
		return
	}
	t.buf = t.buf[:0]
	t.buf = append(t.buf, `{"kind":"tick","tick":`...)
	t.buf = strconv.AppendInt(t.buf, int64(tick), 10)
	t.buf = append(t.buf, `,"c":{`...)
	first := true
	for _, m := range t.reg.ordered {
		if m.kind != KindCounter {
			continue
		}
		if !first {
			t.buf = append(t.buf, ',')
		}
		first = false
		t.buf = appendString(t.buf, m.name)
		t.buf = append(t.buf, ':')
		t.buf = strconv.AppendInt(t.buf, m.ival, 10)
	}
	t.buf = append(t.buf, `},"g":{`...)
	first = true
	for _, m := range t.reg.ordered {
		if m.kind != KindGauge {
			continue
		}
		if !first {
			t.buf = append(t.buf, ',')
		}
		first = false
		t.buf = appendString(t.buf, m.name)
		t.buf = append(t.buf, ':')
		t.buf = appendFloat(t.buf, m.fval)
	}
	t.buf = append(t.buf, `},"h":{`...)
	first = true
	for _, m := range t.reg.ordered {
		if m.kind != KindHist {
			continue
		}
		if !first {
			t.buf = append(t.buf, ',')
		}
		first = false
		t.buf = appendString(t.buf, m.name)
		t.buf = append(t.buf, ':', '[')
		for i, c := range m.buckets {
			if i > 0 {
				t.buf = append(t.buf, ',')
			}
			t.buf = strconv.AppendInt(t.buf, c, 10)
		}
		t.buf = append(t.buf, ']')
	}
	t.buf = append(t.buf, '}', '}')
	t.write()
}

// appendString appends a JSON-quoted string. Metric and field names are
// plain ASCII by convention; the escaper still handles the full set of
// mandatory escapes so arbitrary help strings stay valid JSON.
func appendString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c == '\n':
			b = append(b, '\\', 'n')
		case c == '\t':
			b = append(b, '\\', 't')
		case c == '\r':
			b = append(b, '\\', 'r')
		case c < 0x20:
			const hex = "0123456789abcdef"
			b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		default:
			// Multi-byte UTF-8 sequences pass through byte by byte;
			// JSON strings are UTF-8.
			b = append(b, c)
		}
	}
	return append(b, '"')
}

// appendFloat appends a float in strconv's shortest round-trip form —
// the same bits always produce the same bytes, which is what makes
// same-seed traces byte-identical. NaN and infinities (invalid JSON)
// are sanitized to null.
func appendFloat(b []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return append(b, "null"...)
	}
	return strconv.AppendFloat(b, f, 'g', -1, 64)
}

func appendFloats(b []byte, fs []float64) []byte {
	b = append(b, '[')
	for i, f := range fs {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendFloat(b, f)
	}
	return append(b, ']')
}

// appendValue appends one meta-record field value.
func appendValue(b []byte, v any) []byte {
	switch x := v.(type) {
	case string:
		return appendString(b, x)
	case bool:
		if x {
			return append(b, "true"...)
		}
		return append(b, "false"...)
	case int:
		return strconv.AppendInt(b, int64(x), 10)
	case int64:
		return strconv.AppendInt(b, x, 10)
	case uint64:
		return strconv.AppendUint(b, x, 10)
	case float64:
		return appendFloat(b, x)
	case []float64:
		return appendFloats(b, x)
	case []int64:
		b = append(b, '[')
		for i, n := range x {
			if i > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendInt(b, n, 10)
		}
		return append(b, ']')
	default:
		// Unknown types are a programming error; fail loudly rather
		// than emit schedule-dependent formatting.
		panic("obs: unsupported meta field type")
	}
}
