package obs_test

import (
	"fmt"

	"chordbalance/internal/obs"
)

// Example traces three ticks of a toy run into an in-memory sink and
// prints the JSONL records. A nil sink would disable tracing entirely
// (obs.New(nil) returns the nil tracer, whose methods are free no-ops).
func Example() {
	var sink obs.MemSink
	tr := obs.New(&sink)

	reg := tr.Registry()
	done := reg.Counter("demo.tasks.done", "tasks", "cumulative tasks completed")
	load := reg.Gauge("demo.workload.max", "tasks", "largest per-host residual workload")

	tr.EmitMeta(obs.F{K: "seed", V: uint64(1)})
	for tick := 1; tick <= 3; tick++ {
		done.Add(100)
		load.Set(float64(900 - 100*tick))
		tr.EmitTick(tick)
	}
	if err := tr.Close(); err != nil {
		panic(err)
	}
	fmt.Print(sink.String())
	// Output:
	// {"kind":"meta","schema":1,"seed":1}
	// {"kind":"tick","tick":1,"c":{"demo.tasks.done":100},"g":{"demo.workload.max":800},"h":{}}
	// {"kind":"tick","tick":2,"c":{"demo.tasks.done":200},"g":{"demo.workload.max":700},"h":{}}
	// {"kind":"tick","tick":3,"c":{"demo.tasks.done":300},"g":{"demo.workload.max":600},"h":{}}
}
