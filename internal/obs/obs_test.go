package obs

import (
	"strings"
	"testing"
)

func TestRegistrySortedAndIdempotent(t *testing.T) {
	r := NewRegistry()
	r.Gauge("z.last", "", "")
	r.Counter("a.first", "", "")
	r.Counter("m.middle", "", "")
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	// Idempotent re-registration returns the same underlying metric.
	c1 := r.Counter("a.first", "", "")
	c1.Add(7)
	c2 := r.Counter("a.first", "", "")
	if c2.Value() != 7 {
		t.Fatalf("re-registered counter lost its value: %d", c2.Value())
	}
	if r.Len() != 3 {
		t.Fatalf("re-registration grew the registry to %d", r.Len())
	}
	var names []string
	for _, m := range r.ordered {
		names = append(names, m.name)
	}
	want := []string{"a.first", "m.middle", "z.last"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("ordered = %v, want %v", names, want)
		}
	}
}

func TestRegistryKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x", "", "")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("wl", "tasks", "", []float64{1, 10, 100})
	for _, x := range []float64{0, 0.5, 1, 5, 9.999, 10, 99, 100, 1e6} {
		h.Observe(x)
	}
	got := h.Counts()
	want := []int64{2, 3, 2, 2} // <1, [1,10), [10,100), >=100
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", got, want)
		}
	}
	h.Reset()
	for _, c := range h.Counts() {
		if c != 0 {
			t.Fatalf("Reset left buckets %v", h.Counts())
		}
	}
}

func TestLogEdgesMatchPaperBinning(t *testing.T) {
	edges := LogEdges(100000, 3)
	if len(edges) != 16 {
		t.Fatalf("len(edges) = %d, want 16 (5 decades x 3 + 1)", len(edges))
	}
	if edges[0] != 1 {
		t.Fatalf("edges[0] = %v, want 1", edges[0])
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			t.Fatalf("edges not increasing at %d: %v", i, edges)
		}
	}
}

func TestTickRecordRoundTrip(t *testing.T) {
	var sink MemSink
	tr := New(&sink)
	reg := tr.Registry()
	c := reg.Counter("sim.msgs.joins", "msgs", "join count")
	g := reg.Gauge("sim.workload.gini", "", "Gini coefficient")
	h := reg.Histogram("sim.workload.hosts", "tasks", "per-host residual work", []float64{1, 10})

	tr.EmitMeta(F{K: "seed", V: uint64(42)}, F{K: "strategy", V: "random"})
	tr.EmitSchema()
	c.Add(3)
	g.Set(0.25)
	h.ObserveInt(0)
	h.ObserveInt(5)
	tr.EmitTick(1)
	c.Add(1)
	tr.EmitTick(2)
	tr.Emit("done", F{K: "ticks", V: 2}, F{K: "completed", V: true})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := ReadTrace(strings.NewReader(sink.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta["seed"].(float64) != 42 || got.Meta["strategy"].(string) != "random" {
		t.Fatalf("meta = %v", got.Meta)
	}
	if len(got.Schema) != 3 || got.Schema[0].Name != "sim.msgs.joins" || got.Schema[0].Type != "counter" {
		t.Fatalf("schema = %+v", got.Schema)
	}
	def, ok := got.Def("sim.workload.hosts")
	if !ok || len(def.Edges) != 2 {
		t.Fatalf("hist def = %+v, ok=%v", def, ok)
	}
	if len(got.Ticks) != 2 {
		t.Fatalf("ticks = %d, want 2", len(got.Ticks))
	}
	if got.Ticks[0].Counters["sim.msgs.joins"] != 3 || got.Ticks[1].Counters["sim.msgs.joins"] != 4 {
		t.Fatalf("counter series wrong: %+v", got.Ticks)
	}
	if got.Ticks[0].Gauges["sim.workload.gini"] != 0.25 {
		t.Fatalf("gauge = %v", got.Ticks[0].Gauges)
	}
	hist := got.Ticks[0].Hists["sim.workload.hosts"]
	if len(hist) != 3 || hist[0] != 1 || hist[1] != 1 {
		t.Fatalf("hist = %v", hist)
	}
	if got.Done["ticks"].(float64) != 2 || got.Done["completed"].(bool) != true {
		t.Fatalf("done = %v", got.Done)
	}
}

func TestTraceDeterminism(t *testing.T) {
	emit := func() string {
		var sink MemSink
		tr := New(&sink)
		c := tr.Registry().Counter("b.count", "", "")
		g := tr.Registry().Gauge("a.gauge", "", "")
		tr.EmitSchema()
		for i := 1; i <= 50; i++ {
			c.Add(int64(i))
			g.Set(float64(i) / 7)
			tr.EmitTick(i)
		}
		_ = tr.Close()
		return sink.String()
	}
	a, b := emit(), emit()
	if a != b {
		t.Fatal("identical emission sequences produced different bytes")
	}
}

func TestNilTracerIsInertAndAllocFree(t *testing.T) {
	var tr *Tracer
	if got := New(nil); got != nil {
		t.Fatal("New(nil) should return the nil (disabled) tracer")
	}
	if tr.Registry() != nil || tr.Err() != nil || tr.Close() != nil {
		t.Fatal("nil tracer accessors must be inert")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		tr.EmitTick(3)
		tr.EmitMeta(F{K: "k", V: 1})
		tr.Emit("done")
		tr.EmitSchema()
	})
	if allocs != 0 {
		t.Fatalf("nil tracer allocated %v per emit cycle, want 0", allocs)
	}
}

func TestEnabledTickSteadyStateAllocFree(t *testing.T) {
	tr := New(Discard{})
	c := tr.Registry().Counter("c", "", "")
	g := tr.Registry().Gauge("g", "", "")
	h := tr.Registry().Histogram("h", "", "", LogEdges(1000, 3))
	tr.EmitTick(0) // warm the line buffer
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		g.Set(1.5)
		h.Reset()
		h.ObserveInt(7)
		tr.EmitTick(1)
	})
	if allocs != 0 {
		t.Fatalf("steady-state EmitTick allocated %v per tick, want 0", allocs)
	}
}

func TestStringEscaping(t *testing.T) {
	var sink MemSink
	tr := New(&sink)
	tr.Emit("meta", F{K: "weird", V: "a\"b\\c\nd\x01"})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(strings.NewReader(sink.String()))
	if err != nil {
		t.Fatalf("escaped record did not round-trip: %v\nraw: %s", err, sink.String())
	}
	if got.Meta["weird"].(string) != "a\"b\\c\nd\x01" {
		t.Fatalf("round-trip mangled the string: %q", got.Meta["weird"])
	}
}

func TestReadTraceRejectsCorruption(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("{\"kind\":\"tick\",\"tick\":1\n")); err == nil {
		t.Fatal("truncated JSON line should be an error")
	}
}
