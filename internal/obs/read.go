package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// MetricDef is one metric-catalog entry from a trace's schema record.
type MetricDef struct {
	Name string `json:"name"`
	Type string `json:"type"`
	Unit string `json:"unit"`
	Help string `json:"help"`
	// Edges holds histogram bucket boundaries (histograms only).
	Edges []float64 `json:"edges,omitempty"`
}

// Tick is one decoded per-tick record.
type Tick struct {
	Tick     int                `json:"tick"`
	Counters map[string]int64   `json:"c"`
	Gauges   map[string]float64 `json:"g"`
	Hists    map[string][]int64 `json:"h"`
}

// Trace is a fully decoded trace file.
type Trace struct {
	// Meta merges every meta record's fields (later records win).
	Meta map[string]any
	// Schema is the metric catalog, in emission (sorted-name) order.
	Schema []MetricDef
	// Ticks holds the per-tick records in file order.
	Ticks []Tick
	// Done holds the end-of-run record's fields, if one was emitted.
	Done map[string]any
}

// Def returns the catalog entry for a metric name, if present.
func (tr *Trace) Def(name string) (MetricDef, bool) {
	for _, d := range tr.Schema {
		if d.Name == name {
			return d, true
		}
	}
	return MetricDef{}, false
}

// MetricNames returns every metric name observed in the trace's tick
// records (not just the catalog), in sorted order. Registries only
// grow, so the last tick record sees every metric ever emitted.
func (tr *Trace) MetricNames() []string {
	if len(tr.Ticks) == 0 {
		return nil
	}
	last := tr.Ticks[len(tr.Ticks)-1]
	names := make([]string, 0, len(last.Counters)+len(last.Gauges)+len(last.Hists))
	for n := range last.Counters {
		names = append(names, n)
	}
	for n := range last.Gauges {
		names = append(names, n)
	}
	for n := range last.Hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Series extracts one metric's per-tick values as (ticks, values).
// Counters and gauges are both returned as float64; ticks where the
// metric was not yet registered are skipped. Unknown names yield empty
// slices.
func (tr *Trace) Series(name string) (ticks []int, values []float64) {
	for _, t := range tr.Ticks {
		if v, ok := t.Counters[name]; ok {
			ticks = append(ticks, t.Tick)
			values = append(values, float64(v))
			continue
		}
		if v, ok := t.Gauges[name]; ok {
			ticks = append(ticks, t.Tick)
			values = append(values, v)
		}
	}
	return ticks, values
}

// HistAt returns the named histogram's buckets at the given tick.
func (tr *Trace) HistAt(name string, tick int) ([]int64, bool) {
	for _, t := range tr.Ticks {
		if t.Tick == tick {
			h, ok := t.Hists[name]
			return h, ok
		}
	}
	return nil, false
}

// rawRecord is the union shape of every trace line.
type rawRecord struct {
	Kind    string `json:"kind"`
	Tick    int    `json:"tick"`
	C       map[string]int64
	G       map[string]float64
	H       map[string][]int64
	Metrics []MetricDef `json:"metrics"`
}

// ReadTrace decodes a JSONL trace stream. It tolerates unknown record
// kinds (skipped) so the format can grow, but malformed JSON is an
// error: a truncated trace should fail loudly, not silently shorten a
// series.
func ReadTrace(r io.Reader) (*Trace, error) {
	tr := &Trace{Meta: make(map[string]any)}
	sc := bufio.NewScanner(r)
	// Tick records carry histograms; give lines generous headroom.
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var raw rawRecord
		if err := json.Unmarshal(line, &raw); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", lineNo, err)
		}
		switch raw.Kind {
		case "tick":
			tick := Tick{Tick: raw.Tick, Counters: raw.C, Gauges: raw.G, Hists: raw.H}
			if tick.Counters == nil {
				tick.Counters = map[string]int64{}
			}
			if tick.Gauges == nil {
				tick.Gauges = map[string]float64{}
			}
			if tick.Hists == nil {
				tick.Hists = map[string][]int64{}
			}
			tr.Ticks = append(tr.Ticks, tick)
		case "schema":
			tr.Schema = append(tr.Schema, raw.Metrics...)
		case "meta", "done":
			var m map[string]any
			if err := json.Unmarshal(line, &m); err != nil {
				return nil, fmt.Errorf("obs: trace line %d: %w", lineNo, err)
			}
			delete(m, "kind")
			if raw.Kind == "done" {
				tr.Done = m
			} else {
				for k, v := range m {
					tr.Meta[k] = v
				}
			}
		default:
			// Unknown kinds are forward compatibility, not corruption.
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading trace: %w", err)
	}
	return tr, nil
}
