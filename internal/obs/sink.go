package obs

import (
	"bufio"
	"bytes"
	"os"
)

// Sink receives complete JSONL trace records. Write is called with one
// full line (terminating '\n' included); the line buffer is reused by the
// Tracer, so a Sink must copy the bytes if it retains them.
//
// A Sink is used by exactly one Tracer and needs no internal locking:
// parallel sweeps attach one tracer+sink pair per trial.
type Sink interface {
	// Write stores or forwards one trace line.
	Write(line []byte) error
	// Close flushes and releases the sink.
	Close() error
}

// FileSink writes trace lines to a file through a buffered writer.
type FileSink struct {
	f *os.File
	w *bufio.Writer
}

// NewFileSink creates (truncating) path and returns a sink writing to it.
func NewFileSink(path string) (*FileSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &FileSink{f: f, w: bufio.NewWriterSize(f, 64<<10)}, nil
}

// Write implements Sink.
func (s *FileSink) Write(line []byte) error {
	_, err := s.w.Write(line)
	return err
}

// Close flushes the buffer and closes the file.
func (s *FileSink) Close() error {
	err := s.w.Flush()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// MemSink collects trace lines in memory, for tests and for the
// determinism checks that compare two runs byte for byte.
type MemSink struct {
	buf bytes.Buffer
}

// Write implements Sink.
func (s *MemSink) Write(line []byte) error {
	_, err := s.buf.Write(line)
	return err
}

// Close implements Sink; a MemSink needs no cleanup.
func (s *MemSink) Close() error { return nil }

// Bytes returns the accumulated trace (all lines, '\n'-separated).
func (s *MemSink) Bytes() []byte { return s.buf.Bytes() }

// String returns the accumulated trace as a string.
func (s *MemSink) String() string { return s.buf.String() }

// Discard is a Sink that drops every record — the cheapest *enabled*
// tracer, for measuring the cost of metric gathering itself. (The
// disabled state is a nil *Tracer, which is cheaper still: no metrics
// are gathered at all.)
type Discard struct{}

// Write implements Sink.
func (Discard) Write([]byte) error { return nil }

// Close implements Sink.
func (Discard) Close() error { return nil }
