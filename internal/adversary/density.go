package adversary

// Per-arc ID-density anomaly detection, after the 2025 IPFS
// active-Sybil defense (de Moura Netto et al.): an eclipse cluster is
// visible in the ring order array as a window of consecutive IDs packed
// far tighter than uniform placement predicts. Under uniform SHA-1
// placement of n IDs, w consecutive nodes span w-1 gaps of expected
// total (w-1)/n of the ring; a window whose actual span is Threshold
// times smaller is statistically improbable and gets flagged.
//
// The catch — and the reason the sybilwar sweep tracks a false-eviction
// rate — is that the paper's *honest* balancing strategies mint dense
// IDs by design (a Sybil lands inside a loaded arc to split it), so an
// aggressive threshold evicts the balancer along with the attacker.

import (
	"math"
	"sort"

	"chordbalance/internal/ids"
)

// DensityRatio returns how many times tighter the window of w
// consecutive ring positions starting at position i is packed than
// uniform placement of n IDs predicts. Ratio 1 is exactly uniform
// density; an eclipse cluster shows up as a large ratio. The window
// wraps around the ring. Requires n >= 2 and 2 <= w <= n.
func DensityRatio(n int, at func(int) ids.ID, i, w int) float64 {
	span := ids.ArcFraction(at(i), at((i+w-1)%n))
	expected := float64(w-1) / float64(n)
	if span <= 0 {
		return math.Inf(1)
	}
	return expected / span
}

// Detector runs the density scan over a ring order array. It owns only
// scratch buffers, so one Detector per runtime amortizes allocation
// across scans; it is not safe for concurrent use.
type Detector struct {
	cfg DefenseConfig

	mark []bool
	out  []int
}

// NewDetector validates the config, applies defaults, and builds a
// detector. The caller should gate on DetectionOn: a detector built
// from a scan-disabled config flags nothing.
func NewDetector(cfg DefenseConfig) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Detector{cfg: cfg.withDefaults()}, nil
}

// Config returns the effective (defaulted) configuration.
func (d *Detector) Config() DefenseConfig { return d.cfg }

// Flagged scans every window of Window consecutive positions of the
// n-node ring order array (at(i) is the i-th ID in ring order) and
// returns the positions covered by at least one window whose density
// ratio is at least Threshold, in ascending position order. The slice
// is reused across calls. Rings no larger than the window are never
// flagged: with the whole ring inside one window there is no uniform
// remainder to compare against.
func (d *Detector) Flagged(n int, at func(int) ids.ID) []int {
	d.out = d.out[:0]
	if !d.cfg.DetectionOn() || n <= d.cfg.Window {
		return d.out
	}
	if cap(d.mark) < n {
		d.mark = make([]bool, n)
	}
	mark := d.mark[:n]
	for i := range mark {
		mark[i] = false
	}
	w := d.cfg.Window
	for i := 0; i < n; i++ {
		if DensityRatio(n, at, i, w) < d.cfg.Threshold {
			continue
		}
		for k := 0; k < w; k++ {
			mark[(i+k)%n] = true
		}
	}
	for i, m := range mark {
		if m {
			d.out = append(d.out, i)
		}
	}
	return d.out
}

// EclipsedFraction measures eclipse success: the fraction of the target
// arc [lo, hi) whose full replica set is hostile. Position i of the
// n-node ring order array owns the keys in (at(i-1), at(i]]; a stretch
// of the target arc counts as eclipsed when its owner and the owner's
// next replicas-1 ring successors are all hostile — every copy of those
// keys then lives on adversary identities. With replicas < 1 only the
// owner is considered. Keys are uniform over the keyspace, so arc
// length stands in for key count.
func EclipsedFraction(n int, at func(int) ids.ID, hostile func(int) bool, lo, hi ids.ID, replicas int) float64 {
	width := ids.ArcFraction(lo, hi)
	if n == 0 || width <= 0 {
		return 0
	}
	if replicas < 1 {
		replicas = 1
	}
	if replicas > n {
		replicas = n
	}
	target := lo.Float64()
	eclipsed := 0.0
	for i := 0; i < n; i++ {
		ownStart := at((i + n - 1) % n)
		ownLen := ids.ArcFraction(ownStart, at(i))
		if n == 1 {
			ownLen = 1 // a lone node owns the whole ring
		}
		ov := circOverlap(ownStart.Float64(), ownLen, target, width)
		if ov <= 0 {
			continue
		}
		all := true
		for k := 0; k < replicas; k++ {
			if !hostile((i + k) % n) {
				all = false
				break
			}
		}
		if all {
			eclipsed += ov
		}
	}
	f := eclipsed / width
	if f > 1 {
		f = 1 // float slack from summing many tiny overlaps
	}
	return f
}

// EstimateRingSize estimates the total ring population from a node's
// partial view (its own ID plus its successor list, in ring order).
// A live node never sees the full ring order array, so the uniform
// expectation DensityRatio needs must come from the view itself: under
// uniform placement of n IDs the mean consecutive gap is 1/n. The naive
// mean (and even the median) is ruined by exactly the thing being
// detected — a Sybil cluster inside the view packs most gaps near zero
// — so the estimate uses the mean of the *largest half* of the view's
// gaps, the half an eclipse cluster cannot shrink without already
// owning the whole view. When the cluster holds most of the view the
// estimate runs high (up to ~2x), which shrinks density ratios and errs
// toward flagging less, never more. The result is clamped to at least
// the view size. Views smaller than two IDs return the view size
// unchanged.
func EstimateRingSize(view []ids.ID) int {
	if len(view) < 2 {
		return len(view)
	}
	gaps := make([]float64, len(view)-1)
	for i := range gaps {
		gaps[i] = ids.ArcFraction(view[i], view[i+1])
	}
	sort.Float64s(gaps)
	top := gaps[len(gaps)/2:]
	sum := 0.0
	for _, g := range top {
		sum += g
	}
	if sum <= 0 {
		return len(view)
	}
	n := int(math.Round(float64(len(top)) / sum))
	if n < len(view) {
		n = len(view)
	}
	return n
}

// ViewDensityRatio is DensityRatio for a non-wrapping window of a
// partial view: how many times tighter the w consecutive view entries
// starting at index i sit than uniform placement of ringSize IDs
// predicts. The view must be in ring order and the window must fit
// (i+w <= len(view)); ringSize normally comes from EstimateRingSize.
// Identical window endpoints read as a full-circle span (the
// ids.ArcFraction convention), so duplicate-free views never hit the
// +Inf guard it shares with DensityRatio.
func ViewDensityRatio(view []ids.ID, i, w, ringSize int) float64 {
	span := ids.ArcFraction(view[i], view[i+w-1])
	expected := float64(w-1) / float64(ringSize)
	if span <= 0 {
		return math.Inf(1)
	}
	return expected / span
}

// circOverlap returns the overlap length of the circular arcs
// [a0, a0+la) and [b0, b0+lb), all in ring fractions with a0, b0 in
// [0, 1) and lengths in [0, 1]. Unrolling one turn each way covers
// every wrap case.
func circOverlap(a0, la, b0, lb float64) float64 {
	total := 0.0
	for _, shift := range [3]float64{-1, 0, 1} {
		s := a0 + shift
		l := math.Max(s, b0)
		h := math.Min(s+la, b0+lb)
		if h > l {
			total += h - l
		}
	}
	return total
}
