package adversary

// Puzzle-cost identity admission, after SybilControl (Li et al.): an
// identity is admitted only with proof of work bound to its ID, taxing
// Sybil creation in proportion to puzzle difficulty. The networked
// runtime solves these puzzles for real in Join and verifies them in the
// admission gate; the simulator charges the *expected* cost (PuzzleCost)
// as abstract work units against runtime-factor accounting instead of
// burning CPU, keeping million-host sweeps affordable.

import (
	"crypto/sha1"
	"encoding/binary"
	"math/bits"

	"chordbalance/internal/ids"
)

// MaxPuzzleBits bounds puzzle difficulty: 2^30 expected hashes is
// already far beyond anything a simulation sweep or live test wants,
// and the bound keeps PuzzleCost comfortably inside an int.
const MaxPuzzleBits = 30

// PuzzleCost returns the expected number of hash evaluations needed to
// solve a puzzle of the given difficulty — the abstract work units the
// simulator charges per identity admission. Non-positive difficulty
// costs nothing.
func PuzzleCost(puzzleBits int) int {
	if puzzleBits <= 0 {
		return 0
	}
	return 1 << puzzleBits
}

// puzzleDigest hashes id||nonce, the binding that stops nonce reuse
// across identities: a solution admits exactly one ID.
func puzzleDigest(id ids.ID, nonce uint64) [sha1.Size]byte {
	var buf [ids.Bytes + 8]byte
	copy(buf[:ids.Bytes], id[:])
	binary.BigEndian.PutUint64(buf[ids.Bytes:], nonce)
	return sha1.Sum(buf[:])
}

// leadingZeroBits counts the leading zero bits of a digest.
func leadingZeroBits(h []byte) int {
	n := 0
	for _, b := range h {
		if b == 0 {
			n += 8
			continue
		}
		n += bits.LeadingZeros8(b)
		break
	}
	return n
}

// SolvePuzzle finds the smallest nonce whose digest with id has at
// least puzzleBits leading zero bits. Difficulty <= 0 is the disabled
// puzzle and solves to nonce 0 immediately. The search is exhaustive
// from zero, so the result is a pure function of (id, puzzleBits).
func SolvePuzzle(id ids.ID, puzzleBits int) uint64 {
	if puzzleBits <= 0 {
		return 0
	}
	for nonce := uint64(0); ; nonce++ {
		h := puzzleDigest(id, nonce)
		if leadingZeroBits(h[:]) >= puzzleBits {
			return nonce
		}
	}
}

// VerifyPuzzle reports whether nonce solves id's admission puzzle at
// the given difficulty. Difficulty <= 0 always verifies: the zero
// config admits everyone, which keeps the defense provably inert when
// disabled.
func VerifyPuzzle(id ids.ID, nonce uint64, puzzleBits int) bool {
	if puzzleBits <= 0 {
		return true
	}
	h := puzzleDigest(id, nonce)
	return leadingZeroBits(h[:]) >= puzzleBits
}
