// Package adversary models hostile Sybil behavior and its defenses for
// both runtimes. The source paper uses the Sybil attack *cooperatively*
// — a host mints extra identities to absorb load — and leaves open what
// happens when the same mechanism is hostile. This package supplies the
// three missing pieces:
//
//   - an eclipse Attacker: a deterministic, seeded adversary that
//     targets one arc of the keyspace and mints clustered Sybil IDs
//     inside it until every replica of the arc's keys is hostile;
//   - puzzle-cost identity admission (SybilControl-style): every join or
//     Sybil mint — honest and hostile alike — pays a configurable
//     computational price, solved for real on the networked runtime and
//     charged as abstract work units in the simulator;
//   - per-arc ID-density anomaly detection (per the 2025 IPFS
//     active-Sybil defense): a Detector that walks the ring order array
//     and flags windows of consecutive IDs packed improbably tighter
//     than uniform placement predicts.
//
// The package is runtime-agnostic by design: it imports neither
// internal/sim nor internal/netchord; each of those wires these types in
// as tick phases or live local rules. Everything here is a pure function
// of its inputs plus the caller-supplied randomness source, so both
// runtimes keep their determinism contracts.
package adversary

import (
	"fmt"
	"math"

	"chordbalance/internal/ids"
)

// AttackConfig describes one eclipse adversary. The zero value is
// provably inert: Zero() reports true, no Attacker is constructed, and
// no attack code path runs or consumes randomness.
type AttackConfig struct {
	// Budget caps the adversary's concurrently live hostile identities.
	// 0 disables the attack entirely.
	Budget int
	// MintEvery is the mint-attempt cadence in ticks (default 1: try
	// every tick).
	MintEvery int
	// TargetStart is the start of the targeted arc, as a fraction of the
	// ring in [0, 1).
	TargetStart float64
	// TargetWidth is the targeted arc's width as a fraction of the ring
	// (default 1/32). The attacker only mints IDs inside
	// [TargetStart, TargetStart+TargetWidth).
	TargetWidth float64
	// WorkRate is the abstract work the adversary can spend per tick on
	// identity creation (default 8). Each mint costs 1 plus the
	// defender's puzzle cost, so raising PuzzleBits throttles the mint
	// rate this budget supports — the attack/defense trade-off the
	// sybilwar sweep measures.
	WorkRate int
	// NoReMint disables the churn exploit: normally an evicted hostile
	// identity frees budget and the adversary re-mints a fresh clustered
	// ID (riding the same churn the balancing strategies exploit); with
	// NoReMint set, every eviction permanently burns budget.
	NoReMint bool
}

// Zero reports whether the config disables the attack entirely.
func (c AttackConfig) Zero() bool { return c.Budget == 0 }

// Validate reports configuration errors an attack run would choke on.
func (c AttackConfig) Validate() error {
	switch {
	case c.Budget < 0:
		return fmt.Errorf("adversary: Budget must be >= 0, got %d", c.Budget)
	case c.MintEvery < 0:
		return fmt.Errorf("adversary: MintEvery must be >= 0, got %d", c.MintEvery)
	case c.TargetStart < 0 || c.TargetStart >= 1:
		return fmt.Errorf("adversary: TargetStart %v outside [0,1)", c.TargetStart)
	case c.TargetWidth < 0 || c.TargetWidth > 1:
		return fmt.Errorf("adversary: TargetWidth %v outside [0,1]", c.TargetWidth)
	case c.WorkRate < 0:
		return fmt.Errorf("adversary: WorkRate must be >= 0, got %d", c.WorkRate)
	}
	return nil
}

func (c AttackConfig) withDefaults() AttackConfig {
	if c.MintEvery == 0 {
		c.MintEvery = 1
	}
	if c.TargetWidth == 0 {
		c.TargetWidth = 1.0 / 32
	}
	if c.WorkRate == 0 {
		c.WorkRate = 8
	}
	return c
}

// DefenseConfig describes the Sybil defenses: identity-admission
// puzzles and ID-density anomaly detection. The zero value is provably
// inert: Zero() reports true, no cost is charged, and no scan runs.
type DefenseConfig struct {
	// PuzzleBits is the admission puzzle difficulty: a joining identity
	// must present a nonce whose SHA-1 digest with its ID has this many
	// leading zero bits. Expected cost doubles per bit (PuzzleCost).
	// 0 disables the puzzle.
	PuzzleBits int
	// Window is the density-scan window in consecutive ring positions
	// (default 8). Larger windows smooth noise but need a bigger hostile
	// cluster before they fire.
	Window int
	// Threshold is the density ratio at which a window is flagged: the
	// window's IDs must be packed at least Threshold times tighter than
	// uniform placement predicts. <= 0 disables the scan. Honest
	// Sybil-balancers are dense by design, so low thresholds buy eclipse
	// suppression with false evictions — the trade-off the sybilwar
	// sweep measures.
	Threshold float64
	// ScanEvery is the scan cadence in ticks (simulator) or maintenance
	// rounds (netchord); default 10.
	ScanEvery int
}

// Zero reports whether the config disables every defense.
func (c DefenseConfig) Zero() bool { return c.PuzzleBits == 0 && c.Threshold <= 0 }

// DetectionOn reports whether the density scan is enabled.
func (c DefenseConfig) DetectionOn() bool { return c.Threshold > 0 }

// Validate reports configuration errors a defended run would choke on.
func (c DefenseConfig) Validate() error {
	switch {
	case c.PuzzleBits < 0 || c.PuzzleBits > MaxPuzzleBits:
		return fmt.Errorf("adversary: PuzzleBits %d outside [0,%d]", c.PuzzleBits, MaxPuzzleBits)
	case c.Window < 0 || c.Window == 1:
		return fmt.Errorf("adversary: Window must be 0 (default) or >= 2, got %d", c.Window)
	case c.Threshold > 0 && c.Threshold < 1:
		return fmt.Errorf("adversary: Threshold %v is a density multiple and must be >= 1 (or <= 0 for off)", c.Threshold)
	case c.ScanEvery < 0:
		return fmt.Errorf("adversary: ScanEvery must be >= 0, got %d", c.ScanEvery)
	}
	return nil
}

func (c DefenseConfig) withDefaults() DefenseConfig {
	if c.Window == 0 {
		c.Window = 8
	}
	if c.ScanEvery == 0 {
		c.ScanEvery = 10
	}
	return c
}

// WithDefaults returns the config with unset knobs at their defaults.
// Runtimes call it once at construction so cadence checks can read the
// effective values.
func (c DefenseConfig) WithDefaults() DefenseConfig { return c.withDefaults() }

// Attacker is a seeded eclipse adversary: it proposes clustered IDs
// inside its target arc, pays the defender's admission price out of a
// per-tick work budget, and re-mints after evictions to exploit churn.
// It is passive bookkeeping — the owning runtime decides when to call
// Accrue/MintID/Minted/Evicted — so both engines stay in control of
// their own tick loops and RNG streams.
type Attacker struct {
	cfg    AttackConfig
	lo, hi ids.ID

	work    int
	live    int
	minted  int
	evicted int
}

// NewAttacker validates the config, applies defaults, and builds the
// adversary with zero accumulated work.
func NewAttacker(cfg AttackConfig) (*Attacker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	return &Attacker{
		cfg: cfg,
		lo:  IDAtFraction(cfg.TargetStart),
		hi:  IDAtFraction(cfg.TargetStart + cfg.TargetWidth),
	}, nil
}

// Config returns the effective (defaulted) configuration.
func (a *Attacker) Config() AttackConfig { return a.cfg }

// Target returns the targeted arc as [lo, hi) in ring order.
func (a *Attacker) Target() (lo, hi ids.ID) { return a.lo, a.hi }

// InTarget reports whether id lies inside the targeted arc [lo, hi).
func (a *Attacker) InTarget(id ids.ID) bool {
	if a.lo == a.hi { // width rounded to the full ring
		return true
	}
	return ids.BetweenLeftIncl(id, a.lo, a.hi)
}

// Accrue adds one tick's work budget. Call exactly once per tick.
func (a *Attacker) Accrue() { a.work += a.cfg.WorkRate }

// CanMint reports whether the adversary can afford — and has budget
// for — one more identity at the given admission cost.
func (a *Attacker) CanMint(cost int) bool {
	budget := a.cfg.Budget - a.live
	if a.cfg.NoReMint {
		budget -= a.evicted
	}
	return budget > 0 && a.work >= cost
}

// MintID draws a candidate identity uniformly inside the target arc.
// The caller places it (rejecting occupied IDs by drawing again) and
// commits with Minted.
func (a *Attacker) MintID(src ids.Source) ids.ID {
	id, err := ids.UniformInRange(src, a.lo.Pred(), a.hi)
	if err != nil {
		// Arc too narrow to have an interior — degenerate configs only.
		return a.lo
	}
	return id
}

// Minted commits one successful placement, spending cost work units.
func (a *Attacker) Minted(cost int) {
	a.work -= cost
	a.live++
	a.minted++
}

// Evicted records one hostile identity removed by the defense (or by
// churn). Unless NoReMint is set the freed budget lets the adversary
// mint a replacement — the churn exploit.
func (a *Attacker) Evicted() {
	if a.live == 0 {
		panic("adversary: eviction with no live identity")
	}
	a.live--
	a.evicted++
}

// Live returns the adversary's currently placed identity count.
func (a *Attacker) Live() int { return a.live }

// MintCount returns the total identities minted over the run.
func (a *Attacker) MintCount() int { return a.minted }

// EvictCount returns the total hostile identities evicted over the run.
func (a *Attacker) EvictCount() int { return a.evicted }

// WorkBalance returns the unspent work budget, for accounting.
func (a *Attacker) WorkBalance() int { return a.work }

// IDAtFraction returns the ring position at the given fraction of the
// identifier circle; fractions outside [0, 1) wrap. It is the bridge
// between human-facing arc knobs ("target the arc starting at 0.2") and
// 160-bit IDs.
func IDAtFraction(f float64) ids.ID {
	f -= math.Floor(f)
	scaled := f * (1 << 32)
	hi := uint32(scaled)
	lo := uint32((scaled - math.Floor(scaled)) * (1 << 32))
	// The fraction maps to the ID's *top* 64 bits (FromBytes would
	// right-align a short slice, which is the opposite end of the ring).
	var id ids.ID
	id[0] = byte(hi >> 24)
	id[1] = byte(hi >> 16)
	id[2] = byte(hi >> 8)
	id[3] = byte(hi)
	id[4] = byte(lo >> 24)
	id[5] = byte(lo >> 16)
	id[6] = byte(lo >> 8)
	id[7] = byte(lo)
	return id
}
