package adversary

import (
	"math"
	"sort"
	"testing"

	"chordbalance/internal/ids"
	"chordbalance/internal/xrand"
)

func TestIDAtFraction(t *testing.T) {
	if got := IDAtFraction(0); got != ids.Zero {
		t.Errorf("IDAtFraction(0) = %s, want zero", got)
	}
	for _, f := range []float64{0.1, 0.25, 0.5, 0.75, 0.999} {
		got := IDAtFraction(f).Float64()
		if math.Abs(got-f) > 1e-9 {
			t.Errorf("IDAtFraction(%v).Float64() = %v", f, got)
		}
	}
	// Wrapping: 1.2 is the same ring position as 0.2 (up to float
	// subtraction error in the wrap).
	if got := IDAtFraction(1.2).Float64(); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("IDAtFraction(1.2) at %v, want ~0.2", got)
	}
}

func TestPuzzleSolveVerify(t *testing.T) {
	rng := xrand.New(7)
	for _, bits := range []int{0, 1, 4, 8, 12} {
		id := ids.Random(rng)
		nonce := SolvePuzzle(id, bits)
		if !VerifyPuzzle(id, nonce, bits) {
			t.Fatalf("bits=%d: solved nonce %d does not verify", bits, nonce)
		}
		if bits > 0 {
			// A solution binds to its ID: another identity cannot reuse it
			// (astronomically unlikely to verify; at 12 bits the chance a
			// fixed nonce solves a random ID is 2^-12 per trial).
			other := ids.Random(rng)
			reused := 0
			for trial := 0; trial < 4; trial++ {
				if VerifyPuzzle(other, nonce, 12) {
					reused++
				}
				other = ids.Random(rng)
			}
			if reused == 4 {
				t.Fatalf("bits=%d: nonce verified for every unrelated ID", bits)
			}
		}
	}
	// Determinism: same inputs, same nonce.
	id := ids.Random(xrand.New(9))
	if SolvePuzzle(id, 10) != SolvePuzzle(id, 10) {
		t.Fatal("SolvePuzzle is not a pure function of its inputs")
	}
	// Difficulty 0 admits everyone.
	if !VerifyPuzzle(id, 12345, 0) {
		t.Fatal("disabled puzzle rejected an identity")
	}
}

func TestPuzzleCost(t *testing.T) {
	if PuzzleCost(0) != 0 || PuzzleCost(-3) != 0 {
		t.Errorf("disabled puzzle must cost 0")
	}
	if PuzzleCost(1) != 2 || PuzzleCost(10) != 1024 {
		t.Errorf("PuzzleCost(1)=%d PuzzleCost(10)=%d, want 2 and 1024", PuzzleCost(1), PuzzleCost(10))
	}
}

func TestAttackConfigZeroAndValidate(t *testing.T) {
	var zero AttackConfig
	if !zero.Zero() {
		t.Error("zero AttackConfig must report Zero")
	}
	if err := zero.Validate(); err != nil {
		t.Errorf("zero AttackConfig must validate: %v", err)
	}
	bad := []AttackConfig{
		{Budget: -1},
		{Budget: 1, MintEvery: -1},
		{Budget: 1, TargetStart: 1.5},
		{Budget: 1, TargetWidth: -0.1},
		{Budget: 1, WorkRate: -2},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestDefenseConfigZeroAndValidate(t *testing.T) {
	var zero DefenseConfig
	if !zero.Zero() || zero.DetectionOn() {
		t.Error("zero DefenseConfig must be inert")
	}
	if err := zero.Validate(); err != nil {
		t.Errorf("zero DefenseConfig must validate: %v", err)
	}
	if (DefenseConfig{PuzzleBits: 4}).Zero() || (DefenseConfig{Threshold: 8}).Zero() {
		t.Error("enabled defense reported Zero")
	}
	bad := []DefenseConfig{
		{PuzzleBits: -1},
		{PuzzleBits: MaxPuzzleBits + 1},
		{Window: 1},
		{Threshold: 0.5},
		{ScanEvery: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestAttackerBudgetAndWork(t *testing.T) {
	a, err := NewAttacker(AttackConfig{Budget: 2, TargetStart: 0.25, TargetWidth: 0.125, WorkRate: 3})
	if err != nil {
		t.Fatal(err)
	}
	const cost = 5
	if a.CanMint(cost) {
		t.Fatal("mint allowed before any work accrued")
	}
	a.Accrue() // 3 units: still short of cost 5
	if a.CanMint(cost) {
		t.Fatal("mint allowed below the admission cost")
	}
	a.Accrue() // 6 units
	if !a.CanMint(cost) {
		t.Fatal("mint refused with work and budget available")
	}
	rng := xrand.New(42)
	for i := 0; i < 2; i++ {
		id := a.MintID(rng)
		if !a.InTarget(id) {
			t.Fatalf("minted ID %s outside the target arc", id.Short())
		}
		a.Accrue()
		a.Accrue()
		a.Minted(cost)
	}
	if a.CanMint(0) {
		t.Fatal("mint allowed past the concurrency budget")
	}
	if a.Live() != 2 || a.MintCount() != 2 {
		t.Fatalf("live=%d minted=%d, want 2/2", a.Live(), a.MintCount())
	}
	// The churn exploit: an eviction frees budget for a re-mint.
	a.Evicted()
	if !a.CanMint(0) {
		t.Fatal("re-mint refused after eviction")
	}
	if a.EvictCount() != 1 {
		t.Fatalf("evicted=%d, want 1", a.EvictCount())
	}
}

func TestAttackerNoReMint(t *testing.T) {
	a, err := NewAttacker(AttackConfig{Budget: 1, NoReMint: true})
	if err != nil {
		t.Fatal(err)
	}
	a.Accrue()
	a.Minted(0)
	a.Evicted()
	a.Accrue()
	if a.CanMint(0) {
		t.Fatal("NoReMint must burn budget permanently on eviction")
	}
}

func TestAttackerTargetMembership(t *testing.T) {
	a, err := NewAttacker(AttackConfig{Budget: 1, TargetStart: 0.5, TargetWidth: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := a.Target()
	if got := lo.Float64(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("target lo at %v, want 0.5", got)
	}
	if got := hi.Float64(); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("target hi at %v, want 0.75", got)
	}
	cases := []struct {
		f  float64
		in bool
	}{{0.5, true}, {0.6, true}, {0.7499, true}, {0.75, false}, {0.25, false}, {0.9, false}}
	for _, c := range cases {
		if got := a.InTarget(IDAtFraction(c.f)); got != c.in {
			t.Errorf("InTarget(%v) = %v, want %v", c.f, got, c.in)
		}
	}
}

// uniformRing returns n perfectly evenly spaced IDs in ring order — the
// density scan's null hypothesis made literal.
func uniformRing(n int) []ids.ID {
	out := make([]ids.ID, n)
	for i := range out {
		out[i] = IDAtFraction(float64(i) / float64(n))
	}
	return out
}

func at(ring []ids.ID) func(int) ids.ID {
	return func(i int) ids.ID { return ring[i] }
}

func TestDetectorUniformRingClean(t *testing.T) {
	d, err := NewDetector(DefenseConfig{Threshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	ring := uniformRing(64)
	if flagged := d.Flagged(len(ring), at(ring)); len(flagged) != 0 {
		t.Errorf("uniform ring flagged positions %v", flagged)
	}
	// SHA-1-style random placement: gaps vary, but an 8-window's span
	// concentrates enough that ratio 8 stays quiet at this size.
	rng := xrand.New(11)
	rand := make([]ids.ID, 64)
	for i := range rand {
		rand[i] = ids.Random(rng)
	}
	sort.Slice(rand, func(i, j int) bool { return rand[i].Less(rand[j]) })
	d2, err := NewDetector(DefenseConfig{Threshold: 8})
	if err != nil {
		t.Fatal(err)
	}
	if flagged := d2.Flagged(len(rand), at(rand)); len(flagged) != 0 {
		t.Errorf("random uniform ring flagged at threshold 8: %v", flagged)
	}
}

func TestDetectorFlagsCluster(t *testing.T) {
	// 56 uniform nodes plus 8 hostile IDs crammed into 1/1000 of the
	// ring: a textbook eclipse cluster.
	ring := uniformRing(56)
	for i := 0; i < 8; i++ {
		ring = append(ring, IDAtFraction(0.30001+float64(i)*0.0001))
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i].Less(ring[j]) })
	d, err := NewDetector(DefenseConfig{Window: 8, Threshold: 8})
	if err != nil {
		t.Fatal(err)
	}
	flagged := d.Flagged(len(ring), at(ring))
	if len(flagged) == 0 {
		t.Fatal("dense cluster not flagged")
	}
	// Every hostile position must be covered.
	flagSet := make(map[int]bool, len(flagged))
	for _, p := range flagged {
		flagSet[p] = true
	}
	for i, id := range ring {
		f := id.Float64()
		if f >= 0.3 && f < 0.302 && !flagSet[i] {
			t.Errorf("hostile position %d (%v) not flagged", i, f)
		}
	}
	// Ascending order, as documented.
	if !sort.IntsAreSorted(flagged) {
		t.Errorf("flagged positions not sorted: %v", flagged)
	}
}

func TestDetectorSmallRing(t *testing.T) {
	d, err := NewDetector(DefenseConfig{Window: 8, Threshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	ring := uniformRing(8) // n == window: nothing to compare against
	if flagged := d.Flagged(len(ring), at(ring)); len(flagged) != 0 {
		t.Errorf("ring no larger than the window flagged %v", flagged)
	}
	if flagged := d.Flagged(0, nil); len(flagged) != 0 {
		t.Errorf("empty ring flagged %v", flagged)
	}
}

func TestEclipsedFraction(t *testing.T) {
	ring := uniformRing(16)
	lo, hi := IDAtFraction(0.25), IDAtFraction(0.5)
	none := func(int) bool { return false }
	all := func(int) bool { return true }
	if got := EclipsedFraction(len(ring), at(ring), none, lo, hi, 1); got != 0 {
		t.Errorf("honest ring eclipsed %v, want 0", got)
	}
	if got := EclipsedFraction(len(ring), at(ring), all, lo, hi, 3); math.Abs(got-1) > 1e-9 {
		t.Errorf("fully hostile ring eclipsed %v, want 1", got)
	}
	// Positions 5..8 own (0.25, 0.5] exactly (position i owns
	// ((i-1)/16, i/16]). With only the owners hostile, replicas=1 sees a
	// full eclipse but replicas=2 does not: the successor of position 8
	// is honest.
	owners := func(i int) bool { return i >= 5 && i <= 8 }
	if got := EclipsedFraction(len(ring), at(ring), owners, lo, hi, 1); math.Abs(got-1) > 1e-9 {
		t.Errorf("owner-only eclipse at replicas=1: %v, want 1", got)
	}
	got := EclipsedFraction(len(ring), at(ring), owners, lo, hi, 2)
	want := 0.75 // positions 5..7 still fully replicated on hostiles; 8's replica is honest
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("owner-only eclipse at replicas=2: %v, want %v", got, want)
	}
	// Degenerate inputs.
	if got := EclipsedFraction(0, nil, all, lo, hi, 1); got != 0 {
		t.Errorf("empty ring eclipsed %v", got)
	}
	if got := EclipsedFraction(1, at(ring[:1]), all, lo, hi, 1); math.Abs(got-1) > 1e-9 {
		t.Errorf("single hostile node eclipsed %v, want 1", got)
	}
}

func TestDensityRatioUniform(t *testing.T) {
	ring := uniformRing(32)
	for i := 0; i < 32; i++ {
		r := DensityRatio(len(ring), at(ring), i, 4)
		if math.Abs(r-1) > 1e-6 {
			t.Fatalf("uniform ring window %d has ratio %v, want 1", i, r)
		}
	}
}

func TestEstimateRingSize(t *testing.T) {
	// A clean successor-list view of a uniform ring recovers n exactly.
	ring := uniformRing(128)
	view := append([]ids.ID(nil), ring[10:19]...)
	if got := EstimateRingSize(view); got != 128 {
		t.Errorf("clean view estimate = %d, want 128", got)
	}
	// A view dominated by a Sybil cluster (6 hostile of 9 entries) must
	// still estimate from the honest gaps: the largest-half mean resists
	// the near-zero cluster gaps a median would trip over. With the
	// cluster holding most of the view the estimate runs up to ~2x high
	// — the documented under-flagging direction — never low.
	poisoned := []ids.ID{ring[10], ring[11]}
	for i := 0; i < 6; i++ {
		poisoned = append(poisoned, IDAtFraction(ring[11].Float64()+1e-6*float64(i+1)))
	}
	poisoned = append(poisoned, ring[12])
	got := EstimateRingSize(poisoned)
	if got < 96 || got > 300 {
		t.Errorf("poisoned view estimate = %d, want within [96, 300] of true 128", got)
	}
	// Degenerate views.
	if got := EstimateRingSize(nil); got != 0 {
		t.Errorf("empty view estimate = %d, want 0", got)
	}
	if got := EstimateRingSize(ring[:1]); got != 1 {
		t.Errorf("singleton view estimate = %d, want 1", got)
	}
	dup := []ids.ID{ring[3], ring[3], ring[3]}
	if got := EstimateRingSize(dup); got != len(dup) {
		t.Errorf("all-duplicate view estimate = %d, want %d", got, len(dup))
	}
}

func TestViewDensityRatio(t *testing.T) {
	ring := uniformRing(64)
	view := append([]ids.ID(nil), ring[20:28]...)
	for i := 0; i+4 <= len(view); i++ {
		if r := ViewDensityRatio(view, i, 4, 64); math.Abs(r-1) > 1e-6 {
			t.Fatalf("uniform view window %d ratio %v, want 1", i, r)
		}
	}
	// A cluster window at the estimated ring size reads far above any
	// sane threshold.
	cluster := []ids.ID{ring[20]}
	for i := 0; i < 4; i++ {
		cluster = append(cluster, IDAtFraction(ring[20].Float64()+1e-5*float64(i+1)))
	}
	if r := ViewDensityRatio(cluster, 1, 4, 64); r < 100 {
		t.Errorf("cluster window ratio %v, want >= 100", r)
	}
	// Identical endpoints follow the ids.ArcFraction full-circle
	// convention rather than reading as infinitely dense.
	dup := []ids.ID{ring[5], ring[5], ring[5]}
	if r := ViewDensityRatio(dup, 0, 3, 64); math.IsInf(r, 1) || r > 1 {
		t.Errorf("duplicate-ID window ratio %v, want full-circle (<= 1)", r)
	}
}
