package sim

import (
	"fmt"
	"testing"

	"chordbalance/internal/strategy"
)

// TestGoldenDeterminism pins the exact outcome of one fixed-seed run per
// strategy. These numbers are not meaningful in themselves; the test
// exists so that any change to the engine's event ordering, RNG
// consumption, or strategy logic is *visible* — the figures and tables
// are all derived from runs like these, and silent drift would
// invalidate EXPERIMENTS.md. If you change behavior intentionally,
// update the constants and re-run the experiments.
func TestGoldenDeterminism(t *testing.T) {
	golden := []struct {
		strategyName string
		churn        float64
		wantTicks    int
	}{
		{"none", 0, 486},
		{"none", 0.01, 353},
		{"random", 0, 201},
		{"neighbor", 0, 323},
		{"smart-neighbor", 0, 286},
		{"invitation", 0, 330},
		{"targeted", 0, 215},
		{"oracle", 0, 104},
	}
	for _, g := range golden {
		name := fmt.Sprintf("%s/churn=%g", g.strategyName, g.churn)
		t.Run(name, func(t *testing.T) {
			st, ok := strategy.ByName(g.strategyName)
			if !ok {
				t.Fatalf("unknown strategy %q", g.strategyName)
			}
			res, err := Run(Config{
				Nodes: 300, Tasks: 30000, Seed: 12345,
				Strategy: st, ChurnRate: g.churn,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Completed {
				t.Fatal("did not complete")
			}
			if res.Ticks != g.wantTicks {
				t.Errorf("ticks = %d, golden value %d — engine behavior "+
					"changed; if intentional, update golden_test.go and "+
					"regenerate EXPERIMENTS.md", res.Ticks, g.wantTicks)
			}
		})
	}
}
