package sim_test

// Determinism-under-attack tests: the adversary/defense co-simulation
// must hold the same contracts as the honest engine — same seed, same
// bytes, at every shard count — and the zero configs must be provably
// inert (the pre-adversary goldens in determinism_test.go are the
// referee for that). The sybilwar golden matrix here pins the hostile
// code paths: attack alone, attack versus each defense, and the
// defenses running against a purely honest network.

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"chordbalance/internal/adversary"
	"chordbalance/internal/sim"
	"chordbalance/internal/strategy"
)

// advSummary extends fullSummary with every adversary-facing field, so
// any nondeterminism in the mint, scan, or eviction phases shows up.
func advSummary(res *sim.Result) string {
	a := res.Adversary
	s := fullSummary(res)
	s += fmt.Sprintf(" adv=%d/%d/%d/%d/%d/%d/%d/%d",
		a.HostileMints, a.HostileLive, a.HostileEvicted, a.HonestEvicted,
		a.RekeyedPrimaries, a.BlockedMints, a.PuzzleWorkCharged, a.CapturedKeys)
	s += fmt.Sprintf(" eclipse=%.9f falseEvict=%.9f", a.FinalEclipse, a.FalseEvictionRate())
	for _, e := range a.EclipseSamples {
		s += fmt.Sprintf(" ecl%d=%.9f", e.Tick, e.Fraction)
	}
	return s
}

// sybilwarCases cover the hostile code paths: the bare attack, each
// defense separately, the combined defense, and a defense-only run over
// an honest Sybil-balancing network (the false-positive path).
func sybilwarCases() []struct {
	name string
	cfg  sim.Config
} {
	attack := adversary.AttackConfig{
		Budget: 24, MintEvery: 2, TargetStart: 0.2, TargetWidth: 1.0 / 16, WorkRate: 16,
	}
	base := func(strat string) sim.Config {
		st, ok := strategy.ByName(strat)
		if !ok {
			panic("unknown strategy " + strat)
		}
		return sim.Config{
			Nodes: 150, Tasks: 6000, Strategy: st, ChurnRate: 0.01,
			Seed: 1234, MaxTicks: 300, RecordEvents: true,
			SnapshotTicks: []int{0, 50, 150},
		}
	}
	var cases []struct {
		name string
		cfg  sim.Config
	}
	add := func(name string, cfg sim.Config) {
		cases = append(cases, struct {
			name string
			cfg  sim.Config
		}{name, cfg})
	}
	c := base("none")
	c.Attack = attack
	add("attack-only/none", c)
	c = base("random")
	c.Attack = attack
	c.Defense = adversary.DefenseConfig{PuzzleBits: 6}
	add("attack-puzzle/random", c)
	c = base("random")
	c.Attack = attack
	c.Defense = adversary.DefenseConfig{Threshold: 4, ScanEvery: 10}
	add("attack-detect/random", c)
	c = base("random")
	c.Attack = attack
	c.Defense = adversary.DefenseConfig{PuzzleBits: 6, Threshold: 4}
	add("attack-full/random", c)
	c = base("random")
	c.Defense = adversary.DefenseConfig{PuzzleBits: 4, Threshold: 3}
	add("defense-only/random", c)
	return cases
}

// TestSybilwarGolden pins the byte-exact outcome of the hostile matrix
// against testdata/sybilwar_golden.txt. Regenerate with `go test
// ./internal/sim -run SybilwarGolden -update` only for intentional
// behavior changes.
func TestSybilwarGolden(t *testing.T) {
	path := filepath.Join("testdata", "sybilwar_golden.txt")
	got := make(map[string]string)
	var order []string
	for _, c := range sybilwarCases() {
		res, err := sim.Run(c.cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		got[c.name] = advSummary(res)
		order = append(order, c.name)
	}
	if *updateGolden {
		var b strings.Builder
		for _, name := range order {
			fmt.Fprintf(&b, "%s: %s\n", name, got[name])
		}
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d cases)", path, len(order))
		return
	}
	want := loadGolden(t, path)
	for _, name := range order {
		if want[name] == "" {
			t.Errorf("%s: no golden entry (run with -update)", name)
			continue
		}
		if got[name] != want[name] {
			t.Errorf("%s: hostile engine output drifted:\n got:  %s\n want: %s",
				name, got[name], want[name])
		}
	}
}

// TestSybilwarShardIdentity extends the shard referee to the hostile
// matrix: Shards stays a pure performance knob with the adversary and
// defense phases active, at every shard count, byte for byte against
// the serial-recorded golden.
func TestSybilwarShardIdentity(t *testing.T) {
	want := loadGolden(t, filepath.Join("testdata", "sybilwar_golden.txt"))
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			for _, c := range sybilwarCases() {
				cfg := c.cfg
				cfg.Shards = shards
				cfg.ShardWorkers = 4
				res, err := sim.Run(cfg)
				if err != nil {
					t.Fatalf("%s: %v", c.name, err)
				}
				if want[c.name] == "" {
					t.Fatalf("%s: no golden entry", c.name)
				}
				if got := advSummary(res); got != want[c.name] {
					t.Errorf("%s: sharded hostile run drifted from serial golden:\n got:  %s\n want: %s",
						c.name, got, want[c.name])
				}
			}
		})
	}
}

// TestAdversaryZeroConfigInert checks the inertness contract directly:
// a run with zero Attack and Defense configs reports all-zero adversary
// stats (the byte-level proof is TestDeterminismGolden passing against
// the pre-adversary golden file).
func TestAdversaryZeroConfigInert(t *testing.T) {
	res, err := sim.Run(determinismConfig(t, "random", 42))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Adversary, sim.AdversaryStats{}) {
		t.Errorf("zero configs produced adversary stats: %+v", res.Adversary)
	}
}

// attackConfig is the shared behavioral-test setup: a budget-24
// adversary against a 100-host ring with the whole budget mintable in
// the first tick.
func attackConfig(t *testing.T) sim.Config {
	t.Helper()
	st, _ := strategy.ByName("none")
	return sim.Config{
		Nodes: 100, Tasks: 5000, Strategy: st, Seed: 99, MaxTicks: 200,
		Attack: adversary.AttackConfig{
			Budget: 24, TargetStart: 0.25, TargetWidth: 1.0 / 16, WorkRate: 64,
		},
	}
}

// TestEclipseUndefendedVsDefended is the headline behavioral check: an
// undefended attack achieves nonzero eclipse success, and turning the
// density defense on strictly reduces it while actually evicting
// hostile identities.
func TestEclipseUndefendedVsDefended(t *testing.T) {
	undef, err := sim.Run(attackConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if undef.Adversary.FinalEclipse <= 0 {
		t.Fatalf("undefended attack achieved no eclipse: %+v", undef.Adversary)
	}
	if undef.Adversary.HostileMints == 0 || undef.Adversary.CapturedKeys == 0 {
		t.Fatalf("undefended attack placed no identities or captured no keys: %+v", undef.Adversary)
	}
	cfg := attackConfig(t)
	cfg.Defense = adversary.DefenseConfig{Threshold: 3, ScanEvery: 5}
	def, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if def.Adversary.HostileEvicted == 0 {
		t.Errorf("defense never evicted a hostile identity: %+v", def.Adversary)
	}
	if def.Adversary.FinalEclipse >= undef.Adversary.FinalEclipse {
		t.Errorf("defense did not reduce eclipse success: defended %.4f >= undefended %.4f",
			def.Adversary.FinalEclipse, undef.Adversary.FinalEclipse)
	}
}

// TestPuzzleCostChargesHonestJoins checks the defense's collateral
// cost: with admission puzzles on and churn running, honest joiners are
// charged work that slows the job down.
func TestPuzzleCostChargesHonestJoins(t *testing.T) {
	st, _ := strategy.ByName("random")
	base := sim.Config{
		Nodes: 100, Tasks: 8000, Strategy: st, ChurnRate: 0.02, Seed: 7,
	}
	free, err := sim.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Defense = adversary.DefenseConfig{PuzzleBits: 10}
	taxed, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if taxed.Adversary.PuzzleWorkCharged == 0 {
		t.Fatal("puzzle defense charged no admission work despite churn and Sybil mints")
	}
	if taxed.Ticks <= free.Ticks {
		t.Errorf("puzzle cost did not slow the job: taxed %d ticks <= free %d", taxed.Ticks, free.Ticks)
	}
}

// TestHonestFalseEvictions checks the detector's known blind spot: the
// paper's balancing strategies mint dense IDs by design, so with no
// attacker at all an aggressive threshold still evicts honest
// identities — and every eviction is a false positive.
func TestHonestFalseEvictions(t *testing.T) {
	st, _ := strategy.ByName("random")
	cfg := sim.Config{
		Nodes: 120, Tasks: 8000, Strategy: st, ChurnRate: 0.01, Seed: 5,
		Defense: adversary.DefenseConfig{Threshold: 1.5, ScanEvery: 5},
	}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := res.Adversary
	if a.HonestEvicted+a.RekeyedPrimaries == 0 {
		t.Fatalf("aggressive threshold never fired on an honest network: %+v", a)
	}
	if got := a.FalseEvictionRate(); got != 1 {
		t.Errorf("FalseEvictionRate = %v with no attacker, want 1", got)
	}
	if a.HostileMints != 0 || a.HostileEvicted != 0 {
		t.Errorf("hostile accounting nonzero without an attacker: %+v", a)
	}
}
