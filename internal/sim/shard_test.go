package sim_test

// Sharded-engine identity tests: Config.Shards is a pure performance
// knob, so every run must be byte-identical at every shard count — and,
// stronger, identical to the pre-sharding golden file recorded before
// the parallel tick engine existed. These tests are the referee for the
// "deterministic intra-trial parallelism" contract: the golden matrix
// covers all three consumption modes, every strategy family, churn, and
// the crash/partition fault plan, i.e. every merge path the sharded
// phases have.

import (
	"fmt"
	"path/filepath"
	"testing"

	"chordbalance/internal/experiments"
	"chordbalance/internal/sim"
)

// shardCounts are the fan-outs every identity test exercises. 1 is the
// literal serial engine; the rest run the parallel phases with real
// goroutines (ShardWorkers below), so `go test -race` patrols the
// shard code on every run.
var shardCounts = []int{1, 2, 4, 8}

// TestShardGoldenIdentity runs the full golden matrix at each shard
// count against the untouched pre-sharding testdata. Passing proves the
// sharded consume/churn/snapshot phases and their fixed-order merges
// changed no emitted byte relative to the single-threaded engine the
// goldens were recorded from.
func TestShardGoldenIdentity(t *testing.T) {
	want := loadGolden(t, filepath.Join("testdata", "determinism_golden.txt"))
	for _, shards := range shardCounts {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			for _, c := range goldenCases() {
				cfg := c.cfg
				cfg.Shards = shards
				cfg.ShardWorkers = 4
				res, err := sim.Run(cfg)
				if err != nil {
					t.Fatalf("%s: %v", c.name, err)
				}
				if want[c.name] == "" {
					t.Fatalf("%s: no golden entry", c.name)
				}
				if got := fullSummary(res); got != want[c.name] {
					t.Errorf("%s: sharded run drifted from pre-sharding golden:\n got:  %s\n want: %s",
						c.name, got, want[c.name])
				}
			}
		})
	}
}

// TestShardCountInvariant pins shard-count invariance directly: the
// same config at 0/1/2/4/8 shards — and at different worker caps —
// must agree byte for byte, including on runs with streaming arrivals
// and static virtual nodes, which the golden matrix does not cover.
func TestShardCountInvariant(t *testing.T) {
	cfgs := map[string]func(shards, workers int) sim.Config{
		"churn-hetero": func(shards, workers int) sim.Config {
			cfg := determinismConfig(t, "random", 4711)
			cfg.Shards = shards
			cfg.ShardWorkers = workers
			return cfg
		},
		"stream-static-vnodes": func(shards, workers int) sim.Config {
			cfg := determinismConfig(t, "neighbor", 815)
			cfg.StreamTasks = 2000
			cfg.StreamRate = 40
			cfg.StaticVNodes = 2
			cfg.Shards = shards
			cfg.ShardWorkers = workers
			return cfg
		},
	}
	for name, mk := range cfgs {
		t.Run(name, func(t *testing.T) {
			var base string
			for i, variant := range []struct{ shards, workers int }{
				{0, 0}, {1, 1}, {2, 4}, {4, 2}, {8, 0},
			} {
				res, err := sim.Run(mk(variant.shards, variant.workers))
				if err != nil {
					t.Fatal(err)
				}
				got := fullSummary(res)
				if i == 0 {
					base = got
					continue
				}
				if got != base {
					t.Errorf("shards=%d workers=%d diverged:\n got:  %s\n want: %s",
						variant.shards, variant.workers, got, base)
				}
			}
		})
	}
}

// TestShardedExperimentsIdentical mirrors TestSerialParallelIdentical
// one level up: the experiment driver with intra-trial sharding enabled
// (trials in parallel, each trial itself parallel) must aggregate the
// exact statistics the fully serial driver produces.
func TestShardedExperimentsIdentical(t *testing.T) {
	for _, name := range determinismStrategies {
		t.Run(name, func(t *testing.T) {
			fn := func(seed uint64) sim.Config {
				return determinismConfig(t, name, seed)
			}
			var got [3]string
			for i, opt := range []experiments.Options{
				{Trials: 4, Seed: 7, Workers: 1},
				{Trials: 4, Seed: 7, Workers: 1, Shards: 4, ShardWorkers: 2},
				{Trials: 4, Seed: 7, Workers: 2, Shards: 2, ShardWorkers: 2},
			} {
				stat, err := experiments.FactorStat(fn, 0, opt)
				if err != nil {
					t.Fatal(err)
				}
				got[i] = fmt.Sprintf("%v min=%.9f max=%.9f", stat, stat.Min, stat.Max)
			}
			if got[0] != got[1] || got[0] != got[2] {
				t.Errorf("sharded drivers disagree:\n serial:        %s\n sharded:       %s\n fully parallel: %s",
					got[0], got[1], got[2])
			}
		})
	}
}
