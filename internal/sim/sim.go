// Package sim is the discrete-time simulation engine of the paper's
// evaluation (§V): a Chord DHT holding a fixed job of tasks, advanced in
// abstract ticks. Each tick every live host consumes work, churn moves
// hosts between the network and a waiting pool, and every few ticks the
// configured strategy runs one autonomous load-balancing decision pass.
//
// The engine implements strategy.World, so the policies in
// internal/strategy mutate the network only through the same local
// operations a real deployment would have.
package sim

import (
	"fmt"
	"io"
	"math"

	"chordbalance/internal/adversary"
	"chordbalance/internal/faults"
	"chordbalance/internal/ids"
	"chordbalance/internal/keys"
	"chordbalance/internal/obs"
	"chordbalance/internal/parallel"
	"chordbalance/internal/ring"
	"chordbalance/internal/strategy"
	"chordbalance/internal/sybil"
	"chordbalance/internal/xrand"
)

// Config describes one experiment run (§V-B, "Experimental Variables").
type Config struct {
	// Nodes is the initial network size. The churn waiting pool starts at
	// the same size (§IV-A).
	Nodes int
	// Tasks is the job size in tasks.
	Tasks int
	// Strategy is the balancing policy; nil means the no-op baseline.
	Strategy strategy.Strategy
	// ChurnRate is each host's per-tick probability of leaving (and each
	// waiting host's probability of joining). Default 0.
	ChurnRate float64
	// ChurnModel shapes how churn arrives over time; the default
	// (ChurnConstant) is the paper's assumption of a constant rate.
	ChurnModel ChurnModel
	// BurstPeriod and BurstDuty configure ChurnBursty: churn happens only
	// during the first BurstDuty fraction of each BurstPeriod-tick cycle,
	// at a rate scaled up so the *average* rate still equals ChurnRate.
	// Defaults: period 50, duty 0.2.
	BurstPeriod int
	BurstDuty   float64
	// Heterogeneous draws host strengths from U{1..MaxSybils}.
	Heterogeneous bool
	// WorkByStrength makes a host consume Strength tasks per tick instead
	// of one.
	WorkByStrength bool
	// MaxSybils caps Sybils per host (default 5).
	MaxSybils int
	// SybilThreshold is the workload at or below which a host seeks work
	// (default 0).
	SybilThreshold int
	// InviteThreshold is the workload above which a node invites help.
	// 0 derives the default (twice the initial fair share); negative
	// values mean literally zero.
	InviteThreshold int
	// NumSuccessors is the successor/predecessor list length (default 5).
	NumSuccessors int
	// DecisionEvery is the strategy cadence in ticks (default 5).
	DecisionEvery int
	// AvoidRepeats enables the neighbor strategy's failed-arc blacklist.
	AvoidRepeats bool
	// ZipfObjects switches the workload from the paper's uniform task
	// keys to file-sharing-style popularity: tasks reference this many
	// distinct objects with Zipf(ZipfExponent) popularity, so tasks for
	// one popular object pile onto a single ring position. 0 (default)
	// keeps the paper's uniform keys.
	ZipfObjects int
	// ZipfExponent is the skew (default 1.0 when ZipfObjects > 0).
	ZipfExponent float64
	// StreamTasks adds tasks that arrive *during* the run — StreamRate
	// per tick until exhausted — instead of all being present at tick 0
	// (the paper assumes a static job, §V). The ideal runtime accounts
	// for both the extra work and the arrival horizon.
	StreamTasks int
	// StreamRate is the arrival rate in tasks/tick (required > 0 when
	// StreamTasks > 0).
	StreamRate int
	// StaticVNodes gives every host this many additional virtual nodes at
	// random IDs from the start — the classic static virtual-server
	// load-balancing scheme (Chord's own suggestion of O(log n) virtual
	// nodes per host). It is the literature's standard baseline against
	// which the paper's *dynamic* Sybil strategies can be judged; the
	// static copies never move, count against no Sybil cap, and exist
	// before the job begins. A host that churns out loses its copies and
	// rejoins with a single virtual node, as any fresh joiner would.
	StaticVNodes int
	// Faults is the deterministic fault plan (crash-stop departures,
	// correlated bursts, partitions) threaded through the run. The zero
	// plan is provably inert: no injector is constructed and no fault code
	// path consumes randomness, so fault-free runs are byte-identical to
	// pre-fault-layer builds.
	Faults faults.Plan
	// Attack configures a hostile eclipse adversary that mints clustered
	// Sybil identities inside a target arc (docs/ADVERSARY.md). Like
	// Faults, the zero config is provably inert: no adversary state is
	// constructed and no attack code path runs or consumes randomness,
	// so attack-free runs are byte-identical to pre-adversary builds.
	Attack adversary.AttackConfig
	// Defense configures the Sybil defenses: puzzle-cost identity
	// admission (charged against each admitted identity's consume
	// budget, honest and hostile alike) and per-arc ID-density anomaly
	// detection with eviction. The zero config is provably inert.
	Defense adversary.DefenseConfig
	// Replicas is the per-key replication degree assumed for crash-stop
	// departures: with replication, keys on a crashed host survive on
	// successors (charged as repair traffic); without, they are lost and
	// must be re-submitted after a detection+reinsert delay, which is
	// charged against the strategy's runtime. 0 derives the default
	// min(3, NumSuccessors); -1 disables replication.
	Replicas int
	// Shards partitions each tick's per-host phases — workload
	// consumption, churn-scan classification, snapshot capture — into
	// this many contiguous index-range shards executed concurrently and
	// merged in fixed shard order. Sharding is purely a performance
	// knob: the run's output is byte-identical at every shard count,
	// including to the serial engine, because the phases that fan out
	// consume no randomness (the churn scan's Bernoulli draws are
	// buffered serially first; see docs/PERFORMANCE.md). 0 or 1 runs
	// the serial engine.
	Shards int
	// ShardWorkers caps the goroutines driving the shard phases;
	// 0 (default) uses GOMAXPROCS. Like Shards it cannot affect output.
	ShardWorkers int
	// Seed makes the run fully deterministic.
	Seed uint64
	// MaxTicks aborts runaway runs; 0 derives 200×ideal+1000.
	MaxTicks int
	// ConsumeMode selects which end of its arc a node works through; see
	// ring.ConsumeMode. The default (ConsumeFront) reproduces the paper's
	// observed strategy behavior; ConsumeAlternate is the unbiased
	// alternative studied in the consumption-order ablation.
	ConsumeMode ring.ConsumeMode
	// SnapshotTicks lists ticks at which to capture workload snapshots
	// (tick 0 is the initial distribution).
	SnapshotTicks []int
	// RecordWorkPerTick keeps the per-tick consumption series.
	RecordWorkPerTick bool
	// RecordEvents keeps a log of every topology change (join, leave,
	// Sybil creation/withdrawal) with the tick it happened and the work
	// it moved; dhtsim can dump it as CSV for debugging and visualization.
	RecordEvents bool
	// CheckInvariants validates ring invariants every tick (slow; tests).
	CheckInvariants bool
	// Trace attaches a per-tick JSONL tracer (docs/OBSERVABILITY.md).
	// Tracing is read-only over engine state and consumes no randomness,
	// so a traced run's Result is byte-identical to the same seed
	// untraced. nil (the default) disables tracing entirely: no metric
	// code runs and the hot loop allocates nothing extra.
	Trace *obs.Tracer
}

// ChurnModel selects the temporal pattern of churn.
type ChurnModel int

const (
	// ChurnConstant applies ChurnRate every tick (the paper's model,
	// shared with most churn analyses it cites).
	ChurnConstant ChurnModel = iota
	// ChurnBursty concentrates the same average turnover into periodic
	// bursts — flash crowds and correlated failures — to test whether the
	// speedup from churn survives realistic arrival patterns.
	ChurnBursty
)

func (c Config) withDefaults() Config {
	if c.MaxSybils == 0 {
		c.MaxSybils = 5
	}
	if c.BurstPeriod == 0 {
		c.BurstPeriod = 50
	}
	if c.BurstDuty == 0 {
		c.BurstDuty = 0.2
	}
	if c.NumSuccessors == 0 {
		c.NumSuccessors = 5
	}
	if c.DecisionEvery == 0 {
		c.DecisionEvery = 5
	}
	if c.Strategy == nil {
		c.Strategy = strategy.NewNone()
	}
	return c
}

// Validate reports configuration errors a run would choke on.
func (c Config) Validate() error {
	switch {
	case c.Nodes < 1:
		return fmt.Errorf("sim: Nodes must be >= 1, got %d", c.Nodes)
	case c.Tasks < 0:
		return fmt.Errorf("sim: Tasks must be >= 0, got %d", c.Tasks)
	case c.ChurnRate < 0 || c.ChurnRate > 1:
		return fmt.Errorf("sim: ChurnRate %v outside [0,1]", c.ChurnRate)
	case c.MaxSybils < 0:
		return fmt.Errorf("sim: MaxSybils must be >= 0, got %d", c.MaxSybils)
	case c.BurstPeriod < 0:
		return fmt.Errorf("sim: BurstPeriod must be >= 0, got %d", c.BurstPeriod)
	case c.BurstDuty < 0 || c.BurstDuty > 1:
		return fmt.Errorf("sim: BurstDuty %v outside [0,1]", c.BurstDuty)
	case c.ZipfObjects < 0:
		return fmt.Errorf("sim: ZipfObjects must be >= 0, got %d", c.ZipfObjects)
	case c.ZipfObjects > 0 && c.ZipfExponent < 0:
		return fmt.Errorf("sim: ZipfExponent must be >= 0, got %v", c.ZipfExponent)
	case c.StreamTasks < 0:
		return fmt.Errorf("sim: StreamTasks must be >= 0, got %d", c.StreamTasks)
	case c.StreamTasks > 0 && c.StreamRate < 1:
		return fmt.Errorf("sim: StreamTasks needs StreamRate >= 1, got %d", c.StreamRate)
	case c.StaticVNodes < 0:
		return fmt.Errorf("sim: StaticVNodes must be >= 0, got %d", c.StaticVNodes)
	case c.Replicas < -1:
		return fmt.Errorf("sim: Replicas must be >= -1, got %d", c.Replicas)
	case c.NumSuccessors < 0:
		return fmt.Errorf("sim: NumSuccessors must be >= 0, got %d", c.NumSuccessors)
	case c.Shards < 0:
		return fmt.Errorf("sim: Shards must be >= 0, got %d", c.Shards)
	case c.ShardWorkers < 0:
		return fmt.Errorf("sim: ShardWorkers must be >= 0, got %d", c.ShardWorkers)
	}
	// A replica lives on a successor; asking for more replicas than the
	// successor list is long cannot be satisfied by the protocol.
	ns := c.NumSuccessors
	if ns == 0 {
		ns = 5 // withDefaults
	}
	if c.Replicas > ns {
		return fmt.Errorf("sim: Replicas %d exceeds successor list length %d", c.Replicas, ns)
	}
	if err := c.Faults.Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	if err := c.Attack.Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	if err := c.Defense.Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	return nil
}

// MessageStats estimates the protocol traffic a real deployment would
// incur for the run, using the internal/chord cost model: a join (or Sybil
// creation) needs an O(log n) lookup plus successor-list setup; strategies
// are charged their queries and announcements.
type MessageStats struct {
	Joins          int
	Leaves         int
	SybilsCreated  int
	SybilsDropped  int
	LookupMessages int
	Maintenance    int
	Strategy       map[string]int
}

// Total sums every message category.
func (m MessageStats) Total() int {
	t := m.LookupMessages + m.Maintenance
	for _, v := range m.Strategy {
		t += v
	}
	return t
}

// Snapshot captures the workload distribution at one tick; the figures'
// histograms are built from these.
type Snapshot struct {
	Tick int
	// HostWorkloads is the residual work per live host (all its virtual
	// nodes combined) — what Figures 4-14 plot.
	HostWorkloads []int
	// VNodeWorkloads is the residual work per live virtual node.
	VNodeWorkloads []int
	AliveHosts     int
	VNodes         int
	// CrashedHosts is the cumulative crash-stop departure count at this
	// tick; PendingResubmit counts keys lost to crashes and still waiting
	// to be re-submitted. Both stay 0 under a zero fault plan.
	CrashedHosts    int
	PendingResubmit int
}

// EventKind classifies a topology change.
type EventKind int

// Event kinds, in the order a host typically experiences them.
const (
	EventJoin EventKind = iota
	EventLeave
	EventSybilCreate
	EventSybilDrop
	// EventCrash is a crash-stop departure drawn by the fault plan; Moved
	// counts the keys the crash displaced (recovered by replication or
	// lost outright).
	EventCrash
	// EventResubmit is a batch of crash-lost keys re-entering the ring
	// after the detection+reinsert delay; Moved counts the keys.
	EventResubmit
	// EventHostileMint is an adversary identity joining the ring inside
	// its target arc; Moved counts the keys it captured on arrival.
	EventHostileMint
	// EventEvict is a density-flagged identity removed by the defense;
	// Moved counts the keys handed back to its successor.
	EventEvict
	// EventRekey is an honest non-Sybil identity the defense flagged and
	// forced to rejoin at a fresh ID — eviction as induced churn.
	EventRekey
)

// String names the event kind for logs and CSV.
func (k EventKind) String() string {
	switch k {
	case EventJoin:
		return "join"
	case EventLeave:
		return "leave"
	case EventSybilCreate:
		return "sybil-create"
	case EventSybilDrop:
		return "sybil-drop"
	case EventCrash:
		return "crash"
	case EventResubmit:
		return "resubmit"
	case EventHostileMint:
		return "hostile-mint"
	case EventEvict:
		return "evict"
	case EventRekey:
		return "rekey"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event records one topology change during a run.
type Event struct {
	Tick int
	Kind EventKind
	// Host is the physical machine's index.
	Host int
	// ID is the virtual node involved.
	ID ids.ID
	// Moved is the number of task keys that changed owner: keys acquired
	// on a join/creation, keys handed to successors on a leave/drop.
	Moved int
}

// WriteEventsCSV dumps events as tick,kind,host,id,moved rows.
func WriteEventsCSV(w io.Writer, events []Event) error {
	if _, err := io.WriteString(w, "tick,kind,host,id,moved\n"); err != nil {
		return err
	}
	for _, e := range events {
		if _, err := fmt.Fprintf(w, "%d,%s,%d,%s,%d\n",
			e.Tick, e.Kind, e.Host, e.ID.Short(), e.Moved); err != nil {
			return err
		}
	}
	return nil
}

// Result is the outcome of one run.
type Result struct {
	Ticks         int
	IdealTicks    int
	RuntimeFactor float64
	Completed     bool
	Snapshots     []Snapshot
	WorkPerTick   []int
	Events        []Event
	Messages      MessageStats
	// Faults summarizes crash-stop churn and key-loss accounting; all-zero
	// when the run had a zero fault plan.
	Faults FaultStats
	// Adversary summarizes the attack/defense co-simulation; zero when
	// both the attack and defense configs were zero.
	Adversary AdversaryStats
	// FinalAliveHosts and FinalVNodes describe the network at the end.
	FinalAliveHosts int
	FinalVNodes     int
	// CompletedByStrength counts tasks completed per strength class —
	// the measurement behind the §VII hypothesis that weak nodes steal
	// work from strong ones in heterogeneous networks. Homogeneous runs
	// have a single class, 1.
	CompletedByStrength map[int]int
	// HostsByStrength counts the initially-live hosts per strength class.
	HostsByStrength map[int]int
}

// vnode is one virtual node: the engine-side implementation of
// strategy.VNode.
type vnode struct {
	rn      *ring.Node[*vnode]
	host    *hostState
	isSybil bool
}

func (v *vnode) ID() ids.ID          { return v.rn.ID() }
func (v *vnode) PredID() ids.ID      { return v.rn.PredID() }
func (v *vnode) Workload() int       { return v.rn.Workload() }
func (v *vnode) Host() strategy.Host { return v.host }

// hostState is one physical machine: the engine-side implementation of
// strategy.Host.
type hostState struct {
	acct   *sybil.Host
	vnodes []*vnode // primary first; empty while in the waiting pool

	// sim points back at the owning engine so Workload can consult the
	// invalidation epoch (set once in New, never changed).
	sim *Simulation
	// wl caches the host's aggregate workload; it is valid iff wlEpoch
	// equals sim.wlEpoch. Invalidation is precise: an Insert split or
	// Remove hand-off zeroes the wlEpoch of exactly the two hosts whose
	// keys moved (self and the ring successor's host), Seed routing —
	// which can land keys anywhere — bumps sim.wlEpoch globally, and
	// consume delta-updates still-valid caches in place. Untouched
	// hosts therefore keep warm caches across ticks, which lets consume
	// skip provably idle hosts and strategies' per-decision EachHost
	// scans stop re-summing virtual nodes that did not change.
	wl      int
	wlEpoch uint64
	// crashMark is the last tick this host was drawn as a crash victim;
	// it replaces the per-tick map the burst pass used to allocate.
	crashMark int
	// puzzleDebt is unpaid identity-admission work (Defense.PuzzleBits):
	// each join, Sybil mint, or forced rekey charges the puzzle cost
	// here, and consumeHost pays it down out of the host's per-tick work
	// budget before any task is consumed. Host-local: charged only in
	// serial phases, paid only by the host's own consume slot, so the
	// sharded engine needs no coordination.
	puzzleDebt int
}

func (h *hostState) Index() int    { return h.acct.Index() }
func (h *hostState) Strength() int { return h.acct.Strength() }
func (h *hostState) SybilCount() int {
	return h.acct.SybilCount()
}
func (h *hostState) CanCreateSybil() bool { return h.acct.CanCreateSybil() }
func (h *hostState) Workload() int {
	if h.wlEpoch == h.sim.wlEpoch {
		return h.wl
	}
	w := 0
	for _, v := range h.vnodes {
		w += v.rn.Workload()
	}
	h.wl = w
	h.wlEpoch = h.sim.wlEpoch
	return w
}

// Simulation is a fully constructed, runnable experiment.
type Simulation struct {
	cfg    Config
	params strategy.Params
	rng    *xrand.Rand
	ring   *ring.Ring[*vnode]
	pool   *sybil.Pool
	hosts  []*hostState
	msgs   MessageStats
	ideal  int
	tick   int

	// finj is the fault injector; nil when the plan is zero, which keeps
	// every fault code path provably inert.
	finj *faults.Injector
	// replicas is the effective replication degree (Config.Replicas with
	// defaults applied; 0 means replication disabled).
	replicas int
	// pending holds key batches lost to unreplicated crashes, waiting to
	// be re-submitted once their owner's failure has been detected and the
	// submitter retries.
	pending []resubmission
	fstats  FaultStats

	// tasks produces task keys for the initial seed and streamed
	// arrivals.
	tasks *taskStream
	// events accumulates the topology log when RecordEvents is set.
	events []Event
	// completedByStrength counts consumed tasks per host strength class.
	completedByStrength map[int]int
	// streamLeft counts tasks still to arrive.
	streamLeft int

	// wlEpoch is the workload-cache invalidation epoch: a hostState's
	// cached aggregate is valid iff its wlEpoch matches. Starts at 1 so
	// the zero value on hostState means "invalid". Bumped only by Seed
	// routing (stream arrivals, crash re-submissions), which can touch
	// any host; all other key movement invalidates per host.
	wlEpoch uint64

	// active is the live-host list in stable index order, rebuilt lazily
	// whenever activeDirty is set (any SetAlive transition). consume,
	// snapshot, EachHost, and the crash Bernoulli pass iterate it instead
	// of scanning the full host table (half of which is the waiting
	// pool). churn still scans every host: its RNG draw order — one
	// Bool per host, alive and waiting alike — is observable behavior.
	active      []*hostState
	activeDirty bool
	// aliveBit mirrors each host's liveness in a packed slice (indexed
	// like hosts) so churn's mandatory full scan — one RNG draw per
	// host, alive and waiting alike — reads sequential bytes instead of
	// chasing two pointers per host. Updated at every SetAlive site.
	aliveBit []bool

	// adv holds the adversary/defense co-simulation state; nil when both
	// the attack and defense configs are zero, which keeps every hostile
	// code path provably inert (the same pattern as finj).
	adv *advState

	// obsm holds the registered trace-metric handles; nil when tracing
	// is disabled, which is the only flag the hot loop ever checks.
	obsm *simMetrics

	// shards holds per-shard scratch for the parallel tick phases; empty
	// for the serial engine (Config.Shards <= 1), which is the only flag
	// the phase dispatchers check. shardWorkers caps the goroutines
	// parallel.ForEach drives the phases with (0 = GOMAXPROCS).
	// churnDraws buffers the churn scan's serially-drawn Bernoulli
	// variates — one Uint64 per host in index order, exactly the stream
	// the serial scan consumes — so classification can fan out without
	// touching the RNG.
	shards       []tickShard
	shardWorkers int
	churnDraws   []uint64

	// scratch buffers reused across ticks
	leavers     []*hostState
	joiners     []*hostState
	victims     []*hostState
	burstPool   []*hostState
	newlyAlive  []*hostState
	activeMerge []*hostState
}

// tickShard is one shard's private scratch for the parallel tick phases.
// Each phase hands shard i the contiguous host-index range
// [i*n/S, (i+1)*n/S); the shard accumulates into these fields only, and
// the merge phase folds shards together in fixed shard order — which,
// because shards are contiguous index ranges, reproduces the serial
// iteration order exactly.
type tickShard struct {
	// consumed and doneByStrength accumulate the consume phase
	// (doneByStrength is a dense slice, not a map, so the merge iterates
	// deterministically and the shard loop never allocates).
	consumed       int
	doneByStrength []int
	// leavers and joiners collect the churn classification.
	leavers []*hostState
	joiners []*hostState
	// hostWL and vnodeWL stage snapshot vectors for concatenation.
	hostWL  []int
	vnodeWL []int
}

// addDone counts completed work against a strength class.
func (sh *tickShard) addDone(strength, n int) {
	for len(sh.doneByStrength) <= strength {
		sh.doneByStrength = append(sh.doneByStrength, 0)
	}
	sh.doneByStrength[strength] += n
}

// aliveHosts returns the live hosts in stable index order. The cached
// list is repaired incrementally: dead entries are compacted out and
// hosts that came alive since the last call (recorded by attach's
// callers in index order) are merged back in, so a repair costs
// O(alive + joins) instead of a full O(hosts) rescan of a table that is
// half waiting pool.
func (s *Simulation) aliveHosts() []*hostState {
	if !s.activeDirty {
		return s.active
	}
	merged := s.activeMerge[:0]
	na := s.newlyAlive
	j := 0
	for _, h := range s.active {
		if !h.acct.Alive() {
			continue // left or crashed since the last repair
		}
		for j < len(na) && na[j].Index() < h.Index() {
			if na[j].acct.Alive() { // not re-crashed within the tick
				merged = append(merged, na[j])
			}
			j++
		}
		merged = append(merged, h)
	}
	for ; j < len(na); j++ {
		if na[j].acct.Alive() {
			merged = append(merged, na[j])
		}
	}
	s.activeMerge = s.active[:0]
	s.active = merged
	s.newlyAlive = s.newlyAlive[:0]
	s.activeDirty = false
	return s.active
}

// taskStream generates task keys: uniform SHA-1 draws (the paper's
// model) or Zipf-popular object references.
type taskStream struct {
	gen     *keys.Generator
	zipf    *keys.Zipf
	objects []ids.ID
	rng     *xrand.Rand
}

func newTaskStream(cfg Config) *taskStream {
	ts := &taskStream{gen: keys.NewGenerator(cfg.Seed ^ 0x9e3779b97f4a7c15)}
	if cfg.ZipfObjects > 0 {
		s := cfg.ZipfExponent
		if s == 0 {
			s = 1
		}
		ts.zipf = keys.NewZipf(cfg.ZipfObjects, s)
		ts.objects = keys.NewGenerator(cfg.Seed ^ 0xd1b54a32d192ed03).NodeIDs(cfg.ZipfObjects)
		ts.rng = xrand.New(cfg.Seed ^ 0xeb44accab455d165)
	}
	return ts
}

func (ts *taskStream) next(n int) []ids.ID {
	if ts.zipf == nil {
		return ts.gen.TaskKeys(n)
	}
	out := make([]ids.ID, n)
	for i := range out {
		out[i] = ts.objects[ts.zipf.Rank(ts.rng)-1]
	}
	return out
}

// New builds a simulation: hosts with SHA-1 primary IDs, the waiting pool,
// and the seeded task keys. It returns an error on invalid configuration.
func New(cfg Config) (*Simulation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	s := &Simulation{
		cfg:  cfg,
		rng:  xrand.New(cfg.Seed),
		ring: ring.New[*vnode](),
		msgs: MessageStats{Strategy: make(map[string]int)},

		completedByStrength: make(map[int]int),
		wlEpoch:             1, // zero-valued hostState caches start invalid
	}
	if cfg.Shards > 1 {
		s.shards = make([]tickShard, cfg.Shards)
		s.shardWorkers = cfg.ShardWorkers
	}
	s.ring.SetConsumeMode(cfg.ConsumeMode)
	if cfg.Trace != nil {
		s.obsm = newSimMetrics(cfg.Trace)
	}
	// The zero plan constructs no injector at all: the fault layer cannot
	// perturb a fault-free run even by accident.
	if !cfg.Faults.Zero() {
		inj, err := faults.New(cfg.Faults)
		if err != nil {
			return nil, err
		}
		s.finj = inj
	}
	switch {
	case cfg.Replicas > 0:
		s.replicas = cfg.Replicas
	case cfg.Replicas == 0:
		s.replicas = 3
		if s.replicas > cfg.NumSuccessors {
			s.replicas = cfg.NumSuccessors
		}
	default: // -1: replication disabled
		s.replicas = 0
	}
	s.pool = sybil.NewPool(sybil.PoolConfig{
		Hosts:         cfg.Nodes,
		WaitingHosts:  cfg.Nodes,
		Heterogeneous: cfg.Heterogeneous,
		MaxSybils:     cfg.MaxSybils,
	}, s.rng)
	s.hosts = make([]*hostState, s.pool.Len())
	for i := range s.hosts {
		s.hosts[i] = &hostState{acct: s.pool.Host(i), sim: s}
	}
	// Populate the active-host list and the packed liveness mirror once
	// by full scan; from here on both are repaired incrementally (see
	// aliveHosts, churn, crashHost).
	s.active = make([]*hostState, 0, cfg.Nodes)
	s.aliveBit = make([]bool, len(s.hosts))
	for i, h := range s.hosts {
		if h.acct.Alive() {
			s.active = append(s.active, h)
			s.aliveBit[i] = true
		}
	}
	if err := s.initAdversary(); err != nil {
		return nil, err // unreachable: cfg.Validate already vetted both configs
	}
	// Place live hosts' primary virtual nodes at SHA-1 identifiers,
	// followed by any static virtual servers, as one bulk ring.Build:
	// O(V log V) instead of the O(V^2) repeated incremental Inserts
	// cost. Byte-identical to the old loop because the generator
	// sequence is unchanged and the duplicate check sees exactly the
	// same already-accepted ID set the incremental ring did.
	gen := keys.NewGenerator(cfg.Seed)
	taken := make(map[ids.ID]bool, cfg.Nodes*(1+cfg.StaticVNodes))
	freshID := func() ids.ID {
		for {
			id := gen.Next()
			if !taken[id] {
				taken[id] = true
				return id
			}
		}
	}
	nvn := cfg.Nodes * (1 + cfg.StaticVNodes)
	nodeIDs := make([]ids.ID, 0, nvn)
	data := make([]*vnode, 0, nvn)
	addVN := func(h *hostState) {
		v := &vnode{host: h}
		nodeIDs = append(nodeIDs, freshID())
		data = append(data, v)
		h.vnodes = append(h.vnodes, v)
	}
	for _, h := range s.hosts[:cfg.Nodes] {
		addVN(h)
	}
	for i := 0; i < cfg.StaticVNodes; i++ {
		for _, h := range s.hosts[:cfg.Nodes] {
			// Static copies are not Sybils: they are permanent ring
			// members and do not count against the Sybil cap.
			addVN(h)
		}
	}
	rns, err := s.ring.Build(nodeIDs, data)
	if err != nil {
		return nil, err // unreachable: freshID never repeats an ID
	}
	for i, rn := range rns {
		data[i].rn = rn
	}
	// Seed the job's initial task keys; streamed tasks arrive later.
	s.tasks = newTaskStream(cfg)
	s.streamLeft = cfg.StreamTasks
	if err := s.ring.Seed(s.tasks.next(cfg.Tasks)); err != nil {
		return nil, err
	}
	// Ideal runtime: every initial host working at full speed with a
	// perfectly even split (§V-C). With streaming, the job can also
	// never end before the last arrival.
	totalStrength := s.pool.TotalStrength(cfg.WorkByStrength)
	totalTasks := cfg.Tasks + cfg.StreamTasks
	s.ideal = (totalTasks + totalStrength - 1) / totalStrength
	if cfg.StreamTasks > 0 {
		horizon := (cfg.StreamTasks + cfg.StreamRate - 1) / cfg.StreamRate
		if horizon > s.ideal {
			s.ideal = horizon
		}
	}
	if s.ideal == 0 {
		s.ideal = 1
	}
	s.params = strategy.Params{
		SybilThreshold:  cfg.SybilThreshold,
		InviteThreshold: cfg.InviteThreshold,
		NumSuccessors:   cfg.NumSuccessors,
		DecisionEvery:   cfg.DecisionEvery,
		AvoidRepeats:    cfg.AvoidRepeats,
	}.WithDefaults()
	switch {
	case cfg.InviteThreshold > 0:
		s.params.InviteThreshold = cfg.InviteThreshold
	case cfg.InviteThreshold < 0:
		s.params.InviteThreshold = 0
	default:
		// Twice the initial fair share: a node is "overburdened" once it
		// holds more than double what an even split would give it.
		s.params.InviteThreshold = 2 * ((cfg.Tasks + cfg.Nodes - 1) / cfg.Nodes)
	}
	return s, nil
}

// attach puts host h onto the ring at id with a fresh virtual node.
// The insert splits keys off the successor, so exactly two hosts'
// workload caches go stale: h's and the successor's.
func (s *Simulation) attach(h *hostState, id ids.ID, isSybil bool) *vnode {
	v := &vnode{host: h, isSybil: isSybil}
	rn, err := s.ring.Insert(id, v)
	if err != nil {
		panic(fmt.Sprintf("sim: attach at occupied id %s", id.Short()))
	}
	v.rn = rn
	h.vnodes = append(h.vnodes, v)
	h.wlEpoch = 0
	if s.ring.Len() > 1 {
		s.ring.Succ(rn, 1).Data.host.wlEpoch = 0
	}
	return v
}

// IdealTicks returns the ideal runtime of the configured job.
func (s *Simulation) IdealTicks() int { return s.ideal }

// Run advances the simulation until the job completes or MaxTicks is hit,
// returning the collected metrics.
func (s *Simulation) Run() *Result {
	cfg := s.cfg
	maxTicks := cfg.MaxTicks
	if maxTicks == 0 {
		maxTicks = 200*s.ideal + 1000
	}
	snapshotAt := make(map[int]bool, len(cfg.SnapshotTicks))
	for _, t := range cfg.SnapshotTicks {
		snapshotAt[t] = true
	}
	res := &Result{IdealTicks: s.ideal}
	if snapshotAt[0] {
		res.Snapshots = append(res.Snapshots, s.snapshot(0))
		if s.adv != nil {
			s.sampleEclipse(0)
		}
	}
	if s.obsm != nil {
		s.obsm.emitStart(s) // meta + schema + the tick-0 record
	}
	for (s.ring.TotalKeys() > 0 || s.streamLeft > 0 || s.pendingKeys() > 0) && s.tick < maxTicks {
		s.tick++
		if s.finj != nil {
			s.finj.AdvanceTo(s.tick)
			if s.finj.PartitionActive() {
				s.fstats.PartitionTicks++
			}
			s.resubmitDue()
		}
		if s.streamLeft > 0 {
			n := s.cfg.StreamRate
			if n > s.streamLeft {
				n = s.streamLeft
			}
			if err := s.ring.Seed(s.tasks.next(n)); err != nil {
				panic(err) // the ring always has at least one node
			}
			s.wlEpoch++ // arrivals landed on arbitrary hosts
			s.streamLeft -= n
		}
		done := s.consume()
		if cfg.RecordWorkPerTick {
			res.WorkPerTick = append(res.WorkPerTick, done)
		}
		if cfg.ChurnRate > 0 {
			s.churn()
		}
		if s.finj != nil {
			s.crashStep()
		}
		if s.adv != nil {
			s.adversaryStep()
		}
		if s.tick%s.params.DecisionEvery == 0 && s.ring.TotalKeys() > 0 {
			s.cfg.Strategy.Decide(s)
		}
		if s.adv != nil {
			s.defenseStep()
		}
		// Successor-list maintenance: every live virtual node pings its
		// successor list once per tick (§V-A "Maintenance"). Charged only
		// while the job is still running: when the last key was consumed
		// mid-tick the network has no round left to maintain, and charging
		// it would over-count every completed run by one round.
		if s.ring.TotalKeys() > 0 || s.streamLeft > 0 || s.pendingKeys() > 0 {
			s.msgs.Maintenance += s.ring.Len() * s.params.NumSuccessors
		}
		if s.obsm != nil {
			s.obsm.observe(s, done)
		}
		if snapshotAt[s.tick] {
			res.Snapshots = append(res.Snapshots, s.snapshot(s.tick))
			if s.adv != nil {
				s.sampleEclipse(s.tick)
			}
		}
		if cfg.CheckInvariants {
			if err := s.ring.CheckInvariants(); err != nil {
				panic(err)
			}
		}
	}
	res.Ticks = s.tick
	res.Events = s.events
	res.Completed = s.ring.TotalKeys() == 0 && s.streamLeft == 0 && s.pendingKeys() == 0
	res.RuntimeFactor = float64(res.Ticks) / float64(s.ideal)
	res.Messages = s.msgs
	res.Faults = s.fstats
	res.FinalAliveHosts = s.pool.AliveCount()
	res.FinalVNodes = s.ring.Len()
	res.CompletedByStrength = s.completedByStrength
	res.HostsByStrength = make(map[int]int)
	for _, h := range s.hosts[:s.cfg.Nodes] {
		res.HostsByStrength[h.acct.Strength()]++
	}
	if s.adv != nil {
		s.finishAdversary(res)
	}
	if s.obsm != nil {
		s.obsm.emitDone(res)
	}
	return res
}

// consume runs one tick of work: each live host completes up to its
// per-tick capacity, drawing from its most-loaded virtual nodes first.
// It iterates the active-host list (skipping the waiting pool outright
// — consume draws no randomness, so the iteration set is free to
// shrink) and delta-updates still-valid workload caches in place.
//
// Consumption is embarrassingly shard-parallel: each host touches only
// its own virtual nodes' windows and its own cache, and the ring-level
// total is deferred (ConsumeNDeferred) and committed once after the
// phase, so contiguous host-index shards can run concurrently and the
// commutative integer merge reproduces the serial totals exactly.
func (s *Simulation) consume() int {
	hosts := s.aliveHosts()
	if len(s.shards) == 0 {
		return s.consumeSerial(hosts)
	}
	return s.consumeSharded(hosts)
}

func (s *Simulation) consumeSerial(hosts []*hostState) int {
	total := 0
	epoch := s.wlEpoch
	for _, h := range hosts {
		if done := s.consumeHost(h, epoch); done > 0 {
			total += done
			s.completedByStrength[h.acct.Strength()] += done
		}
	}
	s.ring.CommitConsumed(total)
	return total
}

func (s *Simulation) consumeSharded(hosts []*hostState) int {
	ns := len(s.shards)
	epoch := s.wlEpoch
	parallel.ForEach(ns, s.shardWorkers, func(i int) {
		sh := &s.shards[i]
		sh.consumed = 0
		for j := range sh.doneByStrength {
			sh.doneByStrength[j] = 0
		}
		for _, h := range hosts[i*len(hosts)/ns : (i+1)*len(hosts)/ns] {
			if done := s.consumeHost(h, epoch); done > 0 {
				sh.consumed += done
				sh.addDone(h.acct.Strength(), done)
			}
		}
	})
	// Merge in fixed shard order. The per-class sums are commutative, so
	// the map ends up exactly as the serial per-host loop leaves it: an
	// entry exists iff some host of that strength completed work.
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		total += sh.consumed
		for st, v := range sh.doneByStrength {
			if v > 0 {
				s.completedByStrength[st] += v
			}
		}
	}
	s.ring.CommitConsumed(total)
	return total
}

// consumeHost performs one host's consumption for the tick and returns
// the work completed. The single-vnode fast path is the common case:
// one batched consume replaces the best-of loop, which for one vnode
// always picks that vnode until either the budget or the arc is empty.
// It touches only host-local state (the ring total is deferred), so
// shards may call it concurrently on disjoint hosts.
func (s *Simulation) consumeHost(h *hostState, epoch uint64) int {
	debt := 0
	if h.puzzleDebt != 0 {
		// Identity-admission puzzles come out of the same work budget as
		// tasks: a host still solving its puzzle contributes nothing to
		// the job this tick. Checked before the idle fast path — a host
		// with no keys still burns ticks paying its admission cost.
		b := h.acct.WorkPerTick(s.cfg.WorkByStrength)
		if h.puzzleDebt >= b {
			h.puzzleDebt -= b
			return 0
		}
		debt = h.puzzleDebt
		h.puzzleDebt = 0
	}
	if h.wlEpoch == epoch && h.wl == 0 {
		return 0 // provably idle: warm cache says no residual work
	}
	budget := h.acct.WorkPerTick(s.cfg.WorkByStrength) - debt
	done := 0
	if len(h.vnodes) == 1 {
		if v := h.vnodes[0]; v.rn.Workload() > 0 {
			done = v.rn.ConsumeNDeferred(budget)
		}
	} else {
		for budget > 0 {
			// Pick the host's most-loaded virtual node; a host drains
			// its heaviest identity first.
			var best *vnode
			for _, v := range h.vnodes {
				if v.rn.Workload() > 0 && (best == nil || v.rn.Workload() > best.rn.Workload()) {
					best = v
				}
			}
			if best == nil {
				break
			}
			n := best.rn.ConsumeNDeferred(budget)
			budget -= n
			done += n
		}
	}
	// Leave the cache warm either way: the vnode workloads were just
	// observed, so validating here is a handful of O(1) reads and
	// makes the idle skip effective from the next tick on — even
	// under strategies that never ask for host workloads.
	if h.wlEpoch == epoch {
		h.wl -= done
	} else {
		w := 0
		for _, v := range h.vnodes {
			w += v.rn.Workload()
		}
		h.wl = w
		h.wlEpoch = epoch
	}
	return done
}

// churn runs one tick of turnover: live hosts leave with probability
// ChurnRate, waiting hosts join with the same probability (§IV-A). Under
// ChurnBursty the turnover concentrates into periodic bursts with the
// same long-run average.
func (s *Simulation) churn() {
	rate := s.cfg.ChurnRate
	if s.cfg.ChurnModel == ChurnBursty {
		phase := (s.tick - 1) % s.cfg.BurstPeriod
		if float64(phase) >= s.cfg.BurstDuty*float64(s.cfg.BurstPeriod) {
			return // quiet part of the cycle
		}
		rate = rate / s.cfg.BurstDuty
		if rate > 1 {
			rate = 1
		}
	}
	s.leavers = s.leavers[:0]
	s.joiners = s.joiners[:0]
	if len(s.shards) == 0 || rate >= 1 {
		// Serial scan; also the rate >= 1 edge, where Bool consumes no
		// randomness at all and buffering would inject draws.
		for i, alive := range s.aliveBit {
			if alive {
				if s.rng.Bool(rate) {
					s.leavers = append(s.leavers, s.hosts[i])
				}
			} else if s.rng.Bool(rate) {
				s.joiners = append(s.joiners, s.hosts[i])
			}
		}
	} else {
		// The scan's randomness is position-independent — the serial loop
		// draws exactly one Uint64 per host in index order, alive and
		// waiting alike — so buffer that stream serially, then classify
		// in parallel and concatenate per-shard lists in shard order,
		// which (shards being contiguous index ranges) is index order.
		draws := s.churnDraws[:0]
		for range s.hosts {
			draws = append(draws, s.rng.Uint64())
		}
		s.churnDraws = draws
		ns := len(s.shards)
		parallel.ForEach(ns, s.shardWorkers, func(k int) {
			sh := &s.shards[k]
			sh.leavers = sh.leavers[:0]
			sh.joiners = sh.joiners[:0]
			for i := k * len(s.hosts) / ns; i < (k+1)*len(s.hosts)/ns; i++ {
				// Exactly Bool(rate)'s acceptance test over the buffered
				// draw (0 < rate < 1 here).
				hit := float64(draws[i]>>11)/(1<<53) < rate
				if s.aliveBit[i] {
					if hit {
						sh.leavers = append(sh.leavers, s.hosts[i])
					}
				} else if hit {
					sh.joiners = append(sh.joiners, s.hosts[i])
				}
			}
		})
		for k := range s.shards {
			s.leavers = append(s.leavers, s.shards[k].leavers...)
			s.joiners = append(s.joiners, s.shards[k].joiners...)
		}
	}
	for _, h := range s.leavers {
		// Never let the ring empty out: someone must hold the keys.
		if s.ring.Len() <= len(h.vnodes) {
			continue
		}
		// Guard the argument evaluation, not just the append: Workload()
		// is worth skipping when no one is listening.
		if s.cfg.RecordEvents {
			s.recordEvent(EventLeave, h.Index(), h.vnodes[0].ID(), h.Workload())
		}
		s.detachAll(h)
		h.acct.SetAlive(false)
		s.aliveBit[h.Index()] = false
		s.activeDirty = true
		s.msgs.Leaves++
	}
	for _, h := range s.joiners {
		id := s.RandomID()
		// During an active partition a joiner can only bootstrap into the
		// majority side; an ID that lands in the minority arc is a join the
		// overlay cannot complete, so the host stays in the waiting pool.
		if s.finj != nil && s.finj.PartitionActive() && s.finj.MinoritySide(id) {
			s.fstats.BlockedJoins++
			continue
		}
		h.acct.SetAlive(true)
		s.aliveBit[h.Index()] = true
		s.newlyAlive = append(s.newlyAlive, h) // joiners arrive in index order
		s.activeDirty = true
		v := s.attach(h, id, false)
		s.recordEvent(EventJoin, h.Index(), v.ID(), v.rn.Workload())
		s.msgs.Joins++
		s.chargeLookup()
		s.chargePuzzle(h)
	}
}

// detachAll removes every virtual node of h from the ring (Sybils first so
// the primary inherits any of their keys that fall back to it last). Each
// removal hands keys to the successor at removal time, so that node's
// host cache is invalidated alongside h's own.
func (s *Simulation) detachAll(h *hostState) {
	for i := len(h.vnodes) - 1; i >= 0; i-- {
		v := h.vnodes[i]
		if s.ring.Len() > 1 {
			s.ring.Succ(v.rn, 1).Data.host.wlEpoch = 0
		}
		if err := s.ring.Remove(v.rn); err != nil {
			panic(err)
		}
	}
	h.vnodes = h.vnodes[:0]
	h.wlEpoch = 0
}

// recordEvent appends to the topology log when RecordEvents is on.
func (s *Simulation) recordEvent(kind EventKind, host int, id ids.ID, moved int) {
	if !s.cfg.RecordEvents {
		return
	}
	s.events = append(s.events, Event{Tick: s.tick, Kind: kind, Host: host, ID: id, Moved: moved})
}

// chargeLookup accounts the O(log n) routing messages a join or Sybil
// placement costs in a real Chord overlay.
func (s *Simulation) chargeLookup() {
	n := s.ring.Len()
	if n < 2 {
		return
	}
	s.msgs.LookupMessages += int(math.Ceil(math.Log2(float64(n))))
}

func (s *Simulation) snapshot(tick int) Snapshot {
	alive := s.aliveHosts()
	// Snapshots escape into the Result, so the buffers are freshly
	// allocated — but exactly once, at their final size.
	snap := Snapshot{
		Tick:           tick,
		HostWorkloads:  make([]int, 0, len(alive)),
		VNodeWorkloads: make([]int, 0, s.ring.Len()),
	}
	if len(s.shards) == 0 {
		for _, h := range alive {
			snap.AliveHosts++
			snap.HostWorkloads = append(snap.HostWorkloads, h.Workload())
			for _, v := range h.vnodes {
				snap.VNodeWorkloads = append(snap.VNodeWorkloads, v.rn.Workload())
			}
		}
	} else {
		// Capture is read-only over the ring (cache warming writes only
		// shard-owned hosts); per-shard staging concatenated in shard
		// order reproduces the serial host-major vectors byte for byte.
		ns := len(s.shards)
		parallel.ForEach(ns, s.shardWorkers, func(k int) {
			sh := &s.shards[k]
			sh.hostWL = sh.hostWL[:0]
			sh.vnodeWL = sh.vnodeWL[:0]
			for _, h := range alive[k*len(alive)/ns : (k+1)*len(alive)/ns] {
				sh.hostWL = append(sh.hostWL, h.Workload())
				for _, v := range h.vnodes {
					sh.vnodeWL = append(sh.vnodeWL, v.rn.Workload())
				}
			}
		})
		for k := range s.shards {
			snap.HostWorkloads = append(snap.HostWorkloads, s.shards[k].hostWL...)
			snap.VNodeWorkloads = append(snap.VNodeWorkloads, s.shards[k].vnodeWL...)
		}
		snap.AliveHosts = len(alive)
	}
	snap.VNodes = s.ring.Len()
	snap.CrashedHosts = s.fstats.Crashes
	snap.PendingResubmit = s.pendingKeys()
	return snap
}

// Run is the one-call entry point: build and run a configuration.
func Run(cfg Config) (*Result, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run(), nil
}

// --- strategy.World implementation ---

// Params implements strategy.World.
func (s *Simulation) Params() strategy.Params { return s.params }

// RNG implements strategy.World.
func (s *Simulation) RNG() *xrand.Rand { return s.rng }

// EachHost implements strategy.World: live hosts in stable index order.
// The active list is maintained in exactly that order, so strategies'
// per-host RNG consumption sequence is unchanged.
func (s *Simulation) EachHost(fn func(h strategy.Host, primary strategy.VNode)) {
	for _, h := range s.aliveHosts() {
		if len(h.vnodes) > 0 {
			fn(h, h.vnodes[0])
		}
	}
}

// VNodesOf implements strategy.World.
func (s *Simulation) VNodesOf(h strategy.Host) []strategy.VNode {
	host := h.(*hostState)
	out := make([]strategy.VNode, len(host.vnodes))
	for i, v := range host.vnodes {
		out[i] = v
	}
	return out
}

// Successors implements strategy.World.
func (s *Simulation) Successors(v strategy.VNode, k int) []strategy.VNode {
	return s.walk(v, k, +1)
}

// Predecessors implements strategy.World.
func (s *Simulation) Predecessors(v strategy.VNode, k int) []strategy.VNode {
	return s.walk(v, k, -1)
}

func (s *Simulation) walk(v strategy.VNode, k, dir int) []strategy.VNode {
	vn := v.(*vnode)
	if k > s.ring.Len()-1 {
		k = s.ring.Len() - 1
	}
	out := make([]strategy.VNode, 0, k)
	for i := 1; i <= k; i++ {
		out = append(out, s.ring.Succ(vn.rn, dir*i).Data)
	}
	return out
}

// CreateSybil implements strategy.World.
func (s *Simulation) CreateSybil(h strategy.Host, id ids.ID) (int, bool) {
	host := h.(*hostState)
	if !host.acct.CanCreateSybil() {
		return 0, false
	}
	if _, occupied := s.ring.Get(id); occupied {
		return 0, false
	}
	// A host cannot place a Sybil across an active partition cut: the
	// join RPCs would never reach the far side's successors.
	if s.finj != nil && s.finj.PartitionActive() && len(host.vnodes) > 0 &&
		!s.finj.SameSide(host.vnodes[0].ID(), id) {
		s.fstats.BlockedSybils++
		return 0, false
	}
	v := s.attach(host, id, true)
	host.acct.CreatedSybil()
	s.msgs.SybilsCreated++
	s.chargeLookup()
	s.chargePuzzle(host)
	s.recordEvent(EventSybilCreate, host.Index(), v.ID(), v.rn.Workload())
	return v.rn.Workload(), true
}

// DropSybils implements strategy.World.
func (s *Simulation) DropSybils(h strategy.Host) {
	host := h.(*hostState)
	kept := host.vnodes[:0]
	dropped := false
	for _, v := range host.vnodes {
		if !v.isSybil {
			kept = append(kept, v)
			continue
		}
		s.recordEvent(EventSybilDrop, host.Index(), v.ID(), v.rn.Workload())
		if s.ring.Len() > 1 {
			s.ring.Succ(v.rn, 1).Data.host.wlEpoch = 0
		}
		if err := s.ring.Remove(v.rn); err != nil {
			panic(err)
		}
		host.acct.DroppedSybil()
		s.msgs.SybilsDropped++
		dropped = true
	}
	host.vnodes = kept
	if dropped {
		host.wlEpoch = 0 // keys were handed off this host
	}
}

// RandomID implements strategy.World.
func (s *Simulation) RandomID() ids.ID {
	for {
		id := ids.Random(s.rng)
		if _, occupied := s.ring.Get(id); !occupied {
			return id
		}
	}
}

// SplitPoint implements strategy.World: the ID that halves v's remaining
// keys (used only by the §VII chosen-ID extension strategies).
func (s *Simulation) SplitPoint(v strategy.VNode) (ids.ID, bool) {
	return v.(*vnode).rn.SplitKey()
}

// ChargeMessages implements strategy.World.
func (s *Simulation) ChargeMessages(kind string, n int) {
	s.msgs.Strategy[kind] += n
}
