package sim

// Per-tick observability for the engine (docs/OBSERVABILITY.md). When a
// tracer is attached, every tick emits one JSONL record carrying the
// workload-imbalance view the paper's figures are built from — max/mean,
// Gini, idle hosts, a log-binned host-workload histogram matching
// dhtsim's snapshot binning — plus topology, message, strategy-action,
// and fault counters. Everything here is read-only over engine state
// and consumes no randomness, so a traced run's Result is byte-identical
// to the same seed untraced (TestTracedRunMatchesUntraced); with no
// tracer attached (the nil fast path), none of this code runs at all and
// the hot loop allocates nothing extra (TestRunNilTracerZeroAlloc).

import (
	"sort"

	"chordbalance/internal/obs"
)

// workloadHistMax and workloadHistBinsPerDecade define the trace
// histogram's log binning; they match the stats.NewLogHistogram(100000, 3)
// call dhtsim uses for -snapshots, so `dhttrace hist` reproduces the same
// figure shape.
const (
	workloadHistMax           = 100000
	workloadHistBinsPerDecade = 3
)

// simMetrics holds the engine's registered metric handles; nil when
// tracing is disabled.
type simMetrics struct {
	t *obs.Tracer

	// Per-tick network shape.
	aliveHosts *obs.Gauge
	idleHosts  *obs.Gauge
	vnodes     *obs.Gauge

	// Per-tick job progress.
	residual     *obs.Gauge
	pendingResub *obs.Gauge
	doneTick     *obs.Gauge
	doneTotal    *obs.Counter

	// Per-tick workload-imbalance view (the paper's core signal).
	wlMax       *obs.Gauge
	wlMean      *obs.Gauge
	wlGini      *obs.Gauge
	wlImbalance *obs.Gauge
	wlHist      *obs.Histogram

	// Cumulative topology / message accounting (mirrors MessageStats).
	joins      *obs.Counter
	leaves     *obs.Counter
	sybCreated *obs.Counter
	sybDropped *obs.Counter
	lookupMsgs *obs.Counter
	maintMsgs  *obs.Counter

	// Cumulative fault accounting (mirrors FaultStats) plus per-tick
	// fault tags.
	crashes         *obs.Counter
	crashedVNodes   *obs.Counter
	keysLost        *obs.Counter
	keysRecovered   *obs.Counter
	resubmitted     *obs.Counter
	repairMsgs      *obs.Counter
	blockedJoins    *obs.Counter
	blockedSybils   *obs.Counter
	partitionActive *obs.Gauge
	burstTick       *obs.Gauge
	crashedTick     *obs.Gauge

	// Per-strategy action counters, created on demand at the first
	// decision pass that charges the kind.
	stratMsgs map[string]*obs.Counter
	// stratKinds caches the sorted kind list; rebuilt only when the
	// strategy map grows.
	stratKinds []string

	// scratch is the per-tick workload vector reused for the Gini sort.
	scratch []float64
}

// newSimMetrics registers the engine's metric catalog on the tracer.
func newSimMetrics(t *obs.Tracer) *simMetrics {
	reg := t.Registry()
	return &simMetrics{
		t: t,

		aliveHosts: reg.Gauge("sim.hosts.alive", "hosts", "live physical hosts"),
		idleHosts:  reg.Gauge("sim.hosts.idle", "hosts", "live hosts with zero residual work"),
		vnodes:     reg.Gauge("sim.vnodes", "vnodes", "virtual nodes on the ring (primaries + Sybils + static copies)"),

		residual:     reg.Gauge("sim.tasks.residual", "tasks", "tasks still on the ring"),
		pendingResub: reg.Gauge("sim.tasks.pending_resubmit", "tasks", "crash-lost tasks awaiting re-submission"),
		doneTick:     reg.Gauge("sim.tasks.done_tick", "tasks", "tasks completed this tick"),
		doneTotal:    reg.Counter("sim.tasks.done_total", "tasks", "cumulative tasks completed"),

		wlMax:       reg.Gauge("sim.workload.max", "tasks", "largest per-host residual workload"),
		wlMean:      reg.Gauge("sim.workload.mean", "tasks", "mean per-host residual workload"),
		wlGini:      reg.Gauge("sim.workload.gini", "", "Gini coefficient of per-host residual workloads"),
		wlImbalance: reg.Gauge("sim.workload.imbalance", "", "max/mean per-host workload ratio (1 = perfectly even)"),
		wlHist: reg.Histogram("sim.workload.hosts", "tasks",
			"per-host residual workload distribution (log bins; bucket 0 = idle hosts)",
			obs.LogEdges(workloadHistMax, workloadHistBinsPerDecade)),

		joins:      reg.Counter("sim.msgs.joins", "joins", "hosts that joined via churn"),
		leaves:     reg.Counter("sim.msgs.leaves", "leaves", "hosts that left gracefully via churn"),
		sybCreated: reg.Counter("sim.msgs.sybils_created", "sybils", "Sybil identities created by strategies"),
		sybDropped: reg.Counter("sim.msgs.sybils_dropped", "sybils", "Sybil identities withdrawn by strategies"),
		lookupMsgs: reg.Counter("sim.msgs.lookup", "msgs", "O(log n) lookup messages charged for joins/Sybils/resubmits"),
		maintMsgs:  reg.Counter("sim.msgs.maintenance", "msgs", "successor-list maintenance messages"),

		crashes:         reg.Counter("sim.faults.crashes", "hosts", "crash-stop host departures"),
		crashedVNodes:   reg.Counter("sim.faults.crashed_vnodes", "vnodes", "virtual nodes taken down by crashes"),
		keysLost:        reg.Counter("sim.faults.keys_lost", "tasks", "tasks lost to unreplicated crashes"),
		keysRecovered:   reg.Counter("sim.faults.keys_recovered", "tasks", "tasks replication saved from crashes"),
		resubmitted:     reg.Counter("sim.faults.resubmitted", "tasks", "crash-lost tasks re-entered into the ring"),
		repairMsgs:      reg.Counter("sim.faults.repair_msgs", "msgs", "replica-fetch and failure-detection traffic"),
		blockedJoins:    reg.Counter("sim.faults.blocked_joins", "joins", "joins refused by an active partition"),
		blockedSybils:   reg.Counter("sim.faults.blocked_sybils", "sybils", "Sybil placements refused by an active partition"),
		partitionActive: reg.Gauge("sim.faults.partition_active", "", "1 while a partition divides the ring"),
		burstTick:       reg.Gauge("sim.faults.burst_tick", "", "1 on scheduled correlated-crash burst ticks"),
		crashedTick:     reg.Gauge("sim.faults.crashed_tick", "hosts", "hosts crashed this tick"),

		stratMsgs: make(map[string]*obs.Counter),
	}
}

// emitStart writes the trace header: the meta record describing the
// run's configuration, the metric catalog, and the tick-0 record (the
// initial workload distribution, the left panel of the paper's figures).
func (m *simMetrics) emitStart(s *Simulation) {
	cfg := s.cfg
	m.t.EmitMeta(
		obs.F{K: "source", V: "sim"},
		obs.F{K: "seed", V: cfg.Seed},
		obs.F{K: "nodes", V: cfg.Nodes},
		obs.F{K: "tasks", V: cfg.Tasks},
		obs.F{K: "strategy", V: cfg.Strategy.Name()},
		obs.F{K: "churn", V: cfg.ChurnRate},
		obs.F{K: "hetero", V: cfg.Heterogeneous},
		obs.F{K: "ideal_ticks", V: s.ideal},
		obs.F{K: "faults", V: !cfg.Faults.Zero()},
	)
	m.t.EmitSchema()
	m.observe(s, 0)
}

// emitDone writes the end-of-run summary record.
func (m *simMetrics) emitDone(res *Result) {
	m.t.Emit("done",
		obs.F{K: "ticks", V: res.Ticks},
		obs.F{K: "ideal_ticks", V: res.IdealTicks},
		obs.F{K: "runtime_factor", V: res.RuntimeFactor},
		obs.F{K: "completed", V: res.Completed},
	)
}

// observe gathers the per-tick view and emits one tick record. It runs
// after the tick's work (consume/churn/faults/strategy/maintenance), so
// the record describes the same end-of-tick state snapshot() captures.
// Only reads: no RNG draws, no key movement, no cache invalidation
// beyond warming (Workload() validates caches with the same values the
// engine would compute anyway).
func (m *simMetrics) observe(s *Simulation, done int) {
	alive := s.aliveHosts()
	m.wlHist.Reset()
	vals := m.scratch[:0]
	sum, maxW, idle := 0, 0, 0
	for _, h := range alive {
		w := h.Workload()
		sum += w
		if w > maxW {
			maxW = w
		}
		if w == 0 {
			idle++
		}
		m.wlHist.ObserveInt(w)
		vals = append(vals, float64(w))
	}
	m.scratch = vals

	m.aliveHosts.SetInt(int64(len(alive)))
	m.idleHosts.SetInt(int64(idle))
	m.vnodes.SetInt(int64(s.ring.Len()))
	m.residual.SetInt(int64(s.ring.TotalKeys()))
	m.pendingResub.SetInt(int64(s.pendingKeys()))
	m.doneTick.SetInt(int64(done))
	m.doneTotal.Add(int64(done))

	m.wlMax.SetInt(int64(maxW))
	mean := 0.0
	if len(alive) > 0 {
		mean = float64(sum) / float64(len(alive))
	}
	m.wlMean.Set(mean)
	m.wlGini.Set(gini(vals))
	if mean > 0 {
		m.wlImbalance.Set(float64(maxW) / mean)
	} else {
		m.wlImbalance.Set(0)
	}

	m.joins.Set(int64(s.msgs.Joins))
	m.leaves.Set(int64(s.msgs.Leaves))
	m.sybCreated.Set(int64(s.msgs.SybilsCreated))
	m.sybDropped.Set(int64(s.msgs.SybilsDropped))
	m.lookupMsgs.Set(int64(s.msgs.LookupMessages))
	m.maintMsgs.Set(int64(s.msgs.Maintenance))

	f := s.fstats
	m.crashes.Set(int64(f.Crashes))
	m.crashedVNodes.Set(int64(f.CrashedVNodes))
	m.keysLost.Set(int64(f.KeysLost))
	m.keysRecovered.Set(int64(f.KeysRecovered))
	m.resubmitted.Set(int64(f.Resubmitted))
	m.repairMsgs.Set(int64(f.RepairMessages))
	m.blockedJoins.Set(int64(f.BlockedJoins))
	m.blockedSybils.Set(int64(f.BlockedSybils))
	if s.finj != nil {
		m.partitionActive.SetBool(s.finj.PartitionActive())
		m.burstTick.SetBool(s.finj.BurstTick())
		m.crashedTick.SetInt(int64(len(s.victims)))
	} else {
		m.partitionActive.Set(0)
		m.burstTick.Set(0)
		m.crashedTick.Set(0)
	}

	// Per-strategy action counters. The engine's map only grows, so the
	// cached sorted kind list is rebuilt only when a new kind appears;
	// iteration then follows the sorted cache, never map order.
	if len(s.msgs.Strategy) != len(m.stratKinds) {
		kinds := m.stratKinds[:0]
		for kind := range s.msgs.Strategy {
			kinds = append(kinds, kind)
		}
		sort.Strings(kinds)
		m.stratKinds = kinds
	}
	for _, kind := range m.stratKinds {
		c, ok := m.stratMsgs[kind]
		if !ok {
			c = m.t.Registry().Counter("sim.msgs.strategy."+kind, "msgs",
				"strategy messages charged under kind "+kind)
			m.stratMsgs[kind] = c
		}
		c.Set(int64(s.msgs.Strategy[kind]))
	}

	m.t.EmitTick(s.tick)
}

// gini computes the Gini coefficient of the values in place: vals is
// sorted ascending as a side effect (it is the caller's scratch buffer).
// 0 means perfectly even, values near 1 mean one host holds everything.
// Returns 0 for empty input or an all-zero workload.
func gini(vals []float64) float64 {
	n := len(vals)
	if n == 0 {
		return 0
	}
	sort.Float64s(vals)
	var sum, weighted float64
	for i, v := range vals {
		sum += v
		weighted += float64(2*i-n+1) * v
	}
	if sum == 0 {
		return 0
	}
	return weighted / (float64(n) * sum)
}
