package sim

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"chordbalance/internal/faults"
	"chordbalance/internal/strategy"
)

// TestValidateFaultConfig pins the fault-related configuration checks:
// negative probabilities, impossible replication degrees, and malformed
// fault plans must all be rejected before a run starts.
func TestValidateFaultConfig(t *testing.T) {
	base := Config{Nodes: 4, Tasks: 100}
	bad := []func(*Config){
		func(c *Config) { c.ChurnRate = -0.1 },
		func(c *Config) { c.Replicas = -2 },
		func(c *Config) { c.Replicas = 6 }, // default successor list is 5
		func(c *Config) { c.Replicas = 4; c.NumSuccessors = 3 },
		func(c *Config) { c.NumSuccessors = -1 },
		func(c *Config) { c.Faults = faults.Plan{CrashRate: -0.01} },
		func(c *Config) { c.Faults = faults.Plan{DropRate: 1.5} },
		func(c *Config) { c.Faults = faults.Plan{PartitionFrac: 2} },
		func(c *Config) { c.Faults = faults.Plan{BurstEvery: -1} },
	}
	for i, mut := range bad {
		c := base
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d (%+v) passed Validate", i, c)
		}
	}
	good := []func(*Config){
		func(c *Config) {},
		func(c *Config) { c.Replicas = -1 }, // replication disabled
		func(c *Config) { c.Replicas = 5 },  // exactly the successor list
		func(c *Config) { c.Replicas = 7; c.NumSuccessors = 9 },
		func(c *Config) { c.Faults = faults.Plan{CrashRate: 0.02, BurstEvery: 10, BurstSize: 2} },
	}
	for i, mut := range good {
		c := base
		mut(&c)
		if err := c.Validate(); err != nil {
			t.Errorf("good config %d wrongly rejected: %v", i, err)
		}
	}
}

// TestZeroPlanIsInert is the engine-level inertness guarantee: a config
// whose fault plan is Zero (even with a seed and retry policy set) must
// produce a Result deeply equal to the same config with no plan at all.
func TestZeroPlanIsInert(t *testing.T) {
	base := Config{
		Nodes: 16, Tasks: 600, ChurnRate: 0.05, Seed: 42,
		Strategy:      strategy.NewRandomInjection(),
		SnapshotTicks: []int{0, 10},
		RecordEvents:  true,
	}
	withZero := base
	withZero.Faults = faults.Plan{Seed: 99, MaxRetries: 7, BurstEvery: 10}
	if !withZero.Faults.Zero() {
		t.Fatal("test plan is not Zero")
	}
	a, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(withZero)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("zero fault plan changed the run:\n bare: %+v\n zero: %+v", a, b)
	}
	if a.Faults != (FaultStats{}) {
		t.Errorf("fault-free run has nonzero fault stats: %+v", a.Faults)
	}
}

// crashConfig is the shared scenario for the replication assertions: a
// modest network under steady crash-stop churn with periodic bursts.
func crashConfig(replicas int) Config {
	return Config{
		Nodes: 24, Tasks: 2000, Seed: 7,
		Strategy: strategy.NewRandomInjection(),
		Replicas: replicas,
		Faults:   faults.Plan{Seed: 11, CrashRate: 0.005, BurstEvery: 25, BurstSize: 2},
	}
}

// TestCrashReplicationSavesKeys is the sim-level acceptance check: with
// default replication a crash wave loses nothing; with replication
// disabled the same waves lose keys, every lost key is eventually
// re-submitted, and the recovery delay is charged against the runtime.
func TestCrashReplicationSavesKeys(t *testing.T) {
	rep, err := Run(crashConfig(0)) // default: min(3, successor list)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatalf("replicated run did not complete: %+v", rep.Faults)
	}
	if rep.Faults.Crashes == 0 {
		t.Fatalf("crash plan crashed nobody: %+v", rep.Faults)
	}
	if rep.Faults.KeysLost != 0 {
		t.Errorf("replication lost %d keys", rep.Faults.KeysLost)
	}
	if rep.Faults.KeysRecovered == 0 {
		t.Error("crashes displaced no keys at all; scenario too gentle to test replication")
	}
	if rep.Faults.RepairMessages == 0 {
		t.Error("replica repair charged no messages")
	}
	if rep.Faults.RepairWaves == 0 || rep.Faults.MeanTimeToRepair() <= 0 {
		t.Errorf("no finite time-to-repair recorded: %+v", rep.Faults)
	}

	unrep, err := Run(crashConfig(-1))
	if err != nil {
		t.Fatal(err)
	}
	if !unrep.Completed {
		t.Fatalf("unreplicated run did not complete: %+v", unrep.Faults)
	}
	if unrep.Faults.KeysLost == 0 {
		t.Fatalf("no replication but zero keys lost: %+v", unrep.Faults)
	}
	if unrep.Faults.Resubmitted != unrep.Faults.KeysLost {
		t.Errorf("resubmitted %d of %d lost keys", unrep.Faults.Resubmitted, unrep.Faults.KeysLost)
	}
	if unrep.Faults.KeysRecovered != 0 {
		t.Errorf("unreplicated run recovered %d keys", unrep.Faults.KeysRecovered)
	}
}

// faultSummary flattens a Result (fault stats included) into one string,
// mirroring determinism_test's summarize for the fault-plan regression.
func faultSummary(res *Result) string {
	s := fmt.Sprintf("ticks=%d factor=%.9f completed=%v hosts=%d vnodes=%d faults=%+v",
		res.Ticks, res.RuntimeFactor, res.Completed,
		res.FinalAliveHosts, res.FinalVNodes, res.Faults)
	keys := make([]string, 0, len(res.Messages.Strategy))
	for k := range res.Messages.Strategy {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s += fmt.Sprintf(" strat[%s]=%d", k, res.Messages.Strategy[k])
	}
	for _, snap := range res.Snapshots {
		s += fmt.Sprintf(" snap%d=%v crashed=%d pending=%d",
			snap.Tick, snap.HostWorkloads, snap.CrashedHosts, snap.PendingResubmit)
	}
	s += fmt.Sprintf(" events=%d", len(res.Events))
	for _, e := range res.Events {
		s += fmt.Sprintf("|%d,%s,%d,%s,%d", e.Tick, e.Kind, e.Host, e.ID.Short(), e.Moved)
	}
	return s
}

// TestFaultPlanDeterminism mirrors internal/sim's determinism regression
// for faulted runs: the same seed and the same faults.Plan must produce
// byte-identical Results, event logs and fault stats included.
func TestFaultPlanDeterminism(t *testing.T) {
	plans := []faults.Plan{
		{Seed: 3, CrashRate: 0.01},
		{Seed: 4, CrashRate: 0.004, BurstEvery: 20, BurstSize: 3},
		{Seed: 5, PartitionFrac: 0.4, PartitionStart: 10, PartitionHeal: 60},
		{Seed: 6, CrashRate: 0.006, PartitionFrac: 0.3, PartitionStart: 5, PartitionHeal: 40},
	}
	for pi, plan := range plans {
		for _, replicas := range []int{0, -1} {
			cfg := Config{
				Nodes: 20, Tasks: 1200, ChurnRate: 0.03, Seed: 1000 + uint64(pi),
				Strategy:      strategy.NewRandomInjection(),
				Replicas:      replicas,
				Faults:        plan,
				SnapshotTicks: []int{0, 20},
				RecordEvents:  true,
			}
			var got [2]string
			for i := range got {
				res, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				got[i] = faultSummary(res)
			}
			if got[0] != got[1] {
				t.Errorf("plan %d replicas %d: same seed+plan, different results:\n%s\n%s",
					pi, replicas, got[0], got[1])
			}
		}
	}
}

// FuzzFaultPlan is the smoke fuzzer over plan parameters: any plan that
// Validate accepts must produce a run that terminates, keeps the key
// audit consistent, and is deterministic under a re-run.
func FuzzFaultPlan(f *testing.F) {
	f.Add(uint64(1), 0.01, 10, 2, 0.0, 0, 0, 0)
	f.Add(uint64(2), 0.0, 0, 0, 0.5, 5, 30, -1)
	f.Add(uint64(3), 0.02, 7, 3, 0.25, 0, 0, 1)
	f.Fuzz(func(t *testing.T, seed uint64, crash float64, burstEvery, burstSize int,
		frac float64, pStart, pHeal, replicas int) {
		plan := faults.Plan{
			Seed: seed, CrashRate: crash, BurstEvery: burstEvery, BurstSize: burstSize,
			PartitionFrac: frac, PartitionStart: pStart, PartitionHeal: pHeal,
		}
		cfg := Config{
			Nodes: 8, Tasks: 200, Seed: seed,
			Replicas: replicas,
			Faults:   plan,
			MaxTicks: 5000,
		}
		if err := cfg.Validate(); err != nil {
			t.Skip()
		}
		a, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.Faults.KeysLost != a.Faults.Resubmitted && a.Ticks < 5000 {
			// Any run that ended before the tick cap must have drained its
			// resubmission queue.
			t.Errorf("run ended with %d lost keys but %d resubmitted",
				a.Faults.KeysLost, a.Faults.Resubmitted)
		}
		if replicas >= 0 && a.Faults.KeysLost > 0 {
			t.Errorf("replication enabled but %d keys lost", a.Faults.KeysLost)
		}
		b, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if faultSummary(a) != faultSummary(b) {
			t.Error("same fuzzed plan, different results")
		}
	})
}
