package sim

import (
	"bytes"
	"reflect"
	"sort"
	"testing"

	"chordbalance/internal/obs"
	"chordbalance/internal/strategy"
)

// tracedConfig is a small but busy run: churn, Sybil strategy, crashes,
// and snapshots, so every metric family in the catalog gets exercised.
func tracedConfig(seed uint64) Config {
	return Config{
		Nodes:         60,
		Tasks:         3000,
		Strategy:      strategy.NewRandomInjection(),
		ChurnRate:     0.05,
		Seed:          seed,
		SnapshotTicks: []int{0, 5, 35},
	}
}

// TestTracedRunMatchesUntraced is the no-perturbation guarantee: tracing
// only reads engine state, so attaching a tracer must not change the
// Result in any field.
func TestTracedRunMatchesUntraced(t *testing.T) {
	plain, err := Run(tracedConfig(42))
	if err != nil {
		t.Fatal(err)
	}

	var sink obs.MemSink
	cfg := tracedConfig(42)
	cfg.Trace = obs.New(&sink)
	traced, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Trace.Close(); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(plain, traced) {
		t.Fatalf("tracing perturbed the run:\nuntraced: %+v\ntraced:   %+v", plain, traced)
	}
	if len(sink.Bytes()) == 0 {
		t.Fatal("traced run emitted nothing")
	}
}

// TestTraceByteDeterminism asserts the CI-level guarantee: same seed,
// same trace bytes.
func TestTraceByteDeterminism(t *testing.T) {
	emit := func() string {
		var sink obs.MemSink
		cfg := tracedConfig(7)
		cfg.Trace = obs.New(&sink)
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		if err := cfg.Trace.Close(); err != nil {
			t.Fatal(err)
		}
		return sink.String()
	}
	a, b := emit(), emit()
	if a != b {
		t.Fatal("same seed produced different trace bytes")
	}
}

// TestTraceAgreesWithSnapshots cross-checks the per-tick trace gauges
// against the engine's own Snapshot mechanism at the snapshot ticks:
// max, mean, idle count, Gini, and the log-binned histogram must all be
// derivable from Snapshot.HostWorkloads.
func TestTraceAgreesWithSnapshots(t *testing.T) {
	var sink obs.MemSink
	cfg := tracedConfig(99)
	cfg.Trace = obs.New(&sink)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Trace.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := obs.ReadTrace(bytes.NewReader(sink.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	byTick := make(map[int]obs.Tick, len(tr.Ticks))
	for _, rec := range tr.Ticks {
		byTick[rec.Tick] = rec
	}
	edges := obs.LogEdges(workloadHistMax, workloadHistBinsPerDecade)

	checked := 0
	for _, snap := range res.Snapshots {
		rec, ok := byTick[snap.Tick]
		if !ok {
			t.Fatalf("no trace record for snapshot tick %d", snap.Tick)
		}
		maxW, sum, idle := 0, 0, 0
		wantHist := make([]int64, len(edges)+1)
		vals := make([]float64, 0, len(snap.HostWorkloads))
		for _, w := range snap.HostWorkloads {
			sum += w
			if w > maxW {
				maxW = w
			}
			if w == 0 {
				idle++
			}
			b := sort.SearchFloat64s(edges, float64(w))
			if b < len(edges) && edges[b] == float64(w) {
				b++ // buckets are [edge, nextEdge)
			}
			wantHist[b]++
			vals = append(vals, float64(w))
		}
		if got := rec.Gauges["sim.workload.max"]; got != float64(maxW) {
			t.Errorf("tick %d: workload.max = %v, snapshot says %d", snap.Tick, got, maxW)
		}
		wantMean := 0.0
		if len(vals) > 0 {
			wantMean = float64(sum) / float64(len(vals))
		}
		if got := rec.Gauges["sim.workload.mean"]; got != wantMean {
			t.Errorf("tick %d: workload.mean = %v, snapshot says %v", snap.Tick, got, wantMean)
		}
		if got := rec.Gauges["sim.hosts.idle"]; got != float64(idle) {
			t.Errorf("tick %d: hosts.idle = %v, snapshot says %d", snap.Tick, got, idle)
		}
		if got := rec.Gauges["sim.hosts.alive"]; got != float64(snap.AliveHosts) {
			t.Errorf("tick %d: hosts.alive = %v, snapshot says %d", snap.Tick, got, snap.AliveHosts)
		}
		if got := rec.Gauges["sim.vnodes"]; got != float64(snap.VNodes) {
			t.Errorf("tick %d: vnodes = %v, snapshot says %d", snap.Tick, got, snap.VNodes)
		}
		if got := rec.Gauges["sim.workload.gini"]; got != gini(vals) {
			t.Errorf("tick %d: workload.gini = %v, snapshot says %v", snap.Tick, got, gini(vals))
		}
		gotHist := rec.Hists["sim.workload.hosts"]
		if !reflect.DeepEqual(gotHist, wantHist) {
			t.Errorf("tick %d: workload hist = %v, snapshot says %v", snap.Tick, gotHist, wantHist)
		}
		checked++
	}
	if checked < 2 {
		t.Fatalf("only %d snapshot ticks checked; run too short to be meaningful", checked)
	}
}

// TestRunNilTracerZeroAlloc guards the disabled fast path: with no
// tracer configured the engine holds no metric state and the per-tick
// hook is a single nil check that allocates nothing.
func TestRunNilTracerZeroAlloc(t *testing.T) {
	s, err := New(tracedConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if s.obsm != nil {
		t.Fatal("nil Config.Trace still built metric state")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if s.obsm != nil {
			s.obsm.observe(s, 0)
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled per-tick hook allocated %v, want 0", allocs)
	}
}
