package sim_test

// BenchmarkSimTick measures whole-engine per-tick cost on a mid-size
// churn workload — the same shape cmd/dhtbench's table2-churn workloads
// use, scaled down so `go test -bench` stays quick. Each iteration is a
// complete run (construction included, amortized over its ticks), so the
// reported ns/tick is directly comparable to dhtbench output.

import (
	"testing"

	"chordbalance/internal/sim"
	"chordbalance/internal/strategy"
)

func benchConfig(tb testing.TB, name string, seed uint64) sim.Config {
	tb.Helper()
	st, ok := strategy.ByName(name)
	if !ok {
		tb.Fatalf("unknown strategy %q", name)
	}
	return sim.Config{
		Nodes:     1000,
		Tasks:     10_000,
		Strategy:  st,
		ChurnRate: 0.01,
		Seed:      seed,
	}
}

func BenchmarkSimTick(b *testing.B) {
	for _, name := range []string{"none", "random", "neighbor"} {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			totalTicks := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Vary the seed so the benchmark averages over runs
				// instead of re-measuring one trajectory.
				res, err := sim.Run(benchConfig(b, name, uint64(i)+1))
				if err != nil {
					b.Fatal(err)
				}
				totalTicks += res.Ticks
			}
			b.StopTimer()
			if totalTicks > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(totalTicks), "ns/tick")
			}
		})
	}
}
