package sim

import (
	"testing"

	"chordbalance/internal/strategy"
)

func TestValidateWorkloadOptions(t *testing.T) {
	bad := []Config{
		{Nodes: 10, Tasks: 10, ZipfObjects: -1},
		{Nodes: 10, Tasks: 10, ZipfObjects: 5, ZipfExponent: -1},
		{Nodes: 10, Tasks: 10, StreamTasks: -1},
		{Nodes: 10, Tasks: 10, StreamTasks: 5}, // missing StreamRate
		{Nodes: 10, Tasks: 10, BurstPeriod: -1},
		{Nodes: 10, Tasks: 10, BurstDuty: 2},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d must be rejected", i)
		}
	}
}

func TestZipfWorkloadIsHarder(t *testing.T) {
	uniform := run(t, Config{Nodes: 100, Tasks: 20000, Seed: 3})
	skewed := run(t, Config{Nodes: 100, Tasks: 20000, Seed: 3,
		ZipfObjects: 200, ZipfExponent: 1.1})
	if skewed.RuntimeFactor <= uniform.RuntimeFactor {
		t.Errorf("zipf workload (%.2f) should be more imbalanced than uniform (%.2f)",
			skewed.RuntimeFactor, uniform.RuntimeFactor)
	}
	if !skewed.Completed {
		t.Error("skewed run did not complete")
	}
}

func TestZipfWorkloadStillBalanceable(t *testing.T) {
	// Random injection also helps under skew, even though it cannot split
	// a single hot key across nodes (tasks for one object share one ID).
	none := run(t, Config{Nodes: 100, Tasks: 20000, Seed: 4,
		ZipfObjects: 2000, ZipfExponent: 0.9})
	rnd := run(t, Config{Nodes: 100, Tasks: 20000, Seed: 4,
		ZipfObjects: 2000, ZipfExponent: 0.9,
		Strategy: strategy.NewRandomInjection()})
	if rnd.RuntimeFactor >= none.RuntimeFactor {
		t.Errorf("random injection (%.2f) should beat none (%.2f) under zipf",
			rnd.RuntimeFactor, none.RuntimeFactor)
	}
}

func TestStreamingConservation(t *testing.T) {
	cfg := Config{Nodes: 50, Tasks: 1000, StreamTasks: 4000, StreamRate: 100,
		Seed: 5, RecordWorkPerTick: true, CheckInvariants: true,
		Strategy: strategy.NewRandomInjection()}
	res := run(t, cfg)
	if !res.Completed {
		t.Fatal("streaming run did not complete")
	}
	total := 0
	for _, w := range res.WorkPerTick {
		total += w
	}
	if total != cfg.Tasks+cfg.StreamTasks {
		t.Errorf("work done = %d, want %d", total, cfg.Tasks+cfg.StreamTasks)
	}
	// Arrivals take 40 ticks; the run cannot end before that.
	if res.Ticks < 40 {
		t.Errorf("ticks = %d, impossible before the last arrival", res.Ticks)
	}
}

func TestStreamingIdealAccountsForHorizon(t *testing.T) {
	// 50 hosts consume 50/tick; 1000+1000 tasks need 40 ideal ticks of
	// work, but arrivals at 10/tick take 100 ticks: ideal must be 100.
	s, err := New(Config{Nodes: 50, Tasks: 1000, StreamTasks: 1000,
		StreamRate: 10, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if s.IdealTicks() != 100 {
		t.Errorf("ideal = %d, want 100 (arrival horizon)", s.IdealTicks())
	}
}

func TestStreamingOnlyJob(t *testing.T) {
	// No initial tasks at all: everything arrives over time.
	res := run(t, Config{Nodes: 20, Tasks: 0, StreamTasks: 500, StreamRate: 50, Seed: 7})
	if !res.Completed || res.Ticks < 10 {
		t.Errorf("streaming-only: %+v", res)
	}
}

func TestBurstyChurnStillConserves(t *testing.T) {
	cfg := Config{Nodes: 60, Tasks: 6000, ChurnRate: 0.02,
		ChurnModel: ChurnBursty, BurstPeriod: 20, BurstDuty: 0.25,
		Seed: 8, RecordWorkPerTick: true, CheckInvariants: true}
	res := run(t, cfg)
	if !res.Completed {
		t.Fatal("bursty run did not complete")
	}
	total := 0
	for _, w := range res.WorkPerTick {
		total += w
	}
	if total != cfg.Tasks {
		t.Errorf("work done = %d, want %d", total, cfg.Tasks)
	}
	if res.Messages.Joins == 0 || res.Messages.Leaves == 0 {
		t.Error("bursty churn produced no turnover")
	}
}

func TestStaticVNodesSmoothTheLoad(t *testing.T) {
	base := run(t, Config{Nodes: 100, Tasks: 20000, Seed: 11})
	static := run(t, Config{Nodes: 100, Tasks: 20000, Seed: 11, StaticVNodes: 5})
	if static.RuntimeFactor >= base.RuntimeFactor {
		t.Errorf("5 virtual servers (%.2f) must beat single vnodes (%.2f)",
			static.RuntimeFactor, base.RuntimeFactor)
	}
	if static.FinalVNodes != 600 {
		t.Errorf("final vnodes = %d, want 100*(1+5)", static.FinalVNodes)
	}
}

func TestStaticVNodesValidate(t *testing.T) {
	if _, err := Run(Config{Nodes: 10, Tasks: 10, StaticVNodes: -1}); err == nil {
		t.Error("negative StaticVNodes must be rejected")
	}
}

func TestStaticVNodesWithChurnConserve(t *testing.T) {
	cfg := Config{Nodes: 40, Tasks: 4000, StaticVNodes: 3, ChurnRate: 0.02,
		Seed: 12, RecordWorkPerTick: true, CheckInvariants: true}
	res := run(t, cfg)
	if !res.Completed {
		t.Fatal("did not complete")
	}
	total := 0
	for _, w := range res.WorkPerTick {
		total += w
	}
	if total != cfg.Tasks {
		t.Errorf("work done = %d, want %d", total, cfg.Tasks)
	}
}

func TestBurstyChurnQuietPhase(t *testing.T) {
	// duty 0.1, period 10: churn only on the first tick of each cycle.
	// With rate 0.05 scaled by 1/duty the in-burst rate caps at 0.5.
	res := run(t, Config{Nodes: 40, Tasks: 2000, ChurnRate: 0.05,
		ChurnModel: ChurnBursty, BurstPeriod: 10, BurstDuty: 0.1, Seed: 9})
	if !res.Completed {
		t.Fatal("did not complete")
	}
}
