package sim

import (
	"testing"

	"chordbalance/internal/ids"
	"chordbalance/internal/strategy"
)

// newWorld builds a small simulation for exercising the strategy.World
// surface directly.
func newWorld(t *testing.T, cfg Config) *Simulation {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestWorldEachHostOrderAndCount(t *testing.T) {
	s := newWorld(t, Config{Nodes: 20, Tasks: 400, Seed: 1})
	var indices []int
	s.EachHost(func(h strategy.Host, primary strategy.VNode) {
		indices = append(indices, h.Index())
		if primary.Host().Index() != h.Index() {
			t.Fatal("primary vnode host mismatch")
		}
	})
	if len(indices) != 20 {
		t.Fatalf("visited %d hosts", len(indices))
	}
	for i := 1; i < len(indices); i++ {
		if indices[i] <= indices[i-1] {
			t.Fatal("EachHost must iterate in stable index order")
		}
	}
}

func TestWorldSuccessorWindows(t *testing.T) {
	s := newWorld(t, Config{Nodes: 10, Tasks: 100, Seed: 2})
	var primary strategy.VNode
	s.EachHost(func(h strategy.Host, p strategy.VNode) {
		if primary == nil {
			primary = p
		}
	})
	succs := s.Successors(primary, 3)
	if len(succs) != 3 {
		t.Fatalf("successors = %d", len(succs))
	}
	// The first successor's predecessor is the asking vnode.
	if succs[0].PredID() != primary.ID() {
		t.Errorf("succ[0].PredID() = %v, want %v", succs[0].PredID(), primary.ID())
	}
	preds := s.Predecessors(primary, 3)
	if len(preds) != 3 {
		t.Fatalf("predecessors = %d", len(preds))
	}
	if primary.PredID() != preds[0].ID() {
		t.Errorf("pred window mismatch")
	}
	// Window capped at ring size - 1.
	if got := s.Successors(primary, 50); len(got) != 9 {
		t.Errorf("oversized window = %d, want 9", len(got))
	}
}

func TestWorldCreateSybilPaths(t *testing.T) {
	s := newWorld(t, Config{Nodes: 5, Tasks: 500, Seed: 3, MaxSybils: 1})
	var host strategy.Host
	var primary strategy.VNode
	s.EachHost(func(h strategy.Host, p strategy.VNode) {
		if host == nil {
			host, primary = h, p
		}
	})
	// Occupied ID refused.
	if _, ok := s.CreateSybil(host, primary.ID()); ok {
		t.Fatal("creating a Sybil on an occupied ID must fail")
	}
	// Free ID succeeds and reports acquired work.
	acquired, ok := s.CreateSybil(host, s.RandomID())
	if !ok {
		t.Fatal("free-ID creation failed")
	}
	if acquired < 0 {
		t.Fatal("negative acquisition")
	}
	if host.SybilCount() != 1 {
		t.Fatalf("sybil count = %d", host.SybilCount())
	}
	// Cap reached: refused.
	if _, ok := s.CreateSybil(host, s.RandomID()); ok {
		t.Fatal("cap must refuse")
	}
	// DropSybils removes exactly the Sybil identities.
	before := s.ring.Len()
	s.DropSybils(host)
	if host.SybilCount() != 0 || s.ring.Len() != before-1 {
		t.Fatalf("drop bookkeeping wrong: count=%d ring=%d", host.SybilCount(), s.ring.Len())
	}
	if err := s.ring.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWorldRandomIDIsFree(t *testing.T) {
	s := newWorld(t, Config{Nodes: 50, Tasks: 100, Seed: 4})
	for i := 0; i < 100; i++ {
		id := s.RandomID()
		if _, occupied := s.ring.Get(id); occupied {
			t.Fatal("RandomID returned an occupied identifier")
		}
	}
}

func TestWorldSplitPoint(t *testing.T) {
	s := newWorld(t, Config{Nodes: 2, Tasks: 1000, Seed: 5})
	var heavy strategy.VNode
	s.EachHost(func(h strategy.Host, p strategy.VNode) {
		if heavy == nil || p.Workload() > heavy.Workload() {
			heavy = p
		}
	})
	id, ok := s.SplitPoint(heavy)
	if !ok {
		t.Fatal("split point missing for a loaded vnode")
	}
	if !ids.BetweenRightIncl(id, heavy.PredID(), heavy.ID()) {
		t.Fatal("split point outside the vnode's arc")
	}
	before := heavy.Workload()
	var helper strategy.Host
	s.EachHost(func(h strategy.Host, p strategy.VNode) {
		if p.ID() != heavy.ID() {
			helper = h
		}
	})
	acquired, ok := s.CreateSybil(helper, id)
	if !ok {
		t.Fatal("split-point creation failed")
	}
	// The split takes ceil(w/2) keys.
	if acquired != (before+1)/2 {
		t.Errorf("acquired %d, want %d", acquired, (before+1)/2)
	}
}

func TestWorldVNodesOf(t *testing.T) {
	s := newWorld(t, Config{Nodes: 4, Tasks: 400, Seed: 6})
	var host strategy.Host
	s.EachHost(func(h strategy.Host, _ strategy.VNode) {
		if host == nil {
			host = h
		}
	})
	if got := s.VNodesOf(host); len(got) != 1 {
		t.Fatalf("fresh host vnodes = %d", len(got))
	}
	if _, ok := s.CreateSybil(host, s.RandomID()); !ok {
		t.Fatal("creation failed")
	}
	got := s.VNodesOf(host)
	if len(got) != 2 {
		t.Fatalf("after sybil: vnodes = %d", len(got))
	}
	for _, v := range got {
		if v.Host().Index() != host.Index() {
			t.Fatal("foreign vnode in VNodesOf")
		}
	}
}

func TestWorldChargeMessages(t *testing.T) {
	s := newWorld(t, Config{Nodes: 3, Tasks: 30, Seed: 7})
	s.ChargeMessages("test-kind", 5)
	s.ChargeMessages("test-kind", 2)
	if s.msgs.Strategy["test-kind"] != 7 {
		t.Errorf("charge accumulation wrong: %v", s.msgs.Strategy)
	}
}
