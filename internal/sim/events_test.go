package sim

import (
	"strings"
	"testing"

	"chordbalance/internal/strategy"
)

func TestEventLogMatchesCounters(t *testing.T) {
	cfg := Config{Nodes: 80, Tasks: 8000, ChurnRate: 0.02, Seed: 3,
		Strategy: strategy.NewRandomInjection(), RecordEvents: true}
	res := run(t, cfg)
	counts := map[EventKind]int{}
	for _, e := range res.Events {
		counts[e.Kind]++
		if e.Tick < 1 || e.Tick > res.Ticks {
			t.Fatalf("event tick %d outside run (1..%d)", e.Tick, res.Ticks)
		}
		if e.Moved < 0 {
			t.Fatalf("negative moved work: %+v", e)
		}
	}
	if counts[EventJoin] != res.Messages.Joins {
		t.Errorf("join events %d != counter %d", counts[EventJoin], res.Messages.Joins)
	}
	if counts[EventLeave] != res.Messages.Leaves {
		t.Errorf("leave events %d != counter %d", counts[EventLeave], res.Messages.Leaves)
	}
	if counts[EventSybilCreate] != res.Messages.SybilsCreated {
		t.Errorf("create events %d != counter %d", counts[EventSybilCreate], res.Messages.SybilsCreated)
	}
	if counts[EventSybilDrop] != res.Messages.SybilsDropped {
		t.Errorf("drop events %d != counter %d", counts[EventSybilDrop], res.Messages.SybilsDropped)
	}
}

func TestEventLogOffByDefault(t *testing.T) {
	res := run(t, Config{Nodes: 20, Tasks: 400, ChurnRate: 0.05, Seed: 4})
	if len(res.Events) != 0 {
		t.Errorf("events recorded without RecordEvents: %d", len(res.Events))
	}
}

func TestEventKindString(t *testing.T) {
	cases := map[EventKind]string{
		EventJoin: "join", EventLeave: "leave",
		EventSybilCreate: "sybil-create", EventSybilDrop: "sybil-drop",
		EventKind(99): "EventKind(99)",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestWriteEventsCSV(t *testing.T) {
	events := []Event{
		{Tick: 3, Kind: EventJoin, Host: 7, Moved: 12},
		{Tick: 5, Kind: EventSybilCreate, Host: 2, Moved: 0},
	}
	var b strings.Builder
	if err := WriteEventsCSV(&b, events); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "tick,kind,host,id,moved\n") {
		t.Errorf("header wrong: %q", out)
	}
	if !strings.Contains(out, "3,join,7,") || !strings.Contains(out, "5,sybil-create,2,") {
		t.Errorf("rows wrong:\n%s", out)
	}
}
