package sim

import (
	"testing"
	"testing/quick"

	"chordbalance/internal/keys"
	"chordbalance/internal/ring"
	"chordbalance/internal/strategy"
)

func run(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{Nodes: 0, Tasks: 10},
		{Nodes: 10, Tasks: -1},
		{Nodes: 10, Tasks: 10, ChurnRate: -0.1},
		{Nodes: 10, Tasks: 10, ChurnRate: 1.5},
		{Nodes: 10, Tasks: 10, MaxSybils: -1},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d must be rejected", i)
		}
	}
}

func TestBaselineCompletesExactly(t *testing.T) {
	// No churn, no strategy: the runtime is exactly the maximum initial
	// workload, and all work completes.
	s, err := New(Config{Nodes: 50, Tasks: 5000, Seed: 3, CheckInvariants: true,
		SnapshotTicks: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if !res.Completed {
		t.Fatal("baseline did not complete")
	}
	maxLoad := 0
	for _, w := range res.Snapshots[0].HostWorkloads {
		if w > maxLoad {
			maxLoad = w
		}
	}
	if res.Ticks != maxLoad {
		t.Errorf("ticks = %d, want max initial workload %d", res.Ticks, maxLoad)
	}
	if res.IdealTicks != 100 {
		t.Errorf("ideal = %d, want 5000/50", res.IdealTicks)
	}
	if res.RuntimeFactor != float64(res.Ticks)/100 {
		t.Errorf("factor = %v", res.RuntimeFactor)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Nodes: 100, Tasks: 5000, ChurnRate: 0.01, Seed: 7,
		Strategy: strategy.NewRandomInjection()}
	a := run(t, cfg)
	cfg.Strategy = strategy.NewRandomInjection() // fresh instance
	b := run(t, cfg)
	if a.Ticks != b.Ticks || a.Messages.SybilsCreated != b.Messages.SybilsCreated ||
		a.Messages.Joins != b.Messages.Joins {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
	cfg.Seed = 8
	cfg.Strategy = strategy.NewRandomInjection()
	c := run(t, cfg)
	if a.Ticks == c.Ticks && a.Messages.Joins == c.Messages.Joins {
		t.Log("different seeds produced identical outcome (possible but suspicious)")
	}
}

func TestWorkConservation(t *testing.T) {
	cfg := Config{Nodes: 100, Tasks: 20000, ChurnRate: 0.02, Seed: 5,
		Strategy: strategy.NewRandomInjection(), RecordWorkPerTick: true,
		CheckInvariants: true}
	res := run(t, cfg)
	if !res.Completed {
		t.Fatal("did not complete")
	}
	total := 0
	for _, w := range res.WorkPerTick {
		if w < 0 {
			t.Fatal("negative per-tick work")
		}
		total += w
	}
	if total != cfg.Tasks {
		t.Errorf("work done = %d, want %d", total, cfg.Tasks)
	}
	if len(res.WorkPerTick) != res.Ticks {
		t.Errorf("series length %d != ticks %d", len(res.WorkPerTick), res.Ticks)
	}
}

func TestWorkConservationProperty(t *testing.T) {
	f := func(seed uint64, strChoice uint8) bool {
		strats := []strategy.Strategy{
			strategy.NewNone(), strategy.NewRandomInjection(),
			strategy.NewNeighborInjection(), strategy.NewSmartNeighbor(),
			strategy.NewInvitation(),
		}
		cfg := Config{
			Nodes: 30, Tasks: 2000, Seed: seed, ChurnRate: 0.01,
			Strategy: strats[int(strChoice)%len(strats)], RecordWorkPerTick: true,
			CheckInvariants: true,
		}
		res, err := Run(cfg)
		if err != nil || !res.Completed {
			return false
		}
		total := 0
		for _, w := range res.WorkPerTick {
			total += w
		}
		return total == cfg.Tasks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestChurnSpeedsUpLargeJobs(t *testing.T) {
	// Table II's core claim: churn lowers the runtime factor; more tasks,
	// bigger gain. A couple of seeds guard against one-off flukes.
	var base, churned float64
	for seed := uint64(0); seed < 3; seed++ {
		b := run(t, Config{Nodes: 100, Tasks: 100000, Seed: seed})
		c := run(t, Config{Nodes: 100, Tasks: 100000, ChurnRate: 0.01, Seed: seed})
		base += b.RuntimeFactor
		churned += c.RuntimeFactor
	}
	if churned >= base {
		t.Errorf("churn made things worse: base %.3f, churned %.3f", base/3, churned/3)
	}
	if churned/3 > 2.5 {
		t.Errorf("churned factor %.3f, paper reports ~1.87", churned/3)
	}
}

func TestRandomInjectionApproachesIdeal(t *testing.T) {
	res := run(t, Config{Nodes: 200, Tasks: 20000, Seed: 11,
		Strategy: strategy.NewRandomInjection()})
	if !res.Completed {
		t.Fatal("did not complete")
	}
	if res.RuntimeFactor > 2.2 {
		t.Errorf("random injection factor = %.3f, paper reports <= 1.7", res.RuntimeFactor)
	}
	if res.Messages.SybilsCreated == 0 {
		t.Error("random injection never created a Sybil")
	}
}

func TestStrategyOrdering(t *testing.T) {
	// The paper's headline ordering on the 1000-node/100k-task network,
	// scaled down 5x for test speed: random < neighbor-family < none.
	factors := map[string]float64{}
	for _, s := range []strategy.Strategy{
		strategy.NewNone(), strategy.NewRandomInjection(),
		strategy.NewSmartNeighbor(),
	} {
		var sum float64
		for seed := uint64(0); seed < 3; seed++ {
			cfg := Config{Nodes: 200, Tasks: 20000, Seed: seed}
			st, _ := strategy.ByName(s.Name())
			cfg.Strategy = st
			sum += run(t, cfg).RuntimeFactor
		}
		factors[s.Name()] = sum / 3
	}
	if !(factors["random"] < factors["smart-neighbor"] &&
		factors["smart-neighbor"] < factors["none"]) {
		t.Errorf("ordering violated: %v", factors)
	}
}

// TestBaselineFollowsExtremeValueLaw ties the simulator to the math
// behind Table II's no-strategy column: the factor is the max of n
// exponential workloads over their mean, which concentrates at ln n + γ.
func TestBaselineFollowsExtremeValueLaw(t *testing.T) {
	for _, n := range []int{100, 400} {
		var sum float64
		const trials = 6
		for seed := uint64(0); seed < trials; seed++ {
			res := run(t, Config{Nodes: n, Tasks: n * 100, Seed: seed})
			sum += res.RuntimeFactor
		}
		mean := sum / trials
		want := keys.ExpectedMaxToMean(n)
		if mean < want*0.8 || mean > want*1.25 {
			t.Errorf("n=%d: mean factor %.2f, extreme-value law predicts %.2f",
				n, mean, want)
		}
	}
}

func TestSnapshots(t *testing.T) {
	cfg := Config{Nodes: 100, Tasks: 10000, Seed: 13,
		Strategy:      strategy.NewRandomInjection(),
		SnapshotTicks: []int{0, 5, 35}}
	res := run(t, cfg)
	if len(res.Snapshots) != 3 {
		t.Fatalf("snapshots = %d, want 3", len(res.Snapshots))
	}
	s0 := res.Snapshots[0]
	if s0.Tick != 0 || s0.AliveHosts != 100 || len(s0.HostWorkloads) != 100 {
		t.Errorf("tick-0 snapshot: %+v", s0)
	}
	total := 0
	for _, w := range s0.HostWorkloads {
		total += w
	}
	if total != cfg.Tasks {
		t.Errorf("tick-0 workloads sum to %d, want %d", total, cfg.Tasks)
	}
	// At tick 5 one decision pass has run: Sybils exist, so vnodes >= hosts.
	s5 := res.Snapshots[1]
	if s5.Tick != 5 || s5.VNodes < s5.AliveHosts {
		t.Errorf("tick-5 snapshot: %+v", s5)
	}
	// Remaining work shrinks monotonically across snapshots.
	prev := total
	for _, s := range res.Snapshots[1:] {
		cur := 0
		for _, w := range s.HostWorkloads {
			cur += w
		}
		if cur > prev {
			t.Errorf("remaining work grew: %d -> %d at tick %d", prev, cur, s.Tick)
		}
		prev = cur
	}
}

func TestHeterogeneousStrengthConsumption(t *testing.T) {
	// With WorkByStrength the ideal shrinks (total strength > nodes), and
	// the run still completes.
	cfg := Config{Nodes: 100, Tasks: 30000, Seed: 17, Heterogeneous: true,
		WorkByStrength: true, Strategy: strategy.NewRandomInjection()}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.IdealTicks() >= 300 {
		t.Errorf("heterogeneous ideal = %d, must be < tasks/nodes = 300", s.IdealTicks())
	}
	res := s.Run()
	if !res.Completed {
		t.Error("heterogeneous run did not complete")
	}
}

func TestHeterogeneousWithoutStrengthConsumption(t *testing.T) {
	cfg := Config{Nodes: 50, Tasks: 5000, Seed: 19, Heterogeneous: true}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.IdealTicks() != 100 {
		t.Errorf("single-task mode ideal = %d, want 100", s.IdealTicks())
	}
}

func TestChurnAccounting(t *testing.T) {
	res := run(t, Config{Nodes: 100, Tasks: 10000, ChurnRate: 0.05, Seed: 23})
	if res.Messages.Joins == 0 || res.Messages.Leaves == 0 {
		t.Errorf("churn produced no turnover: %+v", res.Messages)
	}
	if res.Messages.LookupMessages == 0 {
		t.Error("joins must cost lookup messages")
	}
	if res.Messages.Maintenance == 0 {
		t.Error("maintenance messages must accumulate")
	}
}

func TestInvitationDefaultThreshold(t *testing.T) {
	s, err := New(Config{Nodes: 100, Tasks: 10000, Seed: 29,
		Strategy: strategy.NewInvitation()})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Params().InviteThreshold; got != 200 {
		t.Errorf("derived invite threshold = %d, want 2*(10000/100) = 200", got)
	}
	s2, err := New(Config{Nodes: 100, Tasks: 10000, Seed: 29, InviteThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Params().InviteThreshold; got != 0 {
		t.Errorf("negative config must mean literal zero, got %d", got)
	}
	s3, err := New(Config{Nodes: 100, Tasks: 10000, Seed: 29, InviteThreshold: 55})
	if err != nil {
		t.Fatal(err)
	}
	if got := s3.Params().InviteThreshold; got != 55 {
		t.Errorf("explicit threshold lost: %d", got)
	}
}

func TestMaxTicksAborts(t *testing.T) {
	// A 1-node network with churn disabled and plenty of tasks, capped
	// far below the needed runtime.
	res := run(t, Config{Nodes: 1, Tasks: 1000, MaxTicks: 10, Seed: 31})
	if res.Completed {
		t.Fatal("must not complete in 10 ticks")
	}
	if res.Ticks != 10 {
		t.Errorf("ticks = %d, want 10", res.Ticks)
	}
}

func TestSingleNodeNetwork(t *testing.T) {
	res := run(t, Config{Nodes: 1, Tasks: 100, Seed: 37})
	if !res.Completed || res.Ticks != 100 {
		t.Errorf("single node: ticks = %d, want 100", res.Ticks)
	}
	if res.RuntimeFactor != 1 {
		t.Errorf("single node factor = %v, want exactly 1", res.RuntimeFactor)
	}
}

func TestZeroTasks(t *testing.T) {
	res := run(t, Config{Nodes: 10, Tasks: 0, Seed: 41})
	if !res.Completed || res.Ticks != 0 {
		t.Errorf("zero tasks: %+v", res)
	}
}

func TestConsumeModePlumbs(t *testing.T) {
	// Alternate consumption must produce a different (typically faster)
	// neighbor-injection run than front consumption.
	base := Config{Nodes: 200, Tasks: 20000, Seed: 43}
	front := base
	front.Strategy = strategy.NewNeighborInjection()
	fr := run(t, front)
	alt := base
	alt.Strategy = strategy.NewNeighborInjection()
	alt.ConsumeMode = ring.ConsumeAlternate
	ar := run(t, alt)
	if fr.Ticks == ar.Ticks {
		t.Logf("front and alternate coincided (ticks=%d); unusual but not fatal", fr.Ticks)
	}
	if !fr.Completed || !ar.Completed {
		t.Error("both modes must complete")
	}
}

func TestSybilCapRespected(t *testing.T) {
	cfg := Config{Nodes: 50, Tasks: 10000, Seed: 47, MaxSybils: 2,
		Strategy: strategy.NewRandomInjection(), SnapshotTicks: []int{35}}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	// No snapshot can show more vnodes than hosts*(1+cap).
	for _, snap := range res.Snapshots {
		if snap.VNodes > snap.AliveHosts*3 {
			t.Errorf("tick %d: %d vnodes for %d hosts exceeds cap",
				snap.Tick, snap.VNodes, snap.AliveHosts)
		}
	}
}

func TestMessageTotals(t *testing.T) {
	res := run(t, Config{Nodes: 100, Tasks: 10000, Seed: 53,
		Strategy: strategy.NewSmartNeighbor()})
	m := res.Messages
	if m.Strategy["workload-query"] == 0 {
		t.Error("smart neighbor must charge workload queries")
	}
	if m.Total() < m.Strategy["workload-query"] {
		t.Error("Total must include strategy messages")
	}
}

func BenchmarkTickBaseline(b *testing.B) {
	// Cost of one full run of the paper's reference network, reduced 10x.
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{Nodes: 100, Tasks: 10000, Seed: uint64(i)})
		if err != nil || !res.Completed {
			b.Fatal("run failed")
		}
	}
}

func BenchmarkTickRandomInjection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{Nodes: 100, Tasks: 10000, Seed: uint64(i),
			Strategy: strategy.NewRandomInjection()})
		if err != nil || !res.Completed {
			b.Fatal("run failed")
		}
	}
}
