package sim

// Crash-stop churn for the simulation engine. Ordinary churn (sim.churn)
// models *graceful* departures: a leaving host hands its keys to its
// successors, so the job never loses work. The fault plan adds the
// failure mode the paper's "active, aggressive" replication assumption
// (§V) is really about — hosts that vanish mid-tick without a handoff.
// With replication the keys survive on successors at a repair-traffic
// cost; without it they are lost and must be re-submitted after a
// detection + reinsert delay, which shows up directly in the strategy's
// runtime factor.

import (
	"math"

	"chordbalance/internal/ids"
)

// FaultStats aggregates the fault layer's effect on one run. All fields
// stay zero under a zero fault plan.
type FaultStats struct {
	// Crashes counts crash-stop host departures; CrashedVNodes the virtual
	// nodes (primaries + Sybils + static copies) they took down.
	Crashes       int
	CrashedVNodes int
	// KeysRecovered counts keys on crashed hosts that replication saved;
	// KeysLost counts keys that vanished with their host and had to be
	// re-submitted. Resubmitted counts keys re-entering the ring (equal to
	// KeysLost once every pending batch has drained).
	KeysRecovered int
	KeysLost      int
	Resubmitted   int
	// RepairWaves counts ticks with at least one crash; RepairTicksTotal
	// and RepairTicksMax track the modeled detection+repair latency per
	// wave, and RepairMessages the replica-fetch traffic repair cost.
	RepairWaves      int
	RepairTicksTotal int
	RepairTicksMax   int
	RepairMessages   int
	// BlockedJoins and BlockedSybils count topology changes an active
	// partition refused; PartitionTicks counts ticks spent partitioned.
	BlockedJoins   int
	BlockedSybils  int
	PartitionTicks int
}

// MeanTimeToRepair returns the average modeled repair latency per crash
// wave, in ticks (0 when no wave fired).
func (f FaultStats) MeanTimeToRepair() float64 {
	if f.RepairWaves == 0 {
		return 0
	}
	return float64(f.RepairTicksTotal) / float64(f.RepairWaves)
}

// resubmission is a batch of crash-lost keys queued for re-entry.
type resubmission struct {
	due  int // tick at or after which the batch re-enters the ring
	keys []ids.ID
}

// pendingKeys counts keys lost to crashes and not yet re-submitted.
func (s *Simulation) pendingKeys() int {
	n := 0
	for _, p := range s.pending {
		n += len(p.keys)
	}
	return n
}

// repairTicks models how long a crash takes to detect and route around:
// one tick of failed pings plus an O(log n) re-lookup horizon. It is also
// the delay before a lost key's submitter notices and re-submits.
func (s *Simulation) repairTicks() int {
	n := s.ring.Len()
	if n < 2 {
		n = 2
	}
	return 1 + int(math.Ceil(math.Log2(float64(n))))
}

// crashStep runs one tick of crash-stop departures: one Bernoulli draw
// per live host in stable index order, plus the plan's correlated burst
// quota. The ring is never emptied — keys must live somewhere.
func (s *Simulation) crashStep() {
	victims := s.drawCrashVictims()
	if len(victims) == 0 {
		return
	}
	waveTicks := s.repairTicks()
	s.fstats.RepairWaves++
	s.fstats.RepairTicksTotal += waveTicks
	if waveTicks > s.fstats.RepairTicksMax {
		s.fstats.RepairTicksMax = waveTicks
	}
	for _, h := range victims {
		s.crashHost(h, waveTicks)
	}
}

// drawCrashVictims asks the injector which live hosts crash this tick.
// Burst victims are drawn from the hosts still alive after the Bernoulli
// pass, walking forward from a picked index so they stay distinct. Both
// passes iterate the cached active-host list (same stable index order
// the full scan produced, so the injector's draw sequence is
// unchanged), and the per-tick "already chosen" set is a crashMark
// tick stamp on the host instead of a freshly allocated map.
func (s *Simulation) drawCrashVictims() []*hostState {
	out := s.victims[:0]
	alive := s.pool.AliveCount()
	for _, h := range s.aliveHosts() {
		if alive-len(out) <= 1 {
			break // never crash the last live host
		}
		if s.finj.CrashNow() {
			out = append(out, h)
			h.crashMark = s.tick
		}
	}
	if n := s.finj.BurstNow(); n > 0 {
		pool := s.burstPool[:0]
		for _, h := range s.aliveHosts() {
			if h.crashMark != s.tick {
				pool = append(pool, h)
			}
		}
		for ; n > 0 && len(pool) > 1; n-- {
			i := s.finj.Pick(len(pool))
			out = append(out, pool[i])
			pool = append(pool[:i], pool[i+1:]...)
		}
		s.burstPool = pool
	}
	s.victims = out
	return out
}

// crashHost removes h abruptly. With replication each displaced key is
// recovered onto its successor at a repair-message cost; without, the
// keys on h's virtual nodes are lost and queued for re-submission after
// the detection delay.
func (s *Simulation) crashHost(h *hostState, delay int) {
	// Never let the ring empty out: someone must hold the keys.
	if s.ring.Len() <= len(h.vnodes) {
		return
	}
	s.fstats.Crashes++
	s.fstats.CrashedVNodes += len(h.vnodes)
	displaced := h.Workload() // needed for fault accounting either way
	s.recordEvent(EventCrash, h.Index(), h.vnodes[0].ID(), displaced)
	var lost []ids.ID
	// Sybils first, so the primary inherits any of their keys last —
	// mirrors detachAll's graceful-leave order.
	for i := len(h.vnodes) - 1; i >= 0; i-- {
		v := h.vnodes[i]
		w := v.rn.Workload()
		if s.replicas == 0 && w > 0 {
			// No replication: the keys die with the host. Drain them
			// before removal so Remove hands nothing to the successor.
			lost = append(lost, v.rn.Keys()...)
			v.rn.ConsumeN(w)
		}
		if s.ring.Len() > 1 {
			// The successor inherits whatever survived the drain.
			s.ring.Succ(v.rn, 1).Data.host.wlEpoch = 0
		}
		if err := s.ring.Remove(v.rn); err != nil {
			panic(err)
		}
	}
	h.vnodes = h.vnodes[:0]
	h.wlEpoch = 0
	h.acct.SetAlive(false)
	s.aliveBit[h.Index()] = false
	s.activeDirty = true
	if s.replicas > 0 {
		// Each displaced key is fetched from one of its replicas by the
		// new owner; detecting the crash costs one failed-ping round over
		// the successor list.
		s.fstats.KeysRecovered += displaced
		s.fstats.RepairMessages += displaced*s.replicas + s.params.NumSuccessors
	} else {
		s.fstats.KeysLost += len(lost)
		s.fstats.RepairMessages += s.params.NumSuccessors
		if len(lost) > 0 {
			s.pending = append(s.pending, resubmission{due: s.tick + delay, keys: lost})
		}
	}
}

// resubmitDue re-seeds every pending batch whose delay has elapsed.
func (s *Simulation) resubmitDue() {
	if len(s.pending) == 0 {
		return
	}
	kept := s.pending[:0]
	for _, p := range s.pending {
		if p.due > s.tick {
			kept = append(kept, p)
			continue
		}
		if err := s.ring.Seed(p.keys); err != nil {
			panic(err) // the ring always has at least one node
		}
		s.wlEpoch++ // re-seeded keys landed on arbitrary hosts
		s.fstats.Resubmitted += len(p.keys)
		s.recordEvent(EventResubmit, -1, p.keys[0], len(p.keys))
		// Re-submission is a fresh store: one O(log n) lookup per key.
		for range p.keys {
			s.chargeLookup()
		}
	}
	s.pending = kept
}
