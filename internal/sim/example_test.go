package sim_test

import (
	"fmt"
	"log"

	"chordbalance/internal/sim"
	"chordbalance/internal/strategy"
)

// Example runs the paper's headline comparison on a small network: the
// same job with and without random Sybil injection.
func Example() {
	base := sim.Config{Nodes: 100, Tasks: 10000, Seed: 7}
	baseline, err := sim.Run(base)
	if err != nil {
		log.Fatal(err)
	}
	base.Strategy = strategy.NewRandomInjection()
	balanced, err := sim.Run(base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ideal ticks:", baseline.IdealTicks)
	fmt.Println("baseline completed:", baseline.Completed)
	fmt.Println("random injection faster:", balanced.Ticks < baseline.Ticks)
	// Output:
	// ideal ticks: 100
	// baseline completed: true
	// random injection faster: true
}

// ExampleRun_snapshots captures the workload distribution at the ticks
// the paper's figures use.
func ExampleRun_snapshots() {
	res, err := sim.Run(sim.Config{
		Nodes: 50, Tasks: 5000, Seed: 3,
		SnapshotTicks: []int{0, 35},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, snap := range res.Snapshots {
		total := 0
		for _, w := range snap.HostWorkloads {
			total += w
		}
		fmt.Printf("tick %d: %d hosts, %d tasks remaining\n",
			snap.Tick, snap.AliveHosts, total)
	}
	// Output:
	// tick 0: 50 hosts, 5000 tasks remaining
	// tick 35: 50 hosts, 3523 tasks remaining
}
