package sim

// Adversary/defense co-simulation: the engine-side wiring of
// internal/adversary. Two serial tick phases — adversaryStep (mint
// clustered hostile identities into the target arc) and defenseStep
// (density-scan the ring order array and evict flagged identities) —
// plus puzzle-cost admission charged wherever an identity enters the
// ring. Both phases run only when s.adv is non-nil, which requires a
// non-zero Attack or Defense config, so zero-config runs are provably
// untouched (the faults.Injector pattern).
//
// Determinism and sharding: both phases are serial and the adversary
// draws from its own seeded stream, so the engine RNG sees exactly the
// honest draw sequence. Puzzle debt is charged serially and paid by the
// host's own consume slot, which keeps the sharded consume phase free
// of cross-host coordination.

import (
	"chordbalance/internal/adversary"
	"chordbalance/internal/ids"
	"chordbalance/internal/sybil"
	"chordbalance/internal/xrand"
)

// EclipseSample is one point of the eclipse-success trajectory: the
// fraction of the target arc whose full replica set was hostile at the
// sampled tick.
type EclipseSample struct {
	// Tick is the sample time.
	Tick int
	// Fraction is the eclipsed fraction of the target arc in [0, 1].
	Fraction float64
}

// AdversaryStats summarizes the attack/defense co-simulation. All-zero
// when both configs were zero.
type AdversaryStats struct {
	// HostileMints counts hostile identities placed on the ring.
	HostileMints int
	// HostileLive is the adversary's live identity count at the end.
	HostileLive int
	// HostileEvicted counts hostile identities the density defense
	// removed (true positives).
	HostileEvicted int
	// HonestEvicted counts honest Sybil identities the defense removed
	// (false positives: the paper's balancers mint dense IDs by design).
	HonestEvicted int
	// RekeyedPrimaries counts honest primary identities the defense
	// forced to rejoin at a fresh ID — eviction as induced churn.
	RekeyedPrimaries int
	// BlockedMints counts mint attempts abandoned because every drawn ID
	// was occupied or unreachable (partition minority side).
	BlockedMints int
	// PuzzleWorkCharged totals the admission work charged to honest
	// hosts (joins, Sybil mints, forced rekeys); the defense's drag on
	// the runtime factor.
	PuzzleWorkCharged int
	// CapturedKeys is the number of keys held by hostile identities at
	// the end of the run.
	CapturedKeys int
	// EclipseSamples is the eclipse-success trajectory at snapshot ticks
	// plus the final tick.
	EclipseSamples []EclipseSample
	// FinalEclipse is the eclipsed fraction of the target arc at the end
	// of the run.
	FinalEclipse float64
}

// FalseEvictionRate returns the fraction of defense evictions that hit
// honest identities (Sybils and rekeyed primaries); 0 when the defense
// never fired.
func (a AdversaryStats) FalseEvictionRate() float64 {
	total := a.HostileEvicted + a.HonestEvicted + a.RekeyedPrimaries
	if total == 0 {
		return 0
	}
	return float64(a.HonestEvicted+a.RekeyedPrimaries) / float64(total)
}

// advState is the engine's adversary/defense scratchpad; constructed by
// initAdversary only for non-zero configs.
type advState struct {
	// attacker is nil when the attack config is zero (defense-only run).
	attacker *adversary.Attacker
	// detector is nil unless density detection is on.
	detector *adversary.Detector
	// rng is the adversary's private stream: hostile draws must not
	// perturb the honest engine sequence.
	rng *xrand.Rand
	// hostile is the synthetic host backing every hostile virtual node.
	// It lives outside s.hosts/s.active/s.aliveBit — the waiting-pool
	// scan, consume, and snapshots never see it — and its zero Sybil cap
	// keeps it out of strategies' CanCreateSybil reach.
	hostile *hostState

	puzzleCost int
	scanEvery  int

	stats   AdversaryStats
	victims []*vnode // scratch: flagged positions resolved before eviction
}

// initAdversary builds the adversary/defense state when either config
// is non-zero; otherwise s.adv stays nil and every hostile code path is
// unreachable.
func (s *Simulation) initAdversary() error {
	cfg := s.cfg
	if cfg.Attack.Zero() && cfg.Defense.Zero() {
		return nil
	}
	adv := &advState{
		puzzleCost: adversary.PuzzleCost(cfg.Defense.PuzzleBits),
	}
	if !cfg.Attack.Zero() {
		a, err := adversary.NewAttacker(cfg.Attack)
		if err != nil {
			return err
		}
		adv.attacker = a
		adv.rng = xrand.New(cfg.Seed ^ 0x7c159e3779b94a05)
		adv.hostile = &hostState{
			acct: sybil.NewStandalone(len(s.hosts), 1, 0),
			sim:  s,
		}
	}
	if cfg.Defense.DetectionOn() {
		d, err := adversary.NewDetector(cfg.Defense)
		if err != nil {
			return err
		}
		adv.detector = d
		adv.scanEvery = d.Config().ScanEvery
	}
	s.adv = adv
	return nil
}

// adversaryStep runs the attacker's turn: accrue the tick's work, then
// (on the mint cadence) place as many clustered identities as budget
// and accumulated work allow. Serial: it draws from the adversary's
// private stream.
func (s *Simulation) adversaryStep() {
	a := s.adv.attacker
	if a == nil {
		return
	}
	a.Accrue()
	if s.tick%a.Config().MintEvery != 0 {
		return
	}
	cost := 1 + s.adv.puzzleCost
	for a.CanMint(cost) {
		id, ok := s.mintHostileID(a)
		if !ok {
			s.adv.stats.BlockedMints++
			break
		}
		v := s.attach(s.adv.hostile, id, true)
		a.Minted(cost)
		s.adv.stats.HostileMints++
		s.chargeLookup()
		s.recordEvent(EventHostileMint, s.adv.hostile.Index(), v.ID(), v.rn.Workload())
	}
}

// mintHostileID draws a clustered candidate, rejecting occupied IDs and
// (under an active partition) IDs the attacker cannot reach. Bounded
// tries: a saturated arc must not spin forever.
func (s *Simulation) mintHostileID(a *adversary.Attacker) (id ids.ID, ok bool) {
	for try := 0; try < 16; try++ {
		cand := a.MintID(s.adv.rng)
		if _, occupied := s.ring.Get(cand); occupied {
			continue
		}
		if s.finj != nil && s.finj.PartitionActive() && s.finj.MinoritySide(cand) {
			continue
		}
		return cand, true
	}
	return id, false
}

// defenseStep runs the density scan on its cadence and evicts every
// flagged identity. Flagged ring positions are resolved to virtual
// nodes before the first eviction: removals shift the order array.
func (s *Simulation) defenseStep() {
	d := s.adv.detector
	if d == nil || s.tick%s.adv.scanEvery != 0 {
		return
	}
	flagged := d.Flagged(s.ring.Len(), s.ringIDAt)
	if len(flagged) == 0 {
		return
	}
	s.adv.victims = s.adv.victims[:0]
	for _, pos := range flagged {
		s.adv.victims = append(s.adv.victims, s.ring.At(pos).Data)
	}
	for _, v := range s.adv.victims {
		if !v.rn.OnRing() || s.ring.Len() <= 1 {
			continue // keys must have somewhere to go
		}
		h := v.host
		switch {
		case h == s.adv.hostile:
			s.recordEvent(EventEvict, h.Index(), v.ID(), v.rn.Workload())
			s.removeVNode(v)
			s.adv.attacker.Evicted()
			s.adv.stats.HostileEvicted++
		case v.isSybil:
			// False positive: an honest balancer's Sybil looked like an
			// eclipse cluster.
			s.recordEvent(EventEvict, h.Index(), v.ID(), v.rn.Workload())
			s.removeVNode(v)
			h.acct.DroppedSybil()
			s.msgs.SybilsDropped++
			s.adv.stats.HonestEvicted++
		default:
			s.rekeyPrimary(v)
		}
	}
}

// rekeyPrimary handles a flagged honest primary (or static) identity:
// the host cannot leave the network, so the defense forces it to rejoin
// at a fresh uniform ID — eviction as induced churn. The replacement
// keeps the evicted node's slot so vnodes stays primary-first.
func (s *Simulation) rekeyPrimary(v *vnode) {
	h := v.host
	slot := -1
	for i, w := range h.vnodes {
		if w == v {
			slot = i
			break
		}
	}
	s.recordEvent(EventRekey, h.Index(), v.ID(), v.rn.Workload())
	s.removeVNode(v)
	nv := s.attach(h, s.RandomID(), false)
	last := len(h.vnodes) - 1
	if slot >= 0 && slot < last {
		copy(h.vnodes[slot+1:last+1], h.vnodes[slot:last])
		h.vnodes[slot] = nv
	}
	s.chargePuzzle(h)
	s.chargeLookup()
	s.adv.stats.RekeyedPrimaries++
}

// removeVNode takes one virtual node off the ring and out of its host's
// list, invalidating the two affected workload caches.
func (s *Simulation) removeVNode(v *vnode) {
	if s.ring.Len() > 1 {
		s.ring.Succ(v.rn, 1).Data.host.wlEpoch = 0
	}
	if err := s.ring.Remove(v.rn); err != nil {
		panic(err)
	}
	h := v.host
	for i, w := range h.vnodes {
		if w == v {
			h.vnodes = append(h.vnodes[:i], h.vnodes[i+1:]...)
			break
		}
	}
	h.wlEpoch = 0
}

// chargePuzzle adds the admission puzzle cost to a host's debt; a no-op
// when the defense (or its puzzle) is off, so undefended runs are
// untouched.
func (s *Simulation) chargePuzzle(h *hostState) {
	if s.adv == nil || s.adv.puzzleCost == 0 {
		return
	}
	h.puzzleDebt += s.adv.puzzleCost
	s.adv.stats.PuzzleWorkCharged += s.adv.puzzleCost
}

// ringIDAt adapts the ring to the detector's order-array view.
func (s *Simulation) ringIDAt(i int) ids.ID { return s.ring.At(i).Data.ID() }

// sampleEclipse appends one eclipse-success measurement. Attack-only:
// a defense-only run has no target arc to measure.
func (s *Simulation) sampleEclipse(tick int) {
	a := s.adv.attacker
	if a == nil {
		return
	}
	lo, hi := a.Target()
	replicas := s.replicas
	if replicas < 1 {
		replicas = 1
	}
	f := adversary.EclipsedFraction(s.ring.Len(), s.ringIDAt,
		func(i int) bool { return s.ring.At(i).Data.host == s.adv.hostile },
		lo, hi, replicas)
	s.adv.stats.EclipseSamples = append(s.adv.stats.EclipseSamples, EclipseSample{Tick: tick, Fraction: f})
	s.adv.stats.FinalEclipse = f
}

// finishAdversary finalizes the adversary accounting into the result.
func (s *Simulation) finishAdversary(res *Result) {
	if a := s.adv.attacker; a != nil {
		if n := len(s.adv.stats.EclipseSamples); n == 0 || s.adv.stats.EclipseSamples[n-1].Tick != s.tick {
			s.sampleEclipse(s.tick)
		}
		s.adv.stats.HostileLive = a.Live()
		captured := 0
		for _, v := range s.adv.hostile.vnodes {
			captured += v.rn.Workload()
		}
		s.adv.stats.CapturedKeys = captured
	}
	res.Adversary = s.adv.stats
}
